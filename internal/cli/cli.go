// Package cli holds the helpers the cmd/ tools share: building a
// granularity system extended with user-defined periodic granularities
// loaded from spec files, and opening sequence inputs.
package cli

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/periodic"
)

// LoadSystem returns the default granularity system, extended with the
// periodic granularities from the given spec files (comma-separated paths;
// empty string loads none). Each file holds one periodic.Spec in its line
// format.
func LoadSystem(gransFlag string) (*granularity.System, error) {
	sys := granularity.Default()
	if gransFlag == "" {
		return sys, nil
	}
	for _, path := range strings.Split(gransFlag, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sp, err := periodic.Decode(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		g, err := periodic.New(*sp)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if _, exists := sys.Get(g.Name()); exists {
			return nil, fmt.Errorf("%s: granularity %q already defined", path, g.Name())
		}
		sys.Add(g)
	}
	return sys, nil
}

// ReadSequence reads an event sequence from the given path, or from stdin
// when the path is empty.
func ReadSequence(path string) (event.Sequence, error) {
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return event.Decode(in)
}

// LoadStructure reads an event structure (with optional typing) from a
// file, auto-detecting the format: files whose first non-space byte is '{'
// are parsed as the JSON Spec, anything else as the text DSL
// (core.ParseDSL).
func LoadStructure(path string) (*core.EventStructure, map[core.Variable]event.Type, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		sp, err := core.ReadSpec(strings.NewReader(trimmed))
		if err != nil {
			return nil, nil, err
		}
		s, err := sp.Structure()
		if err != nil {
			return nil, nil, err
		}
		assign := make(map[core.Variable]event.Type, len(sp.Assign))
		for v, t := range sp.Assign {
			assign[core.Variable(v)] = event.Type(t)
		}
		return s, assign, nil
	}
	return core.ParseDSL(strings.NewReader(trimmed))
}
