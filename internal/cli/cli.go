// Package cli holds the helpers the cmd/ tools share: building a
// granularity system extended with user-defined periodic granularities
// loaded from spec files, and opening sequence inputs.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/periodic"
)

// DefineFlags collects repeated -define name=expr flags. Each entry
// registers a granularity built from a calendar expression
// (granularity.ParseExpr) under the given name: zoned days, fiscal 4-4-5
// calendars, trading sessions, and compositions (group, shift, nth,
// intersect) of those and any registered name. Definitions are applied in
// order and see the registry plus every earlier definition.
type DefineFlags []string

// String renders the collected definitions (flag.Value).
func (d *DefineFlags) String() string { return strings.Join(*d, "; ") }

// Set appends one name=expr definition (flag.Value).
func (d *DefineFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

// Var registers the -define flag on the default flag set.
func (d *DefineFlags) Var() {
	flag.Var(d, "define", "name=expr calendar definition (repeatable), e.g. -define nyse='trading(09:30, 16:00, us, 13:00)'")
}

// LoadSystem returns the default granularity system, extended with the
// periodic granularities from the given spec files (comma-separated paths;
// empty string loads none) and the calendar-expression definitions
// (name=expr entries, applied after the spec files so expressions can
// reference them). Each file holds one periodic.Spec in its line format.
func LoadSystem(gransFlag string, defines []string) (*granularity.System, error) {
	sys := granularity.Default()
	if err := loadSpecFiles(sys, gransFlag); err != nil {
		return nil, err
	}
	for _, def := range defines {
		name, src, ok := strings.Cut(def, "=")
		name = strings.TrimSpace(name)
		src = strings.TrimSpace(src)
		if !ok || name == "" || src == "" {
			return nil, fmt.Errorf("-define %q: want name=expr", def)
		}
		if _, exists := sys.Get(name); exists {
			return nil, fmt.Errorf("-define %s: granularity %q already defined", def, name)
		}
		g, err := granularity.ParseExpr(name, src, sys.Get)
		if err != nil {
			return nil, fmt.Errorf("-define %s: %w", name, err)
		}
		sys.Add(g)
	}
	return sys, nil
}

// loadSpecFiles registers the periodic-spec files listed in gransFlag.
func loadSpecFiles(sys *granularity.System, gransFlag string) error {
	if gransFlag == "" {
		return nil
	}
	for _, path := range strings.Split(gransFlag, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sp, err := periodic.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		g, err := periodic.New(*sp)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if _, exists := sys.Get(g.Name()); exists {
			return fmt.Errorf("%s: granularity %q already defined", path, g.Name())
		}
		sys.Add(g)
	}
	return nil
}

// ReadSequence reads an event sequence from the given path, or from stdin
// when the path is empty.
func ReadSequence(path string) (event.Sequence, error) {
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	return event.Decode(in)
}

// LoadStructure reads an event structure (with optional typing) from a
// file, auto-detecting the format: files whose first non-space byte is '{'
// are parsed as the JSON Spec, anything else as the text DSL
// (core.ParseDSL).
func LoadStructure(path string) (*core.EventStructure, map[core.Variable]event.Type, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		sp, err := core.ReadSpec(strings.NewReader(trimmed))
		if err != nil {
			return nil, nil, err
		}
		s, err := sp.Structure()
		if err != nil {
			return nil, nil, err
		}
		assign := make(map[core.Variable]event.Type, len(sp.Assign))
		for v, t := range sp.Assign {
			assign[core.Variable(v)] = event.Type(t)
		}
		return s, assign, nil
	}
	return core.ParseDSL(strings.NewReader(trimmed))
}
