package cli

import (
	"flag"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
)

// RegisterVersionFlag registers the shared -version flag. Commands check
// the returned pointer after flag.Parse and, when set, print
// VersionString and exit instead of running.
func RegisterVersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print the build version and exit")
}

// VersionString renders the module version plus the VCS revision and
// commit time embedded by the Go toolchain (runtime/debug.ReadBuildInfo).
// Builds without VCS stamping (e.g. `go test` binaries) degrade to the
// module version alone.
func VersionString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "tempo (no build info)"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, dirty, when string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		case "vcs.time":
			when = s.Value
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "tempo %s", version)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&sb, " (%s%s", rev, dirty)
		if when != "" {
			fmt.Fprintf(&sb, ", %s", when)
		}
		sb.WriteString(")")
	}
	fmt.Fprintf(&sb, " %s", bi.GoVersion)
	return sb.String()
}

// PrintVersion writes VersionString to w with a trailing newline.
func PrintVersion(w io.Writer) {
	fmt.Fprintln(w, VersionString())
}
