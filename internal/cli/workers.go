package cli

import (
	"flag"
	"runtime"
)

// RegisterWorkersFlag registers the shared -workers flag: how many goroutines
// the command may fan independent automaton runs out to. 0 defers to the
// problem spec (miner) or the machine (ResolveWorkers).
func RegisterWorkersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker goroutines for parallel scans (0 = auto: spec setting, else GOMAXPROCS)")
}

// ResolveWorkers picks the effective worker count: an explicit flag wins,
// then a spec-provided default, then every core the runtime will schedule.
// Parallel and serial scans produce byte-identical results, so this only
// trades wall-clock for cores.
func ResolveWorkers(flagVal, specVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	if specVal > 0 {
		return specVal
	}
	return runtime.GOMAXPROCS(0)
}
