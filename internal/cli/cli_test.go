package cli

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/event"
)

const rosterSpec = `name roster
period 86400
anchor 1
granule 21600-50399
granule 50400-79199
`

func writeFile(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSystemDefault(t *testing.T) {
	sys, err := LoadSystem("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Get("b-day"); !ok {
		t.Fatal("default system incomplete")
	}
}

func TestLoadSystemWithPeriodic(t *testing.T) {
	path := writeFile(t, "roster.gran", rosterSpec)
	sys, err := LoadSystem(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := sys.Get("roster")
	if !ok {
		t.Fatal("roster not registered")
	}
	// 06:00 is inside the first shift.
	if _, ok := g.TickOf(event.At(1800, 1, 1, 6, 0, 0)); !ok {
		t.Fatal("06:00 should be covered")
	}
	// 03:00 is not.
	if _, ok := g.TickOf(event.At(1800, 1, 1, 3, 0, 0)); ok {
		t.Fatal("03:00 should be a gap")
	}
}

func TestLoadSystemErrors(t *testing.T) {
	if _, err := LoadSystem("/does/not/exist.gran", nil); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := writeFile(t, "bad.gran", "name x\nperiod notanumber\n")
	if _, err := LoadSystem(bad, nil); err == nil {
		t.Fatal("malformed spec accepted")
	}
	// Clashing with a builtin name is rejected.
	clash := writeFile(t, "clash.gran", "name day\nperiod 86400\nanchor 1\ngranule 0-86399\n")
	if _, err := LoadSystem(clash, nil); err == nil {
		t.Fatal("name clash accepted")
	}
	// Several files, comma separated (with blanks tolerated).
	a := writeFile(t, "a.gran", rosterSpec)
	sys, err := LoadSystem(a+", ", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Get("roster"); !ok {
		t.Fatal("roster missing after list load")
	}
}

func TestReadSequence(t *testing.T) {
	path := writeFile(t, "seq.txt", "10 a\n20 b\n")
	seq, err := ReadSequence(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[1].Type != "b" {
		t.Fatalf("seq = %v", seq)
	}
	if _, err := ReadSequence(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing sequence accepted")
	}
}

func TestLoadStructureFormats(t *testing.T) {
	jsonSpec := writeFile(t, "s.json", `{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":1,"gran":"day"}]}],"assign":{"A":"x"}}`)
	s, assign, err := LoadStructure(jsonSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEdges() != 1 || assign["A"] != "x" {
		t.Fatalf("json load: %d edges, assign %v", s.NumEdges(), assign)
	}
	dsl := writeFile(t, "s.tcg", "# dsl\nA -> B : [0,1]day\nassign A = x\n")
	s2, assign2, err := LoadStructure(dsl)
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != s.String() || assign2["A"] != "x" {
		t.Fatal("dsl load differs from json load")
	}
	if _, _, err := LoadStructure(writeFile(t, "bad.txt", "not a structure")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := LoadStructure(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestLoadSystemMalformedSpec: untrusted periodic spec files must come back
// as typed errors from the error-returning constructor path, never a panic
// and never a silently-registered granularity.
func TestLoadSystemMalformedSpec(t *testing.T) {
	cases := map[string]string{
		"truncated":    "name x\nperiod",
		"no-granules":  "name x\nperiod 10\nanchor 1\n",
		"bad-span":     "name x\nperiod 10\nanchor 1\ngranule 8-2\n",
		"out-of-range": "name x\nperiod 10\nanchor 1\ngranule 5-20\n",
		"zero-period":  "name x\nperiod 0\nanchor 1\ngranule 0-3\n",
		"overlap":      "name x\nperiod 10\nanchor 1\ngranule 0-5\ngranule 3-8\n",
		"empty-name":   "name \nperiod 10\nanchor 1\ngranule 0-3\n",
		"binary-junk":  "\x00\x01\x02\xff",
	}
	for name, body := range cases {
		if _, err := LoadSystem(writeFile(t, name+".gran", body), nil); err == nil {
			t.Errorf("%s: malformed spec accepted", name)
		}
	}
	// A shadowing redefinition of a built-in is refused too.
	dup := "name day\nperiod 86400\nanchor 1\ngranule 0-86399\n"
	if _, err := LoadSystem(writeFile(t, "dup.gran", dup), nil); err == nil {
		t.Error("redefinition of built-in granularity accepted")
	}
}

// TestCheckpointHelpers covers the atomic save/load pair: missing files
// report absent without error, writes land atomically, and decode failures
// surface.
func TestCheckpointHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	loaded, err := LoadCheckpoint(path, func(io.Reader) error { t.Fatal("decode called for a missing file"); return nil })
	if loaded || err != nil {
		t.Fatalf("missing file: loaded=%v err=%v", loaded, err)
	}
	if err := SaveCheckpoint(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
	var got []byte
	loaded, err = LoadCheckpoint(path, func(r io.Reader) error {
		var rerr error
		got, rerr = io.ReadAll(r)
		return rerr
	})
	if !loaded || err != nil || string(got) != "payload" {
		t.Fatalf("loaded=%v err=%v got=%q", loaded, err, got)
	}
	// A failing encoder must not clobber the installed checkpoint.
	if err := SaveCheckpoint(path, func(io.Writer) error { return os.ErrInvalid }); err == nil {
		t.Fatal("failing encoder reported success")
	}
	loaded, err = LoadCheckpoint(path, func(r io.Reader) error {
		var rerr error
		got, rerr = io.ReadAll(r)
		return rerr
	})
	if !loaded || err != nil || string(got) != "payload" {
		t.Fatalf("failed save clobbered checkpoint: loaded=%v err=%v got=%q", loaded, err, got)
	}
	// Decoder errors propagate.
	if _, err := LoadCheckpoint(path, func(io.Reader) error { return os.ErrInvalid }); err == nil {
		t.Fatal("decoder error swallowed")
	}
}

// TestCorruptCheckpointQuarantine covers the hardened load path: a
// checkpoint that fails to decode is renamed to <path>.corrupt, the error
// is the typed *CorruptCheckpointError, and the next load starts fresh.
func TestCorruptCheckpointQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	if err := os.WriteFile(path, []byte("torn gibberi"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path, func(io.Reader) error { return os.ErrInvalid })
	if loaded {
		t.Fatal("corrupt checkpoint reported loaded")
	}
	var corrupt *CorruptCheckpointError
	if !errors.As(err, &corrupt) {
		t.Fatalf("error %v (%T) is not a *CorruptCheckpointError", err, err)
	}
	if corrupt.Path != path || corrupt.Quarantine != path+".corrupt" {
		t.Fatalf("bad quarantine bookkeeping: %+v", corrupt)
	}
	if !errors.Is(err, os.ErrInvalid) {
		t.Fatal("decoder cause not wrapped")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint still in place")
	}
	evidence, err := os.ReadFile(path + ".corrupt")
	if err != nil || string(evidence) != "torn gibberi" {
		t.Fatalf("evidence file: %q, %v", evidence, err)
	}
	// The retry finds no checkpoint and starts fresh — no crash loop.
	loaded, err = LoadCheckpoint(path, func(io.Reader) error { t.Fatal("decode called"); return nil })
	if loaded || err != nil {
		t.Fatalf("retry after quarantine: loaded=%v err=%v", loaded, err)
	}
}

func TestLoadSystemDefines(t *testing.T) {
	sys, err := LoadSystem("", []string{
		"nyse=trading(09:30, 16:00, us, 13:00)",
		"nyse-week = group(nyse, 5)",
	})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := sys.Get("nyse")
	if !ok {
		t.Fatal("nyse not registered")
	}
	// 1996-07-04 10:00 ET is a closed holiday; the prior session is Jul 3.
	if _, ok := g.TickOf(event.At(1996, 7, 4, 14, 0, 0)); ok {
		t.Error("July 4th session should not exist")
	}
	if _, ok := sys.Get("nyse-week"); !ok {
		t.Fatal("definition could not reference an earlier definition")
	}

	for _, bad := range []string{
		"nodelimiter",
		"=day",
		"x=",
		"day=group(hour, 24)",      // clashes with a builtin
		"x=zoned(day, mars)",       // bad expression
		"x=group(missing-name, 2)", // unknown identifier
	} {
		if _, err := LoadSystem("", []string{bad}); err == nil {
			t.Errorf("-define %q accepted", bad)
		}
	}
	// A define clashing with an earlier define is rejected too.
	if _, err := LoadSystem("", []string{"x=day", "x=week"}); err == nil {
		t.Error("duplicate definition accepted")
	}
}
