package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
)

// EngineFlags holds the execution-control flags every solver command
// shares: -timeout (wall-clock deadline), -budget (work-unit cap) and
// -stats (print the engine counter table on exit). Register with
// RegisterEngineFlags, build the engine.Config with Config after parsing,
// and defer Finish to release the deadline and print the table.
type EngineFlags struct {
	Timeout time.Duration
	Budget  int64
	Stats   bool
	// StatsFormat picks the -stats rendering: "table" (aligned two-column
	// table) or "prom" (Prometheus text exposition, the same bytes tempod
	// serves on /metrics).
	StatsFormat string
	// Exec selects the TAG execution core: "compiled" (default) or
	// "interp" (the pre-compilation interpreter, kept for one release as
	// the differential baseline).
	Exec string

	counters *engine.Counters
	cancel   context.CancelFunc
}

// RegisterEngineFlags registers -timeout, -budget, -stats, -stats-format
// and -exec on fs.
func RegisterEngineFlags(fs *flag.FlagSet) *EngineFlags {
	ef := &EngineFlags{}
	fs.DurationVar(&ef.Timeout, "timeout", 0, "abort the solve after this wall-clock duration (0 = none)")
	fs.Int64Var(&ef.Budget, "budget", 0, "abort the solve after this many work units (0 = unbounded)")
	fs.BoolVar(&ef.Stats, "stats", false, "print engine counters and stage timings on exit")
	fs.StringVar(&ef.StatsFormat, "stats-format", "table", "render -stats as 'table' or 'prom' (Prometheus text exposition)")
	fs.StringVar(&ef.Exec, "exec", "compiled", "TAG execution core: 'compiled' or 'interp'")
	return ef
}

// Config materializes the flags as an engine.Config. A -timeout starts its
// deadline now; Finish releases it. An unknown -exec value falls back to
// the compiled core (ParseExecMode's error is reported by Validate, which
// commands call right after flag parsing).
func (ef *EngineFlags) Config() engine.Config {
	mode, _ := engine.ParseExecMode(ef.Exec)
	cfg := engine.Config{Budget: ef.Budget, Mode: mode}
	if ef.Timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), ef.Timeout)
		ef.cancel = cancel
		cfg.Ctx = ctx
	}
	if ef.Stats {
		ef.counters = engine.NewCounters()
		cfg.Observer = ef.counters
	}
	return cfg
}

// Validate reports bad flag values after parsing (currently only -exec).
func (ef *EngineFlags) Validate() error {
	_, err := engine.ParseExecMode(ef.Exec)
	return err
}

// Mode returns the -exec execution mode (compiled for unknown values;
// Validate reports those).
func (ef *EngineFlags) Mode() engine.ExecMode {
	mode, _ := engine.ParseExecMode(ef.Exec)
	return mode
}

// Finish releases the -timeout context and, under -stats, writes the
// counter table to w. Safe to call when Config was never called.
func (ef *EngineFlags) Finish(w io.Writer) {
	if ef.cancel != nil {
		ef.cancel()
		ef.cancel = nil
	}
	if ef.counters != nil {
		if ef.StatsFormat == "prom" {
			engine.WriteMetricsText(w, ef.counters)
		} else {
			ef.counters.WriteTable(w)
		}
	}
}

// ReportInterrupted prints a one-line diagnostic for budget/deadline
// interruptions and reports whether err was one; any other error (or nil)
// returns false so the caller can fail normally.
func ReportInterrupted(w io.Writer, err error) bool {
	var ip *engine.Interrupted
	if errors.As(err, &ip) {
		fmt.Fprintf(w, "INTERRUPTED (%s) after %d work units\n", ip.Reason, ip.Steps)
		return true
	}
	return false
}
