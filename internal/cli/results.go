// Result models shared by the CLIs and the tempod server: each solver
// command builds one of these structs, then renders it as the historical
// text output (RenderText) or as canonical JSON (EncodeJSON). tempod
// serves the same structs through the same encoder, so for the same
// inputs the server payload is byte-identical to the CLI's -json output.
package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/exact"
	"repro/internal/granularity"
	"repro/internal/mining"
	"repro/internal/propagate"
	"repro/internal/tag"
)

// InterruptedInfo is the wire form of an engine.Interrupted: the solve was
// cut short and the result carries only the work done so far.
type InterruptedInfo struct {
	Reason string `json:"reason"`
	Steps  int64  `json:"steps"`
}

// InterruptedFrom extracts the wire form from an error chain, or nil when
// the error is not an engine interruption.
func InterruptedFrom(err error) *InterruptedInfo {
	var ip *engine.Interrupted
	if errors.As(err, &ip) {
		return &InterruptedInfo{Reason: ip.Reason, Steps: ip.Steps}
	}
	return nil
}

// renderInterrupted writes the historical one-line diagnostic.
func (ii *InterruptedInfo) renderInterrupted(w io.Writer) {
	fmt.Fprintf(w, "INTERRUPTED (%s) after %d work units\n", ii.Reason, ii.Steps)
}

// VarValue is one "variable = value" pair, ordered as rendered.
type VarValue struct {
	Var   string `json:"var"`
	Value string `json:"value"`
}

// encodeJSON is the one canonical JSON encoding every result shares:
// two-space indent, trailing newline.
func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// ---------------------------------------------------------------------------
// tcgcheck / POST /v1/check

// CheckResult is the outcome of a consistency check: approximate
// propagation, optionally followed by the exact bounded-horizon decision.
type CheckResult struct {
	// Structure is the rendered event structure.
	Structure string `json:"structure"`
	// Propagation is present once propagation ran to a verdict.
	Propagation *PropagationResult `json:"propagation,omitempty"`
	// Exact is present when the exact solver ran to a verdict.
	Exact *ExactResult `json:"exact,omitempty"`
	// Interrupted marks a solve cut short by budget/deadline/fault.
	Interrupted *InterruptedInfo `json:"interrupted,omitempty"`
}

// PropagationResult is the approximate propagation verdict.
type PropagationResult struct {
	Consistent bool `json:"consistent"`
	Iterations int  `json:"iterations"`
	// Derived is the rendered per-granularity constraint table (empty when
	// propagation refuted the structure).
	Derived string `json:"derived,omitempty"`
}

// ExactResult is the exact bounded-horizon verdict.
type ExactResult struct {
	Satisfiable  bool       `json:"satisfiable"`
	Nodes        int64      `json:"nodes"`
	HorizonStart string     `json:"horizon_start"`
	HorizonEnd   string     `json:"horizon_end"`
	Witness      []VarValue `json:"witness,omitempty"`
}

// CheckOptions configures RunCheck.
type CheckOptions struct {
	// Exact also runs the exact bounded-horizon solver over
	// [FromYear-01-01, ToYear-12-31].
	Exact    bool
	FromYear int
	ToYear   int
	Engine   engine.Config
}

// RunCheck runs propagation (and optionally the exact solver) over s and
// builds the shared result. Interruptions are reported inside the result,
// not as an error; only genuine failures (bad horizon, solver errors)
// return a non-nil error.
func RunCheck(sys *granularity.System, s *core.EventStructure, opt CheckOptions) (*CheckResult, error) {
	res := &CheckResult{Structure: s.String()}
	r, err := propagate.Run(sys, s, propagate.Options{Engine: opt.Engine})
	if err != nil {
		if ii := InterruptedFrom(err); ii != nil {
			res.Interrupted = ii
			return res, nil
		}
		return nil, err
	}
	res.Propagation = &PropagationResult{Consistent: r.Consistent, Iterations: r.Iterations}
	if !r.Consistent {
		return res, nil
	}
	var derived strings.Builder
	if err := r.Render(&derived); err != nil {
		return nil, err
	}
	res.Propagation.Derived = derived.String()
	if !opt.Exact {
		return res, nil
	}
	start := event.At(opt.FromYear, 1, 1, 0, 0, 0)
	end := event.At(opt.ToYear, 12, 31, 23, 59, 59)
	v, err := exact.Solve(sys, s, exact.Options{Start: start, End: end, Engine: opt.Engine})
	if err != nil {
		if ii := InterruptedFrom(err); ii != nil {
			res.Interrupted = ii
			return res, nil
		}
		return nil, err
	}
	ex := &ExactResult{
		Satisfiable:  v.Satisfiable,
		Nodes:        v.Nodes,
		HorizonStart: event.Civil(start),
		HorizonEnd:   event.Civil(end),
	}
	if v.Satisfiable {
		for _, x := range s.Variables() {
			ex.Witness = append(ex.Witness, VarValue{Var: string(x), Value: event.Civil(v.Witness[x])})
		}
	}
	res.Exact = ex
	return res, nil
}

// RenderText writes the historical tcgcheck output.
func (r *CheckResult) RenderText(w io.Writer) error {
	fmt.Fprintln(w, "structure:")
	fmt.Fprint(w, r.Structure)
	if r.Propagation == nil {
		if r.Interrupted != nil {
			r.Interrupted.renderInterrupted(w)
		}
		return nil
	}
	if !r.Propagation.Consistent {
		fmt.Fprintln(w, "propagation: INCONSISTENT (definitive)")
		return nil
	}
	fmt.Fprintf(w, "propagation: not refuted (%d iterations); derived constraints:\n", r.Propagation.Iterations)
	fmt.Fprint(w, r.Propagation.Derived)
	if r.Exact == nil {
		if r.Interrupted != nil {
			r.Interrupted.renderInterrupted(w)
		}
		return nil
	}
	if !r.Exact.Satisfiable {
		fmt.Fprintf(w, "exact: UNSATISFIABLE within [%s, %s] (%d nodes)\n",
			r.Exact.HorizonStart, r.Exact.HorizonEnd, r.Exact.Nodes)
		return nil
	}
	fmt.Fprintf(w, "exact: SATISFIABLE (%d nodes); witness:\n", r.Exact.Nodes)
	for _, vv := range r.Exact.Witness {
		fmt.Fprintf(w, "  %s = %s\n", vv.Var, vv.Value)
	}
	return nil
}

// EncodeJSON writes the canonical JSON form — the CLI -json output and the
// tempod /v1/check response body, byte-identical for the same inputs.
func (r *CheckResult) EncodeJSON(w io.Writer) error { return encodeJSON(w, r) }

// ---------------------------------------------------------------------------
// tagrun / TAG sessions

// AutomatonInfo summarizes a compiled TAG.
type AutomatonInfo struct {
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	Clocks      int `json:"clocks"`
}

// AutomatonInfoOf builds the summary from a compiled automaton.
func AutomatonInfoOf(a *tag.TAG) AutomatonInfo {
	return AutomatonInfo{States: a.NumStates(), Transitions: a.NumTransitions(), Clocks: len(a.Clocks())}
}

// VarIndex binds a variable to a 0-based event index in feeding order.
type VarIndex struct {
	Var   string `json:"var"`
	Index int    `json:"index"`
}

// StreamResult is the state of an unanchored (streaming) TAG run: the
// tagrun summary and the tempod session view share it.
type StreamResult struct {
	// Events is the number of events presented to the run so far (the full
	// input length for a batch scan).
	Events      int  `json:"events"`
	Accepted    bool `json:"accepted"`
	Steps       int  `json:"steps"`
	MaxFrontier int  `json:"max_frontier"`
	// Degraded marks an overflowed frontier: non-acceptance is no verdict.
	Degraded bool `json:"degraded,omitempty"`
	// AcceptIndex/AcceptTime locate the first acceptance (present when
	// Accepted and the accepting event is known).
	AcceptIndex *int             `json:"accept_index,omitempty"`
	AcceptTime  string           `json:"accept_time,omitempty"`
	Binding     []VarIndex       `json:"binding,omitempty"`
	Interrupted *InterruptedInfo `json:"interrupted,omitempty"`
}

// StreamResultFromRunner captures a Runner's current state. events is the
// total number of events presented; acceptTime is the timestamp of the
// accepting event when known (haveAcceptTime), e.g. the event whose Feed
// reported acceptance.
func StreamResultFromRunner(r *tag.Runner, events int, acceptTime int64, haveAcceptTime bool) *StreamResult {
	sr := &StreamResult{
		Events:      events,
		Accepted:    r.Accepted(),
		Steps:       r.Steps(),
		MaxFrontier: r.MaxFrontier(),
		Degraded:    r.Degraded(),
	}
	if r.Accepted() {
		idx := r.Steps() - 1
		sr.AcceptIndex = &idx
		if haveAcceptTime {
			sr.AcceptTime = event.Civil(acceptTime)
		}
		if b := r.Binding(); len(b) > 0 {
			vars := make([]string, 0, len(b))
			for v := range b {
				vars = append(vars, v)
			}
			sort.Strings(vars)
			for _, v := range vars {
				sr.Binding = append(sr.Binding, VarIndex{Var: v, Index: b[v]})
			}
		}
	}
	return sr
}

// RenderText writes the historical tagrun streaming summary.
func (sr *StreamResult) RenderText(w io.Writer) error {
	if sr.Interrupted != nil {
		sr.Interrupted.renderInterrupted(w)
		return nil
	}
	fmt.Fprintf(w, "events=%d accepted=%v steps=%d maxFrontier=%d\n",
		sr.Events, sr.Accepted, sr.Steps, sr.MaxFrontier)
	if sr.Degraded {
		fmt.Fprintln(w, "WARNING: run frontier overflowed; non-acceptance is not a verdict")
	}
	if sr.Accepted && sr.AcceptIndex != nil {
		fmt.Fprintf(w, "first acceptance at event index %d (%s)\n", *sr.AcceptIndex, sr.AcceptTime)
		if len(sr.Binding) > 0 {
			fmt.Fprint(w, "binding:")
			for _, b := range sr.Binding {
				fmt.Fprintf(w, " %s=%d", b.Var, b.Index)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// AnchoredResult is the outcome of anchored (per-reference) TAG runs.
type AnchoredResult struct {
	// Matches are the civil timestamps of the matching references.
	Matches    []string `json:"matches,omitempty"`
	References int      `json:"references"`
	MatchCount int      `json:"match_count"`
	Frequency  float64  `json:"frequency"`
}

// RenderText writes the historical tagrun anchored summary.
func (ar *AnchoredResult) RenderText(w io.Writer) error {
	for _, m := range ar.Matches {
		fmt.Fprintf(w, "match at %s\n", m)
	}
	fmt.Fprintf(w, "references=%d matches=%d frequency=%.3f\n",
		ar.References, ar.MatchCount, ar.Frequency)
	return nil
}

// TagResult is the full tagrun outcome: the compiled automaton summary
// plus one of the run modes (or an interruption).
type TagResult struct {
	Automaton   AutomatonInfo    `json:"automaton"`
	Stream      *StreamResult    `json:"stream,omitempty"`
	Anchored    *AnchoredResult  `json:"anchored,omitempty"`
	Interrupted *InterruptedInfo `json:"interrupted,omitempty"`
}

// RenderText writes the historical tagrun output (minus the cmd-side
// resumed/checkpoint lines, which wrap around it).
func (tr *TagResult) RenderText(w io.Writer) error {
	fmt.Fprintf(w, "TAG: %d states, %d transitions, %d clocks\n",
		tr.Automaton.States, tr.Automaton.Transitions, tr.Automaton.Clocks)
	switch {
	case tr.Stream != nil:
		return tr.Stream.RenderText(w)
	case tr.Anchored != nil:
		return tr.Anchored.RenderText(w)
	case tr.Interrupted != nil:
		tr.Interrupted.renderInterrupted(w)
	}
	return nil
}

// EncodeJSON writes the canonical JSON form.
func (tr *TagResult) EncodeJSON(w io.Writer) error { return encodeJSON(w, tr) }

// ---------------------------------------------------------------------------
// miner / mining jobs

// MineStats is the wire form of mining.Stats.
type MineStats struct {
	Events     int   `json:"events"`
	Reduced    int   `json:"reduced"`
	References int   `json:"references"`
	Candidates int64 `json:"candidates"`
	Scanned    int   `json:"scanned"`
	TagRuns    int   `json:"tag_runs"`
}

// WitnessResult is one explained occurrence of a discovery.
type WitnessResult struct {
	Reference string     `json:"reference"`
	Binding   []VarValue `json:"binding"`
}

// DiscoveryResult is one discovered complex event type.
type DiscoveryResult struct {
	Frequency float64         `json:"frequency"`
	Matches   int             `json:"matches"`
	Assign    []VarValue      `json:"assign"`
	Witnesses []WitnessResult `json:"witnesses,omitempty"`
}

// MineResult is the full miner outcome.
type MineResult struct {
	Tau          float64           `json:"tau"`
	Stats        *MineStats        `json:"stats,omitempty"`
	Inconsistent bool              `json:"inconsistent,omitempty"`
	Discoveries  []DiscoveryResult `json:"discoveries"`
	Interrupted  *InterruptedInfo  `json:"interrupted,omitempty"`
}

// BuildMineResult converts a finished mine into the shared result. explain
// > 0 attaches up to that many witness occurrences per discovery, extracted
// on the TAG execution core selected by mode (pass the mine's own
// opt.Engine.Mode so -exec governs the witness runs too).
func BuildMineResult(sys *granularity.System, p mining.Problem, seq event.Sequence,
	ds []mining.Discovery, stats mining.Stats, tau float64, explain int, mode engine.ExecMode) (*MineResult, error) {
	res := &MineResult{
		Tau: tau,
		Stats: &MineStats{
			Events:     stats.SequenceEvents,
			Reduced:    stats.ReducedEvents,
			References: stats.ReferenceOccurrences,
			Candidates: stats.CandidatesTotal,
			Scanned:    stats.CandidatesScanned,
			TagRuns:    stats.TagRuns,
		},
		Inconsistent: stats.Inconsistent,
		Discoveries:  []DiscoveryResult{},
	}
	for _, d := range ds {
		vars := make([]string, 0, len(d.Assign))
		for v := range d.Assign {
			vars = append(vars, string(v))
		}
		sort.Strings(vars)
		dr := DiscoveryResult{Frequency: d.Frequency, Matches: d.Matches}
		for _, v := range vars {
			dr.Assign = append(dr.Assign, VarValue{Var: v, Value: string(d.Assign[core.Variable(v)])})
		}
		if explain > 0 {
			ws, err := mining.ExplainMode(sys, p, seq, d, explain, mode)
			if err != nil {
				return nil, err
			}
			for _, w := range ws {
				wr := WitnessResult{Reference: event.Civil(w.Reference.Time)}
				for _, v := range vars {
					e := w.Binding[core.Variable(v)]
					wr.Binding = append(wr.Binding, VarValue{Var: v, Value: event.Civil(e.Time)})
				}
				dr.Witnesses = append(dr.Witnesses, wr)
			}
		}
		res.Discoveries = append(res.Discoveries, dr)
	}
	return res, nil
}

// RenderText writes the historical miner output.
func (mr *MineResult) RenderText(w io.Writer) error {
	if mr.Interrupted != nil {
		mr.Interrupted.renderInterrupted(w)
		return nil
	}
	s := mr.Stats
	fmt.Fprintf(w, "events=%d (reduced %d) references=%d candidates=%d scanned=%d tagRuns=%d\n",
		s.Events, s.Reduced, s.References, s.Candidates, s.Scanned, s.TagRuns)
	if mr.Inconsistent {
		fmt.Fprintln(w, "structure is inconsistent; no solutions possible")
		return nil
	}
	if len(mr.Discoveries) == 0 {
		fmt.Fprintf(w, "no complex event type exceeds confidence %.3f\n", mr.Tau)
		return nil
	}
	for _, d := range mr.Discoveries {
		fmt.Fprintf(w, "freq=%.3f matches=%d:", d.Frequency, d.Matches)
		for _, vv := range d.Assign {
			fmt.Fprintf(w, " %s=%s", vv.Var, vv.Value)
		}
		fmt.Fprintln(w)
		for _, wit := range d.Witnesses {
			fmt.Fprintf(w, "  witness @ %s:", wit.Reference)
			for _, vv := range wit.Binding {
				fmt.Fprintf(w, " %s=%s", vv.Var, vv.Value)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// EncodeJSON writes the canonical JSON form — the miner -json output and
// the "result" object of a tempod mining job, byte-identical.
func (mr *MineResult) EncodeJSON(w io.Writer) error { return encodeJSON(w, mr) }
