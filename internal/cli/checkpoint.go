package cli

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
)

// SaveCheckpoint writes a checkpoint file atomically: the encoder's output
// goes to a temporary sibling which is fsynced and renamed over path, so a
// crash mid-write can never leave a truncated checkpoint — the previous one
// (or none) survives instead.
func SaveCheckpoint(path string, encode func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cli: writing checkpoint: %w", err)
	}
	if err := encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cli: encoding checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cli: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cli: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cli: installing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint opens a checkpoint file and feeds it to decode. A missing
// file is not an error: it reports (false, nil) so callers start fresh.
func LoadCheckpoint(path string, decode func(io.Reader) error) (loaded bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cli: opening checkpoint: %w", err)
	}
	defer f.Close()
	if err := decode(f); err != nil {
		return false, err
	}
	return true, nil
}
