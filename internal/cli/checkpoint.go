package cli

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// SaveCheckpoint writes a checkpoint file atomically: the encoder's output
// goes to a temporary sibling which is fsynced and renamed over path, so a
// crash mid-write can never leave a truncated checkpoint — the previous one
// (or none) survives instead. The parent directory is fsynced after the
// rename; without that, a power loss can forget the rename itself and
// resurface the old checkpoint (or none) even though the call returned.
func SaveCheckpoint(path string, encode func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cli: writing checkpoint: %w", err)
	}
	if err := encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cli: encoding checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cli: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cli: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cli: installing checkpoint: %w", err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("cli: syncing checkpoint directory: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory so renames and creates inside it survive a
// power loss.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// CorruptCheckpointError reports a checkpoint file that exists but does
// not decode — truncated, torn or otherwise damaged. LoadCheckpoint has
// already renamed the damaged file to Quarantine when the error is
// returned, so a retry (or a restart) finds no checkpoint and starts
// fresh instead of crash-looping on the same bad bytes.
type CorruptCheckpointError struct {
	Path       string // the checkpoint that failed to decode
	Quarantine string // where the damaged bytes were moved ("" if the move failed)
	Err        error  // the decoder's complaint
}

func (e *CorruptCheckpointError) Error() string {
	if e.Quarantine != "" {
		return fmt.Sprintf("cli: corrupt checkpoint %s (moved to %s): %v", e.Path, e.Quarantine, e.Err)
	}
	return fmt.Sprintf("cli: corrupt checkpoint %s: %v", e.Path, e.Err)
}

func (e *CorruptCheckpointError) Unwrap() error { return e.Err }

// LoadCheckpoint opens a checkpoint file and feeds it to decode. A missing
// file is not an error: it reports (false, nil) so callers start fresh. A
// file that fails to decode is renamed to path+".corrupt" (keeping the
// evidence, clearing the way) and reported as a *CorruptCheckpointError;
// callers that treat it as soft can errors.As for it and start fresh too.
func LoadCheckpoint(path string, decode func(io.Reader) error) (loaded bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("cli: opening checkpoint: %w", err)
	}
	defer f.Close()
	if err := decode(f); err != nil {
		cerr := &CorruptCheckpointError{Path: path, Err: err}
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr == nil {
			cerr.Quarantine = quarantine
			SyncDir(filepath.Dir(path))
		}
		return false, cerr
	}
	return true, nil
}
