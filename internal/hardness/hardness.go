// Package hardness realizes the paper's Theorem-1 machinery: SUBSET-SUM
// instances, an exact dynamic-programming subset-sum solver, and the
// reduction from SUBSET SUM to event-structure consistency built from
// n-month granularities (Appendix A.2).
//
// One honest deviation from the extended abstract: the published gadget
// pins each X_i to the last month of a fixed n_i-month block and of a fixed
// n_{i-1}-month block simultaneously. For arbitrary n_i these alignment
// congruences can be unsolvable even when the subset-sum instance is
// solvable (e.g. numbers {2,3,4}, target 3), so the literal reduction is
// only correct in the consistent ⇒ solvable direction. We therefore
// restrict generated instances to pairwise-coprime numbers, for which the
// Chinese Remainder Theorem guarantees the alignment is always satisfiable
// and the reduction is exact in both directions. The experiments (E3)
// verify both directions on such instances.
package hardness

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/granularity"
)

// Instance is a SUBSET-SUM instance: does some subset of Numbers sum to
// Target?
type Instance struct {
	Numbers []int64
	Target  int64
}

// String formats the instance.
func (in Instance) String() string {
	return fmt.Sprintf("subset-sum(%v, target=%d)", in.Numbers, in.Target)
}

// Validate checks the instance is well-formed for the reduction: at least
// one number, all numbers >= 2, target >= 0.
func (in Instance) Validate() error {
	if len(in.Numbers) == 0 {
		return fmt.Errorf("hardness: empty instance")
	}
	for _, n := range in.Numbers {
		if n < 2 {
			return fmt.Errorf("hardness: numbers must be >= 2 (got %d)", n)
		}
	}
	if in.Target < 0 {
		return fmt.Errorf("hardness: negative target")
	}
	return nil
}

// SolveSubsetSum decides the instance exactly by dynamic programming over
// achievable sums and returns one witness subset (indices into Numbers)
// when solvable.
func SolveSubsetSum(in Instance) ([]int, bool) {
	if in.Target == 0 {
		return []int{}, true
	}
	// from[s] = index of the number whose inclusion first achieved sum s,
	// -1 when unreached.
	from := make([]int, in.Target+1)
	for i := range from {
		from[i] = -1
	}
	from[0] = len(in.Numbers) // sentinel: sum 0 reachable with no numbers
	for idx, n := range in.Numbers {
		if n > in.Target {
			continue
		}
		for s := in.Target; s >= n; s-- {
			if from[s] == -1 && from[s-n] != -1 && from[s-n] != idx {
				// from[s-n] != idx is guaranteed by the downward sweep
				// (each number used at most once), kept as a guard.
				from[s] = idx
			}
		}
	}
	if from[in.Target] == -1 {
		return nil, false
	}
	var subset []int
	s := in.Target
	for s > 0 {
		idx := from[s]
		subset = append(subset, idx)
		s -= in.Numbers[idx]
	}
	sort.Ints(subset)
	return subset, true
}

// coprimePool is a pool of pairwise-coprime candidates >= 2 used by the
// generators: primes and prime powers with distinct bases.
var coprimePool = []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43}

// Generate builds a pairwise-coprime instance with k numbers: the k
// smallest pool values (keeping lcm — and with it the exact solver's
// CRT horizon — small), with a randomized target. When solvable, the
// target is the sum of a random non-empty proper subset; otherwise the
// target is perturbed until the DP solver confirms unsolvability.
// Deterministic per seed.
func Generate(k int, solvable bool, seed int64) Instance {
	if k < 2 || k > len(coprimePool) {
		panic(fmt.Sprintf("hardness: k must be in [2,%d]", len(coprimePool)))
	}
	rng := rand.New(rand.NewSource(seed))
	nums := make([]int64, k)
	copy(nums, coprimePool[:k])
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	var total int64
	for _, n := range nums {
		total += n
	}
	if solvable {
		var target int64
		for target == 0 || target == total {
			target = 0
			for _, n := range nums {
				if rng.Intn(2) == 1 {
					target += n
				}
			}
		}
		return Instance{Numbers: nums, Target: target}
	}
	// Walk targets from 1 upward until one is unreachable; since the
	// numbers are distinct and >= 2, small non-sums always exist (1 is
	// never a sum, but use a random unreachable one for variety).
	start := rng.Int63n(total) + 1
	for off := int64(0); off <= total; off++ {
		t := (start+off)%total + 1
		in := Instance{Numbers: nums, Target: t}
		if _, ok := SolveSubsetSum(in); !ok {
			return in
		}
	}
	return Instance{Numbers: nums, Target: 1} // 1 is never a sum of n>=2
}

// Reduce builds the Theorem-1 event structure for the instance and
// registers the needed n-month granularities in sys. Variables are named
// X1..X{k+1}, V1..Vk, U1..Uk as in the paper.
func Reduce(in Instance, sys *granularity.System) (*core.EventStructure, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := core.NewStructure()
	k := len(in.Numbers)
	x := func(i int) core.Variable { return core.Variable(fmt.Sprintf("X%d", i)) }
	for i, n := range in.Numbers {
		name := fmt.Sprintf("%d-month", n)
		if _, ok := sys.Get(name); !ok {
			sys.Add(granularity.NMonth(n))
		}
		vi := core.Variable(fmt.Sprintf("V%d", i+1))
		ui := core.Variable(fmt.Sprintf("U%d", i+1))
		// (X_i, X_{i+1}) ∈ [0, n_i]month.
		s.MustConstrain(x(i+1), x(i+2), core.MustTCG(0, n, "month"))
		// (V_i, X_i): same n_i-month granule, exactly n_i−1 months apart —
		// pins X_i to the last month of its block.
		s.MustConstrain(vi, x(i+1), core.MustTCG(0, 0, name), core.MustTCG(n-1, n-1, "month"))
		// (U_i, X_{i+1}): pins X_{i+1} the same way.
		s.MustConstrain(ui, x(i+2), core.MustTCG(0, 0, name), core.MustTCG(n-1, n-1, "month"))
	}
	// (X_1, X_{k+1}) ∈ [s, s]month.
	s.MustConstrain(x(1), x(k+1), core.MustTCG(in.Target, in.Target, "month"))
	return s, nil
}

// Horizon returns a second horizon [start, end] large enough that the
// reduced structure is satisfiable within it whenever the instance is
// solvable: the CRT alignment has a solution within any window of
// lcm(numbers) months — we allow two periods so the V gadget months stay
// positive — and the chain extends at most target months beyond it.
func Horizon(in Instance) (start, end int64) {
	l := int64(1)
	for _, n := range in.Numbers {
		l = lcm(l, n)
	}
	months := 2*l + in.Target + maxOf(in.Numbers) + 2
	month := granularity.Month()
	iv, ok := month.Span(months)
	if !ok {
		panic("hardness: horizon span undefined")
	}
	return 1, iv.Last
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

func maxOf(ns []int64) int64 {
	m := ns[0]
	for _, n := range ns[1:] {
		if n > m {
			m = n
		}
	}
	return m
}

// ExtractSubset recovers the chosen subset from a consistency witness of
// the reduced structure: index i is in the subset iff X_{i+1} is n_i months
// after X_i. ok is false if the witness does not decode to a valid subset
// (which would indicate a solver bug).
func ExtractSubset(in Instance, witness map[core.Variable]int64) ([]int, bool) {
	month := granularity.Month()
	monthOf := func(v core.Variable) (int64, bool) {
		t, ok := witness[v]
		if !ok {
			return 0, false
		}
		return month.TickOf(t)
	}
	var subset []int
	var sum int64
	for i, n := range in.Numbers {
		a, ok1 := monthOf(core.Variable(fmt.Sprintf("X%d", i+1)))
		b, ok2 := monthOf(core.Variable(fmt.Sprintf("X%d", i+2)))
		if !ok1 || !ok2 {
			return nil, false
		}
		switch b - a {
		case 0:
		case n:
			subset = append(subset, i)
			sum += n
		default:
			return nil, false
		}
	}
	if sum != in.Target {
		return nil, false
	}
	return subset, true
}
