package hardness

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/granularity"
	"repro/internal/propagate"
)

func TestSolveSubsetSumBasics(t *testing.T) {
	cases := []struct {
		nums   []int64
		target int64
		want   bool
	}{
		{[]int64{2, 3, 5}, 5, true},
		{[]int64{2, 3, 5}, 10, true},
		{[]int64{2, 3, 5}, 4, false},
		{[]int64{2, 3, 5}, 1, false},
		{[]int64{2, 3, 5}, 0, true},
		{[]int64{7, 11, 13}, 18, true},
		{[]int64{7, 11, 13}, 19, false},
		{[]int64{5, 5, 5}, 15, true},
		{[]int64{5, 5, 5}, 12, false},
	}
	for _, c := range cases {
		in := Instance{Numbers: c.nums, Target: c.target}
		subset, ok := SolveSubsetSum(in)
		if ok != c.want {
			t.Errorf("%v: solvable=%v, want %v", in, ok, c.want)
			continue
		}
		if ok {
			var sum int64
			seen := map[int]bool{}
			for _, i := range subset {
				if seen[i] {
					t.Errorf("%v: witness reuses index %d", in, i)
				}
				seen[i] = true
				sum += c.nums[i]
			}
			if sum != c.target {
				t.Errorf("%v: witness sums to %d", in, sum)
			}
		}
	}
}

func TestGenerate(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		for seed := int64(0); seed < 5; seed++ {
			yes := Generate(k, true, seed)
			if err := yes.Validate(); err != nil {
				t.Fatal(err)
			}
			if _, ok := SolveSubsetSum(yes); !ok {
				t.Fatalf("Generate(solvable) gave unsolvable %v", yes)
			}
			no := Generate(k, false, seed)
			if _, ok := SolveSubsetSum(no); ok {
				t.Fatalf("Generate(unsolvable) gave solvable %v", no)
			}
			// Pairwise coprime.
			for i := range yes.Numbers {
				for j := i + 1; j < len(yes.Numbers); j++ {
					if gcd(yes.Numbers[i], yes.Numbers[j]) != 1 {
						t.Fatalf("numbers %v not pairwise coprime", yes.Numbers)
					}
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(4, true, 7)
	b := Generate(4, true, 7)
	if a.Target != b.Target || len(a.Numbers) != len(b.Numbers) {
		t.Fatal("same seed should reproduce the instance")
	}
}

func TestReduceShape(t *testing.T) {
	sys := granularity.Default()
	in := Instance{Numbers: []int64{2, 3}, Target: 5}
	s, err := Reduce(in, sys)
	if err != nil {
		t.Fatal(err)
	}
	// k=2: X1..X3, V1,V2, U1,U2 = 7 variables.
	if s.NumVariables() != 7 {
		t.Fatalf("reduction has %d variables, want 7", s.NumVariables())
	}
	// Arcs: 2 chain + 1 sum + 2V + 2U = 7.
	if s.NumEdges() != 7 {
		t.Fatalf("reduction has %d edges, want 7", s.NumEdges())
	}
	if !s.IsAcyclic() {
		t.Fatal("reduction must be acyclic")
	}
	if _, ok := sys.Get("2-month"); !ok {
		t.Fatal("2-month granularity not registered")
	}
	if _, ok := sys.Get("3-month"); !ok {
		t.Fatal("3-month granularity not registered")
	}
	cs := s.Constraints("V1", "X1")
	if len(cs) != 2 {
		t.Fatalf("V1->X1 should carry 2 TCGs, got %v", cs)
	}
}

func TestReduceRejectsBadInstance(t *testing.T) {
	sys := granularity.Default()
	if _, err := Reduce(Instance{Numbers: []int64{1, 3}, Target: 3}, sys); err == nil {
		t.Fatal("numbers < 2 should be rejected")
	}
	if _, err := Reduce(Instance{}, sys); err == nil {
		t.Fatal("empty instance should be rejected")
	}
}

// TestReductionFaithful is the heart of E3: for small pairwise-coprime
// instances, the reduced structure is consistent (within the CRT horizon)
// exactly when the subset-sum instance is solvable, and witnesses decode to
// valid subsets.
func TestReductionFaithful(t *testing.T) {
	cases := []Instance{
		{Numbers: []int64{2, 3}, Target: 5},     // yes: {2,3}
		{Numbers: []int64{2, 3}, Target: 2},     // yes: {2}
		{Numbers: []int64{2, 3}, Target: 4},     // no
		{Numbers: []int64{2, 3}, Target: 1},     // no
		{Numbers: []int64{2, 5}, Target: 7},     // yes
		{Numbers: []int64{3, 5}, Target: 4},     // no
		{Numbers: []int64{2, 3, 5}, Target: 8},  // yes: {3,5}
		{Numbers: []int64{2, 3, 5}, Target: 9},  // no
		{Numbers: []int64{2, 3, 5}, Target: 10}, // yes: all
	}
	for _, in := range cases {
		sys := granularity.Default()
		s, err := Reduce(in, sys)
		if err != nil {
			t.Fatal(err)
		}
		_, want := SolveSubsetSum(in)
		start, end := Horizon(in)
		v, err := exact.Solve(sys, s, exact.Options{Start: start, End: end})
		if err != nil {
			t.Fatalf("%v: %v", in, err)
		}
		if v.Satisfiable != want {
			t.Fatalf("%v: consistency=%v but subset-sum solvable=%v", in, v.Satisfiable, want)
		}
		if v.Satisfiable {
			subset, ok := ExtractSubset(in, v.Witness)
			if !ok {
				t.Fatalf("%v: witness does not decode to a subset: %v", in, v.Witness)
			}
			var sum int64
			for _, i := range subset {
				sum += in.Numbers[i]
			}
			if sum != in.Target {
				t.Fatalf("%v: decoded subset sums to %d", in, sum)
			}
		}
	}
}

// TestPropagationCannotRefuteSolvableShapes shows the approximation gap:
// the unsolvable instances above are never refuted by propagation alone
// (their refutation needs the implicit disjunction).
func TestPropagationIncompleteOnReduction(t *testing.T) {
	in := Instance{Numbers: []int64{2, 3}, Target: 4} // unsolvable
	sys := granularity.Default()
	s, err := Reduce(in, sys)
	if err != nil {
		t.Fatal(err)
	}
	r, err := propagate.Run(sys, s, propagate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Fatal("propagation unexpectedly refuted the gadget (it is sound but should be too weak here)")
	}
	start, end := Horizon(in)
	v, err := exact.Solve(sys, s, exact.Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfiable {
		t.Fatal("exact solver must refute the unsolvable instance")
	}
}

func TestHorizonCoversLCM(t *testing.T) {
	in := Instance{Numbers: []int64{2, 3, 5}, Target: 10}
	start, end := Horizon(in)
	if start != 1 {
		t.Fatalf("start = %d", start)
	}
	// 2*30 + 10 + 5 + 2 = 77 months.
	m := granularity.Month()
	iv, _ := m.Span(77)
	if end != iv.Last {
		t.Fatalf("end = %d, want end of month 77 = %d", end, iv.Last)
	}
}
