package hardness_test

import (
	"fmt"

	"repro/internal/exact"
	"repro/internal/granularity"
	"repro/internal/hardness"
)

// Example runs the Theorem-1 reduction end to end: a SUBSET-SUM instance
// becomes an event structure whose consistency encodes solvability, and
// the exact witness decodes back to the chosen subset.
func Example() {
	in := hardness.Instance{Numbers: []int64{2, 3, 5}, Target: 8}
	sys := granularity.Default()
	s, err := hardness.Reduce(in, sys)
	if err != nil {
		panic(err)
	}
	start, end := hardness.Horizon(in)
	v, err := exact.Solve(sys, s, exact.Options{Start: start, End: end})
	if err != nil {
		panic(err)
	}
	fmt.Println("consistent:", v.Satisfiable)
	subset, _ := hardness.ExtractSubset(in, v.Witness)
	sum := int64(0)
	for _, i := range subset {
		sum += in.Numbers[i]
	}
	fmt.Println("subset sums to:", sum)
	// Output:
	// consistent: true
	// subset sums to: 8
}
