package oracle

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/mining"
)

// TestRegenerateCorpus rebuilds the committed regression corpus under
// testdata/oracle/ at the repository root. It only runs when
// ORACLE_REGEN=1 is set:
//
//	ORACLE_REGEN=1 go test ./internal/oracle -run TestRegenerateCorpus
//
// The corpus holds the shrunk repro of the demonstration conversion
// mutant plus one instance per contract family picked to exercise it
// (unsatisfiable structure, witness-rich structure, accepting TAG run,
// non-empty mining result). The repository-root replay test re-checks
// every file on every go test run.
func TestRegenerateCorpus(t *testing.T) {
	if os.Getenv("ORACLE_REGEN") != "1" {
		t.Skip("set ORACLE_REGEN=1 to rewrite testdata/oracle")
	}
	dir := filepath.Join("..", "..", "testdata", "oracle")
	k := DefaultKnobs()

	// The shrunk conversion-mutant repro (see
	// TestOracleCatchesBrokenConversion): replays clean on real code.
	broken := brokenMingapHooks()
	for seed := int64(1); seed <= 200; seed++ {
		in := GenInstance(seed, k)
		vs, _, err := CheckInstance(in, k, broken)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, v := range vs {
			if v.Contract == ContractConversion {
				hit = true
			}
		}
		if !hit {
			continue
		}
		shrunk := Shrink(in, ContractConversion, k, broken, 300)
		shrunk.Seed = seed
		save(t, dir, &Repro{
			Contract: ContractConversion,
			Detail:   "shrunk catch of an injected off-by-one in the Fig-3 mingap conversion; replays clean on real code",
			Instance: shrunk,
		})
		break
	}

	// The unconstrained-structure bug the oracle found in the exact
	// solver (no granularity-backed constraint ⇒ zero boundary points ⇒
	// wrongly unsatisfiable): keep the minimal trigger forever.
	save(t, dir, &Repro{
		Contract: ContractConsistency,
		Detail:   "exact returned unsatisfiable for a constraint-free structure (empty boundary-point set)",
		Instance: &Instance{
			Spec:         &core.Spec{Variables: []string{"A"}, Assign: map[string]string{"A": "a"}},
			HorizonStart: 1,
			HorizonEnd:   24,
		},
	})

	// One instance per contract family.
	var gotUnsat, gotWitness, gotTAG, gotMining bool
	for seed := int64(1); seed <= 500 && !(gotUnsat && gotWitness && gotTAG && gotMining); seed++ {
		in := GenInstance(seed, k)
		sys, err := in.System()
		if err != nil {
			t.Fatal(err)
		}
		s, err := in.Structure()
		if err != nil {
			t.Fatal(err)
		}
		brute := BruteConsistency(sys, s, in.HorizonStart, in.HorizonEnd, k.BruteCap, 8)
		switch {
		case !gotUnsat && !brute.Capped && !brute.Satisfiable:
			gotUnsat = true
			save(t, dir, &Repro{Contract: ContractConsistency,
				Detail: "regression corpus: unsatisfiable within the horizon", Instance: in})
		case !gotWitness && !brute.Capped && len(brute.Witnesses) >= 4:
			gotWitness = true
			save(t, dir, &Repro{Contract: ContractDerivedBound,
				Detail: "regression corpus: witness-rich structure for bound soundness", Instance: in})
		}
		if ct, err := in.ComplexType(); err == nil {
			if !gotTAG && core.OccursBrute(sys, ct, in.Seq) {
				gotTAG = true
				save(t, dir, &Repro{Contract: ContractTAG,
					Detail: "regression corpus: sequence with a genuine occurrence", Instance: in})
			}
			if root, err := s.Root(); err == nil && !gotMining && in.MinConfidence > 0 {
				p := mining.Problem{Structure: s, MinConfidence: in.MinConfidence, Reference: ct.Assign[root]}
				if ds, _, err := mining.Naive(sys, p, in.Seq); err == nil && len(ds) > 0 {
					gotMining = true
					save(t, dir, &Repro{Contract: ContractMining,
						Detail: "regression corpus: non-empty discovery set", Instance: in})
				}
			}
		}
	}
	if !(gotUnsat && gotWitness && gotTAG && gotMining) {
		t.Fatalf("corpus incomplete: unsat=%v witness=%v tag=%v mining=%v", gotUnsat, gotWitness, gotTAG, gotMining)
	}
}

func save(t *testing.T, dir string, r *Repro) {
	t.Helper()
	path, err := SaveRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
