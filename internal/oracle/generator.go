package oracle

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/periodic"
)

// Knobs sizes the generator. The defaults keep a single instance cheap
// enough that thousands of seeds run in seconds while still exercising
// multi-granularity conversion, gaps, diamonds and mining.
type Knobs struct {
	// MaxVars bounds the number of event variables (>= 2; the actual count
	// is drawn from [2, MaxVars]).
	MaxVars int
	// ExtraEdgeProb is the chance of each admissible extra arc beyond the
	// spanning tree (diamonds exercise path consistency and conversions).
	ExtraEdgeProb float64
	// MaxTCGsPerEdge bounds the conjunctive TCG set per arc.
	MaxTCGsPerEdge int
	// MaxMin and MaxWidth bound TCG intervals: Min in [0, MaxMin],
	// Max = Min + [0, MaxWidth].
	MaxMin, MaxWidth int64
	// HorizonEnd bounds the brute-force/exact horizon [1, HorizonEnd].
	// Kept small: the brute enumerator is exponential in MaxVars.
	HorizonEnd int64
	// SeqLen is the number of background events in generated sequences.
	SeqLen int
	// NumTypes is the size of the event-type pool.
	NumTypes int
	// BruteCap bounds the brute-force search nodes; instances exceeding it
	// skip the brute-backed contracts (counted, never silently).
	BruteCap int64
	// ExactMaxNodes bounds the exact solver's search.
	ExactMaxNodes int64
	// MiningMaxSpace skips the mining contract when the candidate space
	// exceeds it (the naive miner is exponential in the variables).
	MiningMaxSpace int64
	// Only, when non-empty, restricts checking to the named contracts;
	// everything else is skipped (and counted as skipped). Expensive shared
	// precomputation (brute-force consistency) is elided when no enabled
	// contract needs it, so a filtered campaign is proportionally cheaper.
	Only []string
}

// enabled reports whether the contract passes the Only filter.
func (k Knobs) enabled(contract string) bool {
	if len(k.Only) == 0 {
		return true
	}
	for _, c := range k.Only {
		if c == contract {
			return true
		}
	}
	return false
}

// DefaultKnobs returns the smoke configuration used by check.sh and the
// committed oracle tests.
func DefaultKnobs() Knobs {
	return Knobs{
		MaxVars:        4,
		ExtraEdgeProb:  0.35,
		MaxTCGsPerEdge: 2,
		MaxMin:         2,
		MaxWidth:       3,
		HorizonEnd:     60,
		SeqLen:         22,
		NumTypes:       3,
		BruteCap:       2_000_000,
		ExactMaxNodes:  1_000_000,
		MiningMaxSpace: 150,
	}
}

// granZoo returns the synthetic granularity shapes the generator draws
// from, parameterized by rng. Every shape is a periodic spec anchored near
// the timeline origin so the brute horizon sees several granules:
//
//   - uniform types of small sizes (sizes sharing divisors give feasible
//     conversion pairs, coprime sizes give straddling, infeasible ones);
//   - gapped types (granules separated by uncovered seconds — the b-day
//     weekend in miniature);
//   - late-anchored types (an uncovered prefix of the timeline).
func granZoo(rng *rand.Rand, n int) []periodic.Spec {
	uniform := func(name string, size, anchor int64) periodic.Spec {
		return periodic.Spec{
			Name: name, Period: size, Anchor: anchor,
			Granules: []periodic.Granule{{Spans: []periodic.Span{{First: 0, Last: size - 1}}}},
		}
	}
	gapped := func(name string, period, a, b, c, d, anchor int64) periodic.Spec {
		return periodic.Spec{
			Name: name, Period: period, Anchor: anchor,
			Granules: []periodic.Granule{
				{Spans: []periodic.Span{{First: a, Last: b}}},
				{Spans: []periodic.Span{{First: c, Last: d}}},
			},
		}
	}
	shapes := []func(i int) periodic.Spec{
		func(i int) periodic.Spec { return uniform(fmt.Sprintf("u%d", i), 2+rng.Int63n(4), 1) },
		func(i int) periodic.Spec { return uniform(fmt.Sprintf("v%d", i), 6+rng.Int63n(7), 1) },
		func(i int) periodic.Spec {
			// Anchored late: seconds before the anchor are a gap.
			return uniform(fmt.Sprintf("w%d", i), 3+rng.Int63n(3), 2+rng.Int63n(4))
		},
		func(i int) periodic.Spec {
			// Two granules per period with gaps between them.
			p := 8 + rng.Int63n(6)
			b := 1 + rng.Int63n(2)
			c := b + 2
			d := c + 1 + rng.Int63n(2)
			if d > p-2 {
				d = p - 2
			}
			return gapped(fmt.Sprintf("g%d", i), p, 0, b, c, d, 1)
		},
	}
	out := make([]periodic.Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, shapes[rng.Intn(len(shapes))](i))
	}
	return out
}

// GenInstance deterministically generates the instance for a seed.
func GenInstance(seed int64, k Knobs) *Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &Instance{
		Seed:         seed,
		HorizonStart: 1,
		HorizonEnd:   k.HorizonEnd/2 + rng.Int63n(k.HorizonEnd/2+1),
	}
	in.Grans = granZoo(rng, 2+rng.Intn(2))
	sampleFamilies(rng, in)

	// Granularity names available to TCGs: the custom types plus,
	// occasionally, raw seconds (which also exercises the order group).
	names := make([]string, 0, len(in.Grans)+1)
	for _, sp := range in.Grans {
		names = append(names, sp.Name)
	}
	if rng.Float64() < 0.3 {
		names = append(names, "second")
	}
	if len(in.Families) > 0 && rng.Float64() < 0.35 {
		names = append(names, in.Families[rng.Intn(len(in.Families))])
	}

	nVars := 2 + rng.Intn(k.MaxVars-1)
	vars := make([]string, nVars)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%d", i)
	}
	randTCG := func() core.TCGSpec {
		g := names[rng.Intn(len(names))]
		min := rng.Int63n(k.MaxMin + 1)
		max := min + rng.Int63n(k.MaxWidth+1)
		if g == "second" {
			// Second-granularity constraints are literal distances; widen
			// them a little so they are satisfiable within granule sizes.
			min *= 2
			max = min + rng.Int63n(3*k.MaxWidth+1)
		}
		return core.TCGSpec{Min: min, Max: max, Gran: g}
	}
	sp := &core.Spec{Variables: vars}
	addEdge := func(from, to string) {
		n := 1 + rng.Intn(k.MaxTCGsPerEdge)
		cs := make([]core.TCGSpec, n)
		for i := range cs {
			cs[i] = randTCG()
		}
		sp.Edges = append(sp.Edges, core.EdgeSpec{From: from, To: to, Constraints: cs})
	}
	// Spanning tree rooted at X0, then extra forward arcs.
	for i := 1; i < nVars; i++ {
		addEdge(vars[rng.Intn(i)], vars[i])
	}
	for i := 0; i < nVars; i++ {
		for j := i + 1; j < nVars; j++ {
			if hasEdge(sp, vars[i], vars[j]) {
				continue
			}
			if rng.Float64() < k.ExtraEdgeProb {
				addEdge(vars[i], vars[j])
			}
		}
	}

	// Total type assignment; distinct variables may share a type.
	types := make([]string, k.NumTypes)
	for i := range types {
		types[i] = string(rune('a' + i))
	}
	sp.Assign = make(map[string]string, nVars)
	for _, v := range vars {
		sp.Assign[v] = types[rng.Intn(len(types))]
	}
	in.Spec = sp

	in.Seq = genSequence(rng, in, types, k)
	confs := []float64{0, 0.25, 0.5}
	in.MinConfidence = confs[rng.Intn(len(confs))]
	return in
}

// sampleFamilies enrolls one or two default-registry calendar families in
// the instance (80% of seeds) and re-anchors the brute-force horizon near
// one of their interesting boundaries — a DST transition, a 53-week fiscal
// year end, a post-holiday session start — falling back to an ordinary
// early granule boundary for families with no declared hot spots. The
// horizon span is preserved; only its position moves, so the exponential
// contracts cost the same as at the origin.
func sampleFamilies(rng *rand.Rand, in *Instance) {
	if rng.Float64() >= 0.8 {
		return
	}
	fams := granularity.FamilyNames()
	perm := rng.Perm(len(fams))
	for i := 0; i < 1+rng.Intn(2); i++ {
		in.Families = append(in.Families, fams[perm[i]])
	}
	anchor, ok := granularity.NewFamily(in.Families[rng.Intn(len(in.Families))])
	if !ok {
		return
	}
	var boundary int64
	if bh, isHinted := anchor.(granularity.BoundaryHint); isHinted {
		if bs := bh.InterestingSeconds(); len(bs) > 0 {
			boundary = bs[rng.Intn(len(bs))]
		}
	}
	if boundary == 0 {
		if sp, ok := anchor.Span(2 + rng.Int63n(6)); ok {
			boundary = sp.First
		}
	}
	if boundary == 0 {
		return
	}
	span := in.HorizonEnd - in.HorizonStart
	start := boundary - span/2
	if start < 1 {
		start = 1
	}
	in.HorizonStart = start
	in.HorizonEnd = start + span
}

// hasEdge reports whether the spec already has the arc (from, to).
func hasEdge(sp *core.Spec, from, to string) bool {
	for _, e := range sp.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// genSequence builds a sequence with pairwise-distinct timestamps inside
// the horizon: background noise plus, usually, one or two planted
// near-occurrences (events in topological order with small gaps) so the
// TAG and mining contracts sample positive cases too.
func genSequence(rng *rand.Rand, in *Instance, types []string, k Knobs) event.Sequence {
	used := make(map[int64]bool)
	var seq event.Sequence
	add := func(t int64, typ string) {
		if t < in.HorizonStart || t > in.HorizonEnd || used[t] {
			return
		}
		used[t] = true
		seq = append(seq, event.Event{Type: event.Type(typ), Time: t})
	}
	for i := 0; i < k.SeqLen; i++ {
		add(in.HorizonStart+rng.Int63n(in.HorizonEnd-in.HorizonStart+1), types[rng.Intn(len(types))])
	}
	s, err := in.Spec.Structure()
	if err == nil {
		if order, err := s.TopoOrder(); err == nil {
			plants := 1 + rng.Intn(2)
			for p := 0; p < plants; p++ {
				if rng.Float64() < 0.15 {
					continue
				}
				t := in.HorizonStart + rng.Int63n((in.HorizonEnd-in.HorizonStart)/2+1)
				for _, v := range order {
					add(t, in.Spec.Assign[string(v)])
					t += 1 + rng.Int63n(6)
				}
			}
		}
	}
	// The mining contract needs at least one reference occurrence; the
	// planted runs usually provide one, but guarantee it.
	if root, err := rootOf(in.Spec); err == nil {
		ref := in.Spec.Assign[root]
		have := false
		for _, e := range seq {
			if string(e.Type) == ref {
				have = true
				break
			}
		}
		if !have {
			for t := in.HorizonStart; t <= in.HorizonEnd; t++ {
				if !used[t] {
					add(t, ref)
					break
				}
			}
		}
	}
	seq.Sort()
	return seq
}

// rootOf returns the structure's root variable name.
func rootOf(sp *core.Spec) (string, error) {
	s, err := sp.Structure()
	if err != nil {
		return "", err
	}
	r, err := s.Root()
	if err != nil {
		return "", err
	}
	return string(r), nil
}

// sortedTypes returns the distinct event types of the sequence, sorted.
func sortedTypes(seq event.Sequence) []string {
	set := map[string]bool{}
	for _, e := range seq {
		set[string(e.Type)] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
