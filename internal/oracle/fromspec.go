package oracle

import (
	"sort"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/periodic"
)

// FromSpec wraps an arbitrary decoded structure spec in an oracle
// instance so fuzz targets can assert the differential contracts instead
// of only "does not panic": every granularity name a TCG references
// (other than "second") is registered as a small uniform periodic type
// whose size is derived deterministically from the name, the horizon is
// [1, horizonEnd], and the sequence is a deterministic planting of the
// assignment's types. Malformed specs surface as CheckInstance errors,
// which callers treat as "rejected upstream, nothing to cross-check".
func FromSpec(sp *core.Spec, horizonEnd int64) *Instance {
	in := &Instance{
		Spec:         sp,
		HorizonStart: 1,
		HorizonEnd:   horizonEnd,
	}
	seen := map[string]bool{"second": true}
	var names []string
	for _, e := range sp.Edges {
		for _, c := range e.Constraints {
			if !seen[c.Gran] {
				seen[c.Gran] = true
				names = append(names, c.Gran)
			}
		}
	}
	sort.Strings(names)
	for _, name := range names {
		size := int64(2 + nameHash(name)%4) // sizes 2..5, stable per name
		in.Grans = append(in.Grans, periodic.Spec{
			Name: name, Period: size, Anchor: 1,
			Granules: []periodic.Granule{{Spans: []periodic.Span{{First: 0, Last: size - 1}}}},
		})
	}
	// Plant one near-occurrence when the spec has a total assignment, so
	// the TAG and mining contracts have events to chew on.
	if s, err := sp.Structure(); err == nil {
		if order, err := s.TopoOrder(); err == nil {
			t := in.HorizonStart + 1
			used := map[int64]bool{}
			for _, v := range order {
				typ, ok := sp.Assign[string(v)]
				if !ok || typ == "" {
					in.Seq = nil
					break
				}
				if t > in.HorizonEnd || used[t] {
					break
				}
				used[t] = true
				in.Seq = append(in.Seq, event.Event{Type: event.Type(typ), Time: t})
				t += 3
			}
		}
	}
	in.Seq.Sort()
	return in
}

// FromGranularity wraps one granularity in an oracle instance with a
// trivial two-variable structure constrained in that granularity — enough
// for the conversion, distinction, consistency and derived-bounds
// contracts to exercise the granularity's cover and metric behaviour.
func FromGranularity(sp periodic.Spec, horizonEnd int64) *Instance {
	return &Instance{
		Grans:        []periodic.Spec{sp},
		HorizonStart: 1,
		HorizonEnd:   horizonEnd,
		Spec: &core.Spec{
			Edges: []core.EdgeSpec{{
				From: "X0", To: "X1",
				Constraints: []core.TCGSpec{{Min: 0, Max: 1, Gran: sp.Name}},
			}},
			Assign: map[string]string{"X0": "a", "X1": "b"},
		},
		Seq: event.Sequence{
			{Type: "a", Time: 2},
			{Type: "b", Time: 4},
			{Type: "a", Time: 7},
			{Type: "b", Time: 8},
		},
	}
}

// nameHash is a tiny deterministic string hash (FNV-1a, 32-bit).
func nameHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
