package oracle

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/periodic"
)

// Repro is a persisted failing instance: the (shrunk) instance plus the
// contract it violated and the violation detail at save time. Repro files
// under testdata/oracle/ replay as ordinary go test cases (see the
// repository-root oracle replay test) so a fixed bug stays fixed.
type Repro struct {
	Contract string
	Detail   string
	Instance *Instance
}

// reproJSON is the stable on-disk schema. It mirrors Instance with
// explicit lowercase keys so repro files survive field renames in the
// in-memory types.
type reproJSON struct {
	Contract      string      `json:"contract"`
	Detail        string      `json:"detail,omitempty"`
	Seed          int64       `json:"seed"`
	Granularities []granJSON  `json:"granularities"`
	Families      []string    `json:"families,omitempty"`
	Spec          *core.Spec  `json:"spec"`
	HorizonStart  int64       `json:"horizon_start"`
	HorizonEnd    int64       `json:"horizon_end"`
	Sequence      []eventJSON `json:"sequence"`
	MinConfidence float64     `json:"min_confidence"`
}

type granJSON struct {
	Name     string       `json:"name"`
	Period   int64        `json:"period"`
	Anchor   int64        `json:"anchor"`
	Granules [][]spanJSON `json:"granules"`
}

type spanJSON struct {
	First int64 `json:"first"`
	Last  int64 `json:"last"`
}

type eventJSON struct {
	Type string `json:"type"`
	Time int64  `json:"time"`
}

// Encode writes the repro as indented JSON.
func (r *Repro) Encode(w io.Writer) error {
	if r.Instance == nil {
		return fmt.Errorf("oracle: repro has no instance")
	}
	in := r.Instance
	rj := reproJSON{
		Contract:      r.Contract,
		Detail:        r.Detail,
		Seed:          in.Seed,
		Families:      in.Families,
		Spec:          in.Spec,
		HorizonStart:  in.HorizonStart,
		HorizonEnd:    in.HorizonEnd,
		MinConfidence: in.MinConfidence,
	}
	for _, sp := range in.Grans {
		gj := granJSON{Name: sp.Name, Period: sp.Period, Anchor: sp.Anchor}
		for _, g := range sp.Granules {
			var spans []spanJSON
			for _, s := range g.Spans {
				spans = append(spans, spanJSON{First: s.First, Last: s.Last})
			}
			gj.Granules = append(gj.Granules, spans)
		}
		rj.Granularities = append(rj.Granularities, gj)
	}
	for _, e := range in.Seq {
		rj.Sequence = append(rj.Sequence, eventJSON{Type: string(e.Type), Time: e.Time})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rj)
}

// DecodeRepro reads an Encode-formatted repro. Unknown fields are
// rejected so schema drift is caught, not silently dropped.
func DecodeRepro(r io.Reader) (*Repro, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rj reproJSON
	if err := dec.Decode(&rj); err != nil {
		return nil, fmt.Errorf("oracle: decoding repro: %w", err)
	}
	in := &Instance{
		Seed:          rj.Seed,
		Families:      rj.Families,
		Spec:          rj.Spec,
		HorizonStart:  rj.HorizonStart,
		HorizonEnd:    rj.HorizonEnd,
		MinConfidence: rj.MinConfidence,
	}
	for _, gj := range rj.Granularities {
		sp := periodic.Spec{Name: gj.Name, Period: gj.Period, Anchor: gj.Anchor}
		for _, spans := range gj.Granules {
			var g periodic.Granule
			for _, s := range spans {
				g.Spans = append(g.Spans, periodic.Span{First: s.First, Last: s.Last})
			}
			sp.Granules = append(sp.Granules, g)
		}
		in.Grans = append(in.Grans, sp)
	}
	for _, ej := range rj.Sequence {
		in.Seq = append(in.Seq, event.Event{Type: event.Type(ej.Type), Time: ej.Time})
	}
	return &Repro{Contract: rj.Contract, Detail: rj.Detail, Instance: in}, nil
}

// SaveRepro writes the repro under dir as <contract>-seed<seed>.json,
// creating dir if needed. It returns the file path.
func SaveRepro(dir string, r *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("oracle: creating repro dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.json", r.Contract, r.Instance.Seed))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("oracle: creating repro file: %w", err)
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads a repro file from disk.
func LoadRepro(path string) (*Repro, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeRepro(f)
}

// Replay re-runs the full contract suite on the repro's instance under the
// given knobs and returns the violations of the repro's recorded contract
// (empty means the bug is fixed) plus all violations for context.
func (r *Repro) Replay(k Knobs, h Hooks) (recorded, all []Violation, err error) {
	all, _, err = CheckInstance(r.Instance, k, h)
	if err != nil {
		return nil, nil, err
	}
	for _, v := range all {
		if v.Contract == r.Contract {
			recorded = append(recorded, v)
		}
	}
	return recorded, all, nil
}
