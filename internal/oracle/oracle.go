// Package oracle is the differential test harness that cross-checks the
// repository's four solver layers — approximate propagation, the exact
// bounded-horizon solver, the TAG simulation, and the mining pipeline —
// against brute-force ground truth and against each other.
//
// The harness generates small random instances (a granularity system of
// synthetic periodic types, a rooted event structure with TCGs, a type
// assignment, an event sequence, a mining confidence) from a seed, then
// evaluates a library of executable contracts on each instance:
//
//   - consistency: propagate reporting inconsistent implies exact reports
//     unsatisfiable, and both agree with an exhaustive enumeration of
//     second-assignments over the bounded horizon (Theorems 1 and 2);
//   - derived-bounds: every brute-force witness satisfies every constraint
//     propagation derives (the Theorem-2 soundness statement);
//   - conversion: the Figure-3 granularity conversions are sound against
//     direct enumeration of granule pairs, and round trips only widen;
//   - distinction: [0,0]g stays distinguishable from any pure second
//     window ("[0,0]day is not [0,86399]second");
//   - tag: TAG acceptance equals exhaustive occurrence search (Theorem 3),
//     and serial, parallel and checkpoint-resumed runs are byte-identical;
//   - mining: Optimized equals Naive, and every discovery's match count
//     re-verifies against an anchored brute-force counter;
//   - incremental-equiv: the incremental miner, fed one event at a time
//     (and crash-restored mid-stream from a consolidated checkpoint over
//     a fault-injected store), matches batch Optimized at every prefix —
//     discoveries, screening stats and witness bindings.
//
// Violations are shrunk greedily (delete variable, delete constraint,
// narrow interval, drop events/granularities, halve horizon) and persisted
// as JSON repro files that replay as ordinary go test cases; see
// cmd/tempofuzz for the driver.
package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/periodic"
)

// Instance is one generated (or replayed) test case. All fields are plain
// data so instances serialize to repro files and mutate cheaply during
// shrinking; the solver-facing objects are materialized on demand.
type Instance struct {
	// Seed is the generator seed (0 for hand-written repros).
	Seed int64
	// Grans are the custom granularities of the instance's system, as
	// periodic specs. The system additionally always registers "second".
	Grans []periodic.Spec
	// Families names default-registry calendar families (see
	// granularity.FamilyNames) additionally registered in the system — real
	// zoned/fiscal/trading types the generator samples so the contracts run
	// over DST shifts, 53-week years and holiday gaps, not just synthetic
	// periodic shapes. The horizon is anchored near one of their interesting
	// boundaries.
	Families []string
	// Spec is the event structure plus its (total) type assignment.
	Spec *core.Spec
	// HorizonStart/HorizonEnd bound the brute-force and exact searches
	// (inclusive second indices).
	HorizonStart, HorizonEnd int64
	// Seq is the event sequence for the TAG and mining contracts.
	// Timestamps are pairwise distinct (the Theorem-3 tie caveat).
	Seq event.Sequence
	// MinConfidence is the mining threshold τ.
	MinConfidence float64

	sys *granularity.System
}

// System materializes (and caches) the instance's granularity system:
// "second" plus every spec in Grans. It errors on invalid specs.
func (in *Instance) System() (*granularity.System, error) {
	if in.sys != nil {
		return in.sys, nil
	}
	// Metrics horizon: enough granules that every metric within the brute
	// horizon is exact; coverage sampling likewise stays cheap and covers
	// the whole horizon for the short periods the generator emits.
	sys := granularity.NewSystem(256, 64)
	sys.Add(granularity.Second())
	for i := range in.Grans {
		g, err := periodic.New(in.Grans[i])
		if err != nil {
			return nil, fmt.Errorf("oracle: granularity %d: %w", i, err)
		}
		sys.Add(g)
	}
	for _, name := range in.Families {
		if _, ok := sys.Get(name); ok {
			continue // "second" is always registered
		}
		g, ok := granularity.NewFamily(name)
		if !ok {
			return nil, fmt.Errorf("oracle: unknown calendar family %q", name)
		}
		sys.Add(g)
	}
	in.sys = sys
	return sys, nil
}

// granNames returns every granularity name of the instance's system beyond
// the implicit "second": the synthetic periodic types plus the enrolled
// calendar families.
func (in *Instance) granNames() []string {
	names := make([]string, 0, len(in.Grans)+len(in.Families))
	for i := range in.Grans {
		names = append(names, in.Grans[i].Name)
	}
	for _, f := range in.Families {
		if f != "second" {
			names = append(names, f)
		}
	}
	return names
}

// Structure materializes the event structure.
func (in *Instance) Structure() (*core.EventStructure, error) {
	if in.Spec == nil {
		return nil, fmt.Errorf("oracle: instance has no spec")
	}
	return in.Spec.Structure()
}

// ComplexType materializes the structure with its assignment.
func (in *Instance) ComplexType() (*core.ComplexType, error) {
	if in.Spec == nil {
		return nil, fmt.Errorf("oracle: instance has no spec")
	}
	return in.Spec.ComplexType()
}

// invalidate drops cached materializations after a mutation.
func (in *Instance) invalidate() { in.sys = nil }

// Clone deep-copies the instance (the caches are not shared).
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Seed:          in.Seed,
		HorizonStart:  in.HorizonStart,
		HorizonEnd:    in.HorizonEnd,
		MinConfidence: in.MinConfidence,
	}
	out.Families = append([]string(nil), in.Families...)
	out.Grans = make([]periodic.Spec, len(in.Grans))
	for i, sp := range in.Grans {
		cp := sp
		cp.Granules = make([]periodic.Granule, len(sp.Granules))
		for j, g := range sp.Granules {
			cp.Granules[j] = periodic.Granule{Spans: append([]periodic.Span(nil), g.Spans...)}
		}
		out.Grans[i] = cp
	}
	if in.Spec != nil {
		sp := &core.Spec{
			Variables: append([]string(nil), in.Spec.Variables...),
			Edges:     make([]core.EdgeSpec, len(in.Spec.Edges)),
		}
		for i, e := range in.Spec.Edges {
			sp.Edges[i] = core.EdgeSpec{
				From:        e.From,
				To:          e.To,
				Constraints: append([]core.TCGSpec(nil), e.Constraints...),
			}
		}
		if in.Spec.Assign != nil {
			sp.Assign = make(map[string]string, len(in.Spec.Assign))
			for k, v := range in.Spec.Assign {
				sp.Assign[k] = v
			}
		}
		out.Spec = sp
	}
	out.Seq = append(event.Sequence(nil), in.Seq...)
	return out
}

// Violation is one contract failure on an instance.
type Violation struct {
	// Contract names the violated contract (see the Contract* constants).
	Contract string
	// Detail is a human-readable description of the failure.
	Detail string
}

// String renders the violation.
func (v Violation) String() string { return v.Contract + ": " + v.Detail }

// Contract names, stable across releases: repro files reference them.
const (
	ContractConsistency  = "consistency"
	ContractDerivedBound = "derived-bounds"
	ContractConversion   = "conversion"
	ContractDistinction  = "distinction"
	ContractTAG          = "tag"
	ContractMining       = "mining"
	ContractExecEquiv    = "exec-equiv"
	ContractStoreReplay  = "store-replay"
	// ContractIncrementalEquiv feeds the instance's sequence one event at a
	// time into the incremental miner and requires discoveries, screening
	// stats and witness bindings identical to batch Optimized at EVERY
	// prefix, including across a seeded mid-stream store crash, recovery
	// and checkpoint restore.
	ContractIncrementalEquiv = "incremental-equiv"
	// ContractClusterRebalance streams the instance's sequence into a TAG
	// session through a router over two in-process worker tempods, drains
	// the owning worker mid-stream (a full rebalance-by-checkpoint
	// handover with byte-verify and an epoch bump), and requires the final
	// stream view identical to a standalone tempod fed the same events.
	ContractClusterRebalance = "cluster-rebalance"
)
