package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/granularity"
	"repro/internal/server"
	"repro/internal/tag"
)

// checkClusterRebalance is the distributed-tier contract: streaming the
// instance's sequence into a TAG session through a router over two worker
// tempods, then draining the owning worker mid-stream (a full
// rebalance-by-checkpoint handover: export, epoch bump, import with
// fingerprint validation, byte-verify), must be observationally identical
// to a single standalone tempod fed the same events. Three claims at once:
//
//   - the session's state bytes do not change across the migration (the
//     router's own byte-verify is on, so a divergent handover fails the
//     drain outright);
//   - the cluster keeps accepting the rest of the stream after the move,
//     and the final stream view equals the standalone run's — placement,
//     proxying and migration are invisible to the protocol;
//   - the drain bumps the ownership epoch (the fencing precondition).
func checkClusterRebalance(in *Instance, sys *granularity.System,
	stats *CheckStats, add func(string, string, ...any)) {

	ct, err := in.ComplexType()
	if err != nil {
		stats.skip(ContractClusterRebalance, "no total complex type: "+err.Error())
		return
	}
	if _, err := tag.Compile(ct); err != nil {
		stats.skip(ContractClusterRebalance, "not compilable: "+err.Error())
		return
	}
	if len(in.Seq) < 2 {
		stats.skip(ContractClusterRebalance, "sequence too short to split around a drain")
		return
	}
	for i, e := range in.Seq {
		if e.Time < 1 || e.Type == "" || (i > 0 && e.Time < in.Seq[i-1].Time) {
			stats.skip(ContractClusterRebalance, "sequence not appendable")
			return
		}
	}
	stats.ran(ContractClusterRebalance)

	// Two in-process workers behind a router, plus a standalone control.
	// CheckpointEvery 4 keeps the strided-checkpoint + tail-replay path of
	// the migration protocol exercised on the oracle's short sequences.
	newServer := func() (*server.Server, func(), error) {
		dir, err := os.MkdirTemp("", "oracle-cluster")
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.New(server.Config{
			DataDir: dir, System: sys, Internal: true,
			CheckpointEvery: 4, JobWorkers: 1,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		cleanup := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			srv.Drain(ctx)
			cancel()
			os.RemoveAll(dir)
		}
		return srv, cleanup, nil
	}
	type workerProc struct {
		name string
		ts   *httptest.Server
	}
	var workers []workerProc
	for _, name := range []string{"w1", "w2"} {
		srv, cleanup, err := newServer()
		if err != nil {
			add(ContractClusterRebalance, "booting worker %s: %v", name, err)
			return
		}
		defer cleanup()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		workers = append(workers, workerProc{name: name, ts: ts})
	}
	rt, err := cluster.New(cluster.Config{
		Workers: []cluster.WorkerSpec{
			{Name: workers[0].name, URL: workers[0].ts.URL},
			{Name: workers[1].name, URL: workers[1].ts.URL},
		},
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		add(ContractClusterRebalance, "building router: %v", err)
		return
	}
	defer rt.Close()
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	control, controlCleanup, err := newServer()
	if err != nil {
		add(ContractClusterRebalance, "booting control: %v", err)
		return
	}
	defer controlCleanup()
	cts := httptest.NewServer(control.Handler())
	defer cts.Close()

	post := func(url string, body []byte) (int, []byte, error) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp.StatusCode, data, err
	}
	get := func(url string) (int, []byte, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp.StatusCode, data, err
	}

	specBody, err := json.Marshal(struct {
		Spec *core.Spec `json:"spec"`
	}{in.Spec})
	if err != nil {
		add(ContractClusterRebalance, "encoding spec: %v", err)
		return
	}
	status, body, err := post(rts.URL+"/v1/tag/sessions", specBody)
	if err != nil {
		add(ContractClusterRebalance, "create via router: %v", err)
		return
	}
	if status == http.StatusUnprocessableEntity {
		stats.Ran = stats.Ran[:len(stats.Ran)-1]
		stats.skip(ContractClusterRebalance, "spec not servable: "+string(body))
		return
	}
	if status != http.StatusCreated {
		add(ContractClusterRebalance, "create via router: status %d: %s", status, body)
		return
	}
	var cr server.SessionCreateResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		add(ContractClusterRebalance, "decoding create response: %v", err)
		return
	}

	feed := func(base, id string, es []struct {
		Time int64  `json:"time"`
		Type string `json:"type"`
	}) error {
		body, _ := json.Marshal(map[string]any{"events": es})
		status, data, err := post(base+"/v1/tag/sessions/"+id+"/events", body)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d: %s", status, data)
		}
		return nil
	}
	items := make([]struct {
		Time int64  `json:"time"`
		Type string `json:"type"`
	}, len(in.Seq))
	for i, e := range in.Seq {
		items[i].Time, items[i].Type = e.Time, string(e.Type)
	}

	split := len(in.Seq) / 2
	for i := 0; i < split; i++ { // one event per request: the streaming shape
		if err := feed(rts.URL, cr.ID, items[i:i+1]); err != nil {
			add(ContractClusterRebalance, "feeding event %d via router: %v", i, err)
			return
		}
	}
	_, before, err := get(rts.URL + "/v1/tag/sessions/" + cr.ID)
	if err != nil {
		add(ContractClusterRebalance, "pre-drain read: %v", err)
		return
	}

	// Find and drain the owner. The router's byte-verify runs inside the
	// drain, so a corrupted handover surfaces here as a non-200.
	owner := ""
	for _, wk := range workers {
		if status, _, err := get(wk.ts.URL + "/v1/tag/sessions/" + cr.ID); err == nil && status == http.StatusOK {
			owner = wk.name
		}
	}
	if owner == "" {
		add(ContractClusterRebalance, "no worker serves session %s", cr.ID)
		return
	}
	status, body, err = post(rts.URL+"/cluster/workers/"+owner+"/drain", nil)
	if err != nil || status != http.StatusOK {
		add(ContractClusterRebalance, "draining owner %s: status %d err %v: %s", owner, status, err, body)
		return
	}

	status, after, err := get(rts.URL + "/v1/tag/sessions/" + cr.ID)
	if err != nil || status != http.StatusOK {
		add(ContractClusterRebalance, "post-drain read: status %d err %v", status, err)
		return
	}
	if !bytes.Equal(before, after) {
		add(ContractClusterRebalance, "session state changed across the migration:\nbefore: %s\nafter: %s", before, after)
		return
	}

	for i := split; i < len(in.Seq); i++ {
		if err := feed(rts.URL, cr.ID, items[i:i+1]); err != nil {
			add(ContractClusterRebalance, "feeding event %d after the drain: %v", i, err)
			return
		}
	}
	_, final, err := get(rts.URL + "/v1/tag/sessions/" + cr.ID)
	if err != nil {
		add(ContractClusterRebalance, "final read: %v", err)
		return
	}

	// Control: the same spec and events into one standalone tempod, fed in
	// a single batch. The stream views (IDs aside) must be identical.
	status, body, err = post(cts.URL+"/v1/tag/sessions", specBody)
	if err != nil || status != http.StatusCreated {
		add(ContractClusterRebalance, "control create: status %d err %v: %s", status, err, body)
		return
	}
	var ctrl server.SessionCreateResponse
	if err := json.Unmarshal(body, &ctrl); err != nil {
		add(ContractClusterRebalance, "decoding control create: %v", err)
		return
	}
	if err := feed(cts.URL, ctrl.ID, items); err != nil {
		add(ContractClusterRebalance, "control feed: %v", err)
		return
	}
	_, controlBody, err := get(cts.URL + "/v1/tag/sessions/" + ctrl.ID)
	if err != nil {
		add(ContractClusterRebalance, "control read: %v", err)
		return
	}
	var clusterState, controlState server.SessionStateResponse
	if err := json.Unmarshal(final, &clusterState); err != nil {
		add(ContractClusterRebalance, "decoding cluster state: %v", err)
		return
	}
	if err := json.Unmarshal(controlBody, &controlState); err != nil {
		add(ContractClusterRebalance, "decoding control state: %v", err)
		return
	}
	gotStream, _ := json.Marshal(clusterState.Stream)
	wantStream, _ := json.Marshal(controlState.Stream)
	if !bytes.Equal(gotStream, wantStream) {
		add(ContractClusterRebalance, "cluster stream diverges from the standalone run:\ncluster: %s\ncontrol: %s", gotStream, wantStream)
		return
	}
	if clusterState.Rejected != controlState.Rejected {
		add(ContractClusterRebalance, "cluster rejected %d events, standalone rejected %d", clusterState.Rejected, controlState.Rejected)
		return
	}

	// The drain is a rebalance, so the ownership epoch must have advanced
	// past its initial value — otherwise stale-writer fencing has no bite.
	if rt.Epoch() < 2 {
		add(ContractClusterRebalance, "epoch still %d after a drain", rt.Epoch())
	}
}
