package oracle

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/granularity"
	"repro/internal/propagate"
	"repro/internal/stp"
)

// TestSeedsClean runs the full contract suite over a block of seeds — the
// in-tree slice of the tempofuzz campaign (scripts/check.sh runs the
// binary over a larger block).
func TestSeedsClean(t *testing.T) {
	k := DefaultKnobs()
	n := int64(120)
	if testing.Short() {
		n = 25
	}
	for seed := int64(1); seed <= n; seed++ {
		in := GenInstance(seed, k)
		vs, _, err := CheckInstance(in, k, Hooks{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			t.Errorf("seed %d: %s", seed, v)
		}
		if t.Failed() {
			t.Fatalf("seed %d violated the contracts above", seed)
		}
	}
}

// TestGenInstanceDeterministic asserts the generator is a pure function of
// the seed — repro files and failure reports depend on it.
func TestGenInstanceDeterministic(t *testing.T) {
	k := DefaultKnobs()
	for seed := int64(1); seed <= 10; seed++ {
		a := GenInstance(seed, k)
		b := GenInstance(seed, k)
		var ab, bb bytes.Buffer
		if err := (&Repro{Contract: "x", Instance: a}).Encode(&ab); err != nil {
			t.Fatal(err)
		}
		if err := (&Repro{Contract: "x", Instance: b}).Encode(&bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
			t.Fatalf("seed %d generated two different instances", seed)
		}
	}
}

// TestReproRoundTrip asserts encode→decode→encode is the identity on
// generated instances.
func TestReproRoundTrip(t *testing.T) {
	k := DefaultKnobs()
	for seed := int64(1); seed <= 10; seed++ {
		r := &Repro{Contract: ContractTAG, Detail: "d", Instance: GenInstance(seed, k)}
		var buf bytes.Buffer
		if err := r.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		dec, err := DecodeRepro(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Contract != r.Contract || dec.Detail != r.Detail {
			t.Fatalf("metadata changed: %q/%q", dec.Contract, dec.Detail)
		}
		var again bytes.Buffer
		if err := dec.Encode(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again.Bytes()) {
			t.Fatalf("seed %d: repro not stable under round trip", seed)
		}
	}
}

// brokenMingapHooks returns a conversion hook with the classic off-by-one:
// the converted lower bound (Figure 3's mingap side) is one too tight.
func brokenMingapHooks() Hooks {
	return Hooks{
		ConvertInterval: func(sys *granularity.System, src, dst string, lo, hi int64) (int64, int64) {
			nlo, nhi := propagate.NewConverter(sys, src, dst).Interval(lo, hi)
			if nlo > -stp.Inf && nlo < nhi {
				nlo++
			}
			return nlo, nhi
		},
	}
}

// TestOracleCatchesBrokenConversion is the mutant-kill acceptance
// criterion: an off-by-one in the granularity conversion must be caught,
// shrunk to at most 4 variables, and the shrunk repro must round-trip
// through disk and keep failing under the mutant while passing clean code.
func TestOracleCatchesBrokenConversion(t *testing.T) {
	k := DefaultKnobs()
	broken := brokenMingapHooks()
	var caught *Instance
	var badSeed int64
	for seed := int64(1); seed <= 200; seed++ {
		in := GenInstance(seed, k)
		vs, _, err := CheckInstance(in, k, broken)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			if v.Contract == ContractConversion {
				caught, badSeed = in, seed
				break
			}
		}
		if caught != nil {
			break
		}
	}
	if caught == nil {
		t.Fatal("200 seeds did not catch the off-by-one conversion mutant")
	}
	t.Logf("mutant caught at seed %d", badSeed)

	shrunk := Shrink(caught, ContractConversion, k, broken, 300)
	if n := len(shrunk.Spec.Variables); n > 4 {
		t.Fatalf("shrunk repro has %d variables, want <= 4", n)
	}
	vs, _, err := CheckInstance(shrunk, k, broken)
	if err != nil {
		t.Fatal(err)
	}
	var detail string
	for _, v := range vs {
		if v.Contract == ContractConversion {
			detail = v.Detail
		}
	}
	if detail == "" {
		t.Fatal("shrunk instance no longer violates the conversion contract")
	}

	dir := t.TempDir()
	path, err := SaveRepro(dir, &Repro{Contract: ContractConversion, Detail: detail, Instance: shrunk})
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("repro saved to %s, want under %s", path, dir)
	}
	rep, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	recorded, _, err := rep.Replay(k, broken)
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Fatal("reloaded repro does not reproduce under the mutant")
	}
	recorded, all, err := rep.Replay(k, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) != 0 {
		t.Fatalf("reloaded repro fails under the real conversion: %v", recorded)
	}
	for _, v := range all {
		t.Errorf("unexpected violation under clean code: %s", v)
	}
}

// TestShrinkPreservesMalformedRejection asserts the shrinker never adopts
// a mutant whose materialization fails (e.g. an instance whose structure
// lost its root): CheckInstance's error path must count as "did not
// reproduce".
func TestShrinkPreservesMalformedRejection(t *testing.T) {
	k := DefaultKnobs()
	in := GenInstance(3, k)
	out := Shrink(in, ContractConsistency, k, Hooks{}, 50)
	if _, _, err := CheckInstance(out, k, Hooks{}); err != nil {
		t.Fatalf("shrinker returned a malformed instance: %v", err)
	}
}

// TestBrokenConversionSmokeFast mirrors the check.sh smoke: the mutant is
// caught within the first few seeds, keeping CI cheap.
func TestBrokenConversionSmokeFast(t *testing.T) {
	k := DefaultKnobs()
	broken := brokenMingapHooks()
	for seed := int64(1); seed <= 25; seed++ {
		in := GenInstance(seed, k)
		vs, _, err := CheckInstance(in, k, broken)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			if v.Contract == ContractConversion {
				return
			}
		}
	}
	t.Fatal("25 seeds did not catch the conversion mutant")
}

// TestStoreReplayRuns asserts the crash-recovery contract actually
// exercises generated instances rather than skipping them all (an empty
// or unappendable sequence skips; the generator should rarely produce
// one).
func TestStoreReplayRuns(t *testing.T) {
	k := DefaultKnobs()
	k.Only = []string{ContractStoreReplay}
	ran := 0
	for seed := int64(1); seed <= 40; seed++ {
		in := GenInstance(seed, k)
		vs, stats, err := CheckInstance(in, k, Hooks{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			t.Errorf("seed %d: %s", seed, v)
		}
		for _, c := range stats.Ran {
			if c == ContractStoreReplay {
				ran++
			}
		}
	}
	if ran < 30 {
		t.Fatalf("store-replay ran on only %d of 40 seeds", ran)
	}
}
