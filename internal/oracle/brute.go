package oracle

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
)

// BruteResult is the outcome of the exhaustive bounded-horizon search.
type BruteResult struct {
	// Satisfiable reports whether some assignment of second timestamps in
	// [start, end] satisfies every TCG. Meaningless when Capped.
	Satisfiable bool
	// Witnesses holds up to the requested limit of satisfying assignments.
	Witnesses []map[core.Variable]int64
	// Nodes is the number of partial assignments explored.
	Nodes int64
	// Capped is set when the search exceeded its node budget and was
	// abandoned; the caller must treat the result as unknown.
	Capped bool
}

// BruteConsistency decides bounded-horizon consistency by exhaustive
// backtracking over every second in [start, end] — no propagation, no
// boundary-point discretization, no granule metrics: only TCG.Satisfied.
// It is the ground truth the propagate and exact layers are checked
// against, deliberately sharing no reasoning machinery with them.
func BruteConsistency(sys *granularity.System, s *core.EventStructure, start, end, nodeCap int64, witnessLimit int) BruteResult {
	res := BruteResult{}
	order, err := s.TopoOrder()
	if err != nil {
		// Cyclic: no ordering to search under; report "unknown", not
		// "unsatisfiable" (the propagation layer rejects cycles upstream).
		res.Capped = true
		return res
	}
	if len(order) == 0 {
		res.Satisfiable = true
		return res
	}
	assigned := make(map[core.Variable]int64, len(order))
	var rec func(k int) bool // true = stop (capped or witness limit reached)
	rec = func(k int) bool {
		if k == len(order) {
			res.Satisfiable = true
			if len(res.Witnesses) < witnessLimit {
				w := make(map[core.Variable]int64, len(assigned))
				for v, t := range assigned {
					w[v] = t
				}
				res.Witnesses = append(res.Witnesses, w)
			}
			return len(res.Witnesses) >= witnessLimit
		}
		v := order[k]
		for t := start; t <= end; t++ {
			res.Nodes++
			if res.Nodes > nodeCap {
				res.Capped = true
				return true
			}
			ok := true
			for u, tu := range assigned {
				for _, c := range s.Constraints(u, v) {
					if !c.Satisfied(sys, tu, t) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				for _, c := range s.Constraints(v, u) {
					if !c.Satisfied(sys, t, tu) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				continue
			}
			assigned[v] = t
			stop := rec(k + 1)
			delete(assigned, v)
			if stop {
				return true
			}
		}
		return false
	}
	rec(0)
	return res
}

// bruteAnchoredOccurs reports whether the complex type occurs in seq with
// the root bound to seq[refIdx] — the ground truth for one anchored TAG
// run (and hence for one unit of a mining match count). Variables bind
// injectively to event indexes at or after refIdx.
func bruteAnchoredOccurs(sys *granularity.System, ct *core.ComplexType, seq event.Sequence, refIdx int) bool {
	s := ct.Structure
	order, err := s.TopoOrder()
	if err != nil {
		return false
	}
	root, err := s.Root()
	if err != nil {
		return false
	}
	if string(seq[refIdx].Type) != string(ct.Assign[root]) {
		return false
	}
	bound := make(map[core.Variable]int, len(order)) // variable -> event index
	used := make(map[int]bool, len(order))
	check := func(v core.Variable, idx int) bool {
		for u, iu := range bound {
			for _, c := range s.Constraints(u, v) {
				if !c.Satisfied(sys, seq[iu].Time, seq[idx].Time) {
					return false
				}
			}
			for _, c := range s.Constraints(v, u) {
				if !c.Satisfied(sys, seq[idx].Time, seq[iu].Time) {
					return false
				}
			}
		}
		return true
	}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return true
		}
		v := order[k]
		if v == root {
			if used[refIdx] || !check(v, refIdx) {
				return false
			}
			bound[v] = refIdx
			used[refIdx] = true
			if rec(k + 1) {
				return true
			}
			delete(bound, v)
			delete(used, refIdx)
			return false
		}
		for idx := refIdx; idx < len(seq); idx++ {
			if used[idx] || seq[idx].Type != ct.Assign[v] {
				continue
			}
			if !check(v, idx) {
				continue
			}
			bound[v] = idx
			used[idx] = true
			if rec(k + 1) {
				return true
			}
			delete(bound, v)
			delete(used, idx)
		}
		return false
	}
	return rec(0)
}
