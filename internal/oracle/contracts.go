package oracle

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/exact"
	"repro/internal/granularity"
	"repro/internal/mining"
	"repro/internal/propagate"
	"repro/internal/store"
	"repro/internal/tag"
)

// Hooks lets tests swap a layer's primitive for a deliberately broken one
// to prove the oracle detects the breakage (the "kill the mutant" check).
// Zero value = the real implementations.
type Hooks struct {
	// ConvertInterval converts a source granule-difference interval to the
	// target granularity, as propagate's Figure-3 Converter does. nil uses
	// propagate.NewConverter(sys, src, dst).Interval(lo, hi).
	ConvertInterval func(sys *granularity.System, src, dst string, lo, hi int64) (int64, int64)
}

func (h Hooks) convert(sys *granularity.System, src, dst string, lo, hi int64) (int64, int64) {
	if h.ConvertInterval != nil {
		return h.ConvertInterval(sys, src, dst, lo, hi)
	}
	return propagate.NewConverter(sys, src, dst).Interval(lo, hi)
}

// CheckStats records which contracts ran on an instance and which were
// skipped (with the reason) — skips are counted, never silent.
type CheckStats struct {
	Ran     []string
	Skipped map[string]string
}

func (cs *CheckStats) ran(c string)          { cs.Ran = append(cs.Ran, c) }
func (cs *CheckStats) skip(c, why string)    { cs.Skipped[c] = why }
func (cs *CheckStats) skipped(c string) bool { _, ok := cs.Skipped[c]; return ok }

// CheckInstance evaluates every contract on the instance and returns the
// violations. A non-nil error means the instance itself is malformed
// (unbuildable granularity or structure) — generated instances never are,
// but shrinking mutations can be, and the shrinker must treat that as "the
// violation did not reproduce", not as a pass.
func CheckInstance(in *Instance, k Knobs, h Hooks) ([]Violation, CheckStats, error) {
	stats := CheckStats{Skipped: map[string]string{}}
	sys, err := in.System()
	if err != nil {
		return nil, stats, err
	}
	s, err := in.Structure()
	if err != nil {
		return nil, stats, err
	}
	if in.HorizonStart < 1 || in.HorizonEnd <= in.HorizonStart {
		return nil, stats, fmt.Errorf("oracle: invalid horizon [%d,%d]", in.HorizonStart, in.HorizonEnd)
	}
	prop, err := propagate.Run(sys, s, propagate.Options{})
	if err != nil {
		return nil, stats, fmt.Errorf("oracle: propagate: %w", err)
	}
	var brute BruteResult
	if k.enabled(ContractConsistency) || k.enabled(ContractDerivedBound) {
		brute = BruteConsistency(sys, s, in.HorizonStart, in.HorizonEnd, k.BruteCap, 24)
	}

	var vs []Violation
	add := func(contract, format string, args ...any) {
		vs = append(vs, Violation{Contract: contract, Detail: fmt.Sprintf(format, args...)})
	}
	gate := func(contract string, run func()) {
		if !k.enabled(contract) {
			stats.skip(contract, "filtered by Only")
			return
		}
		run()
	}

	gate(ContractConsistency, func() { checkConsistency(in, k, sys, s, prop, brute, &stats, add) })
	gate(ContractDerivedBound, func() { checkDerivedBounds(in, sys, s, prop, brute, &stats, add) })
	gate(ContractConversion, func() { checkConversion(in, h, sys, s, &stats, add) })
	gate(ContractDistinction, func() { checkDistinction(in, sys, &stats, add) })
	gate(ContractTAG, func() { checkTAG(in, sys, &stats, add) })
	gate(ContractMining, func() { checkMining(in, k, sys, s, &stats, add) })
	gate(ContractExecEquiv, func() { checkExecEquiv(in, sys, &stats, add) })
	gate(ContractStoreReplay, func() { checkStoreReplay(in, sys, &stats, add) })
	gate(ContractIncrementalEquiv, func() { checkIncrementalEquiv(in, k, sys, s, &stats, add) })
	gate(ContractClusterRebalance, func() { checkClusterRebalance(in, sys, &stats, add) })
	return vs, stats, nil
}

// checkConsistency cross-checks the three consistency deciders:
// brute-force enumeration (ground truth within the horizon), the exact
// solver over the same horizon, and approximate propagation (sound for
// inconsistency, Theorem 2).
func checkConsistency(in *Instance, k Knobs, sys *granularity.System, s *core.EventStructure,
	prop *propagate.Result, brute BruteResult, stats *CheckStats, add func(string, string, ...any)) {

	v, exErr := exact.Solve(sys, s, exact.Options{
		Start: in.HorizonStart, End: in.HorizonEnd, MaxNodes: k.ExactMaxNodes,
	})
	if exErr != nil && brute.Capped {
		stats.skip(ContractConsistency, "exact and brute both exceeded their budgets")
		return
	}
	stats.ran(ContractConsistency)

	// Propagation claims inconsistency over ALL timelines; a bounded-horizon
	// witness from either decider refutes that claim.
	if !prop.Consistent {
		if exErr == nil && v.Satisfiable {
			add(ContractConsistency, "propagate refuted the structure but exact found witness %v", v.Witness)
		}
		if !brute.Capped && brute.Satisfiable {
			add(ContractConsistency, "propagate refuted the structure but brute force found witness %v", brute.Witnesses[0])
		}
	}
	// Exact vs brute over the identical horizon must agree outright (the
	// boundary-point discretization argument).
	if exErr == nil && !brute.Capped && v.Satisfiable != brute.Satisfiable {
		add(ContractConsistency, "exact says satisfiable=%v, brute force says %v over [%d,%d]",
			v.Satisfiable, brute.Satisfiable, in.HorizonStart, in.HorizonEnd)
	}
	// An exact witness must really satisfy every TCG.
	if exErr == nil && v.Satisfiable {
		if bad, u, w, c := witnessViolation(sys, s, v.Witness); bad {
			add(ContractConsistency, "exact witness %v violates %v on (%s,%s)", v.Witness, c, u, w)
		}
	}
}

// witnessViolation scans a full assignment for a violated constraint.
func witnessViolation(sys *granularity.System, s *core.EventStructure, w map[core.Variable]int64) (bool, core.Variable, core.Variable, core.TCG) {
	for u, tu := range w {
		for v, tv := range w {
			for _, c := range s.Constraints(u, v) {
				if !c.Satisfied(sys, tu, tv) {
					return true, u, v, c
				}
			}
		}
	}
	return false, "", "", core.TCG{}
}

// checkDerivedBounds asserts propagation soundness pointwise: every
// brute-force witness satisfies every bound propagation derived, including
// the implicit claim that the covers at both endpoints are defined (every
// seeded TCG requires definedness, and conversions only run along
// cover-feasible pairs, so definedness survives the fixpoint).
func checkDerivedBounds(in *Instance, sys *granularity.System, s *core.EventStructure,
	prop *propagate.Result, brute BruteResult, stats *CheckStats, add func(string, string, ...any)) {

	if brute.Capped {
		stats.skip(ContractDerivedBound, "brute force exceeded its node budget")
		return
	}
	if len(brute.Witnesses) == 0 {
		stats.skip(ContractDerivedBound, "no witnesses in the horizon")
		return
	}
	stats.ran(ContractDerivedBound)
	vars := prop.Variables()
	for _, w := range brute.Witnesses {
		for _, u := range vars {
			for _, v := range vars {
				if u == v {
					continue
				}
				for _, b := range prop.DerivedBounds(u, v) {
					g := sys.MustGet(b.Gran)
					zu, okU := g.TickOf(w[u])
					zv, okV := g.TickOf(w[v])
					if !okU || !okV {
						add(ContractDerivedBound, "bound %v on (%s,%s) but cover undefined at witness (%d,%d)",
							b, u, v, w[u], w[v])
						return
					}
					d := zv - zu
					if (!b.LoOpen && d < b.Lo) || (!b.HiOpen && d > b.Hi) {
						add(ContractDerivedBound, "witness %v has %s-diff %d on (%s,%s), outside derived %v",
							w, b.Gran, d, u, v, b)
						return
					}
				}
			}
		}
	}
}

// convInterval is a source interval the conversion contract feeds through
// the Figure-3 converter.
type convInterval struct{ lo, hi int64 }

// achievedDiff is one realized pair of granule differences for an ordered
// timestamp pair (t1 <= t2) in the horizon: the source difference, and the
// destination difference when the destination covers both endpoints.
type achievedDiff struct {
	src   int64
	dstOK bool
	dst   int64
}

// checkConversion validates the granularity conversions against direct
// enumeration: for every cover-feasible ordered pair of granularities and
// every test interval, each timestamp pair realizing a source difference
// inside the interval must (a) have its destination covers defined — the
// feasibility gate's promise — and (b) realize a destination difference
// inside the converted interval. When the reverse direction is feasible
// too, the round trip src→dst→src must still contain the source
// difference: round trips only widen.
func checkConversion(in *Instance, h Hooks, sys *granularity.System, s *core.EventStructure,
	stats *CheckStats, add func(string, string, ...any)) {

	names := sys.Names()
	sort.Strings(names)

	covers := map[string][]int64{}
	defined := map[string][]bool{}
	span := in.HorizonEnd - in.HorizonStart + 1
	for _, name := range names {
		g := sys.MustGet(name)
		cs, ds := make([]int64, span), make([]bool, span)
		for t := in.HorizonStart; t <= in.HorizonEnd; t++ {
			cs[t-in.HorizonStart], ds[t-in.HorizonStart] = g.TickOf(t)
		}
		covers[name], defined[name] = cs, ds
	}

	intervals := []convInterval{{0, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 3}, {2, 2}, {-1, 1}, {-2, 0}}
	for _, e := range s.Edges() {
		for _, c := range e.TCGs {
			intervals = append(intervals, convInterval{c.Min, c.Max})
		}
	}

	ranAny := false
	for _, src := range names {
		for _, dst := range names {
			if src == dst || !sys.ConversionFeasible(src, dst) {
				continue
			}
			ranAny = true
			// Deduplicate the realized difference pairs once per (src, dst).
			seen := map[achievedDiff]bool{}
			var achieved []achievedDiff
			for i := int64(0); i < span; i++ {
				if !defined[src][i] {
					continue
				}
				for j := i; j < span; j++ {
					if !defined[src][j] {
						continue
					}
					a := achievedDiff{src: covers[src][j] - covers[src][i]}
					if defined[dst][i] && defined[dst][j] {
						a.dstOK, a.dst = true, covers[dst][j]-covers[dst][i]
					}
					if !seen[a] {
						seen[a] = true
						achieved = append(achieved, a)
					}
				}
			}
			back := sys.ConversionFeasible(dst, src)
			for _, iv := range intervals {
				nlo, nhi := h.convert(sys, src, dst, iv.lo, iv.hi)
				var rlo, rhi int64
				if back {
					rlo, rhi = h.convert(sys, dst, src, nlo, nhi)
				}
				for _, a := range achieved {
					if a.src < iv.lo || a.src > iv.hi {
						continue
					}
					if !a.dstOK {
						add(ContractConversion, "%s→%s is cover-feasible but a pair with %s-diff %d has undefined %s covers",
							src, dst, src, a.src, dst)
						return
					}
					if a.dst < nlo || a.dst > nhi {
						add(ContractConversion, "[%d,%d]%s converts to [%d,%d]%s but a realized pair has %s-diff %d with %s-diff %d",
							iv.lo, iv.hi, src, nlo, nhi, dst, src, a.src, dst, a.dst)
						return
					}
					if back && (a.src < rlo || a.src > rhi) {
						add(ContractConversion, "round trip [%d,%d]%s → [%d,%d]%s → [%d,%d]%s excludes realized %s-diff %d",
							iv.lo, iv.hi, src, nlo, nhi, dst, rlo, rhi, src, src, a.src)
						return
					}
				}
			}
		}
	}
	if !ranAny {
		stats.skip(ContractConversion, "no cover-feasible granularity pair in the horizon")
		return
	}
	stats.ran(ContractConversion)
}

// checkDistinction asserts the paper's motivating distinction ("[0,0]day is
// not [0,86399]second"): for each custom granularity, find two pairs of
// adjacent seconds with identical second distance — one inside a granule,
// one straddling a boundary. [0,0]g must accept the first and reject the
// second, which no pure second-window constraint can do.
func checkDistinction(in *Instance, sys *granularity.System, stats *CheckStats, add func(string, string, ...any)) {
	ranAny := false
	for _, name := range in.granNames() {
		g, ok := sys.Get(name)
		if !ok {
			continue
		}
		var within, straddle [2]int64
		haveW, haveS := false, false
		for t := in.HorizonStart; t < in.HorizonEnd; t++ {
			z1, ok1 := g.TickOf(t)
			z2, ok2 := g.TickOf(t + 1)
			if !ok1 || !ok2 {
				continue
			}
			switch {
			case z1 == z2 && !haveW:
				within, haveW = [2]int64{t, t + 1}, true
			case z2 == z1+1 && !haveS:
				straddle, haveS = [2]int64{t, t + 1}, true
			}
			if haveW && haveS {
				break
			}
		}
		if !haveW || !haveS {
			continue // e.g. gapped granularities have no adjacent straddle
		}
		ranAny = true
		c := core.TCG{Min: 0, Max: 0, Gran: name}
		if !c.Satisfied(sys, within[0], within[1]) {
			add(ContractDistinction, "[0,0]%s rejects the within-granule pair (%d,%d)", name, within[0], within[1])
			return
		}
		if c.Satisfied(sys, straddle[0], straddle[1]) {
			add(ContractDistinction, "[0,0]%s accepts the straddling pair (%d,%d)", name, straddle[0], straddle[1])
			return
		}
		// Both pairs are 1 second apart, so every [m,n]second constraint
		// gives the same verdict on both — the distinction is real.
		sec := core.TCG{Min: 1, Max: 1, Gran: "second"}
		if sec.Satisfied(sys, within[0], within[1]) != sec.Satisfied(sys, straddle[0], straddle[1]) {
			add(ContractDistinction, "[1,1]second separates equal-distance pairs (%d,%d) and (%d,%d)",
				within[0], within[1], straddle[0], straddle[1])
			return
		}
	}
	if !ranAny {
		stats.skip(ContractDistinction, "no granularity with both within and straddling adjacent pairs")
		return
	}
	stats.ran(ContractDistinction)
}

// checkTAG asserts Theorem-3 equivalence and execution-mode determinism:
// batch acceptance equals brute-force occurrence search, the streaming
// Runner agrees event by event, a mid-stream checkpoint-resume (through
// the codec) is byte-identical to the uninterrupted run, and anchored
// batches merge identically at any worker count.
func checkTAG(in *Instance, sys *granularity.System, stats *CheckStats, add func(string, string, ...any)) {
	ct, err := in.ComplexType()
	if err != nil {
		stats.skip(ContractTAG, "no total complex type: "+err.Error())
		return
	}
	a, err := tag.Compile(ct)
	if err != nil {
		stats.skip(ContractTAG, "not compilable: "+err.Error())
		return
	}
	if len(in.Seq) == 0 {
		stats.skip(ContractTAG, "empty sequence")
		return
	}
	stats.ran(ContractTAG)

	want := core.OccursBrute(sys, ct, in.Seq)
	got, _ := a.Accepts(sys, in.Seq, tag.RunOptions{})
	if got != want {
		add(ContractTAG, "Accepts=%v but brute-force occurrence search says %v", got, want)
		return
	}

	// Streaming Runner: same verdict, and an accepted full binding must be
	// a genuine occurrence.
	r := a.NewRunner(sys, tag.RunOptions{})
	for _, e := range in.Seq {
		if _, ok := r.Feed(e); !ok {
			add(ContractTAG, "Runner refused event %v: %v", e, r.LastReject())
			return
		}
	}
	if r.Accepted() != want {
		add(ContractTAG, "Runner accepted=%v but brute-force occurrence search says %v", r.Accepted(), want)
		return
	}
	if b := r.Binding(); r.Accepted() && len(b) == len(ct.Assign) {
		binding := core.Binding{}
		for v, idx := range b {
			if idx < 0 || idx >= len(in.Seq) {
				add(ContractTAG, "Runner binding %v indexes outside the sequence", b)
				return
			}
			binding[core.Variable(v)] = in.Seq[idx]
		}
		if !ct.IsOccurrence(sys, binding) {
			add(ContractTAG, "Runner witness binding %v is not an occurrence", b)
			return
		}
	}
	full, err := snapshotBytes(r)
	if err != nil {
		add(ContractTAG, "snapshot of the uninterrupted run: %v", err)
		return
	}

	// Checkpoint mid-stream, round-trip through the codec, resume, and
	// compare final snapshots byte for byte.
	mid := len(in.Seq) / 2
	r2 := a.NewRunner(sys, tag.RunOptions{})
	for _, e := range in.Seq[:mid] {
		r2.Feed(e)
	}
	var buf bytes.Buffer
	cp, err := r2.Snapshot()
	if err == nil {
		err = cp.Encode(&buf)
	}
	if err != nil {
		add(ContractTAG, "mid-stream snapshot: %v", err)
		return
	}
	dec, err := tag.DecodeCheckpoint(&buf)
	if err != nil {
		add(ContractTAG, "decoding mid-stream snapshot: %v", err)
		return
	}
	r3, err := tag.RestoreRunner(a, sys, tag.RunOptions{}, dec)
	if err != nil {
		add(ContractTAG, "restoring mid-stream snapshot: %v", err)
		return
	}
	for _, e := range in.Seq[mid:] {
		r3.Feed(e)
	}
	resumed, err := snapshotBytes(r3)
	if err != nil {
		add(ContractTAG, "snapshot of the resumed run: %v", err)
		return
	}
	if !bytes.Equal(full, resumed) {
		add(ContractTAG, "resume at event %d diverges from the uninterrupted run", mid)
		return
	}

	// Anchored runs: per-reference verdicts equal ground truth, and the
	// batch merge is identical at any worker count and window.
	root, err := ct.Structure.Root()
	if err != nil {
		return
	}
	var refIdx []int
	for i, e := range in.Seq {
		if e.Type == ct.Assign[root] {
			refIdx = append(refIdx, i)
		}
	}
	if len(refIdx) == 0 {
		return
	}
	for _, window := range []int64{0, (in.HorizonEnd - in.HorizonStart + 1) / 2} {
		serial, err := a.AcceptsBatch(nil, sys, in.Seq, refIdx, window, 1, tag.RunOptions{})
		if err != nil {
			add(ContractTAG, "serial batch (window %d): %v", window, err)
			return
		}
		par, err := a.AcceptsBatch(nil, sys, in.Seq, refIdx, window, 3, tag.RunOptions{})
		if err != nil {
			add(ContractTAG, "parallel batch (window %d): %v", window, err)
			return
		}
		for i := range refIdx {
			if serial[i] != par[i] {
				add(ContractTAG, "batch verdicts diverge at reference %d between 1 and 3 workers (window %d)", refIdx[i], window)
				return
			}
		}
		if window == 0 {
			for i, idx := range refIdx {
				if bwant := bruteAnchoredOccurs(sys, ct, in.Seq, idx); serial[i] != bwant {
					add(ContractTAG, "anchored run at reference %d says %v, brute force says %v", idx, serial[i], bwant)
					return
				}
			}
		}
	}
}

// snapshotBytes encodes the runner's current snapshot.
func snapshotBytes(r *tag.Runner) ([]byte, error) {
	cp, err := r.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// checkMining cross-checks the miners three ways: Naive vs Optimized (at 1
// and 3 workers) must return identical discoveries, and a from-scratch
// enumeration of the full candidate space with brute-force anchored
// counting must reproduce exactly the discovered set — completeness and
// every match count at once.
func checkMining(in *Instance, k Knobs, sys *granularity.System, s *core.EventStructure,
	stats *CheckStats, add func(string, string, ...any)) {

	ct, err := in.ComplexType()
	if err != nil {
		stats.skip(ContractMining, "no total complex type: "+err.Error())
		return
	}
	root, err := s.Root()
	if err != nil {
		stats.skip(ContractMining, "structure has no root: "+err.Error())
		return
	}
	ref := ct.Assign[root]
	var refIdx []int
	for i, e := range in.Seq {
		if e.Type == ref {
			refIdx = append(refIdx, i)
		}
	}
	if len(refIdx) == 0 {
		stats.skip(ContractMining, "no reference occurrence in the sequence")
		return
	}
	types := sortedTypes(in.Seq)
	vars, err := s.TopoOrder()
	if err != nil {
		stats.skip(ContractMining, "structure is cyclic: "+err.Error())
		return
	}
	space := int64(1)
	for i := 1; i < len(vars) && space <= k.MiningMaxSpace; i++ {
		space *= int64(len(types))
	}
	if space > k.MiningMaxSpace {
		stats.skip(ContractMining, fmt.Sprintf("candidate space %d exceeds the bound %d", space, k.MiningMaxSpace))
		return
	}
	stats.ran(ContractMining)

	p := mining.Problem{Structure: s, MinConfidence: in.MinConfidence, Reference: ref}
	naive, _, nErr := mining.Naive(sys, p, in.Seq)
	if nErr != nil {
		add(ContractMining, "naive miner failed: %v", nErr)
		return
	}
	for _, workers := range []int{1, 3} {
		opt, _, oErr := mining.Optimized(sys, p, in.Seq, mining.PipelineOptions{Workers: workers})
		if oErr != nil {
			add(ContractMining, "optimized miner (%d workers) failed: %v", workers, oErr)
			return
		}
		if diff := diffDiscoveries(naive, opt); diff != "" {
			add(ContractMining, "naive vs optimized (%d workers): %s", workers, diff)
			return
		}
	}

	// Independent completeness check: enumerate every total assignment with
	// the reference type on the root, count matches by brute-force anchored
	// search, and compare the frequent set against the naive discoveries.
	got := map[string]mining.Discovery{}
	for _, d := range naive {
		got[mining.AssignKey(d.Assign)] = d
	}
	nonRoot := make([]core.Variable, 0, len(vars))
	for _, v := range vars {
		if v != root {
			nonRoot = append(nonRoot, v)
		}
	}
	assign := map[core.Variable]event.Type{root: ref}
	found := 0
	var enumerate func(idx int) bool
	enumerate = func(idx int) bool {
		if idx == len(nonRoot) {
			cand, err := core.NewComplexType(s, assign)
			if err != nil {
				add(ContractMining, "building candidate %v: %v", assign, err)
				return false
			}
			matches := 0
			for _, ri := range refIdx {
				if bruteAnchoredOccurs(sys, cand, in.Seq, ri) {
					matches++
				}
			}
			freq := float64(matches) / float64(len(refIdx))
			key := mining.AssignKey(assign)
			d, discovered := got[key]
			if frequent := freq > in.MinConfidence; frequent != discovered {
				add(ContractMining, "candidate %s has brute frequency %.3f (τ=%.2f) but discovered=%v",
					key, freq, in.MinConfidence, discovered)
				return false
			}
			if discovered {
				found++
				if d.Matches != matches {
					add(ContractMining, "discovery %s reports %d matches, brute force counts %d", key, d.Matches, matches)
					return false
				}
			}
			return true
		}
		for _, t := range types {
			assign[nonRoot[idx]] = event.Type(t)
			if !enumerate(idx + 1) {
				return false
			}
		}
		delete(assign, nonRoot[idx])
		return true
	}
	if !enumerate(0) {
		return
	}
	if found != len(naive) {
		add(ContractMining, "naive found %d discoveries but only %d lie in the enumerated candidate space", len(naive), found)
	}
}

// diffDiscoveries compares two discovery lists as sets keyed by assignment.
func diffDiscoveries(a, b []mining.Discovery) string {
	am := map[string]mining.Discovery{}
	for _, d := range a {
		am[mining.AssignKey(d.Assign)] = d
	}
	bm := map[string]mining.Discovery{}
	for _, d := range b {
		bm[mining.AssignKey(d.Assign)] = d
	}
	for k, da := range am {
		db, ok := bm[k]
		if !ok {
			return fmt.Sprintf("%s missing from the second set", k)
		}
		if da.Matches != db.Matches || da.Frequency != db.Frequency {
			return fmt.Sprintf("%s: matches/frequency %d/%.3f vs %d/%.3f", k, da.Matches, da.Frequency, db.Matches, db.Frequency)
		}
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			return fmt.Sprintf("%s extra in the second set", k)
		}
	}
	return ""
}

// checkExecEquiv is the compiled-vs-interpreted equivalence contract: the
// two TAG execution cores (engine.ExecCompiled, engine.ExecInterp) must
// agree byte for byte — verdicts, witness bindings, run stats, counter
// totals, streaming snapshots, and checkpoints restored across modes. It
// is the soak gate for retiring the interpreter.
func checkExecEquiv(in *Instance, sys *granularity.System, stats *CheckStats, add func(string, string, ...any)) {
	ct, err := in.ComplexType()
	if err != nil {
		stats.skip(ContractExecEquiv, "no total complex type: "+err.Error())
		return
	}
	a, err := tag.Compile(ct)
	if err != nil {
		stats.skip(ContractExecEquiv, "not compilable: "+err.Error())
		return
	}
	if len(in.Seq) == 0 {
		stats.skip(ContractExecEquiv, "empty sequence")
		return
	}
	stats.ran(ContractExecEquiv)

	modes := [2]engine.ExecMode{engine.ExecCompiled, engine.ExecInterp}
	optFor := func(m engine.ExecMode, obs engine.Observer) tag.RunOptions {
		return tag.RunOptions{Engine: engine.Config{Mode: m, Observer: obs}}
	}

	// Batch witness search: verdict, binding, stats and counter totals.
	type batchResult struct {
		w      map[string]int
		ok     bool
		rs     tag.RunStats
		counts map[string]int64
	}
	var batch [2]batchResult
	for i, m := range modes {
		cnt := engine.NewCounters()
		w, ok, rs := a.FindOccurrence(sys, in.Seq, optFor(m, cnt))
		batch[i] = batchResult{w: w, ok: ok, rs: rs, counts: cnt.Snapshot()}
	}
	if batch[0].ok != batch[1].ok {
		add(ContractExecEquiv, "FindOccurrence: compiled says %v, interpreted says %v", batch[0].ok, batch[1].ok)
		return
	}
	if batch[0].rs != batch[1].rs {
		add(ContractExecEquiv, "FindOccurrence stats diverge: compiled %+v, interpreted %+v", batch[0].rs, batch[1].rs)
		return
	}
	if d := diffBindings(batch[0].w, batch[1].w); d != "" {
		add(ContractExecEquiv, "FindOccurrence witness diverges (%s): compiled %v, interpreted %v", d, batch[0].w, batch[1].w)
		return
	}
	if d := diffCounts(batch[0].counts, batch[1].counts); d != "" {
		add(ContractExecEquiv, "FindOccurrence counter totals diverge: %s", d)
		return
	}

	// Streaming runners fed the same events: identical snapshots and
	// counter totals at the end.
	var snaps [2][]byte
	var streamCounts [2]map[string]int64
	for i, m := range modes {
		cnt := engine.NewCounters()
		r := a.NewRunner(sys, optFor(m, cnt))
		for _, e := range in.Seq {
			if _, ok := r.Feed(e); !ok {
				add(ContractExecEquiv, "%s runner refused event: %v", m, r.LastReject())
				return
			}
		}
		b, err := snapshotBytes(r)
		if err != nil {
			add(ContractExecEquiv, "%s runner snapshot: %v", m, err)
			return
		}
		snaps[i] = b
		streamCounts[i] = cnt.Snapshot()
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		add(ContractExecEquiv, "final runner snapshots differ between compiled and interpreted")
		return
	}
	if d := diffCounts(streamCounts[0], streamCounts[1]); d != "" {
		add(ContractExecEquiv, "runner counter totals diverge: %s", d)
		return
	}

	// Cross-mode restore: a snapshot taken under one core, round-tripped
	// through the codec and restored under the other, must finish on the
	// same final bytes.
	mid := len(in.Seq) / 2
	for i, m := range modes {
		other := modes[1-i]
		r := a.NewRunner(sys, optFor(m, nil))
		for _, e := range in.Seq[:mid] {
			r.Feed(e)
		}
		cp, err := r.Snapshot()
		if err != nil {
			add(ContractExecEquiv, "%s mid-stream snapshot: %v", m, err)
			return
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			add(ContractExecEquiv, "encoding %s snapshot: %v", m, err)
			return
		}
		dec, err := tag.DecodeCheckpoint(&buf)
		if err != nil {
			add(ContractExecEquiv, "decoding %s snapshot: %v", m, err)
			return
		}
		r2, err := tag.RestoreRunner(a, sys, optFor(other, nil), dec)
		if err != nil {
			add(ContractExecEquiv, "restoring %s snapshot into %s runner: %v", m, other, err)
			return
		}
		for _, e := range in.Seq[mid:] {
			r2.Feed(e)
		}
		resumed, err := snapshotBytes(r2)
		if err != nil {
			add(ContractExecEquiv, "snapshot of %s-resumed run: %v", other, err)
			return
		}
		if !bytes.Equal(resumed, snaps[1-i]) {
			add(ContractExecEquiv, "%s snapshot resumed under %s diverges from the straight %s run", m, other, other)
			return
		}
	}

	// Anchored batch: identical verdicts at every reference slot.
	refIdx := make([]int, len(in.Seq))
	for i := range refIdx {
		refIdx[i] = i
	}
	var verdicts [2][]bool
	for i, m := range modes {
		v, err := a.AcceptsBatch(nil, sys, in.Seq, refIdx, 0, 1, optFor(m, nil))
		if err != nil {
			add(ContractExecEquiv, "%s anchored batch: %v", m, err)
			return
		}
		verdicts[i] = v
	}
	for i := range refIdx {
		if verdicts[0][i] != verdicts[1][i] {
			add(ContractExecEquiv, "anchored verdicts diverge at reference %d: compiled %v, interpreted %v", i, verdicts[0][i], verdicts[1][i])
			return
		}
	}
}

// diffBindings returns "" when the two witness bindings are identical, or
// a short description of the first difference.
func diffBindings(a, b map[string]int) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d variables", len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return k + " missing in the second"
		}
		if va != vb {
			return fmt.Sprintf("%s=%d vs %d", k, va, vb)
		}
	}
	return ""
}

// diffCounts returns "" when the two counter snapshots are identical, or a
// description of the first differing counter.
func diffCounts(a, b map[string]int64) string {
	for k, va := range a {
		if vb, ok := b[k]; !ok || va != vb {
			return fmt.Sprintf("%s: %d vs %d", k, va, b[k])
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			return fmt.Sprintf("%s only in the second snapshot", k)
		}
	}
	return ""
}

// storeAppendRun opens a store on fsys and appends seq one event at a
// time with fsync-per-append, returning how many appends were
// acknowledged before the first error (the crash, when a fault is armed).
func storeAppendRun(fsys store.FS, sys *granularity.System, grans []string, seq event.Sequence) (int, error) {
	st, _, err := store.Open("log", store.Options{
		FS: fsys, System: sys, Grans: grans, SegmentMaxBytes: 256, SyncEvery: 1,
	})
	if err != nil {
		return 0, err
	}
	acked := 0
	for _, e := range seq {
		if _, err := st.Append(e); err != nil {
			st.Close()
			return acked, err
		}
		acked++
	}
	return acked, st.Close()
}

// checkStoreReplay cross-checks the durable event store against the
// instance's sequence under a seeded mid-run crash: every
// fsync-acknowledged append must survive filesystem recovery, the
// recovered log must be an exact prefix of the appended sequence,
// re-appending the lost suffix must converge to the full sequence, and
// ScanFromTick must agree with a brute-force filter over the system's
// tick functions. Tiny segments force rolls so the seal/manifest paths
// sit inside the crash window too.
func checkStoreReplay(in *Instance, sys *granularity.System,
	stats *CheckStats, add func(string, string, ...any)) {

	if len(in.Seq) == 0 {
		stats.skip(ContractStoreReplay, "empty sequence")
		return
	}
	for i, e := range in.Seq {
		if e.Time < 1 || e.Type == "" || (i > 0 && e.Time < in.Seq[i-1].Time) {
			stats.skip(ContractStoreReplay, "sequence not appendable")
			return
		}
	}
	grans := append([]string{"second"}, in.granNames()...)

	// Fault-free run on a pristine filesystem sizes the crash window.
	dry := store.NewMemFS()
	if n, err := storeAppendRun(dry, sys, grans, in.Seq); err != nil {
		add(ContractStoreReplay, "fault-free append failed after %d of %d events: %v", n, len(in.Seq), err)
		return
	}
	total := dry.OpCount(store.OpAny)
	if total < 1 {
		stats.skip(ContractStoreReplay, "no mutating filesystem operations to crash at")
		return
	}
	stats.ran(ContractStoreReplay)

	// Crash at a seeded mutating operation, settle the disk, reopen.
	h := uint64(engine.SplitMix64(uint64(in.Seed) ^ 0x73746f7265)) // "store"
	nth := 1 + int64(h%uint64(total))
	fsys := store.NewMemFS()
	fsys.SetFault(&store.Fault{Op: store.OpAny, Nth: nth, Mode: store.FaultCrash, Seed: engine.SplitMix64(h)})
	acked, _ := storeAppendRun(fsys, sys, grans, in.Seq)
	fsys.Recover()

	st, _, err := store.Open("log", store.Options{
		FS: fsys, System: sys, Grans: grans, SegmentMaxBytes: 256, SyncEvery: 1,
	})
	if err != nil {
		add(ContractStoreReplay, "reopen after crash at op %d/%d: %v", nth, total, err)
		return
	}
	defer st.Close()
	if deg, q := st.Degraded(); deg {
		add(ContractStoreReplay, "crash at op %d/%d quarantined fully-synced segments %v", nth, total, q)
		return
	}
	got, err := st.Events()
	if err != nil {
		add(ContractStoreReplay, "reading recovered log after crash at op %d/%d: %v", nth, total, err)
		return
	}
	if len(got) < acked || len(got) > len(in.Seq) {
		add(ContractStoreReplay, "crash at op %d/%d: recovered %d events, want between %d acked and %d sent",
			nth, total, len(got), acked, len(in.Seq))
		return
	}
	for i := range got {
		if got[i] != in.Seq[i] {
			add(ContractStoreReplay, "crash at op %d/%d: recovered event %d is %v, want %v",
				nth, total, i, got[i], in.Seq[i])
			return
		}
	}

	// Re-append the lost suffix; the log must converge to the sequence.
	for _, e := range in.Seq[len(got):] {
		if _, err := st.Append(e); err != nil {
			add(ContractStoreReplay, "re-appending lost suffix after crash at op %d/%d: %v", nth, total, err)
			return
		}
	}
	final, err := st.Events()
	if err != nil {
		add(ContractStoreReplay, "reading converged log: %v", err)
		return
	}
	if len(final) != len(in.Seq) {
		add(ContractStoreReplay, "converged log has %d events, want %d", len(final), len(in.Seq))
		return
	}
	for i := range final {
		if final[i] != in.Seq[i] {
			add(ContractStoreReplay, "converged event %d is %v, want %v", i, final[i], in.Seq[i])
			return
		}
	}

	// ScanFromTick at a seeded probe per granularity must agree with a
	// brute-force filter: the suffix starts at the first covered record
	// whose granule is >= the probe tick.
	for gi, gran := range grans {
		j := int(uint64(engine.SplitMix64(h^uint64(gi+1))) % uint64(len(in.Seq)))
		tick, ok := sys.TickOf(gran, in.Seq[j].Time)
		if !ok {
			continue
		}
		recs, err := st.ScanFromTick(gran, tick)
		if err != nil {
			add(ContractStoreReplay, "ScanFromTick(%s, %d): %v", gran, tick, err)
			return
		}
		start := -1
		for i, e := range in.Seq {
			if z, ok := sys.TickOf(gran, e.Time); ok && z >= tick {
				start = i
				break
			}
		}
		want := 0
		if start >= 0 {
			want = len(in.Seq) - start
		}
		if len(recs) != want {
			add(ContractStoreReplay, "ScanFromTick(%s, %d) returned %d records, brute filter says %d",
				gran, tick, len(recs), want)
			return
		}
		for i, r := range recs {
			if r.Index != int64(start+i) || r.Event != in.Seq[start+i] {
				add(ContractStoreReplay, "ScanFromTick(%s, %d)[%d] = {%d %v}, want {%d %v}",
					gran, tick, i, r.Index, r.Event, start+i, in.Seq[start+i])
				return
			}
		}
	}
}

// diffIncrementalPrefix compares one prefix's incremental snapshot against
// a batch run: identical error presence and message, identical stats
// (TagRuns excluded — running fewer automata is the incremental miner's
// purpose) and an identical ordered discovery list.
func diffIncrementalPrefix(ids []mining.Discovery, ist mining.Stats, ierr error,
	bds []mining.Discovery, bst mining.Stats, berr error) string {
	if (ierr == nil) != (berr == nil) {
		return fmt.Sprintf("incremental err %v, batch err %v", ierr, berr)
	}
	if ierr != nil {
		if ierr.Error() != berr.Error() {
			return fmt.Sprintf("incremental err %q, batch err %q", ierr, berr)
		}
		return ""
	}
	ist.TagRuns, bst.TagRuns = 0, 0
	if ist != bst {
		return fmt.Sprintf("stats %+v, batch %+v", ist, bst)
	}
	if len(ids) != len(bds) {
		return fmt.Sprintf("%d discoveries, batch %d", len(ids), len(bds))
	}
	for i := range ids {
		if mining.AssignKey(ids[i].Assign) != mining.AssignKey(bds[i].Assign) ||
			ids[i].Matches != bds[i].Matches || ids[i].Frequency != bds[i].Frequency {
			return fmt.Sprintf("discovery %d = %s (%d, %v), batch %s (%d, %v)", i,
				mining.AssignKey(ids[i].Assign), ids[i].Matches, ids[i].Frequency,
				mining.AssignKey(bds[i].Assign), bds[i].Matches, bds[i].Frequency)
		}
	}
	return ""
}

// checkIncrementalEquiv proves the incremental miner equal to batch
// Optimized at EVERY prefix of the instance's sequence, through a live
// stream and through a seeded crash: at a seeded split the miner's
// checkpoint is consolidated, the event store (on a fault-injecting MemFS
// with batched fsyncs, so acknowledged-but-unsynced tail records can die)
// is crashed and recovered, and the contract requires
//
//   - a recovered log shorter than the checkpoint's high-water mark is
//     refused with the typed ErrHighWaterBeyondLog, and converges after
//     the lost tail is re-appended;
//   - the restored miner, after replaying the store's retained suffix,
//     matches batch Optimized on the split prefix and on every later
//     prefix as the remaining events stream in;
//   - at the full sequence, the witness bindings Explain extracts for the
//     incremental discoveries are identical to the batch ones.
func checkIncrementalEquiv(in *Instance, k Knobs, sys *granularity.System, s *core.EventStructure,
	stats *CheckStats, add func(string, string, ...any)) {

	ct, err := in.ComplexType()
	if err != nil {
		stats.skip(ContractIncrementalEquiv, "no total complex type: "+err.Error())
		return
	}
	root, err := s.Root()
	if err != nil {
		stats.skip(ContractIncrementalEquiv, "structure has no root: "+err.Error())
		return
	}
	ref := ct.Assign[root]
	refSeen := false
	for _, e := range in.Seq {
		if e.Type == ref {
			refSeen = true
		}
	}
	if !refSeen {
		stats.skip(ContractIncrementalEquiv, "no reference occurrence in the sequence")
		return
	}
	if len(in.Seq) == 0 {
		stats.skip(ContractIncrementalEquiv, "empty sequence")
		return
	}
	for i, e := range in.Seq {
		if e.Time < 1 || e.Type == "" || (i > 0 && e.Time < in.Seq[i-1].Time) {
			stats.skip(ContractIncrementalEquiv, "sequence not appendable")
			return
		}
	}
	types := sortedTypes(in.Seq)
	vars, err := s.TopoOrder()
	if err != nil {
		stats.skip(ContractIncrementalEquiv, "structure is cyclic: "+err.Error())
		return
	}
	space := int64(1)
	for i := 1; i < len(vars) && space <= k.MiningMaxSpace; i++ {
		space *= int64(len(types))
	}
	if space > k.MiningMaxSpace {
		stats.skip(ContractIncrementalEquiv, fmt.Sprintf("candidate space %d exceeds the bound %d", space, k.MiningMaxSpace))
		return
	}
	stats.ran(ContractIncrementalEquiv)

	p := mining.Problem{Structure: s, MinConfidence: in.MinConfidence, Reference: ref}
	batch := func(n int) ([]mining.Discovery, mining.Stats, error) {
		return mining.Optimized(sys, p, in.Seq[:n], mining.PipelineOptions{})
	}
	inc, err := mining.NewIncremental(sys, p, mining.PipelineOptions{})
	if err != nil {
		add(ContractIncrementalEquiv, "NewIncremental: %v", err)
		return
	}

	h := uint64(engine.SplitMix64(uint64(in.Seed) ^ 0x696e6372)) // "incr"
	split := 1 + int(h%uint64(len(in.Seq)))

	// Live stream: every prefix up to the split must match batch.
	var cpBytes []byte
	for i := 0; i < split; i++ {
		if err := inc.Append(in.Seq[i]); err != nil {
			add(ContractIncrementalEquiv, "append %d: %v", i, err)
			return
		}
		ids, ist, ierr := inc.Snapshot()
		bds, bst, berr := batch(i + 1)
		if d := diffIncrementalPrefix(ids, ist, ierr, bds, bst, berr); d != "" {
			add(ContractIncrementalEquiv, "prefix %d: %s", i+1, d)
			return
		}
	}
	cp, err := inc.Checkpoint()
	if err != nil {
		add(ContractIncrementalEquiv, "checkpoint at %d: %v", split, err)
		return
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		add(ContractIncrementalEquiv, "encode checkpoint: %v", err)
		return
	}
	cpBytes = buf.Bytes()

	// Crash leg: the split prefix goes into a store whose fsyncs are
	// batched, so the crash can drop an acknowledged-but-unsynced tail and
	// leave the recovered log SHORTER than the checkpoint's high-water
	// mark — the restore refusal the consolidation protocol depends on.
	grans := append([]string{"second"}, in.granNames()...)
	fsys := store.NewMemFS()
	st, _, err := store.Open("log", store.Options{
		FS: fsys, System: sys, Grans: grans, SegmentMaxBytes: 256, SyncEvery: 4,
	})
	if err != nil {
		add(ContractIncrementalEquiv, "open store: %v", err)
		return
	}
	for i := 0; i < split; i++ {
		if _, err := st.Append(in.Seq[i]); err != nil {
			add(ContractIncrementalEquiv, "store append %d: %v", i, err)
			st.Close()
			return
		}
	}
	fsys.CrashNow(int64(engine.SplitMix64(h)))
	st.Close()
	fsys.Recover()
	st, _, err = store.Open("log", store.Options{
		FS: fsys, System: sys, Grans: grans, SegmentMaxBytes: 256, SyncEvery: 1,
	})
	if err != nil {
		add(ContractIncrementalEquiv, "reopen after crash: %v", err)
		return
	}
	defer st.Close()
	recovered := st.Len()
	if recovered > int64(split) {
		add(ContractIncrementalEquiv, "recovered %d events from a %d-event prefix", recovered, split)
		return
	}

	cp2, err := mining.DecodeCheckpoint(bytes.NewReader(cpBytes))
	if err != nil {
		add(ContractIncrementalEquiv, "decode checkpoint: %v", err)
		return
	}
	inc2, err := mining.RestoreIncremental(sys, p, mining.PipelineOptions{}, cp2, recovered)
	if recovered < cp2.Incremental.HighWater {
		// The crash dropped consolidated events; restore must refuse with
		// the typed error, and succeed once the lost tail is re-appended.
		if !errors.Is(err, mining.ErrHighWaterBeyondLog) {
			add(ContractIncrementalEquiv, "restore against %d-event log (mark %d): got %v, want ErrHighWaterBeyondLog",
				recovered, cp2.Incremental.HighWater, err)
			return
		}
		for i := recovered; i < int64(split); i++ {
			if _, err := st.Append(in.Seq[i]); err != nil {
				add(ContractIncrementalEquiv, "re-append lost event %d: %v", i, err)
				return
			}
		}
		inc2, err = mining.RestoreIncremental(sys, p, mining.PipelineOptions{}, cp2, int64(split))
	}
	if err != nil {
		add(ContractIncrementalEquiv, "restore: %v", err)
		return
	}
	recs, err := st.ReadFrom(cp2.Incremental.ReplayFrom)
	if err != nil {
		add(ContractIncrementalEquiv, "ReadFrom(%d): %v", cp2.Incremental.ReplayFrom, err)
		return
	}
	for _, r := range recs {
		if r.Event != in.Seq[r.Index] {
			add(ContractIncrementalEquiv, "recovered record %d is %v, want %v", r.Index, r.Event, in.Seq[r.Index])
			return
		}
		if err := inc2.Append(r.Event); err != nil {
			add(ContractIncrementalEquiv, "replay record %d: %v", r.Index, err)
			return
		}
	}

	// The restored miner streams the rest; every remaining prefix must
	// match batch, and the final discovery list is kept for witnesses.
	var finalIDs []mining.Discovery
	for n := split; n <= len(in.Seq); n++ {
		if n > split {
			if err := inc2.Append(in.Seq[n-1]); err != nil {
				add(ContractIncrementalEquiv, "restored append %d: %v", n-1, err)
				return
			}
		}
		ids, ist, ierr := inc2.Snapshot()
		bds, bst, berr := batch(n)
		if d := diffIncrementalPrefix(ids, ist, ierr, bds, bst, berr); d != "" {
			add(ContractIncrementalEquiv, "restored prefix %d: %s", n, d)
			return
		}
		if n == len(in.Seq) && ierr == nil {
			finalIDs = bds // == ids by the diff above
			_ = ids
		}
	}

	// Witness bindings: Explain over the full sequence must extract the
	// same evidence for the incrementally-discovered set.
	for _, d := range finalIDs {
		iw, err := mining.Explain(sys, p, in.Seq, d, 2)
		if err != nil {
			add(ContractIncrementalEquiv, "explain %s: %v", mining.AssignKey(d.Assign), err)
			return
		}
		if len(iw) == 0 {
			add(ContractIncrementalEquiv, "discovery %s has no witness", mining.AssignKey(d.Assign))
			return
		}
		for _, w := range iw {
			for v, e := range w.Binding {
				if e.Type == "" {
					add(ContractIncrementalEquiv, "witness for %s binds %s to an empty event", mining.AssignKey(d.Assign), v)
					return
				}
			}
		}
	}
}
