package oracle

import (
	"testing"

	"repro/internal/granularity"
)

// TestZooCoverage asserts the generator actually exercises the whole
// calendar zoo: over a block of 300 seeds, every family in the default
// registry (granularity.FamilyNames) is enrolled in at least one instance,
// and every enrolled instance materializes a working system. This is the
// auto-enrollment guarantee — adding a family to the registry without the
// oracle sampling it fails here, not silently.
func TestZooCoverage(t *testing.T) {
	k := DefaultKnobs()
	want := granularity.FamilyNames()
	seen := make(map[string]int, len(want))
	enrolled := 0
	for seed := int64(0); seed < 300; seed++ {
		in := GenInstance(seed, k)
		if len(in.Families) == 0 {
			continue
		}
		enrolled++
		for _, f := range in.Families {
			seen[f]++
		}
		if _, err := in.System(); err != nil {
			t.Fatalf("seed %d (families %v): System: %v", seed, in.Families, err)
		}
	}
	// ~80% of seeds enroll families; far fewer means the sampler broke.
	if enrolled < 150 {
		t.Fatalf("only %d/300 seeds enrolled calendar families", enrolled)
	}
	for _, f := range want {
		if seen[f] == 0 {
			t.Errorf("family %q never enrolled across 300 seeds", f)
		}
	}
	for f := range seen {
		found := false
		for _, w := range want {
			if f == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("enrolled family %q is not in the registry", f)
		}
	}
	t.Logf("enrolled %d/300 seeds across %d families", enrolled, len(seen))
}

// TestZooAnchoredHorizons asserts enrolled instances re-anchor their brute
// horizon away from the origin when a family declares hot spots, while
// preserving the span (the exponential contracts' cost budget).
func TestZooAnchoredHorizons(t *testing.T) {
	k := DefaultKnobs()
	anchored := 0
	for seed := int64(0); seed < 300; seed++ {
		in := GenInstance(seed, k)
		span := in.HorizonEnd - in.HorizonStart
		if span <= 0 || span > k.HorizonEnd {
			t.Fatalf("seed %d: horizon span %d out of budget [1, %d]", seed, span, k.HorizonEnd)
		}
		if len(in.Families) > 0 && in.HorizonStart > k.HorizonEnd {
			anchored++
		}
	}
	if anchored < 100 {
		t.Fatalf("only %d/300 seeds anchored their horizon at a calendar boundary", anchored)
	}
}
