package oracle

import (
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/periodic"
)

// Shrink greedily minimizes an instance that violates the named contract:
// each pass proposes every single-step mutation of its kind (delete a
// variable, delete a constraint, narrow an interval, drop events, drop
// unused granularities, halve the horizon) and adopts the first mutant on
// which the SAME contract still fails, restarting the pass from the
// smaller instance. Passes repeat until a full sweep adopts nothing.
// maxChecks bounds the total number of contract evaluations so shrinking
// a pathological instance cannot hang the fuzzer.
func Shrink(in *Instance, contract string, k Knobs, h Hooks, maxChecks int) *Instance {
	cur := in.Clone()
	checks := 0
	fails := func(cand *Instance) bool {
		if checks >= maxChecks {
			return false
		}
		checks++
		vs, _, err := CheckInstance(cand, k, h)
		if err != nil {
			return false // malformed mutant: the violation did not reproduce
		}
		for _, v := range vs {
			if v.Contract == contract {
				return true
			}
		}
		return false
	}
	passes := []func(*Instance) []*Instance{
		dropVariableCandidates,
		dropConstraintCandidates,
		dropEventCandidates,
		narrowIntervalCandidates,
		dropGranularityCandidates,
		dropFamilyCandidates,
		halveHorizonCandidates,
	}
	for {
		improved := false
		for _, pass := range passes {
		restart:
			for _, cand := range pass(cur) {
				if fails(cand) {
					cur = cand
					improved = true
					goto restart
				}
			}
		}
		if !improved || checks >= maxChecks {
			return cur
		}
	}
}

// dropVariableCandidates removes one non-root variable (with its arcs and
// assignment) per candidate. The root stays so the TAG and mining
// contracts remain runnable.
func dropVariableCandidates(in *Instance) []*Instance {
	if in.Spec == nil || len(in.Spec.Variables) <= 2 {
		return nil
	}
	root, err := rootOf(in.Spec)
	if err != nil {
		root = in.Spec.Variables[0]
	}
	var out []*Instance
	for i := len(in.Spec.Variables) - 1; i >= 0; i-- {
		v := in.Spec.Variables[i]
		if v == root {
			continue
		}
		c := in.Clone()
		c.Spec.Variables = append(c.Spec.Variables[:i:i], c.Spec.Variables[i+1:]...)
		var edges []core.EdgeSpec
		for _, e := range c.Spec.Edges {
			if e.From != v && e.To != v {
				edges = append(edges, e)
			}
		}
		c.Spec.Edges = edges
		delete(c.Spec.Assign, v)
		c.invalidate()
		out = append(out, c)
	}
	return out
}

// dropConstraintCandidates removes one TCG per candidate; an arc losing
// its last TCG is removed entirely, unless it is the only edge left.
func dropConstraintCandidates(in *Instance) []*Instance {
	if in.Spec == nil {
		return nil
	}
	var out []*Instance
	for i := len(in.Spec.Edges) - 1; i >= 0; i-- {
		e := in.Spec.Edges[i]
		for j := len(e.Constraints) - 1; j >= 0; j-- {
			c := in.Clone()
			switch {
			case len(e.Constraints) > 1:
				cs := c.Spec.Edges[i].Constraints
				c.Spec.Edges[i].Constraints = append(cs[:j:j], cs[j+1:]...)
			case len(in.Spec.Edges) > 1:
				c.Spec.Edges = append(c.Spec.Edges[:i:i], c.Spec.Edges[i+1:]...)
			default:
				continue
			}
			c.invalidate()
			out = append(out, c)
		}
	}
	return out
}

// narrowIntervalCandidates tightens one TCG per candidate: a wide interval
// collapses to the point [Min, Min], a positive point interval steps down
// toward [0, 0].
func narrowIntervalCandidates(in *Instance) []*Instance {
	if in.Spec == nil {
		return nil
	}
	var out []*Instance
	for i, e := range in.Spec.Edges {
		for j, tc := range e.Constraints {
			var min, max int64
			switch {
			case tc.Max > tc.Min:
				min, max = tc.Min, tc.Min
			case tc.Min > 0:
				min, max = tc.Min-1, tc.Min-1
			default:
				continue
			}
			c := in.Clone()
			c.Spec.Edges[i].Constraints[j].Min = min
			c.Spec.Edges[i].Constraints[j].Max = max
			c.invalidate()
			out = append(out, c)
		}
	}
	return out
}

// dropEventCandidates proposes the first half of the sequence, the
// sequence minus its last event, and the sequence minus each single event
// — big bites first, then nibbles.
func dropEventCandidates(in *Instance) []*Instance {
	var out []*Instance
	if len(in.Seq) > 4 {
		c := in.Clone()
		c.Seq = append(event.Sequence(nil), in.Seq[:(len(in.Seq)+1)/2]...)
		c.invalidate()
		out = append(out, c)
	}
	for i := len(in.Seq) - 1; i >= 0; i-- {
		c := in.Clone()
		c.Seq = append(append(event.Sequence(nil), in.Seq[:i]...), in.Seq[i+1:]...)
		c.invalidate()
		out = append(out, c)
	}
	return out
}

// dropGranularityCandidates removes one custom granularity no TCG
// references per candidate.
func dropGranularityCandidates(in *Instance) []*Instance {
	used := map[string]bool{}
	if in.Spec != nil {
		for _, e := range in.Spec.Edges {
			for _, c := range e.Constraints {
				used[c.Gran] = true
			}
		}
	}
	var out []*Instance
	for i := len(in.Grans) - 1; i >= 0; i-- {
		if used[in.Grans[i].Name] {
			continue
		}
		c := in.Clone()
		c.Grans = append(append([]periodic.Spec(nil), c.Grans[:i]...), c.Grans[i+1:]...)
		c.invalidate()
		out = append(out, c)
	}
	return out
}

// dropFamilyCandidates removes one enrolled calendar family no TCG
// references per candidate.
func dropFamilyCandidates(in *Instance) []*Instance {
	used := map[string]bool{}
	if in.Spec != nil {
		for _, e := range in.Spec.Edges {
			for _, c := range e.Constraints {
				used[c.Gran] = true
			}
		}
	}
	var out []*Instance
	for i := len(in.Families) - 1; i >= 0; i-- {
		if used[in.Families[i]] {
			continue
		}
		c := in.Clone()
		c.Families = append(append([]string(nil), c.Families[:i]...), c.Families[i+1:]...)
		c.invalidate()
		out = append(out, c)
	}
	return out
}

// halveHorizonCandidates shrinks the brute/exact horizon (a smaller
// horizon also speeds up every later shrink check), dropping events that
// fall outside it.
func halveHorizonCandidates(in *Instance) []*Instance {
	span := in.HorizonEnd - in.HorizonStart
	if span < 8 {
		return nil
	}
	c := in.Clone()
	c.HorizonEnd = in.HorizonStart + span/2
	var seq event.Sequence
	for _, e := range c.Seq {
		if e.Time <= c.HorizonEnd {
			seq = append(seq, e)
		}
	}
	c.Seq = seq
	c.invalidate()
	return []*Instance{c}
}
