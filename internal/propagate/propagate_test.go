package propagate

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/stp"
)

var sys = granularity.Default()

func metrics(name string) *granularity.Metrics { return sys.Metrics(name) }

func TestConvertUpperUniformPairs(t *testing.T) {
	// 60 minutes are one hour with exact conversion factors (the paper's
	// footnote): diff <= 60 minutes -> seconds distance <= 61*60-1 = 3659
	// -> hour diff <= ceil(3659/3600) = 2.
	if got := ConvertUpper(metrics("minute"), metrics("hour"), 60); got != 2 {
		t.Fatalf("ConvertUpper(minute->hour, 60) = %d, want 2", got)
	}
	// diff <= 0 hours -> distance <= 3599 -> minute diff <= 60.
	if got := ConvertUpper(metrics("hour"), metrics("minute"), 0); got != 60 {
		t.Fatalf("ConvertUpper(hour->minute, 0) = %d, want 60", got)
	}
	// Same-granule seconds convert to 0.
	if got := ConvertUpper(metrics("second"), metrics("day"), 0); got != 0 {
		t.Fatalf("ConvertUpper(second->day, 0) = %d, want 0", got)
	}
}

func TestConvertLowerUniformPairs(t *testing.T) {
	// diff >= 2 hours -> distance >= 3601 -> day diff >= ... maxsize(day,1)
	// = 86400 > 3601 -> 0.
	if got := ConvertLower(metrics("hour"), metrics("day"), 2); got != 0 {
		t.Fatalf("ConvertLower(hour->day, 2) = %d, want 0", got)
	}
	// diff >= 25 hours -> distance >= 24*3600+1 -> day diff >= 1.
	if got := ConvertLower(metrics("hour"), metrics("day"), 25); got != 1 {
		t.Fatalf("ConvertLower(hour->day, 25) = %d, want 1", got)
	}
	if got := ConvertLower(metrics("hour"), metrics("day"), 0); got != 0 {
		t.Fatal("m=0 must convert to 0")
	}
}

func TestConvertBDayToWeekMatchesFig3(t *testing.T) {
	// [1,1]b-day -> [0,1]week (worked through in the granularity tests).
	conv := NewConverter(sys, "b-day", "week")
	lo, hi := conv.Interval(1, 1)
	if lo != 0 || hi != 1 {
		t.Fatalf("[1,1]b-day -> [%d,%d]week, want [0,1]", lo, hi)
	}
	// [0,5]b-day: 6 b-days span at most 8 days - 1s; weeks of >= that
	// need 2 granules.
	lo, hi = conv.Interval(0, 5)
	if lo != 0 || hi != 2 {
		t.Fatalf("[0,5]b-day -> [%d,%d]week, want [0,2]", lo, hi)
	}
}

func TestConvertIntervalSignsAndInf(t *testing.T) {
	// Open ends stay open.
	conv := NewConverter(sys, "hour", "day")
	lo, hi := conv.Interval(-stp.Inf, stp.Inf)
	if lo != -stp.Inf || hi != stp.Inf {
		t.Fatalf("open interval mangled: [%d,%d]", lo, hi)
	}
	// Negative bounds convert via the reversed direction: diff in
	// [-49h,-25h] means the pair is 1..x days apart the other way.
	lo, hi = conv.Interval(-49, -25)
	if hi != -1 {
		t.Fatalf("hi of [-49,-25]hour in days = %d, want -1", hi)
	}
	if lo > -2 {
		t.Fatalf("lo of [-49,-25]hour in days = %d, want <= -2", lo)
	}
	// Mixed sign.
	lo, hi = conv.Interval(-25, 25)
	if lo != -2 || hi != 2 {
		t.Fatalf("[-25,25]hour -> [%d,%d]day, want [-2,2]", lo, hi)
	}
}

// TestConversionSoundnessSampled verifies the Figure-3 conversion on random
// concrete timestamp pairs: whenever the source granule difference is
// within [m,n], the target granule difference is within the converted
// interval.
func TestConversionSoundnessSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	names := []string{"second", "minute", "hour", "day", "week", "month", "b-day", "b-week", "b-month"}
	base := event.At(1995, 1, 1, 0, 0, 0)
	span := int64(400 * 86400)
	for _, srcName := range names {
		for _, dstName := range names {
			if srcName == dstName || !sys.ConversionFeasible(srcName, dstName) {
				continue
			}
			src, dst := sys.MustGet(srcName), sys.MustGet(dstName)
			conv := NewConverter(sys, srcName, dstName)
			checked := 0
			for trial := 0; trial < 4000 && checked < 300; trial++ {
				t1 := base + rng.Int63n(span)
				t2 := t1 + rng.Int63n(40*86400)
				z1, ok1 := src.TickOf(t1)
				z2, ok2 := src.TickOf(t2)
				if !ok1 || !ok2 {
					continue
				}
				d := z2 - z1
				// Treat the observed difference as the constraint [d,d].
				nlo, nhi := conv.Interval(d, d)
				w1, ok1 := dst.TickOf(t1)
				w2, ok2 := dst.TickOf(t2)
				if !ok1 || !ok2 {
					t.Fatalf("%s->%s: feasible conversion but target gap at %d/%d", srcName, dstName, t1, t2)
				}
				dd := w2 - w1
				if dd < nlo || dd > nhi {
					t.Fatalf("%s->%s unsound: src diff %d converts to [%d,%d] but target diff is %d (t1=%s t2=%s)",
						srcName, dstName, d, nlo, nhi, dd, event.Civil(t1), event.Civil(t2))
				}
				checked++
			}
			if checked == 0 {
				t.Fatalf("%s->%s: no valid samples", srcName, dstName)
			}
		}
	}
}

func TestRunFig1aDerivesPaperConstraints(t *testing.T) {
	s := core.Fig1a()
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Fatal("Fig1a must not be refuted")
	}
	// Section 5.1: Γ'(X0,X3) contains a week constraint and an hour
	// constraint. The paper quotes [0,1]week and [1,175]hour from its
	// (unpublished) tables; our Figure-3 tables give the sound
	// [0,2]week and [0,200]hour. See EXPERIMENTS.md E1 for the analysis —
	// the true tightest hour upper bound is 199, so [.,175] cannot come
	// from a sound conversion.
	wb, ok := r.Bounds("week", "X0", "X3")
	if !ok || wb.LoOpen || wb.HiOpen {
		t.Fatalf("no finite week bound derived: %+v", wb)
	}
	if wb.Lo != 0 || wb.Hi != 2 {
		t.Fatalf("week bound (X0,X3) = %s, want [0,2]week", wb)
	}
	hb, ok := r.Bounds("hour", "X0", "X3")
	if !ok || hb.HiOpen {
		t.Fatalf("no finite hour bound derived: %+v", hb)
	}
	if hb.Lo != 0 || hb.Hi != 200 {
		t.Fatalf("hour bound (X0,X3) = %s, want [0,200]hour", hb)
	}
	// The b-day group must NOT have a bound on (X0,X3): nothing converts
	// into b-day (week and hour cover weekend seconds), matching the paper,
	// which lists only week and hour constraints in Γ'(X0,X3).
	bb, ok := r.Bounds("b-day", "X0", "X3")
	if !ok {
		t.Fatal("b-day group missing")
	}
	if !bb.HiOpen {
		t.Fatalf("unexpected finite b-day bound %s on (X0,X3): hour/week must not convert into b-day", bb)
	}
}

// TestRunFig1aSoundOnScenarios samples bindings; every binding matching the
// structure must satisfy every derived bound (Theorem 2 soundness).
func TestRunFig1aSoundOnScenarios(t *testing.T) {
	s := core.Fig1a()
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	base := event.At(1996, 5, 1, 0, 0, 0)
	vars := s.Variables()
	matched := 0
	for trial := 0; trial < 60000 && matched < 80; trial++ {
		b := core.Binding{}
		t0 := base + rng.Int63n(30*86400)
		b["X0"] = event.Event{Type: "e0", Time: t0}
		b["X1"] = event.Event{Type: "e1", Time: t0 + rng.Int63n(4*86400)}
		b["X2"] = event.Event{Type: "e2", Time: t0 + rng.Int63n(9*86400)}
		b["X3"] = event.Event{Type: "e3", Time: b["X2"].Time + rng.Int63n(10*3600)}
		if !core.Matches(sys, s, b) {
			continue
		}
		matched++
		for _, x := range vars {
			for _, y := range vars {
				if x == y {
					continue
				}
				for _, db := range r.DerivedBounds(x, y) {
					g := sys.MustGet(db.Gran)
					z1, ok1 := g.TickOf(b[x].Time)
					z2, ok2 := g.TickOf(b[y].Time)
					if !ok1 || !ok2 {
						continue
					}
					d := z2 - z1
					if (!db.LoOpen && d < db.Lo) || (!db.HiOpen && d > db.Hi) {
						t.Fatalf("matching binding violates derived %s on (%s,%s): diff %d", db, x, y, d)
					}
				}
			}
		}
	}
	if matched < 20 {
		t.Fatalf("only %d matching scenarios sampled; test too weak", matched)
	}
}

func TestRunDetectsPlainInconsistency(t *testing.T) {
	// Two contradictory same-granularity constraints on one arc.
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 1, "day"))
	s.MustConstrain("A", "C", core.MustTCG(5, 9, "day"))
	s.MustConstrain("B", "C", core.MustTCG(0, 1, "day"))
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent {
		t.Fatal("day-group inconsistency not detected")
	}
}

func TestRunDetectsCrossGranularityInconsistency(t *testing.T) {
	// A->B within the same day ([0,0]day) but at least 30 hours apart:
	// only conversion between groups can refute it.
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "day"), core.MustTCG(30, 40, "hour"))
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Consistent {
		t.Fatal("cross-granularity inconsistency not detected")
	}
}

func TestRunFig1bStaysApproximate(t *testing.T) {
	// Figure 1(b) is consistent; the month-group bound on (X0,X2) stays
	// [0,12] even though the true solution set is {0,12} — exactly the
	// approximation the paper describes.
	s := core.Fig1b()
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Fatal("Fig1b wrongly refuted")
	}
	mb, ok := r.Bounds("month", "X0", "X2")
	if !ok || mb.Lo != 0 || mb.Hi != 12 {
		t.Fatalf("month bound (X0,X2) = %v, want [0,12]", mb)
	}
}

func TestRunErrors(t *testing.T) {
	// Unknown granularity.
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 1, "fortnight"))
	if _, err := Run(sys, s, Options{}); err == nil {
		t.Fatal("unknown granularity accepted")
	}
	// Unrooted (multi-source) structures are fine for consistency checking;
	// cyclic ones are not.
	s2 := core.NewStructure()
	s2.MustConstrain("A", "C", core.MustTCG(0, 1, "day"))
	s2.MustConstrain("B", "C", core.MustTCG(0, 1, "day"))
	if _, err := Run(sys, s2, Options{}); err != nil {
		t.Fatalf("multi-source structure rejected: %v", err)
	}
	s3 := core.NewStructure()
	s3.MustConstrain("A", "B", core.MustTCG(0, 1, "day"))
	s3.MustConstrain("B", "A", core.MustTCG(0, 1, "day"))
	if _, err := Run(sys, s3, Options{}); err == nil {
		t.Fatal("cyclic structure accepted")
	}
}

func TestDerivedTCGsAndWindow(t *testing.T) {
	s := core.Fig1a()
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tcgs := r.DerivedTCGs("X0", "X3")
	if len(tcgs) == 0 {
		t.Fatal("no derived TCGs on (X0,X3)")
	}
	for _, c := range tcgs {
		if c.Validate() != nil {
			t.Fatalf("derived TCG %v invalid", c)
		}
	}
	lo, hi, ok := r.WindowSeconds(sys, "X0", "X3")
	if !ok {
		t.Fatal("no second window for (X0,X3)")
	}
	// [1,1]b-day forces X1 at least one second after X0, and X3 is not
	// before X1, so the order group derives lo = 1.
	if lo != 1 {
		t.Fatalf("window lo = %d, want 1", lo)
	}
	// The order (second) group composes the X2 path directly:
	// [0,5]b-day gives at most maxsize(b-day,6)-1 = 691199 seconds and
	// [0,8]hour at most 32399 more.
	if hi != 691199+32399 {
		t.Fatalf("window hi = %d, want %d", hi, 691199+32399)
	}
	// Sibling pair (X1,X2): path consistency in the b-day group bounds
	// X2−X1 within [-1,4] b-days, so a finite window exists with
	// hi = maxsize(b-day,5)-1 = 7 days - 1.
	lo2, hi2, ok := r.WindowSeconds(sys, "X1", "X2")
	if !ok {
		t.Fatal("sibling pair should get a finite window via the b-day group")
	}
	if lo2 != 0 || hi2 != 7*86400-1 {
		t.Fatalf("sibling window = [%d,%d], want [0,%d]", lo2, hi2, 7*86400-1)
	}
}

func TestInducedSubStructure(t *testing.T) {
	s := core.Fig1a()
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := InducedSubStructure(r, s, []core.Variable{"X0", "X3"})
	if sub.NumVariables() != 2 {
		t.Fatalf("induced vars = %d", sub.NumVariables())
	}
	cs := sub.Constraints("X0", "X3")
	if len(cs) < 2 {
		t.Fatalf("induced arc should carry week and hour TCGs, got %v", cs)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("induced sub-structure invalid: %v", err)
	}
	// No arc in the reverse direction.
	if sub.Constraints("X3", "X0") != nil {
		t.Fatal("reverse arc should not exist")
	}
	// Siblings without a path induce no arc.
	sub2 := InducedSubStructure(r, s, []core.Variable{"X1", "X2"})
	if sub2.NumEdges() != 0 {
		t.Fatalf("X1,X2 have no path; got %d edges", sub2.NumEdges())
	}
}

func TestRunTerminatesQuicklyOnFig1a(t *testing.T) {
	r, err := Run(sys, core.Fig1a(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations > 20 {
		t.Fatalf("fixpoint took %d iterations; expected a handful", r.Iterations)
	}
}

func TestAugmentedStructure(t *testing.T) {
	s := core.Fig1a()
	r, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aug := AugmentedStructure(r, s)
	if aug.NumVariables() != s.NumVariables() {
		t.Fatal("variables lost")
	}
	if err := aug.Validate(); err != nil {
		t.Fatalf("augmented structure invalid: %v", err)
	}
	// The derived (X0,X3) arc exists with week and hour TCGs.
	cs := aug.Constraints("X0", "X3")
	if len(cs) < 2 {
		t.Fatalf("augmented (X0,X3) = %v", cs)
	}
	// Every binding matching the original matches the augmented structure
	// (soundness of derivation, structural form).
	b := core.Binding{
		"X0": {Type: "a", Time: event.At(1996, 6, 3, 10, 0, 0)},
		"X1": {Type: "b", Time: event.At(1996, 6, 4, 17, 0, 0)},
		"X2": {Type: "c", Time: event.At(1996, 6, 5, 9, 0, 0)},
		"X3": {Type: "d", Time: event.At(1996, 6, 5, 11, 0, 0)},
	}
	if !core.Matches(sys, s, b) {
		t.Fatal("scenario should match the original")
	}
	if !core.Matches(sys, aug, b) {
		t.Fatal("scenario must match the augmented structure too")
	}
}

func TestOrderGroupAblation(t *testing.T) {
	s := core.Fig1a()
	with, err := Run(sys, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(sys, s, Options{DisableOrderGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	if !with.Consistent || !without.Consistent {
		t.Fatal("Fig1a refuted")
	}
	// Both derive finite hour bounds on (X0,X3); the order group can only
	// tighten, never loosen.
	hw, _ := with.Bounds("hour", "X0", "X3")
	ho, _ := without.Bounds("hour", "X0", "X3")
	if hw.HiOpen || ho.HiOpen {
		t.Fatal("hour bound missing")
	}
	if hw.Hi > ho.Hi || hw.Lo < ho.Lo {
		t.Fatalf("order group loosened bounds: with=%s without=%s", hw, ho)
	}
	// The seconds window benefits concretely: with order facts the window
	// is tighter or equal.
	_, hiWith, okW := with.WindowSeconds(sys, "X0", "X3")
	_, hiWithout, okO := without.WindowSeconds(sys, "X0", "X3")
	if !okW || !okO {
		t.Fatal("windows missing")
	}
	if hiWith > hiWithout {
		t.Fatalf("order group widened the window: %d > %d", hiWith, hiWithout)
	}
	// The order group is what detects some cross-granularity conflicts
	// earlier; soundness must hold in both modes on a scenario.
	b := core.Binding{
		"X0": {Type: "a", Time: event.At(1996, 6, 3, 10, 0, 0)},
		"X1": {Type: "b", Time: event.At(1996, 6, 4, 17, 0, 0)},
		"X2": {Type: "c", Time: event.At(1996, 6, 5, 9, 0, 0)},
		"X3": {Type: "d", Time: event.At(1996, 6, 5, 11, 0, 0)},
	}
	if !core.Matches(sys, s, b) {
		t.Fatal("scenario must match")
	}
	for _, r := range []*Result{with, without} {
		for _, x := range s.Variables() {
			for _, y := range s.Variables() {
				if x == y {
					continue
				}
				for _, db := range r.DerivedBounds(x, y) {
					g := sys.MustGet(db.Gran)
					z1, ok1 := g.TickOf(b[x].Time)
					z2, ok2 := g.TickOf(b[y].Time)
					if !ok1 || !ok2 {
						continue
					}
					d := z2 - z1
					if (!db.LoOpen && d < db.Lo) || (!db.HiOpen && d > db.Hi) {
						t.Fatalf("derived %s violated on (%s,%s)", db, x, y)
					}
				}
			}
		}
	}
}
