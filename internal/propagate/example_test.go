package propagate_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/granularity"
	"repro/internal/propagate"
)

// Example reproduces the paper's Section-5.1 derivation: propagation over
// Figure 1(a) yields the Γ′(X0,X3) constraints.
func Example() {
	sys := granularity.Default()
	r, err := propagate.Run(sys, core.Fig1a(), propagate.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("consistent:", r.Consistent)
	for _, b := range r.DerivedBounds("X0", "X3") {
		if b.Gran != "second" {
			fmt.Println(b)
		}
	}
	// Output:
	// consistent: true
	// [0,200]hour
	// [0,2]week
}

// ExampleConverter applies the Figure-3 conversion to the paper's worked
// case: one business day apart is zero or one calendar week apart.
func ExampleConverter() {
	sys := granularity.Default()
	conv := propagate.NewConverter(sys, "b-day", "week")
	lo, hi := conv.Interval(1, 1)
	fmt.Printf("[1,1]b-day -> [%d,%d]week\n", lo, hi)
	// Output:
	// [1,1]b-day -> [0,1]week
}

// ExampleRun_inconsistent shows propagation refuting a structure whose
// granularities contradict each other: same calendar day but at least 30
// hours apart.
func ExampleRun_inconsistent() {
	sys := granularity.Default()
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "day"), core.MustTCG(30, 40, "hour"))
	r, _ := propagate.Run(sys, s, propagate.Options{})
	fmt.Println("refuted:", !r.Consistent)
	// Output:
	// refuted: true
}
