package propagate

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/granularity"
	"repro/internal/stp"
)

// Options tunes Run.
type Options struct {
	// MaxIterations bounds the fixpoint loop as a safety net; Theorem 2
	// guarantees termination, the bound only guards against bugs. 0 means
	// a generous default.
	MaxIterations int
	// DisableOrderGroup drops the implicit "second" group that carries the
	// TCGs' timestamp-order facts between granularity groups. Only the
	// experiments use it, to measure how much precision the order group
	// buys; disabling it keeps the algorithm sound but looser.
	DisableOrderGroup bool
	// Engine carries cancellation, the work budget (one unit per examined
	// pair cell plus the STP relaxation rows beneath) and the observer
	// ("propagate.rounds", "propagate.conversions", "propagate.tightened",
	// "stp.relaxations"). The zero value is unbounded and silent.
	Engine engine.Config
}

// DefaultMaxIterations is the fixpoint safety bound.
const DefaultMaxIterations = 4096

// Result is the outcome of constraint propagation: one minimized STP per
// granularity group, or a proof of inconsistency.
type Result struct {
	// Consistent is false when propagation derived an empty constraint:
	// the structure has no matching complex event (definitive). True means
	// "not refuted" only.
	Consistent bool
	// Iterations is the number of fixpoint rounds executed.
	Iterations int

	vars   []core.Variable
	index  map[core.Variable]int
	groups map[string]*stp.Network // per granularity name
	grans  []string
}

// Bound is a derived granule-difference constraint between two variables in
// one granularity. Lo may be negative; either side may be infinite
// (LoOpen/HiOpen).
type Bound struct {
	Gran   string
	Lo, Hi int64
	LoOpen bool
	HiOpen bool
}

// String renders the bound like the paper's TCGs, with "-inf"/"inf" for
// open ends.
func (b Bound) String() string {
	lo, hi := fmt.Sprint(b.Lo), fmt.Sprint(b.Hi)
	if b.LoOpen {
		lo = "-inf"
	}
	if b.HiOpen {
		hi = "inf"
	}
	return fmt.Sprintf("[%s,%s]%s", lo, hi, b.Gran)
}

// Run executes the approximate propagation algorithm on s under sys.
// It errors on structurally invalid input (unknown granularity, cyclic
// graph); inconsistency of a valid structure is reported via
// Result.Consistent, not an error. Rootedness is not required here — it is
// a requirement of the mining setting, not of consistency checking (the
// Theorem-1 reduction gadgets have several source variables).
func Run(sys *granularity.System, s *core.EventStructure, opt Options) (*Result, error) {
	ex := opt.Engine.Start()
	r, err := RunExec(ex, sys, s, opt)
	return r, ex.Seal(err)
}

// RunExec is Run threaded through an already-started execution carrier, for
// layers (exact, mining) that share one budget and observer across several
// solver calls. opt.Engine is ignored here — ex governs. On interruption
// the typed engine error is returned with a nil Result; the observer's
// counters hold the partial stats.
func RunExec(ex *engine.Exec, sys *granularity.System, s *core.EventStructure, opt Options) (*Result, error) {
	defer ex.Stage("propagate")()
	if !s.IsAcyclic() {
		return nil, fmt.Errorf("propagate: event structure must be acyclic")
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	vars := s.Variables()
	index := make(map[core.Variable]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	grans := s.Granularities()
	for _, g := range grans {
		if _, ok := sys.Get(g); !ok {
			return nil, fmt.Errorf("propagate: granularity %q not in system", g)
		}
	}
	// A TCG [m,n]g on an arc also asserts timestamp order (its condition
	// t1 <= t2). The STP groups hold granule differences only, so the order
	// facts are kept in a "second" group seeded with [0, +inf) per arc;
	// conversions carry them into the other groups. Without this, Figure-3
	// conversions between unaligned granularities would have to assume both
	// timestamp orders for every pair and lose most of their power.
	orderGran := "second"
	if _, ok := sys.Get(orderGran); !ok || opt.DisableOrderGroup {
		orderGran = ""
	}
	if orderGran != "" && !contains(grans, orderGran) {
		grans = append([]string{orderGran}, grans...)
	}

	r := &Result{
		Consistent: true,
		vars:       vars,
		index:      index,
		groups:     make(map[string]*stp.Network, len(grans)),
		grans:      grans,
	}
	for _, g := range grans {
		r.groups[g] = stp.New(len(vars))
	}
	// Seed the groups with the explicit TCGs and the order facts.
	for _, e := range s.Edges() {
		for _, c := range e.TCGs {
			r.groups[c.Gran].Constrain(index[e.From], index[e.To], c.Min, c.Max)
		}
		if orderGran != "" {
			r.groups[orderGran].Constrain(index[e.From], index[e.To], 0, stp.Inf)
		}
	}

	pairs := feasiblePairs(sys, grans)
	converters := make(map[[2]string]*Converter, len(pairs))
	for _, p := range pairs {
		converters[p] = NewConverter(sys, p[0], p[1])
	}
	n := len(vars)
	// Step 1, once: path consistency within each group. Afterwards every
	// group is kept minimal incrementally (ConstrainRepair), so the
	// per-iteration Floyd–Warshall of the paper's description is not
	// needed — an O(n²)-per-derived-constraint improvement with identical
	// results (the repair is property-tested equal to re-minimization).
	for _, g := range grans {
		ok, err := r.groups[g].MinimizeExec(ex)
		if err != nil {
			return nil, err
		}
		if !ok {
			r.Consistent = false
			return r, nil
		}
	}
	conversions, tightened := int64(0), int64(0)
	flush := func() {
		ex.Count("propagate.conversions", conversions)
		ex.Count("propagate.tightened", tightened)
		conversions, tightened = 0, 0
	}
	for iter := 1; iter <= maxIter; iter++ {
		r.Iterations = iter
		ex.Count("propagate.rounds", 1)
		// Step 2: translate each group's constraints into every feasible
		// target group, repairing minimality as we go.
		changed := false
		for _, p := range pairs {
			src, dst := r.groups[p[0]], r.groups[p[1]]
			conv := converters[p]
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if err := ex.Step(1); err != nil {
						flush()
						return nil, err
					}
					lo, hi := src.Bounds(i, j)
					if lo <= -stp.Inf && hi >= stp.Inf {
						continue
					}
					nlo, nhi := conv.Interval(lo, hi)
					conversions++
					plo, phi := dst.Bounds(i, j)
					if nlo > plo || nhi < phi {
						ok, err := dst.ConstrainRepairExec(ex, i, j, nlo, nhi)
						if err != nil {
							flush()
							return nil, err
						}
						tightened++
						if !ok {
							flush()
							r.Consistent = false
							return r, nil
						}
						changed = true
					}
				}
			}
		}
		if !changed {
			flush()
			return r, nil
		}
	}
	flush()
	return nil, fmt.Errorf("propagate: no fixpoint after %d iterations", maxIter)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Granularities returns the granularity names of the groups, sorted.
func (r *Result) Granularities() []string {
	return append([]string(nil), r.grans...)
}

// Variables returns the structure's variables in index order.
func (r *Result) Variables() []core.Variable {
	return append([]core.Variable(nil), r.vars...)
}

// Bounds returns the derived granule-difference bounds of (to − from) in
// the given granularity group; ok is false when the granularity is not a
// group or a variable is unknown.
func (r *Result) Bounds(gran string, from, to core.Variable) (Bound, bool) {
	nw, ok := r.groups[gran]
	if !ok {
		return Bound{}, false
	}
	i, iok := r.index[from]
	j, jok := r.index[to]
	if !iok || !jok {
		return Bound{}, false
	}
	lo, hi := nw.Bounds(i, j)
	return Bound{
		Gran:   gran,
		Lo:     lo,
		Hi:     hi,
		LoOpen: lo <= -stp.Inf,
		HiOpen: hi >= stp.Inf,
	}, true
}

// DerivedBounds returns, for the ordered pair (from, to), every group's
// bound that constrains the pair at all (at least one finite side), sorted
// by granularity name.
func (r *Result) DerivedBounds(from, to core.Variable) []Bound {
	var out []Bound
	for _, g := range r.grans {
		b, ok := r.Bounds(g, from, to)
		if !ok {
			continue
		}
		if b.LoOpen && b.HiOpen {
			continue
		}
		out = append(out, b)
	}
	return out
}

// DerivedTCGs renders the derived constraints on (from, to) as TCGs, for
// groups whose derived bounds fit the TCG form (finite upper bound).
// A negative derived lower bound is clamped to zero: a TCG already requires
// t_from <= t_to, under which the clamped constraint is equivalent.
func (r *Result) DerivedTCGs(from, to core.Variable) []core.TCG {
	var out []core.TCG
	for _, b := range r.DerivedBounds(from, to) {
		if b.HiOpen || b.Hi < 0 {
			continue
		}
		lo := b.Lo
		if b.LoOpen || lo < 0 {
			lo = 0
		}
		if lo > b.Hi {
			continue
		}
		out = append(out, core.TCG{Min: lo, Max: b.Hi, Gran: b.Gran})
	}
	return out
}

// SecondBounds returns sound bounds on the second distance t_to − t_from
// implied by all derived granule bounds on the pair. Either side may be
// infinite (±stp.Inf). Unlike WindowSeconds, the lower bound may be
// negative (sibling variables are not ordered).
func (r *Result) SecondBounds(sys *granularity.System, from, to core.Variable) (lo, hi int64) {
	lo, hi = -stp.Inf, stp.Inf
	for _, b := range r.DerivedBounds(from, to) {
		m := sys.Metrics(b.Gran)
		if !b.HiOpen {
			var h int64
			if b.Hi >= 0 {
				// Granule diff <= Hi: distance <= maxsize(Hi+1) - 1.
				h = m.MaxSize(b.Hi+1) - 1
			} else {
				// Granule diff <= Hi < 0: reversed distance >= mingap(-Hi).
				h = -m.MinGap(-b.Hi)
			}
			if h < hi {
				hi = h
			}
		}
		if !b.LoOpen {
			var l int64
			if b.Lo > 0 {
				// Granule diff >= Lo: distance >= mingap(Lo).
				l = m.MinGap(b.Lo)
			} else {
				// Granule diff >= Lo (<= 0): reversed diff <= -Lo, so the
				// reversed distance <= maxsize(-Lo+1) - 1.
				l = -(m.MaxSize(-b.Lo+1) - 1)
			}
			if l > lo {
				lo = l
			}
		}
	}
	return lo, hi
}

// WindowSeconds returns a sound second-distance window [lo, hi] for
// (t_to − t_from) implied by all derived bounds on the pair, clamped to
// lo >= 0 — appropriate when from precedes to on every path (e.g. from is
// the root). The mining pipeline's reference pruning (Section 5, step 3)
// slides this window over each reference occurrence. ok is false when no
// group bounds the pair from above (hi would be infinite).
func (r *Result) WindowSeconds(sys *granularity.System, from, to core.Variable) (lo, hi int64, ok bool) {
	lo, hi = r.SecondBounds(sys, from, to)
	if lo < 0 {
		lo = 0
	}
	if hi >= stp.Inf {
		return 0, 0, false
	}
	return lo, hi, true
}

// Render writes a human-readable table of every derived bound, one line
// per constrained ordered pair per granularity group (cmd/tcgcheck's
// output).
func (r *Result) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if !r.Consistent {
		fmt.Fprintln(bw, "INCONSISTENT")
		return bw.Flush()
	}
	for _, x := range r.vars {
		for _, y := range r.vars {
			if x == y {
				continue
			}
			for _, b := range r.DerivedBounds(x, y) {
				fmt.Fprintf(bw, "(%s,%s) %s\n", x, y, b)
			}
		}
	}
	return bw.Flush()
}
