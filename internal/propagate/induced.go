package propagate

import (
	"repro/internal/core"
)

// InducedSubStructure builds the paper's induced approximated sub-structure
// (Section 5.1) for a variable subset W′ of the propagated structure s:
// arcs are the pairs (X, Y) ⊆ W′×W′ with a path from X to Y in s and at
// least one derived constraint; each arc carries the derived TCGs of every
// granularity group.
//
// The paper's running example: in Figure 1(a) the induced sub-structure on
// {X0, X3} has the single arc (X0, X3) carrying the week- and hour-group
// constraints propagation derived.
func InducedSubStructure(r *Result, s *core.EventStructure, keep []core.Variable) *core.EventStructure {
	out := core.NewStructure()
	for _, v := range keep {
		if s.HasVariable(v) {
			out.AddVariable(v)
		}
	}
	for _, x := range keep {
		for _, y := range keep {
			if x == y || !s.HasPath(x, y) {
				continue
			}
			for _, tcg := range r.DerivedTCGs(x, y) {
				// Derived TCGs are well-formed by construction.
				_ = out.AddConstraint(x, y, tcg)
			}
		}
	}
	return out
}

// AugmentedStructure returns a copy of s carrying, on every path-connected
// ordered pair, all the TCGs propagation derived (the original constraints
// are subsumed by the derived ones, which are at least as tight). It is
// the full-variable-set generalization of InducedSubStructure: a
// "compiled" structure whose explicit arcs already contain the implied
// windows, useful for display (cmd/tcgcheck), serialization, and as a
// tighter input to downstream matching.
func AugmentedStructure(r *Result, s *core.EventStructure) *core.EventStructure {
	return InducedSubStructure(r, s, s.Variables())
}
