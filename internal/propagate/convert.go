// Package propagate implements the paper's approximate constraint
// propagation for event structures with multiple granularities (Section 3.2
// and Appendix A.1): constraints are partitioned into per-granularity
// groups, each group is closed under path consistency (an STP), and
// constraints are translated between groups with the Figure-3 conversion
// algorithm until a fixpoint. The algorithm is sound (Theorem 2): every
// complex event matching the input structure also satisfies every derived
// constraint; reported inconsistency is definitive, reported consistency is
// not (consistency checking is NP-hard, Theorem 1).
package propagate

import (
	"sort"

	"repro/internal/granularity"
	"repro/internal/stp"
)

// ConvertUpper implements step 1 of the paper's Figure-3 algorithm: given
// that the granule difference of two timestamps in the source granularity
// is at most n (n >= 0), it returns the implied upper bound on their
// granule difference in the target granularity:
//
//	nbar = min{ s : minsize(target, s) >= maxsize(source, n+1) - 1 }
func ConvertUpper(src, dst *granularity.Metrics, n int64) int64 {
	return granuleUpper(dst, src.MaxSize(n+1)-1)
}

// ConvertLower implements step 2 of Figure 3: given that the source granule
// difference is at least m (m >= 0), it returns the implied lower bound in
// the target granularity:
//
//	mbar = min{ r : maxsize(target, r) > mingap(source, m) } - 1
func ConvertLower(src, dst *granularity.Metrics, m int64) int64 {
	if m <= 0 {
		return 0
	}
	return granuleLower(dst, src.MinGap(m))
}

// granuleUpper converts a seconds upper bound d on t2−t1 (d >= 0) into a
// granule-difference upper bound: the smallest s whose s-granule minimum
// span reaches d. A difference of s+1 granules forces a distance exceeding
// minsize(s), so distance <= d caps the difference at s.
func granuleUpper(dst *granularity.Metrics, d int64) int64 {
	if d <= 0 {
		return 0
	}
	// minsize is nondecreasing and minsize(s) >= s, so the answer is in
	// [1, d]; binary search it.
	return 1 + int64(sort.Search(int(d-1), func(i int) bool {
		return dst.MinSize(int64(i)+1) >= d
	}))
}

// granuleLower converts a seconds lower bound d on t2−t1 (d >= 1) into a
// granule-difference lower bound: a difference of r granules allows a
// distance of at most maxsize(r+1)−1, so distance >= d forces the
// difference past every r with maxsize(r+1) <= d.
func granuleLower(dst *granularity.Metrics, d int64) int64 {
	if d <= 0 {
		return 0
	}
	// maxsize is nondecreasing and maxsize(r) >= r; smallest r with
	// maxsize(r) > d is in [1, d+1].
	r := 1 + int64(sort.Search(int(d), func(i int) bool {
		return dst.MaxSize(int64(i)+1) > d
	}))
	return r - 1
}

// Converter translates granule-difference intervals between two
// granularities of a system. Unlike the raw Figure-3 steps, Converter is
// sound for *unordered* pairs: a TCG guarantees t1 <= t2, but bounds
// derived by path consistency between arbitrary variables do not, and a
// source difference of 0 leaves the timestamp order open (the target
// difference can then be negative). Converter routes every bound through
// an explicit seconds-distance interval with correct sign handling.
type Converter struct {
	src, dst *granularity.Metrics
	// coverAlways: every src granule sits inside one dst granule, so a
	// source difference of exactly 0 forces a target difference of 0.
	coverAlways bool
}

// NewConverter builds a Converter between two granularity names registered
// in sys.
func NewConverter(sys *granularity.System, src, dst string) *Converter {
	return &Converter{
		src:         sys.Metrics(src),
		dst:         sys.Metrics(dst),
		coverAlways: sys.CoverAlways(src, dst),
	}
}

// secondsUpper returns the largest possible t2−t1 given a source granule
// difference of at most hi.
func (c *Converter) secondsUpper(hi int64) int64 {
	if hi >= 0 {
		return c.src.MaxSize(hi+1) - 1
	}
	return -c.src.MinGap(-hi)
}

// secondsLower returns the smallest possible t2−t1 given a source granule
// difference of at least lo.
func (c *Converter) secondsLower(lo int64) int64 {
	if lo >= 1 {
		return c.src.MinGap(lo)
	}
	return -(c.src.MaxSize(-lo+1) - 1)
}

// Interval converts the source granule-difference interval [lo, hi] into an
// implied target interval. Either side may be open (±stp.Inf).
func (c *Converter) Interval(lo, hi int64) (nlo, nhi int64) {
	switch {
	case hi >= stp.Inf:
		nhi = stp.Inf
	case hi == 0 && c.coverAlways:
		// Same-or-earlier src granule; same granule ⇒ same dst granule,
		// earlier granule ⇒ earlier timestamps ⇒ dst diff <= 0.
		nhi = 0
	default:
		s := c.secondsUpper(hi)
		if s >= 0 {
			nhi = granuleUpper(c.dst, s)
		} else {
			// t1−t2 >= −s > 0: the reversed pair is at least −s apart.
			nhi = -granuleLower(c.dst, -s)
		}
	}
	switch {
	case lo <= -stp.Inf:
		nlo = -stp.Inf
	case lo == 0 && c.coverAlways:
		nlo = 0
	default:
		s := c.secondsLower(lo)
		if s > 0 {
			nlo = granuleLower(c.dst, s)
		} else {
			// t1−t2 <= −s: the reversed pair is at most −s apart.
			nlo = -granuleUpper(c.dst, -s)
		}
	}
	return nlo, nhi
}

// feasiblePairs returns the ordered granularity pairs (src, dst) between
// which conversion is admissible under sys, for the granularity names in M.
func feasiblePairs(sys *granularity.System, m []string) [][2]string {
	sorted := append([]string(nil), m...)
	sort.Strings(sorted)
	var out [][2]string
	for _, src := range sorted {
		for _, dst := range sorted {
			if src == dst {
				continue
			}
			if sys.ConversionFeasible(src, dst) {
				out = append(out, [2]string{src, dst})
			}
		}
	}
	return out
}
