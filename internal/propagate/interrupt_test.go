package propagate

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/granularity"
)

// TestRunInterrupted drives propagation into each interruption mode and
// checks the typed error and its partial stats.
func TestRunInterrupted(t *testing.T) {
	sys := granularity.Default()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name   string
		eng    func() engine.Config
		reason string
	}{
		{"budget mid-round", func() engine.Config {
			return engine.Config{Budget: 3, Observer: engine.NewCounters()}
		}, "budget"},
		{"cancelled context", func() engine.Config {
			return engine.Config{Ctx: cancelled, CheckEvery: 1, Observer: engine.NewCounters()}
		}, "context"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(sys, core.Fig1a(), Options{Engine: tc.eng()})
			if !errors.Is(err, engine.ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			var ip *engine.Interrupted
			if !errors.As(err, &ip) {
				t.Fatalf("err %T, want *engine.Interrupted", err)
			}
			if ip.Reason != tc.reason {
				t.Fatalf("reason %q, want %q", ip.Reason, tc.reason)
			}
			if ip.Steps <= 0 {
				t.Fatalf("steps %d, want > 0", ip.Steps)
			}
			if ip.Stats == nil {
				t.Fatal("partial stats missing")
			}
		})
	}
}

// TestRunEngineCounters checks the unbounded instrumented run: same result
// as the silent run, with rounds and relaxations recorded.
func TestRunEngineCounters(t *testing.T) {
	sys := granularity.Default()
	c := engine.NewCounters()
	r, err := Run(sys, core.Fig1a(), Options{Engine: engine.Config{Observer: c}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Consistent {
		t.Fatal("Fig1a must be consistent")
	}
	if c.Get("propagate.rounds") != int64(r.Iterations) {
		t.Fatalf("propagate.rounds = %d, want %d", c.Get("propagate.rounds"), r.Iterations)
	}
	if c.Get("stp.relaxations") <= 0 {
		t.Fatal("stp.relaxations not recorded")
	}
	silent, err := Run(sys, core.Fig1a(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if silent.Iterations != r.Iterations {
		t.Fatalf("instrumented run diverged: %d vs %d iterations", r.Iterations, silent.Iterations)
	}
}
