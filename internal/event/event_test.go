package event

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/calendar"
)

func TestSortAndValidate(t *testing.T) {
	s := Sequence{{"b", 30}, {"a", 10}, {"c", 20}}
	s.Sort()
	if s[0].Time != 10 || s[1].Time != 20 || s[2].Time != 30 {
		t.Fatalf("sort failed: %v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	bad := Sequence{{"a", 5}, {"b", 3}}
	if bad.Validate() == nil {
		t.Fatal("unsorted sequence accepted")
	}
	if (Sequence{{"a", 0}}).Validate() == nil {
		t.Fatal("timestamp 0 accepted")
	}
	if (Sequence{{"", 5}}).Validate() == nil {
		t.Fatal("empty type accepted")
	}
}

func TestSortStable(t *testing.T) {
	s := Sequence{{"first", 10}, {"second", 10}, {"third", 10}}
	s.Sort()
	if s[0].Type != "first" || s[1].Type != "second" || s[2].Type != "third" {
		t.Fatalf("sort not stable: %v", s)
	}
}

func TestTypesAndOccurrences(t *testing.T) {
	s := Sequence{{"a", 1}, {"b", 2}, {"a", 3}, {"c", 4}}
	types := s.Types()
	if len(types) != 3 || types[0] != "a" || types[1] != "b" || types[2] != "c" {
		t.Fatalf("Types = %v", types)
	}
	occ := s.Occurrences("a")
	if len(occ) != 2 || occ[0] != 1 || occ[1] != 3 {
		t.Fatalf("Occurrences(a) = %v", occ)
	}
	if s.CountType("a") != 2 || s.CountType("zz") != 0 {
		t.Fatal("CountType wrong")
	}
}

func TestBetweenAndFrom(t *testing.T) {
	s := Sequence{{"a", 10}, {"b", 20}, {"c", 30}, {"d", 40}}
	got := s.Between(15, 35)
	if len(got) != 2 || got[0].Type != "b" || got[1].Type != "c" {
		t.Fatalf("Between(15,35) = %v", got)
	}
	if len(s.Between(100, 200)) != 0 {
		t.Fatal("empty window should be empty")
	}
	if len(s.Between(20, 20)) != 1 {
		t.Fatal("point window should contain the event at that time")
	}
	if got := s.From(30); len(got) != 2 || got[0].Type != "c" {
		t.Fatalf("From(30) = %v", got)
	}
}

func TestSpanFilterMerge(t *testing.T) {
	s := Sequence{{"a", 5}, {"b", 9}}
	f, l := s.Span()
	if f != 5 || l != 9 {
		t.Fatalf("Span = %d,%d", f, l)
	}
	if f, l = (Sequence{}).Span(); f != 0 || l != 0 {
		t.Fatal("empty span should be 0,0")
	}
	odd := s.Filter(func(e Event) bool { return e.Time%2 == 1 })
	if len(odd) != 2 {
		t.Fatalf("Filter = %v", odd)
	}
	m := Merge(Sequence{{"a", 1}, {"c", 5}}, Sequence{{"b", 3}})
	if len(m) != 3 || m[1].Type != "b" {
		t.Fatalf("Merge = %v", m)
	}
	if m.Validate() != nil {
		t.Fatal("merged sequence invalid")
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b Sequence
		for _, x := range xs {
			a = append(a, Event{"a", int64(x) + 1})
		}
		for _, y := range ys {
			b = append(b, Event{"b", int64(y) + 1})
		}
		a.Sort()
		b.Sort()
		m := Merge(a, b)
		return len(m) == len(a)+len(b) && m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtAndCivil(t *testing.T) {
	tt := At(1800, 1, 1, 0, 0, 0)
	if tt != 1 {
		t.Fatalf("At(anchor) = %d, want 1", tt)
	}
	if got := Civil(1); got != "1800-01-01 00:00:00" {
		t.Fatalf("Civil(1) = %q", got)
	}
	tt = At(1996, 6, 3, 9, 30, 15)
	if got := Civil(tt); got != "1996-06-03 09:30:15" {
		t.Fatalf("Civil round trip = %q", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := Sequence{{"IBM-rise", 100}, {"IBM-fall", 200}, {"HP-rise", 200}}
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d != %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("event %d: %v != %v", i, got[i], s[i])
		}
	}
}

func TestDecodeComments(t *testing.T) {
	in := "# header\n\n10 a\n5 b\n"
	s, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[0].Type != "b" {
		t.Fatalf("decode = %v", s)
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, in := range []string{"abc", "x y z", "notanumber a", "0 a"} {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("Decode(%q) should fail", in)
		}
	}
}

func TestEncodeRejectsWhitespaceTypes(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Sequence{{"bad type", 1}}); err == nil {
		t.Fatal("type with space should be rejected")
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := Poisson([]Type{"x", "y"}, 2, 1, 86400*30, 42)
	b := Poisson([]Type{"x", "y"}, 2, 1, 86400*30, 42)
	if len(a) != len(b) {
		t.Fatal("same seed should give same sequence")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same events")
		}
	}
	c := Poisson([]Type{"x", "y"}, 2, 1, 86400*30, 43)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected count: 2 types * 2/day * 30 days = 120; allow wide slack.
	if len(a) < 60 || len(a) > 200 {
		t.Fatalf("poisson count %d implausible for mean 120", len(a))
	}
}

func TestPlant(t *testing.T) {
	base := Sequence{{"noise", 50}}
	p := Pattern{{"A", 0}, {"B", 10}}
	got := Plant(base, p, []int64{100, 200})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.CountType("A") != 2 || got.CountType("B") != 2 || got.CountType("noise") != 1 {
		t.Fatalf("plant result wrong: %v", got)
	}
	if occ := got.Occurrences("B"); occ[0] != 110 || occ[1] != 210 {
		t.Fatalf("planted offsets wrong: %v", occ)
	}
}

func TestGenerateStock(t *testing.T) {
	s := GenerateStock(StockConfig{
		Symbols: []string{"IBM", "HP"}, StartYear: 1996, Days: 30, Seed: 7,
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CountType("IBM-rise")+s.CountType("IBM-fall") == 0 {
		t.Fatal("no IBM price events generated")
	}
	if s.CountType("IBM-earnings-report") == 0 {
		t.Fatal("no earnings events in a quarter start window")
	}
	// All events on business days.
	for _, e := range s {
		rata := (e.Time-1)/calendar.SecondsPerDay + 1
		if !calendar.IsBusinessDay(rata, nil) {
			t.Fatalf("stock event %v on non-business day", e)
		}
	}
}

func TestGenerateATM(t *testing.T) {
	s := GenerateATM(ATMConfig{Accounts: 3, StartYear: 1995, Days: 20, Seed: 5})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Fatal("no ATM events generated")
	}
	for _, e := range s {
		name := string(e.Type)
		if !strings.HasPrefix(name, "deposit-") && !strings.HasPrefix(name, "withdrawal-") && !strings.HasPrefix(name, "balance-") {
			t.Fatalf("unexpected type %q", name)
		}
	}
}

func TestGeneratePlant(t *testing.T) {
	s := GeneratePlant(PlantFaultConfig{Machines: 4, StartYear: 1996, Days: 120, Seed: 11, CascadeProb: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// With cascade probability 1, every overheat has a same-count
	// malfunction and shutdown.
	for m := 0; m < 4; m++ {
		id := string(rune('0' + m))
		over := s.CountType(Type("overheat-m" + id))
		mal := s.CountType(Type("malfunction-m" + id))
		shut := s.CountType(Type("shutdown-m" + id))
		if over == 0 {
			t.Fatalf("machine %d: no overheats in 120 days", m)
		}
		if mal != over || shut != over {
			t.Fatalf("machine %d: cascade counts %d/%d/%d should match", m, over, mal, shut)
		}
	}
}

func TestGenerateAccess(t *testing.T) {
	s := GenerateAccess(AccessConfig{Hosts: 2, StartYear: 1996, Days: 56, Seed: 3, IntrusionProb: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CountType("access-h0") == 0 {
		t.Fatal("no benign accesses generated")
	}
	scans := s.Occurrences("scan-h0")
	if len(scans) == 0 {
		t.Fatal("no intrusions planted over 8 Mondays at prob 1")
	}
	// Every scan has failed logins in the same hour and a breach the same
	// day.
	for _, ts := range scans {
		hour := (ts - 1) / 3600
		day := (ts - 1) / 86400
		foundLogin, foundBreach := false, false
		for _, e := range s {
			if e.Type == "failed-login-h0" && (e.Time-1)/3600 == hour {
				foundLogin = true
			}
			if e.Type == "breach-h0" && (e.Time-1)/86400 == day && e.Time > ts {
				foundBreach = true
			}
		}
		if !foundLogin {
			t.Fatalf("scan at %d has no same-hour failed login", ts)
		}
		if !foundBreach {
			t.Fatalf("scan at %d has no same-day breach", ts)
		}
	}
}

func TestIndex(t *testing.T) {
	s := Sequence{{"a", 10}, {"b", 20}, {"a", 30}, {"c", 40}, {"a", 50}}
	ix := NewIndex(s)
	if ix.Types() != 3 {
		t.Fatalf("Types = %d", ix.Types())
	}
	if ix.Count("a") != 3 || ix.Count("zz") != 0 {
		t.Fatal("Count wrong")
	}
	if !ix.AnyIn("a", 25, 35) || ix.AnyIn("a", 31, 49) || ix.AnyIn("zz", 0, 100) {
		t.Fatal("AnyIn wrong")
	}
	got := ix.In("a", 10, 30)
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("In = %v", got)
	}
	if len(ix.In("a", 60, 70)) != 0 {
		t.Fatal("empty window should be empty")
	}
}

func TestIndexMatchesScan(t *testing.T) {
	s := GenerateATM(ATMConfig{Accounts: 2, StartYear: 1996, Days: 20, Seed: 2})
	ix := NewIndex(s)
	for _, typ := range s.Types() {
		for _, win := range [][2]int64{{1, 1 << 40}, {s[0].Time, s[len(s)-1].Time}, {s[2].Time, s[2].Time}} {
			want := 0
			for _, e := range s.Between(win[0], win[1]) {
				if e.Type == typ {
					want++
				}
			}
			if got := len(ix.In(typ, win[0], win[1])); got != want {
				t.Fatalf("In(%s, %v) = %d, want %d", typ, win, got, want)
			}
			if ix.AnyIn(typ, win[0], win[1]) != (want > 0) {
				t.Fatalf("AnyIn(%s, %v) inconsistent", typ, win)
			}
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := GenerateStock(StockConfig{Symbols: []string{"IBM", "HP"}, StartYear: 1996, Days: 40, Seed: 3})
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("length %d != %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("event %d: %v != %v", i, got[i], s[i])
		}
	}
	// The binary form is much smaller than the text form for dense logs.
	var text bytes.Buffer
	if err := Encode(&text, s); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= text.Len() {
		t.Fatalf("binary (%d bytes) not smaller than text (%d bytes)", buf.Len(), text.Len())
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(raw []uint16, pick []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		types := []Type{"a", "bb", "ccc"}
		var s Sequence
		for i, x := range raw {
			typ := types[0]
			if i < len(pick) {
				typ = types[pick[i]%3]
			}
			s = append(s, Event{Type: typ, Time: int64(x) + 1})
		}
		s.Sort()
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, s); err != nil {
			return false
		}
		got, err := DecodeBinary(&buf)
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("WRONG"),
		[]byte("TSEQ1"),                  // truncated after magic
		append([]byte("TSEQ1"), 0x01),    // type count 1, then EOF
		append([]byte("TSEQ1"), 0x00, 5), // 0 types but 5 events, then EOF
		append([]byte("TSEQ1"), 1, 0),    // type with empty name
		append([]byte("TSEQ1"), 1, 1, 'a', 1, 9, 0), // event references type 9
	}
	for i, in := range cases {
		if _, err := DecodeBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Invalid (zero) timestamp: first delta 0 -> time 0.
	valid := append([]byte("TSEQ1"), 1, 1, 'a', 1, 0, 0)
	if _, err := DecodeBinary(bytes.NewReader(valid)); err == nil {
		t.Error("timestamp 0 accepted")
	}
}

func TestEncodeBinaryRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, Sequence{{"a", 5}, {"b", 3}}); err == nil {
		t.Fatal("unsorted sequence accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Sequence{{Type: "a", Time: 1}, {Type: "b", Time: 86400}, {Type: "a", Time: 172800}}
	st := Summarize(s)
	if st.Events != 3 || st.TypeCounts["a"] != 2 || st.TypeCounts["b"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.First != 1 || st.Last != 172800 {
		t.Fatalf("span = %d..%d", st.First, st.Last)
	}
	if d := st.SpanDays(); d < 1.99 || d > 2.01 {
		t.Fatalf("span days = %v", d)
	}
	empty := Summarize(nil)
	if empty.Events != 0 || empty.SpanDays() != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestDedupe(t *testing.T) {
	s := Sequence{{Type: "a", Time: 1}, {Type: "a", Time: 1}, {Type: "b", Time: 1}, {Type: "a", Time: 2}, {Type: "a", Time: 2}}
	got := s.Dedupe()
	want := Sequence{{Type: "a", Time: 1}, {Type: "b", Time: 1}, {Type: "a", Time: 2}}
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v", got)
		}
	}
	if len((Sequence{}).Dedupe()) != 0 {
		t.Fatal("empty dedupe")
	}
}

func TestDedupeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var s Sequence
		for i, x := range raw {
			s = append(s, Event{Type: Type(string(rune('a' + i%3))), Time: int64(x%20) + 1})
		}
		s.Sort()
		d := s.Dedupe()
		// No duplicates remain and every event still present.
		seen := map[Event]bool{}
		for _, e := range d {
			if seen[e] {
				return false
			}
			seen[e] = true
		}
		for _, e := range s {
			if !seen[e] {
				return false
			}
		}
		return d.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
