package event

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes the sequence in the line format "<timestamp> <type>", one
// event per line. The format round-trips through Decode.
func Encode(w io.Writer, s Sequence) error {
	bw := bufio.NewWriter(w)
	for _, e := range s {
		if strings.ContainsAny(string(e.Type), " \t\n") {
			return fmt.Errorf("event: type %q contains whitespace", e.Type)
		}
		if _, err := fmt.Fprintf(bw, "%d %s\n", e.Time, e.Type); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a sequence in Encode's format. Blank lines and lines
// starting with '#' are skipped. The result is sorted and validated.
func Decode(r io.Reader) (Sequence, error) {
	var s Sequence
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("event: line %d: want \"<timestamp> <type>\", got %q", line, text)
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("event: line %d: bad timestamp: %v", line, err)
		}
		s = append(s, Event{Type: Type(fields[1]), Time: ts})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s.Sort()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
