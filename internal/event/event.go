// Package event defines event types, timestamped events and event
// sequences — the raw input of the paper's pattern-matching and mining
// machinery — together with deterministic synthetic workload generators for
// the domains the paper's introduction motivates (stock ticks, ATM
// transactions, industrial-plant malfunctions).
//
// Timestamps are 1-based second indices on the timeline of
// internal/calendar (second 1 = 1800-01-01T00:00:00).
package event

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/calendar"
)

// Type names a kind of event, e.g. "IBM-rise" or "deposit".
type Type string

// Event is an occurrence of a Type at a second timestamp.
type Event struct {
	Type Type
	Time int64
}

// String formats the event as "type@time".
func (e Event) String() string { return fmt.Sprintf("%s@%d", e.Type, e.Time) }

// Sequence is an event sequence ordered by timestamp (ties allowed, stable
// by insertion). The paper's sequences are sets; we keep duplicates out by
// construction in the generators but do not forbid them.
type Sequence []Event

// Sort orders the sequence by time, preserving the relative order of equal
// timestamps.
func (s Sequence) Sort() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Time < s[j].Time })
}

// Validate checks that timestamps are positive and non-decreasing.
func (s Sequence) Validate() error {
	prev := int64(0)
	for i, e := range s {
		if e.Time < 1 {
			return fmt.Errorf("event: event %d (%s) has non-positive timestamp", i, e.Type)
		}
		if e.Time < prev {
			return fmt.Errorf("event: sequence not sorted at index %d", i)
		}
		if e.Type == "" {
			return errors.New("event: empty event type")
		}
		prev = e.Time
	}
	return nil
}

// Types returns the distinct event types occurring in s, sorted by name.
func (s Sequence) Types() []Type {
	set := make(map[Type]bool, 16)
	for _, e := range s {
		set[e.Type] = true
	}
	out := make([]Type, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Span returns the first and last timestamps, or (0, 0) for an empty
// sequence.
func (s Sequence) Span() (first, last int64) {
	if len(s) == 0 {
		return 0, 0
	}
	return s[0].Time, s[len(s)-1].Time
}

// Between returns the subsequence with lo <= Time <= hi. The result aliases
// s's backing array.
func (s Sequence) Between(lo, hi int64) Sequence {
	i := sort.Search(len(s), func(k int) bool { return s[k].Time >= lo })
	j := sort.Search(len(s), func(k int) bool { return s[k].Time > hi })
	return s[i:j]
}

// From returns the suffix with Time >= lo. The result aliases s.
func (s Sequence) From(lo int64) Sequence {
	i := sort.Search(len(s), func(k int) bool { return s[k].Time >= lo })
	return s[i:]
}

// Occurrences returns the timestamps at which typ occurs, in order.
func (s Sequence) Occurrences(typ Type) []int64 {
	var out []int64
	for _, e := range s {
		if e.Type == typ {
			out = append(out, e.Time)
		}
	}
	return out
}

// CountType returns the number of events of typ.
func (s Sequence) CountType(typ Type) int {
	n := 0
	for _, e := range s {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// Filter returns the events satisfying keep, in order.
func (s Sequence) Filter(keep func(Event) bool) Sequence {
	var out Sequence
	for _, e := range s {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Merge merges two sorted sequences into a new sorted sequence.
func Merge(a, b Sequence) Sequence {
	out := make(Sequence, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Time <= b[j].Time {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// At builds a second timestamp from a civil instant, a convenience for
// tests and examples.
func At(year, month, day, hh, mm, ss int) int64 {
	rata := calendar.RataOf(calendar.Date{Year: year, Month: month, Day: day})
	return (rata-1)*calendar.SecondsPerDay + int64(hh)*3600 + int64(mm)*60 + int64(ss) + 1
}

// Civil renders a second timestamp as "YYYY-MM-DD hh:mm:ss".
func Civil(t int64) string {
	rata := (t - 1) / calendar.SecondsPerDay
	rem := (t - 1) % calendar.SecondsPerDay
	d := calendar.DateOf(rata + 1)
	return fmt.Sprintf("%s %02d:%02d:%02d", d, rem/3600, (rem%3600)/60, rem%60)
}

// Stats summarizes a sequence: its span, event count and per-type counts.
type Stats struct {
	Events     int
	TypeCounts map[Type]int
	First      int64
	Last       int64
}

// Summarize computes a sequence's Stats.
func Summarize(s Sequence) Stats {
	st := Stats{Events: len(s), TypeCounts: make(map[Type]int, 16)}
	if len(s) == 0 {
		return st
	}
	st.First, st.Last = s.Span()
	for _, e := range s {
		st.TypeCounts[e.Type]++
	}
	return st
}

// SpanDays returns the sequence's span in fractional days.
func (st Stats) SpanDays() float64 {
	if st.Events == 0 {
		return 0
	}
	return float64(st.Last-st.First+1) / float64(calendar.SecondsPerDay)
}

// Dedupe returns the sequence without exact duplicate events (same type
// and timestamp); the input must be sorted. Order is preserved.
func (s Sequence) Dedupe() Sequence {
	if len(s) < 2 {
		return s
	}
	out := make(Sequence, 0, len(s))
	seenAt := map[Type]bool{}
	var cur int64
	for _, e := range s {
		if e.Time != cur {
			cur = e.Time
			seenAt = map[Type]bool{}
		}
		if seenAt[e.Type] {
			continue
		}
		seenAt[e.Type] = true
		out = append(out, e)
	}
	return out
}
