package event

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode: the text decoder must never panic, and anything it accepts
// must re-encode and decode to the same sequence.
func FuzzDecode(f *testing.F) {
	f.Add("10 a\n20 b\n")
	f.Add("# comment\n\n5 x\n")
	f.Add("garbage")
	f.Add("1 a\n1 a\n1 b\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, s); err != nil {
			// Types with whitespace cannot round-trip; Decode's field
			// splitting makes that impossible, so any encode failure here
			// is a bug.
			t.Fatalf("accepted sequence failed to encode: %v", err)
		}
		s2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(s2) != len(s) {
			t.Fatalf("round trip changed length: %d -> %d", len(s), len(s2))
		}
		for i := range s {
			if s[i] != s2[i] {
				t.Fatalf("round trip changed event %d: %v -> %v", i, s[i], s2[i])
			}
		}
	})
}

// FuzzDecodeBinary: the binary decoder must never panic and must reject or
// faithfully round-trip arbitrary bytes.
func FuzzDecodeBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = EncodeBinary(&seed, Sequence{{Type: "a", Time: 1}, {Type: "b", Time: 5}})
	f.Add(seed.Bytes())
	f.Add([]byte("TSEQ1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		s, err := DecodeBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid sequence: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, s); err != nil {
			t.Fatalf("accepted sequence failed to encode: %v", err)
		}
		s2, err := DecodeBinary(&buf)
		if err != nil || len(s2) != len(s) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
