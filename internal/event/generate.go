package event

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/calendar"
)

// Poisson generates a background stream: each of the given types occurs
// independently with expected rate events-per-day across [start, end]
// (second timestamps). Deterministic for a fixed seed.
func Poisson(types []Type, ratePerDay float64, start, end int64, seed int64) Sequence {
	rng := rand.New(rand.NewSource(seed))
	var s Sequence
	days := float64(end-start+1) / float64(calendar.SecondsPerDay)
	for _, typ := range types {
		n := poissonCount(rng, ratePerDay*days)
		for i := 0; i < n; i++ {
			t := start + rng.Int63n(end-start+1)
			s = append(s, Event{Type: typ, Time: t})
		}
	}
	s.Sort()
	return s
}

// poissonCount draws a Poisson(mean) variate by inversion (mean kept modest
// by callers).
func poissonCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method is fine for the means the experiments use.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10_000_000 {
			return k // safety bound; unreachable for sane means
		}
	}
}

// Pattern is a template of events at offsets relative to an anchor; Plant
// injects instances of it into a sequence. Mining experiments use it to
// embed complex-event occurrences at a known frequency.
type Pattern []Event // Time fields hold offsets >= 0 relative to the anchor

// Plant returns s plus one instance of the pattern at each anchor time.
func Plant(s Sequence, p Pattern, anchors []int64) Sequence {
	var extra Sequence
	for _, a := range anchors {
		for _, e := range p {
			extra = append(extra, Event{Type: e.Type, Time: a + e.Time})
		}
	}
	extra.Sort()
	return Merge(s, extra)
}

// StockConfig drives GenerateStock.
type StockConfig struct {
	Symbols   []string // e.g. "IBM", "HP"
	StartYear int      // civil year of the first tick
	Days      int      // trading horizon in calendar days
	StepMin   int      // minutes between price observations (paper: 15)
	RiseProb  float64  // probability a step is a rise (vs fall)
	MoveProb  float64  // probability a step emits an event at all
	Seed      int64
}

// GenerateStock produces a price-fluctuation sequence like the paper's
// Example 1: per symbol, "SYM-rise" / "SYM-fall" events every StepMin
// minutes of each business day, plus quarterly "SYM-earnings-report" events
// on the first business day after each quarter.
func GenerateStock(cfg StockConfig) Sequence {
	if cfg.StepMin <= 0 {
		cfg.StepMin = 15
	}
	if cfg.MoveProb == 0 {
		cfg.MoveProb = 0.25
	}
	if cfg.RiseProb == 0 {
		cfg.RiseProb = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	startRata := calendar.RataOf(calendar.Date{Year: cfg.StartYear, Month: 1, Day: 1})
	var s Sequence
	for d := 0; d < cfg.Days; d++ {
		rata := startRata + int64(d)
		if !calendar.IsBusinessDay(rata, nil) {
			continue
		}
		dayStart := (rata-1)*calendar.SecondsPerDay + 1
		// Trading session 09:30..16:00.
		open := dayStart + 9*3600 + 30*60
		close := dayStart + 16*3600
		for t := open; t <= close; t += int64(cfg.StepMin) * 60 {
			for _, sym := range cfg.Symbols {
				if rng.Float64() >= cfg.MoveProb {
					continue
				}
				kind := "-fall"
				if rng.Float64() < cfg.RiseProb {
					kind = "-rise"
				}
				s = append(s, Event{Type: Type(sym + kind), Time: t})
			}
		}
		// Earnings on the first business day of each quarter at 17:00.
		date := calendar.DateOf(rata)
		if date.Day <= 3 && (date.Month-1)%3 == 0 && isFirstBDayOfMonth(rata) {
			for _, sym := range cfg.Symbols {
				s = append(s, Event{Type: Type(sym + "-earnings-report"), Time: dayStart + 17*3600})
			}
		}
	}
	s.Sort()
	return s
}

func isFirstBDayOfMonth(rata int64) bool {
	if !calendar.IsBusinessDay(rata, nil) {
		return false
	}
	d := calendar.DateOf(rata)
	first := calendar.RataOf(calendar.Date{Year: d.Year, Month: d.Month, Day: 1})
	for r := first; r < rata; r++ {
		if calendar.IsBusinessDay(r, nil) {
			return false
		}
	}
	return true
}

// ATMConfig drives GenerateATM.
type ATMConfig struct {
	Accounts  int
	StartYear int
	Days      int
	PerDay    float64 // expected transactions per account per day
	Seed      int64
}

// GenerateATM produces a bank-transaction stream: per account,
// "deposit-K", "withdrawal-K" and "balance-K" events at random daytime
// instants, the kind of sequence the paper's ATM motivation describes.
func GenerateATM(cfg ATMConfig) Sequence {
	if cfg.PerDay == 0 {
		cfg.PerDay = 0.7
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	startRata := calendar.RataOf(calendar.Date{Year: cfg.StartYear, Month: 1, Day: 1})
	kinds := []string{"deposit", "withdrawal", "balance"}
	var s Sequence
	for d := 0; d < cfg.Days; d++ {
		dayStart := (startRata+int64(d)-1)*calendar.SecondsPerDay + 1
		for a := 0; a < cfg.Accounts; a++ {
			n := poissonCount(rng, cfg.PerDay)
			for i := 0; i < n; i++ {
				// Between 07:00 and 23:00.
				t := dayStart + 7*3600 + rng.Int63n(16*3600)
				kind := kinds[rng.Intn(len(kinds))]
				s = append(s, Event{Type: Type(fmt.Sprintf("%s-%d", kind, a)), Time: t})
			}
		}
	}
	s.Sort()
	return s
}

// PlantFaultConfig drives GeneratePlant.
type PlantFaultConfig struct {
	Machines  int
	StartYear int
	Days      int
	Seed      int64
	// CascadeProb is the chance an overheat leads to a malfunction within
	// the same business day and a shutdown the next business day — the
	// planted multi-granularity causal chain.
	CascadeProb float64
}

// GeneratePlant produces an industrial-plant malfunction log with planted
// overheat -> malfunction (same b-day) -> shutdown (next b-day) cascades on
// top of noise readings.
func GeneratePlant(cfg PlantFaultConfig) Sequence {
	if cfg.CascadeProb == 0 {
		cfg.CascadeProb = 0.6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	startRata := calendar.RataOf(calendar.Date{Year: cfg.StartYear, Month: 1, Day: 1})
	var s Sequence
	for d := 0; d < cfg.Days; d++ {
		rata := startRata + int64(d)
		if !calendar.IsBusinessDay(rata, nil) {
			continue
		}
		dayStart := (rata-1)*calendar.SecondsPerDay + 1
		for m := 0; m < cfg.Machines; m++ {
			id := fmt.Sprintf("m%d", m)
			// Noise: pressure readings.
			if rng.Float64() < 0.3 {
				s = append(s, Event{Type: Type("pressure-drop-" + id), Time: dayStart + rng.Int63n(86400)})
			}
			if rng.Float64() < 0.15 { // overheat
				t0 := dayStart + 8*3600 + rng.Int63n(6*3600)
				s = append(s, Event{Type: Type("overheat-" + id), Time: t0})
				if rng.Float64() < cfg.CascadeProb {
					// Malfunction 1-4 hours later, same business day.
					t1 := t0 + 3600 + rng.Int63n(3*3600)
					s = append(s, Event{Type: Type("malfunction-" + id), Time: t1})
					// Shutdown the next business day morning.
					next := rata + 1
					for !calendar.IsBusinessDay(next, nil) {
						next++
					}
					t2 := (next-1)*calendar.SecondsPerDay + 1 + 6*3600 + rng.Int63n(3600)
					s = append(s, Event{Type: Type("shutdown-" + id), Time: t2})
				}
			}
		}
	}
	s.Sort()
	return s
}

// AccessConfig drives GenerateAccess.
type AccessConfig struct {
	Hosts     int // monitored hosts
	StartYear int
	Days      int
	PerDay    float64 // expected benign accesses per host per day
	Seed      int64
	// IntrusionProb is the per-host-per-week chance of a planted intrusion
	// chain: a scan, failed logins within the same hour, and a breach on
	// the same calendar day.
	IntrusionProb float64
}

// GenerateAccess produces a network-access log — the paper's "each access
// to a computer by an external network" motivation — with planted
// scan -> failed-login (same hour) -> breach (same day) intrusion chains.
func GenerateAccess(cfg AccessConfig) Sequence {
	if cfg.PerDay == 0 {
		cfg.PerDay = 3
	}
	if cfg.IntrusionProb == 0 {
		cfg.IntrusionProb = 0.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	startRata := calendar.RataOf(calendar.Date{Year: cfg.StartYear, Month: 1, Day: 1})
	var s Sequence
	for d := 0; d < cfg.Days; d++ {
		dayStart := (startRata+int64(d)-1)*calendar.SecondsPerDay + 1
		for h := 0; h < cfg.Hosts; h++ {
			id := fmt.Sprintf("h%d", h)
			n := poissonCount(rng, cfg.PerDay)
			for i := 0; i < n; i++ {
				s = append(s, Event{Type: Type("access-" + id), Time: dayStart + rng.Int63n(86400)})
			}
			// Weekly intrusion roll on Mondays.
			if calendar.WeekdayOf(startRata+int64(d)) == calendar.Monday && rng.Float64() < cfg.IntrusionProb {
				t0 := dayStart + 1*3600 + rng.Int63n(18*3600)
				hourStart := ((t0 - 1) / 3600) * 3600 // floor to the hour
				s = append(s, Event{Type: Type("scan-" + id), Time: t0})
				// Failed logins in the same hour as the scan.
				for k := 0; k < 3; k++ {
					tf := hourStart + 1 + rng.Int63n(3600)
					if tf <= t0 {
						tf = t0 + 1 + rng.Int63n(3600-(t0-hourStart))
					}
					s = append(s, Event{Type: Type("failed-login-" + id), Time: tf})
				}
				// Breach later the same day.
				tb := t0 + 3600 + rng.Int63n(dayStart+86399-t0-3600+1)
				s = append(s, Event{Type: Type("breach-" + id), Time: tb})
			}
		}
	}
	s.Sort()
	return s
}
