package event

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary codec: a compact format for large sequences. Layout:
//
//	magic "TSEQ1" (5 bytes)
//	uvarint typeCount, then typeCount strings (uvarint len + bytes)
//	uvarint eventCount, then per event:
//	    uvarint typeIndex, uvarint timestamp delta from the previous event
//
// Delta-encoded timestamps make dense logs a few bytes per event.

var binaryMagic = []byte("TSEQ1")

// EncodeBinary writes the sequence in the binary format. The sequence must
// be sorted (deltas are non-negative).
func EncodeBinary(w io.Writer, s Sequence) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic); err != nil {
		return err
	}
	// Type table in first-appearance order.
	index := make(map[Type]uint64, 16)
	var table []Type
	for _, e := range s {
		if _, ok := index[e.Type]; !ok {
			index[e.Type] = uint64(len(table))
			table = append(table, e.Type)
		}
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(table))); err != nil {
		return err
	}
	for _, typ := range table {
		if err := writeUvarint(uint64(len(typ))); err != nil {
			return err
		}
		if _, err := bw.WriteString(string(typ)); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(s))); err != nil {
		return err
	}
	prev := int64(0)
	for _, e := range s {
		if err := writeUvarint(index[e.Type]); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.Time - prev)); err != nil {
			return err
		}
		prev = e.Time
	}
	return bw.Flush()
}

// DecodeBinary reads a sequence written by EncodeBinary.
func DecodeBinary(r io.Reader) (Sequence, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("event: reading magic: %w", err)
	}
	if string(magic) != string(binaryMagic) {
		return nil, fmt.Errorf("event: bad magic %q", magic)
	}
	typeCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("event: type count: %w", err)
	}
	const maxTypes = 1 << 20
	if typeCount > maxTypes {
		return nil, fmt.Errorf("event: implausible type count %d", typeCount)
	}
	table := make([]Type, typeCount)
	for i := range table {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event: type length: %w", err)
		}
		if n > 4096 {
			return nil, fmt.Errorf("event: implausible type length %d", n)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("event: type name: %w", err)
		}
		if len(name) == 0 {
			return nil, fmt.Errorf("event: empty type name")
		}
		table[i] = Type(name)
	}
	eventCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("event: event count: %w", err)
	}
	const maxEvents = 1 << 30
	if eventCount > maxEvents {
		return nil, fmt.Errorf("event: implausible event count %d", eventCount)
	}
	s := make(Sequence, 0, eventCount)
	prev := int64(0)
	for i := uint64(0); i < eventCount; i++ {
		ti, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event: event %d type: %w", i, err)
		}
		if ti >= typeCount {
			return nil, fmt.Errorf("event: event %d references type %d of %d", i, ti, typeCount)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("event: event %d delta: %w", i, err)
		}
		prev += int64(delta)
		s = append(s, Event{Type: table[ti], Time: prev})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
