package event

import "sort"

// Index is a per-type occurrence index over a sequence: it answers "does
// type T occur in [lo, hi]?" and "list T's occurrences in [lo, hi]" by
// binary search instead of scanning, which the mining pipeline's window
// screening does many thousands of times.
type Index struct {
	times map[Type][]int64
}

// NewIndex builds the index; the sequence must be sorted (as Sequence
// always is after Sort).
func NewIndex(s Sequence) *Index {
	idx := &Index{times: make(map[Type][]int64, 16)}
	for _, e := range s {
		idx.times[e.Type] = append(idx.times[e.Type], e.Time)
	}
	return idx
}

// Types returns the number of distinct types indexed.
func (ix *Index) Types() int { return len(ix.times) }

// AnyIn reports whether typ occurs at some time in [lo, hi].
func (ix *Index) AnyIn(typ Type, lo, hi int64) bool {
	ts := ix.times[typ]
	i := sort.Search(len(ts), func(k int) bool { return ts[k] >= lo })
	return i < len(ts) && ts[i] <= hi
}

// In returns typ's occurrence times within [lo, hi]; the result aliases the
// index's backing array.
func (ix *Index) In(typ Type, lo, hi int64) []int64 {
	ts := ix.times[typ]
	i := sort.Search(len(ts), func(k int) bool { return ts[k] >= lo })
	j := sort.Search(len(ts), func(k int) bool { return ts[k] > hi })
	return ts[i:j]
}

// Count returns the number of occurrences of typ.
func (ix *Index) Count(typ Type) int { return len(ix.times[typ]) }
