package episode

import (
	"math/rand"
	"testing"

	"repro/internal/event"
)

func TestIntervalOps(t *testing.T) {
	s := normalize(intervalSet{{5, 9}, {1, 3}, {8, 12}})
	if len(s) != 2 || s[0] != (span{1, 3}) || s[1] != (span{5, 12}) {
		t.Fatalf("normalize = %v", s)
	}
	if s.measure() != 3+8 {
		t.Fatalf("measure = %d", s.measure())
	}
	c := s.clip(2, 10)
	if c.measure() != 2+6 {
		t.Fatalf("clip measure = %d (%v)", c.measure(), c)
	}
	a := intervalSet{{1, 5}, {10, 20}}
	b := intervalSet{{4, 12}, {18, 30}}
	got := intersect(a, b)
	want := intervalSet{{4, 5}, {10, 12}, {18, 20}}
	if len(got) != len(want) {
		t.Fatalf("intersect = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersect = %v, want %v", got, want)
		}
	}
}

func TestSerialFrequencyExact(t *testing.T) {
	// Events: A@10, B@14. Windows of width 10 overlap [1..19] starts
	// (first-win+1 .. last) = [1,19] -> 19 windows... width 10: starts in
	// [10-10+1, 14] = [1,14], total = last-first+win = 14-10+10 = 14.
	// A->B occurs in windows containing both: starts in [14-10+1, 10] =
	// [5,10] -> 6 windows. Frequency = 6/14.
	seq := event.Sequence{{Type: "A", Time: 10}, {Type: "B", Time: 14}}
	got := Frequency(seq, NewSerial("A", "B"), 10)
	want := 6.0 / 14.0
	if got != want {
		t.Fatalf("Frequency = %v, want %v", got, want)
	}
	// B->A never occurs.
	if f := Frequency(seq, NewSerial("B", "A"), 10); f != 0 {
		t.Fatalf("B->A frequency = %v, want 0", f)
	}
	// Parallel {A,B} has the same windows as serial A->B here.
	if f := Frequency(seq, NewParallel("B", "A"), 10); f != want {
		t.Fatalf("parallel frequency = %v, want %v", f, want)
	}
}

func TestSerialOrderMatters(t *testing.T) {
	seq := event.Sequence{{Type: "B", Time: 10}, {Type: "A", Time: 14}}
	if f := Frequency(seq, NewSerial("A", "B"), 10); f != 0 {
		t.Fatalf("A->B should not occur, got %v", f)
	}
	if f := Frequency(seq, NewParallel("A", "B"), 10); f == 0 {
		t.Fatal("parallel {A,B} should occur")
	}
}

func TestParallelMultiplicity(t *testing.T) {
	seq := event.Sequence{{Type: "A", Time: 10}, {Type: "A", Time: 12}, {Type: "A", Time: 100}}
	// {A,A} needs two A events within one window.
	if f := Frequency(seq, NewParallel("A", "A"), 5); f == 0 {
		t.Fatal("two As three seconds apart fit a 5-window")
	}
	if f := Frequency(seq, NewParallel("A", "A"), 2); f != 0 {
		t.Fatalf("two As cannot fit a 2-window, got %v", f)
	}
}

func TestWindowWiderThanSpanCounts(t *testing.T) {
	seq := event.Sequence{{Type: "A", Time: 100}}
	f := Frequency(seq, NewSerial("A"), 1000)
	if f != 1.0 {
		t.Fatalf("singleton with huge window should be 1.0, got %v", f)
	}
}

func TestFrequencyMonotoneInWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var seq event.Sequence
	for i := 0; i < 60; i++ {
		seq = append(seq, event.Event{
			Type: event.Type([]string{"A", "B", "C"}[rng.Intn(3)]),
			Time: int64(rng.Intn(5000) + 1),
		})
	}
	seq.Sort()
	ep := NewSerial("A", "B")
	prevCovered := int64(-1)
	for _, win := range []int64{10, 50, 100, 500, 1000} {
		covered := windowStarts(seq, ep, win).measure()
		if covered < prevCovered {
			t.Fatalf("covered starts decreased with wider window: %d -> %d at win=%d", prevCovered, covered, win)
		}
		prevCovered = covered
	}
}

// TestFrequencyMatchesBruteForce cross-checks the interval arithmetic
// against direct per-window evaluation on small sequences.
func TestFrequencyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	types := []event.Type{"A", "B", "C"}
	for trial := 0; trial < 200; trial++ {
		var seq event.Sequence
		n := rng.Intn(8) + 2
		for i := 0; i < n; i++ {
			seq = append(seq, event.Event{Type: types[rng.Intn(3)], Time: int64(rng.Intn(40) + 1)})
		}
		seq.Sort()
		win := int64(rng.Intn(15) + 2)
		eps := []Episode{
			NewSerial("A", "B"),
			NewSerial("B", "C", "A"),
			NewParallel("A", "B"),
			NewParallel("A", "A"),
		}
		for _, ep := range eps {
			got := windowStarts(seq, ep, win).measure()
			want := bruteWindows(seq, ep, win)
			if got != want {
				t.Fatalf("trial %d ep %v win %d: interval count %d != brute %d\nseq=%v",
					trial, ep, win, got, want, seq)
			}
		}
	}
}

// bruteWindows counts window starts containing the episode by direct
// evaluation.
func bruteWindows(seq event.Sequence, ep Episode, win int64) int64 {
	first, last := seq.Span()
	var count int64
	for t := first - win + 1; t <= last; t++ {
		inWin := seq.Between(t, t+win-1)
		if containsEpisode(inWin, ep) {
			count++
		}
	}
	return count
}

func containsEpisode(seq event.Sequence, ep Episode) bool {
	if ep.Kind == Serial {
		i := 0
		for _, e := range seq {
			if i < len(ep.Types) && e.Type == ep.Types[i] {
				i++
			}
		}
		return i == len(ep.Types)
	}
	need := map[event.Type]int{}
	for _, t := range ep.Types {
		need[t]++
	}
	for _, e := range seq {
		if need[e.Type] > 0 {
			need[e.Type]--
		}
	}
	for _, n := range need {
		if n > 0 {
			return false
		}
	}
	return true
}

func TestMineLevelWise(t *testing.T) {
	// Strong A->B->C signal with period 100, window 50.
	var seq event.Sequence
	for i := int64(0); i < 50; i++ {
		base := i*100 + 1
		seq = append(seq,
			event.Event{Type: "A", Time: base},
			event.Event{Type: "B", Time: base + 10},
			event.Event{Type: "C", Time: base + 20},
		)
	}
	res, err := Mine(seq, Config{Kind: Serial, Window: 50, MinFreq: 0.2, MaxSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]float64{}
	for _, r := range res {
		keys[r.Episode.Key()] = r.Frequency
	}
	for _, want := range []string{"serial:A", "serial:A->B", "serial:A->B->C"} {
		if _, ok := keys[want]; !ok {
			t.Fatalf("missing frequent episode %s in %v", want, keys)
		}
	}
	if _, ok := keys["serial:C->A->B"]; ok {
		// C->A spans two periods: distance 81 > window 50 minus ...
		// C@base+20, next A@base+100: 80 apart, window 50 cannot hold
		// C->A->B.
		t.Fatal("C->A->B should be infrequent at window 50")
	}
}

func TestMineParallel(t *testing.T) {
	var seq event.Sequence
	for i := int64(0); i < 30; i++ {
		base := i*100 + 1
		seq = append(seq,
			event.Event{Type: "B", Time: base},
			event.Event{Type: "A", Time: base + 5},
		)
	}
	res, err := Mine(seq, Config{Kind: Parallel, Window: 40, MinFreq: 0.3, MaxSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Episode.Key() == "parallel:A+B" {
			found = true
		}
	}
	if !found {
		t.Fatalf("parallel A+B not found in %v", res)
	}
}

func TestMineValidation(t *testing.T) {
	seq := event.Sequence{{Type: "A", Time: 1}}
	if _, err := Mine(seq, Config{Window: 0, MinFreq: 0.1}); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := Mine(seq, Config{Window: 10, MinFreq: 1.5}); err == nil {
		t.Fatal("bad frequency accepted")
	}
}

func TestEpisodeKeyCanonical(t *testing.T) {
	if NewParallel("B", "A").Key() != NewParallel("A", "B").Key() {
		t.Fatal("parallel episodes should canonicalize")
	}
	if NewSerial("B", "A").Key() == NewSerial("A", "B").Key() {
		t.Fatal("serial order must matter")
	}
}

func TestRules(t *testing.T) {
	// Strong A->B->C signal: prefix rules should have confidence ~1.
	var seq event.Sequence
	for i := int64(0); i < 60; i++ {
		base := i*100 + 1
		seq = append(seq,
			event.Event{Type: "A", Time: base},
			event.Event{Type: "B", Time: base + 10},
			event.Event{Type: "C", Time: base + 20},
		)
		if i%3 == 0 { // a dangling A that is not followed within the window
			seq = append(seq, event.Event{Type: "A", Time: base + 60})
		}
	}
	seq.Sort()
	res, err := Mine(seq, Config{Kind: Serial, Window: 40, MinFreq: 0.05, MaxSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules := Rules(res, 0.3)
	if len(rules) == 0 {
		t.Fatal("no rules derived")
	}
	byKey := map[string]Rule{}
	for _, r := range rules {
		byKey[r.Antecedent.Key()+"=>"+r.Consequent.Key()] = r
		if r.Confidence < 0.3 || r.Confidence > 1.0001 {
			t.Fatalf("confidence out of range: %v", r)
		}
		// Consequent frequency never exceeds antecedent frequency.
		if r.Frequency > r.Confidence*1.0001*freqOf(res, r.Antecedent) {
			t.Fatalf("frequencies inconsistent: %v", r)
		}
	}
	ab := byKey["serial:A=>serial:A->B"]
	if ab.Confidence == 0 {
		t.Fatalf("rule A => A->B missing; got %v", rules)
	}
	// Sorted by confidence descending.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func freqOf(res []Result, ep Episode) float64 {
	for _, r := range res {
		if r.Episode.Key() == ep.Key() {
			return r.Frequency
		}
	}
	return 0
}

func TestRulesMinConfidenceFilters(t *testing.T) {
	res := []Result{
		{Episode: NewSerial("A"), Frequency: 0.8},
		{Episode: NewSerial("B"), Frequency: 0.5},
		{Episode: NewSerial("A", "B"), Frequency: 0.2},
	}
	all := Rules(res, 0)
	if len(all) == 0 {
		t.Fatal("no rules at conf 0")
	}
	high := Rules(res, 0.9)
	for _, r := range high {
		if r.Confidence < 0.9 {
			t.Fatalf("filter leaked %v", r)
		}
	}
	// A => A->B has confidence 0.25; B => A->B has 0.4.
	found := map[string]float64{}
	for _, r := range all {
		found[r.Antecedent.Key()] = r.Confidence
	}
	if f := found["serial:A"]; f < 0.2499 || f > 0.2501 {
		t.Fatalf("conf(A => A->B) = %v, want 0.25", f)
	}
	if f := found["serial:B"]; f < 0.3999 || f > 0.4001 {
		t.Fatalf("conf(B => A->B) = %v, want 0.4", f)
	}
}
