package episode

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// Rule is an MTV95 episode rule "antecedent ⇒ consequent": whenever the
// antecedent occurs in a window, the full consequent occurs in that window
// with the given confidence (fr(consequent)/fr(antecedent)).
type Rule struct {
	Antecedent Episode
	Consequent Episode
	// Confidence is fr(consequent)/fr(antecedent) in [0,1].
	Confidence float64
	// Frequency is the consequent's window frequency.
	Frequency float64
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (conf %.3f, freq %.3f)", r.Antecedent, r.Consequent, r.Confidence, r.Frequency)
}

// Rules derives episode rules from a frequent-episode result set (as
// produced by Mine): for every frequent episode of size >= 2, each
// immediate sub-episode that is itself frequent yields one rule; serial
// episodes additionally yield prefix rules (the classic "having seen the
// prefix, the rest follows" form). Rules below minConfidence are dropped.
func Rules(results []Result, minConfidence float64) []Rule {
	freq := make(map[string]float64, len(results))
	for _, r := range results {
		freq[r.Episode.Key()] = r.Frequency
	}
	var out []Rule
	emit := func(ante, cons Episode, consFreq float64) {
		af, ok := freq[ante.Key()]
		if !ok || af == 0 {
			return
		}
		conf := consFreq / af
		if conf >= minConfidence {
			out = append(out, Rule{
				Antecedent: ante,
				Consequent: cons,
				Confidence: conf,
				Frequency:  consFreq,
			})
		}
	}
	seen := map[string]bool{}
	for _, r := range results {
		ep := r.Episode
		if len(ep.Types) < 2 {
			continue
		}
		// Immediate sub-episodes (drop one element).
		for drop := range ep.Types {
			sub := ep.dropAt(drop)
			key := sub.Key() + "=>" + ep.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			emit(sub, ep, r.Frequency)
		}
		// Prefix rules for serial episodes.
		if ep.Kind == Serial {
			for cut := 1; cut < len(ep.Types); cut++ {
				pre := NewSerial(ep.Types[:cut]...)
				key := pre.Key() + "=>" + ep.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				emit(pre, ep, r.Frequency)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Consequent.Key()+out[i].Antecedent.Key() <
			out[j].Consequent.Key()+out[j].Antecedent.Key()
	})
	return out
}

// dropAt returns the episode without element i (order preserved for
// serial, re-canonicalized for parallel).
func (ep Episode) dropAt(i int) Episode {
	sub := make([]event.Type, 0, len(ep.Types)-1)
	for j, t := range ep.Types {
		if j != i {
			sub = append(sub, t)
		}
	}
	if ep.Kind == Serial {
		return NewSerial(sub...)
	}
	return NewParallel(sub...)
}
