package episode_test

import (
	"fmt"

	"repro/internal/episode"
	"repro/internal/event"
)

// Example mines frequent serial episodes from a periodic stream, MTV95
// style, and derives rules from them.
func Example() {
	var seq event.Sequence
	for i := int64(0); i < 50; i++ {
		base := i*100 + 1
		seq = append(seq,
			event.Event{Type: "A", Time: base},
			event.Event{Type: "B", Time: base + 10},
		)
	}
	res, err := episode.Mine(seq, episode.Config{
		Kind: episode.Serial, Window: 40, MinFreq: 0.3, MaxSize: 2,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range res {
		if len(r.Episode.Types) == 2 {
			fmt.Printf("%s freq=%.2f\n", r.Episode, r.Frequency)
		}
	}
	for _, rule := range episode.Rules(res, 0.7) {
		fmt.Println(rule.Antecedent, "=>", rule.Consequent)
	}
	// Output:
	// serial:A->B freq=0.30
	// serial:A => serial:A->B
	// serial:B => serial:A->B
}
