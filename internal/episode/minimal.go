package episode

import "repro/internal/event"

// Minimal occurrences — the alternative frequency measure of Mannila &
// Toivonen's follow-up work (KDD'96): an occurrence interval [ts, te] of an
// episode is minimal if no proper sub-interval also contains an occurrence.
// Support is then the number of minimal occurrences, optionally restricted
// to a maximal width.

// Occurrence is a closed time interval containing an episode occurrence.
type Occurrence struct {
	Start, End int64
}

// Width returns the occurrence's width in seconds.
func (o Occurrence) Width() int64 { return o.End - o.Start + 1 }

// MinimalOccurrences returns the minimal occurrence intervals of the
// episode in the sequence, in increasing order of start time.
func MinimalOccurrences(seq event.Sequence, ep Episode) []Occurrence {
	if len(ep.Types) == 0 || len(seq) == 0 {
		return nil
	}
	var raw []Occurrence
	switch ep.Kind {
	case Serial:
		raw = serialOccurrences(seq, ep.Types)
	default:
		raw = parallelOccurrences(seq, ep.Types)
	}
	return filterMinimal(raw)
}

// serialOccurrences lists, for each end position, the tightest occurrence
// ending there: scan each potential start and greedily match forward; the
// greedy-from-start occurrence is the tightest with that start.
func serialOccurrences(seq event.Sequence, types []event.Type) []Occurrence {
	var out []Occurrence
	for i, e := range seq {
		if e.Type != types[0] {
			continue
		}
		pos := i
		end := e.Time
		ok := true
		for _, typ := range types[1:] {
			found := false
			for j := pos + 1; j < len(seq); j++ {
				if seq[j].Type == typ {
					pos = j
					end = seq[j].Time
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, Occurrence{Start: e.Time, End: end})
		}
	}
	return out
}

// parallelOccurrences lists, for each start index, the tightest window
// starting there that contains the multiset of types.
func parallelOccurrences(seq event.Sequence, types []event.Type) []Occurrence {
	need := map[event.Type]int{}
	for _, t := range types {
		need[t]++
	}
	var out []Occurrence
	for i := range seq {
		if need[seq[i].Type] == 0 {
			continue
		}
		remaining := make(map[event.Type]int, len(need))
		for k, v := range need {
			remaining[k] = v
		}
		missing := len(types)
		end := int64(0)
		for j := i; j < len(seq); j++ {
			if remaining[seq[j].Type] > 0 {
				remaining[seq[j].Type]--
				missing--
				end = seq[j].Time
				if missing == 0 {
					break
				}
			}
		}
		if missing == 0 {
			out = append(out, Occurrence{Start: seq[i].Time, End: end})
		}
	}
	return out
}

// filterMinimal keeps the occurrences containing no other occurrence.
// Inputs are tightest-per-start, sorted by start; an occurrence is minimal
// iff no later-starting occurrence ends at or before its end.
func filterMinimal(raw []Occurrence) []Occurrence {
	var out []Occurrence
	for i, o := range raw {
		minimal := true
		for j := i + 1; j < len(raw); j++ {
			if raw[j].Start > o.End {
				break
			}
			if raw[j].End <= o.End && (raw[j].Start > o.Start || raw[j].End < o.End) {
				minimal = false
				break
			}
		}
		if minimal {
			// Dedup identical intervals (possible with repeated starts).
			if len(out) > 0 && out[len(out)-1] == o {
				continue
			}
			out = append(out, o)
		}
	}
	return out
}

// SupportMO returns the number of minimal occurrences with width at most
// maxWidth (0 = unbounded), the KDD'96 support measure.
func SupportMO(seq event.Sequence, ep Episode, maxWidth int64) int {
	n := 0
	for _, o := range MinimalOccurrences(seq, ep) {
		if maxWidth > 0 && o.Width() > maxWidth {
			continue
		}
		n++
	}
	return n
}
