package episode

import (
	"math/rand"
	"testing"

	"repro/internal/event"
)

func TestMinimalOccurrencesSerial(t *testing.T) {
	// A@10 A@20 B@30 B@40: minimal A->B is [20,30] only.
	seq := event.Sequence{{Type: "A", Time: 10}, {Type: "A", Time: 20}, {Type: "B", Time: 30}, {Type: "B", Time: 40}}
	got := MinimalOccurrences(seq, NewSerial("A", "B"))
	if len(got) != 1 || got[0] != (Occurrence{20, 30}) {
		t.Fatalf("minimal = %v, want [20,30]", got)
	}
	// A@10 B@15 A@20 B@30: two minimal occurrences.
	seq = event.Sequence{{Type: "A", Time: 10}, {Type: "B", Time: 15}, {Type: "A", Time: 20}, {Type: "B", Time: 30}}
	got = MinimalOccurrences(seq, NewSerial("A", "B"))
	if len(got) != 2 || got[0] != (Occurrence{10, 15}) || got[1] != (Occurrence{20, 30}) {
		t.Fatalf("minimal = %v", got)
	}
	// No occurrence.
	if got := MinimalOccurrences(seq, NewSerial("B", "A", "B", "A")); len(got) != 0 {
		t.Fatalf("impossible episode has occurrences: %v", got)
	}
}

func TestMinimalOccurrencesParallel(t *testing.T) {
	// B@10 A@20 B@30: minimal {A,B} windows: [10,20] and [20,30].
	seq := event.Sequence{{Type: "B", Time: 10}, {Type: "A", Time: 20}, {Type: "B", Time: 30}}
	got := MinimalOccurrences(seq, NewParallel("A", "B"))
	if len(got) != 2 || got[0] != (Occurrence{10, 20}) || got[1] != (Occurrence{20, 30}) {
		t.Fatalf("minimal = %v", got)
	}
	// Multiplicity: {B,B} needs two Bs.
	got = MinimalOccurrences(seq, NewParallel("B", "B"))
	if len(got) != 1 || got[0] != (Occurrence{10, 30}) {
		t.Fatalf("minimal {B,B} = %v", got)
	}
}

func TestSupportMO(t *testing.T) {
	seq := event.Sequence{{Type: "A", Time: 10}, {Type: "B", Time: 15}, {Type: "A", Time: 100}, {Type: "B", Time: 200}}
	if got := SupportMO(seq, NewSerial("A", "B"), 0); got != 2 {
		t.Fatalf("unbounded support = %d, want 2", got)
	}
	if got := SupportMO(seq, NewSerial("A", "B"), 50); got != 1 {
		t.Fatalf("width-50 support = %d, want 1 (the [100,200] one is too wide)", got)
	}
}

// TestMinimalOccurrencesBrute cross-checks against the definition: an
// interval is a minimal occurrence iff it contains the episode and no
// proper sub-interval does.
func TestMinimalOccurrencesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	types := []event.Type{"A", "B", "C"}
	eps := []Episode{NewSerial("A", "B"), NewSerial("A", "B", "C"), NewParallel("A", "B"), NewParallel("B", "B")}
	for trial := 0; trial < 150; trial++ {
		var seq event.Sequence
		n := rng.Intn(8) + 2
		used := map[int64]bool{}
		for len(seq) < n {
			tm := int64(rng.Intn(30) + 1)
			if used[tm] {
				continue
			}
			used[tm] = true
			seq = append(seq, event.Event{Type: types[rng.Intn(3)], Time: tm})
		}
		seq.Sort()
		for _, ep := range eps {
			got := MinimalOccurrences(seq, ep)
			want := bruteMinimal(seq, ep)
			if len(got) != len(want) {
				t.Fatalf("trial %d ep %v: got %v want %v (seq %v)", trial, ep, got, want, seq)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d ep %v: got %v want %v (seq %v)", trial, ep, got, want, seq)
				}
			}
		}
	}
}

// bruteMinimal enumerates all event-time intervals and keeps the minimal
// containing ones.
func bruteMinimal(seq event.Sequence, ep Episode) []Occurrence {
	var all []Occurrence
	for i := range seq {
		for j := i; j < len(seq); j++ {
			w := seq.Between(seq[i].Time, seq[j].Time)
			if containsEpisode(w, ep) {
				all = append(all, Occurrence{seq[i].Time, seq[j].Time})
			}
		}
	}
	var out []Occurrence
	for _, o := range all {
		minimal := true
		for _, p := range all {
			if p == o {
				continue
			}
			if p.Start >= o.Start && p.End <= o.End {
				minimal = false
				break
			}
		}
		if minimal {
			dup := false
			for _, q := range out {
				if q == o {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, o)
			}
		}
	}
	return out
}

func TestMineWithMinimalOccurrences(t *testing.T) {
	var seq event.Sequence
	for i := int64(0); i < 40; i++ {
		base := i*100 + 1
		seq = append(seq,
			event.Event{Type: "A", Time: base},
			event.Event{Type: "B", Time: base + 10},
		)
		if i%4 == 0 {
			seq = append(seq, event.Event{Type: "C", Time: base + 20})
		}
	}
	res, err := Mine(seq, Config{
		Kind: Serial, Window: 30, MaxSize: 2,
		UseMinimalOccurrences: true, MinSupport: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]float64{}
	for _, r := range res {
		found[r.Episode.Key()] = r.Frequency
	}
	if found["serial:A->B"] != 40 {
		t.Fatalf("A->B MO support = %v, want 40 (keys %v)", found["serial:A->B"], found)
	}
	if _, ok := found["serial:A->C"]; ok {
		t.Fatal("A->C has only 10 minimal occurrences; must be infrequent at support 20")
	}
	// Validation of the mode.
	if _, err := Mine(seq, Config{Kind: Serial, Window: 30, UseMinimalOccurrences: true}); err == nil {
		t.Fatal("MO mode without MinSupport accepted")
	}
}
