package episode

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
)

// Kind selects the episode class.
type Kind int

// Episode kinds: Serial episodes are ordered, Parallel are unordered.
const (
	Serial Kind = iota
	Parallel
)

// String names the kind.
func (k Kind) String() string {
	if k == Serial {
		return "serial"
	}
	return "parallel"
}

// Episode is a serial (ordered) or parallel (unordered) episode over event
// types. Parallel episodes keep Types sorted; a type may repeat.
type Episode struct {
	Kind  Kind
	Types []event.Type
}

// NewSerial builds a serial episode.
func NewSerial(types ...event.Type) Episode {
	return Episode{Kind: Serial, Types: append([]event.Type(nil), types...)}
}

// NewParallel builds a parallel episode (canonically sorted).
func NewParallel(types ...event.Type) Episode {
	ts := append([]event.Type(nil), types...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return Episode{Kind: Parallel, Types: ts}
}

// Key canonicalizes the episode for set membership.
func (ep Episode) Key() string {
	parts := make([]string, len(ep.Types))
	for i, t := range ep.Types {
		parts[i] = string(t)
	}
	sep := "->"
	if ep.Kind == Parallel {
		sep = "+"
	}
	return ep.Kind.String() + ":" + strings.Join(parts, sep)
}

// String renders the episode.
func (ep Episode) String() string { return ep.Key() }

// windowStarts returns the set of window start positions t such that the
// episode occurs within [t, t+win-1], clipped to the admissible range of
// window starts over the sequence (windows overlapping the sequence, as in
// MTV95).
func windowStarts(seq event.Sequence, ep Episode, win int64) intervalSet {
	if len(seq) == 0 || len(ep.Types) == 0 || win <= 0 {
		return nil
	}
	first, last := seq.Span()
	lo, hi := first-win+1, last // admissible window starts
	var set intervalSet
	switch ep.Kind {
	case Serial:
		set = serialStarts(seq, ep.Types, win)
	default:
		set = parallelStarts(seq, ep.Types, win)
	}
	return normalize(set).clip(lo, hi)
}

// serialStarts: for each greedy occurrence with span [s, e], e-s < win, the
// episode is inside every window starting in [e-win+1, s].
func serialStarts(seq event.Sequence, types []event.Type, win int64) intervalSet {
	var set intervalSet
	for i, e := range seq {
		if e.Type != types[0] {
			continue
		}
		s := e.Time
		pos := i
		okAll := true
		var end int64 = s
		for _, typ := range types[1:] {
			found := false
			for j := pos + 1; j < len(seq); j++ {
				if seq[j].Type == typ {
					pos = j
					end = seq[j].Time
					found = true
					break
				}
			}
			if !found {
				okAll = false
				break
			}
		}
		if okAll && end-s < win {
			set = append(set, span{end - win + 1, s})
		}
	}
	return set
}

// parallelStarts: the intersection over types of the window-start sets
// covering at least one occurrence of the type; repeated types require
// distinct events, handled by requiring the m-th closest occurrence.
func parallelStarts(seq event.Sequence, types []event.Type, win int64) intervalSet {
	// Count multiplicity per type.
	mult := map[event.Type]int{}
	for _, t := range types {
		mult[t]++
	}
	var result intervalSet
	firstType := true
	for typ, m := range mult {
		times := seq.Occurrences(typ)
		var set intervalSet
		// A window holds m events of typ iff it contains times[i..i+m-1]
		// for some i: starts in [times[i+m-1]-win+1, times[i]].
		for i := 0; i+m <= len(times); i++ {
			f := times[i+m-1] - win + 1
			l := times[i]
			if f <= l {
				set = append(set, span{f, l})
			}
		}
		set = normalize(set)
		if firstType {
			result = set
			firstType = false
		} else {
			result = intersect(result, set)
		}
		if len(result) == 0 {
			return nil
		}
	}
	return result
}

// Frequency returns the episode's MTV95 window frequency: the fraction of
// the windows overlapping the sequence that contain the episode.
func Frequency(seq event.Sequence, ep Episode, win int64) float64 {
	if len(seq) == 0 || win <= 0 {
		return 0
	}
	first, last := seq.Span()
	total := last - first + win // number of admissible starts
	covered := windowStarts(seq, ep, win).measure()
	return float64(covered) / float64(total)
}

// Result is one frequent episode with its frequency.
type Result struct {
	Episode   Episode
	Frequency float64
}

// Config drives Mine.
type Config struct {
	Kind    Kind
	Window  int64   // window width in seconds
	MinFreq float64 // keep episodes with Frequency >= MinFreq
	MaxSize int     // largest episode length explored (default 3)
	// UseMinimalOccurrences switches the frequency measure to the KDD'96
	// minimal-occurrence support: an episode is frequent when it has at
	// least MinSupport minimal occurrences of width <= Window. MinFreq is
	// ignored in this mode. Both measures are anti-monotone, so the
	// level-wise search is unchanged.
	UseMinimalOccurrences bool
	MinSupport            int
}

// Mine runs the level-wise MTV95 algorithm: frequent 1-episodes, then
// candidates built by extending frequent (k-1)-episodes with frequent
// 1-episodes, pruned by the sub-episode (Apriori) property and verified by
// exact window counting.
func Mine(seq event.Sequence, cfg Config) ([]Result, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("episode: window must be positive")
	}
	if cfg.MinFreq < 0 || cfg.MinFreq > 1 {
		return nil, fmt.Errorf("episode: min frequency %v outside [0,1]", cfg.MinFreq)
	}
	maxSize := cfg.MaxSize
	if maxSize <= 0 {
		maxSize = 3
	}
	if cfg.UseMinimalOccurrences && cfg.MinSupport < 1 {
		return nil, fmt.Errorf("episode: minimal-occurrence mode needs MinSupport >= 1")
	}
	frequentEnough := func(ep Episode) (float64, bool) {
		if cfg.UseMinimalOccurrences {
			n := SupportMO(seq, ep, cfg.Window)
			return float64(n), n >= cfg.MinSupport
		}
		f := Frequency(seq, ep, cfg.Window)
		return f, f >= cfg.MinFreq
	}
	types := seq.Types()

	var out []Result
	frequent := map[string]bool{}
	var level []Episode
	for _, t := range types {
		var ep Episode
		if cfg.Kind == Serial {
			ep = NewSerial(t)
		} else {
			ep = NewParallel(t)
		}
		if f, ok := frequentEnough(ep); ok {
			out = append(out, Result{ep, f})
			level = append(level, ep)
			frequent[ep.Key()] = true
		}
	}
	ones := append([]Episode(nil), level...)

	for size := 2; size <= maxSize && len(level) > 0; size++ {
		cands := map[string]Episode{}
		for _, base := range level {
			for _, one := range ones {
				var ep Episode
				if cfg.Kind == Serial {
					ep = NewSerial(append(append([]event.Type{}, base.Types...), one.Types[0])...)
				} else {
					ep = NewParallel(append(append([]event.Type{}, base.Types...), one.Types[0])...)
				}
				if _, dup := cands[ep.Key()]; dup {
					continue
				}
				if !subEpisodesFrequent(ep, frequent) {
					continue
				}
				cands[ep.Key()] = ep
			}
		}
		keys := make([]string, 0, len(cands))
		for k := range cands {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var next []Episode
		for _, k := range keys {
			ep := cands[k]
			if f, ok := frequentEnough(ep); ok {
				out = append(out, Result{ep, f})
				next = append(next, ep)
				frequent[ep.Key()] = true
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Episode.Types) != len(out[j].Episode.Types) {
			return len(out[i].Episode.Types) < len(out[j].Episode.Types)
		}
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Episode.Key() < out[j].Episode.Key()
	})
	return out, nil
}

// subEpisodesFrequent applies the Apriori prune: every (k-1)-sub-episode
// (dropping one element, keeping order for serial) must be frequent.
func subEpisodesFrequent(ep Episode, frequent map[string]bool) bool {
	if len(ep.Types) <= 1 {
		return true
	}
	for drop := range ep.Types {
		sub := make([]event.Type, 0, len(ep.Types)-1)
		sub = append(sub, ep.Types[:drop]...)
		sub = append(sub, ep.Types[drop+1:]...)
		var se Episode
		if ep.Kind == Serial {
			se = NewSerial(sub...)
		} else {
			se = NewParallel(sub...)
		}
		if !frequent[se.Key()] {
			return false
		}
	}
	return true
}
