// Package episode implements the frequent-episode mining of Mannila,
// Toivonen and Verkamo (KDD'95) — the paper's closest related work and the
// single-granularity baseline of the experiments: serial and parallel
// episodes recognized in a sliding window of fixed width, mined level-wise
// from frequent sub-episodes.
package episode

import "sort"

// intervalSet is a set of integers represented as sorted disjoint closed
// intervals [first, last].
type intervalSet []span

type span struct{ first, last int64 }

// normalize sorts and coalesces the spans.
func normalize(s intervalSet) intervalSet {
	if len(s) <= 1 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i].first < s[j].first })
	out := s[:1]
	for _, sp := range s[1:] {
		last := &out[len(out)-1]
		if sp.first <= last.last+1 {
			if sp.last > last.last {
				last.last = sp.last
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// measure returns the number of integers covered.
func (s intervalSet) measure() int64 {
	var n int64
	for _, sp := range s {
		n += sp.last - sp.first + 1
	}
	return n
}

// clip intersects the set with [lo, hi].
func (s intervalSet) clip(lo, hi int64) intervalSet {
	var out intervalSet
	for _, sp := range s {
		f, l := sp.first, sp.last
		if f < lo {
			f = lo
		}
		if l > hi {
			l = hi
		}
		if f <= l {
			out = append(out, span{f, l})
		}
	}
	return out
}

// intersect returns the intersection of two normalized sets.
func intersect(a, b intervalSet) intervalSet {
	var out intervalSet
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		f := a[i].first
		if b[j].first > f {
			f = b[j].first
		}
		l := a[i].last
		if b[j].last < l {
			l = b[j].last
		}
		if f <= l {
			out = append(out, span{f, l})
		}
		if a[i].last < b[j].last {
			i++
		} else {
			j++
		}
	}
	return out
}
