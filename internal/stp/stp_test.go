package stp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSaturates(t *testing.T) {
	if Add(Inf, 5) != Inf || Add(5, Inf) != Inf || Add(Inf, Inf) != Inf {
		t.Fatal("Inf must absorb")
	}
	if Add(2, 3) != 5 {
		t.Fatal("finite addition broken")
	}
	if Add(Inf, -100) != Inf {
		t.Fatal("Inf plus negative must stay Inf")
	}
}

func TestChainComposition(t *testing.T) {
	// t1 - t0 in [1,2], t2 - t1 in [3,4] => t2 - t0 in [4,6].
	nw := New(3)
	nw.Constrain(0, 1, 1, 2)
	nw.Constrain(1, 2, 3, 4)
	if !nw.Minimize() {
		t.Fatal("consistent network reported inconsistent")
	}
	lo, hi := nw.Bounds(0, 2)
	if lo != 4 || hi != 6 {
		t.Fatalf("Bounds(0,2) = [%d,%d], want [4,6]", lo, hi)
	}
}

func TestIntersection(t *testing.T) {
	nw := New(2)
	nw.Constrain(0, 1, 0, 10)
	nw.Constrain(0, 1, 5, 20)
	if !nw.Minimize() {
		t.Fatal("inconsistent")
	}
	lo, hi := nw.Bounds(0, 1)
	if lo != 5 || hi != 10 {
		t.Fatalf("Bounds = [%d,%d], want [5,10]", lo, hi)
	}
}

func TestInconsistencyDetection(t *testing.T) {
	// t1 - t0 >= 5 and t1 - t0 <= 3.
	nw := New(2)
	nw.Constrain(0, 1, 5, Inf)
	nw.Constrain(0, 1, -Inf, 3)
	if nw.Minimize() {
		t.Fatal("negative cycle not detected")
	}
}

func TestTriangleInconsistency(t *testing.T) {
	// A->B in [3,3], B->C in [3,3], A->C in [0,5]: needs 6, max 5.
	nw := New(3)
	nw.Constrain(0, 1, 3, 3)
	nw.Constrain(1, 2, 3, 3)
	nw.Constrain(0, 2, 0, 5)
	if nw.Minimize() {
		t.Fatal("triangle inconsistency not detected")
	}
}

func TestUnconstrainedBounds(t *testing.T) {
	nw := New(2)
	if !nw.Minimize() {
		t.Fatal("empty network inconsistent?")
	}
	lo, hi := nw.Bounds(0, 1)
	if lo != -Inf || hi != Inf {
		t.Fatalf("unconstrained bounds = [%d,%d]", lo, hi)
	}
}

func TestSolutionSatisfies(t *testing.T) {
	nw := New(4)
	nw.Constrain(0, 1, 1, 5)
	nw.Constrain(1, 2, 2, 2)
	nw.Constrain(0, 3, 0, 10)
	nw.Constrain(3, 2, 0, Inf)
	if !nw.Minimize() {
		t.Fatal("inconsistent")
	}
	sol, ok := nw.Solution()
	if !ok {
		t.Fatal("no anchored solution")
	}
	check := func(i, j int, lo, hi int64) {
		d := sol[j] - sol[i]
		if d < lo || d > hi {
			t.Fatalf("solution violates %d->%d in [%d,%d]: got %d", i, j, lo, hi, d)
		}
	}
	check(0, 1, 1, 5)
	check(1, 2, 2, 2)
	check(0, 3, 0, 10)
	if sol[2]-sol[3] < 0 {
		t.Fatal("solution violates 3->2 >= 0")
	}
}

func TestSolutionUnboundedVariable(t *testing.T) {
	nw := New(2) // variable 1 floats freely
	nw.Minimize()
	if _, ok := nw.Solution(); ok {
		t.Fatal("floating variable should have no anchored solution")
	}
}

func TestCloneAndEqual(t *testing.T) {
	nw := New(3)
	nw.Constrain(0, 1, 1, 2)
	c := nw.Clone()
	if !nw.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Constrain(1, 2, 0, 1)
	if nw.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if nw.Equal(New(4)) {
		t.Fatal("different sizes equal")
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	nw := New(5)
	nw.Constrain(0, 1, 1, 3)
	nw.Constrain(1, 2, 0, 4)
	nw.Constrain(0, 4, 2, 9)
	nw.Constrain(2, 3, 1, 1)
	nw.Minimize()
	c := nw.Clone()
	nw.Minimize()
	if !nw.Equal(c) {
		t.Fatal("Minimize not idempotent")
	}
}

func TestConstrainPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Constrain(0, 2, 0, 1)
}

// TestRandomConsistencyAgainstEnumeration cross-checks Minimize against a
// brute-force search over small integer assignments.
func TestRandomConsistencyAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Any consistent set of 4 difference constraints with |bound| <= 6 over
	// 4 variables has a solution of spread <= 18, and solutions translate
	// freely, so searching [0,19)^4 is exhaustive.
	const n, vmax = 4, 19
	for trial := 0; trial < 150; trial++ {
		nw := New(n)
		type con struct {
			i, j   int
			lo, hi int64
		}
		var cons []con
		for c := 0; c < 4; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			lo := int64(rng.Intn(7) - 3)
			hi := lo + int64(rng.Intn(4))
			nw.Constrain(i, j, lo, hi)
			cons = append(cons, con{i, j, lo, hi})
		}
		got := nw.Minimize()
		// Brute force: all assignments in [0,vmax)^n with t0 = 0.
		want := false
		var vals [n]int64
		var rec func(k int)
		rec = func(k int) {
			if want {
				return
			}
			if k == n {
				for _, c := range cons {
					d := vals[c.j] - vals[c.i]
					if d < c.lo || d > c.hi {
						return
					}
				}
				want = true
				return
			}
			for v := int64(0); v < vmax; v++ {
				vals[k] = v
				rec(k + 1)
			}
		}
		rec(0)
		if got != want {
			t.Fatalf("trial %d: Minimize=%v, brute force=%v (constraints %v)", trial, got, want, cons)
		}
	}
}

// TestBoundsAreTight verifies minimality: after Minimize, every finite
// bound is achieved by some solution (spot-checked via the earliest/latest
// solutions on chains).
func TestBoundsAreTight(t *testing.T) {
	f := func(a, b, c uint8) bool {
		lo1, w1 := int64(a%5), int64(b%4)
		lo2, w2 := int64(c%5), int64(a%3)
		nw := New(3)
		nw.Constrain(0, 1, lo1, lo1+w1)
		nw.Constrain(1, 2, lo2, lo2+w2)
		nw.Minimize()
		lo, hi := nw.Bounds(0, 2)
		return lo == lo1+lo2 && hi == lo1+w1+lo2+w2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConstrainRepairEqualsMinimize: on random minimal networks, an
// incremental repair produces exactly the matrix a full re-minimization
// would.
func TestConstrainRepairEqualsMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(4)
		nw := New(n)
		for c := 0; c < n; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			lo := int64(rng.Intn(9) - 4)
			nw.Constrain(i, j, lo, lo+int64(rng.Intn(5)))
		}
		if !nw.Minimize() {
			continue
		}
		// Apply one more random constraint both ways.
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		lo := int64(rng.Intn(9) - 4)
		hi := lo + int64(rng.Intn(5))

		full := nw.Clone()
		full.Constrain(i, j, lo, hi)
		fullOK := full.Minimize()

		inc := nw.Clone()
		incOK := inc.ConstrainRepair(i, j, lo, hi)

		if fullOK != incOK {
			t.Fatalf("trial %d: repair consistency %v != full %v", trial, incOK, fullOK)
		}
		if fullOK && !inc.Equal(full) {
			t.Fatalf("trial %d: repair matrix differs from full minimization", trial)
		}
	}
}

func TestConstrainRepairDetectsInconsistency(t *testing.T) {
	nw := New(2)
	nw.Constrain(0, 1, 5, 10)
	if !nw.Minimize() {
		t.Fatal("setup inconsistent")
	}
	if nw.ConstrainRepair(0, 1, -3, 2) {
		t.Fatal("conflicting repair accepted")
	}
}

func TestConstrainRepairPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw := New(2)
	nw.Minimize()
	nw.ConstrainRepair(0, 5, 0, 1)
}
