package stp_test

import (
	"fmt"

	"repro/internal/stp"
)

// Example composes two difference constraints to path consistency, the
// single-granularity engine inside each propagation group.
func Example() {
	nw := stp.New(3)
	nw.Constrain(0, 1, 1, 2) // t1 − t0 ∈ [1,2]
	nw.Constrain(1, 2, 3, 4) // t2 − t1 ∈ [3,4]
	if !nw.Minimize() {
		panic("inconsistent")
	}
	lo, hi := nw.Bounds(0, 2)
	fmt.Printf("t2 − t0 ∈ [%d,%d]\n", lo, hi)
	// An incremental tightening keeps the network minimal in O(n²).
	nw.ConstrainRepair(0, 2, 5, 5)
	lo, hi = nw.Bounds(0, 1)
	fmt.Printf("t1 − t0 ∈ [%d,%d]\n", lo, hi)
	// Output:
	// t2 − t0 ∈ [4,6]
	// t1 − t0 ∈ [1,2]
}
