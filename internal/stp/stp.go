// Package stp implements the Simple Temporal Problem of Dechter, Meiri and
// Pearl (the paper's [DMP91]): binary difference constraints
// lo <= t_j − t_i <= hi over integer variables, solved to path consistency
// with Floyd–Warshall on the distance graph. It is the single-granularity
// engine the approximate propagation algorithm runs within each granularity
// group.
package stp

import (
	"fmt"

	"repro/internal/engine"
)

// Inf is the distance-matrix infinity: no constraint. It is chosen so that
// Add(Inf, anything finite) cannot overflow int64.
const Inf = int64(1) << 60

// Add is overflow-safe addition in the tropical semiring: anything plus
// Inf is Inf.
func Add(a, b int64) int64 {
	if a >= Inf || b >= Inf {
		return Inf
	}
	return a + b
}

// Network is an STP instance over n variables. d[i][j] is the tightest
// known upper bound on t_j − t_i (Inf when unconstrained); the implied
// lower bound on t_j − t_i is −d[j][i].
type Network struct {
	n int
	d [][]int64
}

// New returns a network of n unconstrained variables.
func New(n int) *Network {
	if n < 0 {
		panic("stp: negative variable count")
	}
	d := make([][]int64, n)
	cells := make([]int64, n*n)
	for i := range d {
		d[i], cells = cells[:n], cells[n:]
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = Inf
			}
		}
	}
	return &Network{n: n, d: d}
}

// N returns the number of variables.
func (nw *Network) N() int { return nw.n }

// Constrain intersects the constraint lo <= t_j − t_i <= hi into the
// network. Pass hi = Inf for no upper bound and lo = -Inf for no lower
// bound. Indices must be in range (programming error otherwise).
func (nw *Network) Constrain(i, j int, lo, hi int64) {
	if i < 0 || j < 0 || i >= nw.n || j >= nw.n {
		panic(fmt.Sprintf("stp: index out of range (%d,%d) with n=%d", i, j, nw.n))
	}
	if hi < nw.d[i][j] {
		nw.d[i][j] = hi
	}
	if neg := negate(lo); neg < nw.d[j][i] {
		nw.d[j][i] = neg
	}
}

func negate(v int64) int64 {
	if v <= -Inf {
		return Inf
	}
	return -v
}

// Minimize runs Floyd–Warshall to the minimal (path-consistent) network.
// It returns false when the network is inconsistent (a negative cycle
// exists); the matrix contents are then unspecified.
func (nw *Network) Minimize() bool {
	ok, _ := nw.MinimizeExec(nil)
	return ok
}

// MinimizeExec is Minimize under an execution carrier: each relaxation row
// (one (k,i) pair of the Floyd–Warshall sweep) spends one budget unit, and
// the number of distance improvements is reported on the "stp.relaxations"
// counter. A budget or cancellation interruption returns the carrier's
// typed error with the matrix left in a sound-but-possibly-non-minimal
// state; the boolean is then meaningless.
func (nw *Network) MinimizeExec(ex *engine.Exec) (bool, error) {
	d := nw.d
	n := nw.n
	relaxed := int64(0)
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			if err := ex.Step(1); err != nil {
				ex.Count("stp.relaxations", relaxed)
				return false, err
			}
			dik := d[i][k]
			if dik >= Inf {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if v := Add(dik, dk[j]); v < di[j] {
					di[j] = v
					relaxed++
				}
			}
		}
	}
	ex.Count("stp.relaxations", relaxed)
	return nw.Consistent(), nil
}

// Consistent reports whether no variable has a negative self-distance. It
// is only meaningful after Minimize.
func (nw *Network) Consistent() bool {
	for i := 0; i < nw.n; i++ {
		if nw.d[i][i] < 0 {
			return false
		}
	}
	return true
}

// Bounds returns the tightest known bounds on t_j − t_i: lo may be -Inf
// (reported as -Inf value) and hi may be Inf.
func (nw *Network) Bounds(i, j int) (lo, hi int64) {
	hi = nw.d[i][j]
	lo = negate(nw.d[j][i])
	if lo == Inf { // negate(-Inf)
		lo = -Inf
	}
	return lo, hi
}

// Upper returns d[i][j], the upper bound on t_j − t_i.
func (nw *Network) Upper(i, j int) int64 { return nw.d[i][j] }

// Clone returns a deep copy.
func (nw *Network) Clone() *Network {
	c := New(nw.n)
	for i := 0; i < nw.n; i++ {
		copy(c.d[i], nw.d[i])
	}
	return c
}

// Equal reports whether two networks have identical matrices.
func (nw *Network) Equal(o *Network) bool {
	if nw.n != o.n {
		return false
	}
	for i := 0; i < nw.n; i++ {
		for j := 0; j < nw.n; j++ {
			if nw.d[i][j] != o.d[i][j] {
				return false
			}
		}
	}
	return true
}

// Solution returns one satisfying assignment of the minimized network,
// anchored at variable 0 = 0: the standard earliest-time solution
// t_i = −d[i][0]... A minimal STP admits t_i = d[0][i] (latest) and
// t_i = −d[i][0] (earliest); we return the earliest. Call only after a
// successful Minimize; ok=false if some variable is unbounded relative to
// variable 0 (still consistent, but no anchored finite solution).
func (nw *Network) Solution() ([]int64, bool) {
	out := make([]int64, nw.n)
	for i := 0; i < nw.n; i++ {
		if nw.d[i][0] >= Inf {
			return nil, false
		}
		out[i] = -nw.d[i][0]
	}
	return out, true
}

// ConstrainRepair intersects lo <= t_j − t_i <= hi into an ALREADY MINIMAL
// network and restores minimality incrementally in O(n²) (the standard
// single-constraint repair: every shortest distance either stays or now
// routes through the tightened arc). It returns false when the update
// makes the network inconsistent; the matrix contents are then
// unspecified.
//
// Calling it on a non-minimal network is a programming error: the repair
// only considers paths through the new arc.
func (nw *Network) ConstrainRepair(i, j int, lo, hi int64) bool {
	ok, _ := nw.ConstrainRepairExec(nil, i, j, lo, hi)
	return ok
}

// ConstrainRepairExec is ConstrainRepair under an execution carrier: each
// repaired arc spends n budget units (the row sweep's size) and
// improvements land on "stp.relaxations". On interruption the matrix is
// sound but possibly non-minimal, and the typed carrier error is returned.
func (nw *Network) ConstrainRepairExec(ex *engine.Exec, i, j int, lo, hi int64) (bool, error) {
	if i < 0 || j < 0 || i >= nw.n || j >= nw.n {
		panic(fmt.Sprintf("stp: index out of range (%d,%d) with n=%d", i, j, nw.n))
	}
	ok := true
	if hi < nw.d[i][j] {
		if err := ex.Step(int64(nw.n)); err != nil {
			return false, err
		}
		ok = nw.repairOne(ex, i, j, hi) && ok
	}
	if neg := negate(lo); neg < nw.d[j][i] {
		if err := ex.Step(int64(nw.n)); err != nil {
			return false, err
		}
		ok = nw.repairOne(ex, j, i, neg) && ok
	}
	return ok, nil
}

// repairOne lowers d[i][j] to w and propagates: d[a][b] may improve only
// via a path a..i -> j..b. Row i itself is handled by the sweep (a == i
// with d[i][i] == 0 triggers it), so d[i][j] must NOT be pre-assigned —
// that would mask row i's update.
func (nw *Network) repairOne(ex *engine.Exec, i, j int, w int64) bool {
	d := nw.d
	if i == j {
		if w < d[i][i] {
			d[i][i] = w
		}
		return nw.Consistent()
	}
	relaxed := int64(0)
	dj := d[j]
	for a := 0; a < nw.n; a++ {
		ai := d[a][i]
		if ai >= Inf {
			continue
		}
		aj := Add(ai, w)
		if aj >= d[a][j] {
			continue
		}
		da := d[a]
		da[j] = aj
		relaxed++
		for b := 0; b < nw.n; b++ {
			if v := Add(aj, dj[b]); v < da[b] {
				da[b] = v
				relaxed++
			}
		}
	}
	ex.Count("stp.relaxations", relaxed)
	return nw.Consistent()
}
