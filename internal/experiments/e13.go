package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/mining"
	"repro/internal/tag"
)

// E13 exercises the paper's Section-6 extensions end to end, beyond the
// prose that introduces them:
//
//   - granule-anchored references ("what happens in most weeks?");
//   - reference-type sets;
//   - repetitive patterns by structure unrolling, with the TAG growth the
//     unrolling costs;
//   - the parallel step-5 scan (identical results, wall-time change).
func E13(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E13",
		Title:  "Section-6 extensions",
		Header: []string{"extension", "setup", "result"},
	}
	sys := granularity.Default()
	seq := miningWorkload(3, 120, 0.9, 53)

	// 1. Granule-anchored references.
	withRefs, pseudo, err := mining.GranuleReferences(sys, seq, "week")
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	s := core.NewStructure()
	s.MustConstrain("Week", "X", core.MustTCG(0, 0, "week"))
	ds, stats, err := mining.Optimized(sys, mining.Problem{
		Structure:     s,
		MinConfidence: 0.7,
		Reference:     pseudo,
	}, withRefs, mining.PipelineOptions{Engine: eng})
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("granule anchors", fmt.Sprintf("%d week anchors, tau=0.7", stats.ReferenceOccurrences),
		fmt.Sprintf("%d types occur in >70%% of weeks", len(ds)))

	// 2. Reference sets: anchoring at either machine's overheat.
	p2 := mining.Problem{
		Structure:     cascadeStructure(),
		MinConfidence: 0.3,
		References:    []event.Type{"overheat-m0", "overheat-m1"},
	}
	ds2, stats2, err := mining.Optimized(sys, p2, seq, mining.PipelineOptions{Engine: eng})
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	t.AddRow("reference set", fmt.Sprintf("{overheat-m0, overheat-m1}, %d refs", stats2.ReferenceOccurrences),
		fmt.Sprintf("%d solutions across both roots", len(ds2)))

	// 3. Repetitive patterns: unroll the cascade's first arc 1x vs 3x.
	base := core.NewStructure()
	base.MustConstrain("A", "B", core.MustTCG(0, 0, "b-day"), core.MustTCG(1, 4, "hour"))
	for _, k := range []int{1, 2, 3} {
		u, err := core.Unroll(base, k, "B", []core.TCG{core.MustTCG(1, 1, "b-day")})
		if err != nil {
			t.Note("ERROR: %v", err)
			return t
		}
		assign := core.UnrollAssignment(k, map[core.Variable]event.Type{
			"A": "overheat-m0", "B": "malfunction-m0",
		})
		ct, err := core.NewComplexType(u, assign)
		if err != nil {
			t.Note("ERROR: %v", err)
			return t
		}
		a, err := tag.Compile(ct)
		if err != nil {
			t.Note("ERROR: %v", err)
			return t
		}
		ok, _ := a.Accepts(sys, seq, tag.RunOptions{Engine: engine.Config{Mode: eng.Mode}})
		t.AddRow("unroll", fmt.Sprintf("k=%d repetitions", k),
			fmt.Sprintf("TAG %d states / %d clocks, occurs=%v", a.NumStates(), len(a.Clocks()), ok))
	}

	// 4. Parallel scan equivalence + timing.
	p4 := mining.Problem{Structure: cascadeStructure(), MinConfidence: 0.5, Reference: "overheat-m0"}
	var serialDS, parDS []mining.Discovery
	serialT := bestOf(3, func() {
		serialDS, _, err = mining.Optimized(sys, p4, seq, mining.PipelineOptions{DisableCandidateScreening: true, DisablePairScreening: true, Engine: eng})
	})
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	parT := bestOf(3, func() {
		parDS, _, err = mining.Optimized(sys, p4, seq, mining.PipelineOptions{DisableCandidateScreening: true, DisablePairScreening: true, Workers: 8, Engine: eng})
	})
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	same := sameSolutionSet(serialDS, parDS)
	t.AddRow("parallel scan", "screening off to expose scan cost; 8 workers",
		fmt.Sprintf("identical=%v serial=%v parallel=%v", same, serialT, parT))
	if !same {
		t.Note("PARALLEL SCAN CHANGED SOLUTIONS")
	}
	return t
}
