package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/episode"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/mining"
	"repro/internal/propagate"
)

// miningWorkload builds the plant-cascade workload used by the mining
// experiments: overheat -> malfunction (same b-day, 1-4h) -> shutdown
// (next b-day) per machine, plus noise types.
func miningWorkload(machines, days int, cascade float64, seed int64) event.Sequence {
	return event.GeneratePlant(event.PlantFaultConfig{
		Machines:    machines,
		StartYear:   1996,
		Days:        days,
		Seed:        seed,
		CascadeProb: cascade,
	})
}

// cascadeStructure is the event structure of the planted cascade.
func cascadeStructure() *core.EventStructure {
	s := core.NewStructure()
	s.MustConstrain("X0", "X1", core.MustTCG(0, 0, "b-day"), core.MustTCG(1, 4, "hour"))
	s.MustConstrain("X1", "X2", core.MustTCG(1, 1, "b-day"))
	return s
}

// E7 compares the naive discovery algorithm against the optimized
// five-step pipeline (Section 5): candidate counts, TAG starts and wall
// time, with identical solution sets.
func E7(quick bool, eng engine.Config) Table {
	t := Table{
		ID:    "E7",
		Title: "Mining pipeline vs naive (Section 5)",
		Header: []string{"machines", "days", "algo", "candTotal", "candScanned",
			"refsScanned", "tagRuns", "solutions", "time"},
	}
	sizes := []struct{ machines, days int }{{2, 60}, {3, 90}}
	if quick {
		sizes = sizes[:1]
	}
	for _, sz := range sizes {
		seq := miningWorkload(sz.machines, sz.days, 0.75, 17)
		p := mining.Problem{
			Structure:     cascadeStructure(),
			MinConfidence: 0.5,
			Reference:     "overheat-m0",
		}
		sys := granularity.Default()
		var nd, od []mining.Discovery
		var ns, os mining.Stats
		var err error
		ndur := timed(func() { nd, ns, err = mining.Naive(sys, p, seq) })
		if err != nil {
			t.Note("ERROR: %v", err)
			continue
		}
		odur := timed(func() { od, os, err = mining.Optimized(sys, p, seq, mining.PipelineOptions{Engine: eng}) })
		if err != nil {
			t.Note("ERROR: %v", err)
			continue
		}
		t.AddRow(sz.machines, sz.days, "naive", ns.CandidatesTotal, ns.CandidatesScanned,
			ns.ReferencesScanned, ns.TagRuns, len(nd), ndur)
		t.AddRow(sz.machines, sz.days, "optimized", os.CandidatesTotal, os.CandidatesScanned,
			os.ReferencesScanned, os.TagRuns, len(od), odur)
		same := len(nd) == len(od)
		if same {
			seen := map[string]bool{}
			for _, d := range nd {
				seen[mining.AssignKey(d.Assign)] = true
			}
			for _, d := range od {
				if !seen[mining.AssignKey(d.Assign)] {
					same = false
				}
			}
		}
		t.Note("machines=%d: solution sets identical: %v, speedup %.1fx",
			sz.machines, same, float64(ndur)/float64(odur))
	}
	return t
}

// E8 quantifies the paper's central semantic point: translating [0,0]day
// into a naive 86400-second window (as a single-granularity system like
// MTV95 must) admits cross-midnight pairs the day constraint rejects. Both
// systems mine "B follows A"; TCG counts same-day pairs, the episode window
// counts <=86400s pairs; the difference is the baseline's false positives.
func E8(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E8",
		Title:  "[0,0]day vs 86400-second window (MTV95 baseline)",
		Header: []string{"crossMidnightBias", "refs", "sameDayMatches", "windowMatches", "falsePositives", "episodeFreq"},
	}
	sys := granularity.Default()
	biases := []float64{0.0, 0.5, 1.0}
	for _, bias := range biases {
		seq := crossMidnightWorkload(200, bias, 23)
		// TCG mining: A -> B within the same day.
		s := core.NewStructure()
		s.MustConstrain("X0", "X1", core.MustTCG(0, 0, "day"))
		p := mining.Problem{
			Structure:     s,
			MinConfidence: 0.0,
			Reference:     "A",
			Candidates:    map[core.Variable][]event.Type{"X1": {"B"}},
		}
		ds, stats, err := mining.Naive(sys, p, seq)
		if err != nil {
			t.Note("ERROR: %v", err)
			continue
		}
		sameDay := 0
		if len(ds) > 0 {
			sameDay = ds[0].Matches
		}
		// Window baseline: per reference, a B within 86400 seconds.
		window := 0
		for _, ta := range seq.Occurrences("A") {
			for _, e := range seq.Between(ta, ta+86399) {
				if e.Type == "B" {
					window++
					break
				}
			}
		}
		freq := episode.Frequency(seq, episode.NewSerial("A", "B"), 86400)
		t.AddRow(bias, stats.ReferenceOccurrences, sameDay, window, window-sameDay, freq)
	}
	t.Note("paper Section 3: [0,0]day is not [0,86399]second; false positives grow with the cross-midnight bias")
	return t
}

// crossMidnightWorkload plants A at a late-evening or random hour and B 2-5
// hours later; bias is the fraction of pairs planted so late that B crosses
// midnight.
func crossMidnightWorkload(pairs int, bias float64, seed int64) event.Sequence {
	rng := rand.New(rand.NewSource(seed))
	var s event.Sequence
	day0 := event.At(1996, 3, 1, 0, 0, 0)
	for i := 0; i < pairs; i++ {
		day := day0 + int64(i)*86400
		var ta int64
		if rng.Float64() < bias {
			ta = day + 22*3600 + rng.Int63n(3600) // 22:00-23:00
		} else {
			ta = day + 9*3600 + rng.Int63n(6*3600) // 09:00-15:00
		}
		tb := ta + 2*3600 + rng.Int63n(3*3600) // 2-5h later
		s = append(s, event.Event{Type: "A", Time: ta}, event.Event{Type: "B", Time: tb})
	}
	s.Sort()
	return s
}

// E9 measures the Figure-3 conversion's soundness and slack: for sampled
// constraints between standard granularity pairs, compare the converted
// interval against the empirically tightest interval (scanned over
// concrete timestamp pairs).
func E9(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E9",
		Title:  "Conversion tightness (Figure 3)",
		Header: []string{"conversion", "src [m,n]", "converted", "empirical tightest", "sound", "slack"},
	}
	sys := granularity.Default()
	cases := []struct {
		src, dst string
		m, n     int64
	}{
		{"hour", "day", 0, 0},
		{"hour", "day", 0, 48},
		{"day", "week", 0, 6},
		{"day", "week", 7, 7},
		{"day", "month", 0, 30},
		{"b-day", "week", 1, 1},
		{"b-day", "week", 0, 5},
		{"b-day", "month", 0, 21},
		{"week", "month", 0, 3},
		{"month", "year", 0, 11},
		{"month", "year", 11, 13},
	}
	if quick {
		cases = cases[:6]
	}
	for _, c := range cases {
		conv := propagate.NewConverter(sys, c.src, c.dst)
		lo, hi := conv.Interval(c.m, c.n)
		elo, ehi, samples := empiricalBounds(sys, c.src, c.dst, c.m, c.n)
		sound := lo <= elo && hi >= ehi && samples > 0
		slack := (elo - lo) + (hi - ehi)
		t.AddRow(
			fmt.Sprintf("%s->%s", c.src, c.dst),
			fmt.Sprintf("[%d,%d]", c.m, c.n),
			fmt.Sprintf("[%d,%d]", lo, hi),
			fmt.Sprintf("[%d,%d] (%d samples)", elo, ehi, samples),
			sound, slack,
		)
	}
	t.Note("sound must be true everywhere; slack is the approximation cost the paper accepts")
	return t
}

// empiricalBounds samples ordered timestamp pairs whose src granule
// difference lies in [m,n] and returns the observed dst difference range.
func empiricalBounds(sys *granularity.System, srcName, dstName string, m, n int64) (lo, hi int64, samples int) {
	src := sys.MustGet(srcName)
	dst := sys.MustGet(dstName)
	rng := rand.New(rand.NewSource(77))
	base := event.At(1995, 1, 1, 0, 0, 0)
	span := int64(3 * 365 * 86400)
	maxDelta := sys.Metrics(srcName).MaxSize(n+1) + 86400
	lo, hi = 1<<62, -(1 << 62)
	deadline := time.Now().Add(2 * time.Second)
	for trial := 0; trial < 300000 && samples < 4000; trial++ {
		if trial%4096 == 0 && time.Now().After(deadline) {
			break
		}
		t1 := base + rng.Int63n(span)
		t2 := t1 + rng.Int63n(maxDelta)
		z1, ok1 := src.TickOf(t1)
		z2, ok2 := src.TickOf(t2)
		if !ok1 || !ok2 {
			continue
		}
		d := z2 - z1
		if d < m || d > n {
			continue
		}
		w1, ok1 := dst.TickOf(t1)
		w2, ok2 := dst.TickOf(t2)
		if !ok1 || !ok2 {
			continue
		}
		dd := w2 - w1
		if dd < lo {
			lo = dd
		}
		if dd > hi {
			hi = dd
		}
		samples++
	}
	if samples == 0 {
		return 0, 0, 0
	}
	return lo, hi, samples
}
