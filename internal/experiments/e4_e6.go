package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/propagate"
	"repro/internal/tag"
)

// randomStructure builds a rooted DAG of n variables: a spine chain plus
// extra forward arcs, with TCGs drawn from the given granularities and
// ranges bounded by w.
func randomStructure(n int, grans []string, w int64, seed int64) *core.EventStructure {
	rng := rand.New(rand.NewSource(seed))
	s := core.NewStructure()
	v := func(i int) core.Variable { return core.Variable(fmt.Sprintf("X%d", i)) }
	for i := 1; i < n; i++ {
		g := grans[rng.Intn(len(grans))]
		lo := rng.Int63n(w/2 + 1)
		hi := lo + rng.Int63n(w/2+1)
		s.MustConstrain(v(i-1), v(i), core.MustTCG(lo, hi, g))
		// Occasional extra forward arc.
		if i >= 2 && rng.Float64() < 0.3 {
			j := rng.Intn(i - 1)
			g2 := grans[rng.Intn(len(grans))]
			s.MustConstrain(v(j), v(i), core.MustTCG(0, w*int64(i-j), g2))
		}
	}
	return s
}

// E4 measures propagation runtime while sweeping n (variables), |M|
// (granularities) and w (range magnitude): the shape must stay polynomial
// (Theorem 2's bound is O(n^5 |M|^2 w)).
func E4(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E4",
		Title:  "Propagation scaling (Theorem 2)",
		Header: []string{"n", "|M|", "w", "iterations", "time", "time/prev"},
	}
	granSets := [][]string{
		{"hour", "day"},
		{"hour", "day", "week"},
		{"hour", "day", "week", "month"},
	}
	ns := []int{4, 8, 16}
	if !quick {
		ns = []int{4, 8, 16, 32}
	}
	sys := granularity.Default()
	for gi, grans := range granSets {
		for _, w := range []int64{4, 16} {
			var prev time.Duration
			for _, n := range ns {
				s := randomStructure(n, grans, w, int64(n)*100+int64(gi))
				var r *propagate.Result
				var err error
				d := bestOf(3, func() {
					r, err = propagate.Run(sys, s, propagate.Options{Engine: eng})
				})
				if err != nil {
					t.Note("ERROR: %v", err)
					continue
				}
				ratio := "-"
				if prev > 0 {
					ratio = fmt.Sprintf("%.2f", float64(d)/float64(prev))
				}
				t.AddRow(n, len(grans), w, r.Iterations, d, ratio)
				prev = d
			}
		}
	}
	t.Note("time/prev compares to the previous n within the same (|M|, w) group;")
	t.Note("doubling n costs well under the 32x the O(n^5) bound allows")
	return t
}

// E5 reproduces Figure 2: compiling Example 1's complex event type yields
// the 6-state, 2-chain cross-product TAG the paper draws, in polynomial
// time (Theorem 3).
func E5(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E5",
		Title:  "TAG compilation (Figure 2, Theorem 3)",
		Header: []string{"structure", "chains p", "states", "transitions", "clocks", "compileTime"},
	}
	cases := []struct {
		name string
		s    *core.EventStructure
	}{
		{"Fig1a (Example 1)", core.Fig1a()},
		{"Fig1b", core.Fig1b()},
		{"chain n=6", randomStructure(6, []string{"day", "week"}, 4, 7)},
		{"chain n=10", randomStructure(10, []string{"day", "week"}, 4, 9)},
	}
	for _, c := range cases {
		chains, err := tag.Chains(c.s)
		if err != nil {
			t.Note("ERROR: %v", err)
			continue
		}
		var a *tag.TAG
		d := timed(func() {
			a, err = tag.FromChains(c.s, chains, nil)
		})
		if err != nil {
			t.Note("ERROR: %v", err)
			continue
		}
		t.AddRow(c.name, len(chains), a.NumStates(), a.NumTransitions(), len(a.Clocks()), d)
	}
	t.Note("paper's Figure 2 draws 6 states and p=2 chains for Example 1")
	return t
}

// E6 measures TAG acceptance cost while sweeping the sequence length and
// the constraint magnitude K: Theorem 4 bounds the frontier by
// (|V|K)^p, so for fixed pattern the cost is near-linear in the sequence.
func E6(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E6",
		Title:  "TAG matching cost (Theorem 4)",
		Header: []string{"events", "K(hours)", "accepted", "maxFrontier", "time", "ns/event"},
	}
	sys := granularity.Default()
	days := []int{30, 120, 480, 960}
	if quick {
		days = []int{30, 120}
	}
	for _, k := range []int64{8, 48} {
		// Example 1's structure with the hour window widened to K.
		s := core.NewStructure()
		s.MustConstrain("X0", "X1", core.MustTCG(1, 1, "b-day"))
		s.MustConstrain("X0", "X2", core.MustTCG(0, 5, "b-day"))
		s.MustConstrain("X1", "X3", core.MustTCG(0, 1, "week"))
		s.MustConstrain("X2", "X3", core.MustTCG(0, k, "hour"))
		// X3 is mapped to a type absent from the workload so every run
		// scans the full sequence (no early accept) and the per-event cost
		// is measured over all of it.
		assign := core.Example1Assignment()
		assign["X3"] = "IBM-split"
		ct, err := core.NewComplexType(s, assign)
		if err != nil {
			t.Note("ERROR: %v", err)
			return t
		}
		a, err := tag.Compile(ct)
		if err != nil {
			t.Note("ERROR: %v", err)
			return t
		}
		for _, nd := range days {
			seq := event.GenerateStock(event.StockConfig{
				Symbols: []string{"IBM", "HP"}, StartYear: 1996, Days: nd, Seed: 11, MoveProb: 0.15,
			})
			var ok bool
			var stats tag.RunStats
			d := bestOf(3, func() {
				ok, stats = a.Accepts(sys, seq, tag.RunOptions{Engine: eng})
			})
			perEvent := "-"
			if stats.Steps > 0 {
				perEvent = fmt.Sprint(int64(d) / int64(stats.Steps))
			}
			t.AddRow(len(seq), k, ok, stats.MaxFrontier, d, perEvent)
		}
	}
	t.Note("ns/event stays flat as |sigma| grows; the frontier is bounded by the pattern")
	t.Note("((|V|K)^p in Theorem 4, further capped by dead-run pruning), never by |sigma|")
	return t
}
