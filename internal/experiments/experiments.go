// Package experiments regenerates every table of EXPERIMENTS.md: one
// experiment per figure/theorem/claim of the paper, as indexed in
// DESIGN.md. Each experiment is a pure function from a seed to a Table, so
// `cmd/experiments` and the root benchmarks print exactly the same rows.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/engine"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as GitHub-flavored Markdown.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a named experiment runner. Quick trims sweeps for test and
// benchmark use; the cmd runner passes quick=false. The engine.Config is
// threaded into every solver call the experiment makes (each call starts
// its own carrier, so a budget bounds individual solves); the zero value
// reproduces the historical unbounded, silent behaviour.
type Experiment struct {
	ID   string
	Run  func(quick bool, eng engine.Config) Table
	Desc string
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1, "Figure 1(a): propagation derives the paper's Γ'(X0,X3)"},
		{"E2", E2, "Figure 1(b): the implicit disjunction {0,12} months"},
		{"E3", E3, "Theorem 1: SUBSET-SUM reduction, exact vs approximate cost"},
		{"E4", E4, "Theorem 2: propagation runtime scaling"},
		{"E5", E5, "Figure 2 / Theorem 3: TAG compilation shape and cost"},
		{"E6", E6, "Theorem 4: TAG matching runtime vs sequence length and K"},
		{"E7", E7, "Section 5: optimized mining pipeline vs naive"},
		{"E8", E8, "Granularity semantics vs MTV95 window baseline"},
		{"E9", E9, "Figure 3: conversion soundness and tightness"},
		{"E10", E10, "Example 2: discovery precision/recall on planted patterns"},
		{"E11", E11, "Ablation: chain cover quality (the p exponent)"},
		{"E12", E12, "Ablation: pipeline steps contribution"},
		{"E13", E13, "Section-6 extensions: anchors, reference sets, unrolling, parallel scan"},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// timed measures f.
func timed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// bestOf runs f n times (after one untimed warm-up to populate the
// granularity caches) and returns the fastest measurement.
func bestOf(n int, f func()) time.Duration {
	f()
	best := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		if d := timed(f); d < best {
			best = d
		}
	}
	return best
}
