package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/granularity"
	"repro/internal/hardness"
	"repro/internal/propagate"
)

// E1 reproduces the paper's Section-5.1 prose around Figure 1(a): the
// constraints propagation derives on (X0, X3) and the other pairs. The
// paper quotes Γ'(X0,X3) ⊇ {[0,1]week, [1,175]hour} from tables it does not
// publish; our Figure-3 tables (second primitive) derive [0,2]week and
// [0,200]hour. EXPERIMENTS.md analyzes the difference — the paper's hour
// upper bound 175 excludes realizable scenarios (the true tightest is 199),
// so it cannot come from a sound conversion.
func E1(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E1",
		Title:  "Figure 1(a) derived constraints",
		Header: []string{"pair", "granularity", "derived", "paper"},
	}
	sys := granularity.Default()
	s := core.Fig1a()
	r, err := propagate.Run(sys, s, propagate.Options{Engine: eng})
	if err != nil {
		t.Note("ERROR: %v", err)
		return t
	}
	paper := map[string]string{
		"X0,X3 week": "[0,1]week",
		"X0,X3 hour": "[1,175]hour",
	}
	pairs := [][2]core.Variable{{"X0", "X1"}, {"X0", "X2"}, {"X0", "X3"}, {"X1", "X3"}, {"X2", "X3"}}
	for _, p := range pairs {
		for _, b := range r.DerivedBounds(p[0], p[1]) {
			if b.Gran == "second" {
				continue // order-group bookkeeping, not a paper constraint
			}
			key := fmt.Sprintf("%s,%s %s", p[0], p[1], b.Gran)
			t.AddRow(fmt.Sprintf("(%s,%s)", p[0], p[1]), b.Gran, b.String(), paper[key])
		}
	}
	t.Note("consistent=%v iterations=%d", r.Consistent, r.Iterations)
	t.Note("paper values come from unpublished tables; see EXPERIMENTS.md E1 for the soundness analysis")
	// Ablation of this implementation's order group (the "second" group
	// carrying the TCGs' t1<=t2 facts across granularities).
	r2, err := propagate.Run(sys, s, propagate.Options{DisableOrderGroup: true})
	if err == nil && r2.Consistent {
		hb, _ := r.Bounds("hour", "X0", "X3")
		hb2, _ := r2.Bounds("hour", "X0", "X3")
		t.Note("order-group ablation: hour bound (X0,X3) %s with order facts vs %s without", hb, hb2)
	}
	return t
}

// E2 reproduces Section 3.1 / Figure 1(b): the granularities imply the
// disjunction X2−X0 ∈ {0,12} months. The exact solver confirms exactly the
// distances 0 and 12 are realizable while the approximate propagation keeps
// the whole interval [0,12] — the approximation gap the paper describes.
func E2(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E2",
		Title:  "Figure 1(b) implicit disjunction",
		Header: []string{"pinned X2-X0 (months)", "exact satisfiable", "propagation verdict"},
	}
	sys := granularity.Default()
	start := int64(1)
	end, _ := granularity.Year().Span(5)
	distances := []int64{0, 1, 5, 6, 11, 12}
	if !quick {
		distances = []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	}
	for _, d := range distances {
		s := core.Fig1b()
		s.MustConstrain("X0", "X2", core.MustTCG(d, d, "month"))
		v, err := exact.Solve(sys, s, exact.Options{Start: start, End: end.Last, Engine: eng})
		if err != nil {
			t.Note("ERROR at d=%d: %v", d, err)
			continue
		}
		r, err := propagate.Run(sys, s, propagate.Options{Engine: eng})
		if err != nil {
			t.Note("ERROR at d=%d: %v", d, err)
			continue
		}
		verdict := "consistent (approx)"
		if !r.Consistent {
			verdict = "refuted"
		}
		t.AddRow(d, v.Satisfiable, verdict)
	}
	t.Note("paper: only 0 and 12 are realizable; the sound approximation refutes some but not all")
	t.Note("of 1..11 (conversion slack keeps 1 and 2 alive), while the exact solver refutes them all")
	return t
}

// E3 exercises the Theorem-1 reduction: for pairwise-coprime SUBSET-SUM
// instances, reduced-structure consistency (exact, bounded horizon) agrees
// with the DP solver, witnesses decode to subsets, and the exact search
// cost grows steeply with k while propagation stays flat.
func E3(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E3",
		Title:  "SUBSET-SUM reduction (Theorem 1)",
		Header: []string{"k", "instance", "solvable(DP)", "consistent(exact)", "agree", "nodes", "exactTime", "propTime"},
	}
	ks := []int{2, 3}
	if !quick {
		ks = []int{2, 3, 4}
	}
	for _, k := range ks {
		for _, solvable := range []bool{true, false} {
			in := hardness.Generate(k, solvable, int64(40+k))
			sys := granularity.Default()
			s, err := hardness.Reduce(in, sys)
			if err != nil {
				t.Note("ERROR: %v", err)
				continue
			}
			var propDur time.Duration
			propDur = timed(func() {
				_, err = propagate.Run(sys, s, propagate.Options{Engine: eng})
			})
			if err != nil {
				t.Note("ERROR: %v", err)
				continue
			}
			start, end := hardness.Horizon(in)
			var v *exact.Verdict
			exactDur := timed(func() {
				v, err = exact.Solve(sys, s, exact.Options{Start: start, End: end, Engine: eng})
			})
			if err != nil {
				t.Note("ERROR on %v: %v", in, err)
				continue
			}
			agree := v.Satisfiable == solvable
			if v.Satisfiable {
				if _, ok := hardness.ExtractSubset(in, v.Witness); !ok {
					agree = false
				}
			}
			t.AddRow(k, in.String(), solvable, v.Satisfiable, agree, v.Nodes, exactDur, propDur)
		}
	}
	t.Note("exact nodes grow steeply with k (NP-hard); propagation is polynomial and never refutes these gadgets")
	return t
}
