package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/mining"
	"repro/internal/tag"
)

// E10 measures discovery precision and recall on the plant workload: the
// cascade pattern is planted at a known per-reference rate; the discovery
// problem must recover exactly the planted assignment above the matching
// confidence and nothing else.
func E10(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E10",
		Title:  "Discovery precision/recall (Example 2 style)",
		Header: []string{"cascadeProb", "tau", "solutions", "plantedFound", "plantedFreq", "precision"},
	}
	sys := granularity.Default()
	probs := []float64{0.9, 0.6, 0.3}
	if quick {
		probs = probs[:2]
	}
	for _, cp := range probs {
		seq := miningWorkload(2, 90, cp, 31)
		for _, tau := range []float64{0.5, 0.2} {
			p := mining.Problem{
				Structure:     cascadeStructure(),
				MinConfidence: tau,
				Reference:     "overheat-m0",
			}
			ds, _, err := mining.Optimized(sys, p, seq, mining.PipelineOptions{Engine: eng})
			if err != nil {
				t.Note("ERROR: %v", err)
				continue
			}
			plantedKey := mining.AssignKey(map[core.Variable]event.Type{
				"X0": "overheat-m0", "X1": "malfunction-m0", "X2": "shutdown-m0",
			})
			found := false
			freq := 0.0
			correct := 0
			for _, d := range ds {
				key := mining.AssignKey(d.Assign)
				if key == plantedKey {
					found = true
					freq = d.Frequency
				}
				if strings.Contains(key, "malfunction-m0") && strings.Contains(key, "shutdown-m0") {
					correct++
				}
			}
			precision := 0.0
			if len(ds) > 0 {
				precision = float64(correct) / float64(len(ds))
			}
			t.AddRow(cp, tau, len(ds), found, freq, precision)
		}
	}
	t.Note("the planted assignment's measured frequency tracks the cascade probability;")
	t.Note("it is recovered whenever cascadeProb > tau and absent when cascadeProb < tau")
	return t
}

// E11 ablates the chain cover: compiling the same structures from the
// greedy cover versus the naive one-chain-per-arc cover shows how the p
// exponent of Theorem 4 inflates states, transitions and match effort.
func E11(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E11",
		Title:  "Chain-cover ablation (Theorem 4's p)",
		Header: []string{"structure", "cover", "p", "states", "transitions", "clocks", "maxFrontier", "matchTime"},
	}
	sys := granularity.Default()
	cases := []struct {
		name string
		s    *core.EventStructure
	}{
		{"Fig1a", core.Fig1a()},
		{"double diamond", doubleDiamond()},
	}
	for _, c := range cases {
		for _, cover := range []string{"minimum", "greedy", "per-arc"} {
			var chains [][]core.Variable
			var err error
			name := cover
			switch cover {
			case "minimum":
				chains, err = tag.MinChains(c.s)
			case "per-arc":
				chains, err = tag.NaiveChains(c.s)
			default:
				chains, err = tag.Chains(c.s)
			}
			if err != nil {
				t.Note("ERROR: %v", err)
				continue
			}
			a, err := tag.FromChains(c.s, chains, nil)
			if err != nil {
				t.Note("ERROR: %v", err)
				continue
			}
			seq := variableSymbolWorkload(c.s, 400)
			var stats tag.RunStats
			d := bestOf(3, func() {
				_, stats = a.Accepts(sys, seq, tag.RunOptions{Engine: eng})
			})
			t.AddRow(c.name, name, len(chains), a.NumStates(), a.NumTransitions(), len(a.Clocks()), stats.MaxFrontier, d)
		}
	}
	t.Note("the per-arc cover inflates p (and clocks) exactly as Theorem 4 predicts;")
	t.Note("the min-flow cover is provably smallest (here it matches greedy)")
	return t
}

// E12 ablates the optimized pipeline: disabling each step shows its
// contribution to candidate, reference and TAG-run counts.
func E12(quick bool, eng engine.Config) Table {
	t := Table{
		ID:     "E12",
		Title:  "Pipeline-step ablation (Section 5 steps 2-4)",
		Header: []string{"variant", "candScanned", "refsScanned", "reducedEvents", "tagRuns", "time", "solutions"},
	}
	sys := granularity.Default()
	seq := miningWorkload(2, 90, 0.75, 41)
	p := mining.Problem{
		Structure:     cascadeStructure(),
		MinConfidence: 0.5,
		Reference:     "overheat-m0",
	}
	variants := []struct {
		name string
		opt  mining.PipelineOptions
	}{
		{"full pipeline", mining.PipelineOptions{}},
		{"no sequence reduction", mining.PipelineOptions{DisableSequenceReduction: true}},
		{"no reference pruning", mining.PipelineOptions{DisableReferencePruning: true}},
		{"no k=1 screening", mining.PipelineOptions{DisableCandidateScreening: true}},
		{"no k=2 screening", mining.PipelineOptions{DisablePairScreening: true}},
		{"none (naive w/ windows)", mining.PipelineOptions{
			DisableSequenceReduction: true, DisableReferencePruning: true,
			DisableCandidateScreening: true, DisablePairScreening: true,
		}},
	}
	var baseline []mining.Discovery
	for i, v := range variants {
		v.opt.Engine = eng
		var ds []mining.Discovery
		var st mining.Stats
		var err error
		d := bestOf(3, func() {
			ds, st, err = mining.Optimized(sys, p, seq, v.opt)
		})
		if err != nil {
			t.Note("ERROR: %v", err)
			continue
		}
		if i == 0 {
			baseline = ds
		} else if !sameSolutionSet(baseline, ds) {
			t.Note("VARIANT %q CHANGED SOLUTIONS — ablation must be lossless", v.name)
		}
		t.AddRow(v.name, st.CandidatesScanned, st.ReferencesScanned, st.ReducedEvents, st.TagRuns, d, len(ds))
	}
	t.Note("every variant returns the same solutions; the steps only shed work")
	return t
}

func sameSolutionSet(a, b []mining.Discovery) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, d := range a {
		set[mining.AssignKey(d.Assign)] = true
	}
	for _, d := range b {
		if !set[mining.AssignKey(d.Assign)] {
			return false
		}
	}
	return true
}

// doubleDiamond is a 6-variable structure with two diamonds in sequence.
func doubleDiamond() *core.EventStructure {
	s := core.NewStructure()
	s.MustConstrain("X0", "X1", core.MustTCG(0, 2, "day"))
	s.MustConstrain("X0", "X2", core.MustTCG(0, 3, "day"))
	s.MustConstrain("X1", "X3", core.MustTCG(0, 1, "week"))
	s.MustConstrain("X2", "X3", core.MustTCG(0, 72, "hour"))
	s.MustConstrain("X3", "X4", core.MustTCG(0, 2, "day"))
	s.MustConstrain("X3", "X5", core.MustTCG(0, 3, "day"))
	s.MustConstrain("X4", "X5", core.MustTCG(0, 48, "hour"))
	return s
}

// variableSymbolWorkload emits a stream over the structure's variable names
// as types, so variable-symbol TAGs have realistic input.
func variableSymbolWorkload(s *core.EventStructure, n int) event.Sequence {
	var seq event.Sequence
	vars := s.Variables()
	t := event.At(1996, 2, 5, 0, 0, 0)
	for i := 0; i < n; i++ {
		v := vars[i%len(vars)]
		t += int64(1800 + (i%7)*3600)
		seq = append(seq, event.Event{Type: event.Type(v), Time: t})
	}
	return seq
}
