package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode: they
// must produce rows, contain no ERROR notes, and render.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(true, engine.Config{})
			if tab.ID != e.ID {
				t.Fatalf("table ID %q != experiment %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("%s row width %d != header %d", e.ID, len(row), len(tab.Header))
				}
			}
			for _, n := range tab.Notes {
				if strings.Contains(n, "ERROR") {
					t.Fatalf("%s note: %s", e.ID, n)
				}
				if strings.Contains(n, "CHANGED SOLUTIONS") {
					t.Fatalf("%s ablation lost solutions: %s", e.ID, n)
				}
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatalf("render lost the ID")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e7"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Find("E99"); ok {
		t.Fatal("unknown experiment found")
	}
}

// TestE1ValuesStable pins the headline E1 numbers: the derived (X0,X3)
// bounds are part of the reproduction's contract.
func TestE1ValuesStable(t *testing.T) {
	tab := E1(true, engine.Config{})
	var week, hour string
	for _, row := range tab.Rows {
		if row[0] == "(X0,X3)" && row[1] == "week" {
			week = row[2]
		}
		if row[0] == "(X0,X3)" && row[1] == "hour" {
			hour = row[2]
		}
	}
	if week != "[0,2]week" {
		t.Fatalf("E1 week bound = %q, want [0,2]week", week)
	}
	if hour != "[0,200]hour" {
		t.Fatalf("E1 hour bound = %q, want [0,200]hour", hour)
	}
}

// TestE2Disjunction pins E2's semantics: only 0 and 12 satisfiable.
func TestE2Disjunction(t *testing.T) {
	tab := E2(true, engine.Config{})
	for _, row := range tab.Rows {
		d, sat := row[0], row[1]
		want := "false"
		if d == "0" || d == "12" {
			want = "true"
		}
		if sat != want {
			t.Fatalf("E2 distance %s: satisfiable=%s, want %s", d, sat, want)
		}
	}
}

// TestE9AllSound pins E9's soundness column.
func TestE9AllSound(t *testing.T) {
	tab := E9(true, engine.Config{})
	for _, row := range tab.Rows {
		if row[4] != "true" {
			t.Fatalf("E9 conversion %s %s unsound: converted %s, empirical %s", row[0], row[1], row[2], row[3])
		}
	}
}

// TestE8FalsePositivesGrow pins E8's shape: the window baseline's false
// positives increase with the cross-midnight bias and are zero only at
// bias 0... even at bias 0 a 2-5h follow-up near 22h can cross; the planted
// daytime pairs cannot, so bias 0 is exactly zero.
func TestE8FalsePositivesGrow(t *testing.T) {
	tab := E8(true, engine.Config{})
	if len(tab.Rows) != 3 {
		t.Fatalf("E8 rows = %d", len(tab.Rows))
	}
	var fps []string
	for _, row := range tab.Rows {
		fps = append(fps, row[4])
	}
	if fps[0] != "0" {
		t.Fatalf("bias 0 should have no false positives, got %s", fps[0])
	}
	if fps[2] == "0" {
		t.Fatal("bias 1 should have false positives")
	}
}

// TestE13UnrollLinearGrowth pins the unrolling rows: TAG states grow
// linearly (2k+1) in the repetition count.
func TestE13UnrollLinearGrowth(t *testing.T) {
	tab := E13(true, engine.Config{})
	got := map[string]string{}
	for _, row := range tab.Rows {
		if row[0] == "unroll" {
			got[row[1]] = row[2]
		}
	}
	for k, wantStates := range map[string]string{"k=1 repetitions": "TAG 3 states", "k=2 repetitions": "TAG 5 states", "k=3 repetitions": "TAG 7 states"} {
		if !strings.HasPrefix(got[k], wantStates) {
			t.Fatalf("%s: %q, want prefix %q", k, got[k], wantStates)
		}
	}
}
