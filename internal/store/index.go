package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// The sparse per-granularity tick index. For every indexed granularity,
// a segment carries one entry per distinct granule ("tick") observed in
// its records: the tick, the segment-relative record ordinal of the first
// record in that tick, and its byte offset. Ticks are computed through
// granularity.System's periodic tables (System.Ticker), so on the hot
// append path an index update is O(1) span arithmetic. The index is
// derived data: a missing or corrupt sidecar is rebuilt by scanning the
// segment, never trusted and never fatal.
//
// Sidecar file (seg-<base>.idx):
//
//	magic "TIDX1" (5 bytes) | version (1 byte)
//	payloadLen (4 bytes LE) | crc32c(payload) (4 bytes LE) | payload
//
// Payload:
//
//	uvarint granCount, then per granularity:
//	    uvarint len(name), name bytes, uvarint entryCount,
//	    then per entry: uvarint tick, uvarint record, uvarint offset

// tickEntry marks the first record of one granule within a segment.
type tickEntry struct {
	Tick int64 // granule number (>= 1)
	Rec  int64 // segment-relative record ordinal (0-based)
	Off  int64 // byte offset of the record in the segment file
}

// segIndex is one segment's sparse index: granularity name -> entries in
// ascending tick (== ascending record) order.
type segIndex map[string][]tickEntry

// encodeIndex renders a segment index as a sidecar file image.
func encodeIndex(idx segIndex) []byte {
	names := make([]string, 0, len(idx))
	for name := range idx {
		names = append(names, name)
	}
	sort.Strings(names)

	var payload []byte
	var b [binary.MaxVarintLen64]byte
	putUv := func(v int64) {
		n := binary.PutUvarint(b[:], uint64(v))
		payload = append(payload, b[:n]...)
	}
	putUv(int64(len(names)))
	for _, name := range names {
		putUv(int64(len(name)))
		payload = append(payload, name...)
		entries := idx[name]
		putUv(int64(len(entries)))
		for _, e := range entries {
			putUv(e.Tick)
			putUv(e.Rec)
			putUv(e.Off)
		}
	}

	out := append([]byte(nil), idxMagic...)
	out = append(out, segVersion)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	out = append(out, hdr[:]...)
	return append(out, payload...)
}

// decodeIndex parses a sidecar image. Any violation returns an error; the
// caller rebuilds from the segment instead.
func decodeIndex(data []byte) (segIndex, error) {
	if len(data) < 6+8 {
		return nil, fmt.Errorf("%w: index file short", ErrTorn)
	}
	if string(data[:5]) != string(idxMagic) {
		return nil, fmt.Errorf("%w: bad index magic %q", ErrCorrupt, data[:5])
	}
	if data[5] != segVersion {
		return nil, fmt.Errorf("%w: index version %d", ErrCorrupt, data[5])
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[6:10]))
	wantCRC := binary.LittleEndian.Uint32(data[10:14])
	if payloadLen != len(data)-14 {
		return nil, fmt.Errorf("%w: index payload length %d of %d", ErrTorn, payloadLen, len(data)-14)
	}
	payload := data[14:]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: index crc mismatch", ErrCorrupt)
	}

	pos := 0
	getUv := func() (int64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 || v > 1<<62 {
			return 0, fmt.Errorf("%w: bad index varint", ErrCorrupt)
		}
		pos += n
		return int64(v), nil
	}
	nGrans, err := getUv()
	if err != nil || nGrans > 1<<16 {
		return nil, fmt.Errorf("%w: implausible granularity count", ErrCorrupt)
	}
	idx := segIndex{}
	for g := int64(0); g < nGrans; g++ {
		nameLen, err := getUv()
		if err != nil || nameLen > maxTypeLen || pos+int(nameLen) > len(payload) {
			return nil, fmt.Errorf("%w: bad index name", ErrCorrupt)
		}
		name := string(payload[pos : pos+int(nameLen)])
		pos += int(nameLen)
		nEntries, err := getUv()
		if err != nil || nEntries > 1<<30 {
			return nil, fmt.Errorf("%w: implausible entry count", ErrCorrupt)
		}
		entries := make([]tickEntry, 0, nEntries)
		var prev tickEntry
		for i := int64(0); i < nEntries; i++ {
			var e tickEntry
			if e.Tick, err = getUv(); err != nil {
				return nil, err
			}
			if e.Rec, err = getUv(); err != nil {
				return nil, err
			}
			if e.Off, err = getUv(); err != nil {
				return nil, err
			}
			if i > 0 && (e.Tick <= prev.Tick || e.Rec <= prev.Rec || e.Off <= prev.Off) {
				return nil, fmt.Errorf("%w: index entries not ascending", ErrCorrupt)
			}
			prev = e
			entries = append(entries, e)
		}
		idx[name] = entries
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: trailing index bytes", ErrCorrupt)
	}
	return idx, nil
}

// buildIndex computes a segment's index from its scanned events, using
// the store's resolved tickers.
func (s *Store) buildIndex(sc ScanResult) segIndex {
	idx := segIndex{}
	if len(s.tickers) == 0 {
		return idx
	}
	off := int64(segHeaderSize)
	last := map[string]int64{}
	for rec, ev := range sc.Events {
		for name, tick := range s.ticks(ev.Time) {
			if prev, ok := last[name]; !ok || tick != prev {
				idx[name] = append(idx[name], tickEntry{Tick: tick, Rec: int64(rec), Off: off})
				last[name] = tick
			}
		}
		off += recordSize(ev)
	}
	return idx
}

// ticks maps a timestamp to its granule in every indexed granularity
// (granularities not covering the second are omitted).
func (s *Store) ticks(t int64) map[string]int64 {
	out := make(map[string]int64, len(s.tickers))
	for name, tick := range s.tickers {
		if z, ok := tick(t); ok {
			out[name] = z
		}
	}
	return out
}

// writeIndexFile persists a segment's sidecar: create, write, fsync, and
// fsync the directory. Sidecars are advisory, so the caller may treat
// failures as non-fatal.
func (s *Store) writeIndexFile(name string, idx segIndex) error {
	path := s.join(name)
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeIndex(idx)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fsys.SyncDir(s.dir)
}
