package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/event"
)

// On-disk formats.
//
// Segment file:
//
//	magic "TSEG1" (5 bytes) | version (1 byte) | baseIndex (8 bytes LE)
//	record*
//
// Record:
//
//	payloadLen (4 bytes LE) | crc32c(payload) (4 bytes LE) | payload
//
// Record payload (one event):
//
//	uvarint time | uvarint len(type) | type bytes
//
// Times are absolute (no deltas): every record decodes on its own, so a
// scan that stops at the first torn or corrupt record loses nothing
// before it. CRC32C (Castagnoli) detects torn and bit-flipped payloads; a
// torn length field is caught by the remaining-bytes and cap checks.

var (
	segMagic = []byte("TSEG1")
	idxMagic = []byte("TIDX1")
)

const (
	segVersion    = 1
	segHeaderSize = 5 + 1 + 8
	recHeaderSize = 8
	// maxRecordPayload caps a single record; anything larger is corruption
	// (event types are capped far below this).
	maxRecordPayload = 1 << 16
	// maxTypeLen mirrors the event binary codec's plausibility cap.
	maxTypeLen = 4096
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a record cut off by a torn write (recoverable: truncate
// and continue). ErrCorrupt reports a record that is present but wrong
// (CRC mismatch, malformed payload).
var (
	ErrTorn    = errors.New("store: torn record")
	ErrCorrupt = errors.New("store: corrupt record")
)

// appendSegmentHeader appends a segment header for baseIndex to dst.
func appendSegmentHeader(dst []byte, baseIndex int64) []byte {
	dst = append(dst, segMagic...)
	dst = append(dst, segVersion)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(baseIndex))
	return append(dst, b[:]...)
}

// parseSegmentHeader reads a segment header, returning the base index.
func parseSegmentHeader(data []byte) (baseIndex int64, err error) {
	if len(data) < segHeaderSize {
		return 0, fmt.Errorf("%w: segment header short (%d bytes)", ErrTorn, len(data))
	}
	if string(data[:5]) != string(segMagic) {
		return 0, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, data[:5])
	}
	if data[5] != segVersion {
		return 0, fmt.Errorf("%w: segment version %d, this build reads %d", ErrCorrupt, data[5], segVersion)
	}
	base := int64(binary.LittleEndian.Uint64(data[6:14]))
	if base < 0 {
		return 0, fmt.Errorf("%w: negative base index %d", ErrCorrupt, base)
	}
	return base, nil
}

// appendRecord appends one framed event record to dst.
func appendRecord(dst []byte, ev event.Event) []byte {
	var scratch [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(ev.Time))
	n += binary.PutUvarint(scratch[n:], uint64(len(ev.Type)))
	payloadLen := n + len(ev.Type)

	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	start := len(dst)
	dst = append(dst, hdr[:]...)
	dst = append(dst, scratch[:n]...)
	dst = append(dst, ev.Type...)
	crc := crc32.Checksum(dst[start+recHeaderSize:], crcTable)
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc)
	return dst
}

// recordSize returns the framed size of an event record.
func recordSize(ev event.Event) int64 {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(ev.Time))
	n += binary.PutUvarint(scratch[:], uint64(len(ev.Type)))
	return int64(recHeaderSize + n + len(ev.Type))
}

// uvarintLen is the minimal encoded length of v; decoding rejects padded
// (non-minimal) varints so every record has exactly one byte encoding and
// decode∘encode is the identity on valid prefixes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// parseRecord decodes the record at the head of data. It returns the
// event and the framed length consumed. A short or overlong frame is
// ErrTorn; a CRC or payload violation is ErrCorrupt.
func parseRecord(data []byte) (ev event.Event, n int, err error) {
	if len(data) < recHeaderSize {
		return event.Event{}, 0, fmt.Errorf("%w: %d header bytes", ErrTorn, len(data))
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:4]))
	if payloadLen > maxRecordPayload {
		return event.Event{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, payloadLen)
	}
	if len(data) < recHeaderSize+payloadLen {
		return event.Event{}, 0, fmt.Errorf("%w: payload needs %d bytes, have %d", ErrTorn, payloadLen, len(data)-recHeaderSize)
	}
	payload := data[recHeaderSize : recHeaderSize+payloadLen]
	wantCRC := binary.LittleEndian.Uint32(data[4:8])
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return event.Event{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	t, m := binary.Uvarint(payload)
	if m <= 0 || m != uvarintLen(t) || t == 0 || t > 1<<62 {
		return event.Event{}, 0, fmt.Errorf("%w: bad timestamp", ErrCorrupt)
	}
	tl, k := binary.Uvarint(payload[m:])
	if k <= 0 || k != uvarintLen(tl) || tl == 0 || tl > maxTypeLen {
		return event.Event{}, 0, fmt.Errorf("%w: bad type length", ErrCorrupt)
	}
	if int(tl) != payloadLen-m-k {
		return event.Event{}, 0, fmt.Errorf("%w: type length %d does not fill payload", ErrCorrupt, tl)
	}
	typ := string(payload[m+k:])
	return event.Event{Time: int64(t), Type: event.Type(typ)}, recHeaderSize + payloadLen, nil
}

// ScanResult is one segment's decoded content plus where (and why) the
// scan stopped.
type ScanResult struct {
	BaseIndex int64
	Events    []event.Event
	// Good is the byte length of the valid prefix (header + whole records).
	Good int64
	// Err is nil when the segment decoded to its end, ErrTorn/ErrCorrupt
	// (wrapped, with detail) when the scan stopped early.
	Err error
}

// ScanSegment decodes a whole segment image record by record, stopping at
// the first torn or corrupt record. It never panics on arbitrary input.
// A segment whose header itself is damaged reports Good == 0.
func ScanSegment(data []byte) ScanResult {
	res := ScanResult{}
	base, err := parseSegmentHeader(data)
	if err != nil {
		res.Err = err
		return res
	}
	res.BaseIndex = base
	res.Good = segHeaderSize
	off := int64(segHeaderSize)
	prev := int64(0)
	for off < int64(len(data)) {
		ev, n, err := parseRecord(data[off:])
		if err != nil {
			res.Err = err
			return res
		}
		if ev.Time < prev {
			res.Err = fmt.Errorf("%w: timestamp %d after %d", ErrCorrupt, ev.Time, prev)
			return res
		}
		prev = ev.Time
		res.Events = append(res.Events, ev)
		off += int64(n)
		res.Good = off
	}
	return res
}

// EncodeSegment renders a segment image: header plus one record per
// event. The inverse of ScanSegment for valid inputs.
func EncodeSegment(baseIndex int64, events []event.Event) []byte {
	out := appendSegmentHeader(nil, baseIndex)
	for _, ev := range events {
		out = appendRecord(out, ev)
	}
	return out
}
