package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The manifest (manifest.json) records the sealed segments a store has
// vouched for: once a segment is sealed its bytes never change, so a
// manifest entry whose byte count matches the file on disk lets recovery
// skip the full scan for that segment. The manifest is advisory — it is
// always either an old or a new complete copy (temp + fsync + rename +
// dir fsync), and when it is missing, stale or corrupt, recovery falls
// back to scanning everything. The tail segment is never vouched: it is
// scanned record by record on every open regardless.

const (
	manifestName    = "manifest.json"
	manifestVersion = 1
)

// manifestSegment is one sealed segment's vouched shape.
type manifestSegment struct {
	Name     string `json:"name"`
	Base     int64  `json:"base"`
	Records  int64  `json:"records"`
	Bytes    int64  `json:"bytes"`
	LastTime int64  `json:"last_time"`
}

// manifest is the on-disk manifest document.
type manifest struct {
	Version  int               `json:"version"`
	Segments []manifestSegment `json:"segments"`
}

// readFile slurps a file through the store's FS. A missing file returns
// (nil, fs-level error) for the caller to classify via os.IsNotExist.
func readFile(fsys FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// loadManifest reads and decodes the manifest. ok is false — with a nil
// error — when the manifest is missing or undecodable; recovery then
// rebuilds it from a full scan.
func loadManifest(fsys FS, dir string) (m manifest, ok bool) {
	data, err := readFile(fsys, dir+"/"+manifestName)
	if err != nil {
		return manifest{}, false
	}
	if err := json.Unmarshal(data, &m); err != nil || m.Version != manifestVersion {
		return manifest{}, false
	}
	prevEnd := int64(-1)
	for _, seg := range m.Segments {
		if seg.Base < 0 || seg.Records < 0 || seg.Bytes < segHeaderSize || seg.Base < prevEnd {
			return manifest{}, false
		}
		prevEnd = seg.Base + seg.Records
	}
	return m, true
}

// writeManifest atomically replaces the manifest: temp file, fsync,
// rename over the live name, directory fsync.
func writeManifest(fsys FS, dir string, m manifest) error {
	m.Version = manifestVersion
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	data = append(data, '\n')
	return WriteFileAtomic(fsys, dir+"/"+manifestName, data)
}
