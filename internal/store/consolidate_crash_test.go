package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/mining"
)

// The consolidation crash sweep extends the store's crash sweep to the
// incremental-mining consolidation protocol: a live session appends events
// to the store (each Append synced before it is acknowledged), feeds them
// to an incremental miner, and every few acks consolidates the miner's
// checkpoint to ckpt.json through WriteFileAtomic. A simulated power loss
// is injected at EVERY mutating filesystem operation that lifecycle
// performs — including the checkpoint's own temp/sync/rename/dir-sync —
// and after recovery the sweep proves:
//
//  1. the store recovers a prefix covering every acknowledged event;
//  2. ckpt.json is either absent or a complete, decodable checkpoint —
//     never a torn mix (the WriteFileAtomic invariant);
//  3. the checkpoint's high-water mark NEVER acknowledges unconsolidated
//     state: restoring against the recovered log length must not return
//     ErrHighWaterBeyondLog, because checkpoints are only ever cut from
//     events the store had already made durable;
//  4. restoring the checkpoint and replaying the store's suffix yields
//     discoveries and stats identical to a from-scratch batch run over
//     the recovered log.

// ckptPath is where the consolidation workload parks the miner state.
const ckptPath = "data/ckpt.json"

// consolidationEvents plants the A -> B (next b-day morning) -> C (same
// b-day, within hours) pattern deterministically over business days, with
// decoys, so the miner has real screening and discovery work to do at
// every prefix.
func consolidationEvents() event.Sequence {
	var s event.Sequence
	day0 := event.At(1996, 1, 1, 0, 0, 0) // Monday
	var bdays []int64
	for d := 0; len(bdays) < 7; d++ {
		t := day0 + int64(d)*86400
		if _, ok := granularity.BDay().TickOf(t); ok {
			bdays = append(bdays, t)
		}
	}
	for i := 0; i+1 < len(bdays); i++ {
		s = append(s, event.Event{Type: "A", Time: bdays[i] + 9*3600 + int64(i)*60})
		if i%3 != 2 { // plant the pattern for two of every three anchors
			tb := bdays[i+1] + 8*3600 + int64(i)*120
			s = append(s, event.Event{Type: "B", Time: tb})
			s = append(s, event.Event{Type: "C", Time: tb + 3600 + int64(i)*300})
		}
		if i%2 == 0 {
			s = append(s, event.Event{Type: "D", Time: bdays[i] + 12*3600})
		}
	}
	s.Sort()
	return s
}

// consolidationProblem is the planted pattern's mining problem.
func consolidationProblem() mining.Problem {
	st := core.NewStructure()
	st.MustConstrain("X0", "X1", core.MustTCG(1, 1, "b-day"))
	st.MustConstrain("X1", "X2", core.MustTCG(0, 0, "b-day"), core.MustTCG(0, 4, "hour"))
	return mining.Problem{Structure: st, MinConfidence: 0.5, Reference: "A"}
}

// consolidationRun drives one session lifecycle on fsys: append to the
// store, feed the miner, consolidate every fourth ack. Returns how many
// events the store acknowledged durable before the first error.
func consolidationRun(fsys FS, p mining.Problem, evs event.Sequence) (acked int, err error) {
	s, _, err := Open("data", testOptions(fsys))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	inc, err := mining.NewIncremental(granularity.Default(), p, mining.PipelineOptions{})
	if err != nil {
		return 0, err
	}
	for i, e := range evs {
		if _, err := s.Append(e); err != nil {
			return acked, err
		}
		acked = i + 1
		if err := inc.Append(e); err != nil {
			return acked, err
		}
		if acked%4 == 0 {
			cp, err := inc.Checkpoint()
			if err != nil {
				return acked, err
			}
			var buf bytes.Buffer
			if err := cp.Encode(&buf); err != nil {
				return acked, err
			}
			if err := WriteFileAtomic(fsys, ckptPath, buf.Bytes()); err != nil {
				return acked, err
			}
		}
	}
	return acked, s.Close()
}

// verifyConsolidated checks invariants 1-4 after a crash and recovery.
func verifyConsolidated(t *testing.T, fsys FS, p mining.Problem, evs event.Sequence, acked int, tag string) {
	t.Helper()
	s, _, err := Open("data", testOptions(fsys))
	if err != nil {
		t.Fatalf("%s: reopen after recovery: %v", tag, err)
	}
	defer s.Close()
	if ok, q := s.Degraded(); ok {
		t.Fatalf("%s: crash degraded the store (quarantined %v)", tag, q)
	}
	got, err := s.Events()
	if err != nil {
		t.Fatalf("%s: Events: %v", tag, err)
	}
	if len(got) > len(evs) {
		t.Fatalf("%s: recovered %d events, more than the %d attempted", tag, len(got), len(evs))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("%s: recovered event %d = %v, want %v (not a prefix)", tag, i, got[i], evs[i])
		}
	}
	if len(got) < acked {
		t.Fatalf("%s: recovered %d events but %d were acknowledged durable", tag, len(got), acked)
	}
	logLen := int64(len(got))
	sys := granularity.Default()

	var inc *mining.Incremental
	replayFrom := int64(0)
	data, err := ReadFile(fsys, ckptPath)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Crash before the first consolidation completed: mine from scratch.
		inc, err = mining.NewIncremental(sys, p, mining.PipelineOptions{})
		if err != nil {
			t.Fatalf("%s: fresh miner: %v", tag, err)
		}
	case err != nil:
		t.Fatalf("%s: read checkpoint: %v", tag, err)
	default:
		cp, err := mining.DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: consolidated checkpoint torn or undecodable: %v", tag, err)
		}
		inc, err = mining.RestoreIncremental(sys, p, mining.PipelineOptions{}, cp, logLen)
		if errors.Is(err, mining.ErrHighWaterBeyondLog) {
			t.Fatalf("%s: high-water mark %d acknowledges unconsolidated state (recovered log has %d)",
				tag, cp.Incremental.HighWater, logLen)
		}
		if err != nil {
			t.Fatalf("%s: restore: %v", tag, err)
		}
		replayFrom = cp.Incremental.ReplayFrom
	}

	recs, err := s.ReadFrom(replayFrom)
	if err != nil {
		t.Fatalf("%s: ReadFrom(%d): %v", tag, replayFrom, err)
	}
	for _, r := range recs {
		if err := inc.Append(r.Event); err != nil {
			t.Fatalf("%s: replay record %d: %v", tag, r.Index, err)
		}
	}
	ids, ist, ierr := inc.Snapshot()
	bds, bst, berr := mining.Optimized(sys, p, event.Sequence(got), mining.PipelineOptions{})
	if (ierr == nil) != (berr == nil) || (ierr != nil && ierr.Error() != berr.Error()) {
		t.Fatalf("%s: restored err %v, batch err %v", tag, ierr, berr)
	}
	if ierr != nil {
		return
	}
	ist.TagRuns, bst.TagRuns = 0, 0
	if ist != bst {
		t.Fatalf("%s: restored stats %+v, batch %+v", tag, ist, bst)
	}
	if len(ids) != len(bds) {
		t.Fatalf("%s: restored %d discoveries, batch %d", tag, len(ids), len(bds))
	}
	for i := range ids {
		if mining.AssignKey(ids[i].Assign) != mining.AssignKey(bds[i].Assign) ||
			ids[i].Matches != bds[i].Matches || ids[i].Frequency != bds[i].Frequency {
			t.Fatalf("%s: discovery %d = %v (%d, %v), batch %v (%d, %v)", tag, i,
				mining.AssignKey(ids[i].Assign), ids[i].Matches, ids[i].Frequency,
				mining.AssignKey(bds[i].Assign), bds[i].Matches, bds[i].Frequency)
		}
	}
}

func TestConsolidationCrashSweep(t *testing.T) {
	evs := consolidationEvents()
	p := consolidationProblem()
	seeds := crashSweepSeeds(t)
	if seeds > 5 {
		seeds = 5 // unsynced-survival variance saturates quickly here
	}

	// Baseline: count every operation kind a clean lifecycle performs.
	base := NewMemFS()
	if acked, err := consolidationRun(base, p, evs); err != nil || acked != len(evs) {
		t.Fatalf("baseline run: acked %d of %d, err %v", acked, len(evs), err)
	}
	kinds := []Op{OpWrite, OpSync, OpRename, OpCreate, OpRemove, OpTrunc, OpSyncDir}
	total := int64(0)
	for _, k := range kinds {
		total += base.OpCount(k)
	}
	t.Logf("sweeping %d injection points x %d seeds", total, seeds)

	runs := 0
	for _, kind := range kinds {
		max := base.OpCount(kind)
		for nth := int64(1); nth <= max; nth++ {
			for seed := int64(0); seed < seeds; seed++ {
				tag := fmt.Sprintf("consolidation crash op=%s nth=%d seed=%d", kind, nth, seed)
				fsys := NewMemFS()
				fsys.SetFault(&Fault{Op: kind, Nth: nth, Mode: FaultCrash, Seed: seed})
				acked, err := consolidationRun(fsys, p, evs)
				if !fsys.Crashed() {
					if err != nil {
						t.Fatalf("%s: error without crash: %v", tag, err)
					}
					continue // injection point past this run's ops
				}
				fsys.Recover()
				verifyConsolidated(t, fsys, p, evs, acked, tag)
				runs++
			}
		}
	}
	if runs == 0 {
		t.Fatal("sweep executed no crash runs")
	}
	t.Logf("consolidation crash sweep: %d runs", runs)
}
