package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/granularity"
)

// workload builds a deterministic event stream: n events walking forward
// in time with occasional ties and multi-day jumps, so day/hour ticks
// actually advance and segments roll.
func workload(n int) []event.Event {
	evs := make([]event.Event, 0, n)
	t := int64(1)
	types := []event.Type{"deposit", "withdraw", "IBM-rise", "alarm"}
	for i := 0; i < n; i++ {
		evs = append(evs, event.Event{Type: types[i%len(types)], Time: t})
		switch i % 5 {
		case 0:
			// tie: same second, different type
		case 1:
			t += 37
		case 2:
			t += 3600 + 11
		case 3:
			t += 86400 + 13
		default:
			t += 5
		}
	}
	return evs
}

func testOptions(fsys FS) Options {
	return Options{
		FS:              fsys,
		System:          granularity.Default(),
		Grans:           []string{"day", "hour"},
		SegmentMaxBytes: 256, // tiny: force frequent rolls
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func appendAll(t *testing.T, s *Store, evs []event.Event) {
	t.Helper()
	for i := 0; i < len(evs); i += 3 {
		end := i + 3
		if end > len(evs) {
			end = len(evs)
		}
		if _, err := s.Append(evs[i:end]...); err != nil {
			t.Fatalf("Append(%d:%d): %v", i, end, err)
		}
	}
}

func wantEvents(t *testing.T, s *Store, want []event.Event) {
	t.Helper()
	got, err := s.Events()
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	for _, name := range []string{"memfs", "dirfs"} {
		t.Run(name, func(t *testing.T) {
			var fsys FS = NewMemFS()
			dir := "data"
			if name == "dirfs" {
				fsys = DirFS{}
				dir = filepath.Join(t.TempDir(), "data")
			}
			evs := workload(40)
			s, rec := mustOpen(t, dir, testOptions(fsys))
			if rec.Records != 0 || rec.SegmentsScanned != 0 {
				t.Fatalf("fresh store reported recovery %+v", rec)
			}
			appendAll(t, s, evs)
			wantEvents(t, s, evs)
			if got := s.Len(); got != int64(len(evs)) {
				t.Fatalf("Len = %d, want %d", got, len(evs))
			}
			if got := s.LastTime(); got != evs[len(evs)-1].Time {
				t.Fatalf("LastTime = %d, want %d", got, evs[len(evs)-1].Time)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			s2, rec2 := mustOpen(t, dir, testOptions(fsys))
			defer s2.Close()
			if len(rec2.Quarantined) != 0 || rec2.BytesTruncated != 0 {
				t.Fatalf("clean reopen reported damage: %+v", rec2)
			}
			if rec2.Records != int64(len(evs)) {
				t.Fatalf("reopen recovered %d records, want %d", rec2.Records, len(evs))
			}
			wantEvents(t, s2, evs)
		})
	}
}

func TestSegmentsRollAndManifestVouches(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(60)
	s, _ := mustOpen(t, "data", testOptions(fsys))
	appendAll(t, s, evs)
	s.Close()

	names, err := fsys.ReadDir("data")
	if err != nil {
		t.Fatal(err)
	}
	var segCount int
	sawManifest := false
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segCount++
		}
		if n == manifestName {
			sawManifest = true
		}
	}
	if segCount < 3 {
		t.Fatalf("expected >= 3 segments with 256-byte cap, got %d (%v)", segCount, names)
	}
	if !sawManifest {
		t.Fatalf("no manifest written; files: %v", names)
	}

	// Reopen: the manifest must vouch for every sealed segment, so only
	// the tail is scanned.
	s2, rec := mustOpen(t, "data", testOptions(fsys))
	defer s2.Close()
	if rec.SegmentsScanned != 1 {
		t.Fatalf("reopen scanned %d segments, want 1 (tail only); recovery %+v", rec.SegmentsScanned, rec)
	}
	if rec.ManifestRebuilt {
		t.Fatal("manifest reported rebuilt on clean reopen")
	}
	wantEvents(t, s2, evs)
}

func TestManifestMissingForcesFullScan(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(60)
	s, _ := mustOpen(t, "data", testOptions(fsys))
	appendAll(t, s, evs)
	s.Close()

	if err := fsys.Remove("data/" + manifestName); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, "data", testOptions(fsys))
	defer s2.Close()
	if !rec.ManifestRebuilt {
		t.Fatal("expected ManifestRebuilt")
	}
	if rec.Records != int64(len(evs)) {
		t.Fatalf("recovered %d records, want %d", rec.Records, len(evs))
	}
	wantEvents(t, s2, evs)

	// The rebuilt manifest must vouch again on the next open.
	s2.Close()
	_, rec3 := mustOpen(t, "data", testOptions(fsys))
	if rec3.SegmentsScanned != 1 || rec3.ManifestRebuilt {
		t.Fatalf("after rebuild, reopen recovery %+v", rec3)
	}
}

func TestTornTailTruncated(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(10)
	opts := testOptions(fsys)
	opts.SegmentMaxBytes = 1 << 20 // one segment
	s, _ := mustOpen(t, "data", opts)
	appendAll(t, s, evs)
	s.Close()

	// Tear the tail: chop the last 3 bytes of the segment file.
	names, _ := fsys.ReadDir("data")
	var seg string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			seg = n
		}
	}
	size, _ := fsys.Size("data/" + seg)
	if err := fsys.Truncate("data/"+seg, size-3); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpen(t, "data", opts)
	defer s2.Close()
	if rec.BytesTruncated == 0 {
		t.Fatalf("expected truncation, recovery %+v", rec)
	}
	if rec.Records != int64(len(evs)-1) {
		t.Fatalf("recovered %d records, want %d", rec.Records, len(evs)-1)
	}
	wantEvents(t, s2, evs[:len(evs)-1])

	// The log must accept the lost record again.
	if _, err := s2.Append(evs[len(evs)-1]); err != nil {
		t.Fatalf("re-append after truncation: %v", err)
	}
	wantEvents(t, s2, evs)
}

func TestCorruptSealedSegmentQuarantined(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(60)
	s, _ := mustOpen(t, "data", testOptions(fsys))
	appendAll(t, s, evs)
	s.Close()

	// Flip a payload byte inside the FIRST (sealed) segment and drop the
	// manifest so the scan actually looks at it.
	names, _ := fsys.ReadDir("data")
	var first string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			first = n
			break
		}
	}
	f := fsys.files["data/"+first]
	f.data[segHeaderSize+recHeaderSize] ^= 0xff
	fsys.Remove("data/" + manifestName)

	s2, rec := mustOpen(t, "data", testOptions(fsys))
	defer s2.Close()
	if len(rec.Quarantined) != 1 || rec.Quarantined[0] != first {
		t.Fatalf("quarantined %v, want [%s]", rec.Quarantined, first)
	}
	ok, q := s2.Degraded()
	if !ok || len(q) != 1 {
		t.Fatalf("Degraded() = %v, %v", ok, q)
	}
	if _, err := s2.Append(evs[0]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append on degraded store: %v, want ErrDegraded", err)
	}
	// Later segments stay readable; indexes jump over the hole.
	got, err := s2.Events()
	if err != nil {
		t.Fatalf("Events on degraded store: %v", err)
	}
	if len(got) == 0 || len(got) >= len(evs) {
		t.Fatalf("degraded store read %d events, want a proper subset of %d", len(got), len(evs))
	}
	recs, err := s2.ReadFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Index == 0 {
		t.Fatal("expected first readable index to jump past the quarantined segment")
	}
	if !strings.HasSuffix(q[0], quarantineSuffix) {
		t.Fatalf("quarantine file %q lacks suffix", q[0])
	}

	// Degradation is sticky across reopen.
	s2.Close()
	s3, rec3 := mustOpen(t, "data", testOptions(fsys))
	defer s3.Close()
	if ok, _ := s3.Degraded(); !ok {
		t.Fatalf("degradation not sticky; recovery %+v", rec3)
	}
}

func TestUnbornTailRemoved(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(6)
	opts := testOptions(fsys)
	opts.SegmentMaxBytes = 1 << 20
	s, _ := mustOpen(t, "data", opts)
	appendAll(t, s, evs)
	s.Close()

	// Simulate a crash that left a new tail with a mangled header: create
	// a next-segment file holding garbage.
	next := segName(int64(len(evs)))
	f, err := fsys.OpenFile("data/"+next, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("garbage"))
	f.Close()

	s2, rec := mustOpen(t, "data", opts)
	defer s2.Close()
	if rec.BytesTruncated != int64(len("garbage")) {
		t.Fatalf("BytesTruncated = %d, want %d; recovery %+v", rec.BytesTruncated, len("garbage"), rec)
	}
	if ok, _ := s2.Degraded(); ok {
		t.Fatal("unborn tail must not degrade the store")
	}
	wantEvents(t, s2, evs)
	if _, err := s2.Append(event.Event{Type: "x", Time: s2.LastTime()}); err != nil {
		t.Fatalf("append after unborn-tail removal: %v", err)
	}
}

func TestScanFromTickMatchesBruteForce(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(80)
	opts := testOptions(fsys)
	s, _ := mustOpen(t, "data", opts)
	appendAll(t, s, evs)

	sys := opts.System
	for _, gran := range opts.Grans {
		// Collect every tick present, plus probes before, between and after.
		ticks := map[int64]bool{0: true, 1: true, 1 << 40: true}
		for _, ev := range evs {
			if z, ok := sys.TickOf(gran, ev.Time); ok {
				ticks[z] = true
				ticks[z+1] = true
			}
		}
		for tick := range ticks {
			got, err := s.ScanFromTick(gran, tick)
			if err != nil {
				t.Fatalf("ScanFromTick(%s, %d): %v", gran, tick, err)
			}
			// Brute force: suffix from the first covered event with tick >= target.
			start := -1
			for i, ev := range evs {
				if z, ok := sys.TickOf(gran, ev.Time); ok && z >= tick {
					start = i
					break
				}
			}
			var want []event.Event
			if start >= 0 {
				want = evs[start:]
			}
			if len(got) != len(want) {
				t.Fatalf("ScanFromTick(%s, %d): %d records, want %d", gran, tick, len(got), len(want))
			}
			for i := range got {
				if got[i].Event != want[i] || got[i].Index != int64(start+i) {
					t.Fatalf("ScanFromTick(%s, %d)[%d] = %+v, want %v at %d", gran, tick, i, got[i], want[i], start+i)
				}
			}
		}
	}

	// Reopen (sidecars + rebuilt paths) and re-check one probe per gran.
	s.Close()
	s2, _ := mustOpen(t, "data", opts)
	defer s2.Close()
	for _, gran := range opts.Grans {
		mid, _ := sys.TickOf(gran, evs[len(evs)/2].Time)
		got, err := s2.ScanFromTick(gran, mid)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i, ev := range evs {
			if z, ok := sys.TickOf(gran, ev.Time); ok && z >= mid {
				want = len(evs) - i
				break
			}
		}
		if len(got) != want {
			t.Fatalf("reopen ScanFromTick(%s, %d): %d records, want %d", gran, mid, len(got), want)
		}
	}

	if _, err := s2.ScanFromTick("week", 1); err == nil {
		t.Fatal("ScanFromTick on unindexed granularity must fail")
	}
}

func TestCorruptIndexSidecarRebuilt(t *testing.T) {
	fsys := NewMemFS()
	evs := workload(60)
	opts := testOptions(fsys)
	s, _ := mustOpen(t, "data", opts)
	appendAll(t, s, evs)
	s.Close()

	// Corrupt every sidecar; lookups must fall back to scanning.
	names, _ := fsys.ReadDir("data")
	for _, n := range names {
		if strings.HasSuffix(n, idxSuffix) {
			fsys.files["data/"+n].data[0] ^= 0xff
		}
	}
	s2, _ := mustOpen(t, "data", opts)
	defer s2.Close()
	mid, _ := opts.System.TickOf("day", evs[len(evs)/2].Time)
	got, err := s2.ScanFromTick("day", mid)
	if err != nil {
		t.Fatalf("ScanFromTick with corrupt sidecars: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("expected a non-empty suffix")
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := mustOpen(t, "data", testOptions(NewMemFS()))
	defer s.Close()
	if _, err := s.Append(event.Event{Type: "a", Time: 100}); err != nil {
		t.Fatal(err)
	}
	cases := []event.Event{
		{Type: "a", Time: 0},
		{Type: "a", Time: -5},
		{Type: "a", Time: 99}, // before log tail
		{Type: "", Time: 101},
	}
	for _, ev := range cases {
		if _, err := s.Append(ev); err == nil {
			t.Fatalf("Append(%+v) succeeded, want error", ev)
		}
	}
	// Equal timestamps are allowed.
	if _, err := s.Append(event.Event{Type: "b", Time: 100}); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after rejected appends, want 2", s.Len())
	}
}

func TestSyncEveryBatches(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	opts.SyncEvery = 4
	s, _ := mustOpen(t, "data", opts)
	defer s.Close()
	// First append creates the segment (one header fsync); capture after.
	if _, err := s.Append(event.Event{Type: "a", Time: 100}); err != nil {
		t.Fatal(err)
	}
	before := fsys.OpCount(OpSync)
	for i := 1; i < 3; i++ {
		if _, err := s.Append(event.Event{Type: "a", Time: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fsys.OpCount(OpSync); got != before {
		t.Fatalf("expected no file syncs before the stride, got %d extra", got-before)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := fsys.OpCount(OpSync); got != before+1 {
		t.Fatalf("explicit Sync ran %d syncs, want 1", got-before)
	}
}

func TestOpenRejectsBadGranularity(t *testing.T) {
	if _, _, err := Open("data", Options{FS: NewMemFS(), System: granularity.Default(), Grans: []string{"fortnight"}}); err == nil {
		t.Fatal("unknown granularity accepted")
	}
	if _, _, err := Open("data", Options{FS: NewMemFS(), Grans: []string{"day"}}); err == nil {
		t.Fatal("nil System with Grans accepted")
	}
}

func TestRecoverySummary(t *testing.T) {
	r := Recovery{Records: 7, SegmentsScanned: 2, RecordsReplayed: 7, BytesTruncated: 12, Quarantined: []string{"seg-x"}, ManifestRebuilt: true}
	s := r.Summary()
	for _, want := range []string{"7 records", "scanned 2", "truncated 12", "quarantined 1", "manifest rebuilt"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Summary %q missing %q", s, want)
		}
	}
}

func TestReadFromOffsets(t *testing.T) {
	evs := workload(30)
	s, _ := mustOpen(t, "data", testOptions(NewMemFS()))
	defer s.Close()
	appendAll(t, s, evs)
	for _, from := range []int64{0, 1, 15, 29, 30, 100} {
		recs, err := s.ReadFrom(from)
		if err != nil {
			t.Fatal(err)
		}
		want := len(evs) - int(from)
		if want < 0 {
			want = 0
		}
		if len(recs) != want {
			t.Fatalf("ReadFrom(%d): %d records, want %d", from, len(recs), want)
		}
		for i, r := range recs {
			if r.Index != from+int64(i) || r.Event != evs[from+int64(i)] {
				t.Fatalf("ReadFrom(%d)[%d] = %+v", from, i, r)
			}
		}
	}
}

func TestCodecFormats(t *testing.T) {
	evs := workload(12)
	img := EncodeSegment(5, evs)
	sc := ScanSegment(img)
	if sc.Err != nil || sc.BaseIndex != 5 || len(sc.Events) != len(evs) || sc.Good != int64(len(img)) {
		t.Fatalf("round trip: %+v", sc)
	}
	for i := range evs {
		if sc.Events[i] != evs[i] {
			t.Fatalf("event %d: %v != %v", i, sc.Events[i], evs[i])
		}
	}
	// recordSize must agree with appendRecord.
	for _, ev := range evs {
		if got, want := recordSize(ev), int64(len(appendRecord(nil, ev))); got != want {
			t.Fatalf("recordSize(%v) = %d, framed = %d", ev, got, want)
		}
	}
	// Every truncation of the image scans to a prefix without panicking.
	for cut := 0; cut <= len(img); cut++ {
		sub := ScanSegment(img[:cut])
		if sub.Good > int64(cut) {
			t.Fatalf("cut %d: Good %d beyond data", cut, sub.Good)
		}
		if cut == len(img) {
			continue
		}
		if sub.Err == nil && len(sub.Events) == len(evs) {
			t.Fatalf("cut %d decoded everything", cut)
		}
		for i, ev := range sub.Events {
			if ev != evs[i] {
				t.Fatalf("cut %d: event %d mismatch", cut, i)
			}
		}
	}
	// A flipped byte anywhere past the header must not yield extra or
	// different events before the detected damage.
	for pos := segHeaderSize; pos < len(img); pos += 7 {
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0x41
		sub := ScanSegment(mut)
		for i, ev := range sub.Events {
			if ev != evs[i] {
				// The flip landed in a varint that still decodes; ordering
				// or CRC must have caught it before this event.
				t.Fatalf("flip at %d: event %d silently altered to %v", pos, i, ev)
			}
		}
	}
	// Index sidecar round trip.
	idx := segIndex{
		"day":  {{Tick: 3, Rec: 0, Off: 14}, {Tick: 5, Rec: 4, Off: 80}},
		"hour": {{Tick: 70, Rec: 0, Off: 14}},
	}
	dec, err := decodeIndex(encodeIndex(idx))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(dec) != fmt.Sprint(idx) {
		t.Fatalf("index round trip: %v != %v", dec, idx)
	}
	if _, err := decodeIndex([]byte("TIDX1junkjunkjunk")); err == nil {
		t.Fatal("garbage index decoded")
	}
}

func TestRecoveryAdd(t *testing.T) {
	var agg Recovery
	agg.Add(Recovery{SegmentsScanned: 1, RecordsReplayed: 10, BytesTruncated: 3, Records: 10})
	agg.Add(Recovery{SegmentsScanned: 2, RecordsReplayed: 5, Quarantined: []string{"seg-x"}, ManifestRebuilt: true, Records: 5})
	if agg.SegmentsScanned != 3 || agg.RecordsReplayed != 15 || agg.BytesTruncated != 3 || agg.Records != 15 {
		t.Fatalf("bad sums: %+v", agg)
	}
	if len(agg.Quarantined) != 1 || !agg.ManifestRebuilt {
		t.Fatalf("bad flags: %+v", agg)
	}
}
