package store

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/event"
)

// The crash sweep: for EVERY mutating filesystem operation the workload
// performs (write, sync, rename, create, remove, truncate, dir sync), and
// for a range of seeds driving how much unsynced data survives, inject a
// simulated power loss at exactly that operation and prove the recovery
// contract:
//
//  1. reopen recovers a prefix of the attempted sequence — never a
//     corrupt, reordered or invented record;
//  2. everything acknowledged before the crash is in that prefix
//     (durability of acked appends);
//  3. re-appending the lost suffix converges to the identical sequence;
//  4. a second reopen is a no-op (recovery is idempotent);
//  5. a crash alone never degrades the store.
//
// The same sweep runs in FaultError mode (transient I/O error instead of
// death, one seed — no durability decisions involved) asserting the store
// either keeps working or refuses cleanly, and that a reopen converges.

// crashSweepSeeds returns the seed range; CRASH_SWEEP_SEEDS trims it for
// the reduced-depth crash-smoke run in scripts/check.sh.
func crashSweepSeeds(t testing.TB) int64 {
	if v := os.Getenv("CRASH_SWEEP_SEEDS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH_SWEEP_SEEDS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 21 // seeds 0..20
}

// sweepWorkload drives one full store lifecycle on fsys and returns how
// many events were acknowledged before the first error (len(evs) when
// none). Batches of 1..3 events exercise mid-batch crash states.
func sweepWorkload(fsys FS, evs []event.Event) (acked int, err error) {
	s, _, err := Open("data", testOptions(fsys))
	if err != nil {
		return 0, err
	}
	defer s.Close()
	for i := 0; i < len(evs); {
		n := 1 + i%3
		if i+n > len(evs) {
			n = len(evs) - i
		}
		if _, err := s.Append(evs[i : i+n]...); err != nil {
			return acked, err
		}
		i += n
		acked = i
	}
	return acked, s.Close()
}

// verifyRecovered opens the store on fsys and checks invariants 1, 2 and 5;
// it returns the recovered record count.
func verifyRecovered(t *testing.T, fsys FS, evs []event.Event, acked int, tag string) int {
	t.Helper()
	s, rec, err := Open("data", testOptions(fsys))
	if err != nil {
		t.Fatalf("%s: reopen after recovery: %v", tag, err)
	}
	defer s.Close()
	if ok, q := s.Degraded(); ok {
		t.Fatalf("%s: crash degraded the store (quarantined %v)", tag, q)
	}
	got, err := s.Events()
	if err != nil {
		t.Fatalf("%s: Events: %v", tag, err)
	}
	if len(got) > len(evs) {
		t.Fatalf("%s: recovered %d events, more than the %d attempted", tag, len(got), len(evs))
	}
	for i := range got {
		if got[i] != evs[i] {
			t.Fatalf("%s: recovered event %d = %v, want %v (not a prefix)", tag, i, got[i], evs[i])
		}
	}
	if len(got) < acked {
		t.Fatalf("%s: recovered %d events but %d were acknowledged durable", tag, len(got), acked)
	}
	if s.Len() != int64(len(got)) {
		t.Fatalf("%s: Len %d != %d recovered", tag, s.Len(), len(got))
	}
	_ = rec
	return len(got)
}

// converge re-appends the lost suffix and asserts exact equality, then
// reopens once more and asserts recovery was a no-op (invariants 3, 4).
func converge(t *testing.T, fsys FS, evs []event.Event, recovered int, tag string) {
	t.Helper()
	s, _, err := Open("data", testOptions(fsys))
	if err != nil {
		t.Fatalf("%s: reopen to converge: %v", tag, err)
	}
	for i := recovered; i < len(evs); i++ {
		if _, err := s.Append(evs[i]); err != nil {
			t.Fatalf("%s: re-append event %d: %v", tag, i, err)
		}
	}
	wantEvents(t, s, evs)
	if err := s.Close(); err != nil {
		t.Fatalf("%s: close: %v", tag, err)
	}

	s2, rec, err := Open("data", testOptions(fsys))
	if err != nil {
		t.Fatalf("%s: idempotent reopen: %v", tag, err)
	}
	defer s2.Close()
	if rec.BytesTruncated != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("%s: second recovery not a no-op: %+v", tag, rec)
	}
	wantEvents(t, s2, evs)
}

func TestCrashSweep(t *testing.T) {
	evs := workload(30)
	seeds := crashSweepSeeds(t)

	// Baseline: count every operation kind a clean run performs.
	base := NewMemFS()
	if acked, err := sweepWorkload(base, evs); err != nil || acked != len(evs) {
		t.Fatalf("baseline run: acked %d, err %v", acked, err)
	}
	kinds := []Op{OpWrite, OpSync, OpRename, OpCreate, OpRemove, OpTrunc, OpSyncDir}
	total := int64(0)
	for _, k := range kinds {
		total += base.OpCount(k)
	}
	if base.OpCount(OpWrite) < 10 || base.OpCount(OpRename) < 1 {
		t.Fatalf("workload too small to sweep: %d writes, %d renames", base.OpCount(OpWrite), base.OpCount(OpRename))
	}
	t.Logf("sweeping %d injection points x %d seeds", total, seeds)

	runs := 0
	for _, kind := range kinds {
		max := base.OpCount(kind)
		for nth := int64(1); nth <= max; nth++ {
			for seed := int64(0); seed < seeds; seed++ {
				tag := fmt.Sprintf("crash op=%s nth=%d seed=%d", kind, nth, seed)
				fsys := NewMemFS()
				fsys.SetFault(&Fault{Op: kind, Nth: nth, Mode: FaultCrash, Seed: seed})
				acked, err := sweepWorkload(fsys, evs)
				if !fsys.Crashed() {
					if err != nil {
						t.Fatalf("%s: error without crash: %v", tag, err)
					}
					continue // injection point past this run's ops
				}
				if err == nil && acked < len(evs) {
					t.Fatalf("%s: workload stopped silently at %d", tag, acked)
				}
				fsys.Recover()
				recovered := verifyRecovered(t, fsys, evs, acked, tag)
				converge(t, fsys, evs, recovered, tag)
				runs++
			}
		}
	}
	if runs == 0 {
		t.Fatal("sweep executed no crash runs")
	}
	t.Logf("crash sweep: %d runs", runs)
}

func TestErrorSweep(t *testing.T) {
	evs := workload(30)
	base := NewMemFS()
	if _, err := sweepWorkload(base, evs); err != nil {
		t.Fatal(err)
	}
	kinds := []Op{OpWrite, OpSync, OpRename, OpCreate, OpRemove, OpTrunc, OpSyncDir}
	for _, kind := range kinds {
		max := base.OpCount(kind)
		for nth := int64(1); nth <= max; nth++ {
			tag := fmt.Sprintf("error op=%s nth=%d", kind, nth)
			fsys := NewMemFS()
			fsys.SetFault(&Fault{Op: kind, Nth: nth, Mode: FaultError})
			acked, err := sweepWorkload(fsys, evs)
			if err != nil && !errors.Is(err, ErrInjected) {
				// Secondary failure surfaced from repair or broken-path
				// refusal: must still be typed, never a panic (reaching here
				// at all proves no panic).
				t.Logf("%s: secondary error: %v", tag, err)
			}
			// With the fault spent, a reopen must converge regardless.
			recovered := verifyRecovered(t, fsys, evs, 0, tag)
			if recovered < acked {
				t.Fatalf("%s: recovered %d < acked %d after transient error", tag, recovered, acked)
			}
			converge(t, fsys, evs, recovered, tag)
		}
	}
}

// TestCrashDuringRecovery crashes a second time inside the recovery path
// itself (ops counted from zero at reopen) and asserts the third open
// still converges.
func TestCrashDuringRecovery(t *testing.T) {
	evs := workload(30)
	seeds := crashSweepSeeds(t)
	if seeds > 8 {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		// First crash: mid-workload, somewhere in the middle of the writes.
		fsys := NewMemFS()
		fsys.SetFault(&Fault{Op: OpWrite, Nth: 15, Mode: FaultCrash, Seed: seed})
		acked, _ := sweepWorkload(fsys, evs)
		if !fsys.Crashed() {
			t.Fatalf("seed %d: first crash did not trip", seed)
		}
		fsys.Recover()

		// Recovery ops replay with a fresh counter; sweep a second crash
		// over each of the first few recovery operations.
		for nth := int64(1); nth <= 6; nth++ {
			tag := fmt.Sprintf("seed=%d recovery-crash nth=%d", seed, nth)
			snap := cloneMemFS(fsys)
			snap.SetFault(&Fault{Op: OpAny, Nth: nth, Mode: FaultCrash, Seed: seed + 100})
			_, _, err := Open("data", testOptions(snap))
			if err == nil {
				// Recovery finished before the injection point; fine.
				continue
			}
			snap.Recover()
			recovered := verifyRecovered(t, snap, evs, 0, tag)
			if recovered < 0 {
				t.Fatalf("%s: negative recovered", tag)
			}
			converge(t, snap, evs, recovered, tag)
		}
		_ = acked
	}
}

// cloneMemFS deep-copies a MemFS so destructive sub-cases can share one
// crashed base state.
func cloneMemFS(m *MemFS) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for p, f := range m.files {
		c.files[p] = f.clone()
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}
