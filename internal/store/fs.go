// Package store is the durable, crash-safe, append-only event log behind
// tempod's sessions and mining jobs: segment files of CRC32C-checksummed,
// length-prefixed records, a sparse per-granularity tick index per segment
// (spans computed through granularity.System's periodic tables), and an
// atomically-replaced manifest. All I/O goes through the FS interface so
// the same code runs against the real filesystem (DirFS) and against the
// deterministic fault-injecting in-memory filesystem (MemFS) the crash
// sweep drives: the recovery guarantees are property-tested at every
// write/sync/rename, not argued.
//
// Durability discipline (the contract recovery relies on):
//
//   - record data is appended to the tail segment and fsynced before an
//     Append returns (SyncEvery batches acknowledged-but-unsynced appends
//     explicitly, for callers that batch);
//   - new files (segments, indexes) are created, filled, fsynced, and then
//     their directory entry is fsynced — rename alone does not survive
//     power loss;
//   - the manifest is replaced via temp + fsync + rename + dir fsync, so
//     it is always either the old or the new one, never a torn mix.
//
// Recovery scans the tail segment record by record, truncates at the
// first torn or corrupt record, and quarantines undecodable sealed
// segments into read-only degraded mode instead of refusing to start.
package store

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle surface the store needs: sequential reads and
// appends, plus explicit durability. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// FS is the filesystem surface the store runs on. Paths are slash-joined
// absolute or relative names exactly as the host filesystem understands
// them; the store only ever touches files inside its own directory.
//
// Implementations: DirFS (the real filesystem) and MemFS (in-memory, with
// deterministic fault injection and simulated crashes for the chaos
// harness).
type FS interface {
	// OpenFile opens name with os-style flags (the store uses O_RDONLY,
	// O_WRONLY|O_CREATE|O_TRUNC and O_WRONLY|O_APPEND).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Truncate cuts a file to size bytes (the recovery path's torn-tail
	// repair).
	Truncate(name string, size int64) error
	// MkdirAll creates a directory and its parents.
	MkdirAll(name string, perm fs.FileMode) error
	// ReadDir lists the file names in a directory, sorted.
	ReadDir(name string) ([]string, error)
	// SyncDir flushes a directory entry table to stable storage; required
	// after creates, renames and removes for the new entry to survive
	// power loss.
	SyncDir(name string) error
	// Size returns a file's length in bytes.
	Size(name string) (int64, error)
}

// WriteFileAtomic durably replaces path with data: temp file, fsync, rename
// over the live name, directory fsync. Readers only ever observe the old or
// the new complete contents — the invariant consolidation checkpoints rely
// on so a crash mid-write can never surface a torn high-water mark.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dirOf(path))
}

// ReadFile slurps path through fsys; a missing file surfaces the FS's own
// not-exist error for the caller to classify.
func ReadFile(fsys FS, path string) ([]byte, error) {
	return readFile(fsys, path)
}

// DirFS is the production FS: a thin veneer over the os package.
type DirFS struct{}

// OpenFile opens the named file through os.OpenFile.
func (DirFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames through os.Rename.
func (DirFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove removes through os.Remove.
func (DirFS) Remove(name string) error { return os.Remove(name) }

// Truncate truncates through os.Truncate.
func (DirFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll creates directories through os.MkdirAll.
func (DirFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

// ReadDir lists a directory's file names, sorted.
func (DirFS) ReadDir(name string) ([]string, error) {
	entries, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir fsyncs a directory.
func (DirFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Size stats a file.
func (DirFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// dirOf is the parent directory of a path, for SyncDir calls.
func dirOf(path string) string { return filepath.Dir(path) }
