package store

import (
	"errors"
	"io"
	"os"
	"testing"
)

func writeBytes(t *testing.T, fsys FS, path string, data []byte, sync bool) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readBytes(t *testing.T, fsys FS, path string) []byte {
	t.Helper()
	data, err := readFile(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestMemFSBasics(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	writeBytes(t, m, "a/b/x", []byte("hello"), true)
	if got := string(readBytes(t, m, "a/b/x")); got != "hello" {
		t.Fatalf("read back %q", got)
	}
	if size, _ := m.Size("a/b/x"); size != 5 {
		t.Fatalf("Size = %d", size)
	}
	names, err := m.ReadDir("a/b")
	if err != nil || len(names) != 1 || names[0] != "x" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := m.Rename("a/b/x", "a/b/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenFile("a/b/x", os.O_RDONLY, 0); err == nil {
		t.Fatal("source survived rename")
	}
	if err := m.Remove("a/b/y"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenFile("a/b/missing", os.O_RDONLY, 0); err == nil {
		t.Fatal("opened a missing file")
	}
	// Append semantics.
	writeBytes(t, m, "a/b/z", []byte("one"), true)
	f, err := m.OpenFile("a/b/z", os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("two"))
	f.Close()
	if got := string(readBytes(t, m, "a/b/z")); got != "onetwo" {
		t.Fatalf("append produced %q", got)
	}
	// Reads hit EOF.
	r, _ := m.OpenFile("a/b/z", os.O_RDONLY, 0)
	io.ReadAll(r)
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		t.Fatalf("read past end: %v", err)
	}
}

func TestMemFSFaultError(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	writeBytes(t, m, "d/a", []byte("abc"), true)
	m.SetFault(&Fault{Op: OpWrite, Nth: m.OpCount(OpWrite) + 2, Mode: FaultError})
	f, _ := m.OpenFile("d/a", os.O_WRONLY|os.O_APPEND, 0o644)
	if _, err := f.Write([]byte("1")); err != nil {
		t.Fatalf("write before Nth: %v", err)
	}
	if _, err := f.Write([]byte("2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Nth write: %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("3")); err != nil {
		t.Fatalf("fault must trip once: %v", err)
	}
	f.Close()
	if got := string(readBytes(t, m, "d/a")); got != "abc13" {
		t.Fatalf("content %q: injected write must not apply", got)
	}
}

func TestMemFSCrashDropsUnsynced(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	writeBytes(t, m, "d/a", []byte("synced."), true)
	f, _ := m.OpenFile("d/a", os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("unsynced"))
	f.Close()
	m.SyncDir("d")
	m.CrashNow(1)
	if _, err := m.OpenFile("d/a", os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op on crashed fs: %v", err)
	}
	m.Recover()
	got := readBytes(t, m, "d/a")
	if len(got) < len("synced.") || string(got[:7]) != "synced." {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("synced.unsynced") {
		t.Fatalf("recovered more than written: %q", got)
	}
	// Different seeds must reach different keep decisions somewhere.
	outcomes := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		m2 := NewMemFS()
		m2.MkdirAll("d", 0o755)
		writeBytes(t, m2, "d/a", []byte("synced."), true)
		f, _ := m2.OpenFile("d/a", os.O_WRONLY|os.O_APPEND, 0o644)
		f.Write([]byte("unsynced"))
		f.Close()
		m2.SyncDir("d")
		m2.CrashNow(seed)
		m2.Recover()
		outcomes[len(readBytes(t, m2, "d/a"))] = true
	}
	if len(outcomes) < 2 {
		t.Fatalf("20 seeds produced a single keep length: %v", outcomes)
	}
}

func TestMemFSCrashRevertsUnsyncedDirOps(t *testing.T) {
	// Seed 0 with one journaled op: keep ∈ {0, 1} deterministically; try a
	// few seeds and require both behaviors observed across them.
	reverted, kept := false, false
	for seed := int64(0); seed < 30; seed++ {
		m := NewMemFS()
		m.MkdirAll("d", 0o755)
		writeBytes(t, m, "d/new", []byte("x"), true) // create not dir-synced
		m.CrashNow(seed)
		m.Recover()
		if _, err := m.OpenFile("d/new", os.O_RDONLY, 0); err != nil {
			reverted = true
		} else {
			kept = true
		}
	}
	if !reverted || !kept {
		t.Fatalf("unsynced create: reverted=%v kept=%v — both must be reachable", reverted, kept)
	}

	// A dir-synced create always survives.
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	writeBytes(t, m, "d/new", []byte("x"), true)
	m.SyncDir("d")
	m.CrashNow(3)
	m.Recover()
	if _, err := m.OpenFile("d/new", os.O_RDONLY, 0); err != nil {
		t.Fatalf("dir-synced create lost: %v", err)
	}
}

func TestMemFSCrashRenameRevert(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := NewMemFS()
		m.MkdirAll("d", 0o755)
		writeBytes(t, m, "d/live", []byte("old-live"), true)
		writeBytes(t, m, "d/tmp", []byte("new-content"), true)
		m.SyncDir("d")
		if err := m.Rename("d/tmp", "d/live"); err != nil {
			t.Fatal(err)
		}
		// Crash before SyncDir: the rename may or may not have survived,
		// but d/live must hold exactly one of the two complete contents —
		// the atomic-replace guarantee the manifest depends on.
		m.CrashNow(seed)
		m.Recover()
		got := string(readBytes(t, m, "d/live"))
		if got != "old-live" && got != "new-content" {
			t.Fatalf("seed %d: rename left torn state %q", seed, got)
		}
	}
}

func TestMemFSTruncate(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	writeBytes(t, m, "d/a", []byte("0123456789"), true)
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate("d/a", 4); err != nil {
		t.Fatal(err)
	}
	if got := string(readBytes(t, m, "d/a")); got != "0123" {
		t.Fatalf("truncated to %q", got)
	}
	if err := m.Truncate("d/a", 100); err == nil {
		t.Fatal("grow-truncate accepted")
	}
	// Synced watermark must not exceed the new length.
	m.CrashNow(0)
	m.Recover()
	if got := string(readBytes(t, m, "d/a")); got != "0123" {
		t.Fatalf("post-crash content %q", got)
	}
}

func TestMemFSOpAnyFault(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	m.SetFault(&Fault{Op: OpAny, Nth: 3, Mode: FaultError})
	writeBytes(t, m, "d/a", []byte("x"), false) // create(1) + write(2)
	f, err := m.OpenFile("d/b", os.O_WRONLY|os.O_CREATE, 0o644)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd op: err=%v f=%v, want ErrInjected", err, f)
	}
}

func TestDirFSImplementsContract(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = DirFS{}
	if err := fsys.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	writeBytes(t, fsys, dir+"/sub/f", []byte("data"), true)
	if err := fsys.SyncDir(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	names, err := fsys.ReadDir(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "f" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if size, err := fsys.Size(dir + "/sub/f"); err != nil || size != 4 {
		t.Fatalf("Size = %d, %v", size, err)
	}
	if err := fsys.Truncate(dir+"/sub/f", 2); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(dir+"/sub/f", dir+"/sub/g"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(dir + "/sub/g"); err != nil {
		t.Fatal(err)
	}
}
