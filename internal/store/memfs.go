package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
)

// Op names a class of mutating filesystem operation for fault planning.
type Op string

// The mutating operations MemFS counts. OpAny matches all of them.
const (
	OpAny     Op = ""
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpRename  Op = "rename"
	OpCreate  Op = "create"
	OpRemove  Op = "remove"
	OpTrunc   Op = "truncate"
	OpSyncDir Op = "syncdir"
)

// FaultMode selects what happens when a fault trips.
type FaultMode int

const (
	// FaultError makes the tripped operation return ErrInjected without
	// applying; the filesystem stays alive (a transient I/O error).
	FaultError FaultMode = iota
	// FaultCrash simulates the process dying at the tripped operation: the
	// op applies partially (a write keeps a seeded prefix of its bytes),
	// every later operation returns ErrCrashed, and Recover() then settles
	// the disk to what would have survived the power loss — synced data
	// plus a seeded, possibly torn, prefix of each file's unsynced tail,
	// minus directory entries whose directories were never fsynced.
	FaultCrash
)

// Fault is a deterministic filesystem fault plan, seeded in the style of
// engine.FaultPlan: the Nth operation of kind Op trips, and Seed drives
// every "how much survived" decision reproducibly.
type Fault struct {
	Op   Op
	Nth  int64 // 1-based; <= 0 disables the plan
	Mode FaultMode
	Seed int64
}

// ErrInjected is returned by an operation tripped in FaultError mode.
var ErrInjected = errors.New("store: injected fault")

// ErrCrashed is returned by every operation after a FaultCrash tripped
// (the process is "dead"); call Recover to settle the disk and reopen.
var ErrCrashed = errors.New("store: filesystem crashed")

// memFile is one file's state: its live content and the prefix length
// guaranteed durable (grown by Sync).
type memFile struct {
	data   []byte
	synced int
}

func (f *memFile) clone() *memFile {
	return &memFile{data: append([]byte(nil), f.data...), synced: f.synced}
}

// durable returns the content that survives a crash: the synced prefix
// plus a seeded portion of the unsynced tail — possibly with its final
// byte torn (bit-flipped), as a real partial sector write would leave it.
func (f *memFile) durable(seed int64, path string) []byte {
	unsynced := len(f.data) - f.synced
	if unsynced <= 0 {
		return append([]byte(nil), f.data[:f.synced]...)
	}
	h := uint64(seed)
	for _, c := range path {
		h = h*1099511628211 + uint64(c)
	}
	keep := int(uint64(engine.SplitMix64(h)) % uint64(unsynced+1))
	out := append([]byte(nil), f.data[:f.synced+keep]...)
	// One crash in three tears the last kept unsynced byte.
	if keep > 0 && engine.SplitMix64(h^0xdead)%3 == 0 {
		out[len(out)-1] ^= 0x5a
	}
	return out
}

// dirOp journals one unsynced directory mutation so a crash can revert it.
type dirOp struct {
	kind     Op
	name     string   // created/removed name, or rename destination
	oldName  string   // rename source
	prev     *memFile // durable snapshot of the entry the op destroyed
	prevOld  *memFile // durable snapshot of a rename's source
	prevSeed int64
}

// MemFS is the deterministic in-memory filesystem behind the crash sweep.
// It tracks, per file, which prefix has been fsynced, and per directory,
// which entry mutations (creates, renames, removes) have not yet been
// made durable by SyncDir — exactly the state a power loss erases. A
// Fault plan trips the Nth operation of a kind with either a transient
// error or a simulated crash; Recover then settles the disk to a
// legal post-crash state derived from the seed, so every recovery claim
// can be tested against every reachable crash state.
//
// MemFS is safe for concurrent use, though the store serializes anyway.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool     // existing directories
	journal map[string][]*dirOp // unsynced entry ops per directory
	counts  map[Op]int64
	fault   *Fault
	tripped bool
	crashed bool
}

// NewMemFS builds an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   map[string]*memFile{},
		dirs:    map[string]bool{"": true, ".": true, "/": true},
		journal: map[string][]*dirOp{},
		counts:  map[Op]int64{},
	}
}

// SetFault installs (or clears, with nil) the fault plan. Counters are
// not reset; use OpCount to aim Nth at an absolute operation index.
func (m *MemFS) SetFault(f *Fault) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fault = f
	m.tripped = false
}

// OpCount reports how many operations of kind op have run (OpAny: all).
func (m *MemFS) OpCount(op Op) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if op == OpAny {
		var n int64
		for _, c := range m.counts {
			n += c
		}
		return n
	}
	return m.counts[op]
}

// Crashed reports whether a FaultCrash has tripped (or CrashNow ran).
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// CrashNow kills the filesystem immediately, as a tripped FaultCrash
// would, using seed for the Recover decisions.
func (m *MemFS) CrashNow(seed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
	m.fault = &Fault{Mode: FaultCrash, Seed: seed}
	m.tripped = true
}

// step counts one operation of kind op and reports what the fault plan
// wants: inject an error, crash, or proceed. Callers hold m.mu.
func (m *MemFS) step(op Op) (injectErr, crash bool) {
	if m.crashed {
		return false, true
	}
	m.counts[op]++
	f := m.fault
	if f == nil || m.tripped || f.Nth <= 0 {
		return false, false
	}
	if f.Op != OpAny && f.Op != op {
		return false, false
	}
	var n int64
	if f.Op == OpAny {
		for _, c := range m.counts {
			n += c
		}
	} else {
		n = m.counts[op]
	}
	if n != f.Nth {
		return false, false
	}
	m.tripped = true
	if f.Mode == FaultError {
		return true, false
	}
	m.crashed = true
	return false, true
}

// seed returns the active fault seed (0 when no plan is installed).
func (m *MemFS) seed() int64 {
	if m.fault != nil {
		return m.fault.Seed
	}
	return 0
}

// Recover settles the disk to a post-crash state and revives the
// filesystem: every file keeps its durable content (synced prefix plus a
// seeded, possibly torn, portion of the unsynced tail), and for each
// directory a seeded number of its oldest unsynced entry ops survive
// while the rest revert — a created file vanishes, a rename un-happens
// (restoring what it overwrote), a removed file reappears. Counters and
// the fault plan are cleared so the caller can reopen the store and keep
// injecting.
func (m *MemFS) Recover() {
	m.mu.Lock()
	defer m.mu.Unlock()
	seed := m.seed()

	// Revert a seeded suffix of each directory's unsynced entry ops, newest
	// first (undo order matters for chains like create→rename).
	dirNames := make([]string, 0, len(m.journal))
	for d := range m.journal {
		dirNames = append(dirNames, d)
	}
	sort.Strings(dirNames)
	for _, d := range dirNames {
		ops := m.journal[d]
		if len(ops) == 0 {
			continue
		}
		h := uint64(seed) ^ 0xfeed
		for _, c := range d {
			h = h*1099511628211 + uint64(c)
		}
		keep := int(uint64(engine.SplitMix64(h)) % uint64(len(ops)+1))
		for i := len(ops) - 1; i >= keep; i-- {
			m.revert(ops[i])
		}
	}

	// Settle every surviving file to its durable content.
	for path, f := range m.files {
		data := f.durable(seed, path)
		f.data = data
		f.synced = len(data)
	}
	m.journal = map[string][]*dirOp{}
	m.counts = map[Op]int64{}
	m.fault = nil
	m.tripped = false
	m.crashed = false
}

// revert undoes one journaled directory op. Callers hold m.mu.
func (m *MemFS) revert(op *dirOp) {
	switch op.kind {
	case OpCreate:
		delete(m.files, op.name)
	case OpRename:
		if f, ok := m.files[op.name]; ok {
			m.files[op.oldName] = f
		} else if op.prevOld != nil {
			m.files[op.oldName] = op.prevOld
		}
		if op.prev != nil {
			m.files[op.name] = op.prev
		} else {
			delete(m.files, op.name)
		}
	case OpRemove:
		if op.prev != nil {
			m.files[op.name] = op.prev
		}
	}
}

// journalOp records an unsynced entry mutation in the parent's journal.
func (m *MemFS) journalOp(op *dirOp, path string) {
	d := dirOf(path)
	m.journal[d] = append(m.journal[d], op)
}

// durableSnapshot captures what a file would retain across a crash at
// this moment (for journal undo records).
func (m *MemFS) durableSnapshot(f *memFile) *memFile {
	if f == nil {
		return nil
	}
	return &memFile{data: append([]byte(nil), f.data[:f.synced]...), synced: f.synced}
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs     *MemFS
	path   string
	f      *memFile
	pos    int
	append bool
	write  bool
	closed bool
}

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f, exists := m.files[name]
	creating := flag&os.O_CREATE != 0 && (!exists || flag&os.O_TRUNC != 0)
	if creating {
		if inject, crash := m.step(OpCreate); inject {
			return nil, fmt.Errorf("creating %s: %w", name, ErrInjected)
		} else if crash {
			return nil, ErrCrashed
		}
		if !m.dirs[dirOf(name)] {
			return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
		}
		prev := m.durableSnapshot(f)
		f = &memFile{}
		m.files[name] = f
		if exists {
			// O_TRUNC of an existing file: journal as a remove + create so a
			// crash can restore the old durable content.
			m.journalOp(&dirOp{kind: OpRemove, name: name, prev: prev}, name)
		}
		m.journalOp(&dirOp{kind: OpCreate, name: name}, name)
	} else if !exists {
		return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
	}
	h := &memHandle{fs: m, path: name, f: f, append: flag&os.O_APPEND != 0,
		write: flag&(os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0}
	if h.append {
		h.pos = len(f.data)
	}
	return h, nil
}

// Read implements io.Reader.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

// Write implements io.Writer; a tripped crash applies a seeded prefix of
// the write (the torn write) before the filesystem dies.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if !h.write {
		return 0, fmt.Errorf("write %s: read-only handle", h.path)
	}
	inject, crash := h.fs.step(OpWrite)
	if inject {
		return 0, fmt.Errorf("writing %s: %w", h.path, ErrInjected)
	}
	if h.append {
		h.pos = len(h.f.data)
	}
	if crash {
		part := int(uint64(engine.SplitMix64(uint64(h.fs.seed())^uint64(len(h.f.data)))) % uint64(len(p)+1))
		h.f.data = append(h.f.data[:h.pos], p[:part]...)
		return 0, ErrCrashed
	}
	h.f.data = append(h.f.data[:h.pos], p...)
	h.pos += len(p)
	return len(p), nil
}

// Sync marks the file's current content durable.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	if h.fs.crashed {
		return ErrCrashed
	}
	inject, crash := h.fs.step(OpSync)
	if inject {
		return fmt.Errorf("syncing %s: %w", h.path, ErrInjected)
	}
	if crash {
		// Died inside fsync: nothing further is promised durable.
		return ErrCrashed
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements io.Closer (no durability implied).
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	inject, crash := m.step(OpRename)
	if inject {
		return fmt.Errorf("renaming %s: %w", oldname, ErrInjected)
	}
	if crash {
		return ErrCrashed
	}
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldname, fs.ErrNotExist)
	}
	op := &dirOp{
		kind:    OpRename,
		name:    newname,
		oldName: oldname,
		prev:    m.durableSnapshot(m.files[newname]),
		prevOld: m.durableSnapshot(f),
	}
	delete(m.files, oldname)
	m.files[newname] = f
	m.journalOp(op, newname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	inject, crash := m.step(OpRemove)
	if inject {
		return fmt.Errorf("removing %s: %w", name, ErrInjected)
	}
	if crash {
		return ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("remove %s: %w", name, fs.ErrNotExist)
	}
	m.journalOp(&dirOp{kind: OpRemove, name: name, prev: m.durableSnapshot(f)}, name)
	delete(m.files, name)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	inject, crash := m.step(OpTrunc)
	if inject {
		return fmt.Errorf("truncating %s: %w", name, ErrInjected)
	}
	if crash {
		return ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("truncate %s: %w", name, fs.ErrNotExist)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("truncate %s to %d: out of range", name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// MkdirAll implements FS. Directory creation is journaled implicitly via
// the files inside; directories themselves always survive (the store
// creates its directory once, before any data it cares about).
func (m *MemFS) MkdirAll(name string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	for p := name; p != "" && p != "." && p != "/"; p = dirOf(p) {
		m.dirs[p] = true
		if dirOf(p) == p {
			break
		}
	}
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if !m.dirs[name] {
		return nil, fmt.Errorf("readdir %s: %w", name, fs.ErrNotExist)
	}
	var names []string
	for p := range m.files {
		if dirOf(p) == name {
			names = append(names, strings.TrimPrefix(p[len(name):], "/"))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir makes a directory's current entry table durable: the journal of
// unsynced creates, renames and removes under it is cleared.
func (m *MemFS) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	inject, crash := m.step(OpSyncDir)
	if inject {
		return fmt.Errorf("syncing dir %s: %w", name, ErrInjected)
	}
	if crash {
		return ErrCrashed
	}
	delete(m.journal, name)
	return nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return 0, ErrCrashed
	}
	f, ok := m.files[name]
	if !ok {
		return 0, fmt.Errorf("stat %s: %w", name, fs.ErrNotExist)
	}
	return int64(len(f.data)), nil
}
