package store

import (
	"bytes"
	"testing"

	"repro/internal/event"
)

// FuzzSegmentDecode throws arbitrary bytes at the segment scanner and
// asserts the recovery substrate's two load-bearing properties:
//
//   - decode never panics, whatever the input;
//   - the decoded prefix re-encodes byte-identically: EncodeSegment of
//     (BaseIndex, Events) reproduces exactly the Good bytes the scan
//     accepted, so "truncate at Good" provably preserves every decoded
//     record and nothing else.
//
// The committed corpus under testdata/fuzz/FuzzSegmentDecode seeds the
// interesting shapes: a valid multi-record segment, truncations, a CRC
// flip, a bad magic, an empty input, and a record with a wild length.
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("TSEG1"))
	f.Add(EncodeSegment(0, nil))
	valid := EncodeSegment(3, []event.Event{
		{Type: "deposit", Time: 1},
		{Type: "withdraw", Time: 1},
		{Type: "IBM-rise", Time: 90000},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[segHeaderSize+recHeaderSize] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := ScanSegment(data)
		if sc.Good < 0 || sc.Good > int64(len(data)) {
			t.Fatalf("Good %d outside input of %d bytes", sc.Good, len(data))
		}
		if sc.Err != nil && sc.Good == 0 {
			if len(sc.Events) != 0 {
				t.Fatalf("events decoded from a rejected header")
			}
			return
		}
		if sc.Good < segHeaderSize {
			t.Fatalf("accepted prefix of %d bytes is shorter than a header", sc.Good)
		}
		re := EncodeSegment(sc.BaseIndex, sc.Events)
		if !bytes.Equal(re, data[:sc.Good]) {
			t.Fatalf("decoded prefix does not re-encode identically:\n got %x\nwant %x", re, data[:sc.Good])
		}
		// And the re-encoded image must scan back to the same events.
		sc2 := ScanSegment(re)
		if sc2.Err != nil || len(sc2.Events) != len(sc.Events) || sc2.BaseIndex != sc.BaseIndex {
			t.Fatalf("re-scan diverged: %+v vs %+v", sc2, sc)
		}
		for i := range sc.Events {
			if sc.Events[i] != sc2.Events[i] {
				t.Fatalf("re-scan event %d: %v != %v", i, sc2.Events[i], sc.Events[i])
			}
		}

		// The index decoder shares the fuzz surface: arbitrary bytes must
		// not panic it either.
		if idx, err := decodeIndex(data); err == nil {
			if _, err2 := decodeIndex(encodeIndex(idx)); err2 != nil {
				t.Fatalf("decoded index does not re-encode cleanly: %v", err2)
			}
		}
	})
}
