package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/event"
	"repro/internal/granularity"
)

// Store is an append-only event log over segment files. See the package
// comment for the on-disk format and the durability discipline. All
// methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	fsys FS
	opts Options

	segs     []*segment // ascending base; last is the tail when unsealed
	tailFile File       // append handle for the tail, nil until first append
	lastTime int64      // newest timestamp in the log (0 when empty)
	unsynced int        // Append calls acknowledged but not yet fsynced
	broken   error      // sticky append-path failure; reopen to clear

	tickers  map[string]func(int64) (int64, bool)
	lastTick map[string]int64 // last indexed tick per granularity, tail only

	degraded []string // quarantined segment file names, read-only when set
	closed   bool
}

// segment is the in-memory shape of one segment file.
type segment struct {
	name     string
	base     int64 // global index of the segment's first record
	records  int64
	bytes    int64 // file length of the valid prefix, header included
	lastTime int64
	sealed   bool
	idx      segIndex
	idxOK    bool
	events   []event.Event // cached decoded records (tail, or post-scan)
	eventsOK bool
}

func (sg *segment) end() int64 { return sg.base + sg.records }

// Options configures Open. The zero value is usable: real filesystem, no
// tick indexes, 4 MiB segments, fsync on every append.
type Options struct {
	// FS is the filesystem; nil means the real one (DirFS).
	FS FS
	// System resolves the granularities named in Grans; required when
	// Grans is non-empty.
	System *granularity.System
	// Grans lists the granularities to maintain sparse tick indexes for.
	Grans []string
	// SegmentMaxBytes rolls the tail to a new segment once it would exceed
	// this many bytes (default 4 MiB). A single oversized batch still lands
	// in one segment.
	SegmentMaxBytes int64
	// SyncEvery fsyncs after every Nth Append call; <= 1 means every call.
	// With a larger stride callers must Sync explicitly before treating
	// appends as durable.
	SyncEvery int
}

// Recovery reports what Open had to do to reach a consistent state. It is
// the payload of tempod's one-line startup recovery summary.
type Recovery struct {
	// SegmentsScanned counts segments decoded record by record (the tail
	// always is; sealed segments only when the manifest could not vouch).
	SegmentsScanned int
	// RecordsReplayed counts records decoded during those scans.
	RecordsReplayed int64
	// BytesTruncated counts bytes cut from the tail (torn or corrupt
	// suffix, or an unborn tail segment removed whole).
	BytesTruncated int64
	// Quarantined lists sealed segments renamed aside as undecodable; the
	// store is read-only (degraded) when non-empty.
	Quarantined []string
	// ManifestRebuilt is set when segments existed but the manifest was
	// missing, stale or corrupt and had to be reconstructed.
	ManifestRebuilt bool
	// Records is the live record count after recovery.
	Records int64
}

// Summary renders the recovery as one log line.
func (r Recovery) Summary() string {
	s := fmt.Sprintf("recovered %d records (segments scanned %d, records replayed %d, bytes truncated %d)",
		r.Records, r.SegmentsScanned, r.RecordsReplayed, r.BytesTruncated)
	if len(r.Quarantined) > 0 {
		s += fmt.Sprintf(", quarantined %d segment(s) — store degraded read-only", len(r.Quarantined))
	}
	if r.ManifestRebuilt {
		s += ", manifest rebuilt"
	}
	return s
}

// Add merges another recovery into r — the aggregate a daemon reports when
// it opens several logs at startup.
func (r *Recovery) Add(o Recovery) {
	r.SegmentsScanned += o.SegmentsScanned
	r.RecordsReplayed += o.RecordsReplayed
	r.BytesTruncated += o.BytesTruncated
	r.Quarantined = append(r.Quarantined, o.Quarantined...)
	r.ManifestRebuilt = r.ManifestRebuilt || o.ManifestRebuilt
	r.Records += o.Records
}

// ErrDegraded reports an append on a store running degraded (a sealed
// segment was quarantined at open); the log is readable but frozen.
var ErrDegraded = errors.New("store: degraded (quarantined segment), read-only")

const segPrefix, segSuffix, quarantineSuffix, idxSuffix = "seg-", ".log", ".quarantine", ".idx"

// segName is the file name of the segment whose first record has global
// index base. The base is in the name as well as the header so each is a
// check on the other.
func segName(base int64) string { return fmt.Sprintf("seg-%020d%s", base, segSuffix) }

// idxName is the index sidecar name for a segment file name.
func idxName(name string) string { return strings.TrimSuffix(name, segSuffix) + idxSuffix }

// parseSegName extracts the base index from a segment file name.
func parseSegName(name string) (int64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(digits) != 20 {
		return 0, false
	}
	base, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || base < 0 {
		return 0, false
	}
	return base, true
}

func (s *Store) join(name string) string { return s.dir + "/" + name }

// Open opens (or creates) the store in dir and runs recovery: sealed
// segments the manifest vouches for (byte count matches disk) are
// trusted; everything else is scanned record by record. The tail is
// always scanned and truncated at the first torn or corrupt record. A
// sealed segment that does not decode is renamed aside (".quarantine")
// and the store comes up read-only. Open never refuses to start over
// damage it can classify; it returns an error only for environmental
// failures (I/O errors, bad Options).
func Open(dir string, opts Options) (*Store, Recovery, error) {
	if opts.FS == nil {
		opts.FS = DirFS{}
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = 4 << 20
	}
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	s := &Store{dir: dir, fsys: opts.FS, opts: opts, tickers: map[string]func(int64) (int64, bool){}, lastTick: map[string]int64{}}
	for _, name := range opts.Grans {
		if opts.System == nil {
			return nil, Recovery{}, fmt.Errorf("store: granularity %q requested with nil System", name)
		}
		tick, ok := opts.System.Ticker(name)
		if !ok {
			return nil, Recovery{}, fmt.Errorf("store: unknown granularity %q", name)
		}
		s.tickers[name] = tick
	}

	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("store: create %s: %w", dir, err)
	}
	names, err := s.fsys.ReadDir(dir)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("store: list %s: %w", dir, err)
	}

	var segNames []string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segNames = append(segNames, name)
		} else if strings.HasSuffix(name, quarantineSuffix) {
			s.degraded = append(s.degraded, name)
		}
	}
	sort.Strings(segNames) // zero-padded bases: lexicographic == numeric

	man, manOK := loadManifest(s.fsys, dir)
	vouched := map[string]manifestSegment{}
	if manOK {
		for _, e := range man.Segments {
			vouched[e.Name] = e
		}
	}

	rec := Recovery{}
	if !manOK && len(segNames) > 0 {
		rec.ManifestRebuilt = true
	}
	manifestDirty := rec.ManifestRebuilt

	for i, name := range segNames {
		isTail := i == len(segNames)-1
		nameBase, _ := parseSegName(name)
		path := s.join(name)

		if !isTail {
			if e, ok := vouched[name]; ok && e.Base == nameBase {
				if size, err := s.fsys.Size(path); err == nil && size == e.Bytes {
					s.segs = append(s.segs, &segment{name: name, base: e.Base, records: e.Records, bytes: e.Bytes, lastTime: e.LastTime, sealed: true})
					continue
				}
			}
		}

		data, err := readFile(s.fsys, path)
		if err != nil {
			return nil, Recovery{}, fmt.Errorf("store: read %s: %w", name, err)
		}
		sc := ScanSegment(data)
		rec.SegmentsScanned++
		rec.RecordsReplayed += int64(len(sc.Events))

		headerBad := sc.Good == 0 || sc.BaseIndex != nameBase
		switch {
		case headerBad && isTail:
			// The tail's header is written and fsynced before any record is
			// acknowledged, so a tail that cannot state its own base holds no
			// acknowledged data: remove it and let the next append recreate
			// the tail at the right base.
			rec.BytesTruncated += int64(len(data))
			if err := s.fsys.Remove(path); err != nil {
				return nil, Recovery{}, fmt.Errorf("store: remove unborn tail %s: %w", name, err)
			}
			s.fsys.Remove(s.join(idxName(name)))
			if err := s.fsys.SyncDir(dir); err != nil {
				return nil, Recovery{}, fmt.Errorf("store: sync dir after removing %s: %w", name, err)
			}
			manifestDirty = true
		case headerBad, !isTail && sc.Err != nil:
			// A sealed segment that does not decode end to end: its records
			// were once acknowledged, so deleting them would be silent data
			// loss. Set it aside and freeze the log instead.
			qname := name + quarantineSuffix
			if err := s.fsys.Rename(path, s.join(qname)); err != nil {
				return nil, Recovery{}, fmt.Errorf("store: quarantine %s: %w", name, err)
			}
			s.fsys.Remove(s.join(idxName(name)))
			if err := s.fsys.SyncDir(dir); err != nil {
				return nil, Recovery{}, fmt.Errorf("store: sync dir after quarantining %s: %w", name, err)
			}
			rec.Quarantined = append(rec.Quarantined, name)
			s.degraded = append(s.degraded, qname)
			manifestDirty = true
		default:
			if isTail && sc.Good < int64(len(data)) {
				// Torn or corrupt suffix past the last whole record: cut it.
				rec.BytesTruncated += int64(len(data)) - sc.Good
				if err := s.truncateTail(path, sc.Good); err != nil {
					return nil, Recovery{}, err
				}
			}
			sg := &segment{name: name, base: sc.BaseIndex, records: int64(len(sc.Events)), bytes: sc.Good, sealed: !isTail, events: sc.Events, eventsOK: true}
			if n := len(sc.Events); n > 0 {
				sg.lastTime = sc.Events[n-1].Time
			}
			sg.idx = s.buildIndex(sc)
			sg.idxOK = true
			s.segs = append(s.segs, sg)
			if !isTail {
				manifestDirty = true
			}
		}
	}

	// Seed append state from the newest surviving segment.
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		s.lastTime = last.lastTime
		if !last.sealed {
			for _, ev := range last.events {
				for name, tick := range s.ticks(ev.Time) {
					s.lastTick[name] = tick
				}
			}
			f, err := s.fsys.OpenFile(s.join(last.name), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, Recovery{}, fmt.Errorf("store: reopen tail %s: %w", last.name, err)
			}
			s.tailFile = f
		}
	}

	if manifestDirty {
		// Best-effort: the manifest is advisory, and every state it could
		// fail in (old copy, missing) just means a slower next open.
		writeManifest(s.fsys, dir, s.manifestLocked())
	}

	rec.Records = s.recordsLocked()
	if len(s.degraded) > 0 && len(rec.Quarantined) == 0 {
		// Quarantined files from an earlier open: still degraded.
		rec.Quarantined = append(rec.Quarantined, s.degraded...)
	}
	return s, rec, nil
}

// truncateTail cuts the tail file to size and makes the cut durable.
func (s *Store) truncateTail(path string, size int64) error {
	if err := s.fsys.Truncate(path, size); err != nil {
		return fmt.Errorf("store: truncate %s: %w", path, err)
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen %s after truncate: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s after truncate: %w", path, err)
	}
	return nil
}

// manifestLocked renders the current sealed-segment set as a manifest.
func (s *Store) manifestLocked() manifest {
	m := manifest{Version: manifestVersion, Segments: []manifestSegment{}}
	for _, sg := range s.segs {
		if sg.sealed {
			m.Segments = append(m.Segments, manifestSegment{Name: sg.name, Base: sg.base, Records: sg.records, Bytes: sg.bytes, LastTime: sg.lastTime})
		}
	}
	return m
}

// recordsLocked is the live record count (holes from quarantined segments
// excluded).
func (s *Store) recordsLocked() int64 {
	var n int64
	for _, sg := range s.segs {
		n += sg.records
	}
	return n
}

// Append writes the events to the log in order and, unless SyncEvery
// batches, fsyncs before returning. It returns the global index of the
// first appended event. Timestamps must be positive and non-decreasing
// with respect to the log's newest record.
func (s *Store) Append(evs ...event.Event) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("store: closed")
	}
	if s.broken != nil {
		return 0, fmt.Errorf("store: append path broken (reopen to recover): %w", s.broken)
	}
	if len(s.degraded) > 0 {
		return 0, ErrDegraded
	}
	if len(evs) == 0 {
		return s.endLocked(), nil
	}
	prev := s.lastTime
	for _, ev := range evs {
		if ev.Time < 1 {
			return 0, fmt.Errorf("store: non-positive timestamp %d", ev.Time)
		}
		if ev.Time < prev {
			return 0, fmt.Errorf("store: timestamp %d before log tail %d", ev.Time, prev)
		}
		if ev.Type == "" {
			return 0, errors.New("store: empty event type")
		}
		if len(ev.Type) > maxTypeLen {
			return 0, fmt.Errorf("store: event type longer than %d bytes", maxTypeLen)
		}
		prev = ev.Time
	}

	var buf []byte
	for _, ev := range evs {
		buf = appendRecord(buf, ev)
	}

	tail := s.tailLocked()
	if tail != nil && tail.records > 0 && tail.bytes+int64(len(buf)) > s.opts.SegmentMaxBytes {
		if err := s.sealTailLocked(); err != nil {
			return 0, err
		}
		tail = nil
	}
	if tail == nil {
		if err := s.newSegmentLocked(); err != nil {
			return 0, err
		}
		tail = s.tailLocked()
	}

	first := tail.end()
	if _, err := s.tailFile.Write(buf); err != nil {
		s.repairTailLocked(tail)
		return 0, fmt.Errorf("store: append: %w", err)
	}

	off := tail.bytes
	for _, ev := range evs {
		for name, tick := range s.ticks(ev.Time) {
			if last, ok := s.lastTick[name]; !ok || tick != last {
				tail.idx[name] = append(tail.idx[name], tickEntry{Tick: tick, Rec: tail.records, Off: off})
				s.lastTick[name] = tick
			}
		}
		tail.events = append(tail.events, ev)
		tail.records++
		off += recordSize(ev)
	}
	tail.bytes = off
	tail.lastTime = evs[len(evs)-1].Time
	s.lastTime = tail.lastTime

	s.unsynced++
	if s.unsynced >= s.opts.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// repairTailLocked rolls the tail file back to its last known-good length
// after a failed write. If the rollback itself fails, the append path is
// marked broken: only a reopen (which re-runs recovery) clears it.
func (s *Store) repairTailLocked(tail *segment) {
	if s.tailFile != nil {
		s.tailFile.Close()
		s.tailFile = nil
	}
	if err := s.truncateTail(s.join(tail.name), tail.bytes); err != nil {
		s.broken = err
		return
	}
	f, err := s.fsys.OpenFile(s.join(tail.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.broken = err
		return
	}
	s.tailFile = f
}

// Sync makes all acknowledged appends durable. A no-op when nothing is
// pending.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if s.broken != nil {
		return fmt.Errorf("store: append path broken (reopen to recover): %w", s.broken)
	}
	if s.unsynced == 0 {
		return nil
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.tailFile == nil {
		s.unsynced = 0
		return nil
	}
	if err := s.tailFile.Sync(); err != nil {
		s.broken = err
		return fmt.Errorf("store: sync: %w", err)
	}
	s.unsynced = 0
	return nil
}

// tailLocked is the unsealed tail segment, nil when none exists.
func (s *Store) tailLocked() *segment {
	if n := len(s.segs); n > 0 && !s.segs[n-1].sealed {
		return s.segs[n-1]
	}
	return nil
}

// endLocked is the next global index to be assigned.
func (s *Store) endLocked() int64 {
	if n := len(s.segs); n > 0 {
		return s.segs[n-1].end()
	}
	return 0
}

// sealTailLocked freezes the tail: fsync its data, persist its tick-index
// sidecar, vouch for it in the manifest. Sidecar and manifest writes are
// best-effort (advisory data); the data fsync is not.
func (s *Store) sealTailLocked() error {
	tail := s.tailLocked()
	if tail == nil {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.tailFile.Close(); err != nil {
		return fmt.Errorf("store: close sealed segment: %w", err)
	}
	s.tailFile = nil
	tail.sealed = true
	s.writeIndexFile(idxName(tail.name), tail.idx)
	writeManifest(s.fsys, s.dir, s.manifestLocked())
	return nil
}

// newSegmentLocked creates the next tail segment: file, header, fsync,
// directory fsync.
func (s *Store) newSegmentLocked() error {
	base := s.endLocked()
	name := segName(base)
	f, err := s.fsys.OpenFile(s.join(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment %s: %w", name, err)
	}
	if _, err := f.Write(appendSegmentHeader(nil, base)); err != nil {
		f.Close()
		return fmt.Errorf("store: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync segment header: %w", err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("store: sync dir after segment create: %w", err)
	}
	s.tailFile = f
	s.segs = append(s.segs, &segment{name: name, base: base, bytes: segHeaderSize, idx: segIndex{}, idxOK: true, eventsOK: true})
	s.lastTick = map[string]int64{}
	return nil
}

// Len is the next global index (== total records ever appended, counting
// quarantined holes).
func (s *Store) Len() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.endLocked()
}

// FirstIndex is the global index of the oldest readable record (0 on an
// empty store).
func (s *Store) FirstIndex() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) > 0 {
		return s.segs[0].base
	}
	return 0
}

// LastTime is the newest timestamp in the log, 0 when empty.
func (s *Store) LastTime() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTime
}

// Degraded reports whether the store is read-only because segments were
// quarantined, and which files hold the unreadable data.
func (s *Store) Degraded() (bool, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.degraded) > 0, append([]string(nil), s.degraded...)
}

// Close fsyncs pending appends and releases the tail handle. The store is
// unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.tailFile != nil {
		if s.unsynced > 0 && s.broken == nil {
			if err := s.tailFile.Sync(); err != nil {
				first = err
			}
		}
		if err := s.tailFile.Close(); err != nil && first == nil {
			first = err
		}
		s.tailFile = nil
	}
	return first
}

// loadEventsLocked materializes a segment's decoded records, scanning the
// file on first use.
func (s *Store) loadEventsLocked(sg *segment) ([]event.Event, error) {
	if sg.eventsOK {
		return sg.events, nil
	}
	data, err := readFile(s.fsys, s.join(sg.name))
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", sg.name, err)
	}
	sc := ScanSegment(data)
	if sc.Err != nil || int64(len(sc.Events)) < sg.records {
		return nil, fmt.Errorf("store: sealed segment %s no longer decodes: %w", sg.name, sc.Err)
	}
	sg.events = sc.Events[:sg.records]
	sg.eventsOK = true
	return sg.events, nil
}

// loadIndexLocked materializes a segment's tick index: the live one for
// the tail, the sidecar when it decodes and fits, a rebuild from the
// segment otherwise.
func (s *Store) loadIndexLocked(sg *segment) (segIndex, error) {
	if sg.idxOK {
		return sg.idx, nil
	}
	if data, err := readFile(s.fsys, s.join(idxName(sg.name))); err == nil {
		if idx, err := decodeIndex(data); err == nil && indexFits(idx, sg) {
			sg.idx = idx
			sg.idxOK = true
			return sg.idx, nil
		}
	}
	events, err := s.loadEventsLocked(sg)
	if err != nil {
		return nil, err
	}
	sg.idx = s.buildIndex(ScanResult{BaseIndex: sg.base, Events: events})
	sg.idxOK = true
	return sg.idx, nil
}

// indexFits sanity-checks a decoded sidecar against the segment's shape.
func indexFits(idx segIndex, sg *segment) bool {
	for _, entries := range idx {
		for _, e := range entries {
			if e.Rec >= sg.records || e.Off < segHeaderSize || e.Off >= sg.bytes {
				return false
			}
		}
	}
	return true
}

// Rec is one read record: its global index and event.
type Rec struct {
	Index int64
	Event event.Event
}

// ReadFrom returns all records with global index >= from, in order.
// Quarantined holes are skipped (indexes jump). The snapshot is taken at
// call time; concurrent appends after the call are not included.
func (s *Store) ReadFrom(from int64) ([]Rec, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readFromLocked(from)
}

func (s *Store) readFromLocked(from int64) ([]Rec, error) {
	var out []Rec
	for _, sg := range s.segs {
		if sg.end() <= from {
			continue
		}
		events, err := s.loadEventsLocked(sg)
		if err != nil {
			return nil, err
		}
		start := int64(0)
		if from > sg.base {
			start = from - sg.base
		}
		for i := start; i < int64(len(events)); i++ {
			out = append(out, Rec{Index: sg.base + i, Event: events[i]})
		}
	}
	return out, nil
}

// ExportRange returns the records with global index in [from, to), in
// order — the migration primitive: a session handover ships its log as one
// range read instead of stitching segment files. to past the end clamps to
// the snapshot taken at call time (like ReadFrom); a negative from or a to
// before from is an error. Quarantined holes are skipped.
func (s *Store) ExportRange(from, to int64) ([]Rec, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("store: bad export range [%d, %d)", from, to)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs, err := s.readFromLocked(from)
	if err != nil {
		return nil, err
	}
	n := len(recs)
	for n > 0 && recs[n-1].Index >= to {
		n--
	}
	return recs[:n], nil
}

// Events returns every readable record's event in order — the log as an
// event.Sequence.
func (s *Store) Events() (event.Sequence, error) {
	recs, err := s.ReadFrom(0)
	if err != nil {
		return nil, err
	}
	seq := make(event.Sequence, len(recs))
	for i, r := range recs {
		seq[i] = r.Event
	}
	return seq, nil
}

// ScanFromTick returns the suffix of the log starting at the first record
// whose granule in gran (per the store's periodic tables) is >= tick.
// Records whose timestamp the granularity does not cover neither start
// nor end the suffix: the suffix begins at the first covered record with
// granule >= tick and runs to the end of the log. gran must be one of the
// indexed granularities from Options.Grans.
func (s *Store) ScanFromTick(gran string, tick int64) ([]Rec, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tickers[gran]; !ok {
		return nil, fmt.Errorf("store: granularity %q not indexed", gran)
	}
	for _, sg := range s.segs {
		idx, err := s.loadIndexLocked(sg)
		if err != nil {
			return nil, err
		}
		entries := idx[gran]
		// First entry with Tick >= tick; entries are ascending in Tick.
		lo := sort.Search(len(entries), func(i int) bool { return entries[i].Tick >= tick })
		if lo == len(entries) {
			continue
		}
		return s.readFromLocked(sg.base + entries[lo].Rec)
	}
	return nil, nil
}
