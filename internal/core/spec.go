package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/event"
)

// Spec is the JSON wire form of an event structure (and optionally a
// complex event type), consumed by the cmd/ tools.
type Spec struct {
	Variables []string   `json:"variables,omitempty"`
	Edges     []EdgeSpec `json:"edges"`
	// Assign, when present, instantiates variables with event types,
	// turning the structure into a complex event type.
	Assign map[string]string `json:"assign,omitempty"`
}

// EdgeSpec is one arc of a Spec.
type EdgeSpec struct {
	From        string    `json:"from"`
	To          string    `json:"to"`
	Constraints []TCGSpec `json:"constraints"`
}

// TCGSpec is one TCG of an EdgeSpec.
type TCGSpec struct {
	Min  int64  `json:"min"`
	Max  int64  `json:"max"`
	Gran string `json:"gran"`
}

// ReadSpec decodes a Spec from JSON.
func ReadSpec(r io.Reader) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("core: decoding spec: %w", err)
	}
	return &sp, nil
}

// Structure materializes the spec into an EventStructure, validating it.
func (sp *Spec) Structure() (*EventStructure, error) {
	s := NewStructure()
	for _, v := range sp.Variables {
		s.AddVariable(Variable(v))
	}
	for _, e := range sp.Edges {
		if len(e.Constraints) == 0 {
			return nil, fmt.Errorf("core: edge %s->%s has no constraints", e.From, e.To)
		}
		for _, c := range e.Constraints {
			tcg, err := NewTCG(c.Min, c.Max, c.Gran)
			if err != nil {
				return nil, err
			}
			if err := s.AddConstraint(Variable(e.From), Variable(e.To), tcg); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ComplexType materializes the spec's structure plus assignment.
func (sp *Spec) ComplexType() (*ComplexType, error) {
	s, err := sp.Structure()
	if err != nil {
		return nil, err
	}
	if len(sp.Assign) == 0 {
		return nil, fmt.Errorf("core: spec has no assignment")
	}
	assign := make(map[Variable]event.Type, len(sp.Assign))
	for v, t := range sp.Assign {
		assign[Variable(v)] = event.Type(t)
	}
	return NewComplexType(s, assign)
}

// ToSpec renders an event structure (and optional assignment) as a Spec.
func ToSpec(s *EventStructure, assign map[Variable]event.Type) *Spec {
	sp := &Spec{}
	for _, v := range s.Variables() {
		sp.Variables = append(sp.Variables, string(v))
	}
	for _, e := range s.Edges() {
		es := EdgeSpec{From: string(e.From), To: string(e.To)}
		for _, c := range e.TCGs {
			es.Constraints = append(es.Constraints, TCGSpec{Min: c.Min, Max: c.Max, Gran: c.Gran})
		}
		sp.Edges = append(sp.Edges, es)
	}
	if assign != nil {
		sp.Assign = make(map[string]string, len(assign))
		for v, t := range assign {
			sp.Assign[string(v)] = string(t)
		}
	}
	return sp
}

// WriteSpec encodes the spec as indented JSON.
func WriteSpec(w io.Writer, sp *Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}
