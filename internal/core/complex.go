package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/granularity"
)

// ComplexType is the paper's complex event type: an event structure whose
// variables are instantiated with event types.
type ComplexType struct {
	Structure *EventStructure
	Assign    map[Variable]event.Type
}

// NewComplexType validates that the assignment is total over the
// structure's variables.
func NewComplexType(s *EventStructure, assign map[Variable]event.Type) (*ComplexType, error) {
	for _, v := range s.Variables() {
		if _, ok := assign[v]; !ok {
			return nil, fmt.Errorf("core: variable %s unassigned", v)
		}
	}
	cp := make(map[Variable]event.Type, len(assign))
	for v, t := range assign {
		if !s.HasVariable(v) {
			return nil, fmt.Errorf("core: assignment mentions unknown variable %s", v)
		}
		cp[v] = t
	}
	return &ComplexType{Structure: s, Assign: cp}, nil
}

// Binding maps each variable of a structure to a concrete event; a valid
// binding is a complex event matching the structure.
type Binding map[Variable]event.Event

// Matches reports whether the binding is a complex event matching the
// structure under sys: for every arc (Xi, Xj), the bound timestamps satisfy
// every TCG in Γ(Xi, Xj). The binding must be total and one-to-one over
// events (the paper's ψ is injective).
func Matches(sys *granularity.System, s *EventStructure, b Binding) bool {
	if len(b) != s.NumVariables() {
		return false
	}
	seen := make(map[event.Event]bool, len(b))
	for _, v := range s.Variables() {
		e, ok := b[v]
		if !ok {
			return false
		}
		if seen[e] {
			return false // ψ must be one-to-one
		}
		seen[e] = true
	}
	for _, edge := range s.Edges() {
		e1, e2 := b[edge.From], b[edge.To]
		for _, c := range edge.TCGs {
			if !c.Satisfied(sys, e1.Time, e2.Time) {
				return false
			}
		}
	}
	return true
}

// IsOccurrence reports whether the binding is an occurrence of the complex
// type: it matches the structure and every variable is bound to an event of
// its assigned type.
func (ct *ComplexType) IsOccurrence(sys *granularity.System, b Binding) bool {
	for v, typ := range ct.Assign {
		if b[v].Type != typ {
			return false
		}
	}
	return Matches(sys, ct.Structure, b)
}

// Fig1a builds the event structure of the paper's Figure 1(a):
//
//	X0 --[1,1]b-day--> X1 --[0,1]week--> X3
//	X0 --[0,5]b-day--> X2 --[0,8]hour--> X3
//
// With X0..X3 assigned IBM-rise, IBM-earnings-report, HP-rise, IBM-fall it
// is the paper's Example 1.
func Fig1a() *EventStructure {
	s := NewStructure()
	s.MustConstrain("X0", "X1", MustTCG(1, 1, "b-day"))
	s.MustConstrain("X0", "X2", MustTCG(0, 5, "b-day"))
	s.MustConstrain("X1", "X3", MustTCG(0, 1, "week"))
	s.MustConstrain("X2", "X3", MustTCG(0, 8, "hour"))
	return s
}

// Example1Assignment is the paper's Example 1 typing of Fig1a.
func Example1Assignment() map[Variable]event.Type {
	return map[Variable]event.Type{
		"X0": "IBM-rise",
		"X1": "IBM-earnings-report",
		"X2": "HP-rise",
		"X3": "IBM-fall",
	}
}

// Fig1b builds the event structure of the paper's Figure 1(b), the
// month/year gadget whose mixed granularities imply the disjunction
// X2 − X0 ∈ {0, 12} months:
//
//	X0 --[0,12]month--> X2
//	X0 --[11,11]month + [0,0]year--> X1
//	X2 --[11,11]month + [0,0]year--> X3
//
// X1 is 11 months after X0 yet in the same year, which pins X0 to the first
// month of a year; X3 pins X2 the same way. With 0 <= X2−X0 <= 12 months
// and both in first months, the distance must be exactly 0 or 12 months —
// the implicit disjunction Theorem 1 exploits.
func Fig1b() *EventStructure {
	s := NewStructure()
	s.MustConstrain("X0", "X2", MustTCG(0, 12, "month"))
	s.MustConstrain("X0", "X1", MustTCG(11, 11, "month"), MustTCG(0, 0, "year"))
	s.MustConstrain("X2", "X3", MustTCG(11, 11, "month"), MustTCG(0, 0, "year"))
	return s
}
