package core

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSpec: the JSON spec decoder and the constructors behind it must
// never panic on untrusted input; accepted specs must materialize and
// round-trip through ToSpec/WriteSpec.
func FuzzReadSpec(f *testing.F) {
	f.Add(`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":0,"gran":"day"}]}]}`)
	f.Add(`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"A":"x","B":"y"}}`)
	f.Add(`{"variables":["A"],"edges":[]}`)
	f.Add(`{"edges":[{"from":"A","to":"A","constraints":[{"min":0,"max":0,"gran":"day"}]}]}`)
	f.Add(`{"edges":[{"from":"A","to":"B","constraints":[{"min":5,"max":1,"gran":""}]}]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ReadSpec(strings.NewReader(in))
		if err != nil {
			return
		}
		s, err := sp.Structure()
		if err != nil {
			// Decoded but structurally invalid: the typed error is the
			// contract; ComplexType must agree without panicking.
			if _, err := sp.ComplexType(); err == nil {
				t.Fatal("ComplexType accepted a spec Structure rejected")
			}
			return
		}
		ct, ctErr := sp.ComplexType()
		if ctErr == nil && ct == nil {
			t.Fatal("nil complex type without error")
		}
		// Round trip: a validated structure re-encodes and re-reads.
		var buf bytes.Buffer
		if err := WriteSpec(&buf, ToSpec(s, nil)); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		sp2, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if _, err := sp2.Structure(); err != nil {
			t.Fatalf("round-tripped structure invalid: %v", err)
		}
	})
}
