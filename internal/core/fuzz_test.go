package core_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
)

// FuzzReadSpec: the JSON spec decoder and the constructors behind it must
// never panic on untrusted input; accepted specs must materialize and
// round-trip through ToSpec/WriteSpec, and small accepted specs must pass
// the full differential oracle (propagate vs exact vs brute force vs TAG
// vs mining) — the solver layers stay mutually consistent on whatever the
// decoder lets through.
func FuzzReadSpec(f *testing.F) {
	f.Add(`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":0,"gran":"day"}]}]}`)
	f.Add(`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"A":"x","B":"y"}}`)
	f.Add(`{"variables":["A"],"edges":[]}`)
	f.Add(`{"edges":[{"from":"A","to":"A","constraints":[{"min":0,"max":0,"gran":"day"}]}]}`)
	f.Add(`{"edges":[{"from":"A","to":"B","constraints":[{"min":5,"max":1,"gran":""}]}]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := core.ReadSpec(strings.NewReader(in))
		if err != nil {
			return
		}
		s, err := sp.Structure()
		if err != nil {
			// Decoded but structurally invalid: the typed error is the
			// contract; ComplexType must agree without panicking.
			if _, err := sp.ComplexType(); err == nil {
				t.Fatal("ComplexType accepted a spec Structure rejected")
			}
			return
		}
		ct, ctErr := sp.ComplexType()
		if ctErr == nil && ct == nil {
			t.Fatal("nil complex type without error")
		}
		// Round trip: a validated structure re-encodes and re-reads.
		var buf bytes.Buffer
		if err := core.WriteSpec(&buf, core.ToSpec(s, nil)); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		sp2, err := core.ReadSpec(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if _, err := sp2.Structure(); err != nil {
			t.Fatalf("round-tripped structure invalid: %v", err)
		}
		// Differential oracle on small instances: wrap the spec in a
		// synthetic granularity system and cross-check every solver layer.
		// A CheckInstance error means some layer rejected the instance
		// upstream (unknown granularity, cycle) — nothing to cross-check.
		if s.NumVariables() > 5 || !boundedIntervals(sp, 10_000) {
			return
		}
		k := oracle.DefaultKnobs()
		k.BruteCap = 200_000
		k.ExactMaxNodes = 100_000
		k.MiningMaxSpace = 50
		inst := oracle.FromSpec(sp, 24)
		if vs, _, err := oracle.CheckInstance(inst, k, oracle.Hooks{}); err == nil {
			for _, v := range vs {
				t.Errorf("oracle violation on accepted spec: %s", v)
			}
		}
	})
}

// boundedIntervals reports whether every TCG interval stays within
// [-bound, bound] — large magnitudes are legal but make the brute-force
// oracle meaningless within its tiny horizon.
func boundedIntervals(sp *core.Spec, bound int64) bool {
	for _, e := range sp.Edges {
		for _, c := range e.Constraints {
			if c.Min < -bound || c.Min > bound || c.Max < -bound || c.Max > bound {
				return false
			}
		}
	}
	return true
}
