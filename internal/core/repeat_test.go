package core

import (
	"testing"

	"repro/internal/event"
)

func TestUnrollShape(t *testing.T) {
	base := NewStructure()
	base.MustConstrain("A", "B", MustTCG(0, 0, "day"), MustTCG(1, 4, "hour"))
	step := []TCG{MustTCG(1, 1, "day")}

	u, err := Unroll(base, 3, "B", step)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumVariables() != 6 {
		t.Fatalf("unrolled vars = %d, want 6", u.NumVariables())
	}
	// 3 copies x 1 arc + 2 step arcs = 5.
	if u.NumEdges() != 5 {
		t.Fatalf("unrolled edges = %d, want 5", u.NumEdges())
	}
	root, err := u.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root != RenamedVariable("A", 1) {
		t.Fatalf("root = %s", root)
	}
	// Step constraints land between B@i and A@i+1.
	cs := u.Constraints(RenamedVariable("B", 1), RenamedVariable("A", 2))
	if len(cs) != 1 || cs[0].String() != "[1,1]day" {
		t.Fatalf("step constraints = %v", cs)
	}
	// k=1 is just a rename.
	u1, err := Unroll(base, 1, "B", nil)
	if err != nil {
		t.Fatal(err)
	}
	if u1.NumVariables() != 2 || u1.NumEdges() != 1 {
		t.Fatal("k=1 unroll should copy the structure once")
	}
}

func TestUnrollValidation(t *testing.T) {
	base := NewStructure()
	base.MustConstrain("A", "B", MustTCG(0, 1, "day"))
	if _, err := Unroll(base, 0, "B", nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Unroll(base, 2, "Z", []TCG{MustTCG(1, 1, "day")}); err == nil {
		t.Error("unknown link accepted")
	}
	if _, err := Unroll(base, 2, "B", nil); err == nil {
		t.Error("missing step constraints accepted")
	}
	if _, err := Unroll(base, 2, "B", []TCG{{Min: 3, Max: 1, Gran: "day"}}); err == nil {
		t.Error("invalid step TCG accepted")
	}
	bad := NewStructure()
	bad.MustConstrain("A", "C", MustTCG(0, 1, "day"))
	bad.MustConstrain("B", "C", MustTCG(0, 1, "day"))
	if _, err := Unroll(bad, 2, "C", []TCG{MustTCG(1, 1, "day")}); err == nil {
		t.Error("unrooted base accepted")
	}
}

func TestUnrollAssignment(t *testing.T) {
	assign := map[Variable]event.Type{"A": "overheat", "B": "shutdown"}
	lifted := UnrollAssignment(2, assign)
	if len(lifted) != 4 {
		t.Fatalf("lifted size = %d", len(lifted))
	}
	if lifted["A@1"] != "overheat" || lifted["B@2"] != "shutdown" {
		t.Fatalf("lifted = %v", lifted)
	}
}

// TestUnrollMatchesRepetition: a three-peat of "A then B 1-4 hours later,
// next repetition starts the next day" matches exactly when three daily
// occurrences line up.
func TestUnrollMatchesRepetition(t *testing.T) {
	base := NewStructure()
	base.MustConstrain("A", "B", MustTCG(0, 0, "day"), MustTCG(1, 4, "hour"))
	u, err := Unroll(base, 3, "B", []TCG{MustTCG(1, 1, "day")})
	if err != nil {
		t.Fatal(err)
	}
	assign := UnrollAssignment(3, map[Variable]event.Type{"A": "a", "B": "b"})
	ct, err := NewComplexType(u, assign)
	if err != nil {
		t.Fatal(err)
	}
	day := func(d, h int) int64 { return event.At(1996, 6, 3+d, h, 0, 0) }
	full := event.Sequence{
		{Type: "a", Time: day(0, 9)}, {Type: "b", Time: day(0, 11)},
		{Type: "a", Time: day(1, 9)}, {Type: "b", Time: day(1, 12)},
		{Type: "a", Time: day(2, 10)}, {Type: "b", Time: day(2, 13)},
	}
	if b, ok := FindOccurrenceBrute(sys, ct, full); !ok {
		t.Fatal("three clean repetitions should match")
	} else if !Matches(sys, u, b) {
		t.Fatal("witness invalid")
	}
	// Breaking the middle repetition (B five hours later) kills the match.
	broken := append(event.Sequence{}, full...)
	broken[3].Time = day(1, 15)
	if _, ok := FindOccurrenceBrute(sys, ct, broken); ok {
		t.Fatal("broken middle repetition should not match")
	}
	// A gap day between repetitions kills the [1,1]day step.
	gapped := append(event.Sequence{}, full...)
	gapped[4].Time = day(3, 10)
	gapped[5].Time = day(3, 13)
	if _, ok := FindOccurrenceBrute(sys, ct, gapped); ok {
		t.Fatal("gapped repetition should not match")
	}
}

func TestConcat(t *testing.T) {
	// "Same-day A then B" followed, two days later, by "C then D within an
	// hour".
	s1 := NewStructure()
	s1.MustConstrain("A", "B", MustTCG(0, 0, "day"))
	s2 := NewStructure()
	s2.MustConstrain("C", "D", MustTCG(0, 1, "hour"))
	cat, err := Concat(s1, "B", []TCG{MustTCG(2, 2, "day")}, s2)
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumVariables() != 4 || cat.NumEdges() != 3 {
		t.Fatalf("concat shape: %d vars, %d edges", cat.NumVariables(), cat.NumEdges())
	}
	root, err := cat.Root()
	if err != nil || root != RenamedVariable("A", 1) {
		t.Fatalf("root = %v, %v", root, err)
	}
	cs := cat.Constraints(RenamedVariable("B", 1), RenamedVariable("C", 2))
	if len(cs) != 1 || cs[0].String() != "[2,2]day" {
		t.Fatalf("step constraints = %v", cs)
	}
	// Semantics: a concrete scenario spanning both halves.
	b := Binding{
		RenamedVariable("A", 1): {Type: "a", Time: event.At(1996, 6, 3, 9, 0, 0)},
		RenamedVariable("B", 1): {Type: "b", Time: event.At(1996, 6, 3, 15, 0, 0)},
		RenamedVariable("C", 2): {Type: "c", Time: event.At(1996, 6, 5, 10, 0, 0)},
		RenamedVariable("D", 2): {Type: "d", Time: event.At(1996, 6, 5, 10, 30, 0)},
	}
	if !Matches(sys, cat, b) {
		t.Fatal("valid scenario rejected")
	}
	// Breaking the step distance fails.
	b[RenamedVariable("C", 2)] = event.Event{Type: "c", Time: event.At(1996, 6, 4, 10, 0, 0)}
	if Matches(sys, cat, b) {
		t.Fatal("wrong step distance accepted")
	}
}

func TestConcatValidation(t *testing.T) {
	ok1 := NewStructure()
	ok1.MustConstrain("A", "B", MustTCG(0, 0, "day"))
	ok2 := NewStructure()
	ok2.MustConstrain("C", "D", MustTCG(0, 1, "hour"))
	step := []TCG{MustTCG(1, 1, "day")}
	if _, err := Concat(ok1, "Z", step, ok2); err == nil {
		t.Error("unknown link accepted")
	}
	if _, err := Concat(ok1, "B", nil, ok2); err == nil {
		t.Error("missing step accepted")
	}
	if _, err := Concat(ok1, "B", []TCG{{Min: 2, Max: 1, Gran: "day"}}, ok2); err == nil {
		t.Error("invalid step TCG accepted")
	}
	bad := NewStructure()
	bad.MustConstrain("P", "R", MustTCG(0, 1, "day"))
	bad.MustConstrain("Q", "R", MustTCG(0, 1, "day"))
	if _, err := Concat(ok1, "B", step, bad); err == nil {
		t.Error("unrooted second structure accepted")
	}
}

// TestUnrollIsSelfConcat: Unroll(s, 2, link, step) and Concat(s, link,
// step, s) are the same structure — the two composition APIs agree.
func TestUnrollIsSelfConcat(t *testing.T) {
	s := NewStructure()
	s.MustConstrain("A", "B", MustTCG(0, 0, "day"), MustTCG(1, 4, "hour"))
	s.MustConstrain("A", "C", MustTCG(0, 2, "day"))
	step := []TCG{MustTCG(1, 1, "b-day")}
	u, err := Unroll(s, 2, "B", step)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Concat(s, "B", step, s)
	if err != nil {
		t.Fatal(err)
	}
	if u.String() != c.String() {
		t.Fatalf("Unroll(2) != self-Concat:\n%s\nvs\n%s", u, c)
	}
}
