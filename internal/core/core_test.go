package core

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/granularity"
)

var sys = granularity.Default()

func TestTCGValidation(t *testing.T) {
	if _, err := NewTCG(0, 5, "day"); err != nil {
		t.Fatalf("valid TCG rejected: %v", err)
	}
	for _, bad := range []struct{ m, n int64 }{{-1, 5}, {3, 2}} {
		if _, err := NewTCG(bad.m, bad.n, "day"); err == nil {
			t.Errorf("TCG [%d,%d] should be invalid", bad.m, bad.n)
		}
	}
	if _, err := NewTCG(0, 1, ""); err == nil {
		t.Error("empty granularity should be invalid")
	}
	if got := MustTCG(1, 1, "month").String(); got != "[1,1]month" {
		t.Errorf("String = %q", got)
	}
}

func TestMustTCGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTCG should panic on invalid input")
		}
	}()
	MustTCG(5, 1, "day")
}

func TestTCGSameDaySemantics(t *testing.T) {
	// The paper's central example: [0,0]day is satisfied by events within
	// the same calendar day and NOT by events 5 hours apart across
	// midnight, while [0,86399]second accepts the latter.
	sameDay := MustTCG(0, 0, "day")
	t1 := event.At(1996, 6, 3, 23, 0, 0) // 11pm
	t2 := event.At(1996, 6, 4, 4, 0, 0)  // 4am next day
	if sameDay.Satisfied(sys, t1, t2) {
		t.Fatal("[0,0]day must reject a cross-midnight pair")
	}
	t3 := event.At(1996, 6, 3, 1, 0, 0)
	t4 := event.At(1996, 6, 3, 23, 59, 59)
	if !sameDay.Satisfied(sys, t3, t4) {
		t.Fatal("[0,0]day must accept a same-day pair 23 hours apart")
	}
	// The naive second translation disagrees on the first pair.
	sec := MustTCG(0, 86399, "second")
	if !sec.Satisfied(sys, t1, t2) {
		t.Fatal("[0,86399]second accepts the cross-midnight pair (the paper's point)")
	}
}

func TestTCGOrderAndGaps(t *testing.T) {
	c := MustTCG(0, 2, "hour")
	if c.Satisfied(sys, 100, 50) {
		t.Fatal("t1 > t2 must fail")
	}
	if !c.Satisfied(sys, 50, 50) {
		t.Fatal("equal timestamps with [0,..] must hold")
	}
	// b-day constraint undefined on a weekend timestamp.
	b := MustTCG(0, 1, "b-day")
	sat := event.At(1996, 6, 1, 12, 0, 0)
	mon := event.At(1996, 6, 3, 12, 0, 0)
	if b.Satisfied(sys, sat, mon) {
		t.Fatal("constraint with an uncovered endpoint must fail")
	}
	tue := event.At(1996, 6, 4, 12, 0, 0)
	if !b.Satisfied(sys, mon, tue) {
		t.Fatal("Mon->Tue is 1 b-day")
	}
	// Unknown granularity never satisfied.
	u := TCG{Min: 0, Max: 1, Gran: "fortnight"}
	if u.Satisfied(sys, 1, 2) {
		t.Fatal("unknown granularity should fail closed")
	}
}

func TestTCGMonthExample(t *testing.T) {
	// Paper: e1, e2 satisfy [1,1]month iff e2 occurs in the next month.
	c := MustTCG(1, 1, "month")
	e1 := event.At(1996, 3, 31, 10, 0, 0)
	e2 := event.At(1996, 4, 1, 9, 0, 0)
	if !c.Satisfied(sys, e1, e2) {
		t.Fatal("Mar 31 -> Apr 1 is one month apart")
	}
	e3 := event.At(1996, 3, 1, 0, 0, 0)
	if c.Satisfied(sys, e3, e1) {
		t.Fatal("same-month pair is 0 months apart")
	}
}

func TestTCGIntersect(t *testing.T) {
	a := MustTCG(0, 5, "day")
	b := MustTCG(2, 9, "day")
	r, ok := a.Intersect(b)
	if !ok || r.Min != 2 || r.Max != 5 {
		t.Fatalf("intersect = %v,%v", r, ok)
	}
	c := MustTCG(7, 9, "day")
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint ranges should report empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-granularity intersect should panic")
		}
	}()
	a.Intersect(MustTCG(0, 1, "hour"))
}

func TestStructureBasics(t *testing.T) {
	s := Fig1a()
	if s.NumVariables() != 4 || s.NumEdges() != 4 {
		t.Fatalf("Fig1a has %d vars, %d edges", s.NumVariables(), s.NumEdges())
	}
	root, err := s.Root()
	if err != nil || root != "X0" {
		t.Fatalf("Root = %v, %v", root, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Fig1a invalid: %v", err)
	}
	grans := s.Granularities()
	want := []string{"b-day", "hour", "week"}
	if len(grans) != 3 || grans[0] != want[0] || grans[1] != want[1] || grans[2] != want[2] {
		t.Fatalf("Granularities = %v", grans)
	}
	if !s.HasPath("X0", "X3") || s.HasPath("X1", "X2") || s.HasPath("X3", "X0") {
		t.Fatal("HasPath wrong")
	}
	leaves := s.Leaves()
	if len(leaves) != 1 || leaves[0] != "X3" {
		t.Fatalf("Leaves = %v", leaves)
	}
	cs := s.Constraints("X0", "X1")
	if len(cs) != 1 || cs[0].String() != "[1,1]b-day" {
		t.Fatalf("Constraints(X0,X1) = %v", cs)
	}
	if s.Constraints("X1", "X0") != nil {
		t.Fatal("reverse arc should have no constraints")
	}
	if got := s.String(); !strings.Contains(got, "X0 -> X1 : [1,1]b-day") {
		t.Fatalf("String = %q", got)
	}
}

func TestStructureRejectsSelfLoop(t *testing.T) {
	s := NewStructure()
	if err := s.AddConstraint("X", "X", MustTCG(0, 1, "day")); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestStructureCycleDetection(t *testing.T) {
	s := NewStructure()
	s.MustConstrain("A", "B", MustTCG(0, 1, "day"))
	s.MustConstrain("B", "C", MustTCG(0, 1, "day"))
	if !s.IsAcyclic() {
		t.Fatal("chain should be acyclic")
	}
	s.MustConstrain("C", "A", MustTCG(0, 1, "day"))
	if s.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
	if err := s.Validate(); err == nil {
		t.Fatal("cyclic structure should fail validation")
	}
}

func TestStructureRootedness(t *testing.T) {
	s := NewStructure()
	s.MustConstrain("A", "C", MustTCG(0, 1, "day"))
	s.MustConstrain("B", "C", MustTCG(0, 1, "day"))
	if _, err := s.Root(); err == nil {
		t.Fatal("two sources should mean no root")
	}
	single := NewStructure()
	single.AddVariable("Z")
	root, err := single.Root()
	if err != nil || root != "Z" {
		t.Fatalf("singleton root = %v, %v", root, err)
	}
	empty := NewStructure()
	if _, err := empty.Root(); err == nil {
		t.Fatal("empty structure should have no root")
	}
}

func TestTopoOrder(t *testing.T) {
	s := Fig1a()
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[Variable]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range s.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order violates edge %s->%s", e.From, e.To)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	s := Fig1a()
	c := s.Clone()
	c.MustConstrain("X3", "X4", MustTCG(0, 1, "day"))
	if s.HasVariable("X4") {
		t.Fatal("clone mutation leaked into original")
	}
	if c.NumEdges() != s.NumEdges()+1 {
		t.Fatal("clone edge count wrong")
	}
}

func TestInducedSubgraph(t *testing.T) {
	s := Fig1a()
	sub := s.InducedSubgraph([]Variable{"X0", "X1", "X3"})
	if sub.NumVariables() != 3 {
		t.Fatalf("subgraph vars = %d", sub.NumVariables())
	}
	// Only X0->X1 and X1->X3 survive.
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d", sub.NumEdges())
	}
	if sub.Constraints("X0", "X3") != nil {
		t.Fatal("no direct X0->X3 arc exists in Fig1a")
	}
}

func TestMatchesFig1a(t *testing.T) {
	s := Fig1a()
	// Construct a satisfying scenario:
	// X0 IBM-rise Mon 1996-06-03 10:00; X1 earnings Tue 06-04 17:00 (next
	// b-day); X3 IBM-fall Wed 06-05 11:00 (same week as X1);
	// X2 HP-rise Wed 06-05 09:00 (2 b-days after X0, 2 hours before X3).
	b := Binding{
		"X0": {Type: "IBM-rise", Time: event.At(1996, 6, 3, 10, 0, 0)},
		"X1": {Type: "IBM-earnings-report", Time: event.At(1996, 6, 4, 17, 0, 0)},
		"X2": {Type: "HP-rise", Time: event.At(1996, 6, 5, 9, 0, 0)},
		"X3": {Type: "IBM-fall", Time: event.At(1996, 6, 5, 11, 0, 0)},
	}
	if !Matches(sys, s, b) {
		t.Fatal("valid Fig1a scenario rejected")
	}
	ct, err := NewComplexType(s, Example1Assignment())
	if err != nil {
		t.Fatal(err)
	}
	if !ct.IsOccurrence(sys, b) {
		t.Fatal("scenario should be an occurrence of Example 1's type")
	}
	// Wrong type on X2 breaks the occurrence but not the match.
	b2 := Binding{}
	for k, v := range b {
		b2[k] = v
	}
	b2["X2"] = event.Event{Type: "HP-fall", Time: b["X2"].Time}
	if !Matches(sys, s, b2) {
		t.Fatal("match is type-agnostic")
	}
	if ct.IsOccurrence(sys, b2) {
		t.Fatal("occurrence must respect the type assignment")
	}
}

func TestMatchesRejects(t *testing.T) {
	s := Fig1a()
	base := Binding{
		"X0": {Type: "a", Time: event.At(1996, 6, 3, 10, 0, 0)},
		"X1": {Type: "b", Time: event.At(1996, 6, 4, 17, 0, 0)},
		"X2": {Type: "c", Time: event.At(1996, 6, 5, 9, 0, 0)},
		"X3": {Type: "d", Time: event.At(1996, 6, 5, 11, 0, 0)},
	}
	// Partial binding.
	part := Binding{"X0": base["X0"]}
	if Matches(sys, s, part) {
		t.Fatal("partial binding accepted")
	}
	// Non-injective binding.
	dup := Binding{}
	for k, v := range base {
		dup[k] = v
	}
	dup["X1"] = dup["X0"]
	if Matches(sys, s, dup) {
		t.Fatal("non-injective binding accepted")
	}
	// X1 on the same b-day as X0 violates [1,1]b-day.
	bad := Binding{}
	for k, v := range base {
		bad[k] = v
	}
	bad["X1"] = event.Event{Type: "b", Time: event.At(1996, 6, 3, 17, 0, 0)}
	if Matches(sys, s, bad) {
		t.Fatal("[1,1]b-day violation accepted")
	}
	// X3 more than 8 hours after X2 violates [0,8]hour.
	bad2 := Binding{}
	for k, v := range base {
		bad2[k] = v
	}
	bad2["X3"] = event.Event{Type: "d", Time: event.At(1996, 6, 5, 19, 0, 0)}
	if Matches(sys, s, bad2) {
		t.Fatal("[0,8]hour violation accepted")
	}
}

func TestNewComplexTypeValidation(t *testing.T) {
	s := Fig1a()
	if _, err := NewComplexType(s, map[Variable]event.Type{"X0": "a"}); err == nil {
		t.Fatal("partial assignment accepted")
	}
	full := Example1Assignment()
	full["X9"] = "ghost"
	if _, err := NewComplexType(s, full); err == nil {
		t.Fatal("assignment with unknown variable accepted")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := Fig1a()
	sp := ToSpec(s, Example1Assignment())
	var buf strings.Builder
	if err := WriteSpec(&buf, sp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := got.Structure()
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != s.String() {
		t.Fatalf("round trip changed structure:\n%s\nvs\n%s", s2, s)
	}
	ct, err := got.ComplexType()
	if err != nil {
		t.Fatal(err)
	}
	if ct.Assign["X0"] != "IBM-rise" {
		t.Fatal("assignment lost in round trip")
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []string{
		`{"edges":[{"from":"A","to":"B","constraints":[]}]}`,
		`{"edges":[{"from":"A","to":"B","constraints":[{"min":3,"max":1,"gran":"day"}]}]}`,
		`{"edges":[{"from":"A","to":"A","constraints":[{"min":0,"max":1,"gran":"day"}]}]}`,
		`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":1,"gran":"day"}]},{"from":"B","to":"A","constraints":[{"min":0,"max":1,"gran":"day"}]}]}`,
		`{"unknown_field":1,"edges":[]}`,
		`not json`,
	}
	for _, in := range cases {
		sp, err := ReadSpec(strings.NewReader(in))
		if err != nil {
			continue // decode-level rejection is fine
		}
		if _, err := sp.Structure(); err == nil {
			t.Errorf("spec %q should fail", in)
		}
	}
	// Structure without assignment cannot become a complex type.
	sp, err := ReadSpec(strings.NewReader(`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":1,"gran":"day"}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.ComplexType(); err == nil {
		t.Fatal("spec without assignment should not build a complex type")
	}
}

func TestFig1bShape(t *testing.T) {
	s := Fig1b()
	if err := s.Validate(); err != nil {
		t.Fatalf("Fig1b invalid: %v", err)
	}
	root, _ := s.Root()
	if root != "X0" {
		t.Fatalf("Fig1b root = %s", root)
	}
	if got := len(s.Constraints("X0", "X1")); got != 2 {
		t.Fatalf("Fig1b X0->X1 should carry 2 TCGs, got %d", got)
	}
}

func TestFig1bDisjunctionSemantics(t *testing.T) {
	// Direct check of the paper's Section 3.1 claim on concrete events:
	// any binding satisfying Fig1b has X2 in the same or next January.
	s := Fig1b()
	jan96 := event.At(1996, 1, 10, 0, 0, 0)
	dec96 := event.At(1996, 12, 10, 0, 0, 0)
	jan97 := event.At(1997, 1, 5, 0, 0, 0)
	dec97 := event.At(1997, 12, 20, 0, 0, 0)
	jul96 := event.At(1996, 7, 1, 0, 0, 0)

	bind := func(x0, x2 int64) Binding {
		// X1 must be 11 months after X0 in the same year; pick December of
		// X0's year. Same for X3 relative to X2.
		return Binding{
			"X0": {Type: "e0", Time: x0},
			"X1": {Type: "e1", Time: dec96},
			"X2": {Type: "e2", Time: x2},
			"X3": {Type: "e3", Time: x2yearDec(x2, dec96, dec97)},
		}
	}
	if !Matches(sys, s, bind(jan96, jan96+3600)) {
		t.Fatal("0-month distance should match")
	}
	if !Matches(sys, s, bind(jan96, jan97)) {
		t.Fatal("12-month distance should match")
	}
	if Matches(sys, s, bind(jan96, jul96)) {
		t.Fatal("6-month distance must not match (X2 not in January)")
	}
}

func x2yearDec(x2, dec96, dec97 int64) int64 {
	if x2 >= event.At(1997, 1, 1, 0, 0, 0) {
		return dec97
	}
	return dec96
}

func TestStructureWriteDOT(t *testing.T) {
	var b strings.Builder
	if err := Fig1a().WriteDOT(&b, "fig1a"); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{`digraph "fig1a"`, `"X0" [shape=doublecircle]`, `"X0" -> "X1"`, "[1,1]b-day"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
