package core

import (
	"repro/internal/event"
	"repro/internal/granularity"
)

// OccursBrute decides whether the complex type occurs in the sequence by
// exhaustive search over injective bindings of events to variables. It is
// exponential in the number of variables and exists as the reference
// implementation the TAG simulation is validated against (Theorem 3) and as
// the comparison point for Theorem-4 runtime experiments.
func OccursBrute(sys *granularity.System, ct *ComplexType, seq event.Sequence) bool {
	b, ok := FindOccurrenceBrute(sys, ct, seq)
	_ = b
	return ok
}

// FindOccurrenceBrute is OccursBrute returning a witness binding.
func FindOccurrenceBrute(sys *granularity.System, ct *ComplexType, seq event.Sequence) (Binding, bool) {
	s := ct.Structure
	order, err := s.TopoOrder()
	if err != nil {
		return nil, false
	}
	// Candidate events per variable: those with the assigned type.
	cands := make(map[Variable][]event.Event, len(order))
	for _, v := range order {
		typ := ct.Assign[v]
		for _, e := range seq {
			if e.Type == typ {
				cands[v] = append(cands[v], e)
			}
		}
		if len(cands[v]) == 0 {
			return nil, false
		}
	}
	b := Binding{}
	used := make(map[event.Event]bool)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return true
		}
		v := order[k]
		for _, e := range cands[v] {
			if used[e] {
				continue
			}
			ok := true
			for u, eu := range b {
				for _, c := range s.Constraints(u, v) {
					if !c.Satisfied(sys, eu.Time, e.Time) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				for _, c := range s.Constraints(v, u) {
					if !c.Satisfied(sys, e.Time, eu.Time) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if !ok {
				continue
			}
			b[v] = e
			used[e] = true
			if rec(k + 1) {
				return true
			}
			delete(b, v)
			delete(used, e)
		}
		return false
	}
	if rec(0) {
		return b, true
	}
	return nil, false
}
