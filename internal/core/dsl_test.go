package core

import (
	"strings"
	"testing"
)

const fig1aDSL = `
# Figure 1(a)
X0 -> X1 : [1,1]b-day
X0 -> X2 : [0,5]b-day
X1 -> X3 : [0,1]week
X2 -> X3 : [0,8]hour
assign X0 = IBM-rise
assign X3 = IBM-fall
`

func TestParseDSL(t *testing.T) {
	s, assign, err := ParseDSL(strings.NewReader(fig1aDSL))
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != Fig1a().String() {
		t.Fatalf("DSL parse differs from Fig1a:\n%s\nvs\n%s", s, Fig1a())
	}
	if assign["X0"] != "IBM-rise" || assign["X3"] != "IBM-fall" {
		t.Fatalf("assign = %v", assign)
	}
}

func TestDSLRoundTrip(t *testing.T) {
	s, assign, err := ParseDSL(strings.NewReader(fig1aDSL))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDSL(&sb, s, assign); err != nil {
		t.Fatal(err)
	}
	s2, assign2, err := ParseDSL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, sb.String())
	}
	if s2.String() != s.String() {
		t.Fatal("round trip changed the structure")
	}
	if len(assign2) != len(assign) {
		t.Fatal("round trip changed the assignment")
	}
}

func TestParseDSLMultipleTCGsPerArc(t *testing.T) {
	in := "A -> B : [0,0]day [2,23]hour\n"
	s, _, err := ParseDSL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Constraints("A", "B")
	if len(cs) != 2 || cs[0].String() != "[0,0]day" || cs[1].String() != "[2,23]hour" {
		t.Fatalf("constraints = %v", cs)
	}
}

func TestParseDSLErrors(t *testing.T) {
	cases := []string{
		"A B : [0,1]day",                       // no arrow
		"A -> B [0,1]day",                      // no colon
		"A -> B :",                             // no constraints
		"A -> B : (0,1)day",                    // bad TCG syntax
		"A -> B : [x,1]day",                    // bad bound
		"A -> B : [5,1]day",                    // inverted bounds
		"A -> B : [0,1]",                       // missing granularity
		" -> B : [0,1]day",                     // empty variable
		"assign = x",                           // empty assign variable
		"assign Z",                             // malformed assign
		"A -> B : [0,1]day\nassign C = x",      // assign of unknown variable
		"A -> B : [0,1]day\nB -> A : [0,1]day", // cycle
	}
	for i, in := range cases {
		if _, _, err := ParseDSL(strings.NewReader(in)); err == nil {
			t.Errorf("case %d (%q) accepted", i, in)
		}
	}
}

func TestParseTCG(t *testing.T) {
	c, err := ParseTCG("[0,8]hour")
	if err != nil || c.String() != "[0,8]hour" {
		t.Fatalf("ParseTCG = %v, %v", c, err)
	}
	if _, err := ParseTCG("[ 1 , 2 ]month"); err != nil {
		t.Fatalf("spaces inside bounds should parse: %v", err)
	}
	if _, err := ParseTCG("0,8]hour"); err == nil {
		t.Fatal("missing bracket accepted")
	}
}

// FuzzParseDSL: the DSL parser must never panic; accepted inputs must
// round-trip through WriteDSL.
func FuzzParseDSL(f *testing.F) {
	f.Add(fig1aDSL)
	f.Add("A -> B : [0,1]day\n")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, in string) {
		s, assign, err := ParseDSL(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteDSL(&sb, s, assign); err != nil {
			t.Fatalf("accepted structure failed to write: %v", err)
		}
		s2, _, err := ParseDSL(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
		if s2.String() != s.String() {
			t.Fatalf("round trip changed structure")
		}
	})
}
