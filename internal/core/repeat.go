package core

import (
	"fmt"

	"repro/internal/event"
)

// Unroll implements the paper's Section-6 "repetitive" extension: event
// structures are acyclic, so a pattern that repeats k times is expressed by
// unrolling — k renamed copies of the structure chained by step
// constraints from a link variable of copy i to the root of copy i+1.
//
// Variables of copy i (1-based) are renamed "X@i". The result is again a
// rooted DAG, so everything downstream (propagation, TAG compilation,
// mining) applies unchanged; RenamedVariable recovers copy-local names.
//
// link must be a variable of s (typically the root or a leaf); step is the
// conjunctive TCG set between copy i's link and copy i+1's root, and must
// be non-empty so the unrolled graph stays connected and rooted.
func Unroll(s *EventStructure, k int, link Variable, step []TCG) (*EventStructure, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: Unroll requires k >= 1")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.HasVariable(link) {
		return nil, fmt.Errorf("core: link variable %s not in structure", link)
	}
	if k > 1 && len(step) == 0 {
		return nil, fmt.Errorf("core: Unroll needs step constraints for k > 1")
	}
	for _, c := range step {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	root, err := s.Root()
	if err != nil {
		return nil, err
	}
	out := NewStructure()
	for copyIdx := 1; copyIdx <= k; copyIdx++ {
		for _, v := range s.Variables() {
			out.AddVariable(RenamedVariable(v, copyIdx))
		}
		for _, e := range s.Edges() {
			for _, c := range e.TCGs {
				if err := out.AddConstraint(RenamedVariable(e.From, copyIdx), RenamedVariable(e.To, copyIdx), c); err != nil {
					return nil, err
				}
			}
		}
		if copyIdx > 1 {
			from := RenamedVariable(link, copyIdx-1)
			to := RenamedVariable(root, copyIdx)
			for _, c := range step {
				if err := out.AddConstraint(from, to, c); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: unrolled structure invalid: %w", err)
	}
	return out, nil
}

// RenamedVariable is the name of variable v in copy i of an unrolled
// structure.
func RenamedVariable(v Variable, copyIdx int) Variable {
	return Variable(fmt.Sprintf("%s@%d", v, copyIdx))
}

// UnrollAssignment lifts a per-copy typing to an unrolled structure: the
// same assignment applied to every copy.
func UnrollAssignment(k int, assign map[Variable]event.Type) map[Variable]event.Type {
	out := make(map[Variable]event.Type, len(assign)*k)
	for copyIdx := 1; copyIdx <= k; copyIdx++ {
		for v, typ := range assign {
			out[RenamedVariable(v, copyIdx)] = typ
		}
	}
	return out
}

// Concat composes two event structures sequentially: a renamed copy of s1
// (variables "X@1") followed by a renamed copy of s2 ("X@2"), with the step
// TCGs from s1's link variable to s2's root. Unroll(s, k, ...) is the
// special case of concatenating s with itself k-1 times. The result is a
// rooted DAG compatible with everything downstream.
func Concat(s1 *EventStructure, link Variable, step []TCG, s2 *EventStructure) (*EventStructure, error) {
	if err := s1.Validate(); err != nil {
		return nil, err
	}
	if err := s2.Validate(); err != nil {
		return nil, err
	}
	if !s1.HasVariable(link) {
		return nil, fmt.Errorf("core: link variable %s not in first structure", link)
	}
	if len(step) == 0 {
		return nil, fmt.Errorf("core: Concat needs step constraints")
	}
	for _, c := range step {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	root2, err := s2.Root()
	if err != nil {
		return nil, err
	}
	out := NewStructure()
	copyInto := func(s *EventStructure, idx int) error {
		for _, v := range s.Variables() {
			out.AddVariable(RenamedVariable(v, idx))
		}
		for _, e := range s.Edges() {
			for _, c := range e.TCGs {
				if err := out.AddConstraint(RenamedVariable(e.From, idx), RenamedVariable(e.To, idx), c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := copyInto(s1, 1); err != nil {
		return nil, err
	}
	if err := copyInto(s2, 2); err != nil {
		return nil, err
	}
	from := RenamedVariable(link, 1)
	to := RenamedVariable(root2, 2)
	for _, c := range step {
		if err := out.AddConstraint(from, to, c); err != nil {
			return nil, err
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: concatenated structure invalid: %w", err)
	}
	return out, nil
}
