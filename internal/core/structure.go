package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Variable names an event variable of an event structure.
type Variable string

// Edge is a directed constraint edge of an event structure with its
// conjunctive set of TCGs.
type Edge struct {
	From, To Variable
	TCGs     []TCG
}

// EventStructure is the paper's event structure: a rooted DAG (W, A, Γ)
// where W is a set of event variables, A ⊆ W×W, and Γ assigns each arc a
// finite set of TCGs taken in conjunction.
//
// The zero value is not usable; build with NewStructure.
type EventStructure struct {
	vars  []Variable
	index map[Variable]int
	arcs  map[Variable]map[Variable][]TCG // from -> to -> conjunctive TCGs
	preds map[Variable][]Variable
}

// NewStructure returns an empty event structure.
func NewStructure() *EventStructure {
	return &EventStructure{
		index: make(map[Variable]int),
		arcs:  make(map[Variable]map[Variable][]TCG),
		preds: make(map[Variable][]Variable),
	}
}

// AddVariable registers a variable; adding an existing variable is a no-op.
func (s *EventStructure) AddVariable(v Variable) {
	if _, ok := s.index[v]; ok {
		return
	}
	s.index[v] = len(s.vars)
	s.vars = append(s.vars, v)
}

// AddConstraint adds a TCG to the arc (from, to), creating variables and
// the arc as needed. It rejects self-loops and invalid TCGs.
func (s *EventStructure) AddConstraint(from, to Variable, c TCG) error {
	if from == to {
		return fmt.Errorf("core: self-loop on %s", from)
	}
	if err := c.Validate(); err != nil {
		return err
	}
	s.AddVariable(from)
	s.AddVariable(to)
	m, ok := s.arcs[from]
	if !ok {
		m = make(map[Variable][]TCG)
		s.arcs[from] = m
	}
	if _, existed := m[to]; !existed {
		s.preds[to] = append(s.preds[to], from)
	}
	m[to] = append(m[to], c)
	return nil
}

// MustConstrain is AddConstraint that panics on error; for building
// constant structures in tests and examples.
func (s *EventStructure) MustConstrain(from, to Variable, cs ...TCG) {
	for _, c := range cs {
		if err := s.AddConstraint(from, to, c); err != nil {
			panic(err)
		}
	}
}

// Variables returns the variables in insertion order.
func (s *EventStructure) Variables() []Variable {
	return append([]Variable(nil), s.vars...)
}

// NumVariables returns |W|.
func (s *EventStructure) NumVariables() int { return len(s.vars) }

// HasVariable reports whether v belongs to the structure.
func (s *EventStructure) HasVariable(v Variable) bool {
	_, ok := s.index[v]
	return ok
}

// Constraints returns the conjunctive TCG set on arc (from, to); nil when
// the arc does not exist.
func (s *EventStructure) Constraints(from, to Variable) []TCG {
	if m, ok := s.arcs[from]; ok {
		return append([]TCG(nil), m[to]...)
	}
	return nil
}

// Successors returns the arc targets of v in a deterministic order.
func (s *EventStructure) Successors(v Variable) []Variable {
	m := s.arcs[v]
	out := make([]Variable, 0, len(m))
	for to := range m {
		out = append(out, to)
	}
	sort.Slice(out, func(i, j int) bool { return s.index[out[i]] < s.index[out[j]] })
	return out
}

// Predecessors returns the arc sources pointing at v, in insertion order.
func (s *EventStructure) Predecessors(v Variable) []Variable {
	return append([]Variable(nil), s.preds[v]...)
}

// Edges returns every arc with its TCGs, ordered by (from, to) insertion
// indices.
func (s *EventStructure) Edges() []Edge {
	var out []Edge
	for _, from := range s.vars {
		for _, to := range s.Successors(from) {
			out = append(out, Edge{From: from, To: to, TCGs: s.Constraints(from, to)})
		}
	}
	return out
}

// NumEdges returns |A|.
func (s *EventStructure) NumEdges() int {
	n := 0
	for _, m := range s.arcs {
		n += len(m)
	}
	return n
}

// Granularities returns the distinct granularity names appearing in Γ,
// sorted.
func (s *EventStructure) Granularities() []string {
	set := make(map[string]bool)
	for _, m := range s.arcs {
		for _, cs := range m {
			for _, c := range cs {
				set[c.Gran] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Root returns the structure's root: the unique variable from which every
// other variable is reachable. It errors when no such variable exists.
func (s *EventStructure) Root() (Variable, error) {
	if len(s.vars) == 0 {
		return "", fmt.Errorf("core: empty structure has no root")
	}
	var roots []Variable
	for _, v := range s.vars {
		if len(s.preds[v]) == 0 {
			roots = append(roots, v)
		}
	}
	if len(roots) != 1 {
		return "", fmt.Errorf("core: structure has %d in-degree-0 variables, want exactly 1", len(roots))
	}
	root := roots[0]
	if n := s.countReachable(root); n != len(s.vars) {
		return "", fmt.Errorf("core: root %s reaches %d of %d variables", root, n, len(s.vars))
	}
	return root, nil
}

func (s *EventStructure) countReachable(from Variable) int {
	seen := map[Variable]bool{from: true}
	stack := []Variable{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for to := range s.arcs[v] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return len(seen)
}

// HasPath reports whether v is reachable from u via one or more arcs.
func (s *EventStructure) HasPath(u, v Variable) bool {
	if u == v {
		return false
	}
	seen := map[Variable]bool{u: true}
	stack := []Variable{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for to := range s.arcs[x] {
			if to == v {
				return true
			}
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return false
}

// IsAcyclic reports whether the arc relation has no directed cycle.
func (s *EventStructure) IsAcyclic() bool {
	_, err := s.TopoOrder()
	return err == nil
}

// TopoOrder returns the variables in a topological order of the arcs, or an
// error if the graph has a cycle. Among ready variables, insertion order
// breaks ties, so the order is deterministic.
func (s *EventStructure) TopoOrder() ([]Variable, error) {
	indeg := make(map[Variable]int, len(s.vars))
	for _, v := range s.vars {
		indeg[v] = len(s.preds[v])
	}
	var ready []Variable
	for _, v := range s.vars {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	var out []Variable
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		out = append(out, v)
		for _, to := range s.Successors(v) {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	if len(out) != len(s.vars) {
		return nil, fmt.Errorf("core: structure has a cycle")
	}
	return out, nil
}

// Validate checks the paper's structural requirements: acyclic and rooted.
func (s *EventStructure) Validate() error {
	if !s.IsAcyclic() {
		return fmt.Errorf("core: event structure must be acyclic")
	}
	_, err := s.Root()
	return err
}

// Leaves returns the variables with no outgoing arcs, in insertion order.
func (s *EventStructure) Leaves() []Variable {
	var out []Variable
	for _, v := range s.vars {
		if len(s.arcs[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a deep copy.
func (s *EventStructure) Clone() *EventStructure {
	c := NewStructure()
	for _, v := range s.vars {
		c.AddVariable(v)
	}
	for from, m := range s.arcs {
		for to, cs := range m {
			for _, tcg := range cs {
				// Constraints were validated on insertion.
				_ = c.AddConstraint(from, to, tcg)
			}
		}
	}
	return c
}

// InducedSubgraph returns the structure on the given variable subset with
// only the original arcs between them (this is *not* the paper's induced
// approximate sub-structure, which also carries derived constraints; see
// internal/propagate).
func (s *EventStructure) InducedSubgraph(keep []Variable) *EventStructure {
	set := make(map[Variable]bool, len(keep))
	for _, v := range keep {
		set[v] = true
	}
	out := NewStructure()
	for _, v := range s.vars {
		if set[v] {
			out.AddVariable(v)
		}
	}
	for from, m := range s.arcs {
		if !set[from] {
			continue
		}
		for to, cs := range m {
			if !set[to] {
				continue
			}
			for _, tcg := range cs {
				_ = out.AddConstraint(from, to, tcg)
			}
		}
	}
	return out
}

// String renders the structure as one "from -> to : [m,n]g ..." line per
// arc.
func (s *EventStructure) String() string {
	out := ""
	for _, e := range s.Edges() {
		out += fmt.Sprintf("%s -> %s :", e.From, e.To)
		for _, c := range e.TCGs {
			out += " " + c.String()
		}
		out += "\n"
	}
	return out
}

// WriteDOT renders the event structure as a Graphviz digraph in the style
// of the paper's Figure 1: variables as nodes, arcs labeled with their
// conjunctive TCG sets, the root drawn with a double circle.
func (s *EventStructure) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n  edge [fontsize=9];\n")
	root, rootErr := s.Root()
	for _, v := range s.vars {
		shape := "circle"
		if rootErr == nil && v == root {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", v, shape)
	}
	for _, e := range s.Edges() {
		parts := make([]string, len(e.TCGs))
		for i, c := range e.TCGs {
			parts[i] = c.String()
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, strings.Join(parts, "\\n"))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
