package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
)

// A small text DSL for event structures, friendlier than the JSON spec for
// hand-written files:
//
//	# Figure 1(a)
//	X0 -> X1 : [1,1]b-day
//	X0 -> X2 : [0,5]b-day
//	X1 -> X3 : [0,1]week
//	X2 -> X3 : [0,8]hour
//	assign X0 = IBM-rise
//	assign X3 = IBM-fall
//
// Each arc line is "From -> To : tcg [tcg ...]" with TCGs written exactly
// as the paper does, "[m,n]granularity". Optional "assign VAR = TYPE" lines
// type variables (producing a complex event type or restricting mining
// pools). Blank lines and '#' comments are ignored.

// ParseDSL reads the DSL and returns the structure and the (possibly
// empty) assignment. The structure is validated (rooted DAG).
func ParseDSL(r io.Reader) (*EventStructure, map[Variable]event.Type, error) {
	s := NewStructure()
	assign := make(map[Variable]event.Type)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "assign "); ok {
			parts := strings.SplitN(rest, "=", 2)
			if len(parts) != 2 {
				return nil, nil, fmt.Errorf("core: line %d: want \"assign VAR = TYPE\"", line)
			}
			v := Variable(strings.TrimSpace(parts[0]))
			typ := event.Type(strings.TrimSpace(parts[1]))
			if v == "" || typ == "" {
				return nil, nil, fmt.Errorf("core: line %d: empty variable or type", line)
			}
			assign[v] = typ
			continue
		}
		arrow := strings.Index(text, "->")
		colon := strings.Index(text, ":")
		if arrow < 0 || colon < arrow {
			return nil, nil, fmt.Errorf("core: line %d: want \"From -> To : [m,n]gran ...\"", line)
		}
		from := Variable(strings.TrimSpace(text[:arrow]))
		to := Variable(strings.TrimSpace(text[arrow+2 : colon]))
		if from == "" || to == "" {
			return nil, nil, fmt.Errorf("core: line %d: empty variable name", line)
		}
		tcgs, err := parseTCGList(text[colon+1:])
		if err != nil {
			return nil, nil, fmt.Errorf("core: line %d: %w", line, err)
		}
		if len(tcgs) == 0 {
			return nil, nil, fmt.Errorf("core: line %d: arc without constraints", line)
		}
		for _, c := range tcgs {
			if err := s.AddConstraint(from, to, c); err != nil {
				return nil, nil, fmt.Errorf("core: line %d: %w", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	for v := range assign {
		if !s.HasVariable(v) {
			return nil, nil, fmt.Errorf("core: assignment mentions unknown variable %s", v)
		}
	}
	return s, assign, nil
}

// parseTCGList parses whitespace-separated "[m,n]gran" items.
func parseTCGList(text string) ([]TCG, error) {
	var out []TCG
	for _, tok := range strings.Fields(text) {
		c, err := ParseTCG(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ParseTCG parses one constraint in the paper's "[m,n]granularity" syntax.
func ParseTCG(tok string) (TCG, error) {
	if !strings.HasPrefix(tok, "[") {
		return TCG{}, fmt.Errorf("bad TCG %q (want [m,n]gran)", tok)
	}
	close := strings.Index(tok, "]")
	if close < 0 || close+1 >= len(tok) {
		return TCG{}, fmt.Errorf("bad TCG %q (want [m,n]gran)", tok)
	}
	bounds := strings.SplitN(tok[1:close], ",", 2)
	if len(bounds) != 2 {
		return TCG{}, fmt.Errorf("bad TCG bounds in %q", tok)
	}
	m, err1 := strconv.ParseInt(strings.TrimSpace(bounds[0]), 10, 64)
	n, err2 := strconv.ParseInt(strings.TrimSpace(bounds[1]), 10, 64)
	if err1 != nil || err2 != nil {
		return TCG{}, fmt.Errorf("bad TCG bounds in %q", tok)
	}
	return NewTCG(m, n, tok[close+1:])
}

// WriteDSL renders the structure (and optional assignment) in ParseDSL's
// format; the output round-trips.
func WriteDSL(w io.Writer, s *EventStructure, assign map[Variable]event.Type) error {
	bw := bufio.NewWriter(w)
	for _, e := range s.Edges() {
		parts := make([]string, len(e.TCGs))
		for i, c := range e.TCGs {
			parts[i] = c.String()
		}
		fmt.Fprintf(bw, "%s -> %s : %s\n", e.From, e.To, strings.Join(parts, " "))
	}
	for _, v := range s.Variables() {
		if typ, ok := assign[v]; ok {
			fmt.Fprintf(bw, "assign %s = %s\n", v, typ)
		}
	}
	return bw.Flush()
}
