// Package core implements the paper's primary contribution: temporal
// constraints with granularities (TCGs), event structures (rooted DAGs of
// event variables with conjunctive TCG sets on edges), complex event types
// and complex events (Section 3 of the paper).
package core

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/granularity"
)

// TCG is a temporal constraint with granularity [m,n]g: two second
// timestamps t1 <= t2 satisfy it iff both are covered by granules of g and
// the granule indices differ by at least Min and at most Max.
//
// The paper's key observation holds here: [0,0]day is not expressible as
// any [m,n]second — granules, not durations, are constrained.
type TCG struct {
	Min, Max int64
	Gran     string // granularity name, resolved against a granularity.System
}

// NewTCG validates and builds a TCG: 0 <= m <= n and a non-empty
// granularity name. (The paper restricts m, n to non-negative integers;
// directionality comes from the edge orientation.)
func NewTCG(min, max int64, gran string) (TCG, error) {
	c := TCG{Min: min, Max: max, Gran: gran}
	if err := c.Validate(); err != nil {
		return TCG{}, err
	}
	return c, nil
}

// MustTCG is NewTCG for constant constraints; it panics on invalid input.
func MustTCG(min, max int64, gran string) TCG {
	c, err := NewTCG(min, max, gran)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks the TCG's well-formedness.
func (c TCG) Validate() error {
	if c.Gran == "" {
		return fmt.Errorf("core: TCG with empty granularity")
	}
	if c.Min < 0 {
		return fmt.Errorf("core: TCG %v has negative lower bound", c)
	}
	if c.Min > c.Max {
		return fmt.Errorf("core: TCG %v has min > max", c)
	}
	return nil
}

// String formats the constraint as the paper writes it: [m,n]gran.
func (c TCG) String() string {
	return fmt.Sprintf("[%d,%d]%s", c.Min, c.Max, c.Gran)
}

// Satisfied reports whether the ordered timestamp pair (t1, t2) satisfies
// the constraint under the granularities registered in sys. Per the paper's
// definition it requires (1) t1 <= t2, (2) both cover operations defined,
// (3) Min <= ⌈t2⌉ − ⌈t1⌉ <= Max. The cover goes through sys's periodic
// conversion table for the granularity when one exists.
func (c TCG) Satisfied(sys *granularity.System, t1, t2 int64) bool {
	if t1 > t2 {
		return false
	}
	z1, ok := sys.TickOf(c.Gran, t1)
	if !ok {
		return false
	}
	z2, ok := sys.TickOf(c.Gran, t2)
	if !ok {
		return false
	}
	d := z2 - z1
	return c.Min <= d && d <= c.Max
}

// SatisfiedEvents applies Satisfied to two events' timestamps.
func (c TCG) SatisfiedEvents(sys *granularity.System, e1, e2 event.Event) bool {
	return c.Satisfied(sys, e1.Time, e2.Time)
}

// Intersect returns the conjunction of two same-granularity TCGs and
// whether the result is non-empty. Calling it with different granularities
// is a programming error and panics.
func (c TCG) Intersect(o TCG) (TCG, bool) {
	if c.Gran != o.Gran {
		panic("core: intersecting TCGs with different granularities")
	}
	r := TCG{Gran: c.Gran, Min: maxInt64(c.Min, o.Min), Max: minInt64(c.Max, o.Max)}
	return r, r.Min <= r.Max
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
