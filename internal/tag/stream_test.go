package tag

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

func TestRunnerMatchesBatch(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := fig1aScenario()
	wantOK, wantStats := a.Accepts(sys, seq, RunOptions{})
	r := a.NewRunner(sys, RunOptions{})
	acceptedAt := -1
	for i, e := range seq {
		acc, ok := r.Feed(e)
		if !ok {
			t.Fatalf("in-order event %d rejected", i)
		}
		if acc && acceptedAt < 0 {
			acceptedAt = i
		}
	}
	if r.Accepted() != wantOK {
		t.Fatalf("streaming accepted=%v, batch=%v", r.Accepted(), wantOK)
	}
	if acceptedAt != wantStats.AcceptedAt {
		t.Fatalf("streaming accepted at %d, batch at %d", acceptedAt, wantStats.AcceptedAt)
	}
	// The streaming witness matches the structure.
	b := core.Binding{}
	for v, idx := range r.Binding() {
		b[core.Variable(v)] = seq[idx]
	}
	if !core.Matches(sys, core.Fig1a(), b) {
		t.Fatalf("streaming witness invalid: %v", r.Binding())
	}
	// Further feeding is a sticky no-op.
	if acc, ok := r.Feed(event.Event{Type: "noise", Time: seq[len(seq)-1].Time + 1}); !acc || !ok {
		t.Fatal("acceptance must be sticky")
	}
}

func TestRunnerRejectsOutOfOrder(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	r := a.NewRunner(sys, RunOptions{})
	if _, ok := r.Feed(event.Event{Type: "x", Time: 1000}); !ok {
		t.Fatal("first event rejected")
	}
	if _, ok := r.Feed(event.Event{Type: "y", Time: 999}); ok {
		t.Fatal("out-of-order event accepted")
	}
	if r.Steps() != 1 {
		t.Fatalf("rejected event consumed: steps=%d", r.Steps())
	}
}

// TestRunnerEquivalentToBatchFuzz: streaming and batch agree on random
// inputs (acceptance and accept position).
func TestRunnerEquivalentToBatchFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := diamondStructure()
	assign := map[core.Variable]event.Type{"X0": "a", "X1": "b", "X2": "c", "X3": "d"}
	ct, _ := core.NewComplexType(s, assign)
	a, _ := Compile(ct)
	types := []event.Type{"a", "b", "c", "d"}
	positives := 0
	for trial := 0; trial < 300; trial++ {
		seq := randomSeq(rng, types, 5, event.At(1996, 4, 1, 0, 0, 0), 15*86400)
		base := event.At(1996, 4, 1, 0, 0, 0) + rng.Int63n(8*86400)
		cur := base
		for _, v := range mustTopo(s) {
			seq = append(seq, event.Event{Type: assign[v], Time: cur})
			cur += rng.Int63n(2*86400) + 1
		}
		seq.Sort()
		seq = dedupTimes(seq)
		batchOK, batchStats := a.Accepts(sys, seq, RunOptions{})
		r := a.NewRunner(sys, RunOptions{})
		streamAt := -1
		for i, e := range seq {
			if acc, _ := r.Feed(e); acc && streamAt < 0 {
				streamAt = i
			}
		}
		if r.Accepted() != batchOK {
			t.Fatalf("trial %d: stream %v != batch %v", trial, r.Accepted(), batchOK)
		}
		if batchOK {
			positives++
			if streamAt != batchStats.AcceptedAt {
				t.Fatalf("trial %d: stream accepts at %d, batch at %d", trial, streamAt, batchStats.AcceptedAt)
			}
		}
	}
	if positives < 10 {
		t.Fatalf("only %d positives sampled", positives)
	}
}

func TestRunnerAnchoredAndValve(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := fig1aScenario()
	// Anchored at the noise event: never accepts.
	r := a.NewRunner(sys, RunOptions{Anchored: true})
	for _, e := range seq {
		r.Feed(e)
	}
	if r.Accepted() {
		t.Fatal("anchored runner must bind the first event to the root")
	}
	// Anchored at the real root occurrence: accepts.
	r = a.NewRunner(sys, RunOptions{Anchored: true})
	for _, e := range seq[1:] {
		r.Feed(e)
	}
	if !r.Accepted() {
		t.Fatal("anchored at the root occurrence should accept")
	}
	// The frontier valve empties the run set instead of growing past it.
	r = a.NewRunner(sys, RunOptions{MaxFrontier: 1})
	for _, e := range seq {
		r.Feed(e)
	}
	if r.MaxFrontier() > 1+1 {
		t.Fatalf("valve ignored: maxFrontier=%d", r.MaxFrontier())
	}
}
