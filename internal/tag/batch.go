package tag

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
)

// AcceptsBatch anchors the automaton at every index in refIdx and reports,
// per reference, whether the anchored run over the suffix accepts — the
// paper's frequency-counting primitive, batched. window > 0 bounds each
// suffix to [t0, t0+window] seconds after its reference.
//
// workers > 1 fans the anchored runs out to a pool: each reference's run is
// independent (the TAG is immutable during simulation and the granularity
// system is safe for concurrent use), so the verdicts are computed in
// whatever order the pool reaches them but always MERGED in refIdx order —
// the returned slice is identical for every worker count. workers <= 1 runs
// serially.
//
// Every run shares the one carrier ex: a single budget, deadline and fault
// plan governs the whole batch, and counters aggregate across workers. An
// interruption surfaces as the carrier's typed error; the verdict slice is
// nil then, because verdicts past the interruption point were never
// computed. Serial and parallel batches may be interrupted at different
// references (budget consumption interleaves), but an uninterrupted batch
// is deterministic.
func (a *TAG) AcceptsBatch(ex *engine.Exec, sys *granularity.System, seq event.Sequence, refIdx []int, window int64, workers int, opt RunOptions) ([]bool, error) {
	opt.Anchored = true
	verdicts := make([]bool, len(refIdx))
	errs := make([]error, len(refIdx))
	runOne := func(slot int) {
		i := refIdx[slot]
		sub := seq[i:]
		if window > 0 {
			sub = sub.Between(seq[i].Time, seq[i].Time+window)
		}
		verdicts[slot], _, errs[slot] = a.AcceptsExec(ex, sys, sub, opt)
	}
	if workers > len(refIdx) {
		workers = len(refIdx)
	}
	if workers <= 1 {
		for slot := range refIdx {
			runOne(slot)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					slot := int(next.Add(1)) - 1
					if slot >= len(refIdx) {
						return
					}
					runOne(slot)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return verdicts, nil
}

// CountAccepts is AcceptsBatch reduced to the match tally mining and the
// CLIs report: the number of references whose anchored run accepts.
func (a *TAG) CountAccepts(ex *engine.Exec, sys *granularity.System, seq event.Sequence, refIdx []int, window int64, workers int, opt RunOptions) (int, error) {
	verdicts, err := a.AcceptsBatch(ex, sys, seq, refIdx, window, workers, opt)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ok := range verdicts {
		if ok {
			n++
		}
	}
	return n, nil
}
