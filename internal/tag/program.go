package tag

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
)

// This file is the compiled execution core of the TAG simulation: the
// automaton is lowered once into flat index-addressed arrays (integer state
// ids, CSR transition tables, fixed clock slots, interned symbols and
// variable ids) and the NDFA frontier is simulated over reusable flat
// buffers with an open-addressing dedup table — no per-step maps, closures
// or key strings. The interpreted path (runInterp, feedInterp) remains
// available behind engine.Config.Mode for one release as the differential
// baseline; both paths are required to agree byte-for-byte on verdicts,
// witness bindings, stats, counter totals and checkpoints (see
// internal/oracle's exec-equivalence contract).
//
// One deliberate divergence: the compiled path resolves each clock's
// granularity (and its conversion table) once per run, while the
// interpreter consults the registry on every event. Mutating the
// granularity system mid-run was never supported; now it is also not
// observed.

const (
	symAny  int32 = -1 // transition matches any symbol
	symNone int32 = -2 // event symbol outside the automaton's alphabet
	noVar   int32 = -1 // transition binds no variable
	unbound int32 = -1 // variable not bound in this run
)

type guardKind int8

const (
	gTrue guardKind = iota
	gConj
	gGeneric
)

// guardAtom is one conjunct of a compiled guard: clock slot `slot` compared
// against k (le: reading <= k, else k <= reading).
type guardAtom struct {
	slot int32
	le   bool
	k    int64
}

// guardProg is a compiled guard. The Theorem-3 compiler only emits
// conjunctions of LE/GE atoms, which evaluate slot-directly (gConj);
// anything else (Or, Not, user formulas) falls back to the Formula with a
// flat-array reader (gGeneric) so semantics never depend on the lowering.
type guardProg struct {
	kind  guardKind
	atoms []guardAtom
	f     Formula
}

// program is the compiled form of a TAG.
type program struct {
	nStates int
	nTrans  int
	nClocks int
	nAccept int

	starts []int32
	accept []bool
	clocks []Clock
	// clockIdx is shared with the source TAG (read-only during runs).
	clockIdx map[Clock]int

	transLo []int32 // CSR over states, len nStates+1
	tTo     []int32
	tSym    []int32 // interned symbol, symAny for Any transitions
	tBinds  []int32 // variable id, noVar when none
	tSelf   []bool  // To == From
	tGuard  []guardProg
	resetLo []int32 // CSR over transitions, len nTrans+1
	resets  []int32 // clock slots

	progLo  []int32 // CSR over states: state-changing transition ids
	progIDs []int32

	syms    map[event.Type]int32
	vars    []string // sorted variable names; index = variable id
	varComp []string // vars[i] + "=", the bindingKey component prefix
	varID   map[string]int32

	pool sync.Pool // *progScratch, for batch runs
}

// program returns the cached compiled form, rebuilding it when the
// automaton's shape has changed since the last build (AddState,
// AddTransition, MarkStart, MarkAccept and AddClock all change a counted
// dimension; in-place mutation is not part of the TAG API). Relabel
// constructs a fresh TAG value, so relabeled automata compile their own
// program.
func (a *TAG) program() *program {
	if p := a.prog.Load(); p != nil && p.fresh(a) {
		return p
	}
	p := buildProgram(a)
	a.prog.Store(p)
	return p
}

func (p *program) fresh(a *TAG) bool {
	return p.nStates == len(a.names) &&
		p.nTrans == a.NumTransitions() &&
		p.nClocks == len(a.clocks) &&
		p.nAccept == len(a.accept) &&
		len(p.starts) == len(a.starts)
}

func buildProgram(a *TAG) *program {
	p := &program{
		nStates:  len(a.names),
		nTrans:   a.NumTransitions(),
		nClocks:  len(a.clocks),
		nAccept:  len(a.accept),
		clocks:   append([]Clock(nil), a.clocks...),
		clockIdx: a.clockIndex,
		accept:   make([]bool, len(a.names)),
		syms:     make(map[event.Type]int32),
		varID:    make(map[string]int32),
	}
	for s, ok := range a.accept {
		if ok {
			p.accept[s] = true
		}
	}
	for _, s := range a.starts {
		p.starts = append(p.starts, int32(s))
	}
	varSet := make(map[string]bool)
	for _, ts := range a.trans {
		for _, t := range ts {
			if !t.Any {
				if _, ok := p.syms[t.Symbol]; !ok {
					p.syms[t.Symbol] = int32(len(p.syms))
				}
			}
			if t.Binds != "" {
				varSet[t.Binds] = true
			}
		}
	}
	for v := range varSet {
		p.vars = append(p.vars, v)
	}
	sort.Strings(p.vars)
	for i, v := range p.vars {
		p.varID[v] = int32(i)
		p.varComp = append(p.varComp, v+"=")
	}
	p.transLo = make([]int32, p.nStates+1)
	p.resetLo = append(p.resetLo, 0)
	for s := 0; s < p.nStates; s++ {
		p.transLo[s] = int32(len(p.tTo))
		for _, t := range a.trans[s] {
			p.tTo = append(p.tTo, int32(t.To))
			sym := symAny
			if !t.Any {
				sym = p.syms[t.Symbol]
			}
			p.tSym = append(p.tSym, sym)
			b := noVar
			if t.Binds != "" {
				b = p.varID[t.Binds]
			}
			p.tBinds = append(p.tBinds, b)
			p.tSelf = append(p.tSelf, t.To == t.From)
			p.tGuard = append(p.tGuard, compileGuard(t.Guard, a.clockIndex))
			for _, c := range t.Reset {
				p.resets = append(p.resets, int32(a.clockIndex[c]))
			}
			p.resetLo = append(p.resetLo, int32(len(p.resets)))
		}
	}
	p.transLo[p.nStates] = int32(len(p.tTo))
	p.progLo = make([]int32, p.nStates+1)
	for s := 0; s < p.nStates; s++ {
		p.progLo[s] = int32(len(p.progIDs))
		for ti := p.transLo[s]; ti < p.transLo[s+1]; ti++ {
			if !p.tSelf[ti] {
				p.progIDs = append(p.progIDs, ti)
			}
		}
	}
	p.progLo[p.nStates] = int32(len(p.progIDs))
	return p
}

// compileGuard lowers a Formula: conjunctions of LE/GE/True atoms become
// slot-addressed atom lists; everything else keeps the Formula.
func compileGuard(f Formula, idx map[Clock]int) guardProg {
	atoms, ok := flattenConj(f, idx, nil)
	if !ok {
		return guardProg{kind: gGeneric, f: f}
	}
	if len(atoms) == 0 {
		return guardProg{kind: gTrue}
	}
	return guardProg{kind: gConj, atoms: atoms}
}

func flattenConj(f Formula, idx map[Clock]int, dst []guardAtom) ([]guardAtom, bool) {
	switch g := f.(type) {
	case True:
		return dst, true
	case LE:
		return append(dst, guardAtom{slot: int32(idx[g.Clock]), le: true, k: g.K}), true
	case GE:
		return append(dst, guardAtom{slot: int32(idx[g.Clock]), le: false, k: g.K}), true
	case And:
		var ok bool
		for _, sub := range g {
			if dst, ok = flattenConj(sub, idx, dst); !ok {
				return nil, false
			}
		}
		return dst, true
	}
	return nil, false
}

// runsBuf is a flat frontier: row r occupies states[r], vals/invalid
// [r*C, (r+1)*C) and (when witnesses are tracked) bind [r*W, (r+1)*W).
// Slice lengths always equal n*stride so appends land at row n.
type runsBuf struct {
	n       int
	states  []int32
	vals    []int64
	invalid []bool
	bind    []int32
}

func (b *runsBuf) reset() {
	b.n = 0
	b.states = b.states[:0]
	b.vals = b.vals[:0]
	b.invalid = b.invalid[:0]
	b.bind = b.bind[:0]
}

// pushFrom appends a copy of src row r and returns the new row index. The
// caller sets the state and applies resets/bindings afterwards.
func (b *runsBuf) pushFrom(src *runsBuf, r, C, W int) int {
	row := b.n
	b.states = append(b.states, src.states[r])
	b.vals = append(b.vals, src.vals[r*C:(r+1)*C]...)
	b.invalid = append(b.invalid, src.invalid[r*C:(r+1)*C]...)
	if W > 0 {
		b.bind = append(b.bind, src.bind[r*W:(r+1)*W]...)
	}
	b.n++
	return row
}

func (b *runsBuf) pop(C, W int) {
	b.n--
	b.states = b.states[:b.n]
	b.vals = b.vals[:b.n*C]
	b.invalid = b.invalid[:b.n*C]
	if W > 0 {
		b.bind = b.bind[:b.n*W]
	}
}

func (b *runsBuf) bindRow(row, W int) []int32 {
	if W == 0 {
		return nil
	}
	return b.bind[row*W : (row+1)*W]
}

// copyRow overwrites row dst with row src (used when a dedup winner
// replaces the incumbent; the dedup keys are equal, the masked values and
// bindings need not be).
func (b *runsBuf) copyRow(dst, src, C, W int) {
	b.states[dst] = b.states[src]
	copy(b.vals[dst*C:(dst+1)*C], b.vals[src*C:(src+1)*C])
	copy(b.invalid[dst*C:(dst+1)*C], b.invalid[src*C:(src+1)*C])
	if W > 0 {
		copy(b.bind[dst*W:(dst+1)*W], b.bind[src*W:(src+1)*W])
	}
}

// sameKey reports whether rows i and j have equal dedup keys: same state,
// same invalid mask, same values on valid slots. Values under an invalid
// mask are excluded, exactly like the "|x" component of runState.key().
func (b *runsBuf) sameKey(i, j, C int) bool {
	if b.states[i] != b.states[j] {
		return false
	}
	bi, bj := i*C, j*C
	for c := 0; c < C; c++ {
		if b.invalid[bi+c] != b.invalid[bj+c] {
			return false
		}
		if !b.invalid[bi+c] && b.vals[bi+c] != b.vals[bj+c] {
			return false
		}
	}
	return true
}

// seed loads the deduplicated start frontier (zero valuations, nothing
// bound). Accepting start states are handled by the callers before seeding.
func (b *runsBuf) seed(p *program, C, W int) {
	b.reset()
	for _, st := range p.starts {
		if p.accept[st] {
			continue
		}
		dup := false
		for i := 0; i < b.n; i++ {
			if b.states[i] == st {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		b.states = append(b.states, st)
		for c := 0; c < C; c++ {
			b.vals = append(b.vals, 0)
			b.invalid = append(b.invalid, false)
		}
		for v := 0; v < W; v++ {
			b.bind = append(b.bind, unbound)
		}
		b.n++
	}
}

// flatReader adapts the flat arrays to the Formula read interface for
// generic guards; base selects the run row. The two method values (read,
// doomedRead) are created once per scratch, not per evaluation.
type flatReader struct {
	idx      map[Clock]int
	vals     []int64
	invalid  []bool
	curCover []int64
	curOK    []bool
	base     int
}

func (f *flatReader) read(c Clock) (int64, bool) {
	ci := f.idx[c]
	if f.invalid[f.base+ci] || !f.curOK[ci] {
		return 0, false
	}
	return f.curCover[ci] - f.vals[f.base+ci], true
}

// doomedRead is the pruning semantics: invalid clocks are permanently
// undefined, an uncovered current timestamp reads as a very small value so
// nothing is considered dead because of it.
func (f *flatReader) doomedRead(c Clock) (int64, bool) {
	ci := f.idx[c]
	if f.invalid[f.base+ci] {
		return 0, false
	}
	if !f.curOK[ci] {
		return -(1 << 60), true
	}
	return f.curCover[ci] - f.vals[f.base+ci], true
}

// progScratch holds every buffer one simulation needs; batch runs pool it,
// a Runner owns one for its lifetime.
type progScratch struct {
	cur, nxt runsBuf
	curCover []int64
	curOK    []bool
	prevOK   []bool
	ticks    []func(int64) (int64, bool)
	table    []int32 // open-addressing dedup table, -1 empty
	bestBind []int32
	gr       flatReader
	readFn   func(Clock) (int64, bool)
	doomedFn func(Clock) (int64, bool)
}

// newScratch builds a zeroed scratch with tick functions resolved from sys
// (conversion-table lookups when the system has a table for the clock's
// granularity, the direct implementation otherwise; nil for granularities
// the system does not know — those clocks read as permanently uncovered,
// like the interpreter's per-event registry miss).
func (p *program) newScratch(sys *granularity.System) *progScratch {
	s := &progScratch{}
	p.initScratch(s, sys)
	return s
}

func (p *program) getScratch(sys *granularity.System) *progScratch {
	s, _ := p.pool.Get().(*progScratch)
	if s == nil {
		s = &progScratch{}
	}
	p.initScratch(s, sys)
	return s
}

func (p *program) initScratch(s *progScratch, sys *granularity.System) {
	C := p.nClocks
	if cap(s.curCover) < C {
		s.curCover = make([]int64, C)
		s.curOK = make([]bool, C)
		s.prevOK = make([]bool, C)
		s.ticks = make([]func(int64) (int64, bool), C)
	}
	s.curCover = s.curCover[:C]
	s.curOK = s.curOK[:C]
	s.prevOK = s.prevOK[:C]
	s.ticks = s.ticks[:C]
	for i := range s.curCover {
		// Zeroed so masked valuations (initiation under a registry miss)
		// serialize exactly like the interpreter's fresh arrays.
		s.curCover[i] = 0
		s.curOK[i] = false
		s.prevOK[i] = false
	}
	for i, c := range p.clocks {
		if fn, ok := sys.Ticker(c.Gran); ok {
			s.ticks[i] = fn
		} else {
			s.ticks[i] = nil
		}
	}
	if s.table == nil {
		s.table = make([]int32, 64)
	}
	s.cur.reset()
	s.nxt.reset()
	s.bestBind = s.bestBind[:0]
	s.gr = flatReader{idx: p.clockIdx, curCover: s.curCover, curOK: s.curOK}
	s.readFn = s.gr.read
	s.doomedFn = s.gr.doomedRead
}

func (s *progScratch) clearTable() {
	for i := range s.table {
		s.table[i] = -1
	}
}

// rowHash hashes a row's dedup key (FNV-1a over state, invalid mask and
// valid values). Collisions are resolved by sameKey.
func (p *program) rowHash(b *runsBuf, row int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h = (h ^ uint64(uint32(b.states[row]))) * prime
	base := row * p.nClocks
	for ci := 0; ci < p.nClocks; ci++ {
		if b.invalid[base+ci] {
			h = (h ^ 0x9e3779b97f4a7c15) * prime
		} else {
			h = (h ^ uint64(b.vals[base+ci])) * prime
		}
	}
	return h
}

// dedupInsert inserts the candidate (the last pushed row of b) into the
// table, or resolves the collision exactly like the interpreter: count the
// dup, keep the incumbent when its bindingKey is <= the candidate's,
// replace it otherwise. The candidate row is popped in both dup outcomes.
func (s *progScratch) dedupInsert(p *program, b *runsBuf, row, C, W int, deduped *int64) {
	if (b.n+1)*2 >= len(s.table) {
		s.growTable(p, b, row)
	}
	mask := uint64(len(s.table) - 1)
	slot := p.rowHash(b, row) & mask
	for {
		e := s.table[slot]
		if e < 0 {
			s.table[slot] = int32(row)
			return
		}
		if b.sameKey(int(e), row, C) {
			*deduped++
			if p.cmpBindRows(b.bindRow(int(e), W), b.bindRow(row, W)) > 0 {
				b.copyRow(int(e), row, C, W)
			}
			b.pop(C, W)
			return
		}
		slot = (slot + 1) & mask
	}
}

// growTable doubles the table until the load factor is comfortable and
// reinserts the kept rows (all rows below the candidate).
func (s *progScratch) growTable(p *program, b *runsBuf, candidate int) {
	size := len(s.table)
	for (b.n+1)*2 >= size {
		size *= 2
	}
	s.table = make([]int32, size)
	for i := range s.table {
		s.table[i] = -1
	}
	mask := uint64(size - 1)
	for i := 0; i < candidate; i++ {
		slot := p.rowHash(b, i) & mask
		for s.table[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		s.table[slot] = int32(i)
	}
}

// cmpBindRows compares two flat bindings in exactly the order bindingKey
// induces: the concatenation of "name=idx;" components over bound
// variables in sorted-name order, compared as strings. (Note the string
// order quirks this inherits deliberately: "a=12;" < "a=3;" because '1' <
// '3', and "a=12;" < "a=1;" because '2' < ';'. The interpreter's winner
// selection is defined by that string order, so the compiled core
// reproduces it rather than comparing indices numerically.)
func (p *program) cmpBindRows(a, b []int32) int {
	ia, ib := nextBound(a, 0), nextBound(b, 0)
	var da, db [12]byte
	for {
		switch {
		case ia < 0 && ib < 0:
			return 0
		case ia < 0:
			return -1
		case ib < 0:
			return 1
		}
		if c := cmpComponent(p.varComp[ia], a[ia], p.varComp[ib], b[ib], da[:0], db[:0]); c != 0 {
			return c
		}
		ia, ib = nextBound(a, ia+1), nextBound(b, ib+1)
	}
}

func nextBound(bind []int32, from int) int {
	for i := from; i < len(bind); i++ {
		if bind[i] >= 0 {
			return i
		}
	}
	return -1
}

// cmpComponent compares the strings prefixA+dec(va)+";" and
// prefixB+dec(vb)+";" without materializing them.
func cmpComponent(pa string, va int32, pb string, vb int32, da, db []byte) int {
	sa := strconv.AppendInt(da, int64(va), 10)
	sb := strconv.AppendInt(db, int64(vb), 10)
	la := len(pa) + len(sa) + 1
	lb := len(pb) + len(sb) + 1
	n := la
	if lb < n {
		n = lb
	}
	for i := 0; i < n; i++ {
		ca, cb := compChar(pa, sa, i), compChar(pb, sb, i)
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
	}
	switch {
	case la < lb:
		return -1
	case la > lb:
		return 1
	default:
		return 0
	}
}

func compChar(prefix string, dec []byte, i int) byte {
	if i < len(prefix) {
		return prefix[i]
	}
	i -= len(prefix)
	if i < len(dec) {
		return dec[i]
	}
	return ';'
}

// bindMap materializes a flat binding as the interpreter's map form: nil
// when nothing is bound (the interpreter never creates empty maps).
func (p *program) bindMap(row []int32) map[string]int {
	var m map[string]int
	for i, v := range row {
		if v < 0 {
			continue
		}
		if m == nil {
			m = make(map[string]int, len(row))
		}
		m[p.vars[i]] = int(v)
	}
	return m
}

func (p *program) guardEval(g *guardProg, s *progScratch, b *runsBuf, base int) bool {
	switch g.kind {
	case gTrue:
		return true
	case gConj:
		for i := range g.atoms {
			at := &g.atoms[i]
			ci := int(at.slot)
			if b.invalid[base+ci] || !s.curOK[ci] {
				return false
			}
			v := s.curCover[ci] - b.vals[base+ci]
			if at.le {
				if v > at.k {
					return false
				}
			} else if v < at.k {
				return false
			}
		}
		return true
	default:
		s.gr.vals, s.gr.invalid, s.gr.base = b.vals, b.invalid, base
		return g.f.Eval(s.readFn)
	}
}

func (p *program) guardDead(g *guardProg, s *progScratch, b *runsBuf, base int) bool {
	switch g.kind {
	case gTrue:
		return false
	case gConj:
		for i := range g.atoms {
			at := &g.atoms[i]
			ci := int(at.slot)
			if b.invalid[base+ci] {
				return true
			}
			if at.le && s.curOK[ci] && s.curCover[ci]-b.vals[base+ci] > at.k {
				return true
			}
		}
		return false
	default:
		s.gr.vals, s.gr.invalid, s.gr.base = b.vals, b.invalid, base
		return g.f.Dead(s.doomedFn)
	}
}

// doomed is the compiled runDoomed: true when every state-changing guard
// out of state is permanently dead for the row at base.
func (p *program) doomed(s *progScratch, b *runsBuf, state int32, base int) bool {
	lo, hi := p.progLo[state], p.progLo[state+1]
	if lo == hi {
		return true
	}
	for i := lo; i < hi; i++ {
		if !p.guardDead(&p.tGuard[p.progIDs[i]], s, b, base) {
			return false
		}
	}
	return true
}

// runCompiled is the compiled batch simulation; it mirrors runInterp step
// for step (budget spend, counter totals, stats, verdicts, witnesses).
func (a *TAG) runCompiled(ex *engine.Exec, sys *granularity.System, seq event.Sequence, opt RunOptions, witness bool) (map[string]int, bool, RunStats, error) {
	stats := RunStats{AcceptedAt: -1}
	p := a.program()
	for _, st := range p.starts {
		if p.accept[st] {
			stats.AcceptedAt = 0
			return map[string]int{}, true, stats, nil
		}
	}
	s := p.getScratch(sys)
	defer p.pool.Put(s)
	C := p.nClocks
	W := 0
	if witness {
		W = len(p.vars)
	}
	s.cur.seed(p, C, W)
	cur, nxt := &s.cur, &s.nxt

	var events, alive, deduped, killed int64
	flush := func() {
		ex.Count("tag.events", events)
		ex.Count("tag.runs.alive", alive)
		ex.Count("tag.runs.deduped", deduped)
		ex.Count("tag.runs.killed", killed)
		events, alive, deduped, killed = 0, 0, 0, 0
	}
	for idx := 0; idx < len(seq); idx++ {
		e := seq[idx]
		if err := ex.Step(1 + int64(cur.n)); err != nil {
			flush()
			return nil, false, stats, err
		}
		events++
		alive += int64(cur.n)
		stats.Steps++
		copy(s.prevOK, s.curOK)
		for ci := 0; ci < C; ci++ {
			if s.ticks[ci] == nil {
				s.curOK[ci] = false
				continue
			}
			s.curCover[ci], s.curOK[ci] = s.ticks[ci](e.Time)
		}
		if idx == 0 {
			for r := 0; r < cur.n; r++ {
				base := r * C
				copy(cur.vals[base:base+C], s.curCover)
				for ci := 0; ci < C; ci++ {
					cur.invalid[base+ci] = !s.curOK[ci]
				}
			}
		} else if opt.Strict {
			for ci := 0; ci < C; ci++ {
				if !s.curOK[ci] || !s.prevOK[ci] {
					cur.reset()
					break
				}
			}
		}
		esym, known := p.syms[e.Type]
		if !known {
			esym = symNone
		}
		nxt.reset()
		s.clearTable()
		accepted := false
		for r := 0; r < cur.n; r++ {
			st := cur.states[r]
			curBase := r * C
			for ti := p.transLo[st]; ti < p.transLo[st+1]; ti++ {
				if sym := p.tSym[ti]; sym != symAny && sym != esym {
					continue
				}
				if opt.Anchored && idx == 0 && p.tSym[ti] == symAny && p.tSelf[ti] {
					continue
				}
				if !p.guardEval(&p.tGuard[ti], s, cur, curBase) {
					continue
				}
				row := nxt.pushFrom(cur, r, C, W)
				rowBase := row * C
				to := p.tTo[ti]
				nxt.states[row] = to
				if W > 0 && p.tBinds[ti] >= 0 {
					nxt.bind[row*W+int(p.tBinds[ti])] = int32(idx)
				}
				for ri := p.resetLo[ti]; ri < p.resetLo[ti+1]; ri++ {
					ci := int(p.resets[ri])
					nxt.vals[rowBase+ci] = s.curCover[ci]
					nxt.invalid[rowBase+ci] = !s.curOK[ci]
				}
				if p.accept[to] {
					nb := nxt.bindRow(row, W)
					if !accepted || p.cmpBindRows(nb, s.bestBind) < 0 {
						s.bestBind = append(s.bestBind[:0], nb...)
					}
					accepted = true
					nxt.pop(C, W)
					continue
				}
				if p.doomed(s, nxt, to, rowBase) {
					killed++
					nxt.pop(C, W)
					continue
				}
				s.dedupInsert(p, nxt, row, C, W, &deduped)
			}
		}
		if accepted {
			stats.AcceptedAt = idx
			if nxt.n > stats.MaxFrontier {
				stats.MaxFrontier = nxt.n
			}
			flush()
			return p.bindMap(s.bestBind), true, stats, nil
		}
		cur, nxt = nxt, cur
		if cur.n > stats.MaxFrontier {
			stats.MaxFrontier = cur.n
		}
		if opt.MaxFrontier > 0 && cur.n > opt.MaxFrontier {
			break
		}
		if cur.n == 0 {
			break
		}
	}
	flush()
	return nil, false, stats, nil
}

// feedCompiled is the compiled Runner step; Feed's prologue (acceptance,
// seals, ordering, budget, the per-event counters) has already run.
func (r *Runner) feedCompiled(e event.Event, idx int) (bool, bool) {
	p, s := r.p, r.ps
	C, W := p.nClocks, len(p.vars)
	copy(s.prevOK, s.curOK)
	for ci := 0; ci < C; ci++ {
		if s.ticks[ci] == nil {
			s.curOK[ci] = false
			continue
		}
		s.curCover[ci], s.curOK[ci] = s.ticks[ci](e.Time)
	}
	if idx == 0 {
		for row := 0; row < s.cur.n; row++ {
			base := row * C
			copy(s.cur.vals[base:base+C], s.curCover)
			for ci := 0; ci < C; ci++ {
				s.cur.invalid[base+ci] = !s.curOK[ci]
			}
		}
	} else if r.opt.Strict {
		for ci := 0; ci < C; ci++ {
			if !s.curOK[ci] || !s.prevOK[ci] {
				s.cur.reset()
				break
			}
		}
	}
	r.prevTime = e.Time

	esym, known := p.syms[e.Type]
	if !known {
		esym = symNone
	}
	s.nxt.reset()
	s.clearTable()
	var deduped int64
	accepted := false
	for row := 0; row < s.cur.n; row++ {
		st := s.cur.states[row]
		curBase := row * C
		for ti := p.transLo[st]; ti < p.transLo[st+1]; ti++ {
			if sym := p.tSym[ti]; sym != symAny && sym != esym {
				continue
			}
			if r.opt.Anchored && idx == 0 && p.tSym[ti] == symAny && p.tSelf[ti] {
				continue
			}
			if !p.guardEval(&p.tGuard[ti], s, &s.cur, curBase) {
				continue
			}
			nrow := s.nxt.pushFrom(&s.cur, row, C, W)
			rowBase := nrow * C
			to := p.tTo[ti]
			s.nxt.states[nrow] = to
			if W > 0 && p.tBinds[ti] >= 0 {
				s.nxt.bind[nrow*W+int(p.tBinds[ti])] = int32(idx)
			}
			for ri := p.resetLo[ti]; ri < p.resetLo[ti+1]; ri++ {
				ci := int(p.resets[ri])
				s.nxt.vals[rowBase+ci] = s.curCover[ci]
				s.nxt.invalid[rowBase+ci] = !s.curOK[ci]
			}
			if p.accept[to] {
				nb := s.nxt.bindRow(nrow, W)
				if !accepted || p.cmpBindRows(nb, s.bestBind) < 0 {
					s.bestBind = append(s.bestBind[:0], nb...)
				}
				accepted = true
				s.nxt.pop(C, W)
				continue
			}
			if p.doomed(s, &s.nxt, to, rowBase) {
				r.ex.Count("tag.runs.killed", 1)
				s.nxt.pop(C, W)
				continue
			}
			s.dedupInsert(p, &s.nxt, nrow, C, W, &deduped)
		}
	}
	if deduped > 0 {
		r.ex.Count("tag.runs.deduped", deduped)
	}
	if accepted {
		r.accepted = true
		r.binding = p.bindMap(s.bestBind)
		return true, true
	}
	s.cur, s.nxt = s.nxt, s.cur
	if s.cur.n > r.maxFront {
		r.maxFront = s.cur.n
	}
	if r.opt.MaxFrontier > 0 && s.cur.n > r.opt.MaxFrontier {
		s.cur.reset()
		r.degraded = true
		r.ex.Count("tag.frontier.overflows", 1)
	}
	return false, true
}

// keyOfRow regenerates runState.key() for a compiled row (cold path:
// snapshots only).
func (p *program) keyOfRow(b *runsBuf, row int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", b.states[row])
	base := row * p.nClocks
	for ci := 0; ci < p.nClocks; ci++ {
		if b.invalid[base+ci] {
			sb.WriteString("|x")
		} else {
			fmt.Fprintf(&sb, "|%d", b.vals[base+ci])
		}
	}
	return sb.String()
}

// snapshotFrontier materializes the frontier as checkpoint runs sorted by
// dedup key — identical bytes for identical runner states, in either mode.
func (r *Runner) snapshotFrontier() []CheckpointRun {
	if r.mode.Interpreted() {
		keys := make([]string, 0, len(r.frontier))
		for k := range r.frontier {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		runs := make([]CheckpointRun, 0, len(r.frontier))
		for _, k := range keys {
			rs := r.frontier[k]
			runs = append(runs, CheckpointRun{
				State:   rs.state,
				Vals:    append([]int64(nil), rs.vals...),
				Invalid: append([]bool(nil), rs.invalid...),
				Binding: copyBinding(rs.binding),
			})
		}
		return runs
	}
	p, s := r.p, r.ps
	C, W := p.nClocks, len(p.vars)
	type keyed struct {
		key string
		row int
	}
	rows := make([]keyed, s.cur.n)
	for i := 0; i < s.cur.n; i++ {
		rows[i] = keyed{key: p.keyOfRow(&s.cur, i), row: i}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	runs := make([]CheckpointRun, 0, len(rows))
	for _, kr := range rows {
		base := kr.row * C
		runs = append(runs, CheckpointRun{
			State:   int(s.cur.states[kr.row]),
			Vals:    append([]int64(nil), s.cur.vals[base:base+C]...),
			Invalid: append([]bool(nil), s.cur.invalid[base:base+C]...),
			Binding: p.bindMap(s.cur.bindRow(kr.row, W)),
		})
	}
	return runs
}

// loadFrontier replaces the runner's frontier with checkpoint runs (the
// snapshot may have been taken in either execution mode; the formats are
// identical, so interpreter snapshots restore into the compiled runner and
// vice versa).
func (r *Runner) loadFrontier(runs []CheckpointRun) error {
	if r.mode.Interpreted() {
		r.frontier = make(map[string]runState, len(runs))
		for _, cr := range runs {
			rs := runState{
				state:   cr.State,
				vals:    append([]int64(nil), cr.Vals...),
				invalid: append([]bool(nil), cr.Invalid...),
				binding: copyBinding(cr.Binding),
			}
			r.frontier[rs.key()] = rs
		}
		return nil
	}
	p, s := r.p, r.ps
	W := len(p.vars)
	s.cur.reset()
	for _, cr := range runs {
		row := s.cur.n
		s.cur.states = append(s.cur.states, int32(cr.State))
		s.cur.vals = append(s.cur.vals, cr.Vals...)
		s.cur.invalid = append(s.cur.invalid, cr.Invalid...)
		for v := 0; v < W; v++ {
			s.cur.bind = append(s.cur.bind, unbound)
		}
		for name, idx := range cr.Binding {
			vid, ok := p.varID[name]
			if !ok {
				return fmt.Errorf("tag: checkpoint binds unknown variable %q", name)
			}
			s.cur.bind[row*W+int(vid)] = int32(idx)
		}
		s.cur.n++
	}
	return nil
}
