package tag_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/tag"
)

// Example compiles the paper's Example 1 into the Figure-2 automaton and
// matches it against a concrete scenario.
func Example() {
	sys := granularity.Default()
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := tag.Compile(ct)
	if err != nil {
		panic(err)
	}
	fmt.Printf("states=%d clocks=%d\n", a.NumStates(), len(a.Clocks()))

	seq := event.Sequence{
		{Type: "IBM-rise", Time: event.At(1996, 6, 3, 10, 0, 0)},
		{Type: "IBM-earnings-report", Time: event.At(1996, 6, 4, 17, 0, 0)},
		{Type: "HP-rise", Time: event.At(1996, 6, 5, 9, 0, 0)},
		{Type: "IBM-fall", Time: event.At(1996, 6, 5, 11, 0, 0)},
	}
	ok, _ := a.Accepts(sys, seq, tag.RunOptions{})
	fmt.Println("occurs:", ok)
	// Output:
	// states=6 clocks=4
	// occurs: true
}

// ExampleTAG_NewRunner feeds events online and stops at acceptance.
func ExampleTAG_NewRunner() {
	sys := granularity.Default()
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "day"))
	ct, _ := core.NewComplexType(s, map[core.Variable]event.Type{"A": "open", "B": "close"})
	a, _ := tag.Compile(ct)

	r := a.NewRunner(sys, tag.RunOptions{})
	for _, e := range []event.Event{
		{Type: "open", Time: event.At(1996, 6, 3, 9, 0, 0)},
		{Type: "noise", Time: event.At(1996, 6, 3, 12, 0, 0)},
		{Type: "close", Time: event.At(1996, 6, 3, 17, 0, 0)},
	} {
		if acc, _ := r.Feed(e); acc {
			fmt.Println("accepted after", r.Steps(), "events")
		}
	}
	// Output:
	// accepted after 3 events
}
