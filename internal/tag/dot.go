package tag

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the automaton in Graphviz DOT format, in the visual
// style of the paper's Figure 2: double circles for accepting states, an
// entry arrow into each start state, guards and resets as edge labels, and
// ANY self-loops drawn dashed.
func (a *TAG) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=11];\n  edge [fontsize=9];\n")
	for id, name := range a.names {
		shape := "circle"
		if a.accept[id] {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", id, name, shape)
	}
	for i, s := range a.starts {
		fmt.Fprintf(&b, "  start%d [shape=point];\n  start%d -> n%d;\n", i, i, s)
	}
	// Deterministic edge order.
	type edge struct {
		from int
		t    Transition
	}
	var edges []edge
	for from, ts := range a.trans {
		for _, t := range ts {
			edges = append(edges, edge{from, t})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].t.To != edges[j].t.To {
			return edges[i].t.To < edges[j].t.To
		}
		return edges[i].t.Symbol < edges[j].t.Symbol
	})
	for _, e := range edges {
		label := string(e.t.Symbol)
		style := ""
		if e.t.Any {
			label = "ANY"
			style = ", style=dashed"
		}
		if _, isTrue := e.t.Guard.(True); !isTrue {
			label += "\\n" + e.t.Guard.String()
		}
		if len(e.t.Reset) > 0 {
			parts := make([]string, len(e.t.Reset))
			for i, c := range e.t.Reset {
				parts[i] = c.String()
			}
			label += "\\nreset " + strings.Join(parts, ",")
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q%s];\n", e.from, e.t.To, label, style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
