package tag

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
)

// feedAll feeds a sequence and returns the 0-based accept index (-1 when
// not accepted), offset so indices are global when resuming mid-sequence.
func feedAll(t *testing.T, r *Runner, seq event.Sequence, offset int) int {
	t.Helper()
	for i, e := range seq {
		acc, ok := r.Feed(e)
		if !ok {
			t.Fatalf("event %d rejected: %v (%v)", offset+i, r.LastReject(), r.Err())
		}
		if acc {
			return offset + i
		}
	}
	return -1
}

// TestSnapshotRestoreEqualsUninterrupted: the core recovery property — for
// every split point k, feeding k events / snapshot / encode / decode /
// restore / feeding the rest equals feeding everything into one runner:
// same acceptance event and same witness binding.
func TestSnapshotRestoreEqualsUninterrupted(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []RunOptions{{}, {Strict: true}, {Anchored: true}} {
		seq := fig1aScenario()
		if opt.Anchored {
			seq = seq[1:] // anchor on the real root occurrence
		}
		full := a.NewRunner(sys, opt)
		wantAt := feedAll(t, full, seq, 0)
		wantBind := full.Binding()
		for k := 0; k <= len(seq); k++ {
			r := a.NewRunner(sys, opt)
			splitAt := feedAll(t, r, seq[:k], 0)
			cp, err := r.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := cp.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			cp2, err := DecodeCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RestoreRunner(a, sys, opt, cp2)
			if err != nil {
				t.Fatalf("k=%d: restore: %v", k, err)
			}
			gotAt := splitAt
			if gotAt < 0 {
				gotAt = feedAll(t, r2, seq[k:], k)
			}
			if gotAt != wantAt {
				t.Fatalf("opt=%+v k=%d: resumed accepts at %d, uninterrupted at %d", opt, k, gotAt, wantAt)
			}
			if r2.Accepted() != full.Accepted() {
				t.Fatalf("opt=%+v k=%d: resumed accepted=%v, want %v", opt, k, r2.Accepted(), full.Accepted())
			}
			if splitAt < 0 && !reflect.DeepEqual(r2.Binding(), wantBind) {
				t.Fatalf("opt=%+v k=%d: resumed binding %v, want %v", opt, k, r2.Binding(), wantBind)
			}
			if splitAt < 0 && r2.Steps() != full.Steps() && full.Accepted() {
				t.Fatalf("opt=%+v k=%d: resumed steps %d, want %d", opt, k, r2.Steps(), full.Steps())
			}
		}
	}
}

// TestSnapshotRestoreRandomized: the same property over random sequences
// and a diamond structure, including non-accepting runs.
func TestSnapshotRestoreRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	s := diamondStructure()
	assign := map[core.Variable]event.Type{"X0": "a", "X1": "b", "X2": "c", "X3": "d"}
	ct, _ := core.NewComplexType(s, assign)
	a, _ := Compile(ct)
	types := []event.Type{"a", "b", "c", "d"}
	for trial := 0; trial < 120; trial++ {
		seq := randomSeq(rng, types, 8, event.At(1996, 4, 1, 0, 0, 0), 15*86400)
		if rng.Intn(2) == 0 {
			base := event.At(1996, 4, 1, 0, 0, 0) + rng.Int63n(8*86400)
			cur := base
			for _, v := range mustTopo(s) {
				seq = append(seq, event.Event{Type: assign[v], Time: cur})
				cur += rng.Int63n(2*86400) + 1
			}
		}
		seq.Sort()
		seq = dedupTimes(seq)
		full := a.NewRunner(sys, RunOptions{})
		wantAt := feedAll(t, full, seq, 0)
		k := rng.Intn(len(seq) + 1)
		r := a.NewRunner(sys, RunOptions{})
		splitAt := feedAll(t, r, seq[:k], 0)
		cp, _ := r.Snapshot()
		r2, err := RestoreRunner(a, sys, RunOptions{}, &cp)
		if err != nil {
			t.Fatal(err)
		}
		gotAt := splitAt
		if gotAt < 0 {
			gotAt = feedAll(t, r2, seq[k:], k)
		}
		if gotAt != wantAt {
			t.Fatalf("trial %d k=%d: resumed accepts at %d, uninterrupted at %d", trial, k, gotAt, wantAt)
		}
		if splitAt < 0 && !reflect.DeepEqual(r2.Binding(), full.Binding()) {
			t.Fatalf("trial %d k=%d: binding %v, want %v", trial, k, r2.Binding(), full.Binding())
		}
	}
}

// TestSnapshotAfterInterruptResumes: an interrupted runner snapshots at the
// boundary before the refused event; restoring with a fresh engine and
// re-feeding from that event completes the run as if never interrupted.
func TestSnapshotAfterInterruptResumes(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := fig1aScenario()
	full := a.NewRunner(sys, RunOptions{})
	wantAt := feedAll(t, full, seq, 0)

	r := a.NewRunner(sys, RunOptions{Engine: engine.Config{Budget: 3}})
	fedUpTo := -1
	for i, e := range seq {
		if _, ok := r.Feed(e); !ok {
			break
		}
		fedUpTo = i
	}
	if r.Err() == nil || !errors.Is(r.Err(), engine.ErrInterrupted) {
		t.Fatalf("budget 3 never interrupted (fed up to %d)", fedUpTo)
	}
	if r.LastReject() != RejectInterrupted {
		t.Fatalf("LastReject = %v, want RejectInterrupted", r.LastReject())
	}
	if r.Steps() != fedUpTo+1 {
		t.Fatalf("interrupted runner consumed %d events, fed %d", r.Steps(), fedUpTo+1)
	}
	cp, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RestoreRunner(a, sys, RunOptions{}, &cp)
	if err != nil {
		t.Fatal(err)
	}
	gotAt := feedAll(t, r2, seq[cp.Steps:], cp.Steps)
	if gotAt != wantAt {
		t.Fatalf("resumed accepts at %d, uninterrupted at %d", gotAt, wantAt)
	}
	if !reflect.DeepEqual(r2.Binding(), full.Binding()) {
		t.Fatalf("resumed binding %v, want %v", r2.Binding(), full.Binding())
	}
}

// TestRestoreRefusesMismatch: wrong automaton, wrong semantics, wrong
// version, malformed frontier — every mismatch is a typed refusal, never a
// silent wrong-state resume.
func TestRestoreRefusesMismatch(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := fig1aScenario()
	r := a.NewRunner(sys, RunOptions{})
	feedAll(t, r, seq[:3], 0)
	cp, _ := r.Snapshot()

	other, _ := core.NewComplexType(diamondStructure(),
		map[core.Variable]event.Type{"X0": "a", "X1": "b", "X2": "c", "X3": "d"})
	b, _ := Compile(other)
	if _, err := RestoreRunner(b, sys, RunOptions{}, &cp); err == nil {
		t.Fatal("restore against a different automaton must fail")
	}
	if _, err := RestoreRunner(a, sys, RunOptions{Strict: true}, &cp); err == nil {
		t.Fatal("restore under different semantics must fail")
	}
	empty := granularity.NewSystem(400*365*86400, 4096)
	if _, err := RestoreRunner(a, empty, RunOptions{}, &cp); err == nil {
		t.Fatal("restore against a system lacking the clock granularities must fail")
	}
	bad := cp
	bad.Version = 99
	if _, err := RestoreRunner(a, sys, RunOptions{}, &bad); err == nil {
		t.Fatal("restore of a future version must fail")
	}
	bad = cp
	bad.Frontier = append([]CheckpointRun(nil), cp.Frontier...)
	if len(bad.Frontier) == 0 {
		t.Fatal("expected a non-empty frontier after 3 events")
	}
	bad.Frontier[0].State = 9999
	if _, err := RestoreRunner(a, sys, RunOptions{}, &bad); err == nil {
		t.Fatal("restore with an out-of-range state must fail")
	}
	bad = cp
	bad.CurOK = nil
	if _, err := RestoreRunner(a, sys, RunOptions{}, &bad); err == nil {
		t.Fatal("restore with missing clock flags must fail")
	}
	// And the happy path still works.
	if _, err := RestoreRunner(a, sys, RunOptions{}, &cp); err != nil {
		t.Fatalf("valid restore failed: %v", err)
	}
}

// TestCheckpointDegradedSurvives: the degraded flag and reject counters
// survive a snapshot/restore round trip.
func TestCheckpointDegradedSurvives(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := fig1aScenario()
	c := engine.NewCounters()
	r := a.NewRunner(sys, RunOptions{MaxFrontier: 1, Engine: engine.Config{Observer: c}})
	for _, e := range seq {
		if r.Accepted() {
			break
		}
		r.Feed(e)
	}
	if !r.Degraded() {
		t.Skip("valve never tripped on this scenario")
	}
	if c.Get("tag.frontier.overflows") <= 0 {
		t.Fatal("overflow not counted")
	}
	cp, _ := r.Snapshot()
	if !cp.Degraded {
		t.Fatal("degraded flag lost in snapshot")
	}
	r2, err := RestoreRunner(a, sys, RunOptions{MaxFrontier: 1}, &cp)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Degraded() {
		t.Fatal("degraded flag lost in restore")
	}
}

// TestRunnerRejectReasons pins the typed reject causes.
func TestRunnerRejectReasons(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	c := engine.NewCounters()
	r := a.NewRunner(sys, RunOptions{Engine: engine.Config{Budget: 2, Observer: c}})
	if r.LastReject() != RejectNone {
		t.Fatalf("fresh runner LastReject = %v", r.LastReject())
	}
	if _, ok := r.Feed(event.Event{Type: "x", Time: 1000}); !ok {
		t.Fatal("first event rejected")
	}
	if r.LastReject() != RejectNone {
		t.Fatalf("after success LastReject = %v", r.LastReject())
	}
	if _, ok := r.Feed(event.Event{Type: "y", Time: 999}); ok {
		t.Fatal("out-of-order event accepted")
	}
	if r.LastReject() != RejectOutOfOrder {
		t.Fatalf("LastReject = %v, want RejectOutOfOrder", r.LastReject())
	}
	// Budget 1 is exhausted by the first feed: the next in-order event is an
	// interruption, and the one after that a sealed refusal.
	if _, ok := r.Feed(event.Event{Type: "y", Time: 1001}); ok {
		t.Fatal("budget-starved event accepted")
	}
	if r.LastReject() != RejectInterrupted {
		t.Fatalf("LastReject = %v, want RejectInterrupted", r.LastReject())
	}
	if _, ok := r.Feed(event.Event{Type: "z", Time: 1002}); ok {
		t.Fatal("sealed runner accepted an event")
	}
	if r.LastReject() != RejectSealed {
		t.Fatalf("LastReject = %v, want RejectSealed", r.LastReject())
	}
	if got := c.Get("tag.events.rejected"); got != 3 {
		t.Fatalf("tag.events.rejected = %d, want 3", got)
	}
	for _, rr := range []RejectReason{RejectNone, RejectOutOfOrder, RejectInterrupted, RejectSealed, RejectReason(42)} {
		if rr.String() == "" {
			t.Fatalf("empty String for %d", int(rr))
		}
	}
}

// FuzzCheckpoint: decode(encode(x)) == x for snapshots, and arbitrary bytes
// never panic the decoder.
func FuzzCheckpoint(f *testing.F) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		f.Fatal(err)
	}
	seq := fig1aScenario()
	for k := 0; k <= len(seq); k += 2 {
		r := a.NewRunner(sys, RunOptions{})
		for _, e := range seq[:k] {
			r.Feed(e)
		}
		cp, _ := r.Snapshot()
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("{"))
	f.Add([]byte(`{"version":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same value.
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatalf("accepted checkpoint failed to encode: %v", err)
		}
		cp2, err := DecodeCheckpoint(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("encoded checkpoint failed to re-decode: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatalf("round trip changed the checkpoint:\n%+v\n%+v", cp, cp2)
		}
		// Restore either fails cleanly or yields a usable runner; never a
		// panic.
		r, err := RestoreRunner(a, sys, RunOptions{Anchored: cp.Anchored, Strict: cp.Strict}, cp)
		if err != nil {
			return
		}
		r.Feed(event.Event{Type: "IBM-rise", Time: cp.PrevTime + 1})
	})
}
