package tag

import (
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
)

// RejectReason explains why Runner.Feed refused an event. The zero value
// RejectNone means the last Feed consumed its event (or reported sticky
// acceptance).
type RejectReason int

const (
	// RejectNone: the last Feed was not rejected.
	RejectNone RejectReason = iota
	// RejectOutOfOrder: the event's timestamp precedes the previous one; it
	// was not consumed and the runner remains usable.
	RejectOutOfOrder
	// RejectInterrupted: the engine interrupted this Feed (budget, context
	// or fault) before the event was consumed; Err() carries the typed
	// error and the runner state is unchanged from the previous event
	// boundary (so a Snapshot taken now resumes by re-feeding this event).
	RejectInterrupted
	// RejectSealed: a previous Feed was interrupted and the runner refuses
	// all further events; Err() carries the original typed error.
	RejectSealed
)

// String renders the reason for diagnostics.
func (r RejectReason) String() string {
	switch r {
	case RejectNone:
		return "none"
	case RejectOutOfOrder:
		return "out-of-order"
	case RejectInterrupted:
		return "interrupted"
	case RejectSealed:
		return "sealed"
	default:
		return "unknown"
	}
}

// Runner is an online TAG simulation: events are fed one at a time (in
// non-decreasing timestamp order) and acceptance is reported as soon as it
// happens — the monitoring mode the paper's introduction motivates
// (watching accesses, transactions or plant telemetry as they arrive)
// rather than batch scanning a stored sequence.
//
// A Runner holds the same deduplicated frontier as Accepts; feeding the
// events of a sequence one by one reports acceptance at exactly the same
// event. Runners are not safe for concurrent use.
type Runner struct {
	a        *TAG
	sys      *granularity.System
	opt      RunOptions
	mode     engine.ExecMode
	frontier map[string]runState
	// p/ps hold the compiled core's program and flat frontier when mode is
	// ExecCompiled; curCover/curOK/prevOK then alias ps's arrays so both
	// modes share the accessor and checkpoint plumbing.
	p        *program
	ps       *progScratch
	curCover []int64
	curOK    []bool
	prevOK   []bool
	progress [][]Transition
	steps    int
	accepted bool
	binding  map[string]int
	maxFront int
	prevTime int64
	ex       *engine.Exec
	err      error
	reject   RejectReason
	degraded bool
}

// NewRunner starts an online simulation using the execution core selected
// by opt.Engine.Mode.
func (a *TAG) NewRunner(sys *granularity.System, opt RunOptions) *Runner {
	r := &Runner{
		a:    a,
		sys:  sys,
		opt:  opt,
		mode: opt.Engine.Mode,
		ex:   opt.Engine.Start(),
	}
	if r.mode.Interpreted() {
		r.frontier = make(map[string]runState)
		r.curCover = make([]int64, len(a.clocks))
		r.curOK = make([]bool, len(a.clocks))
		r.prevOK = make([]bool, len(a.clocks))
		r.progress = make([][]Transition, len(a.trans))
		for s, ts := range a.trans {
			for _, t := range ts {
				if t.To != t.From {
					r.progress[s] = append(r.progress[s], t)
				}
			}
		}
		for _, s := range a.starts {
			if a.accept[s] {
				r.accepted = true
				r.binding = map[string]int{}
				continue
			}
			rs := runState{
				state:   s,
				vals:    make([]int64, len(a.clocks)),
				invalid: make([]bool, len(a.clocks)),
			}
			r.frontier[rs.key()] = rs
		}
		return r
	}
	r.p = a.program()
	r.ps = r.p.newScratch(sys)
	r.curCover, r.curOK, r.prevOK = r.ps.curCover, r.ps.curOK, r.ps.prevOK
	for _, s := range r.p.starts {
		if r.p.accept[s] {
			r.accepted = true
			r.binding = map[string]int{}
		}
	}
	r.ps.cur.seed(r.p, r.p.nClocks, len(r.p.vars))
	return r
}

// frontierLen returns the current deduplicated run count in either mode.
func (r *Runner) frontierLen() int {
	if r.mode.Interpreted() {
		return len(r.frontier)
	}
	return r.ps.cur.n
}

// Accepted reports whether an accepting run has been reached.
func (r *Runner) Accepted() bool { return r.accepted }

// Binding returns the witness of the accepting run (variable name → index
// of the fed event, 0-based in feeding order), or nil before acceptance.
func (r *Runner) Binding() map[string]int { return r.binding }

// Steps returns the number of events fed so far.
func (r *Runner) Steps() int { return r.steps }

// MaxFrontier returns the peak deduplicated run count.
func (r *Runner) MaxFrontier() int { return r.maxFront }

// Err returns the opt.Engine interruption that stopped the simulation, or
// nil. Once set, further feeding is refused with ok=false; the error
// matches engine.ErrInterrupted and carries the partial stats.
func (r *Runner) Err() error { return r.err }

// LastReject explains the most recent Feed that returned ok=false:
// RejectOutOfOrder, RejectInterrupted or RejectSealed. A successful Feed
// resets it to RejectNone. Every rejection also bumps the
// "tag.events.rejected" counter on the runner's engine observer.
func (r *Runner) LastReject() RejectReason { return r.reject }

// Degraded reports whether the MaxFrontier safety valve has tripped: the
// run set overflowed and was emptied, so subsequent non-acceptance is NOT a
// verdict — a real occurrence may have been dropped with the frontier.
// Acceptance reports remain sound (an accepting run was really reached).
// Each overflow bumps the "tag.frontier.overflows" counter.
func (r *Runner) Degraded() bool { return r.degraded }

// Feed consumes one event and reports whether the automaton has accepted
// (sticky: once true, further feeding is a no-op). Events must arrive in
// non-decreasing timestamp order; out-of-order events are rejected with
// ok=false without being consumed. LastReject distinguishes the rejection
// causes (out-of-order, engine interruption, post-interruption refusal).
func (r *Runner) Feed(e event.Event) (accepted, ok bool) {
	if r.accepted {
		r.reject = RejectNone
		return true, true
	}
	if r.err != nil {
		r.reject = RejectSealed
		r.ex.Count("tag.events.rejected", 1)
		return false, false
	}
	if r.steps > 0 && e.Time < r.prevTime {
		r.reject = RejectOutOfOrder
		r.ex.Count("tag.events.rejected", 1)
		return false, false
	}
	if err := r.ex.Step(1 + int64(r.frontierLen())); err != nil {
		r.err = r.ex.Seal(err)
		r.reject = RejectInterrupted
		r.ex.Count("tag.events.rejected", 1)
		return false, false
	}
	r.reject = RejectNone
	r.ex.Count("tag.events", 1)
	r.ex.Count("tag.runs.alive", int64(r.frontierLen()))
	idx := r.steps
	r.steps++
	if !r.mode.Interpreted() {
		return r.feedCompiled(e, idx)
	}
	return r.feedInterp(e, idx)
}

// feedInterp is the interpreted Runner step; Feed's prologue has already
// run and idx is the 0-based position of e in the fed sequence.
func (r *Runner) feedInterp(e event.Event, idx int) (accepted, ok bool) {
	copy(r.prevOK, r.curOK)
	for ci, c := range r.a.clocks {
		g, found := r.sys.Get(c.Gran)
		if !found {
			r.curOK[ci] = false
			continue
		}
		r.curCover[ci], r.curOK[ci] = g.TickOf(e.Time)
	}
	if idx == 0 {
		for k, rs := range r.frontier {
			copy(rs.vals, r.curCover)
			for ci := range rs.invalid {
				rs.invalid[ci] = !r.curOK[ci]
			}
			r.frontier[k] = rs
		}
	} else if r.opt.Strict {
		for ci := range r.a.clocks {
			if !r.curOK[ci] || !r.prevOK[ci] {
				r.frontier = map[string]runState{}
				break
			}
		}
	}
	r.prevTime = e.Time

	next := make(map[string]runState, len(r.frontier))
	var accBind map[string]int
	accepted = false
	for _, rs := range r.frontier {
		rs := rs
		read := func(c Clock) (int64, bool) {
			ci := r.a.clockIndex[c]
			if rs.invalid[ci] || !r.curOK[ci] {
				return 0, false
			}
			return r.curCover[ci] - rs.vals[ci], true
		}
		for _, t := range r.a.trans[rs.state] {
			if !t.Any && t.Symbol != e.Type {
				continue
			}
			if r.opt.Anchored && idx == 0 && t.Any && t.To == t.From {
				continue
			}
			if !t.Guard.Eval(read) {
				continue
			}
			nr := runState{
				state:   t.To,
				vals:    append([]int64(nil), rs.vals...),
				invalid: append([]bool(nil), rs.invalid...),
				binding: rs.binding,
			}
			if t.Binds != "" {
				nb := make(map[string]int, len(rs.binding)+1)
				for k, v := range rs.binding {
					nb[k] = v
				}
				nb[t.Binds] = idx
				nr.binding = nb
			}
			for _, c := range t.Reset {
				ci := r.a.clockIndex[c]
				nr.vals[ci] = r.curCover[ci]
				nr.invalid[ci] = !r.curOK[ci]
			}
			if r.a.accept[nr.state] {
				// Keep the canonically smallest witness among this event's
				// accepting candidates — acceptance must not depend on map
				// iteration order, or checkpoint/resume could report a
				// different (if equally valid) binding.
				if !accepted || bindingKey(nr.binding) < bindingKey(accBind) {
					accBind = nr.binding
				}
				accepted = true
				continue
			}
			if r.a.runDoomed(&nr, r.curCover, r.curOK, r.progress[nr.state]) {
				r.ex.Count("tag.runs.killed", 1)
				continue
			}
			k := nr.key()
			if old, dup := next[k]; dup {
				r.ex.Count("tag.runs.deduped", 1)
				if bindingKey(old.binding) <= bindingKey(nr.binding) {
					continue
				}
			}
			next[k] = nr
		}
	}
	if accepted {
		r.accepted = true
		r.binding = accBind
		return true, true
	}
	r.frontier = next
	if len(next) > r.maxFront {
		r.maxFront = len(next)
	}
	if r.opt.MaxFrontier > 0 && len(next) > r.opt.MaxFrontier {
		r.frontier = map[string]runState{}
		r.degraded = true
		r.ex.Count("tag.frontier.overflows", 1)
	}
	return false, true
}
