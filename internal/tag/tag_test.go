package tag

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
)

var sys = granularity.Default()

func TestFormulaEval(t *testing.T) {
	x := Clock{Chain: 0, Gran: "hour"}
	y := Clock{Chain: 1, Gran: "day"}
	vals := map[Clock]int64{x: 5}
	read := func(c Clock) (int64, bool) {
		v, ok := vals[c]
		return v, ok
	}
	if !(LE{x, 5}).Eval(read) || (LE{x, 4}).Eval(read) {
		t.Fatal("LE wrong")
	}
	if !(GE{x, 5}).Eval(read) || (GE{x, 6}).Eval(read) {
		t.Fatal("GE wrong")
	}
	if (LE{y, 100}).Eval(read) {
		t.Fatal("atom over undefined clock must be false")
	}
	if !(And{LE{x, 9}, GE{x, 1}}).Eval(read) {
		t.Fatal("And wrong")
	}
	if (And{LE{x, 9}, LE{y, 9}}).Eval(read) {
		t.Fatal("And with undefined atom must fail")
	}
	if !(Or{LE{y, 9}, GE{x, 5}}).Eval(read) {
		t.Fatal("Or wrong")
	}
	if !(And{}).Eval(read) || (Or{}).Eval(read) {
		t.Fatal("empty And is true, empty Or is false")
	}
	if (Not{LE{x, 9}}).Eval(read) {
		t.Fatal("Not of true atom")
	}
	if !(Not{LE{x, 4}}).Eval(read) {
		t.Fatal("Not of false atom over defined clock")
	}
	if (Not{LE{y, 4}}).Eval(read) {
		t.Fatal("Not must not fire over undefined clocks")
	}
	if (True{}).String() != "true" {
		t.Fatal("True string")
	}
}

func TestChainsCoverFig1a(t *testing.T) {
	s := core.Fig1a()
	chains, err := Chains(s)
	if err != nil {
		t.Fatal(err)
	}
	// Fig1a decomposes into exactly 2 chains: X0,X1,X3 and X0,X2,X3.
	if len(chains) != 2 {
		t.Fatalf("Fig1a chain cover has %d chains, want 2: %v", len(chains), chains)
	}
	covered := map[[2]core.Variable]bool{}
	for _, ch := range chains {
		if ch[0] != "X0" {
			t.Fatalf("chain %v does not start at root", ch)
		}
		if len(s.Successors(ch[len(ch)-1])) != 0 {
			t.Fatalf("chain %v does not end at a leaf", ch)
		}
		for i := 0; i+1 < len(ch); i++ {
			if s.Constraints(ch[i], ch[i+1]) == nil {
				t.Fatalf("chain %v uses non-arc %s->%s", ch, ch[i], ch[i+1])
			}
			covered[[2]core.Variable{ch[i], ch[i+1]}] = true
		}
	}
	if len(covered) != s.NumEdges() {
		t.Fatalf("cover hits %d of %d arcs", len(covered), s.NumEdges())
	}
}

func TestNaiveChainsCover(t *testing.T) {
	s := core.Fig1a()
	chains, err := NaiveChains(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != s.NumEdges() {
		t.Fatalf("naive cover has %d chains, want one per arc (%d)", len(chains), s.NumEdges())
	}
}

func TestChainsSingleVariable(t *testing.T) {
	s := core.NewStructure()
	s.AddVariable("X0")
	chains, err := Chains(s)
	if err != nil || len(chains) != 1 || len(chains[0]) != 1 {
		t.Fatalf("singleton chains = %v, %v", chains, err)
	}
}

func TestCompileFig1aShape(t *testing.T) {
	// Figure 2 of the paper: the cross product of two 4-state chains,
	// restricted to reachable tuples, with ANY self-loops everywhere.
	ct, err := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	// Reachable tuples: S0S0, S1S1, S1S2, S2S1, S2S2, S3S3 — the paper's
	// Figure 2 shows exactly these six.
	if a.NumStates() != 6 {
		t.Fatalf("Fig2 TAG has %d states, want 6\n%s", a.NumStates(), a)
	}
	// Clocks: chain {X0,X1,X3} uses b-day and week; chain {X0,X2,X3} uses
	// b-day and hour.
	if len(a.Clocks()) != 4 {
		t.Fatalf("Fig2 TAG has %d clocks, want 4: %v", len(a.Clocks()), a.Clocks())
	}
	// Every state has an ANY self-loop.
	loops := 0
	for st := 0; st < a.NumStates(); st++ {
		for _, tr := range a.trans[st] {
			if tr.Any && tr.From == tr.To {
				loops++
			}
		}
	}
	if loops != a.NumStates() {
		t.Fatalf("%d ANY loops for %d states", loops, a.NumStates())
	}
}

// fig1aScenario returns a sequence containing one occurrence of Example 1's
// complex type plus noise.
func fig1aScenario() event.Sequence {
	s := event.Sequence{
		{Type: "noise", Time: event.At(1996, 6, 3, 9, 0, 0)},
		{Type: "IBM-rise", Time: event.At(1996, 6, 3, 10, 0, 0)},
		{Type: "HP-fall", Time: event.At(1996, 6, 3, 15, 0, 0)},
		{Type: "IBM-earnings-report", Time: event.At(1996, 6, 4, 17, 0, 0)},
		{Type: "HP-rise", Time: event.At(1996, 6, 5, 9, 0, 0)},
		{Type: "noise", Time: event.At(1996, 6, 5, 10, 0, 0)},
		{Type: "IBM-fall", Time: event.At(1996, 6, 5, 11, 0, 0)},
		{Type: "noise", Time: event.At(1996, 6, 5, 12, 0, 0)},
	}
	return s
}

func TestAcceptsExample1(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	ok, stats := a.Accepts(sys, fig1aScenario(), RunOptions{})
	if !ok {
		t.Fatalf("Example 1 scenario not accepted; stats %+v", stats)
	}
	if stats.AcceptedAt != 6 {
		t.Fatalf("accepted at index %d, want 6 (the IBM-fall)", stats.AcceptedAt)
	}
	// Removing the HP-rise breaks it.
	seq := fig1aScenario()
	broken := seq.Filter(func(e event.Event) bool { return e.Type != "HP-rise" })
	if ok, _ := a.Accepts(sys, broken, RunOptions{}); ok {
		t.Fatal("accepted without the HP-rise event")
	}
	// Moving IBM-earnings-report to the same day as the rise violates
	// [1,1]b-day.
	sameDay := fig1aScenario()
	for i := range sameDay {
		if sameDay[i].Type == "IBM-earnings-report" {
			sameDay[i].Time = event.At(1996, 6, 3, 17, 0, 0)
		}
	}
	sameDay.Sort()
	if ok, _ := a.Accepts(sys, sameDay, RunOptions{}); ok {
		t.Fatal("accepted with earnings on the same b-day as the rise")
	}
}

func TestAcceptsAnchored(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := fig1aScenario()
	// Anchored at the noise event: the root cannot bind, reject.
	if ok, _ := a.Accepts(sys, seq, RunOptions{Anchored: true}); ok {
		t.Fatal("anchored run must bind the first event to the root")
	}
	// Anchored at the IBM-rise: accept.
	if ok, _ := a.Accepts(sys, seq[1:], RunOptions{Anchored: true}); !ok {
		t.Fatal("anchored at the true root occurrence must accept")
	}
}

func TestStrictVsLazyGapSemantics(t *testing.T) {
	// A weekend event between the pattern events kills strict runs (the
	// b-day clock update is undefined across it) but not lazy ones: the
	// clocks the guards need are reset after the gap event is skipped...
	// they are not — so both semantics reject unless no guard needs the
	// poisoned clock. Construct a pattern whose guards only constrain
	// weeks, with a weekend noise event in between.
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(1, 1, "week"))
	ct, _ := core.NewComplexType(s, map[core.Variable]event.Type{"A": "a", "B": "b"})
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := event.Sequence{
		{Type: "a", Time: event.At(1996, 6, 5, 10, 0, 0)},  // Wednesday
		{Type: "zz", Time: event.At(1996, 6, 8, 12, 0, 0)}, // Saturday
		{Type: "b", Time: event.At(1996, 6, 12, 10, 0, 0)}, // next Wednesday
	}
	if ok, _ := a.Accepts(sys, seq, RunOptions{}); !ok {
		t.Fatal("lazy semantics should accept (week clock never undefined)")
	}
	if ok, _ := a.Accepts(sys, seq, RunOptions{Strict: true}); !ok {
		t.Fatal("strict semantics should also accept: week covers Saturdays")
	}

	// Now constrain in b-day: the Saturday event poisons the b-day clock.
	s2 := core.NewStructure()
	s2.MustConstrain("A", "B", core.MustTCG(1, 10, "b-day"))
	ct2, _ := core.NewComplexType(s2, map[core.Variable]event.Type{"A": "a", "B": "b"})
	a2, err := Compile(ct2)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a2.Accepts(sys, seq, RunOptions{}); !ok {
		t.Fatal("lazy semantics must recover: the b-day ticks of a and b are both defined")
	}
	if ok, _ := a2.Accepts(sys, seq, RunOptions{Strict: true}); ok {
		t.Fatal("strict semantics must kill runs crossing the weekend event")
	}
}

// TestTAGEquivalentToBruteForce is the Theorem-3 equivalence check: over
// random small scenarios with distinct timestamps, TAG acceptance agrees
// with exhaustive binding search. (With simultaneous events the automaton
// input order can hide occurrences — a tie-handling caveat the paper's
// extended abstract glosses over — so the generator avoids ties.)
func TestTAGEquivalentToBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	structures := []*core.EventStructure{
		core.Fig1a(),
		chainStructure(),
		diamondStructure(),
	}
	types := []event.Type{"a", "b", "c", "d"}
	for si, s := range structures {
		assign := map[core.Variable]event.Type{}
		for i, v := range s.Variables() {
			assign[v] = types[i%len(types)]
		}
		ct, err := core.NewComplexType(s, assign)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Compile(ct)
		if err != nil {
			t.Fatal(err)
		}
		agreePos, agreeNeg := 0, 0
		for trial := 0; trial < 400; trial++ {
			seq := randomSeq(rng, types, 4, event.At(1996, 4, 1, 0, 0, 0), 20*86400)
			// Plant a jittered near-occurrence so both outcomes are
			// sampled: events in topological order with offsets that
			// sometimes satisfy and sometimes violate the constraints.
			base := event.At(1996, 4, 1, 0, 0, 0) + rng.Int63n(10*86400)
			cur := base
			for _, v := range mustTopo(s) {
				seq = append(seq, event.Event{Type: assign[v], Time: cur})
				cur += rng.Int63n(3*86400) + 1
			}
			seq.Sort()
			seq = dedupTimes(seq)
			want := core.OccursBrute(sys, ct, seq)
			got, _ := a.Accepts(sys, seq, RunOptions{})
			if got != want {
				t.Fatalf("structure %d trial %d: TAG=%v brute=%v\nseq=%v\n%s", si, trial, got, want, seq, a)
			}
			if want {
				agreePos++
			} else {
				agreeNeg++
			}
		}
		if agreePos == 0 {
			t.Fatalf("structure %d: no positive cases sampled; weaken constraints or widen generator", si)
		}
		if agreeNeg == 0 {
			t.Fatalf("structure %d: no negative cases sampled", si)
		}
	}
}

func chainStructure() *core.EventStructure {
	s := core.NewStructure()
	s.MustConstrain("X0", "X1", core.MustTCG(1, 1, "day"))
	s.MustConstrain("X1", "X2", core.MustTCG(0, 1, "week"))
	return s
}

func diamondStructure() *core.EventStructure {
	s := core.NewStructure()
	s.MustConstrain("X0", "X1", core.MustTCG(0, 3, "day"))
	s.MustConstrain("X0", "X2", core.MustTCG(0, 5, "day"))
	s.MustConstrain("X1", "X3", core.MustTCG(0, 1, "week"))
	s.MustConstrain("X2", "X3", core.MustTCG(0, 48, "hour"))
	return s
}

func mustTopo(s *core.EventStructure) []core.Variable {
	order, err := s.TopoOrder()
	if err != nil {
		panic(err)
	}
	return order
}

// dedupTimes drops events sharing a timestamp with an earlier event (the
// equivalence test avoids simultaneity; see the caveat above).
func dedupTimes(s event.Sequence) event.Sequence {
	var out event.Sequence
	seen := map[int64]bool{}
	for _, e := range s {
		if seen[e.Time] {
			continue
		}
		seen[e.Time] = true
		out = append(out, e)
	}
	return out
}

// randomSeq builds a sequence of n events with distinct timestamps.
func randomSeq(rng *rand.Rand, types []event.Type, n int, base, span int64) event.Sequence {
	used := map[int64]bool{}
	var s event.Sequence
	for len(s) < n {
		tm := base + rng.Int63n(span)
		if used[tm] {
			continue
		}
		used[tm] = true
		s = append(s, event.Event{Type: types[rng.Intn(len(types))], Time: tm})
	}
	s.Sort()
	return s
}

func TestRunStatsFrontierBound(t *testing.T) {
	// Theorem 4: the frontier stays bounded by (|V|K)^p-ish, not by the
	// sequence length, for a fixed pattern with small K.
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := event.GenerateStock(event.StockConfig{
		Symbols: []string{"IBM", "HP"}, StartYear: 1996, Days: 60, Seed: 3,
	})
	_, stats := a.Accepts(sys, seq, RunOptions{})
	if stats.MaxFrontier > 4096 {
		t.Fatalf("frontier exploded to %d", stats.MaxFrontier)
	}
}

func TestMaxFrontierValve(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	seq := event.GenerateStock(event.StockConfig{
		Symbols: []string{"IBM", "HP"}, StartYear: 1997, Days: 30, Seed: 9, RiseProb: 0.01,
	})
	// A valve of 1 truncates the search; it must not panic and must not
	// return acceptance it did not verify.
	ok, stats := a.Accepts(sys, seq, RunOptions{MaxFrontier: 1})
	_ = ok
	if stats.Steps == 0 && len(seq) > 0 {
		t.Fatal("no steps executed")
	}
}

func TestCompileErrors(t *testing.T) {
	// Unrooted structure cannot compile.
	s := core.NewStructure()
	s.MustConstrain("A", "C", core.MustTCG(0, 1, "day"))
	s.MustConstrain("B", "C", core.MustTCG(0, 1, "day"))
	if _, err := CompileStructure(s); err == nil {
		t.Fatal("unrooted structure compiled")
	}
	// Chain with a repeated variable is rejected by FromChains.
	ok := core.Fig1a()
	if _, err := FromChains(ok, [][]core.Variable{{"X0", "X1", "X3"}, {"X0", "X2", "X3", "X3"}}, nil); err == nil {
		t.Fatal("repeated variable in chain accepted")
	}
	// Chain using a non-arc is rejected.
	if _, err := FromChains(ok, [][]core.Variable{{"X0", "X3"}}, nil); err == nil {
		t.Fatal("non-arc chain accepted")
	}
	// Empty cover.
	if _, err := FromChains(ok, nil, nil); err == nil {
		t.Fatal("empty cover accepted")
	}
}

func TestCompileStructureSymbolsAreVariables(t *testing.T) {
	a, err := CompileStructure(chainStructure())
	if err != nil {
		t.Fatal(err)
	}
	seq := event.Sequence{
		{Type: "X0", Time: event.At(1996, 6, 3, 10, 0, 0)},
		{Type: "X1", Time: event.At(1996, 6, 4, 10, 0, 0)},
		{Type: "X2", Time: event.At(1996, 6, 10, 10, 0, 0)},
	}
	if ok, _ := a.Accepts(sys, seq, RunOptions{}); !ok {
		t.Fatal("variable-symbol TAG should accept the canonical witness")
	}
}

func TestFindOccurrenceWitness(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := fig1aScenario()
	binding, ok, _ := a.FindOccurrence(sys, seq, RunOptions{})
	if !ok {
		t.Fatal("occurrence exists but not found")
	}
	// Every variable bound, to an event of the assigned type, and the
	// binding is a matching complex event.
	b := core.Binding{}
	for _, v := range core.Fig1a().Variables() {
		idx, bound := binding[string(v)]
		if !bound {
			t.Fatalf("variable %s unbound in witness %v", v, binding)
		}
		e := seq[idx]
		if e.Type != ct.Assign[v] {
			t.Fatalf("witness binds %s to a %s event", v, e.Type)
		}
		b[v] = e
	}
	if !core.Matches(sys, core.Fig1a(), b) {
		t.Fatalf("witness does not match the structure: %v", binding)
	}
	// Rejection carries no witness.
	broken := seq.Filter(func(e event.Event) bool { return e.Type != "HP-rise" })
	if w, ok, _ := a.FindOccurrence(sys, broken, RunOptions{}); ok || w != nil {
		t.Fatal("rejection must not produce a witness")
	}
}

func TestFindOccurrenceAgreesWithBruteWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := diamondStructure()
	assign := map[core.Variable]event.Type{"X0": "a", "X1": "b", "X2": "c", "X3": "d"}
	ct, _ := core.NewComplexType(s, assign)
	a, _ := Compile(ct)
	types := []event.Type{"a", "b", "c", "d"}
	positives := 0
	for trial := 0; trial < 300 && positives < 40; trial++ {
		seq := randomSeq(rng, types, 4, event.At(1996, 4, 1, 0, 0, 0), 20*86400)
		base := event.At(1996, 4, 1, 0, 0, 0) + rng.Int63n(10*86400)
		cur := base
		for _, v := range mustTopo(s) {
			seq = append(seq, event.Event{Type: assign[v], Time: cur})
			cur += rng.Int63n(2*86400) + 1
		}
		seq.Sort()
		seq = dedupTimes(seq)
		w, ok, _ := a.FindOccurrence(sys, seq, RunOptions{})
		if !ok {
			continue
		}
		positives++
		b := core.Binding{}
		for _, v := range s.Variables() {
			b[v] = seq[w[string(v)]]
		}
		if !core.Matches(sys, s, b) {
			t.Fatalf("trial %d: extracted witness invalid: %v", trial, w)
		}
	}
	if positives < 10 {
		t.Fatalf("only %d positives sampled", positives)
	}
}

func TestWriteDOT(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	var buf strings.Builder
	if err := a.WriteDOT(&buf, "fig2"); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	for _, want := range []string{
		"digraph \"fig2\"", "doublecircle", "IBM-rise", "style=dashed",
		"reset ", "->",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// One node line per state, one accepting state.
	if n := strings.Count(dot, "doublecircle"); n != 1 {
		t.Fatalf("%d accepting nodes, want 1", n)
	}
}

func TestRelabelMatchesFromChains(t *testing.T) {
	s := core.Fig1a()
	chains, err := Chains(s)
	if err != nil {
		t.Fatal(err)
	}
	base, err := FromChains(s, chains, nil)
	if err != nil {
		t.Fatal(err)
	}
	assign := core.Example1Assignment()
	relabeled := base.Relabel(assign)
	direct, err := FromChains(s, chains, assign)
	if err != nil {
		t.Fatal(err)
	}
	// Same structure...
	if relabeled.NumStates() != direct.NumStates() || relabeled.NumTransitions() != direct.NumTransitions() {
		t.Fatal("relabel changed the automaton shape")
	}
	// ...and same behaviour on scenarios.
	seqs := []event.Sequence{fig1aScenario()}
	broken := fig1aScenario().Filter(func(e event.Event) bool { return e.Type != "HP-rise" })
	seqs = append(seqs, broken)
	for i, seq := range seqs {
		a1, _ := relabeled.Accepts(sys, seq, RunOptions{})
		a2, _ := direct.Accepts(sys, seq, RunOptions{})
		if a1 != a2 {
			t.Fatalf("seq %d: relabel %v != direct %v", i, a1, a2)
		}
	}
	// The base automaton is untouched: it still accepts variable symbols.
	varSeq := event.Sequence{
		{Type: "X0", Time: event.At(1996, 6, 3, 10, 0, 0)},
		{Type: "X1", Time: event.At(1996, 6, 4, 17, 0, 0)},
		{Type: "X2", Time: event.At(1996, 6, 5, 9, 0, 0)},
		{Type: "X3", Time: event.At(1996, 6, 5, 11, 0, 0)},
	}
	if ok, _ := base.Accepts(sys, varSeq, RunOptions{}); !ok {
		t.Fatal("relabel mutated the base automaton")
	}
}

func TestCompileMinimal(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := CompileMinimal(ct)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() != 6 {
		t.Fatalf("minimal compile states = %d, want 6", a.NumStates())
	}
	if ok, _ := a.Accepts(sys, fig1aScenario(), RunOptions{}); !ok {
		t.Fatal("minimal-cover automaton rejects the Example 1 scenario")
	}
}

func TestFormulaStringsAndDead(t *testing.T) {
	x := Clock{Chain: 0, Gran: "hour"}
	or := Or{LE{x, 3}, GE{x, 9}}
	if or.String() != "(x0_hour<=3) | (9<=x0_hour)" {
		t.Fatalf("Or string = %q", or.String())
	}
	if (Or{}).String() != "false" {
		t.Fatal("empty Or string")
	}
	not := Not{LE{x, 3}}
	if not.String() != "!(x0_hour<=3)" {
		t.Fatalf("Not string = %q", not.String())
	}
	if len(not.Clocks(nil)) != 1 || len(or.Clocks(nil)) != 2 {
		t.Fatal("clock collection wrong")
	}
	read5 := func(Clock) (int64, bool) { return 5, true }
	readBad := func(Clock) (int64, bool) { return 0, false }
	// Or is dead only when all branches are dead.
	if or.Dead(read5) {
		t.Fatal("Or with a live GE branch must not be dead")
	}
	deadOr := Or{LE{x, 3}, LE{x, 4}}
	if !deadOr.Dead(read5) {
		t.Fatal("Or of exceeded LEs must be dead")
	}
	if !or.Dead(readBad) {
		t.Fatal("Or over invalid clocks must be dead")
	}
	// Not is never pruned.
	if not.Dead(read5) || not.Dead(readBad) {
		t.Fatal("Not must be conservative")
	}
	if (And{}).String() != "true" {
		t.Fatal("empty And string")
	}
}
