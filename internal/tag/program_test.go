package tag

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
)

// execModes are the two cores every equivalence test runs.
var execModes = [2]engine.ExecMode{engine.ExecCompiled, engine.ExecInterp}

func modeOpt(m engine.ExecMode) RunOptions {
	return RunOptions{Engine: engine.Config{Mode: m}}
}

// TestExecModesEquivalentFuzz: the compiled program and the interpreter
// agree on verdict, witness, stats and final runner snapshot over random
// sequences (the committed in-package slice of the oracle's exec-equiv
// contract).
func TestExecModesEquivalentFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := diamondStructure()
	assign := map[core.Variable]event.Type{"X0": "a", "X1": "b", "X2": "c", "X3": "d"}
	ct, _ := core.NewComplexType(s, assign)
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	types := []event.Type{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		seq := randomSeq(rng, types, 12, event.At(1996, 4, 1, 0, 0, 0), 20*86400)

		wC, okC, rsC := a.FindOccurrence(sys, seq, modeOpt(engine.ExecCompiled))
		wI, okI, rsI := a.FindOccurrence(sys, seq, modeOpt(engine.ExecInterp))
		if okC != okI || rsC != rsI {
			t.Fatalf("trial %d: compiled (%v,%+v) vs interpreted (%v,%+v)", trial, okC, rsC, okI, rsI)
		}
		if len(wC) != len(wI) {
			t.Fatalf("trial %d: witnesses %v vs %v", trial, wC, wI)
		}
		for k, v := range wC {
			if wI[k] != v {
				t.Fatalf("trial %d: witnesses %v vs %v", trial, wC, wI)
			}
		}

		var snaps [2][]byte
		for i, m := range execModes {
			r := a.NewRunner(sys, modeOpt(m))
			for _, e := range seq {
				r.Feed(e)
			}
			cp, err := r.Snapshot()
			if err != nil {
				t.Fatalf("trial %d: %s snapshot: %v", trial, m, err)
			}
			var buf bytes.Buffer
			if err := cp.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			snaps[i] = buf.Bytes()
		}
		if !bytes.Equal(snaps[0], snaps[1]) {
			t.Fatalf("trial %d: final snapshots differ:\n%s\nvs\n%s", trial, snaps[0], snaps[1])
		}
	}
}

// TestCompiledBindingTieBreakQuirk: witness winner selection is defined by
// bindingKey STRING order, where "a=12;" < "a=1;" (because '2' < ';'). Both
// cores must pick the same — quirky — winner.
func TestCompiledBindingTieBreakQuirk(t *testing.T) {
	a := NewTAG()
	s0 := a.AddState("s0")
	s1 := a.AddState("s1")
	acc := a.AddState("acc")
	a.MarkStart(s0)
	a.MarkAccept(acc)
	a.AddTransition(Transition{From: s0, To: s0, Any: true, Guard: True{}})
	a.AddTransition(Transition{From: s1, To: s1, Any: true, Guard: True{}})
	a.AddTransition(Transition{From: s0, To: s1, Symbol: "a", Guard: True{}, Binds: "a"})
	a.AddTransition(Transition{From: s1, To: acc, Symbol: "b", Guard: True{}})

	// Events: "a" at indices 1 and 12, then "b". Two runs reach acc at the
	// final event, binding a=1 and a=12; "a=12;" is the smaller key.
	var seq event.Sequence
	base := event.At(1996, 4, 1, 0, 0, 0)
	for i := 0; i < 13; i++ {
		typ := event.Type("x")
		if i == 1 || i == 12 {
			typ = "a"
		}
		seq = append(seq, event.Event{Type: typ, Time: base + int64(i)})
	}
	seq = append(seq, event.Event{Type: "b", Time: base + 13})

	for _, m := range execModes {
		w, ok, _ := a.FindOccurrence(sys, seq, modeOpt(m))
		if !ok || w["a"] != 12 {
			t.Fatalf("%s: witness %v ok=%v, want a=12 (string-order winner)", m, w, ok)
		}
	}
}

// TestCmpBindRowsMatchesBindingKey: the compiled comparator agrees in sign
// with string comparison of the interpreter's bindingKey on random rows.
func TestCmpBindRowsMatchesBindingKey(t *testing.T) {
	a := NewTAG()
	s0 := a.AddState("s0")
	a.MarkStart(s0)
	for _, v := range []string{"a", "ab", "b", "x9"} {
		a.AddTransition(Transition{From: s0, To: s0, Any: true, Guard: True{}, Binds: v})
	}
	p := a.program()
	if len(p.vars) != 4 {
		t.Fatalf("program interned %d vars, want 4", len(p.vars))
	}
	rng := rand.New(rand.NewSource(7))
	randRow := func() []int32 {
		row := make([]int32, 4)
		for i := range row {
			if rng.Intn(3) == 0 {
				row[i] = unbound
			} else {
				row[i] = int32(rng.Intn(200))
			}
		}
		return row
	}
	toMap := func(row []int32) map[string]int {
		m := map[string]int{}
		for i, v := range row {
			if v >= 0 {
				m[p.vars[i]] = int(v)
			}
		}
		return m
	}
	sign := func(x int) int {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		}
		return 0
	}
	for trial := 0; trial < 2000; trial++ {
		ra, rb := randRow(), randRow()
		got := sign(p.cmpBindRows(ra, rb))
		want := sign(strings.Compare(bindingKey(toMap(ra)), bindingKey(toMap(rb))))
		if got != want {
			t.Fatalf("cmpBindRows(%v,%v)=%d, bindingKey order says %d (%q vs %q)",
				ra, rb, got, want, bindingKey(toMap(ra)), bindingKey(toMap(rb)))
		}
	}
}

// TestCrossModeCheckpointRestore: a snapshot taken under one core restores
// into the other and finishes on the same bytes as a straight run of the
// destination core.
func TestCrossModeCheckpointRestore(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := fig1aScenario()
	mid := len(seq) / 2

	finalSnap := func(m engine.ExecMode) []byte {
		r := a.NewRunner(sys, modeOpt(m))
		for _, e := range seq {
			r.Feed(e)
		}
		cp, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for i, from := range execModes {
		to := execModes[1-i]
		r := a.NewRunner(sys, modeOpt(from))
		for _, e := range seq[:mid] {
			r.Feed(e)
		}
		cp, err := r.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cp.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RestoreRunner(a, sys, modeOpt(to), dec)
		if err != nil {
			t.Fatalf("restoring %s snapshot into %s runner: %v", from, to, err)
		}
		for _, e := range seq[mid:] {
			r2.Feed(e)
		}
		cp2, err := r2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf2 bytes.Buffer
		if err := cp2.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf2.Bytes(), finalSnap(to)) {
			t.Fatalf("%s snapshot resumed under %s diverges from a straight %s run", from, to, to)
		}
	}
}

// TestCheckpointSchemaMismatch: snapshots carry the execution-state schema
// version; restoring a foreign schema fails with the typed error before any
// fingerprint comparison.
func TestCheckpointSchemaMismatch(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	r := a.NewRunner(sys, RunOptions{})
	for _, e := range fig1aScenario()[:3] {
		r.Feed(e)
	}
	cp, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if cp.ExecSchema != ExecSchemaVersion {
		t.Fatalf("snapshot carries schema %d, want %d", cp.ExecSchema, ExecSchemaVersion)
	}
	cp.ExecSchema = ExecSchemaVersion + 1
	cp.Fingerprint = "tampered-too" // schema must win over fingerprint
	_, err = RestoreRunner(a, sys, RunOptions{}, &cp)
	var sm *SchemaMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("restore of schema %d returned %v, want *SchemaMismatchError", cp.ExecSchema, err)
	}
	if sm.Got != ExecSchemaVersion+1 || sm.Want != ExecSchemaVersion {
		t.Fatalf("SchemaMismatchError carries got=%d want=%d", sm.Got, sm.Want)
	}
	// A zero schema (snapshots predating the field) is refused the same way.
	cp.ExecSchema = 0
	if _, err = RestoreRunner(a, sys, RunOptions{}, &cp); !errors.As(err, &sm) {
		t.Fatalf("restore of schema 0 returned %v, want *SchemaMismatchError", err)
	}
}

// TestCheckpointRejectsUnknownBinder: a frontier binding for a variable no
// transition binds is refused by validation.
func TestCheckpointRejectsUnknownBinder(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, _ := Compile(ct)
	r := a.NewRunner(sys, RunOptions{})
	for _, e := range fig1aScenario()[:3] {
		r.Feed(e)
	}
	cp, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Frontier) == 0 {
		t.Fatal("snapshot has an empty frontier; pick a longer prefix")
	}
	if cp.Frontier[0].Binding == nil {
		cp.Frontier[0].Binding = map[string]int{}
	}
	cp.Frontier[0].Binding["no-such-var"] = 0
	if _, err := RestoreRunner(a, sys, RunOptions{}, &cp); err == nil ||
		!strings.Contains(err.Error(), "no-such-var") {
		t.Fatalf("restore with unknown binder returned %v, want a binder rejection", err)
	}
}

// TestProgramCacheInvalidation: mutating the automaton's shape after a run
// rebuilds the compiled program.
func TestProgramCacheInvalidation(t *testing.T) {
	a := NewTAG()
	s0 := a.AddState("s0")
	acc := a.AddState("acc")
	a.MarkStart(s0)
	a.MarkAccept(acc)
	a.AddTransition(Transition{From: s0, To: s0, Any: true, Guard: True{}})
	a.AddTransition(Transition{From: s0, To: acc, Symbol: "hit", Guard: True{}})

	base := event.At(1996, 4, 1, 0, 0, 0)
	seq := event.Sequence{{Type: "miss", Time: base}, {Type: "hit", Time: base + 1}}
	if ok, _ := a.Accepts(sys, seq, RunOptions{}); !ok {
		t.Fatal("baseline automaton must accept")
	}
	p1 := a.prog.Load()

	// Adding a transition must invalidate the cached program.
	s1 := a.AddState("s1")
	a.AddTransition(Transition{From: s0, To: s1, Symbol: "detour", Guard: True{}})
	if ok, _ := a.Accepts(sys, seq, RunOptions{}); !ok {
		t.Fatal("extended automaton must still accept")
	}
	if p2 := a.prog.Load(); p2 == p1 {
		t.Fatal("program cache not invalidated by AddState/AddTransition")
	}
}
