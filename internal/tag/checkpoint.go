package tag

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/granularity"
)

// CheckpointVersion is the wire version of the Runner checkpoint format.
// Decoding rejects other versions.
const CheckpointVersion = 1

// ExecSchemaVersion identifies the execution-state schema this build writes
// and reads: the meaning of the frontier encoding plus the
// conversion-table layout the fingerprint digests. It is deliberately
// independent of engine.ExecMode — compiled and interpreted runners share
// one schema, which is what makes cross-mode restores legal — and bumps
// only when the encoded execution state itself changes meaning.
const ExecSchemaVersion = 1

// SchemaMismatchError reports a checkpoint whose execution-state schema
// differs from this build's. It is returned by RestoreRunner before any
// fingerprint comparison: a schema mismatch means the bytes cannot be
// interpreted, which is a different (and more fundamental) failure than
// matching state taken under a different automaton.
type SchemaMismatchError struct {
	// Got is the schema version recorded in the checkpoint.
	Got int
	// Want is ExecSchemaVersion.
	Want int
}

func (e *SchemaMismatchError) Error() string {
	return fmt.Sprintf("tag: checkpoint uses execution schema %d, this build reads %d", e.Got, e.Want)
}

// Checkpoint is a serializable snapshot of a streaming Runner at an event
// boundary: the deduplicated frontier with clock valuations and witness
// bindings, the event count, the order watermark, and the semantic run
// options. Restoring it (RestoreRunner) and feeding the remaining events
// yields exactly the run an uninterrupted Runner would have produced —
// same acceptance event, same binding.
//
// The Fingerprint ties the snapshot to the automaton and granularity
// system it was taken under; RestoreRunner refuses snapshots whose
// fingerprint does not match, so stale or foreign state can never be
// silently resumed against the wrong TAG.
type Checkpoint struct {
	Version int `json:"version"`
	// ExecSchema is the execution-state schema version the snapshot was
	// written under (ExecSchemaVersion); restores refuse other schemas with
	// a *SchemaMismatchError. Snapshots predating the field read as 0 and
	// are refused the same way.
	ExecSchema  int    `json:"exec_schema"`
	Fingerprint string `json:"fingerprint"`
	// Anchored / Strict record the semantic RunOptions the snapshot was
	// taken under; restoring under different semantics is refused.
	Anchored bool `json:"anchored,omitempty"`
	Strict   bool `json:"strict,omitempty"`
	// Steps is the number of events consumed; a resuming feeder skips this
	// many events of its input.
	Steps int `json:"steps"`
	// PrevTime is the order watermark (timestamp of the last consumed
	// event); meaningful when Steps > 0.
	PrevTime int64 `json:"prev_time"`
	// CurOK records, per clock, whether the last consumed event's timestamp
	// was covered by the clock's granularity — the strict-semantics lookback
	// state. len(CurOK) == number of automaton clocks.
	CurOK []bool `json:"cur_ok"`
	// Accepted/Binding capture a sticky acceptance (Binding: variable name →
	// 0-based index of the bound event in feeding order).
	Accepted bool           `json:"accepted,omitempty"`
	Binding  map[string]int `json:"binding,omitempty"`
	// MaxFrontier is the peak deduplicated run count so far.
	MaxFrontier int `json:"max_frontier"`
	// Degraded marks a tripped MaxFrontier valve (post-overflow
	// non-acceptance is not a verdict; the flag survives the restore).
	Degraded bool `json:"degraded,omitempty"`
	// Frontier is the deduplicated run set, sorted by dedup key so equal
	// runner states encode to identical bytes.
	Frontier []CheckpointRun `json:"frontier"`
}

// CheckpointRun is one frontier run of a Checkpoint.
type CheckpointRun struct {
	State   int            `json:"state"`
	Vals    []int64        `json:"vals"`
	Invalid []bool         `json:"invalid"`
	Binding map[string]int `json:"binding,omitempty"`
}

// Fingerprint digests the automaton and the granularities it reads so a
// checkpoint can be bound to them: state names, start/accept sets, clocks,
// every transition (symbol, guard, resets, binder), and — for each clock's
// granularity — its name plus a probe of its first granules' extents from
// the system (so "same name, different definition" is caught too).
func (a *TAG) Fingerprint(sys *granularity.System) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\n", ExecSchemaVersion)
	fmt.Fprintf(h, "states=%d\n", len(a.names))
	for _, n := range a.names {
		fmt.Fprintf(h, "n:%s\n", n)
	}
	fmt.Fprintf(h, "starts:%v\n", a.starts)
	accepts := make([]int, 0, len(a.accept))
	for s := range a.accept {
		accepts = append(accepts, s)
	}
	sort.Ints(accepts)
	fmt.Fprintf(h, "accepts:%v\n", accepts)
	for _, c := range a.clocks {
		fmt.Fprintf(h, "clock:%s\n", c)
		g, ok := sys.Get(c.Gran)
		if !ok {
			fmt.Fprintf(h, "gran:%s:missing\n", c.Gran)
			continue
		}
		fmt.Fprintf(h, "gran:%s", c.Gran)
		for z := int64(1); z <= 4; z++ {
			iv, ok := g.Span(z)
			fmt.Fprintf(h, ":%v,%d,%d", ok, iv.First, iv.Last)
		}
		fmt.Fprintln(h)
		// Digest the conversion-table layout too: the compiled core reads
		// clocks through these tables, so "same granules, different table
		// shape" must change the fingerprint with them.
		if pt := sys.Table(c.Gran); pt != nil {
			fmt.Fprintf(h, "table:%s:%s\n", c.Gran, pt.Signature())
		} else {
			fmt.Fprintf(h, "table:%s:none\n", c.Gran)
		}
	}
	for from, ts := range a.trans {
		for _, t := range ts {
			fmt.Fprintf(h, "t:%d>%d:%s:%v:%s:%v:%s\n",
				from, t.To, t.Symbol, t.Any, t.Guard, t.Reset, t.Binds)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot captures the runner's state at the current event boundary. It
// is valid after any Feed outcome: an interrupted Feed (RejectInterrupted)
// leaves the runner exactly at the boundary before the refused event, so
// the snapshot resumes by re-feeding that event.
func (r *Runner) Snapshot() (Checkpoint, error) {
	cp := Checkpoint{
		Version:     CheckpointVersion,
		ExecSchema:  ExecSchemaVersion,
		Fingerprint: r.a.Fingerprint(r.sys),
		Anchored:    r.opt.Anchored,
		Strict:      r.opt.Strict,
		Steps:       r.steps,
		PrevTime:    r.prevTime,
		CurOK:       append([]bool(nil), r.curOK...),
		Accepted:    r.accepted,
		Binding:     copyBinding(r.binding),
		MaxFrontier: r.maxFront,
		Degraded:    r.degraded,
	}
	cp.Frontier = r.snapshotFrontier()
	return cp, nil
}

// RestoreRunner rebuilds a streaming Runner from a checkpoint taken against
// the same automaton and granularity system. The semantic options
// (Anchored, Strict) must match the snapshot's; MaxFrontier and Engine are
// taken from opt, so a resumed run gets a fresh budget and deadline.
// Feeding the events the snapshot had not yet consumed continues the run
// exactly where it left off.
func RestoreRunner(a *TAG, sys *granularity.System, opt RunOptions, cp *Checkpoint) (*Runner, error) {
	if cp == nil {
		return nil, fmt.Errorf("tag: nil checkpoint")
	}
	if cp.ExecSchema != ExecSchemaVersion {
		return nil, &SchemaMismatchError{Got: cp.ExecSchema, Want: ExecSchemaVersion}
	}
	if err := cp.validate(a); err != nil {
		return nil, err
	}
	if got := a.Fingerprint(sys); got != cp.Fingerprint {
		return nil, fmt.Errorf("tag: checkpoint fingerprint %.12s... does not match automaton/system %.12s...", cp.Fingerprint, got)
	}
	if opt.Anchored != cp.Anchored || opt.Strict != cp.Strict {
		return nil, fmt.Errorf("tag: checkpoint taken under anchored=%v strict=%v, restore requested anchored=%v strict=%v",
			cp.Anchored, cp.Strict, opt.Anchored, opt.Strict)
	}
	r := a.NewRunner(sys, opt)
	r.steps = cp.Steps
	r.prevTime = cp.PrevTime
	copy(r.curOK, cp.CurOK)
	r.accepted = cp.Accepted
	r.binding = copyBinding(cp.Binding)
	r.maxFront = cp.MaxFrontier
	r.degraded = cp.Degraded
	// NewRunner seeded the initial frontier; replace it with the snapshot's
	// (at Steps == 0 they coincide). The snapshot may come from either
	// execution mode — the wire format is mode-independent.
	if err := r.loadFrontier(cp.Frontier); err != nil {
		return nil, err
	}
	return r, nil
}

// validate checks structural well-formedness against the automaton.
func (cp *Checkpoint) validate(a *TAG) error {
	if cp == nil {
		return fmt.Errorf("tag: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("tag: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	if cp.Steps < 0 {
		return fmt.Errorf("tag: checkpoint has negative step count %d", cp.Steps)
	}
	nc := len(a.clocks)
	if len(cp.CurOK) != nc {
		return fmt.Errorf("tag: checkpoint has %d clock flags, automaton has %d clocks", len(cp.CurOK), nc)
	}
	binders := make(map[string]bool)
	for _, ts := range a.trans {
		for _, t := range ts {
			if t.Binds != "" {
				binders[t.Binds] = true
			}
		}
	}
	for i, cr := range cp.Frontier {
		if cr.State < 0 || cr.State >= len(a.names) {
			return fmt.Errorf("tag: checkpoint run %d references state %d of %d", i, cr.State, len(a.names))
		}
		if len(cr.Vals) != nc || len(cr.Invalid) != nc {
			return fmt.Errorf("tag: checkpoint run %d has %d/%d clock entries, automaton has %d clocks",
				i, len(cr.Vals), len(cr.Invalid), nc)
		}
		for v, idx := range cr.Binding {
			if !binders[v] {
				return fmt.Errorf("tag: checkpoint run %d binds %q, which no transition of the automaton binds", i, v)
			}
			if idx < 0 || idx >= cp.Steps {
				return fmt.Errorf("tag: checkpoint run %d binds %s to event %d of %d consumed", i, v, idx, cp.Steps)
			}
		}
	}
	for v, idx := range cp.Binding {
		if !binders[v] {
			return fmt.Errorf("tag: checkpoint binds %q, which no transition of the automaton binds", v)
		}
		if idx < 0 || idx >= cp.Steps {
			return fmt.Errorf("tag: checkpoint binds %s to event %d of %d consumed", v, idx, cp.Steps)
		}
	}
	return nil
}

// Encode writes the checkpoint as JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// DecodeCheckpoint reads an Encode-formatted checkpoint. Arbitrary input
// never panics; unknown fields and other versions are rejected.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cp); err != nil {
		return nil, fmt.Errorf("tag: decoding checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("tag: checkpoint version %d, this build reads %d", cp.Version, CheckpointVersion)
	}
	// An explicit empty binding ({}) decodes as a non-nil map, but omitempty
	// drops it on the next encode, which would re-decode as nil — normalize
	// to nil here so decode∘encode is the identity on accepted checkpoints.
	if len(cp.Binding) == 0 {
		cp.Binding = nil
	}
	for i := range cp.Frontier {
		if len(cp.Frontier[i].Binding) == 0 {
			cp.Frontier[i].Binding = nil
		}
	}
	return &cp, nil
}

func copyBinding(b map[string]int) map[string]int {
	if b == nil {
		return nil
	}
	out := make(map[string]int, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}
