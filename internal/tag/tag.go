package tag

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
)

// Transition is one edge of a TAG: from state From to state To on input
// Symbol (or on any symbol when Any is set), resetting the clocks in Reset,
// enabled when Guard holds under the current clock valuation.
type Transition struct {
	From, To int
	Symbol   event.Type
	Any      bool
	Reset    []Clock
	Guard    Formula
	// Binds names the event variable this transition consumes an event
	// for; empty on skip transitions. Set by the compiler so witnesses can
	// be extracted from accepting runs.
	Binds string
}

// TAG is a timed finite automaton with granularities: the 6-tuple
// (Σ, S, S0, C, T, F) of the paper's Section 4.
type TAG struct {
	names  []string // state names, index = state id
	starts []int
	accept map[int]bool
	clocks []Clock
	trans  [][]Transition // outgoing, indexed by From
	// clockIndex maps a clock to its slot in run valuations.
	clockIndex map[Clock]int
	// prog caches the compiled flat-array form (see program.go); it is
	// invalidated by shape changes and rebuilt lazily.
	prog atomic.Pointer[program]
}

// NewTAG builds an empty automaton; use AddState/AddTransition.
func NewTAG() *TAG {
	return &TAG{accept: make(map[int]bool), clockIndex: make(map[Clock]int)}
}

// AddState adds a state with a diagnostic name and returns its id.
func (a *TAG) AddState(name string) int {
	a.names = append(a.names, name)
	a.trans = append(a.trans, nil)
	return len(a.names) - 1
}

// MarkStart marks a state as a start state.
func (a *TAG) MarkStart(s int) { a.starts = append(a.starts, s) }

// MarkAccept marks a state as accepting.
func (a *TAG) MarkAccept(s int) { a.accept[s] = true }

// AddClock registers a clock (idempotent).
func (a *TAG) AddClock(c Clock) {
	if _, ok := a.clockIndex[c]; ok {
		return
	}
	a.clockIndex[c] = len(a.clocks)
	a.clocks = append(a.clocks, c)
}

// AddTransition appends a transition; its clocks must have been registered.
func (a *TAG) AddTransition(t Transition) {
	for _, c := range t.Reset {
		if _, ok := a.clockIndex[c]; !ok {
			panic(fmt.Sprintf("tag: unregistered clock %s in reset", c))
		}
	}
	for _, c := range t.Guard.Clocks(nil) {
		if _, ok := a.clockIndex[c]; !ok {
			panic(fmt.Sprintf("tag: unregistered clock %s in guard", c))
		}
	}
	a.trans[t.From] = append(a.trans[t.From], t)
}

// NumStates returns |S|.
func (a *TAG) NumStates() int { return len(a.names) }

// NumTransitions returns |T|.
func (a *TAG) NumTransitions() int {
	n := 0
	for _, ts := range a.trans {
		n += len(ts)
	}
	return n
}

// Clocks returns the clock set.
func (a *TAG) Clocks() []Clock { return append([]Clock(nil), a.clocks...) }

// StateName returns the diagnostic name of a state.
func (a *TAG) StateName(s int) string { return a.names[s] }

// String renders the automaton, one transition per line.
func (a *TAG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "states=%d starts=%v clocks=%v\n", len(a.names), a.starts, a.clocks)
	for from, ts := range a.trans {
		for _, t := range ts {
			sym := string(t.Symbol)
			if t.Any {
				sym = "ANY"
			}
			acc := ""
			if a.accept[t.To] {
				acc = " (accept)"
			}
			fmt.Fprintf(&b, "%s --%s[%s]{reset %v}--> %s%s\n",
				a.names[from], sym, t.Guard, t.Reset, a.names[t.To], acc)
		}
	}
	return b.String()
}

// RunOptions tunes the NDFA simulation.
type RunOptions struct {
	// Anchored disables the skip self-loop on start states, forcing the
	// first event of the input to take a real transition. The mining layer
	// uses this to bind the structure's root to a specific reference
	// occurrence.
	Anchored bool
	// Strict applies the paper's literal run semantics: a run dies as soon
	// as ANY clock update is undefined (the event timestamp or the
	// previous one falls in a granularity gap), even if no guard mentions
	// the clock. The default (lazy) semantics instead marks the clock
	// undefined until its next reset; guards over undefined clocks cannot
	// fire. Lazy accepts a superset of strict and is what mining over
	// real sequences (weekends between trading days!) needs.
	Strict bool
	// MaxFrontier caps the deduplicated run-set size as a safety valve;
	// 0 means unlimited.
	MaxFrontier int
	// Engine bounds and observes the simulation. The zero value is
	// unbounded and silent. Each consumed event spends one budget unit plus
	// one per live run processed; counters report "tag.events" and the
	// cumulative "tag.runs.alive" / "tag.runs.deduped" / "tag.runs.killed".
	// Accepts and FindOccurrence treat an interruption like the MaxFrontier
	// safety valve — they stop and report non-acceptance with partial stats;
	// use AcceptsExec / FindOccurrenceExec to receive the typed error.
	Engine engine.Config
}

// RunStats reports simulation effort for the Theorem-4 experiments.
type RunStats struct {
	// Steps is the number of events consumed.
	Steps int
	// MaxFrontier is the peak number of distinct (state, valuation) runs.
	MaxFrontier int
	// AcceptedAt is the index (into the input) of the event on which an
	// accepting state was first reached, or -1.
	AcceptedAt int
}

// runState is one NDFA run: a state plus a clock valuation. The valuation
// is stored as the granule index at each clock's last reset (vals[i]), so a
// reading is cover(now) − vals[i]: this telescopes to the paper's
// accumulated value when every intermediate cover is defined, and recovers
// after an unrelated gap event under the lazy semantics. invalid marks
// clocks reset at an uncovered timestamp.
type runState struct {
	state   int
	vals    []int64
	invalid []bool
	// binding records, per variable name, the index of the event each
	// binding transition consumed. It is carried along but deliberately
	// NOT part of the dedup key: runs differing only in their witness are
	// interchangeable for acceptance, and keeping one of them suffices.
	binding map[string]int
}

// bindingKey canonicalizes a witness so winner selection among
// interchangeable runs (same dedup key, different witness) is a pure
// function of run content, not of map iteration order. Determinism here is
// what makes checkpoint/resume reproduce the exact binding of an
// uninterrupted run.
func bindingKey(b map[string]int) string {
	if len(b) == 0 {
		return ""
	}
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d;", k, b[k])
	}
	return sb.String()
}

// key builds a dedup key for the run.
func (r runState) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", r.state)
	for i, v := range r.vals {
		if r.invalid[i] {
			b.WriteString("|x")
		} else {
			fmt.Fprintf(&b, "|%d", v)
		}
	}
	return b.String()
}

// runDoomed reports whether the run can never reach an accepting state:
// every state-changing transition's guard is permanently dead. Clock
// values only grow while the run waits in its state, and an invalid clock
// (reset at an uncovered timestamp) stays invalid, so LE atoms past their
// bound and atoms over invalid clocks never recover. A transiently
// uncovered current timestamp is NOT permanent: such clocks read as very
// small values here so no atom is considered dead because of them.
func (a *TAG) runDoomed(r *runState, curCover []int64, curOK []bool, progress []Transition) bool {
	if len(progress) == 0 {
		return true
	}
	read := func(c Clock) (int64, bool) {
		ci := a.clockIndex[c]
		if r.invalid[ci] {
			return 0, false
		}
		if !curOK[ci] {
			return -(1 << 60), true // unknown but recoverable: never dead
		}
		return curCover[ci] - r.vals[ci], true
	}
	for _, t := range progress {
		if !t.Guard.Dead(read) {
			return false
		}
	}
	return true
}

// Accepts reports whether the automaton accepts the sequence: whether some
// run reaches an accepting state at some prefix. (Compiled TAGs keep skip
// self-loops on accepting states, so prefix acceptance and end-of-input
// acceptance coincide; stopping at the first acceptance is an optimization,
// not a semantic change.)
func (a *TAG) Accepts(sys *granularity.System, seq event.Sequence, opt RunOptions) (bool, RunStats) {
	ex := opt.Engine.Start()
	_, ok, stats, err := a.run(ex, sys, seq, opt, false)
	ex.Seal(err)
	if err != nil {
		return false, stats
	}
	return ok, stats
}

// AcceptsExec is Accepts under a caller-supplied execution carrier
// (opt.Engine's budget/observer are ignored; opt.Engine.Mode still selects
// the execution core). Unlike Accepts, an interruption surfaces as the
// carrier's typed error alongside the partial stats.
func (a *TAG) AcceptsExec(ex *engine.Exec, sys *granularity.System, seq event.Sequence, opt RunOptions) (bool, RunStats, error) {
	_, ok, stats, err := a.run(ex, sys, seq, opt, false)
	return ok, stats, ex.Seal(err)
}

// FindOccurrence is Accepts returning a witness: the index in seq of the
// event bound to each variable of the accepting run (for compiled TAGs,
// the variables of the source structure). ok is false when the automaton
// rejects. An opt.Engine interruption reports ok=false with partial stats.
func (a *TAG) FindOccurrence(sys *granularity.System, seq event.Sequence, opt RunOptions) (map[string]int, bool, RunStats) {
	ex := opt.Engine.Start()
	w, ok, stats, err := a.run(ex, sys, seq, opt, true)
	ex.Seal(err)
	if err != nil {
		return nil, false, stats
	}
	return w, ok, stats
}

// FindOccurrenceExec is FindOccurrence under a caller-supplied execution
// carrier (opt.Engine's budget/observer are ignored; opt.Engine.Mode still
// selects the execution core); interruptions surface as the carrier's
// typed error.
func (a *TAG) FindOccurrenceExec(ex *engine.Exec, sys *granularity.System, seq event.Sequence, opt RunOptions) (map[string]int, bool, RunStats, error) {
	w, ok, stats, err := a.run(ex, sys, seq, opt, true)
	return w, ok, stats, ex.Seal(err)
}

// run dispatches to the execution core selected by opt.Engine.Mode: the
// compiled flat-array program by default, the interpreted walker when the
// caller asked for it (differential testing, one-release migration escape
// hatch). Both produce identical verdicts, witnesses, stats and counters.
func (a *TAG) run(ex *engine.Exec, sys *granularity.System, seq event.Sequence, opt RunOptions, witness bool) (map[string]int, bool, RunStats, error) {
	if opt.Engine.Mode.Interpreted() {
		return a.runInterp(ex, sys, seq, opt, witness)
	}
	return a.runCompiled(ex, sys, seq, opt, witness)
}

func (a *TAG) runInterp(ex *engine.Exec, sys *granularity.System, seq event.Sequence, opt RunOptions, witness bool) (map[string]int, bool, RunStats, error) {
	stats := RunStats{AcceptedAt: -1}
	frontier := make(map[string]runState)
	addRun := func(r runState) {
		frontier[r.key()] = r
	}
	for _, s := range a.starts {
		if a.accept[s] {
			stats.AcceptedAt = 0
			return map[string]int{}, true, stats, nil
		}
		addRun(runState{
			state:   s,
			vals:    make([]int64, len(a.clocks)),
			invalid: make([]bool, len(a.clocks)),
		})
	}

	// Per-clock current cover indices are shared across runs: they depend
	// only on the current timestamp.
	curCover := make([]int64, len(a.clocks))
	curOK := make([]bool, len(a.clocks))
	prevOK := make([]bool, len(a.clocks))

	// progress[s] are the state-changing transitions out of s; a run whose
	// progress transitions are all permanently dead can never accept and
	// is pruned.
	progress := make([][]Transition, len(a.trans))
	for s, ts := range a.trans {
		for _, t := range ts {
			if t.To != t.From {
				progress[s] = append(progress[s], t)
			}
		}
	}

	var events, alive, deduped, killed int64
	flush := func() {
		ex.Count("tag.events", events)
		ex.Count("tag.runs.alive", alive)
		ex.Count("tag.runs.deduped", deduped)
		ex.Count("tag.runs.killed", killed)
		events, alive, deduped, killed = 0, 0, 0, 0
	}
	for idx, e := range seq {
		if err := ex.Step(1 + int64(len(frontier))); err != nil {
			flush()
			return nil, false, stats, err
		}
		events++
		alive += int64(len(frontier))
		stats.Steps++
		copy(prevOK, curOK)
		for ci, c := range a.clocks {
			g, ok := sys.Get(c.Gran)
			if !ok {
				curOK[ci] = false
				continue
			}
			curCover[ci], curOK[ci] = g.TickOf(e.Time)
		}
		if idx == 0 {
			// Initiation: all clocks read 0 at the first event, i.e. they
			// behave as if reset there.
			for k, r := range frontier {
				copy(r.vals, curCover)
				for ci := range r.invalid {
					r.invalid[ci] = !curOK[ci]
				}
				frontier[k] = r
			}
		} else if opt.Strict {
			// Paper-literal semantics: the update value must be defined
			// for every clock at every step, or the run cannot continue —
			// and the deltas are shared, so all runs die together.
			for ci := range a.clocks {
				if !curOK[ci] || !prevOK[ci] {
					frontier = nil
					break
				}
			}
		}

		read := func(r *runState) func(Clock) (int64, bool) {
			return func(c Clock) (int64, bool) {
				ci := a.clockIndex[c]
				if r.invalid[ci] || !curOK[ci] {
					return 0, false
				}
				return curCover[ci] - r.vals[ci], true
			}
		}
		next := make(map[string]runState, len(frontier))
		var accBind map[string]int
		accepted := false
		for _, r := range frontier {
			r := r
			rd := read(&r)
			for _, t := range a.trans[r.state] {
				if !t.Any && t.Symbol != e.Type {
					continue
				}
				if opt.Anchored && idx == 0 && t.Any && t.To == t.From {
					continue // no skipping the anchor event
				}
				if !t.Guard.Eval(rd) {
					continue
				}
				nr := runState{
					state:   t.To,
					vals:    append([]int64(nil), r.vals...),
					invalid: append([]bool(nil), r.invalid...),
					binding: r.binding,
				}
				if witness && t.Binds != "" {
					nb := make(map[string]int, len(r.binding)+1)
					for k, v := range r.binding {
						nb[k] = v
					}
					nb[t.Binds] = idx
					nr.binding = nb
				}
				for _, c := range t.Reset {
					ci := a.clockIndex[c]
					nr.vals[ci] = curCover[ci]
					nr.invalid[ci] = !curOK[ci]
				}
				if a.accept[nr.state] {
					// Collect every accepting candidate of this event and
					// keep the canonically smallest witness, so the
					// reported binding does not depend on map iteration
					// order (checkpoint/resume must reproduce it exactly).
					if !accepted || bindingKey(nr.binding) < bindingKey(accBind) {
						accBind = nr.binding
					}
					accepted = true
					continue
				}
				if a.runDoomed(&nr, curCover, curOK, progress[nr.state]) {
					killed++
					continue
				}
				k := nr.key()
				if old, dup := next[k]; dup {
					deduped++
					if bindingKey(old.binding) <= bindingKey(nr.binding) {
						continue
					}
				}
				next[k] = nr
			}
		}
		if accepted {
			stats.AcceptedAt = idx
			if len(next) > stats.MaxFrontier {
				stats.MaxFrontier = len(next)
			}
			flush()
			return accBind, true, stats, nil
		}
		frontier = next
		if len(frontier) > stats.MaxFrontier {
			stats.MaxFrontier = len(frontier)
		}
		if opt.MaxFrontier > 0 && len(frontier) > opt.MaxFrontier {
			// Safety valve: refuse to blow up. Report non-acceptance with
			// the stats gathered so far.
			break
		}
		if len(frontier) == 0 {
			break
		}
	}
	flush()
	return nil, false, stats, nil
}
