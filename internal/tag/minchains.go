package tag

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// MinChains computes a MINIMUM chain cover: the smallest number of
// root-to-leaf paths covering every arc of the structure — exactly the
// "minimal number of chains" Step 1 of the Theorem-3 construction asks
// for (Chains is the fast greedy approximation; the chain count is the p
// exponent of Theorem 4's bound, so shaving it matters for wide
// structures).
//
// Formulation: a chain cover is an integral flow on the DAG where every
// arc carries at least one unit, augmented with source→root and leaf→sink
// arcs; the cover size is the flow value. MinChains finds a feasible flow
// (from the greedy cover) and then cancels flow along residual sink→source
// paths until no reduction remains, which is optimal for min-flow with
// lower bounds. The flow is then decomposed into unit root-to-leaf paths.
func MinChains(s *core.EventStructure) ([][]core.Variable, error) {
	greedy, err := Chains(s)
	if err != nil {
		return nil, err
	}
	if len(greedy) <= 1 {
		return greedy, nil
	}
	root, err := s.Root()
	if err != nil {
		return nil, err
	}

	// Flow on structure arcs, seeded by the greedy cover.
	flow := make(map[[2]core.Variable]int)
	for _, chain := range greedy {
		for i := 0; i+1 < len(chain); i++ {
			flow[[2]core.Variable{chain[i], chain[i+1]}]++
		}
	}
	leaves := make(map[core.Variable]bool)
	for _, v := range s.Leaves() {
		leaves[v] = true
	}
	// leafFlow[v] = chains ending at leaf v; rootFlow = total chains.
	leafFlow := make(map[core.Variable]int)
	for _, chain := range greedy {
		leafFlow[chain[len(chain)-1]]++
	}
	total := len(greedy)

	// Residual search: find a path from some leaf with leafFlow > 0 to the
	// root, moving either backward along an arc with flow > lower bound
	// (cancel a unit) or forward along any arc (add a unit). Each such
	// path reduces the total by one.
	type node struct {
		v    core.Variable
		prev *node
		fwd  bool // arrived by adding flow on (prev.v is the arc head)
	}
	for {
		// BFS from the set of leaves with spare chain-endings toward root.
		var queue []*node
		visited := make(map[core.Variable]bool)
		for v := range leaves {
			if leafFlow[v] > 0 {
				queue = append(queue, &node{v: v})
				visited[v] = true
			}
		}
		// Deterministic order.
		sort.Slice(queue, func(i, j int) bool { return queue[i].v < queue[j].v })
		var goal *node
		for len(queue) > 0 && goal == nil {
			cur := queue[0]
			queue = queue[1:]
			if cur.v == root && cur.prev != nil {
				goal = cur
				break
			}
			// Backward over arcs (u, cur.v) with flow > 1: cancel a unit.
			for _, u := range s.Predecessors(cur.v) {
				if visited[u] {
					continue
				}
				if flow[[2]core.Variable{u, cur.v}] > 1 {
					visited[u] = true
					queue = append(queue, &node{v: u, prev: cur, fwd: false})
				}
			}
			// Forward over arcs (cur.v, w): adding a unit is always
			// allowed (infinite capacity), and lets another chain be
			// rerouted; but the path must eventually reach root going
			// backward, so forward moves only help via later backward
			// moves — include them.
			for _, w := range s.Successors(cur.v) {
				if visited[w] {
					continue
				}
				visited[w] = true
				queue = append(queue, &node{v: w, prev: cur, fwd: true})
			}
		}
		if goal == nil {
			break
		}
		// Apply the reduction along the path goal..leaf: walking from root
		// back to the starting leaf, each backward step cancels a unit,
		// each forward step adds one.
		start := goal.v
		for cur := goal; cur.prev != nil; cur = cur.prev {
			if cur.fwd {
				// cur arrived from cur.prev by a FORWARD move over the arc
				// (cur.prev.v, cur.v): add a unit there.
				flow[[2]core.Variable{cur.prev.v, cur.v}]++
			} else {
				// Backward move over (cur.v, cur.prev.v): cancel a unit.
				flow[[2]core.Variable{cur.v, cur.prev.v}]--
			}
			start = cur.prev.v
		}
		leafFlow[start]--
		total--
		if total < 1 {
			return nil, fmt.Errorf("tag: min-flow reduced below one chain")
		}
	}

	// Decompose the flow into chains: repeatedly walk root→leaf along
	// arcs with remaining flow, preferring arcs with the most flow.
	remaining := make(map[[2]core.Variable]int, len(flow))
	for k, v := range flow {
		remaining[k] = v
	}
	var out [][]core.Variable
	for i := 0; i < total; i++ {
		chain := []core.Variable{root}
		cur := root
		for {
			succs := s.Successors(cur)
			if len(succs) == 0 {
				break
			}
			var next core.Variable
			best := -1
			for _, w := range succs {
				if f := remaining[[2]core.Variable{cur, w}]; f > best {
					best = f
					next = w
				}
			}
			if best < 1 {
				return nil, fmt.Errorf("tag: flow decomposition stuck at %s", cur)
			}
			remaining[[2]core.Variable{cur, next}]--
			chain = append(chain, next)
			cur = next
		}
		out = append(out, chain)
	}
	// Every arc must be covered.
	for _, e := range s.Edges() {
		if flow[[2]core.Variable{e.From, e.To}] < 1 {
			return nil, fmt.Errorf("tag: min-flow uncovered arc %s->%s", e.From, e.To)
		}
	}
	return out, nil
}
