package tag

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/event"
)

// Chains decomposes a rooted event structure into root-to-leaf chains such
// that every arc lies on at least one chain (Step 1 of the Theorem-3
// construction). The greedy cover routes each new chain through an
// uncovered arc, so it uses at most |A| chains and in practice close to the
// minimum; the paper only needs *some* cover — fewer chains mean a smaller
// cross product (the p exponent of Theorem 4), which experiment E11
// ablates.
func Chains(s *core.EventStructure) ([][]core.Variable, error) {
	root, err := s.Root()
	if err != nil {
		return nil, err
	}
	uncovered := make(map[[2]core.Variable]bool)
	for _, e := range s.Edges() {
		uncovered[[2]core.Variable{e.From, e.To}] = true
	}
	if len(uncovered) == 0 {
		// Single-variable structure: one trivial chain.
		return [][]core.Variable{{root}}, nil
	}
	var chains [][]core.Variable
	for len(uncovered) > 0 {
		// Pick an uncovered arc in deterministic order.
		var pick [2]core.Variable
		found := false
		for _, e := range s.Edges() {
			if uncovered[[2]core.Variable{e.From, e.To}] {
				pick = [2]core.Variable{e.From, e.To}
				found = true
				break
			}
		}
		if !found {
			break
		}
		chain := pathBetween(s, root, pick[0])
		chain = append(chain, pick[1])
		// Extend to a leaf, preferring uncovered arcs.
		cur := pick[1]
		for {
			succs := s.Successors(cur)
			if len(succs) == 0 {
				break
			}
			next := succs[0]
			for _, cand := range succs {
				if uncovered[[2]core.Variable{cur, cand}] {
					next = cand
					break
				}
			}
			chain = append(chain, next)
			cur = next
		}
		for i := 0; i+1 < len(chain); i++ {
			delete(uncovered, [2]core.Variable{chain[i], chain[i+1]})
		}
		chains = append(chains, chain)
	}
	return chains, nil
}

// NaiveChains builds one chain per arc (root → arc → leaf): the worst
// admissible cover, used by the E11 ablation to measure the effect of the
// chain count p.
func NaiveChains(s *core.EventStructure) ([][]core.Variable, error) {
	root, err := s.Root()
	if err != nil {
		return nil, err
	}
	edges := s.Edges()
	if len(edges) == 0 {
		return [][]core.Variable{{root}}, nil
	}
	var chains [][]core.Variable
	for _, e := range edges {
		chain := pathBetween(s, root, e.From)
		chain = append(chain, e.To)
		cur := e.To
		for {
			succs := s.Successors(cur)
			if len(succs) == 0 {
				break
			}
			chain = append(chain, succs[0])
			cur = succs[0]
		}
		chains = append(chains, chain)
	}
	return chains, nil
}

// pathBetween returns some path from src to dst (inclusive); src == dst
// yields the singleton. The structure is rooted, so a path exists from the
// root to every variable.
func pathBetween(s *core.EventStructure, src, dst core.Variable) []core.Variable {
	if src == dst {
		return []core.Variable{src}
	}
	parent := map[core.Variable]core.Variable{src: src}
	queue := []core.Variable{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, to := range s.Successors(v) {
			if _, seen := parent[to]; seen {
				continue
			}
			parent[to] = v
			if to == dst {
				var rev []core.Variable
				for cur := dst; ; cur = parent[cur] {
					rev = append(rev, cur)
					if cur == src {
						break
					}
				}
				out := make([]core.Variable, len(rev))
				for i := range rev {
					out[i] = rev[len(rev)-1-i]
				}
				return out
			}
			queue = append(queue, to)
		}
	}
	panic(fmt.Sprintf("tag: no path %s -> %s in rooted structure", src, dst))
}

// FromChains compiles a TAG from an explicit chain cover (Steps 2-4 of the
// Theorem-3 construction): per-chain automata combined by cross product
// over reachable tuples, ANY self-loops for event skipping, and symbol
// substitution via assign (nil leaves variables as symbols).
func FromChains(s *core.EventStructure, chains [][]core.Variable, assign map[core.Variable]event.Type) (*TAG, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("tag: empty chain cover")
	}
	a := NewTAG()

	// Per-chain metadata: clock sets and variable positions (1-based).
	type chainInfo struct {
		vars   []core.Variable
		pos    map[core.Variable]int
		clocks []Clock
		guards []Formula // guards[j] guards the transition into position j+1
	}
	infos := make([]chainInfo, len(chains))
	for l, chain := range chains {
		info := chainInfo{vars: chain, pos: make(map[core.Variable]int, len(chain))}
		granSet := make(map[string]bool)
		for i, v := range chain {
			if info.pos[v] != 0 {
				return nil, fmt.Errorf("tag: chain %d repeats variable %s", l, v)
			}
			info.pos[v] = i + 1
			if i > 0 {
				cs := s.Constraints(chain[i-1], v)
				if len(cs) == 0 {
					return nil, fmt.Errorf("tag: chain %d uses missing arc %s->%s", l, chain[i-1], v)
				}
				for _, c := range cs {
					granSet[c.Gran] = true
				}
			}
		}
		for g := range granSet {
			info.clocks = append(info.clocks, Clock{Chain: l, Gran: g})
		}
		sortClocks(info.clocks)
		for _, c := range info.clocks {
			a.AddClock(c)
		}
		info.guards = make([]Formula, len(chain))
		info.guards[0] = True{}
		for i := 1; i < len(chain); i++ {
			var conj And
			for _, c := range s.Constraints(chain[i-1], chain[i]) {
				clk := Clock{Chain: l, Gran: c.Gran}
				conj = append(conj, GE{Clock: clk, K: c.Min}, LE{Clock: clk, K: c.Max})
			}
			info.guards[i] = conj
		}
		infos[l] = info
	}

	// Cross product over reachable tuples.
	symbol := func(v core.Variable) event.Type {
		if assign != nil {
			return assign[v]
		}
		return event.Type(v)
	}
	tupleName := func(t []int) string {
		parts := make([]string, len(t))
		for l, p := range t {
			parts[l] = fmt.Sprintf("S%d", p)
		}
		return strings.Join(parts, "")
	}
	type tupleKey string
	keyOf := func(t []int) tupleKey {
		return tupleKey(fmt.Sprint(t))
	}
	stateOf := make(map[tupleKey]int)
	var tuples [][]int
	intern := func(t []int) int {
		k := keyOf(t)
		if id, ok := stateOf[k]; ok {
			return id
		}
		id := a.AddState(tupleName(t))
		stateOf[k] = id
		tuples = append(tuples, append([]int(nil), t...))
		accepting := true
		for l, p := range t {
			if p != len(infos[l].vars) {
				accepting = false
				break
			}
		}
		if accepting {
			a.MarkAccept(id)
		}
		return id
	}
	start := make([]int, len(chains))
	startID := intern(start)
	a.MarkStart(startID)

	vars := s.Variables()
	for qi := 0; qi < len(tuples); qi++ {
		cur := tuples[qi]
		curID := stateOf[keyOf(cur)]
		for _, v := range vars {
			// All chains containing v must be positioned just before it.
			ready := true
			moving := false
			for l := range infos {
				p, in := infos[l].pos[v]
				if !in {
					continue
				}
				moving = true
				if cur[l] != p-1 {
					ready = false
					break
				}
			}
			if !moving || !ready {
				continue
			}
			next := append([]int(nil), cur...)
			var resets []Clock
			var guard And
			for l := range infos {
				p, in := infos[l].pos[v]
				if !in {
					continue
				}
				next[l] = p
				resets = append(resets, infos[l].clocks...)
				if g, ok := infos[l].guards[p-1].(And); ok {
					guard = append(guard, g...)
				} else {
					guard = append(guard, infos[l].guards[p-1])
				}
			}
			nextID := intern(next)
			a.AddTransition(Transition{
				From:   curID,
				To:     nextID,
				Symbol: symbol(v),
				Reset:  resets,
				Guard:  simplify(guard),
				Binds:  string(v),
			})
		}
	}
	// Skip transitions: ANY self-loops everywhere.
	for id := range tuples {
		a.AddTransition(Transition{From: id, To: id, Any: true, Guard: True{}})
	}
	return a, nil
}

// simplify flattens trivial conjunctions.
func simplify(f And) Formula {
	out := make(And, 0, len(f))
	for _, g := range f {
		if _, ok := g.(True); ok {
			continue
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return True{}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// CompileStructure compiles an event structure into a TAG whose input
// symbols are the variable names themselves (the intermediate object of the
// Theorem-3 proof, before Step 4's substitution).
func CompileStructure(s *core.EventStructure) (*TAG, error) {
	chains, err := Chains(s)
	if err != nil {
		return nil, err
	}
	return FromChains(s, chains, nil)
}

// Compile compiles a complex event type into a TAG that accepts an event
// sequence iff the complex type occurs in it (Theorem 3), using the fast
// greedy chain cover. CompileMinimal spends more time computing the
// provably minimum cover.
func Compile(ct *core.ComplexType) (*TAG, error) {
	chains, err := Chains(ct.Structure)
	if err != nil {
		return nil, err
	}
	return FromChains(ct.Structure, chains, ct.Assign)
}

// CompileMinimal is Compile with the minimum chain cover (MinChains): the
// smallest p in Theorem 4's (|V|K)^p bound.
func CompileMinimal(ct *core.ComplexType) (*TAG, error) {
	chains, err := MinChains(ct.Structure)
	if err != nil {
		return nil, err
	}
	return FromChains(ct.Structure, chains, ct.Assign)
}

// Relabel returns a copy of the automaton with each variable-binding
// transition's input symbol replaced by assign[variable]. The mining
// pipeline compiles a structure's variable-symbol TAG once and relabels it
// per candidate assignment — the cross product, guards and clocks are
// shared, only the symbols differ.
func (a *TAG) Relabel(assign map[core.Variable]event.Type) *TAG {
	out := &TAG{
		names:      a.names,
		starts:     a.starts,
		accept:     a.accept,
		clocks:     a.clocks,
		clockIndex: a.clockIndex,
		trans:      make([][]Transition, len(a.trans)),
	}
	for from, ts := range a.trans {
		nts := make([]Transition, len(ts))
		copy(nts, ts)
		for i := range nts {
			if nts[i].Binds != "" {
				nts[i].Symbol = assign[core.Variable(nts[i].Binds)]
			}
		}
		out.trans[from] = nts
	}
	return out
}
