package tag

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestAcceptsExecInterrupted drives a batch run into each interruption mode
// and checks the typed error plus partial stats.
func TestAcceptsExecInterrupted(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := fig1aScenario()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		eng  func() engine.Config
		// wantEvents: a pre-cancelled context trips before the first
		// event is tallied, so only the budget case sees tag.events.
		reason     string
		wantEvents bool
	}{
		{"budget mid-sequence", func() engine.Config {
			return engine.Config{Budget: 3, Observer: engine.NewCounters()}
		}, "budget", true},
		{"cancelled context", func() engine.Config {
			return engine.Config{Ctx: cancelled, CheckEvery: 1, Observer: engine.NewCounters()}
		}, "context", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.eng()
			ex := cfg.Start()
			ok, _, err := a.AcceptsExec(ex, sys, seq, RunOptions{})
			err = ex.Seal(err)
			if ok {
				t.Fatal("interrupted run reported acceptance")
			}
			if !errors.Is(err, engine.ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			var ip *engine.Interrupted
			if !errors.As(err, &ip) {
				t.Fatalf("err %T, want *engine.Interrupted", err)
			}
			if ip.Reason != tc.reason {
				t.Fatalf("reason %q, want %q", ip.Reason, tc.reason)
			}
			if ip.Steps <= 0 {
				t.Fatalf("steps %d, want > 0", ip.Steps)
			}
			if ip.Stats == nil {
				t.Fatal("partial stats missing")
			}
			if tc.wantEvents && ip.Stats["tag.events"] <= 0 {
				t.Fatalf("stats %v, want tag.events > 0", ip.Stats)
			}
		})
	}
}

// TestAcceptsInterruptedGraceful pins the untyped entry points: like the
// MaxFrontier valve, an interrupted Accepts/FindOccurrence reports
// non-acceptance instead of an error.
func TestAcceptsInterruptedGraceful(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := fig1aScenario()
	opt := RunOptions{Engine: engine.Config{Budget: 3}}
	if ok, _ := a.Accepts(sys, seq, opt); ok {
		t.Fatal("budget-starved Accepts reported acceptance")
	}
	if _, ok, _ := a.FindOccurrence(sys, seq, opt); ok {
		t.Fatal("budget-starved FindOccurrence reported a witness")
	}
	// Unbounded, the same sequence is accepted.
	if ok, _ := a.Accepts(sys, seq, RunOptions{}); !ok {
		t.Fatal("unbounded Accepts must still accept")
	}
}

// TestRunnerInterrupted checks the streaming layer: a starved Runner rejects
// further events and exposes the typed error via Err.
func TestRunnerInterrupted(t *testing.T) {
	ct, _ := core.NewComplexType(core.Fig1a(), core.Example1Assignment())
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := fig1aScenario()
	r := a.NewRunner(sys, RunOptions{Engine: engine.Config{Budget: 3, Observer: engine.NewCounters()}})
	interrupted := false
	for _, e := range seq {
		if _, ok := r.Feed(e); !ok {
			interrupted = true
			break
		}
	}
	if !interrupted {
		t.Fatal("budget of 3 never tripped over the scenario")
	}
	if !errors.Is(r.Err(), engine.ErrInterrupted) {
		t.Fatalf("Err() = %v, want ErrInterrupted", r.Err())
	}
	// Sticky: the next Feed is also refused.
	if _, ok := r.Feed(seq[len(seq)-1]); ok {
		t.Fatal("interrupted runner accepted another event")
	}
	// An unbounded runner is unaffected.
	r2 := a.NewRunner(sys, RunOptions{})
	if r2.Err() != nil {
		t.Fatalf("fresh unbounded runner Err() = %v", r2.Err())
	}
}
