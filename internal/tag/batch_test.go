package tag

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
)

// batchScenario compiles the plant cascade's first hop and generates a
// workload with many overheat anchors, some of which extend to a match.
func batchScenario(t testing.TB, seed int64) (*TAG, event.Sequence, []int) {
	t.Helper()
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "b-day"), core.MustTCG(1, 4, "hour"))
	ct, err := core.NewComplexType(s, map[core.Variable]event.Type{
		"A": "overheat-m0", "B": "malfunction-m0",
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(ct)
	if err != nil {
		t.Fatal(err)
	}
	seq := event.GeneratePlant(event.PlantFaultConfig{
		Machines: 2, StartYear: 1996, Days: 365, Seed: seed, CascadeProb: 0.6,
	})
	var refIdx []int
	for i, e := range seq {
		if e.Type == "overheat-m0" {
			refIdx = append(refIdx, i)
		}
	}
	if len(refIdx) < 10 {
		t.Fatalf("workload too thin: %d anchors", len(refIdx))
	}
	return a, seq, refIdx
}

// TestAcceptsBatchMatchesSerialLoop checks the batched API against the
// one-at-a-time anchored loop it replaces, at several worker counts.
func TestAcceptsBatchMatchesSerialLoop(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		a, seq, refIdx := batchScenario(t, seed)
		want := make([]bool, len(refIdx))
		for slot, i := range refIdx {
			want[slot], _ = a.Accepts(sys, seq[i:], RunOptions{Anchored: true})
		}
		for _, workers := range []int{0, 1, 2, 8} {
			got, err := a.AcceptsBatch(nil, sys, seq, refIdx, 0, workers, RunOptions{})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			for slot := range want {
				if got[slot] != want[slot] {
					t.Fatalf("seed %d workers %d: verdict %d = %v, want %v",
						seed, workers, slot, got[slot], want[slot])
				}
			}
		}
	}
}

// TestAcceptsBatchWindow checks the window bound cuts suffixes the same way
// regardless of worker count.
func TestAcceptsBatchWindow(t *testing.T) {
	a, seq, refIdx := batchScenario(t, 7)
	const window = int64(6 * 3600)
	serial, err := a.AcceptsBatch(nil, sys, seq, refIdx, window, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := a.AcceptsBatch(nil, sys, seq, refIdx, window, 4, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	narrower := 0
	full, _ := a.AcceptsBatch(nil, sys, seq, refIdx, 0, 1, RunOptions{})
	for slot := range serial {
		if serial[slot] != parallel[slot] {
			t.Fatalf("windowed verdict %d differs across worker counts", slot)
		}
		if serial[slot] && !full[slot] {
			t.Fatalf("window created a match at %d", slot)
		}
		if !serial[slot] && full[slot] {
			narrower++
		}
	}
	_ = narrower // the window may or may not cut matches; equality above is the point
}

// TestAcceptsBatchInterrupted checks a shared budget interrupts the whole
// batch with the typed error, serially and in parallel.
func TestAcceptsBatchInterrupted(t *testing.T) {
	a, seq, refIdx := batchScenario(t, 13)
	for _, workers := range []int{1, 4} {
		ex := engine.Config{Budget: 50}.Start()
		verdicts, err := a.AcceptsBatch(ex, sys, seq, refIdx, 0, workers, RunOptions{})
		if !errors.Is(err, engine.ErrInterrupted) {
			t.Fatalf("workers %d: err = %v, want ErrInterrupted", workers, err)
		}
		if verdicts != nil {
			t.Fatalf("workers %d: interrupted batch leaked verdicts", workers)
		}
		var ip *engine.Interrupted
		if !errors.As(err, &ip) || ip.Reason != "budget" {
			t.Fatalf("workers %d: want budget reason, got %v", workers, err)
		}
	}
}

// TestAcceptsBatchCounters checks engine counters aggregate to the same
// totals across worker counts: every reference's run does identical work,
// only the interleaving changes.
func TestAcceptsBatchCounters(t *testing.T) {
	a, seq, refIdx := batchScenario(t, 17)
	snap := func(workers int) map[string]int64 {
		counters := engine.NewCounters()
		ex := engine.Config{Observer: counters}.Start()
		if _, err := a.AcceptsBatch(ex, sys, seq, refIdx, 0, workers, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		return counters.Snapshot()
	}
	want := snap(1)
	for _, workers := range []int{2, 8} {
		got := snap(workers)
		if len(got) != len(want) {
			t.Fatalf("workers %d: counter sets differ: %v vs %v", workers, got, want)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("workers %d: counter %s = %d, want %d", workers, k, got[k], v)
			}
		}
	}
}

// TestCountAccepts pins the tally reduction.
func TestCountAccepts(t *testing.T) {
	a, seq, refIdx := batchScenario(t, 19)
	verdicts, err := a.AcceptsBatch(nil, sys, seq, refIdx, 0, 2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ok := range verdicts {
		if ok {
			want++
		}
	}
	got, err := a.CountAccepts(nil, sys, seq, refIdx, 0, 2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CountAccepts = %d, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("workload planted no matches; test is vacuous")
	}
}

// TestConcurrentRunnerBatches is the race/stress companion: many goroutines
// drive independent Runners and batches over ONE automaton and ONE shared
// granularity system (whose caches they all fill concurrently). Run under
// -race; verdicts must agree with a quiet baseline run.
func TestConcurrentRunnerBatches(t *testing.T) {
	a, seq, refIdx := batchScenario(t, 23)
	baseline, err := a.AcceptsBatch(nil, sys, seq, refIdx, 0, 1, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				// Batch path.
				got, err := a.AcceptsBatch(nil, sys, seq, refIdx, 0, 2, RunOptions{})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for slot := range baseline {
					if got[slot] != baseline[slot] {
						t.Errorf("worker %d: verdict %d diverged", w, slot)
						return
					}
				}
				return
			}
			// Streaming Runner path over the anchored suffix of each ref.
			for slot, i := range refIdx {
				r := a.NewRunner(sys, RunOptions{Anchored: true})
				for _, e := range seq[i:] {
					acc, ok := r.Feed(e)
					if !ok {
						t.Errorf("worker %d: runner rejected: %v", w, r.Err())
						return
					}
					if acc {
						break
					}
				}
				if r.Accepted() != baseline[slot] {
					t.Errorf("worker %d: runner verdict %d diverged", w, slot)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
