// Package tag implements the paper's timed finite automata with
// granularities (TAGs, Section 4): finite automata whose transitions are
// guarded by constraints over clocks that tick in different time
// granularities. It provides the polynomial-time compilation of a complex
// event type into a TAG (Theorem 3: chain decomposition, per-chain
// automata, cross product, skip transitions, symbol substitution) and the
// NDFA-style simulation that decides acceptance over an event sequence
// (Theorem 4).
package tag

import (
	"fmt"
	"sort"
	"strings"
)

// Clock identifies one automaton clock: the paper writes x^l_μ for the
// clock of chain l ticking in granularity μ.
type Clock struct {
	Chain int
	Gran  string
}

// String renders the clock as x{chain}_{gran}.
func (c Clock) String() string { return fmt.Sprintf("x%d_%s", c.Chain, c.Gran) }

// Formula is a clock constraint: the paper's Φ(C) is x <= k, k <= x, and
// boolean combinations. Eval reads clock values via read, which reports
// ok=false for clocks whose value is currently undefined (a granularity gap
// was crossed since the last reset); any atom over an undefined clock is
// false, and Not is evaluated with three-valued caution (Not of an
// undefined atom is also false) so that guards never fire on undefined
// readings.
type Formula interface {
	Eval(read func(Clock) (int64, bool)) bool
	String() string
	// Clocks appends the clocks mentioned by the formula.
	Clocks(dst []Clock) []Clock
	// Dead reports whether the formula can never become true for a run
	// that stays in its current state: clock values only grow with time
	// and undefined clocks stay undefined until a reset (which requires a
	// transition). The simulation prunes runs all of whose outgoing
	// transitions are dead. Dead must be conservative: false when unsure.
	Dead(read func(Clock) (int64, bool)) bool
}

// True is the guard of unconstrained transitions.
type True struct{}

// Eval implements Formula.
func (True) Eval(func(Clock) (int64, bool)) bool { return true }

// String implements Formula.
func (True) String() string { return "true" }

// Clocks implements Formula.
func (True) Clocks(dst []Clock) []Clock { return dst }

// Dead implements Formula.
func (True) Dead(func(Clock) (int64, bool)) bool { return false }

// LE is the atom clock <= K.
type LE struct {
	Clock Clock
	K     int64
}

// Eval implements Formula.
func (f LE) Eval(read func(Clock) (int64, bool)) bool {
	v, ok := read(f.Clock)
	return ok && v <= f.K
}

// String implements Formula.
func (f LE) String() string { return fmt.Sprintf("%s<=%d", f.Clock, f.K) }

// Clocks implements Formula.
func (f LE) Clocks(dst []Clock) []Clock { return append(dst, f.Clock) }

// Dead implements Formula: an exceeded upper bound never recovers, and an
// undefined clock never satisfies an atom.
func (f LE) Dead(read func(Clock) (int64, bool)) bool {
	v, ok := read(f.Clock)
	return !ok || v > f.K
}

// GE is the atom K <= clock.
type GE struct {
	Clock Clock
	K     int64
}

// Eval implements Formula.
func (f GE) Eval(read func(Clock) (int64, bool)) bool {
	v, ok := read(f.Clock)
	return ok && v >= f.K
}

// String implements Formula.
func (f GE) String() string { return fmt.Sprintf("%d<=%s", f.K, f.Clock) }

// Clocks implements Formula.
func (f GE) Clocks(dst []Clock) []Clock { return append(dst, f.Clock) }

// Dead implements Formula: a lower bound not yet reached can still be
// reached (values grow), so only an undefined clock is dead.
func (f GE) Dead(read func(Clock) (int64, bool)) bool {
	_, ok := read(f.Clock)
	return !ok
}

// And is conjunction; an empty And is true.
type And []Formula

// Eval implements Formula.
func (fs And) Eval(read func(Clock) (int64, bool)) bool {
	for _, f := range fs {
		if !f.Eval(read) {
			return false
		}
	}
	return true
}

// String implements Formula.
func (fs And) String() string {
	if len(fs) == 0 {
		return "true"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, " & ")
}

// Clocks implements Formula.
func (fs And) Clocks(dst []Clock) []Clock {
	for _, f := range fs {
		dst = f.Clocks(dst)
	}
	return dst
}

// Dead implements Formula.
func (fs And) Dead(read func(Clock) (int64, bool)) bool {
	for _, f := range fs {
		if f.Dead(read) {
			return true
		}
	}
	return false
}

// Or is disjunction; an empty Or is false.
type Or []Formula

// Eval implements Formula.
func (fs Or) Eval(read func(Clock) (int64, bool)) bool {
	for _, f := range fs {
		if f.Eval(read) {
			return true
		}
	}
	return false
}

// String implements Formula.
func (fs Or) String() string {
	if len(fs) == 0 {
		return "false"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, " | ")
}

// Clocks implements Formula.
func (fs Or) Clocks(dst []Clock) []Clock {
	for _, f := range fs {
		dst = f.Clocks(dst)
	}
	return dst
}

// Dead implements Formula: an empty Or is false forever.
func (fs Or) Dead(read func(Clock) (int64, bool)) bool {
	for _, f := range fs {
		if !f.Dead(read) {
			return false
		}
	}
	return true
}

// Not negates a formula. Note that atoms over undefined clocks evaluate to
// false, so Not(LE{x,k}) is NOT "x > k or undefined": a guard containing
// Not still cannot fire on an undefined clock if written in the usual
// negation-of-atom form — which keeps the run semantics conservative.
type Not struct{ F Formula }

// Eval implements Formula.
func (f Not) Eval(read func(Clock) (int64, bool)) bool {
	// Refuse to fire when the negated sub-formula touches an undefined
	// clock: collect and check.
	for _, c := range f.F.Clocks(nil) {
		if _, ok := read(c); !ok {
			return false
		}
	}
	return !f.F.Eval(read)
}

// String implements Formula.
func (f Not) String() string { return "!(" + f.F.String() + ")" }

// Clocks implements Formula.
func (f Not) Clocks(dst []Clock) []Clock { return f.F.Clocks(dst) }

// Dead implements Formula conservatively: negations are never pruned.
func (Not) Dead(func(Clock) (int64, bool)) bool { return false }

// sortClocks orders clocks deterministically.
func sortClocks(cs []Clock) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Chain != cs[j].Chain {
			return cs[i].Chain < cs[j].Chain
		}
		return cs[i].Gran < cs[j].Gran
	})
}
