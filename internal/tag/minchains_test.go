package tag

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
)

// checkCover validates that chains form a legal arc cover of s.
func checkCover(t *testing.T, s *core.EventStructure, chains [][]core.Variable) {
	t.Helper()
	root, err := s.Root()
	if err != nil {
		t.Fatal(err)
	}
	covered := map[[2]core.Variable]bool{}
	for _, ch := range chains {
		if len(ch) == 0 || ch[0] != root {
			t.Fatalf("chain %v does not start at root", ch)
		}
		if len(s.Successors(ch[len(ch)-1])) != 0 {
			t.Fatalf("chain %v does not end at a leaf", ch)
		}
		for i := 0; i+1 < len(ch); i++ {
			if s.Constraints(ch[i], ch[i+1]) == nil {
				t.Fatalf("chain %v uses non-arc %s->%s", ch, ch[i], ch[i+1])
			}
			covered[[2]core.Variable{ch[i], ch[i+1]}] = true
		}
	}
	if len(covered) != s.NumEdges() {
		t.Fatalf("cover hits %d of %d arcs", len(covered), s.NumEdges())
	}
}

func TestMinChainsKnownOptima(t *testing.T) {
	// Fig1a: optimum 2.
	chains, err := MinChains(core.Fig1a())
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, core.Fig1a(), chains)
	if len(chains) != 2 {
		t.Fatalf("Fig1a min cover = %d chains, want 2", len(chains))
	}

	// Shortcut structure: R->A->B->L plus R->B and A->L; optimum 3 (no two
	// root-leaf paths can cover all five arcs).
	s := core.NewStructure()
	day := core.MustTCG(0, 1, "day")
	s.MustConstrain("R", "A", day)
	s.MustConstrain("A", "B", day)
	s.MustConstrain("B", "L", day)
	s.MustConstrain("R", "B", day)
	s.MustConstrain("A", "L", day)
	chains, err = MinChains(s)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, s, chains)
	if len(chains) != 3 {
		t.Fatalf("shortcut min cover = %d chains, want 3", len(chains))
	}

	// Out-degree forces the count: B has two leaves, plus A and C branches.
	w := core.NewStructure()
	w.MustConstrain("R", "A", day)
	w.MustConstrain("R", "B", day)
	w.MustConstrain("R", "C", day)
	w.MustConstrain("A", "L1", day)
	w.MustConstrain("B", "L1", day)
	w.MustConstrain("B", "L2", day)
	w.MustConstrain("C", "L2", day)
	chains, err = MinChains(w)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, w, chains)
	if len(chains) != 4 {
		t.Fatalf("W-shape min cover = %d chains, want 4", len(chains))
	}

	// Singleton.
	single := core.NewStructure()
	single.AddVariable("X")
	chains, err = MinChains(single)
	if err != nil || len(chains) != 1 {
		t.Fatalf("singleton = %v, %v", chains, err)
	}
}

// TestMinChainsNeverWorseFuzz: on random rooted DAGs the min cover is valid,
// no larger than the greedy one, and the compiled automata accept the same
// scenarios.
func TestMinChainsNeverWorseFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	day := core.MustTCG(0, 2, "day")
	for trial := 0; trial < 120; trial++ {
		n := 4 + rng.Intn(4)
		s := core.NewStructure()
		v := func(i int) core.Variable { return core.Variable(fmt.Sprintf("V%d", i)) }
		for i := 1; i < n; i++ {
			// Ensure rootedness: connect from a random earlier node.
			s.MustConstrain(v(rng.Intn(i)), v(i), day)
			// Extra forward arc sometimes.
			if i >= 2 && rng.Intn(2) == 0 {
				a, b := rng.Intn(i), i
				if s.Constraints(v(a), v(b)) == nil && a != b {
					s.MustConstrain(v(a), v(b), day)
				}
			}
		}
		if err := s.Validate(); err != nil {
			continue // multi-source graphs can slip in; skip them
		}
		greedy, err := Chains(s)
		if err != nil {
			t.Fatal(err)
		}
		minimum, err := MinChains(s)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, s)
		}
		checkCover(t, s, minimum)
		if len(minimum) > len(greedy) {
			t.Fatalf("trial %d: min cover %d > greedy %d\n%s", trial, len(minimum), len(greedy), s)
		}
		// Behavioural equivalence of the compiled automata on a planted
		// scenario.
		ag, err := FromChains(s, greedy, nil)
		if err != nil {
			t.Fatal(err)
		}
		am, err := FromChains(s, minimum, nil)
		if err != nil {
			t.Fatal(err)
		}
		order := mustTopo(s)
		var seq event.Sequence
		cur := event.At(1996, 4, 1, 8, 0, 0)
		for _, x := range order {
			seq = append(seq, event.Event{Type: event.Type(x), Time: cur})
			cur += rng.Int63n(2*86400) + 1
		}
		g1, _ := ag.Accepts(sys, seq, RunOptions{})
		g2, _ := am.Accepts(sys, seq, RunOptions{})
		if g1 != g2 {
			t.Fatalf("trial %d: greedy %v != min %v on %v\n%s", trial, g1, g2, seq, s)
		}
	}
}
