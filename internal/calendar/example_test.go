package calendar_test

import (
	"fmt"

	"repro/internal/calendar"
)

// Example shows the day-line arithmetic anchored at the paper's 1800 epoch.
func Example() {
	rata := calendar.RataOf(calendar.Date{Year: 1996, Month: 6, Day: 3})
	fmt.Println(calendar.DateOf(rata), calendar.WeekdayOf(rata))
	fmt.Println("business day:", calendar.IsBusinessDay(rata, calendar.USFederal()))
	fmt.Println("Easter 1996:", calendar.DateOf(calendar.EasterSunday(1996)))
	// Output:
	// 1996-06-03 Monday
	// business day: true
	// Easter 1996: 1996-04-07
}
