package calendar

import "sync"

// HolidayRule describes one recurring holiday. Exactly one of the rule kinds
// is active, selected by Kind.
type HolidayRule struct {
	Name string
	Kind RuleKind

	// Fixed-date rules (KindFixed): Month/Day each year.
	Month int
	Day   int

	// Nth-weekday rules (KindNthWeekday): the Nth occurrence (1-based) of
	// Weekday in Month; N == -1 means the last occurrence.
	Weekday Weekday
	N       int

	// Easter-relative rules (KindEaster): days after Easter Sunday
	// (negative = before).
	Offset int

	// Observed shifts a fixed-date holiday falling on a weekend to the
	// nearest weekday (Saturday -> Friday, Sunday -> Monday).
	Observed bool
}

// RuleKind selects how a HolidayRule picks its day.
type RuleKind int

// Rule kinds.
const (
	KindFixed RuleKind = iota
	KindNthWeekday
	// KindEaster selects the day Offset days after Easter Sunday
	// (Gregorian computus): Offset -2 is Good Friday, +1 Easter Monday,
	// +39 Ascension, +50 Whit Monday.
	KindEaster
)

// HolidaySet decides whether a rata day is a holiday. Implementations must
// be deterministic and cheap: the granularity layer calls them per day.
type HolidaySet interface {
	IsHoliday(rata int64) bool
}

// NoHolidays is a HolidaySet with no holidays.
type NoHolidays struct{}

// IsHoliday always reports false.
func (NoHolidays) IsHoliday(int64) bool { return false }

// RuleSet is a HolidaySet driven by recurring rules, with a per-year cache.
// It is safe for concurrent use.
type RuleSet struct {
	rules []HolidayRule

	mu    sync.Mutex
	cache map[int]map[int64]bool
}

// NewRuleSet builds a RuleSet from rules. The slice is copied.
func NewRuleSet(rules []HolidayRule) *RuleSet {
	rs := &RuleSet{rules: append([]HolidayRule(nil), rules...), cache: make(map[int]map[int64]bool)}
	return rs
}

// Rules returns a copy of the rule list.
func (rs *RuleSet) Rules() []HolidayRule {
	return append([]HolidayRule(nil), rs.rules...)
}

// IsHoliday reports whether the rata day is selected by any rule.
func (rs *RuleSet) IsHoliday(rata int64) bool {
	year := DateOf(rata).Year
	rs.mu.Lock()
	days, ok := rs.cache[year]
	if !ok {
		days = rs.computeYear(year)
		rs.cache[year] = days
	}
	rs.mu.Unlock()
	return days[rata]
}

func (rs *RuleSet) computeYear(year int) map[int64]bool {
	days := make(map[int64]bool)
	for _, r := range rs.rules {
		switch r.Kind {
		case KindFixed:
			d := Date{Year: year, Month: r.Month, Day: r.Day}
			if !d.Valid() {
				continue
			}
			rata := RataOf(d)
			if r.Observed {
				switch WeekdayOf(rata) {
				case Saturday:
					rata--
				case Sunday:
					rata++
				}
			}
			days[rata] = true
		case KindNthWeekday:
			if rata, ok := nthWeekday(year, r.Month, r.Weekday, r.N); ok {
				days[rata] = true
			}
		case KindEaster:
			days[EasterSunday(year)+int64(r.Offset)] = true
		}
	}
	return days
}

// NthWeekday returns the rata day of the Nth (1-based, -1 = last) Weekday of
// the month, or ok=false if the month has no such occurrence. Exported for
// the fiscal-calendar year-end rule ("last Saturday of January").
func NthWeekday(year, month int, w Weekday, n int) (int64, bool) {
	return nthWeekday(year, month, w, n)
}

// nthWeekday returns the rata day of the Nth (1-based, -1 = last) Weekday of
// the month, or ok=false if the month has no such occurrence.
func nthWeekday(year, month int, w Weekday, n int) (int64, bool) {
	first := RataOf(Date{Year: year, Month: month, Day: 1})
	firstW := WeekdayOf(first)
	delta := (int64(w) - int64(firstW) + 7) % 7
	if n == -1 {
		last := first + int64(DaysInMonth(year, month)) - 1
		lastW := WeekdayOf(last)
		back := (int64(lastW) - int64(w) + 7) % 7
		return last - back, true
	}
	rata := first + delta + int64(n-1)*7
	if rata > first+int64(DaysInMonth(year, month))-1 {
		return 0, false
	}
	return rata, true
}

// EasterSunday returns the rata day of Gregorian Easter Sunday in the
// given year, by the anonymous Gregorian computus (Meeus/Jones/Butcher).
func EasterSunday(year int) int64 {
	a := year % 19
	b := year / 100
	c := year % 100
	d := b / 4
	e := b % 4
	f := (b + 8) / 25
	g := (b - f + 1) / 3
	h := (19*a + b - d - g + 15) % 30
	i := c / 4
	k := c % 4
	l := (32 + 2*e + 2*i - h - k) % 7
	m := (a + 11*h + 22*l) / 451
	month := (h + l - 7*m + 114) / 31
	day := (h+l-7*m+114)%31 + 1
	return RataOf(Date{Year: year, Month: month, Day: day})
}

// USFederal returns a rule set approximating the modern US federal holiday
// calendar (fixed rules applied proleptically across the whole timeline;
// the experiments only need a realistic, deterministic gap structure, not
// historical accuracy).
func USFederal() *RuleSet {
	return NewRuleSet([]HolidayRule{
		{Name: "New Year's Day", Kind: KindFixed, Month: 1, Day: 1, Observed: true},
		{Name: "Martin Luther King Jr. Day", Kind: KindNthWeekday, Month: 1, Weekday: Monday, N: 3},
		{Name: "Washington's Birthday", Kind: KindNthWeekday, Month: 2, Weekday: Monday, N: 3},
		{Name: "Memorial Day", Kind: KindNthWeekday, Month: 5, Weekday: Monday, N: -1},
		{Name: "Independence Day", Kind: KindFixed, Month: 7, Day: 4, Observed: true},
		{Name: "Labor Day", Kind: KindNthWeekday, Month: 9, Weekday: Monday, N: 1},
		{Name: "Thanksgiving Day", Kind: KindNthWeekday, Month: 11, Weekday: Thursday, N: 4},
		{Name: "Christmas Day", Kind: KindFixed, Month: 12, Day: 25, Observed: true},
	})
}

// USHalfDays returns the early-closure days US exchanges conventionally
// shorten: Independence Eve and Christmas Eve. Like USFederal, the rules are
// proleptic and deterministic rather than historically exact.
func USHalfDays() *RuleSet {
	return NewRuleSet([]HolidayRule{
		{Name: "Independence Eve", Kind: KindFixed, Month: 7, Day: 3},
		{Name: "Christmas Eve", Kind: KindFixed, Month: 12, Day: 24},
	})
}

// IsBusinessDay reports whether a rata day is a weekday that is not a
// holiday under hs. A nil hs means no holidays.
func IsBusinessDay(rata int64, hs HolidaySet) bool {
	w := WeekdayOf(rata)
	if w == Saturday || w == Sunday {
		return false
	}
	if hs != nil && hs.IsHoliday(rata) {
		return false
	}
	return true
}
