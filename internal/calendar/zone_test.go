package calendar

import "testing"

func TestZoneValidation(t *testing.T) {
	if _, err := NewZone("bad", 19*3600); err == nil {
		t.Error("offset beyond 18h accepted")
	}
	cases := []struct {
		std, dst   int64
		start, end ZoneRule
	}{
		// Identical offsets.
		{-5 * 3600, -5 * 3600, ZoneRule{Month: 3, Weekday: Sunday, N: 2, Local: 7200}, ZoneRule{Month: 11, Weekday: Sunday, N: 1, Local: 7200}},
		// Transition at local midnight (would skip/repeat midnight).
		{-5 * 3600, -4 * 3600, ZoneRule{Month: 3, Weekday: Sunday, N: 2, Local: 0}, ZoneRule{Month: 11, Weekday: Sunday, N: 1, Local: 7200}},
		// DST "starts" after it ends.
		{-5 * 3600, -4 * 3600, ZoneRule{Month: 11, Weekday: Sunday, N: 1, Local: 7200}, ZoneRule{Month: 3, Weekday: Sunday, N: 2, Local: 7200}},
		// Month out of range.
		{-5 * 3600, -4 * 3600, ZoneRule{Month: 0, Weekday: Sunday, N: 2, Local: 7200}, ZoneRule{Month: 11, Weekday: Sunday, N: 1, Local: 7200}},
		// N out of range.
		{-5 * 3600, -4 * 3600, ZoneRule{Month: 3, Weekday: Sunday, N: 5, Local: 7200}, ZoneRule{Month: 11, Weekday: Sunday, N: 1, Local: 7200}},
	}
	for i, c := range cases {
		if _, err := NewDSTZone("bad", c.std, c.dst, c.start, c.end); err == nil {
			t.Errorf("case %d: invalid zone accepted", i)
		}
	}
}

// TestZoneOffsets pins the 2026 US-Eastern transitions: spring forward on
// 2026-03-08 at 02:00 EST (07:00 UTC), fall back on 2026-11-01 at 02:00 EDT
// (06:00 UTC).
func TestZoneOffsets(t *testing.T) {
	z := USEastern()
	springRata := RataOf(Date{Year: 2026, Month: 3, Day: 8})
	spring := (springRata-1)*SecondsPerDay + 7*3600 // UTC instant of the jump
	fallRata := RataOf(Date{Year: 2026, Month: 11, Day: 1})
	fall := (fallRata-1)*SecondsPerDay + 6*3600
	cases := []struct {
		instant int64
		want    int64
	}{
		{spring - 1, -5 * 3600},
		{spring, -4 * 3600},
		{fall - 1, -4 * 3600},
		{fall, -5 * 3600},
		// Deep winter / deep summer.
		{(RataOf(Date{Year: 2026, Month: 1, Day: 15}) - 1) * SecondsPerDay, -5 * 3600},
		{(RataOf(Date{Year: 2026, Month: 7, Day: 15}) - 1) * SecondsPerDay, -4 * 3600},
		// Proleptic application: the same rules hold in 1800.
		{(RataOf(Date{Year: 1800, Month: 1, Day: 15}) - 1) * SecondsPerDay, -5 * 3600},
		{(RataOf(Date{Year: 1800, Month: 7, Day: 15}) - 1) * SecondsPerDay, -4 * 3600},
	}
	for _, c := range cases {
		if got := z.OffsetAt(c.instant); got != c.want {
			t.Errorf("OffsetAt(%d) = %d, want %d", c.instant, got, c.want)
		}
	}
}

// TestZoneLocalDays checks that every local day exists exactly once and that
// DST days have 23h/25h lengths, by walking StartOfLocalDay differences
// across a transition year.
func TestZoneLocalDays(t *testing.T) {
	for _, z := range []*Zone{USEastern(), CentralEuropean()} {
		firstRata := RataOf(Date{Year: 2026, Month: 1, Day: 1})
		lastRata := RataOf(Date{Year: 2026, Month: 12, Day: 31})
		var n23, n25 int
		prev, ok := z.StartOfLocalDay(firstRata)
		if !ok {
			t.Fatalf("%s: StartOfLocalDay(%d) not ok", z.Name(), firstRata)
		}
		for r := firstRata + 1; r <= lastRata+1; r++ {
			cur, ok := z.StartOfLocalDay(r)
			if !ok {
				t.Fatalf("%s: StartOfLocalDay(%d) not ok", z.Name(), r)
			}
			switch cur - prev {
			case 23 * 3600:
				n23++
			case 24 * 3600:
			case 25 * 3600:
				n25++
			default:
				t.Fatalf("%s: local day %d has length %d", z.Name(), r-1, cur-prev)
			}
			// TickOf consistency: the first second of the local day must map
			// back to it, and the second before must map to the previous day.
			if got := z.LocalRataOf(cur); got != r {
				t.Fatalf("%s: LocalRataOf(start of %d) = %d", z.Name(), r, got)
			}
			if got := z.LocalRataOf(cur - 1); got != r-1 {
				t.Fatalf("%s: LocalRataOf(just before %d) = %d", z.Name(), r, got)
			}
			prev = cur
		}
		if n23 != 1 || n25 != 1 {
			t.Errorf("%s: 2026 has %d 23h days and %d 25h days, want 1 and 1", z.Name(), n23, n25)
		}
		tr := z.TransitionInstants(2026, 2026)
		if len(tr) != 2 || tr[0] >= tr[1] {
			t.Errorf("%s: TransitionInstants(2026) = %v", z.Name(), tr)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {-4, 2, -2}, {0, 5, 0}, {-1, 86400, -1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
