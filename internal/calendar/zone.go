package calendar

import "fmt"

// Zone is an arithmetic time-zone description: a standard UTC offset plus an
// optional pair of DST transition rules, evaluated proleptically over the
// whole timeline with the same nth-weekday machinery the holiday rules use.
// No stdlib time.LoadLocation is involved anywhere, so zone arithmetic is
// deterministic, allocation-free and independent of the host tzdata.
//
// The timeline's second index s occupies the instant range [s-1, s) measured
// in seconds since the timeline epoch (taken as UTC). A zone maps instants to
// local instants by adding the offset in effect: local = instant + OffsetAt.
//
// Only northern-style rule pairs are supported: DST starts and ends within
// the same civil year (StartMonth < EndMonth). That covers the US and EU
// shapes the zoo needs while keeping the transition order provable.
type Zone struct {
	name string
	std  int64 // standard offset, seconds east of UTC
	dst  int64 // offset while DST is in effect

	rules bool // whether DST rules are present
	start ZoneRule
	end   ZoneRule
}

// ZoneRule pins one annual DST transition: the Nth Weekday of Month (N == -1
// for the last), at Local seconds after local midnight. Local is interpreted
// in the offset in effect *before* the transition (standard time for the
// start rule, DST for the end rule), matching civil usage ("2:00 am local").
type ZoneRule struct {
	Month   int
	Weekday Weekday
	N       int
	Local   int64
}

// NewZone builds a fixed-offset zone (no DST). The offset must be within
// ±18h, mirroring real-world bounds.
func NewZone(name string, stdOffset int64) (*Zone, error) {
	if err := checkOffset(stdOffset); err != nil {
		return nil, err
	}
	return &Zone{name: name, std: stdOffset, dst: stdOffset}, nil
}

// NewDSTZone builds a zone with annual DST transitions. Constraints, all
// enforced: offsets within ±18h and distinct, start.Month < end.Month, and
// both transition times strictly inside the day (1h..23h after local
// midnight) so local midnight is never skipped or repeated — the zoned
// granularities rely on every local day existing.
func NewDSTZone(name string, stdOffset, dstOffset int64, start, end ZoneRule) (*Zone, error) {
	if err := checkOffset(stdOffset); err != nil {
		return nil, err
	}
	if err := checkOffset(dstOffset); err != nil {
		return nil, err
	}
	if stdOffset == dstOffset {
		return nil, fmt.Errorf("calendar: zone %q: identical std and dst offsets; use NewZone", name)
	}
	for _, r := range []ZoneRule{start, end} {
		if r.Month < 1 || r.Month > 12 {
			return nil, fmt.Errorf("calendar: zone %q: rule month %d out of range", name, r.Month)
		}
		if r.Weekday < Monday || r.Weekday > Sunday {
			return nil, fmt.Errorf("calendar: zone %q: rule weekday %d out of range", name, int(r.Weekday))
		}
		if r.N != -1 && (r.N < 1 || r.N > 4) {
			return nil, fmt.Errorf("calendar: zone %q: rule n %d out of range (1..4 or -1)", name, r.N)
		}
		if r.Local < 3600 || r.Local > SecondsPerDay-3600 {
			return nil, fmt.Errorf("calendar: zone %q: transition %ds after midnight; must be 1h..23h in", name, r.Local)
		}
	}
	if start.Month >= end.Month {
		return nil, fmt.Errorf("calendar: zone %q: DST must start before it ends within the year (start month %d, end month %d)", name, start.Month, end.Month)
	}
	return &Zone{name: name, std: stdOffset, dst: dstOffset, rules: true, start: start, end: end}, nil
}

func checkOffset(off int64) error {
	if off < -18*3600 || off > 18*3600 {
		return fmt.Errorf("calendar: zone offset %d out of ±18h range", off)
	}
	return nil
}

// MustZone panics on error; for the hardcoded builders below.
func MustZone(z *Zone, err error) *Zone {
	if err != nil {
		panic(err)
	}
	return z
}

// USEastern returns a US-Eastern-shaped zone: UTC−5 standard, UTC−4 DST,
// spring forward on the 2nd Sunday of March at 02:00 local, fall back on the
// 1st Sunday of November at 02:00 local. Rules are applied proleptically
// across the whole timeline (the zoo needs a deterministic gap structure,
// not tzdata history).
func USEastern() *Zone {
	return MustZone(NewDSTZone("us-eastern", -5*3600, -4*3600,
		ZoneRule{Month: 3, Weekday: Sunday, N: 2, Local: 2 * 3600},
		ZoneRule{Month: 11, Weekday: Sunday, N: 1, Local: 2 * 3600}))
}

// CentralEuropean returns a CET-shaped zone: UTC+1 standard, UTC+2 DST,
// transitions on the last Sundays of March and October at 02:00/03:00 local.
func CentralEuropean() *Zone {
	return MustZone(NewDSTZone("cet", 1*3600, 2*3600,
		ZoneRule{Month: 3, Weekday: Sunday, N: -1, Local: 2 * 3600},
		ZoneRule{Month: 10, Weekday: Sunday, N: -1, Local: 3 * 3600}))
}

// Name returns the zone's name.
func (z *Zone) Name() string { return z.name }

// StdOffset returns the standard offset in seconds east of UTC.
func (z *Zone) StdOffset() int64 { return z.std }

// DSTOffset returns the offset in effect during DST (== StdOffset for
// fixed-offset zones).
func (z *Zone) DSTOffset() int64 { return z.dst }

// HasDST reports whether the zone has DST transitions.
func (z *Zone) HasDST() bool { return z.rules }

// transitionsInYear returns the two transition instants of civil year y:
// toDST (offset becomes dst) and toStd (offset becomes std). Instants are
// seconds since the timeline epoch. ok is false when a rule has no
// occurrence that year (cannot happen for valid N, kept for safety).
func (z *Zone) transitionsInYear(y int) (toDST, toStd int64, ok bool) {
	rs, ok1 := nthWeekday(y, z.start.Month, z.start.Weekday, z.start.N)
	re, ok2 := nthWeekday(y, z.end.Month, z.end.Weekday, z.end.N)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	// The start transition's local time is in standard time, the end's in DST.
	toDST = (rs-1)*SecondsPerDay + z.start.Local - z.std
	toStd = (re-1)*SecondsPerDay + z.end.Local - z.dst
	return toDST, toStd, true
}

// OffsetAt returns the offset in effect at an absolute instant (seconds
// since the timeline epoch; the timeline's second index s covers [s-1, s)).
func (z *Zone) OffsetAt(instant int64) int64 {
	if !z.rules {
		return z.std
	}
	// Civil year of the instant under the standard offset; the transitions
	// of that year and its neighbour bracket the instant because both rules
	// sit strictly inside the year (months 1..12, >=1h from midnight).
	rata := floorDiv(instant+z.std, SecondsPerDay) + 1
	y := DateOf(rata).Year
	toDST, toStd, ok := z.transitionsInYear(y)
	if !ok {
		return z.std
	}
	if instant < toDST {
		// Before this year's spring-forward: standard, unless the estimate
		// landed us just past new year while still in the previous year's
		// DST window — impossible for northern rules (DST ended in year-1's
		// end month), so standard time it is.
		return z.std
	}
	if instant < toStd {
		return z.dst
	}
	return z.std
}

// LocalRataOf returns the local civil day (as a rata number) containing the
// timeline second s (s >= 1).
func (z *Zone) LocalRataOf(s int64) int64 {
	return floorDiv(s-1+z.OffsetAt(s-1), SecondsPerDay) + 1
}

// StartOfLocalDay returns the first timeline second index belonging to local
// day rata, and ok=false when that instant falls before the timeline start.
// Because transitions are >=1h away from midnight, local midnight always
// exists exactly once and a single offset refinement converges.
func (z *Zone) StartOfLocalDay(rata int64) (int64, bool) {
	target := (rata - 1) * SecondsPerDay // local instant of local midnight
	abs := target - z.std
	for i := 0; i < 4; i++ {
		cand := target - z.OffsetAt(abs)
		if cand == abs {
			break
		}
		abs = cand
	}
	s := abs + 1 // instant -> second index covering it
	if s < 1 {
		return 0, false
	}
	return s, true
}

// TransitionInstants returns the DST transition instants that fall within
// civil years [fromYear, toYear], in order. Empty for fixed-offset zones.
// The granularity layer uses these as boundary hints for the oracle
// generator (DST days are where the 23h/25h behaviour lives).
func (z *Zone) TransitionInstants(fromYear, toYear int) []int64 {
	if !z.rules {
		return nil
	}
	var out []int64
	for y := fromYear; y <= toYear; y++ {
		toDST, toStd, ok := z.transitionsInYear(y)
		if !ok {
			continue
		}
		out = append(out, toDST, toStd)
	}
	return out
}

// floorDiv is floored (not truncated) integer division.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
