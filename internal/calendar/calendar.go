// Package calendar implements proleptic Gregorian date arithmetic from
// scratch on an integer day line. It is the substrate the granularity
// package uses to realize calendar temporal types (day, week, month, year,
// business day, …) over the paper's second timeline.
//
// The package works in "rata" day numbers: day 1 is 1800-01-01, the anchor
// the paper's own year example uses. Negative and zero rata values are
// valid dates before the anchor; the granularity layer only ever asks about
// positive ones.
package calendar

import "fmt"

// Anchor is the civil date of rata day 1.
const (
	AnchorYear  = 1800
	AnchorMonth = 1
	AnchorDay   = 1
)

// SecondsPerDay is the length of a civil day on the discrete timeline.
const SecondsPerDay = 86400

// Weekday numbers days of the week with Monday == 0, matching ISO-8601
// week alignment used by the week granularity.
type Weekday int

// Weekday values.
const (
	Monday Weekday = iota
	Tuesday
	Wednesday
	Thursday
	Friday
	Saturday
	Sunday
)

var weekdayNames = [...]string{
	"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday",
}

// String returns the English weekday name.
func (w Weekday) String() string {
	if w < Monday || w > Sunday {
		return fmt.Sprintf("Weekday(%d)", int(w))
	}
	return weekdayNames[w]
}

// Date is a proleptic Gregorian civil date.
type Date struct {
	Year  int
	Month int // 1..12
	Day   int // 1..31
}

// String formats the date as YYYY-MM-DD.
func (d Date) String() string {
	return fmt.Sprintf("%04d-%02d-%02d", d.Year, d.Month, d.Day)
}

// Valid reports whether the date denotes an existing Gregorian day.
func (d Date) Valid() bool {
	if d.Month < 1 || d.Month > 12 {
		return false
	}
	return d.Day >= 1 && d.Day <= DaysInMonth(d.Year, d.Month)
}

// IsLeap reports whether year is a Gregorian leap year.
func IsLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

var monthLengths = [...]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// DaysInMonth returns the number of days in the given month of year.
func DaysInMonth(year, month int) int {
	if month == 2 && IsLeap(year) {
		return 29
	}
	return monthLengths[month-1]
}

// DaysInYear returns 365 or 366.
func DaysInYear(year int) int {
	if IsLeap(year) {
		return 366
	}
	return 365
}

// daysFromCivil converts a civil date to a serial day count with day 0 ==
// 1970-01-01, using era decomposition (no loops, valid over the full proleptic
// Gregorian range).
func daysFromCivil(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	var era int64
	yy := int64(y)
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // serial day, 0 = 1970-01-01
}

// civilFromDays is the inverse of daysFromCivil.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// anchorSerial is the serial day (1970-based) of the anchor date; rata day r
// corresponds to serial anchorSerial + r - 1.
var anchorSerial = daysFromCivil(AnchorYear, AnchorMonth, AnchorDay)

// RataOf returns the rata day number (1 == 1800-01-01) of a civil date.
func RataOf(d Date) int64 {
	return daysFromCivil(d.Year, d.Month, d.Day) - anchorSerial + 1
}

// DateOf returns the civil date of a rata day number.
func DateOf(rata int64) Date {
	y, m, d := civilFromDays(rata - 1 + anchorSerial)
	return Date{Year: y, Month: m, Day: d}
}

// WeekdayOf returns the weekday of a rata day.
func WeekdayOf(rata int64) Weekday {
	// Serial day 0 (1970-01-01) was a Thursday.
	s := rata - 1 + anchorSerial
	w := (s + 3) % 7 // +3: Thursday -> index 3 with Monday == 0
	if w < 0 {
		w += 7
	}
	return Weekday(w)
}

// MonthIndexOf returns the 1-based month index of a rata day, where month 1
// is January 1800. Works for rata >= 1 only (panics otherwise): the paper's
// timeline is the positive integers.
func MonthIndexOf(rata int64) int64 {
	d := DateOf(rata)
	return monthIndex(d.Year, d.Month)
}

func monthIndex(year, month int) int64 {
	return int64(year-AnchorYear)*12 + int64(month-AnchorMonth) + 1
}

// MonthSpan returns the first and last rata days of 1-based month index z
// (month 1 = January 1800).
func MonthSpan(z int64) (first, last int64) {
	y := AnchorYear + int((z-1)/12)
	m := AnchorMonth + int((z-1)%12)
	if z < 1 {
		// Handle negative flooring for completeness.
		q := (z - 12) / 12
		y = AnchorYear + int(q)
		m = int(z - q*12)
	}
	first = RataOf(Date{Year: y, Month: m, Day: 1})
	last = first + int64(DaysInMonth(y, m)) - 1
	return first, last
}

// YearIndexOf returns the 1-based year index (year 1 = 1800) of a rata day.
func YearIndexOf(rata int64) int64 {
	return int64(DateOf(rata).Year - AnchorYear + 1)
}

// YearSpan returns the first and last rata days of 1-based year index z.
func YearSpan(z int64) (first, last int64) {
	y := AnchorYear + int(z) - 1
	first = RataOf(Date{Year: y, Month: 1, Day: 1})
	last = RataOf(Date{Year: y, Month: 12, Day: 31})
	return first, last
}

// WeekIndexOf returns the 1-based week index of a rata day. Weeks run
// Monday..Sunday; week 1 is the (partial) week containing rata day 1.
// 1800-01-01 was a Wednesday, so week 1 has 5 days (Wed..Sun).
func WeekIndexOf(rata int64) int64 {
	// Shift so that the Monday of the week containing day 1 is origin.
	off := int64(WeekdayOf(1)) // days from that Monday to day 1
	d := rata - 1 + off        // 0-based day within the shifted line
	var w int64
	if d >= 0 {
		w = d / 7
	} else {
		w = (d - 6) / 7
	}
	return w + 1
}

// WeekSpan returns the first and last rata days of 1-based week index z,
// clipped to the timeline start for the partial first week.
func WeekSpan(z int64) (first, last int64) {
	off := int64(WeekdayOf(1))
	first = (z-1)*7 + 1 - off
	last = first + 6
	if z == 1 && first < 1 {
		first = 1
	}
	return first, last
}
