package calendar

import (
	"testing"
	"testing/quick"
)

func TestAnchorIsDay1(t *testing.T) {
	if got := RataOf(Date{1800, 1, 1}); got != 1 {
		t.Fatalf("RataOf(1800-01-01) = %d, want 1", got)
	}
	if got := DateOf(1); got != (Date{1800, 1, 1}) {
		t.Fatalf("DateOf(1) = %v, want 1800-01-01", got)
	}
}

func TestAnchorWeekday(t *testing.T) {
	// 1800-01-01 was a Wednesday.
	if got := WeekdayOf(1); got != Wednesday {
		t.Fatalf("WeekdayOf(1) = %v, want Wednesday", got)
	}
	// 2000-01-01 was a Saturday.
	if got := WeekdayOf(RataOf(Date{2000, 1, 1})); got != Saturday {
		t.Fatalf("WeekdayOf(2000-01-01) = %v, want Saturday", got)
	}
	// 1996-06-03 (PODS'96 week, Montreal) was a Monday.
	if got := WeekdayOf(RataOf(Date{1996, 6, 3})); got != Monday {
		t.Fatalf("WeekdayOf(1996-06-03) = %v, want Monday", got)
	}
}

func TestLeapYears(t *testing.T) {
	cases := []struct {
		year int
		leap bool
	}{
		{1800, false}, {1900, false}, {2000, true}, {1996, true},
		{1997, false}, {2100, false}, {2400, true}, {1804, true},
	}
	for _, c := range cases {
		if IsLeap(c.year) != c.leap {
			t.Errorf("IsLeap(%d) = %v, want %v", c.year, !c.leap, c.leap)
		}
	}
}

func TestDaysInMonth(t *testing.T) {
	if DaysInMonth(1996, 2) != 29 {
		t.Errorf("Feb 1996 should have 29 days")
	}
	if DaysInMonth(1900, 2) != 28 {
		t.Errorf("Feb 1900 should have 28 days")
	}
	if DaysInMonth(1800, 12) != 31 {
		t.Errorf("Dec 1800 should have 31 days")
	}
}

func TestRataRoundTrip(t *testing.T) {
	f := func(offset int32) bool {
		rata := int64(offset%200000) + 1
		if rata < 1 {
			rata = -rata + 1
		}
		d := DateOf(rata)
		return RataOf(d) == rata && d.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRataMonotoneDates(t *testing.T) {
	prev := DateOf(1)
	for rata := int64(2); rata <= 2000; rata++ {
		cur := DateOf(rata)
		if !less(prev, cur) {
			t.Fatalf("dates not strictly increasing at rata %d: %v !< %v", rata, prev, cur)
		}
		prev = cur
	}
}

func less(a, b Date) bool {
	if a.Year != b.Year {
		return a.Year < b.Year
	}
	if a.Month != b.Month {
		return a.Month < b.Month
	}
	return a.Day < b.Day
}

func TestWeekdayCycles(t *testing.T) {
	for rata := int64(1); rata < 100; rata++ {
		a, b := WeekdayOf(rata), WeekdayOf(rata+7)
		if a != b {
			t.Fatalf("weekday at %d (%v) != weekday at %d (%v)", rata, a, rata+7, b)
		}
	}
}

func TestMonthIndex(t *testing.T) {
	if MonthIndexOf(1) != 1 {
		t.Fatalf("month of day 1 should be 1")
	}
	// 1800-02-01 starts month 2.
	feb := RataOf(Date{1800, 2, 1})
	if MonthIndexOf(feb) != 2 || MonthIndexOf(feb-1) != 1 {
		t.Fatalf("month boundary wrong at 1800-02-01")
	}
	// January 1801 is month 13.
	if MonthIndexOf(RataOf(Date{1801, 1, 15})) != 13 {
		t.Fatalf("1801-01 should be month 13")
	}
}

func TestMonthSpan(t *testing.T) {
	for z := int64(1); z <= 60; z++ {
		first, last := MonthSpan(z)
		if MonthIndexOf(first) != z || MonthIndexOf(last) != z {
			t.Fatalf("span of month %d [%d,%d] maps back incorrectly", z, first, last)
		}
		if z > 1 {
			if MonthIndexOf(first-1) != z-1 {
				t.Fatalf("day before month %d is not in month %d", z, z-1)
			}
		}
		if MonthIndexOf(last+1) != z+1 {
			t.Fatalf("day after month %d is not in month %d", z, z+1)
		}
		length := last - first + 1
		if length < 28 || length > 31 {
			t.Fatalf("month %d has %d days", z, length)
		}
	}
}

func TestYearSpan(t *testing.T) {
	for z := int64(1); z <= 10; z++ {
		first, last := YearSpan(z)
		if YearIndexOf(first) != z || YearIndexOf(last) != z {
			t.Fatalf("year %d span wrong", z)
		}
		n := last - first + 1
		want := int64(DaysInYear(AnchorYear + int(z) - 1))
		if n != want {
			t.Fatalf("year %d has %d days, want %d", z, n, want)
		}
	}
}

func TestWeekIndexAndSpan(t *testing.T) {
	// Week 1 is partial: Wed 1800-01-01 .. Sun 1800-01-05 (5 days).
	f1, l1 := WeekSpan(1)
	if f1 != 1 || l1 != 5 {
		t.Fatalf("week 1 span = [%d,%d], want [1,5]", f1, l1)
	}
	for d := f1; d <= l1; d++ {
		if WeekIndexOf(d) != 1 {
			t.Fatalf("day %d should be in week 1", d)
		}
	}
	// Week 2 starts Monday 1800-01-06.
	f2, l2 := WeekSpan(2)
	if f2 != 6 || l2 != 12 {
		t.Fatalf("week 2 span = [%d,%d], want [6,12]", f2, l2)
	}
	if WeekdayOf(f2) != Monday {
		t.Fatalf("week 2 should start on Monday, got %v", WeekdayOf(f2))
	}
	// Indices and spans agree over a long prefix.
	for rata := int64(1); rata <= 1000; rata++ {
		z := WeekIndexOf(rata)
		f, l := WeekSpan(z)
		if rata < f || rata > l {
			t.Fatalf("day %d not inside its own week %d span [%d,%d]", rata, z, f, l)
		}
	}
}

func TestWeekSpansTile(t *testing.T) {
	prevLast := int64(0)
	for z := int64(1); z <= 200; z++ {
		f, l := WeekSpan(z)
		if f != prevLast+1 {
			t.Fatalf("week %d starts at %d, want %d", z, f, prevLast+1)
		}
		if z > 1 && l-f+1 != 7 {
			t.Fatalf("week %d has %d days, want 7", z, l-f+1)
		}
		prevLast = l
	}
}

func TestNthWeekday(t *testing.T) {
	// Thanksgiving 1996: 4th Thursday of November = Nov 28.
	rata, ok := nthWeekday(1996, 11, Thursday, 4)
	if !ok {
		t.Fatal("no 4th Thursday in Nov 1996?")
	}
	if DateOf(rata) != (Date{1996, 11, 28}) {
		t.Fatalf("Thanksgiving 1996 = %v, want 1996-11-28", DateOf(rata))
	}
	// Memorial Day 1996: last Monday of May = May 27.
	rata, ok = nthWeekday(1996, 5, Monday, -1)
	if !ok {
		t.Fatal("no last Monday in May 1996?")
	}
	if DateOf(rata) != (Date{1996, 5, 27}) {
		t.Fatalf("Memorial Day 1996 = %v, want 1996-05-27", DateOf(rata))
	}
	// A 5th Friday that does not exist.
	if _, ok := nthWeekday(1996, 2, Friday, 5); ok {
		t.Fatal("Feb 1996 should not have a 5th Friday")
	}
}

func TestUSFederalHolidays(t *testing.T) {
	hs := USFederal()
	july4 := RataOf(Date{1996, 7, 4}) // Thursday
	if !hs.IsHoliday(july4) {
		t.Error("1996-07-04 should be a holiday")
	}
	xmas94 := RataOf(Date{1994, 12, 25}) // Sunday -> observed Monday 26
	if hs.IsHoliday(xmas94) {
		t.Error("1994-12-25 (Sunday) should be shifted to Monday")
	}
	if !hs.IsHoliday(xmas94 + 1) {
		t.Error("1994-12-26 (Monday) should be the observed Christmas")
	}
}

func TestIsBusinessDay(t *testing.T) {
	hs := USFederal()
	mon := RataOf(Date{1996, 6, 3})
	sat := RataOf(Date{1996, 6, 1})
	july4 := RataOf(Date{1996, 7, 4})
	if !IsBusinessDay(mon, hs) {
		t.Error("1996-06-03 (Mon) should be a business day")
	}
	if IsBusinessDay(sat, hs) {
		t.Error("1996-06-01 (Sat) should not be a business day")
	}
	if IsBusinessDay(july4, hs) {
		t.Error("1996-07-04 should not be a business day")
	}
	if !IsBusinessDay(sat, nil) == false {
		t.Error("Saturday is never a business day even with nil holidays")
	}
	if !IsBusinessDay(july4, nil) {
		t.Error("with nil holiday set, 1996-07-04 (Thu) is a business day")
	}
}

func TestRuleSetCopiesRules(t *testing.T) {
	rules := []HolidayRule{{Name: "X", Kind: KindFixed, Month: 3, Day: 3}}
	rs := NewRuleSet(rules)
	rules[0].Month = 4 // must not affect rs
	rata := RataOf(Date{1900, 3, 3})
	if !rs.IsHoliday(rata) {
		t.Fatal("rule set should have copied the original rules")
	}
	got := rs.Rules()
	got[0].Month = 9
	if rs.Rules()[0].Month != 3 {
		t.Fatal("Rules() must return a copy")
	}
}

func TestWeekdayString(t *testing.T) {
	if Monday.String() != "Monday" || Sunday.String() != "Sunday" {
		t.Fatal("weekday names wrong")
	}
	if Weekday(42).String() != "Weekday(42)" {
		t.Fatal("out-of-range weekday should format numerically")
	}
}

func TestDateValid(t *testing.T) {
	if (Date{1996, 2, 30}).Valid() {
		t.Error("Feb 30 should be invalid")
	}
	if !(Date{1996, 2, 29}).Valid() {
		t.Error("Feb 29 1996 should be valid")
	}
	if (Date{1996, 13, 1}).Valid() || (Date{1996, 0, 1}).Valid() {
		t.Error("month out of range should be invalid")
	}
	if (Date{1996, 6, 0}).Valid() {
		t.Error("day 0 should be invalid")
	}
}

func TestEasterSunday(t *testing.T) {
	// Known Easter dates (Gregorian).
	cases := []struct {
		year       int
		month, day int
	}{
		{1996, 4, 7}, {2000, 4, 23}, {2008, 3, 23}, {2011, 4, 24},
		{1818, 3, 22}, {1943, 4, 25}, {2024, 3, 31}, {2026, 4, 5},
	}
	for _, c := range cases {
		got := DateOf(EasterSunday(c.year))
		if got.Month != c.month || got.Day != c.day {
			t.Errorf("Easter %d = %v, want %04d-%02d-%02d", c.year, got, c.year, c.month, c.day)
		}
		// Easter is always a Sunday.
		if WeekdayOf(EasterSunday(c.year)) != Sunday {
			t.Errorf("Easter %d not a Sunday", c.year)
		}
	}
}

func TestEasterRule(t *testing.T) {
	rs := NewRuleSet([]HolidayRule{
		{Name: "Good Friday", Kind: KindEaster, Offset: -2},
		{Name: "Easter Monday", Kind: KindEaster, Offset: 1},
	})
	// 1996: Easter Apr 7 -> Good Friday Apr 5, Easter Monday Apr 8.
	if !rs.IsHoliday(RataOf(Date{1996, 4, 5})) {
		t.Error("Good Friday 1996 missing")
	}
	if !rs.IsHoliday(RataOf(Date{1996, 4, 8})) {
		t.Error("Easter Monday 1996 missing")
	}
	if rs.IsHoliday(RataOf(Date{1996, 4, 7})) {
		t.Error("Easter Sunday itself not in this rule set")
	}
	// A business-day granularity with Easter holidays skips Good Friday.
	if IsBusinessDay(RataOf(Date{1996, 4, 5}), rs) {
		t.Error("Good Friday 1996 should not be a business day")
	}
}
