package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// WorkerHealth is one worker's slice of the cluster health report.
type WorkerHealth struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	Up          bool   `json:"up"`
	Status      string `json:"status,omitempty"` // the worker's own status
	Sessions    int    `json:"sessions"`
	JobsQueued  int    `json:"jobs_queued"`
	JobsRunning int    `json:"jobs_running"`
	Error       string `json:"error,omitempty"`
}

// ClusterHealthResponse is the router's GET /healthz body: the aggregate
// over every worker plus the router's own state.
type ClusterHealthResponse struct {
	Status        string         `json:"status"` // "ok", "degraded" or "draining"
	Epoch         int64          `json:"epoch"`
	Workers       []WorkerHealth `json:"workers"`
	Sessions      int            `json:"sessions"`
	JobsQueued    int            `json:"jobs_queued"`
	JobsRunning   int            `json:"jobs_running"`
	UptimeSeconds int64          `json:"uptime_seconds"`
}

// clusterHealth polls every worker and aggregates.
func (rt *Router) clusterHealth(ctx context.Context) ClusterHealthResponse {
	rt.mu.Lock()
	draining := rt.draining
	epoch := rt.epoch
	rt.mu.Unlock()
	out := ClusterHealthResponse{
		Status:        "ok",
		Epoch:         epoch,
		UptimeSeconds: int64(time.Since(rt.start).Seconds()),
	}
	for _, wk := range rt.allWorkers() {
		wh := WorkerHealth{Name: wk.name, URL: wk.url}
		var h server.HealthResponse
		if err := rt.internalJSON(ctx, wk, http.MethodGet, "/healthz", nil, &h); err != nil {
			wh.Error = err.Error()
			out.Status = "degraded"
		} else {
			wh.Up = true
			wh.Status = h.Status
			wh.Sessions = h.Sessions
			wh.JobsQueued = h.JobsQueued
			wh.JobsRunning = h.JobsRunning
			out.Sessions += h.Sessions
			out.JobsQueued += h.JobsQueued
			out.JobsRunning += h.JobsRunning
		}
		out.Workers = append(out.Workers, wh)
	}
	if draining {
		out.Status = "draining"
	}
	return out
}

// handleHealth serves the aggregated cluster health. A draining router
// answers 503 so load balancers stop routing to the cluster; a degraded
// one still answers 200 (the surviving workers keep serving their
// shards).
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := rt.clusterHealth(r.Context())
	code := http.StatusOK
	if h.Status == "draining" {
		code = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, h)
}

// handleMetrics serves the router's counters plus cluster-level gauges:
// per-worker liveness and load, aggregate session/job occupancy, and
// per-tenant quota usage.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := engine.WriteMetricsText(w, rt.counters); err != nil {
		return
	}
	h := rt.clusterHealth(r.Context())
	fmt.Fprintf(w, "# HELP tempod_cluster_epoch Current ownership epoch.\n")
	fmt.Fprintf(w, "# TYPE tempod_cluster_epoch gauge\n")
	fmt.Fprintf(w, "tempod_cluster_epoch %d\n", h.Epoch)
	fmt.Fprintf(w, "# HELP tempod_cluster_worker_up Worker liveness by name.\n")
	fmt.Fprintf(w, "# TYPE tempod_cluster_worker_up gauge\n")
	for _, wh := range h.Workers {
		up := 0
		if wh.Up {
			up = 1
		}
		fmt.Fprintf(w, "tempod_cluster_worker_up{worker=%q} %d\n", wh.Name, up)
		fmt.Fprintf(w, "tempod_cluster_worker_sessions{worker=%q} %d\n", wh.Name, wh.Sessions)
		fmt.Fprintf(w, "tempod_cluster_worker_jobs_queued{worker=%q} %d\n", wh.Name, wh.JobsQueued)
	}
	fmt.Fprintf(w, "# HELP tempod_cluster_sessions Live sessions across all workers.\n")
	fmt.Fprintf(w, "# TYPE tempod_cluster_sessions gauge\n")
	fmt.Fprintf(w, "tempod_cluster_sessions %d\n", h.Sessions)
	fmt.Fprintf(w, "tempod_cluster_jobs_queued %d\n", h.JobsQueued)
	fmt.Fprintf(w, "tempod_cluster_jobs_running %d\n", h.JobsRunning)
	fmt.Fprintf(w, "# HELP tempod_tenant_usage Per-tenant quota usage by resource.\n")
	fmt.Fprintf(w, "# TYPE tempod_tenant_usage gauge\n")
	usage := rt.tenants.snapshot()
	tenants := make([]string, 0, len(usage))
	for name := range usage {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		ts := usage[name]
		label := tenantLabel(name)
		fmt.Fprintf(w, "tempod_tenant_usage{tenant=%q,resource=\"inflight\"} %d\n", label, ts.inflight)
		fmt.Fprintf(w, "tempod_tenant_usage{tenant=%q,resource=\"sessions\"} %d\n", label, ts.sessions)
		fmt.Fprintf(w, "tempod_tenant_usage{tenant=%q,resource=\"jobs\"} %d\n", label, ts.jobs)
	}
}

// handleWorkers lists the ring membership and per-worker health.
func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.clusterHealth(r.Context()))
}

// handleWorkerDrain migrates everything off one worker and quiesces it;
// ?shutdown=1 also asks the worker process to exit.
func (rt *Router) handleWorkerDrain(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	shutdown := r.URL.Query().Get("shutdown") == "1"
	if err := rt.DrainWorker(r.Context(), name, shutdown); err != nil {
		rt.writeError(w, http.StatusConflict, "", err)
		return
	}
	rt.writeJSON(w, http.StatusOK, rt.clusterHealth(r.Context()))
}

// handleSteal runs one work-stealing pass on demand.
func (rt *Router) handleSteal(w http.ResponseWriter, r *http.Request) {
	moved, err := rt.StealOnce(r.Context())
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "", err)
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]bool{"moved": moved})
}
