package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// WorkerSpec names one worker tempod and its base URL.
type WorkerSpec struct {
	Name string
	URL  string
}

// Config sizes a Router. Zero values take the documented defaults.
type Config struct {
	// Workers is the initial ring membership.
	Workers []WorkerSpec
	// Replicas is the virtual-node count per worker (default 64).
	Replicas int
	// Quotas maps tenant names to their quotas; the "*" entry is the
	// default for unnamed tenants. Empty means no quotas.
	Quotas map[string]Quota
	// RetryAfter is the Retry-After hint on 429/503 responses, in seconds
	// (default 1).
	RetryAfter int
	// Retries bounds the router's own attempts for idempotent operations
	// against a failing worker (default 3). Non-idempotent operations are
	// never retried by the router: the client gets a retryable
	// "worker_unavailable" error instead of a possible duplicate side
	// effect.
	Retries int
	// RequestTimeout bounds each proxied attempt (default 60s).
	RequestTimeout time.Duration
	// StealInterval, when positive, runs the work-stealing pass on a
	// timer; zero leaves stealing to explicit StealOnce calls (tests, the
	// /cluster/steal admin endpoint).
	StealInterval time.Duration
	// VerifyMoves re-reads a migrated session from both owners and
	// requires byte-identical state bodies before the old copy is
	// forgotten (default on; DisableVerify turns it off).
	DisableVerify bool
	// Client overrides the proxy HTTP client (tests).
	Client *http.Client
	// Logger receives migration and drain diagnostics.
	Logger *log.Logger
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = defaultReplicas
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
}

// worker is one ring member.
type worker struct {
	name     string
	url      string
	draining bool
}

// placement records where one session or job currently lives. key is the
// ring key: the session's own ID, or — for a session-attached job — the
// session's ID, which pins the job to the session's worker through every
// rebalance.
type placement struct {
	id     string
	kind   string // "session" or "job"
	key    string
	worker string
	tenant string
}

// Router is the cluster's API tier: it owns the public /v1 surface,
// places sessions and jobs on the worker ring, proxies and retries, and
// drives rebalancing, work stealing, quotas and cluster-wide drain.
type Router struct {
	cfg      Config
	client   *http.Client
	counters *engine.Counters
	tenants  *tenantTable
	mux      *http.ServeMux
	start    time.Time

	mu        sync.Mutex
	ring      *Ring
	workers   map[string]*worker
	place     map[string]*placement
	epoch     int64
	nextSess  int64
	nextJob   int64
	nextCheck int64
	draining  bool

	stopSteal chan struct{}
	stealWG   sync.WaitGroup
}

// New builds a Router over the given workers and announces the initial
// ownership epoch to each (best effort — a worker that is down adopts it
// from the first proxied write it sees).
func New(cfg Config) (*Router, error) {
	cfg.fill()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: a router needs at least one worker")
	}
	rt := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		counters: engine.NewCounters(),
		tenants:  newTenantTable(cfg.Quotas),
		start:    time.Now(),
		workers:  make(map[string]*worker),
		place:    make(map[string]*placement),
		epoch:    1,
	}
	names := make([]string, 0, len(cfg.Workers))
	for _, spec := range cfg.Workers {
		if spec.Name == "" || spec.URL == "" {
			return nil, fmt.Errorf("cluster: worker needs a name and a url")
		}
		if _, dup := rt.workers[spec.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker name %q", spec.Name)
		}
		rt.workers[spec.Name] = &worker{name: spec.Name, url: strings.TrimRight(spec.URL, "/")}
		names = append(names, spec.Name)
	}
	rt.ring = NewRing(names, cfg.Replicas)
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/check", rt.handleCheck)
	rt.mux.HandleFunc("POST /v1/tag/sessions", rt.handleSessionCreate)
	rt.mux.HandleFunc("GET /v1/tag/sessions/{id}", rt.handleSessionRead)
	rt.mux.HandleFunc("POST /v1/tag/sessions/{id}/events", rt.handleSessionWrite)
	rt.mux.HandleFunc("DELETE /v1/tag/sessions/{id}", rt.handleSessionClose)
	rt.mux.HandleFunc("POST /v1/mining/jobs", rt.handleJobCreate)
	rt.mux.HandleFunc("GET /v1/mining/jobs/{id}", rt.handleJobRead)
	rt.mux.HandleFunc("POST /v1/mining/jobs/{id}/refresh", rt.handleJobWrite)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /cluster/workers", rt.handleWorkers)
	rt.mux.HandleFunc("POST /cluster/workers/{name}/drain", rt.handleWorkerDrain)
	rt.mux.HandleFunc("POST /cluster/steal", rt.handleSteal)
	rt.pushEpoch(context.Background())
	if cfg.StealInterval > 0 {
		rt.stopSteal = make(chan struct{})
		rt.stealWG.Add(1)
		go rt.stealLoop(cfg.StealInterval)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler tree.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Counters exposes the router's own metrics (the /metrics source).
func (rt *Router) Counters() *engine.Counters { return rt.counters }

// Epoch returns the current ownership epoch.
func (rt *Router) Epoch() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.epoch
}

// Close stops the background steal loop (if any).
func (rt *Router) Close() {
	if rt.stopSteal != nil {
		close(rt.stopSteal)
		rt.stealWG.Wait()
		rt.stopSteal = nil
	}
}

func (rt *Router) stealLoop(every time.Duration) {
	defer rt.stealWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-rt.stopSteal:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.RequestTimeout)
			if _, err := rt.StealOnce(ctx); err != nil {
				rt.cfg.Logger.Printf("cluster steal pass: %v", err)
			}
			cancel()
		}
	}
}

// --- placement bookkeeping ---

func (rt *Router) workerByName(name string) (*worker, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	wk, ok := rt.workers[name]
	return wk, ok
}

// liveWorkers snapshots the non-draining ring members, sorted by name.
func (rt *Router) liveWorkers() []*worker {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*worker, 0, len(rt.workers))
	for _, wk := range rt.workers {
		if !wk.draining {
			out = append(out, wk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// allWorkers snapshots every known worker, draining included.
func (rt *Router) allWorkers() []*worker {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*worker, 0, len(rt.workers))
	for _, wk := range rt.workers {
		out = append(out, wk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// recordPlacement publishes where an id lives.
func (rt *Router) recordPlacement(p *placement) {
	rt.mu.Lock()
	rt.place[p.id] = p
	rt.mu.Unlock()
}

func (rt *Router) dropPlacement(id string) (*placement, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.place[id]
	delete(rt.place, id)
	return p, ok
}

// placementFor resolves where an id lives. A miss (router restarted with
// an empty table) probes the ring owner first and then every other
// worker with an idempotent GET, re-learning the placement from whichever
// worker holds the state.
func (rt *Router) placementFor(ctx context.Context, kind, id string) (*placement, bool) {
	rt.mu.Lock()
	if p, ok := rt.place[id]; ok {
		rt.mu.Unlock()
		return p, true
	}
	owner := rt.ring.Owner(id)
	rt.mu.Unlock()

	probe := "/v1/tag/sessions/" + id
	if kind == "job" {
		probe = "/v1/mining/jobs/" + id
	}
	tried := map[string]bool{}
	candidates := []*worker{}
	if wk, ok := rt.workerByName(owner); ok {
		candidates = append(candidates, wk)
	}
	candidates = append(candidates, rt.allWorkers()...)
	for _, wk := range candidates {
		if tried[wk.name] {
			continue
		}
		tried[wk.name] = true
		resp, err := rt.forward(ctx, wk, http.MethodGet, probe, nil, nil)
		if err != nil {
			continue
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusOK {
			p := &placement{id: id, kind: kind, key: id, worker: wk.name}
			rt.recordPlacement(p)
			rt.counters.Count("cluster.placements.relearned", 1)
			return p, true
		}
	}
	return nil, false
}

// --- proxying ---

// forward issues one request to a worker, stamping the ownership epoch.
func (rt *Router) forward(ctx context.Context, wk *worker, method, pathq string, hdr http.Header, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	req, err := http.NewRequestWithContext(ctx, method, wk.url+pathq, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set(server.EpochHeader, strconv.FormatInt(rt.Epoch(), 10))
	resp, err := rt.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody ties a per-attempt context to the response body's lifetime.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// relay copies a worker response to the client byte-for-byte (status,
// headers — Retry-After included — and body).
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// readBody buffers a request body for (re)forwarding.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxRequestBytes))
}

// passHeaders picks the request headers worth forwarding.
func passHeaders(r *http.Request) http.Header {
	h := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	if tn := r.Header.Get(TenantHeader); tn != "" {
		h.Set(TenantHeader, tn)
	}
	return h
}

// writeJSON mirrors the worker tier's canonical encoding (two-space
// indent, trailing newline).
func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, code int, errCode string, err error) {
	rt.writeJSON(w, code, server.ErrorResponse{Error: err.Error(), Code: errCode})
}

// writeBackoffError adds the Retry-After hint (429/503).
func (rt *Router) writeBackoffError(w http.ResponseWriter, code int, errCode string, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(rt.cfg.RetryAfter))
	rt.writeError(w, code, errCode, err)
}

// writeUnavailable reports a worker the router could not reach. The
// operation did not observably happen; the client may retry safely.
func (rt *Router) writeUnavailable(w http.ResponseWriter, wk *worker, err error) {
	rt.counters.Count("cluster.proxy.unavailable", 1)
	rt.writeBackoffError(w, http.StatusServiceUnavailable, server.CodeWorkerUnavailable,
		fmt.Errorf("cluster: worker %s unavailable: %v", wk.name, err))
}

// admitTenant runs per-tenant admission for one proxied request.
func (rt *Router) admitTenant(w http.ResponseWriter, r *http.Request) (tenant string, release func(), ok bool) {
	tenant = r.Header.Get(TenantHeader)
	release, ok = rt.tenants.acquire(tenant)
	if !ok {
		rt.counters.Count("cluster.quota.rejected.inflight."+tenantLabel(tenant), 1)
		rt.writeBackoffError(w, http.StatusTooManyRequests, server.CodeBusy,
			fmt.Errorf("cluster: tenant %q is over its inflight quota", tenant))
		return "", nil, false
	}
	return tenant, release, true
}

func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// --- /v1 handlers ---

// handleCheck proxies a stateless consistency check to any live worker,
// failing over across workers: the check is pure computation, so retrying
// elsewhere can never duplicate a side effect.
func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	_, release, ok := rt.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := readBody(w, r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "", err)
		return
	}
	workers := rt.liveWorkers()
	if len(workers) == 0 {
		rt.writeBackoffError(w, http.StatusServiceUnavailable, server.CodeWorkerUnavailable,
			fmt.Errorf("cluster: no live workers"))
		return
	}
	// Spread checks round robin across the live workers.
	rt.mu.Lock()
	rt.nextCheck++
	seq := rt.nextCheck
	rt.mu.Unlock()
	start := int(seq) % len(workers)
	var lastErr error
	var lastWk *worker
	for i := 0; i < len(workers) && i < rt.cfg.Retries+1; i++ {
		wk := workers[(start+i)%len(workers)]
		lastWk = wk
		resp, ferr := rt.forward(r.Context(), wk, http.MethodPost, "/v1/check", passHeaders(r), body)
		if ferr != nil {
			lastErr = ferr
			rt.counters.Count("cluster.proxy.retries", 1)
			continue
		}
		rt.counters.Count("cluster.proxy.check", 1)
		rt.relay(w, resp)
		return
	}
	rt.writeUnavailable(w, lastWk, lastErr)
}

// handleSessionCreate places a new session on the ring. The router picks
// the ID (so the key determines the owner) and hands it to the worker via
// the assignment header; an ID collision with pre-existing worker state
// (a router restart reset the sequence) retries with a fresh ID.
func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	tenant, release, ok := rt.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	if !rt.tenants.reserveSession(tenant) {
		rt.counters.Count("cluster.quota.rejected.sessions."+tenantLabel(tenant), 1)
		rt.writeBackoffError(w, http.StatusTooManyRequests, server.CodeBusy,
			fmt.Errorf("cluster: tenant %q is over its session quota", tenant))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		rt.tenants.releaseSession(tenant)
		rt.writeError(w, http.StatusBadRequest, "", err)
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		rt.mu.Lock()
		rt.nextSess++
		id := fmt.Sprintf("cs%06d", rt.nextSess)
		owner := rt.ring.Owner(id)
		wk := rt.workers[owner]
		rt.mu.Unlock()
		if wk == nil {
			rt.tenants.releaseSession(tenant)
			rt.writeBackoffError(w, http.StatusServiceUnavailable, server.CodeWorkerUnavailable,
				fmt.Errorf("cluster: no live workers"))
			return
		}
		hdr := passHeaders(r)
		hdr.Set(server.AssignIDHeader, id)
		resp, ferr := rt.forward(r.Context(), wk, http.MethodPost, "/v1/tag/sessions", hdr, body)
		if ferr != nil {
			// The create may or may not have landed; surface a retryable
			// error instead of risking a duplicate. The orphan (if any) is
			// reaped when the client's retry gets a fresh ID and the old one
			// is never referenced again.
			rt.tenants.releaseSession(tenant)
			rt.writeUnavailable(w, wk, ferr)
			return
		}
		if resp.StatusCode == http.StatusUnprocessableEntity && attempt < 2 {
			// Possible ID collision with state from a previous router
			// incarnation: peek at the error and try a fresh ID.
			buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if bytes.Contains(buf, []byte("already exists")) {
				rt.counters.Count("cluster.sessions.id_collisions", 1)
				continue
			}
			rt.tenants.releaseSession(tenant)
			rt.replayBuffered(w, resp, buf)
			return
		}
		if resp.StatusCode == http.StatusCreated {
			rt.recordPlacement(&placement{id: id, kind: "session", key: id, worker: wk.name, tenant: tenant})
			rt.counters.Count("cluster.sessions.created", 1)
		} else {
			rt.tenants.releaseSession(tenant)
		}
		rt.relay(w, resp)
		return
	}
	rt.tenants.releaseSession(tenant)
	rt.writeError(w, http.StatusInternalServerError, "", fmt.Errorf("cluster: could not assign a fresh session id"))
}

// replayBuffered relays a response whose body was already consumed.
func (rt *Router) replayBuffered(w http.ResponseWriter, resp *http.Response, body []byte) {
	resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// handleSessionRead proxies a status poll (idempotent: retried against
// the owner before giving up).
func (rt *Router) handleSessionRead(w http.ResponseWriter, r *http.Request) {
	rt.proxyRead(w, r, "session", r.PathValue("id"), "/v1/tag/sessions/"+r.PathValue("id"))
}

// handleJobRead proxies a job poll.
func (rt *Router) handleJobRead(w http.ResponseWriter, r *http.Request) {
	rt.proxyRead(w, r, "job", r.PathValue("id"), "/v1/mining/jobs/"+r.PathValue("id"))
}

func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request, kind, id, path string) {
	_, release, ok := rt.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	p, found := rt.placementFor(r.Context(), kind, id)
	if !found {
		rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no %s %q", kind, id))
		return
	}
	wk, ok := rt.workerByName(p.worker)
	if !ok {
		rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no %s %q", kind, id))
		return
	}
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 25 * time.Millisecond)
			rt.counters.Count("cluster.proxy.retries", 1)
		}
		resp, ferr := rt.forward(r.Context(), wk, http.MethodGet, path, passHeaders(r), nil)
		if ferr != nil {
			lastErr = ferr
			continue
		}
		rt.relay(w, resp)
		return
	}
	rt.writeUnavailable(w, wk, lastErr)
}

// handleSessionWrite proxies an event feed to the session's owner. Feeds
// are not retried by the router (a lost ack could mean a consumed batch);
// clients retry safely with the events.after guard.
func (rt *Router) handleSessionWrite(w http.ResponseWriter, r *http.Request) {
	rt.proxyWrite(w, r, "session", r.PathValue("id"), "/v1/tag/sessions/"+r.PathValue("id")+"/events")
}

// handleJobWrite proxies a refresh to the job's owner.
func (rt *Router) handleJobWrite(w http.ResponseWriter, r *http.Request) {
	rt.proxyWrite(w, r, "job", r.PathValue("id"), "/v1/mining/jobs/"+r.PathValue("id")+"/refresh")
}

func (rt *Router) proxyWrite(w http.ResponseWriter, r *http.Request, kind, id, path string) {
	_, release, ok := rt.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	body, err := readBody(w, r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "", err)
		return
	}
	p, found := rt.placementFor(r.Context(), kind, id)
	if !found {
		rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no %s %q", kind, id))
		return
	}
	wk, ok := rt.workerByName(p.worker)
	if !ok {
		rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no %s %q", kind, id))
		return
	}
	resp, ferr := rt.forward(r.Context(), wk, http.MethodPost, path, passHeaders(r), body)
	if ferr != nil {
		rt.writeUnavailable(w, wk, ferr)
		return
	}
	rt.counters.Count("cluster.proxy.writes", 1)
	rt.relay(w, resp)
}

// handleSessionClose deletes a session wherever it lives and frees the
// tenant's slot.
func (rt *Router) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	_, release, ok := rt.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	id := r.PathValue("id")
	p, found := rt.placementFor(r.Context(), "session", id)
	if !found {
		rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no session %q", id))
		return
	}
	wk, ok := rt.workerByName(p.worker)
	if !ok {
		rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no session %q", id))
		return
	}
	resp, ferr := rt.forward(r.Context(), wk, http.MethodDelete, "/v1/tag/sessions/"+id, passHeaders(r), nil)
	if ferr != nil {
		rt.writeUnavailable(w, wk, ferr)
		return
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusNotFound {
		if old, had := rt.dropPlacement(id); had {
			rt.tenants.releaseSession(old.tenant)
		}
	}
	rt.relay(w, resp)
}

// handleJobCreate places a mining job. A session-attached job is pinned
// to its session's worker (the incremental miner reads the session's
// event log locally); a detached job hashes by its own ID.
func (rt *Router) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	tenant, release, ok := rt.admitTenant(w, r)
	if !ok {
		return
	}
	defer release()
	if !rt.tenants.reserveJob(tenant) {
		rt.counters.Count("cluster.quota.rejected.jobs."+tenantLabel(tenant), 1)
		rt.writeBackoffError(w, http.StatusTooManyRequests, server.CodeBusy,
			fmt.Errorf("cluster: tenant %q is over its job quota", tenant))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		rt.tenants.releaseJob(tenant)
		rt.writeError(w, http.StatusBadRequest, "", err)
		return
	}
	// Peek at session_id for placement; full validation stays on the
	// worker.
	var peek struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		rt.tenants.releaseJob(tenant)
		rt.writeError(w, http.StatusBadRequest, "", fmt.Errorf("cluster: decoding request: %w", err))
		return
	}
	for attempt := 0; attempt < 3; attempt++ {
		rt.mu.Lock()
		rt.nextJob++
		id := fmt.Sprintf("cj%06d", rt.nextJob)
		rt.mu.Unlock()
		key := id
		var wk *worker
		if peek.SessionID != "" {
			p, found := rt.placementFor(r.Context(), "session", peek.SessionID)
			if !found {
				rt.tenants.releaseJob(tenant)
				rt.writeError(w, http.StatusNotFound, "", fmt.Errorf("cluster: no session %q", peek.SessionID))
				return
			}
			key = peek.SessionID
			wk, _ = rt.workerByName(p.worker)
		} else {
			rt.mu.Lock()
			wk = rt.workers[rt.ring.Owner(key)]
			rt.mu.Unlock()
		}
		if wk == nil {
			rt.tenants.releaseJob(tenant)
			rt.writeBackoffError(w, http.StatusServiceUnavailable, server.CodeWorkerUnavailable,
				fmt.Errorf("cluster: no live workers"))
			return
		}
		hdr := passHeaders(r)
		hdr.Set(server.AssignIDHeader, id)
		resp, ferr := rt.forward(r.Context(), wk, http.MethodPost, "/v1/mining/jobs", hdr, body)
		if ferr != nil {
			rt.tenants.releaseJob(tenant)
			rt.writeUnavailable(w, wk, ferr)
			return
		}
		if resp.StatusCode == http.StatusInternalServerError && attempt < 2 {
			buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if bytes.Contains(buf, []byte("already exists")) {
				rt.counters.Count("cluster.jobs.id_collisions", 1)
				continue
			}
			rt.tenants.releaseJob(tenant)
			rt.replayBuffered(w, resp, buf)
			return
		}
		if resp.StatusCode == http.StatusAccepted {
			rt.recordPlacement(&placement{id: id, kind: "job", key: key, worker: wk.name, tenant: tenant})
			rt.counters.Count("cluster.jobs.created", 1)
		} else {
			rt.tenants.releaseJob(tenant)
		}
		rt.relay(w, resp)
		return
	}
	rt.tenants.releaseJob(tenant)
	rt.writeError(w, http.StatusInternalServerError, "", fmt.Errorf("cluster: could not assign a fresh job id"))
}
