package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/server"
)

// internalJSON issues one /internal call and decodes the JSON reply into
// out (skipped when out is nil). Non-2xx answers become errors carrying
// the worker's error body.
func (rt *Router) internalJSON(ctx context.Context, wk *worker, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	hdr := http.Header{}
	if payload != nil {
		hdr.Set("Content-Type", "application/json")
	}
	resp, err := rt.forward(ctx, wk, method, path, hdr, payload)
	if err != nil {
		return fmt.Errorf("cluster: %s %s on %s: %w", method, path, wk.name, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, server.MaxRequestBytes))
	if err != nil {
		return fmt.Errorf("cluster: reading %s reply from %s: %w", path, wk.name, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e server.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("cluster: %s on %s: %d %s", path, wk.name, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("cluster: %s on %s: status %d", path, wk.name, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// pushEpoch announces the current epoch to every worker (best effort: a
// dead worker adopts it from the first stamped request after it returns).
func (rt *Router) pushEpoch(ctx context.Context) {
	epoch := rt.Epoch()
	for _, wk := range rt.allWorkers() {
		if err := rt.internalJSON(ctx, wk, http.MethodPost, "/internal/epoch", server.EpochRequest{Epoch: epoch}, nil); err != nil {
			rt.cfg.Logger.Printf("cluster: epoch %d push to %s: %v", epoch, wk.name, err)
		}
	}
}

// bumpEpoch starts a new ownership era and announces it. Every rebalance
// bumps first, so any write still carrying the old epoch is fenced by the
// workers before state starts moving.
func (rt *Router) bumpEpoch(ctx context.Context) int64 {
	rt.mu.Lock()
	rt.epoch++
	epoch := rt.epoch
	rt.mu.Unlock()
	rt.pushEpoch(ctx)
	rt.counters.Count("cluster.rebalances", 1)
	return epoch
}

// AddWorker joins a worker to the ring and rebalances the keys that now
// hash to it (each arrives by checkpoint handover from its old owner).
func (rt *Router) AddWorker(ctx context.Context, spec WorkerSpec) error {
	if spec.Name == "" || spec.URL == "" {
		return fmt.Errorf("cluster: worker needs a name and a url")
	}
	rt.mu.Lock()
	if _, dup := rt.workers[spec.Name]; dup {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: worker %q already joined", spec.Name)
	}
	rt.workers[spec.Name] = &worker{name: spec.Name, url: spec.URL}
	rt.rebuildRingLocked()
	rt.mu.Unlock()
	return rt.rebalance(ctx)
}

// DrainWorker migrates everything off one worker (it leaves the ring, so
// its keys re-hash to the survivors), then quiesces it and — when
// shutdown is set — asks its process to exit. The worker keeps serving
// until its state is safely elsewhere.
func (rt *Router) DrainWorker(ctx context.Context, name string, shutdown bool) error {
	rt.mu.Lock()
	wk, ok := rt.workers[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: no worker %q", name)
	}
	if len(rt.workers) == 1 {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: cannot drain the last worker %q", name)
	}
	wk.draining = true
	rt.rebuildRingLocked()
	rt.mu.Unlock()

	if err := rt.rebalance(ctx); err != nil {
		return fmt.Errorf("cluster: draining %s: %w", name, err)
	}
	// Anything still placed on the drained worker failed to move; keep the
	// worker in service rather than losing it.
	if n := rt.placedOn(name); n > 0 {
		rt.mu.Lock()
		wk.draining = false
		rt.rebuildRingLocked()
		rt.mu.Unlock()
		rt.pushEpoch(ctx)
		return fmt.Errorf("cluster: %d placement(s) could not leave %s; worker kept in service", n, name)
	}
	if err := rt.internalJSON(ctx, wk, http.MethodPost, "/internal/quiesce", nil, nil); err != nil {
		return err
	}
	if shutdown {
		if err := rt.internalJSON(ctx, wk, http.MethodPost, "/internal/shutdown", nil, nil); err != nil {
			return err
		}
	}
	rt.mu.Lock()
	delete(rt.workers, name)
	rt.mu.Unlock()
	rt.counters.Count("cluster.workers.drained", 1)
	return nil
}

// placedOn counts placements currently on a worker.
func (rt *Router) placedOn(name string) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n := 0
	for _, p := range rt.place {
		if p.worker == name {
			n++
		}
	}
	return n
}

// rebuildRingLocked recomputes the ring from the non-draining workers;
// callers hold rt.mu.
func (rt *Router) rebuildRingLocked() {
	names := make([]string, 0, len(rt.workers))
	for name, wk := range rt.workers {
		if !wk.draining {
			names = append(names, name)
		}
	}
	rt.ring = NewRing(names, rt.cfg.Replicas)
}

// rebalance moves every placement whose ring owner changed: sessions
// first (each by checkpoint handover), then the jobs pinned to them and
// the detached jobs that re-hashed. Failures leave the affected placement
// on its old owner (the bundle's seal is rolled back) and are reported
// together; the rest of the moves still happen.
func (rt *Router) rebalance(ctx context.Context) error {
	rt.bumpEpoch(ctx)
	rt.mu.Lock()
	var moves []*placement
	for _, p := range rt.place {
		if target := rt.ring.Owner(p.key); target != "" && target != p.worker {
			moves = append(moves, p)
		}
	}
	rt.mu.Unlock()
	sort.Slice(moves, func(i, j int) bool {
		// Sessions move before jobs so a pinned job's session is already
		// on the target when the job's inject checks co-location.
		if moves[i].kind != moves[j].kind {
			return moves[i].kind == "session"
		}
		return moves[i].id < moves[j].id
	})
	var errs []error
	for _, p := range moves {
		rt.mu.Lock()
		target := rt.ring.Owner(p.key)
		from := rt.workers[p.worker]
		to := rt.workers[target]
		rt.mu.Unlock()
		if from == nil || to == nil || target == "" {
			errs = append(errs, fmt.Errorf("cluster: %s %s has no live target", p.kind, p.id))
			continue
		}
		var err error
		if p.kind == "session" {
			err = rt.migrateSession(ctx, p, from, to)
		} else {
			err = rt.migrateJob(ctx, p, from, to)
		}
		if err != nil {
			rt.counters.Count("cluster.migrations.failed", 1)
			rt.cfg.Logger.Printf("cluster: migrating %s %s %s -> %s: %v", p.kind, p.id, from.name, to.name, err)
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// migrateSession hands one session from old to new owner: export (seals
// the session), import (the new owner runs the restart-restore path over
// the bundle), optionally verify both owners serve byte-identical state,
// then forget on the old owner. Any failure unseals the original instead.
func (rt *Router) migrateSession(ctx context.Context, p *placement, from, to *worker) error {
	var before []byte
	if !rt.cfg.DisableVerify {
		var err error
		if before, err = rt.readState(ctx, from, "/v1/tag/sessions/"+p.id); err != nil {
			return err
		}
	}
	var bundle server.SessionBundle
	if err := rt.internalJSON(ctx, from, http.MethodPost, "/internal/sessions/"+p.id+"/export", nil, &bundle); err != nil {
		return err
	}
	unseal := func() {
		if uerr := rt.internalJSON(ctx, from, http.MethodPost, "/internal/sessions/"+p.id+"/unseal", nil, nil); uerr != nil {
			rt.cfg.Logger.Printf("cluster: unsealing %s on %s: %v", p.id, from.name, uerr)
		}
	}
	var imported server.ImportResponse
	if err := rt.internalJSON(ctx, to, http.MethodPost, "/internal/sessions/import", &bundle, &imported); err != nil {
		unseal()
		return err
	}
	if !rt.cfg.DisableVerify {
		after, err := rt.readState(ctx, to, "/v1/tag/sessions/"+p.id)
		if err == nil && !bytes.Equal(before, after) {
			err = fmt.Errorf("cluster: session %s state diverged across migration (%d vs %d bytes)", p.id, len(before), len(after))
		}
		if err != nil {
			// The copy on the new owner is suspect: discard it, restore the
			// original to service.
			if ferr := rt.internalJSON(ctx, to, http.MethodPost, "/internal/sessions/"+p.id+"/forget", nil, nil); ferr != nil {
				rt.cfg.Logger.Printf("cluster: discarding suspect import of %s on %s: %v", p.id, to.name, ferr)
			}
			unseal()
			return err
		}
	}
	if err := rt.internalJSON(ctx, from, http.MethodPost, "/internal/sessions/"+p.id+"/forget", nil, nil); err != nil {
		// The new owner is authoritative now; the sealed leftover refuses
		// writes and will be cleaned up by a later forget. Log, don't fail.
		rt.cfg.Logger.Printf("cluster: forgetting migrated session %s on %s: %v", p.id, from.name, err)
	}
	rt.mu.Lock()
	p.worker = to.name
	rt.mu.Unlock()
	rt.counters.Count("cluster.migrations.sessions", 1)
	rt.counters.Count("cluster.migrations.replayed_events", imported.Replayed)
	return nil
}

// migrateJob hands one job across workers: export (dequeues it on the old
// owner), import (re-enqueued like a restart), forget — or reinstate on
// failure.
func (rt *Router) migrateJob(ctx context.Context, p *placement, from, to *worker) error {
	var bundle server.JobBundle
	if err := rt.internalJSON(ctx, from, http.MethodPost, "/internal/jobs/"+p.id+"/export", nil, &bundle); err != nil {
		return err
	}
	if err := rt.internalJSON(ctx, to, http.MethodPost, "/internal/jobs/import", &bundle, nil); err != nil {
		if rerr := rt.internalJSON(ctx, from, http.MethodPost, "/internal/jobs/"+p.id+"/reinstate", nil, nil); rerr != nil {
			rt.cfg.Logger.Printf("cluster: reinstating %s on %s: %v", p.id, from.name, rerr)
		}
		return err
	}
	if err := rt.internalJSON(ctx, from, http.MethodPost, "/internal/jobs/"+p.id+"/forget", nil, nil); err != nil {
		rt.cfg.Logger.Printf("cluster: forgetting migrated job %s on %s: %v", p.id, from.name, err)
	}
	rt.mu.Lock()
	p.worker = to.name
	rt.mu.Unlock()
	rt.counters.Count("cluster.migrations.jobs", 1)
	return nil
}

// readState fetches one resource's canonical JSON body from a worker.
func (rt *Router) readState(ctx context.Context, wk *worker, path string) ([]byte, error) {
	resp, err := rt.forward(ctx, wk, http.MethodGet, path, nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, server.MaxRequestBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s on %s: status %d", path, wk.name, resp.StatusCode)
	}
	return raw, nil
}

// StealOnce runs one work-stealing pass: the most loaded worker's newest
// queued, non-session-pinned job moves to an idle worker. It reports
// whether a job moved. Stealing reuses the migration protocol (export →
// import → forget, reinstate on failure), so a half-stolen job is never
// lost or duplicated.
func (rt *Router) StealOnce(ctx context.Context) (bool, error) {
	workers := rt.liveWorkers()
	if len(workers) < 2 {
		return false, nil
	}
	type load struct {
		wk     *worker
		queued int
		busy   int
	}
	var loads []load
	for _, wk := range workers {
		var h server.HealthResponse
		if err := rt.internalJSON(ctx, wk, http.MethodGet, "/healthz", nil, &h); err != nil {
			continue // a dead worker neither donates nor receives
		}
		loads = append(loads, load{wk: wk, queued: h.JobsQueued, busy: h.JobsRunning})
	}
	if len(loads) < 2 {
		return false, nil
	}
	sort.Slice(loads, func(i, j int) bool {
		return loads[i].queued+loads[i].busy > loads[j].queued+loads[j].busy
	})
	donor, thief := loads[0], loads[len(loads)-1]
	// Steal only when it helps: the donor has backlog and the thief has
	// idle capacity.
	if donor.queued == 0 || thief.queued+thief.busy > 0 {
		return false, nil
	}
	var bundle server.JobBundle
	if err := rt.internalJSON(ctx, donor.wk, http.MethodPost, "/internal/jobs/steal", nil, &bundle); err != nil {
		return false, err
	}
	if bundle.ID == "" {
		return false, nil // nothing stealable (all queued jobs pinned)
	}
	if err := rt.internalJSON(ctx, thief.wk, http.MethodPost, "/internal/jobs/import", &bundle, nil); err != nil {
		if rerr := rt.internalJSON(ctx, donor.wk, http.MethodPost, "/internal/jobs/"+bundle.ID+"/reinstate", nil, nil); rerr != nil {
			rt.cfg.Logger.Printf("cluster: reinstating stolen job %s on %s: %v", bundle.ID, donor.wk.name, rerr)
		}
		return false, err
	}
	if err := rt.internalJSON(ctx, donor.wk, http.MethodPost, "/internal/jobs/"+bundle.ID+"/forget", nil, nil); err != nil {
		rt.cfg.Logger.Printf("cluster: forgetting stolen job %s on %s: %v", bundle.ID, donor.wk.name, err)
	}
	rt.mu.Lock()
	if p, ok := rt.place[bundle.ID]; ok {
		p.worker = thief.wk.name
	} else {
		rt.place[bundle.ID] = &placement{id: bundle.ID, kind: "job", key: bundle.ID, worker: thief.wk.name}
	}
	rt.mu.Unlock()
	rt.counters.Count("cluster.jobs.steals", 1)
	rt.cfg.Logger.Printf("cluster: stole job %s from %s for %s", bundle.ID, donor.wk.name, thief.wk.name)
	return true, nil
}

// Drain is the cluster-wide graceful shutdown: stop admitting new work,
// then quiesce every worker in sequence (each parks its sessions and
// mining attempts in checkpoints) and — when shutdown is set — ask each
// process to exit. State stays sharded across the workers' data dirs; the
// same cluster comes back with a plain restart.
func (rt *Router) Drain(ctx context.Context, shutdown bool) error {
	rt.mu.Lock()
	rt.draining = true
	rt.mu.Unlock()
	rt.Close()
	var errs []error
	for _, wk := range rt.allWorkers() {
		path := "/internal/quiesce"
		if dl, ok := ctx.Deadline(); ok {
			if ms := time.Until(dl).Milliseconds(); ms > 0 {
				path += "?timeout_ms=" + strconv.FormatInt(ms, 10)
			}
		}
		if err := rt.internalJSON(ctx, wk, http.MethodPost, path, nil, nil); err != nil {
			errs = append(errs, err)
			continue
		}
		if shutdown {
			if err := rt.internalJSON(ctx, wk, http.MethodPost, "/internal/shutdown", nil, nil); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
