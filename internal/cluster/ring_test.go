package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: two rings built from the same membership agree on
// every owner, regardless of input order.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"w1", "w2", "w3"}, 64)
	b := NewRing([]string{"w3", "w1", "w2"}, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cs%06d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings disagree on %s: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingStability: removing one member moves only that member's keys;
// every key owned by a survivor keeps its owner. This is the consistent-
// hashing property the rebalance protocol leans on — a drain never
// reshuffles state between surviving workers.
func TestRingStability(t *testing.T) {
	before := NewRing([]string{"w1", "w2", "w3"}, 64)
	after := NewRing([]string{"w1", "w3"}, 64)
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("cs%06d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was == "w2" {
			moved++
			if is == "w2" {
				t.Fatalf("key %s still owned by the removed worker", key)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %s moved %s -> %s though %s survived", key, was, is, was)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingSpread: with enough virtual nodes every worker owns a
// non-trivial share of the keyspace.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3"}, 64)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("cs%06d", i))]++
	}
	for _, name := range r.Members() {
		if c := counts[name]; c < n/10 {
			t.Fatalf("worker %s owns only %d/%d keys", name, c, n)
		}
	}
}

// TestRingEmptyAndMembership: edge cases.
func TestRingEmptyAndMembership(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("x"); owner != "" {
		t.Fatalf("empty ring owner %q", owner)
	}
	r := NewRing([]string{"b", "a"}, 4)
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("members %v", got)
	}
	if !r.Has("a") || r.Has("c") {
		t.Fatal("membership check wrong")
	}
}

// TestParseQuotas: the -tenant-quotas flag syntax.
func TestParseQuotas(t *testing.T) {
	q, err := ParseQuotas("acme=8,100,50;free=1,2,2;*=4,,16")
	if err != nil {
		t.Fatal(err)
	}
	if got := q["acme"]; got != (Quota{MaxInflight: 8, MaxSessions: 100, MaxJobs: 50}) {
		t.Fatalf("acme = %+v", got)
	}
	if got := q["free"]; got != (Quota{MaxInflight: 1, MaxSessions: 2, MaxJobs: 2}) {
		t.Fatalf("free = %+v", got)
	}
	if got := q["*"]; got != (Quota{MaxInflight: 4, MaxJobs: 16}) {
		t.Fatalf("default = %+v", got)
	}
	if m, err := ParseQuotas("  "); err != nil || len(m) != 0 {
		t.Fatalf("blank spec: %v %v", m, err)
	}
	for _, bad := range []string{"acme", "acme=1,2,3,4", "acme=-1", "acme=x", "a=1;a=2"} {
		if _, err := ParseQuotas(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

// TestTenantTableFairness: one tenant exhausting its inflight share does
// not consume another tenant's slots, and the fallback quota binds unnamed
// tenants.
func TestTenantTableFairness(t *testing.T) {
	tbl := newTenantTable(map[string]Quota{"free": {MaxInflight: 1}, "*": {MaxInflight: 2}})
	rel1, ok := tbl.acquire("free")
	if !ok {
		t.Fatal("first free acquire refused")
	}
	if _, ok := tbl.acquire("free"); ok {
		t.Fatal("free exceeded its inflight cap")
	}
	// Another tenant still admits under the fallback quota.
	relA, ok := tbl.acquire("acme")
	if !ok {
		t.Fatal("acme starved by free's saturation")
	}
	relB, ok := tbl.acquire("acme")
	if !ok {
		t.Fatal("acme second slot refused")
	}
	if _, ok := tbl.acquire("acme"); ok {
		t.Fatal("acme exceeded the fallback cap")
	}
	rel1()
	if rel, ok := tbl.acquire("free"); !ok {
		t.Fatal("release did not free the slot")
	} else {
		rel()
	}
	relA()
	relB()

	// Session slots: reserve/release pairs.
	tbl2 := newTenantTable(map[string]Quota{"free": {MaxSessions: 1}})
	if !tbl2.reserveSession("free") {
		t.Fatal("first session refused")
	}
	if tbl2.reserveSession("free") {
		t.Fatal("session quota not enforced")
	}
	if !tbl2.reserveSession("other") {
		t.Fatal("unquoted tenant refused")
	}
	tbl2.releaseSession("free")
	if !tbl2.reserveSession("free") {
		t.Fatal("released session slot not reusable")
	}
}
