// Package cluster is tempod's horizontal tier split: a Router owns the
// public HTTP surface and places streaming TAG sessions and mining jobs on
// a consistent-hash ring of worker tempods, each running the ordinary
// server.Server in worker mode (Config.Internal). Moving state between
// workers is rebalance-by-checkpoint: the fingerprint-bound session and
// job checkpoints — already proven byte-identical across save/restore —
// are the migration primitive, so a handover is exactly a crash recovery
// on the new owner.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per worker: enough that the
// keyspace splits evenly across a handful of workers without making ring
// rebuilds (every join/leave) noticeable.
const defaultReplicas = 64

// Ring is an immutable consistent-hash ring: each worker appears as
// `replicas` virtual points, a key belongs to the first point clockwise
// from its hash. Rebuilding the ring on membership change moves only the
// keys between a departed worker's points and their successors.
type Ring struct {
	points []ringPoint // sorted by hash
	names  []string    // sorted member names
}

type ringPoint struct {
	hash uint64
	name string
}

// NewRing builds a ring over the named workers. replicas <= 0 takes the
// default.
func NewRing(names []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{names: append([]string(nil), names...)}
	sort.Strings(r.names)
	for _, name := range r.names {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", name, i)), name: name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by name so
		// every router instance agrees on the owner.
		return r.points[i].name < r.points[j].name
	})
	return r
}

// Owner returns the worker owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is a circle
	}
	return r.points[i].name
}

// Members returns the worker names on the ring, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.names...) }

// Has reports whether name is a ring member.
func (r *Ring) Has(name string) bool {
	i := sort.SearchStrings(r.names, name)
	return i < len(r.names) && r.names[i] == name
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 finalizer. Raw FNV of labels that differ only in
// trailing digits ("w2#0".."w2#63") lands within a narrow band — the last
// FNV step spreads a one-digit difference by at most ~2^44 of the 2^64
// space — which collapses a worker's virtual nodes into a few arcs and
// can starve it of keys entirely. Full avalanche restores the spread.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
