package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// TenantHeader names the tenant a request acts for; absent means the
// anonymous tenant "".
const TenantHeader = "X-Tempo-Tenant"

// Quota bounds one tenant's share of the cluster. Zero fields are
// unlimited.
type Quota struct {
	// MaxInflight caps the tenant's concurrently proxied requests.
	MaxInflight int
	// MaxSessions caps the tenant's live streaming sessions.
	MaxSessions int
	// MaxJobs caps the tenant's resident mining jobs (done jobs stay
	// resident and pollable, so this bounds total footprint, not just the
	// queue).
	MaxJobs int
}

// ParseQuotas reads the -tenant-quotas flag syntax:
// "name=inflight,sessions,jobs;name2=...". The name "*" sets the default
// quota applied to tenants not named. A field left empty (or 0) is
// unlimited. Example: "acme=8,100,50;free=1,2,2;*=4,16,16".
func ParseQuotas(spec string) (map[string]Quota, error) {
	out := make(map[string]Quota)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: quota %q wants name=inflight,sessions,jobs", part)
		}
		name = strings.TrimSpace(name)
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("cluster: tenant %q quoted twice", name)
		}
		fields := strings.Split(vals, ",")
		if len(fields) > 3 {
			return nil, fmt.Errorf("cluster: quota %q has %d fields, max 3 (inflight,sessions,jobs)", part, len(fields))
		}
		var q Quota
		dst := []*int{&q.MaxInflight, &q.MaxSessions, &q.MaxJobs}
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			n, err := strconv.Atoi(f)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("cluster: quota %q field %d: want a non-negative integer, got %q", part, i+1, f)
			}
			*dst[i] = n
		}
		out[name] = q
	}
	return out, nil
}

// tenantState tracks one tenant's live usage on the router.
type tenantState struct {
	inflight int
	sessions int
	jobs     int
}

// tenantTable enforces per-tenant quotas and keeps the usage gauges that
// /metrics aggregates. Fairness is structural: each tenant draws against
// its own inflight cap, so one tenant saturating its share never starves
// another's admission.
type tenantTable struct {
	mu       sync.Mutex
	quotas   map[string]Quota
	fallback Quota // the "*" entry; zero = unlimited
	state    map[string]*tenantState
}

func newTenantTable(quotas map[string]Quota) *tenantTable {
	t := &tenantTable{
		quotas: make(map[string]Quota),
		state:  make(map[string]*tenantState),
	}
	for name, q := range quotas {
		if name == "*" {
			t.fallback = q
			continue
		}
		t.quotas[name] = q
	}
	return t
}

func (t *tenantTable) quotaOf(tenant string) Quota {
	if q, ok := t.quotas[tenant]; ok {
		return q
	}
	return t.fallback
}

func (t *tenantTable) stateOf(tenant string) *tenantState {
	ts, ok := t.state[tenant]
	if !ok {
		ts = &tenantState{}
		t.state[tenant] = ts
	}
	return ts
}

// acquire admits one proxied request for tenant, reporting false when the
// tenant's inflight cap is spent. The caller must call the release on
// success.
func (t *tenantTable) acquire(tenant string) (release func(), ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.quotaOf(tenant)
	ts := t.stateOf(tenant)
	if q.MaxInflight > 0 && ts.inflight >= q.MaxInflight {
		return nil, false
	}
	ts.inflight++
	return func() {
		t.mu.Lock()
		ts.inflight--
		t.mu.Unlock()
	}, true
}

// reserveSession claims one session slot for tenant (false: over quota).
func (t *tenantTable) reserveSession(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.quotaOf(tenant)
	ts := t.stateOf(tenant)
	if q.MaxSessions > 0 && ts.sessions >= q.MaxSessions {
		return false
	}
	ts.sessions++
	return true
}

// releaseSession returns a session slot (close, or a create that failed
// downstream).
func (t *tenantTable) releaseSession(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.stateOf(tenant); ts.sessions > 0 {
		ts.sessions--
	}
}

// reserveJob claims one resident-job slot for tenant.
func (t *tenantTable) reserveJob(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.quotaOf(tenant)
	ts := t.stateOf(tenant)
	if q.MaxJobs > 0 && ts.jobs >= q.MaxJobs {
		return false
	}
	ts.jobs++
	return true
}

func (t *tenantTable) releaseJob(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts := t.stateOf(tenant); ts.jobs > 0 {
		ts.jobs--
	}
}

// snapshot copies the usage table for /metrics.
func (t *tenantTable) snapshot() map[string]tenantState {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]tenantState, len(t.state))
	for name, ts := range t.state {
		out[name] = *ts
	}
	return out
}
