package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mining"
	"repro/internal/server"
)

const (
	testSessionSpec = `{"spec":{"edges":[{"from":"X0","to":"X1","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"X0":"a","X1":"b"}}}`
	testJobProblem  = `{"structure":{"edges":[{"from":"X0","to":"X1","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"X0":"a","X1":"b"}},"min_confidence":0.4,"reference":"a"}`
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// testCluster is a router over real worker servers.
type testCluster struct {
	rt       *Router
	rtServer *httptest.Server
	workers  []*server.Server
	wts      []*httptest.Server
	names    []string
}

// newTestCluster boots n workers (full server.Server with the /internal
// surface) behind a router.
func newTestCluster(t *testing.T, n int, mutate func(*Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	var specs []WorkerSpec
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{DataDir: t.TempDir(), Internal: true, CheckpointEvery: 8})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		name := fmt.Sprintf("w%d", i+1)
		tc.workers = append(tc.workers, srv)
		tc.wts = append(tc.wts, ts)
		tc.names = append(tc.names, name)
		specs = append(specs, WorkerSpec{Name: name, URL: ts.URL})
	}
	cfg := Config{Workers: specs, Logger: quietLogger()}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tc.rt = rt
	tc.rtServer = httptest.NewServer(rt.Handler())
	t.Cleanup(tc.rtServer.Close)
	return tc
}

func (tc *testCluster) url() string { return tc.rtServer.URL }

func doJSON(t *testing.T, method, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func createClusterSession(t *testing.T, baseURL string, hdr map[string]string) server.SessionCreateResponse {
	t.Helper()
	resp, body := doJSON(t, http.MethodPost, baseURL+"/v1/tag/sessions", []byte(testSessionSpec), hdr)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	var cr server.SessionCreateResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

func feedClusterSession(t *testing.T, baseURL, id string, items ...server.EventItem) {
	t.Helper()
	payload, _ := json.Marshal(server.EventsRequest{Events: items})
	resp, body := doJSON(t, http.MethodPost, baseURL+"/v1/tag/sessions/"+id+"/events", payload, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed status %d: %s", resp.StatusCode, body)
	}
}

func readClusterSession(t *testing.T, baseURL, id string) []byte {
	t.Helper()
	resp, body := doJSON(t, http.MethodGet, baseURL+"/v1/tag/sessions/"+id, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read %s status %d: %s", id, resp.StatusCode, body)
	}
	return body
}

// TestClusterSessionPlacementAndLifecycle: the router assigns ring-keyed
// IDs, places sessions on workers, proxies feeds/reads byte-for-byte, and
// a close frees the placement.
func TestClusterSessionPlacementAndLifecycle(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	cr := createClusterSession(t, tc.url(), nil)
	if !strings.HasPrefix(cr.ID, "cs") {
		t.Fatalf("router-assigned id %q", cr.ID)
	}
	tc.rt.mu.Lock()
	p := tc.rt.place[cr.ID]
	tc.rt.mu.Unlock()
	if p == nil {
		t.Fatal("no placement recorded")
	}
	if owner := tc.rt.ring.Owner(cr.ID); owner != p.worker {
		t.Fatalf("placement %s but ring owner %s", p.worker, owner)
	}

	t0 := event.At(1996, 7, 1, 9, 0, 0)
	feedClusterSession(t, tc.url(), cr.ID, server.EventItem{Time: t0, Type: "a"}, server.EventItem{Time: t0 + 60, Type: "b"})

	// The proxied read is byte-identical to the owning worker's direct
	// answer.
	viaRouter := readClusterSession(t, tc.url(), cr.ID)
	idx := 0
	for i, name := range tc.names {
		if name == p.worker {
			idx = i
		}
	}
	_, direct := doJSON(t, http.MethodGet, tc.wts[idx].URL+"/v1/tag/sessions/"+cr.ID, nil, nil)
	if !bytes.Equal(viaRouter, direct) {
		t.Fatalf("proxied read differs from the worker's:\nrouter:\n%s\nworker:\n%s", viaRouter, direct)
	}

	resp, _ := doJSON(t, http.MethodDelete, tc.url()+"/v1/tag/sessions/"+cr.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close status %d", resp.StatusCode)
	}
	tc.rt.mu.Lock()
	_, still := tc.rt.place[cr.ID]
	tc.rt.mu.Unlock()
	if still {
		t.Fatal("placement survived the close")
	}
}

// TestClusterDrainMigratesByCheckpoint: draining a worker hands every one
// of its sessions to the survivor by checkpoint handover, after which the
// router serves byte-identical session state and keeps accepting feeds.
// The oracle-grade proof: reads across the move never change.
func TestClusterDrainMigratesByCheckpoint(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	types := []string{"a", "x", "b"}
	states := map[string][]byte{}
	var ids []string
	for i := 0; i < 6; i++ {
		cr := createClusterSession(t, tc.url(), nil)
		ids = append(ids, cr.ID)
		var items []server.EventItem
		for k := 0; k < 10+i; k++ {
			items = append(items, server.EventItem{Time: t0 + int64(k)*60, Type: types[(k+i)%len(types)]})
		}
		feedClusterSession(t, tc.url(), cr.ID, items...)
		states[cr.ID] = readClusterSession(t, tc.url(), cr.ID)
	}

	// Drain whichever worker holds the first session, so at least one
	// migration certainly happens.
	tc.rt.mu.Lock()
	victim := tc.rt.place[ids[0]].worker
	moving := 0
	for _, p := range tc.rt.place {
		if p.worker == victim {
			moving++
		}
	}
	tc.rt.mu.Unlock()

	epochBefore := tc.rt.Epoch()
	resp, body := doJSON(t, http.MethodPost, tc.url()+"/cluster/workers/"+victim+"/drain", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d: %s", resp.StatusCode, body)
	}
	if got := tc.rt.Epoch(); got <= epochBefore {
		t.Fatalf("drain did not bump the epoch: %d -> %d", epochBefore, got)
	}
	if got := tc.rt.counters.Get("cluster.migrations.sessions"); got != int64(moving) {
		t.Fatalf("migrated %d sessions, want %d", got, moving)
	}
	if got := tc.rt.counters.Get("cluster.migrations.failed"); got != 0 {
		t.Fatalf("%d migrations failed", got)
	}
	// Strided-checkpoint reuse: the replay across all moves stays below
	// CheckpointEvery per session, never the full log.
	if replayed := tc.rt.counters.Get("cluster.migrations.replayed_events"); replayed >= int64(moving*8+1) {
		t.Fatalf("migration replayed %d events for %d sessions; checkpoints not reused", replayed, moving)
	}

	for _, id := range ids {
		after := readClusterSession(t, tc.url(), id)
		if !bytes.Equal(states[id], after) {
			t.Fatalf("session %s state changed across drain:\nbefore:\n%s\nafter:\n%s", id, states[id], after)
		}
	}
	// The drained worker is gone from the ring and the cluster keeps
	// accepting writes.
	tc.rt.mu.Lock()
	_, still := tc.rt.workers[victim]
	tc.rt.mu.Unlock()
	if still {
		t.Fatalf("worker %s still a member after drain", victim)
	}
	for i, id := range ids {
		feedClusterSession(t, tc.url(), id, server.EventItem{Time: t0 + 100000 + int64(i), Type: "a"})
	}
}

// TestClusterSessionJobPinnedAndMigrated: a session-attached mining job
// lands on the session's worker, mines to the same discoveries a local
// batch mine finds, and its done-state record survives a drain
// byte-identically.
func TestClusterSessionJobPinnedAndMigrated(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	cr := createClusterSession(t, tc.url(), nil)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	seq := event.Sequence{
		{Time: t0, Type: "a"},
		{Time: t0 + 1800, Type: "b"},
		{Time: t0 + 7200, Type: "a"},
		{Time: t0 + 9000, Type: "b"},
	}
	var items []server.EventItem
	for _, e := range seq {
		items = append(items, server.EventItem{Time: e.Time, Type: string(e.Type)})
	}
	feedClusterSession(t, tc.url(), cr.ID, items...)

	payload := []byte(`{"problem":` + testJobProblem + `,"session_id":"` + cr.ID + `"}`)
	resp, body := doJSON(t, http.MethodPost, tc.url()+"/v1/mining/jobs", payload, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d: %s", resp.StatusCode, body)
	}
	var created server.JobStatusResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	tc.rt.mu.Lock()
	jp, sp := tc.rt.place[created.ID], tc.rt.place[cr.ID]
	tc.rt.mu.Unlock()
	if jp == nil || sp == nil || jp.worker != sp.worker || jp.key != cr.ID {
		t.Fatalf("job not pinned to its session: job=%+v session=%+v", jp, sp)
	}

	var done server.JobStatusResponse
	var doneBody []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := doJSON(t, http.MethodGet, tc.url()+"/v1/mining/jobs/"+created.ID, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &done); err != nil {
			t.Fatal(err)
		}
		if done.State == server.JobDone || done.State == server.JobFailed {
			doneBody = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if done.State != server.JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}

	// The cluster's discoveries equal a local batch mine of the same
	// sequence (the distributed path changes nothing about the answer).
	sys, err := cli.LoadSystem("", nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := mining.ReadProblemSpec(strings.NewReader(testJobProblem))
	if err != nil {
		t.Fatal(err)
	}
	p, _, opt, err := ps.Build(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Engine = engine.Config{Mode: engine.ExecCompiled}
	ds, _, err := mining.Optimized(sys, p, seq, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantDisc, _ := json.Marshal(ds)
	gotDisc, _ := json.Marshal(done.Result.Discoveries)
	// Discovery encodes identically through cli.BuildMineResult; compare
	// the counts and frequencies via the JSON forms.
	var want, got []map[string]any
	json.Unmarshal(wantDisc, &want)
	json.Unmarshal(gotDisc, &got)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("cluster discoveries %s\nlocal %s", gotDisc, wantDisc)
	}

	// Drain the owning worker: session and pinned job migrate together and
	// the job's state stays byte-identical through the move.
	resp, body = doJSON(t, http.MethodPost, tc.url()+"/cluster/workers/"+jp.worker+"/drain", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status %d: %s", resp.StatusCode, body)
	}
	if got := tc.rt.counters.Get("cluster.migrations.jobs"); got != 1 {
		t.Fatalf("migrated %d jobs, want 1", got)
	}
	resp, after := doJSON(t, http.MethodGet, tc.url()+"/v1/mining/jobs/"+created.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain job poll status %d", resp.StatusCode)
	}
	if !bytes.Equal(doneBody, after) {
		t.Fatalf("job state changed across drain:\nbefore:\n%s\nafter:\n%s", doneBody, after)
	}
}

// TestClusterCheckFailover: /v1/check is pure computation, so the router
// fails over to another worker when one is unreachable.
func TestClusterCheckFailover(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	tc.wts[0].Close() // one worker is down

	spec := `{"spec":{"edges":[{"from":"X0","to":"X1","constraints":[{"min":0,"max":2,"gran":"hour"}]}]}}`
	for i := 0; i < 4; i++ { // round robin lands on the dead worker too
		resp, body := doJSON(t, http.MethodPost, tc.url()+"/v1/check", []byte(spec), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got := tc.rt.counters.Get("cluster.proxy.retries"); got == 0 {
		t.Fatal("no failover retries recorded though a worker is down")
	}
}

// TestClusterWriteConnRefused: a feed to a session whose worker is
// unreachable surfaces the retryable 503 "worker_unavailable" with a
// Retry-After hint — the router never retries a non-idempotent write on
// its own, so the batch cannot land twice.
func TestClusterWriteConnRefused(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	cr := createClusterSession(t, tc.url(), nil)
	tc.rt.mu.Lock()
	victim := tc.rt.place[cr.ID].worker
	tc.rt.mu.Unlock()
	for i, name := range tc.names {
		if name == victim {
			tc.wts[i].Close()
		}
	}
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	payload, _ := json.Marshal(server.EventsRequest{Events: []server.EventItem{{Time: t0, Type: "a"}}})
	resp, body := doJSON(t, http.MethodPost, tc.url()+"/v1/tag/sessions/"+cr.ID+"/events", payload, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("feed status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != server.CodeWorkerUnavailable {
		t.Fatalf("code %q, want %q", e.Code, server.CodeWorkerUnavailable)
	}
	if got := tc.rt.counters.Get("cluster.proxy.unavailable"); got != 1 {
		t.Fatalf("unavailable counter %d, want 1", got)
	}
}

// stubWorker is a scripted worker for proxy-behavior tests.
func stubWorker(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/epoch", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, `{"epoch": 1}`)
	})
	mux.HandleFunc("/", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterRetryAfterPassthrough: a worker's own 503 (draining) relays
// byte-for-byte, Retry-After header included — the router adds nothing.
func TestClusterRetryAfterPassthrough(t *testing.T) {
	workerBody := `{"error":"server: draining, not accepting new work","code":"draining"}`
	ts := stubWorker(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, workerBody)
	})
	rt, err := New(Config{Workers: []WorkerSpec{{Name: "w1", URL: ts.URL}}, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	rt.recordPlacement(&placement{id: "cs000001", kind: "session", key: "cs000001", worker: "w1"})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	payload := []byte(`{"events":[{"time":1,"type":"a"}]}`)
	resp, body := doJSON(t, http.MethodPost, rts.URL+"/v1/tag/sessions/cs000001/events", payload, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want the worker's own 7", got)
	}
	if string(body) != workerBody {
		t.Fatalf("body not relayed byte-for-byte:\ngot:  %s\nwant: %s", body, workerBody)
	}
}

// TestClusterTimeoutInFlightMigration: a worker stalled mid-migration
// times the proxied write out. The router answers with the retryable
// "worker_unavailable" after exactly ONE delivery attempt — a client
// retry, not a router retry, decides whether the batch is re-sent, so a
// write that may have landed is never silently duplicated.
func TestClusterTimeoutInFlightMigration(t *testing.T) {
	var deliveries atomic.Int64
	release := make(chan struct{})
	ts := stubWorker(t, func(w http.ResponseWriter, r *http.Request) {
		deliveries.Add(1)
		<-release // the worker is wedged exporting state
	})
	// Registered after stubWorker so it runs (LIFO) before ts.Close, which
	// waits for the wedged handler connection.
	t.Cleanup(func() { close(release) })
	rt, err := New(Config{
		Workers:        []WorkerSpec{{Name: "w1", URL: ts.URL}},
		RequestTimeout: 50 * time.Millisecond,
		Logger:         quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.recordPlacement(&placement{id: "cs000001", kind: "session", key: "cs000001", worker: "w1"})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	payload := []byte(`{"events":[{"time":1,"type":"a"}]}`)
	resp, body := doJSON(t, http.MethodPost, rts.URL+"/v1/tag/sessions/cs000001/events", payload, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != server.CodeWorkerUnavailable {
		t.Fatalf("code %q, want %q", e.Code, server.CodeWorkerUnavailable)
	}
	time.Sleep(150 * time.Millisecond) // would catch a background router retry
	if got := deliveries.Load(); got != 1 {
		t.Fatalf("worker saw %d deliveries of a non-idempotent write, want exactly 1", got)
	}
}

// TestClusterTenantQuotas: an over-quota tenant gets 429 with Retry-After
// while other tenants proceed, and both the rejection counter and the
// usage gauge surface in the aggregated /metrics.
func TestClusterTenantQuotas(t *testing.T) {
	tc := newTestCluster(t, 2, func(c *Config) {
		c.Quotas = map[string]Quota{"free": {MaxSessions: 1}}
	})
	free := map[string]string{TenantHeader: "free"}
	createClusterSession(t, tc.url(), free)

	resp, body := doJSON(t, http.MethodPost, tc.url()+"/v1/tag/sessions", []byte(testSessionSpec), free)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != server.CodeBusy {
		t.Fatalf("quota code %q, want %q", e.Code, server.CodeBusy)
	}

	// Another tenant is unaffected while free is saturated.
	createClusterSession(t, tc.url(), map[string]string{TenantHeader: "acme"})
	createClusterSession(t, tc.url(), nil) // anonymous tenant too

	resp, body = doJSON(t, http.MethodGet, tc.url()+"/metrics", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	metrics := string(body)
	for _, want := range []string{
		`tempo_counter_total{name="cluster.quota.rejected.sessions.free"} 1`,
		`tempod_tenant_usage{tenant="free",resource="sessions"} 1`,
		`tempod_tenant_usage{tenant="acme",resource="sessions"} 1`,
		"tempod_cluster_sessions 3",
		"tempod_cluster_epoch",
		`tempod_cluster_worker_up{worker="w1"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Closing the session frees the quota slot.
	resp, body = doJSON(t, http.MethodGet, tc.url()+"/cluster/workers", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers status %d: %s", resp.StatusCode, body)
	}
}

// TestClusterStealOnce: the router moves the newest queued job from a
// loaded worker to an idle one through steal → import → forget, and
// records the new placement.
func TestClusterStealOnce(t *testing.T) {
	bundle := `{"id":"j000009","record":{"version":2,"id":"j000009"}}`
	var donorForgot atomic.Bool
	donor := stubWorker(t, func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			io.WriteString(w, `{"status":"ok","sessions":0,"jobs_queued":3,"jobs_running":1,"uptime_seconds":1}`)
		case r.URL.Path == "/internal/jobs/steal":
			io.WriteString(w, bundle)
		case strings.HasSuffix(r.URL.Path, "/forget"):
			donorForgot.Store(true)
			io.WriteString(w, `{"id":"j000009","closed":true}`)
		default:
			http.Error(w, "unexpected "+r.URL.Path, http.StatusTeapot)
		}
	})
	var thiefImported atomic.Bool
	thief := stubWorker(t, func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			io.WriteString(w, `{"status":"ok","sessions":0,"jobs_queued":0,"jobs_running":0,"uptime_seconds":1}`)
		case "/internal/jobs/import":
			thiefImported.Store(true)
			io.WriteString(w, `{"id":"j000009","replayed":0}`)
		default:
			http.Error(w, "unexpected "+r.URL.Path, http.StatusTeapot)
		}
	})
	rt, err := New(Config{
		Workers: []WorkerSpec{{Name: "donor", URL: donor.URL}, {Name: "thief", URL: thief.URL}},
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := rt.StealOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !moved || !thiefImported.Load() || !donorForgot.Load() {
		t.Fatalf("steal incomplete: moved=%v imported=%v forgot=%v", moved, thiefImported.Load(), donorForgot.Load())
	}
	rt.mu.Lock()
	p := rt.place["j000009"]
	rt.mu.Unlock()
	if p == nil || p.worker != "thief" {
		t.Fatalf("stolen job placement %+v", p)
	}
	if got := rt.counters.Get("cluster.jobs.steals"); got != 1 {
		t.Fatalf("steals counter %d", got)
	}
}

// TestClusterStaleRouterFenced: after the cluster's epoch advances, a
// write stamped with the old epoch — a router instance that missed the
// rebalance — is fenced by the worker with the typed 409, while the
// current router keeps writing (it stamps the new epoch).
func TestClusterStaleRouterFenced(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	cr := createClusterSession(t, tc.url(), nil)
	tc.rt.bumpEpoch(context.Background())
	tc.rt.bumpEpoch(context.Background()) // epoch is now 3 on every worker

	tc.rt.mu.Lock()
	owner := tc.rt.place[cr.ID].worker
	tc.rt.mu.Unlock()
	var workerURL string
	for i, name := range tc.names {
		if name == owner {
			workerURL = tc.wts[i].URL
		}
	}
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	payload, _ := json.Marshal(server.EventsRequest{Events: []server.EventItem{{Time: t0, Type: "a"}}})

	// The stale owner's write is fenced...
	resp, body := doJSON(t, http.MethodPost, workerURL+"/v1/tag/sessions/"+cr.ID+"/events", payload,
		map[string]string{server.EpochHeader: "1"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale write status %d, want 409: %s", resp.StatusCode, body)
	}
	var e server.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != server.CodeStaleEpoch {
		t.Fatalf("stale write code %q, want %q", e.Code, server.CodeStaleEpoch)
	}
	// ...and the live router's identical write lands.
	feedClusterSession(t, tc.url(), cr.ID, server.EventItem{Time: t0, Type: "a"})
}

// TestClusterHealthDegradedAndDraining: /healthz aggregates worker health;
// a dead worker degrades (200, survivors keep serving), a cluster drain
// answers 503.
func TestClusterHealthDegradedAndDraining(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	resp, body := doJSON(t, http.MethodGet, tc.url()+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h ClusterHealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Workers) != 2 {
		t.Fatalf("health %+v", h)
	}

	tc.wts[1].Close()
	resp, body = doJSON(t, http.MethodGet, tc.url()+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status %d, want 200", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("status %q, want degraded", h.Status)
	}

	if err := tc.rt.Drain(context.Background(), false); err == nil {
		// The dead worker cannot quiesce; an error is expected. Either way
		// the router reports draining from now on.
		t.Log("drain succeeded despite a dead worker")
	}
	resp, body = doJSON(t, http.MethodGet, tc.url()+"/healthz", nil, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503: %s", resp.StatusCode, body)
	}
}
