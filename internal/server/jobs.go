package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/granularity"
	"repro/internal/mining"
)

// jobRecordVersion is the wire version of the on-disk job record.
const jobRecordVersion = 1

// jobRecord is the durable form of a mining job: the full request (so an
// unfinished job can be re-run or resumed after a restart), its state, and
// — for interrupted jobs — the mining.Checkpoint to resume from. The
// checkpoint's fingerprint re-binds it to the rebuilt problem and
// sequence, so stale progress is re-run from scratch rather than trusted.
type jobRecord struct {
	Version    int                `json:"version"`
	ID         string             `json:"id"`
	Request    JobCreateRequest   `json:"request"`
	State      string             `json:"state"`
	Error      string             `json:"error,omitempty"`
	Result     *cli.MineResult    `json:"result,omitempty"`
	Checkpoint *mining.Checkpoint `json:"checkpoint,omitempty"`
}

// job is one mining job. Its mutex guards the mutable fields; the request
// is immutable after submission.
type job struct {
	mu sync.Mutex

	id     string
	req    JobCreateRequest
	state  string
	errMsg string
	result *cli.MineResult
	cp     *mining.Checkpoint
}

// status snapshots the poll view.
func (j *job) status() *JobStatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobStatusResponse{ID: j.id, State: j.state, Error: j.errMsg, Result: j.result}
}

// jobStore owns the mining jobs: a bounded FIFO queue drained by a fixed
// worker pool, with every state transition persisted to <dir>/<id>.json.
type jobStore struct {
	mu             sync.Mutex
	cond           *sync.Cond
	dir            string
	sys            *granularity.System
	counters       *engine.Counters
	depth          int
	defaultWorkers int
	mode           engine.ExecMode
	jobs           map[string]*job
	queue          []*job
	running        int
	closed         bool
	nextID         int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newJobStore(dir string, sys *granularity.System, counters *engine.Counters, workers, depth, defaultScanWorkers int, mode engine.ExecMode) (*jobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := &jobStore{
		dir:            dir,
		sys:            sys,
		counters:       counters,
		depth:          depth,
		defaultWorkers: defaultScanWorkers,
		mode:           mode,
		jobs:           make(map[string]*job),
		nextID:         1,
		ctx:            ctx,
		cancel:         cancel,
	}
	st.cond = sync.NewCond(&st.mu)
	st.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go st.worker()
	}
	return st, nil
}

// submit enqueues a new job, persisting it as queued before returning the
// ID. A full queue rejects with errBusy; a draining store with errDraining.
func (st *jobStore) submit(req *JobCreateRequest) (*job, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, errDraining
	}
	if len(st.queue) >= st.depth {
		st.mu.Unlock()
		return nil, errBusy
	}
	id := fmt.Sprintf("j%06d", st.nextID)
	st.nextID++
	j := &job{id: id, req: *req, state: JobQueued}
	st.jobs[id] = j
	st.queue = append(st.queue, j)
	st.mu.Unlock()

	if err := st.persist(j); err != nil {
		st.mu.Lock()
		delete(st.jobs, id)
		for i, q := range st.queue {
			if q == j {
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				break
			}
		}
		st.mu.Unlock()
		return nil, err
	}
	st.counters.Count("server.jobs.submitted", 1)
	st.mu.Lock()
	st.cond.Signal()
	st.mu.Unlock()
	return j, nil
}

// get returns a job by ID.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// stats reports queue occupancy and per-state job counts.
func (st *jobStore) stats() (queued, running int, byState map[string]int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	byState = make(map[string]int)
	for _, j := range st.jobs {
		j.mu.Lock()
		byState[j.state]++
		j.mu.Unlock()
	}
	return len(st.queue), st.running, byState
}

// worker drains the queue until shutdown.
func (st *jobStore) worker() {
	defer st.wg.Done()
	for {
		st.mu.Lock()
		for len(st.queue) == 0 && !st.closed {
			st.cond.Wait()
		}
		if st.closed {
			// Leave still-queued jobs on disk for the next start.
			st.mu.Unlock()
			return
		}
		j := st.queue[0]
		st.queue = st.queue[1:]
		st.running++
		st.mu.Unlock()

		st.run(j)

		st.mu.Lock()
		st.running--
		st.mu.Unlock()
	}
}

// run executes one attempt of a job: build the problem, run (or resume)
// the optimized pipeline under the attempt's engine config, and persist
// the outcome. An interrupted attempt (budget, deadline or drain) parks
// the job as "interrupted" with its checkpoint; the next daemon start
// resumes it.
func (st *jobStore) run(j *job) {
	j.mu.Lock()
	j.state = JobRunning
	resume := j.cp
	req := j.req
	j.mu.Unlock()
	if err := st.persist(j); err != nil {
		st.fail(j, fmt.Errorf("persisting job: %w", err))
		return
	}

	seq := toSequence(req.Events)
	p, work, opt, err := req.Problem.Build(st.sys, seq)
	if err != nil {
		st.fail(j, err)
		return
	}
	opt.Workers = cli.ResolveWorkers(req.Workers, opt.Workers)
	if opt.Workers <= 0 {
		opt.Workers = st.defaultWorkers
	}
	ctx := st.ctx
	var cancel context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	opt.Engine = engine.Config{Ctx: ctx, Budget: req.Budget, Observer: st.counters, Mode: st.mode}

	var (
		ds    []mining.Discovery
		stats mining.Stats
		next  *mining.Checkpoint
	)
	if resume != nil {
		ds, stats, next, err = mining.Resume(st.sys, p, work, opt, resume)
		if err == nil || errors.Is(err, engine.ErrInterrupted) {
			st.counters.Count("server.jobs.resumed", 1)
		}
	} else {
		ds, stats, next, err = mining.OptimizedCheckpoint(st.sys, p, work, opt)
	}
	switch {
	case err == nil:
		res, berr := cli.BuildMineResult(st.sys, p, work, ds, stats, p.MinConfidence, req.Explain, st.mode)
		if berr != nil {
			st.fail(j, berr)
			return
		}
		j.mu.Lock()
		j.state = JobDone
		j.result = res
		j.cp = nil
		j.mu.Unlock()
		st.counters.Count("server.jobs.completed", 1)
	case next != nil:
		j.mu.Lock()
		j.state = JobInterrupted
		j.cp = next
		j.mu.Unlock()
		st.counters.Count("server.jobs.interrupted", 1)
	default:
		st.fail(j, err)
		return
	}
	if err := st.persist(j); err != nil {
		st.fail(j, fmt.Errorf("persisting job: %w", err))
	}
}

// fail marks a job failed and persists the terminal state (best effort).
func (st *jobStore) fail(j *job, err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.errMsg = err.Error()
	j.cp = nil
	j.mu.Unlock()
	st.counters.Count("server.jobs.failed", 1)
	st.persist(j)
}

// path is the job's record file.
func (st *jobStore) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// persist writes the job's record atomically.
func (st *jobStore) persist(j *job) error {
	j.mu.Lock()
	rec := jobRecord{
		Version:    jobRecordVersion,
		ID:         j.id,
		Request:    j.req,
		State:      j.state,
		Error:      j.errMsg,
		Result:     j.result,
		Checkpoint: j.cp,
	}
	j.mu.Unlock()
	return cli.SaveCheckpoint(st.path(rec.ID), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&rec)
	})
}

// restore reloads job records from disk. Finished jobs stay pollable;
// queued, interrupted and (crashed mid-)running jobs are re-enqueued in ID
// order — interrupted ones resume from their checkpoint. Unreadable
// records are skipped with a log line.
func (st *jobStore) restore(logger *log.Logger) error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := st.restoreOne(name); err != nil {
			logger.Printf("job record %s not restored: %v", name, err)
		}
	}
	return nil
}

func (st *jobStore) restoreOne(name string) error {
	f, err := os.Open(filepath.Join(st.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	var rec jobRecord
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	if rec.Version != jobRecordVersion {
		return fmt.Errorf("job record version %d, this build reads %d", rec.Version, jobRecordVersion)
	}
	switch rec.State {
	case JobQueued, JobRunning, JobDone, JobFailed, JobInterrupted:
	default:
		return fmt.Errorf("job record has unknown state %q", rec.State)
	}
	j := &job{id: rec.ID, req: rec.Request, state: rec.State, errMsg: rec.Error, result: rec.Result, cp: rec.Checkpoint}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.jobs[rec.ID]; dup {
		return fmt.Errorf("duplicate job id %s", rec.ID)
	}
	st.jobs[rec.ID] = j
	if n := idNumber(rec.ID, "j"); n >= st.nextID {
		st.nextID = n + 1
	}
	switch rec.State {
	case JobQueued, JobRunning, JobInterrupted:
		// A record still marked running means the previous daemon died
		// mid-attempt; its checkpoint (if any) is the last persisted one.
		j.state = JobQueued
		st.queue = append(st.queue, j)
		st.cond.Signal()
		st.counters.Count("server.jobs.requeued", 1)
	}
	return nil
}

// shutdown interrupts running attempts (their checkpoints persist as
// "interrupted"), stops the workers, and waits for them to exit. Queued
// jobs stay queued on disk and run on the next start.
func (st *jobStore) shutdown() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		st.wg.Wait()
		return
	}
	st.closed = true
	st.mu.Unlock()
	st.cancel()
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
	st.wg.Wait()
}
