package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/mining"
	"repro/internal/store"
)

// errNoJob reports a refresh against an unknown job ID (HTTP 404).
var errNoJob = errors.New("server: no such job")

// jobRecordVersion is the wire version of the on-disk job record. Version
// 2 added EventsLogged: the input sequence lives in the job's append-only
// event log (<id>.events/) and the record omits it. Version 1 records
// (inline events) still restore.
const jobRecordVersion = 2

// jobRecord is the durable form of a mining job: the full request (so an
// unfinished job can be re-run or resumed after a restart), its state, and
// — for interrupted jobs — the mining.Checkpoint to resume from. The
// checkpoint's fingerprint re-binds it to the rebuilt problem and
// sequence, so stale progress is re-run from scratch rather than trusted.
type jobRecord struct {
	Version int              `json:"version"`
	ID      string           `json:"id"`
	Request JobCreateRequest `json:"request"`
	// EventsLogged, when positive, is the number of input events stored in
	// the job's event log; Request.Events is omitted from the record then,
	// and restore reads the sequence back from the log (refusing a log
	// that is degraded or holds a different count).
	EventsLogged int64              `json:"events_logged,omitempty"`
	State        string             `json:"state"`
	Error        string             `json:"error,omitempty"`
	Result       *cli.MineResult    `json:"result,omitempty"`
	Checkpoint   *mining.Checkpoint `json:"checkpoint,omitempty"`
}

// job is one mining job. Its mutex guards the mutable fields; the request
// and eventsLogged are immutable after submission.
type job struct {
	mu sync.Mutex

	id           string
	req          JobCreateRequest
	eventsLogged int64
	state        string
	errMsg       string
	result       *cli.MineResult
	cp           *mining.Checkpoint
	// exported marks a job mid-migration (bundled for another worker, off
	// the queue): refresh refuses it until forget or reinstate resolves
	// the handover.
	exported bool
}

// status snapshots the poll view.
func (j *job) status() *JobStatusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobStatusResponse{ID: j.id, State: j.state, Error: j.errMsg, Result: j.result}
}

// sessionTailFunc reads a live session's durable event log for an
// attached incremental mining job: the records from index `from` onward
// (fromTime, when positive, is the timestamp at `from`, letting the read
// resume from the last consolidated tick instead of scanning the whole
// log) plus the log's current length — the attempt's high-water mark.
type sessionTailFunc func(id string, from, fromTime int64) ([]store.Rec, int64, error)

// jobStore owns the mining jobs: a bounded FIFO queue drained by a fixed
// worker pool, with every state transition persisted to <dir>/<id>.json.
type jobStore struct {
	mu             sync.Mutex
	cond           *sync.Cond
	dir            string
	sys            *granularity.System
	counters       *engine.Counters
	depth          int
	defaultWorkers int
	mode           engine.ExecMode
	noLog          bool
	sessionTail    sessionTailFunc
	jobs           map[string]*job
	queue          []*job
	running        int
	closed         bool
	nextID         int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func newJobStore(dir string, sys *granularity.System, counters *engine.Counters, workers, depth, defaultScanWorkers int, mode engine.ExecMode, noLog bool, sessionTail sessionTailFunc) (*jobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	st := &jobStore{
		dir:            dir,
		sys:            sys,
		counters:       counters,
		depth:          depth,
		defaultWorkers: defaultScanWorkers,
		mode:           mode,
		noLog:          noLog,
		sessionTail:    sessionTail,
		jobs:           make(map[string]*job),
		nextID:         1,
		ctx:            ctx,
		cancel:         cancel,
	}
	st.cond = sync.NewCond(&st.mu)
	st.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go st.worker()
	}
	return st, nil
}

// submit enqueues a new job, persisting it as queued before returning the
// ID. The input sequence goes to the job's event log first, so the durable
// record stays small and the events are checksummed on disk. A full queue
// rejects with errBusy; a draining store with errDraining. A non-empty
// assignID (a router placing the job on its hash ring) overrides the local
// j%06d scheme; it must be unused.
func (st *jobStore) submit(req *JobCreateRequest, assignID string) (*job, error) {
	if err := validAssignedID(assignID); err != nil {
		return nil, err
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, errDraining
	}
	if len(st.queue) >= st.depth {
		st.mu.Unlock()
		return nil, errBusy
	}
	id := assignID
	if id == "" {
		id = fmt.Sprintf("j%06d", st.nextID)
		st.nextID++
	} else if _, dup := st.jobs[id]; dup {
		st.mu.Unlock()
		return nil, fmt.Errorf("server: job %q already exists", id)
	}
	j := &job{id: id, req: *req, state: JobQueued}
	st.jobs[id] = j
	st.mu.Unlock()

	// The job is visible for polling but not yet queued: the log and the
	// record land before a worker can pick it up.
	if !st.noLog && len(req.Events) > 0 {
		if seq := toSequence(req.Events); seq.Validate() == nil {
			if n, err := st.writeEventLog(id, seq); err == nil {
				j.eventsLogged = n
			} else {
				// Fall back to an inline sequence in the record.
				st.counters.Count("server.jobs.log_degraded", 1)
			}
		}
	}
	if err := st.persist(j); err != nil {
		st.mu.Lock()
		delete(st.jobs, id)
		st.mu.Unlock()
		os.RemoveAll(st.logDir(id))
		return nil, err
	}
	st.counters.Count("server.jobs.submitted", 1)
	st.mu.Lock()
	st.queue = append(st.queue, j)
	st.cond.Signal()
	st.mu.Unlock()
	return j, nil
}

// logDir is the job's event-log directory.
func (st *jobStore) logDir(id string) string {
	return filepath.Join(st.dir, id+".events")
}

// logOptions configures a job event log. Job logs are written once at
// submit, so syncing is deferred to Close (which fsyncs the tail).
func (st *jobStore) logOptions() store.Options {
	return store.Options{
		System:          st.sys,
		Grans:           []string{"day"},
		SegmentMaxBytes: 1 << 20,
		SyncEvery:       1 << 20,
	}
}

// writeEventLog persists a job's input sequence to its own append-only
// log. Appends go in chunks so large sequences roll across segments.
func (st *jobStore) writeEventLog(id string, seq event.Sequence) (int64, error) {
	dir := st.logDir(id)
	os.RemoveAll(dir) // a crashed predecessor may have left a partial log
	lg, _, err := store.Open(dir, st.logOptions())
	if err != nil {
		return 0, err
	}
	const chunk = 512
	for i := 0; i < len(seq); i += chunk {
		end := min(i+chunk, len(seq))
		if _, err := lg.Append(seq[i:end]...); err != nil {
			lg.Close()
			os.RemoveAll(dir)
			return 0, err
		}
	}
	if err := lg.Close(); err != nil {
		os.RemoveAll(dir)
		return 0, err
	}
	return int64(len(seq)), nil
}

// readEventLog loads a job's input sequence back from its log, refusing a
// log that is missing, degraded, or holds a different number of events
// than the record claims — a job must re-run on its exact input or not at
// all.
func (st *jobStore) readEventLog(id string, want int64) (event.Sequence, store.Recovery, error) {
	dir := st.logDir(id)
	if _, err := os.Stat(dir); err != nil {
		return nil, store.Recovery{}, fmt.Errorf("event log missing: %w", err)
	}
	lg, rec, err := store.Open(dir, st.logOptions())
	if err != nil {
		return nil, rec, err
	}
	defer lg.Close()
	if deg, q := lg.Degraded(); deg {
		return nil, rec, fmt.Errorf("event log degraded (quarantined %s)", strings.Join(q, ", "))
	}
	seq, err := lg.Events()
	if err != nil {
		return nil, rec, err
	}
	if int64(len(seq)) != want {
		return nil, rec, fmt.Errorf("event log holds %d event(s), the record says %d", len(seq), want)
	}
	return seq, rec, nil
}

// removeEventLog drops a terminal job's event log. Callers persist the
// terminal record first: a crash between the two leaves a harmless orphan
// directory, never a live record pointing at a missing log.
func (st *jobStore) removeEventLog(j *job) {
	j.mu.Lock()
	had := j.eventsLogged > 0
	j.mu.Unlock()
	if had {
		os.RemoveAll(st.logDir(j.id))
	}
}

// get returns a job by ID.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// stats reports queue occupancy and per-state job counts.
func (st *jobStore) stats() (queued, running int, byState map[string]int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	byState = make(map[string]int)
	for _, j := range st.jobs {
		j.mu.Lock()
		byState[j.state]++
		j.mu.Unlock()
	}
	return len(st.queue), st.running, byState
}

// worker drains the queue until shutdown.
func (st *jobStore) worker() {
	defer st.wg.Done()
	for {
		st.mu.Lock()
		for len(st.queue) == 0 && !st.closed {
			st.cond.Wait()
		}
		if st.closed {
			// Leave still-queued jobs on disk for the next start.
			st.mu.Unlock()
			return
		}
		j := st.queue[0]
		st.queue = st.queue[1:]
		st.running++
		// Claim the job before releasing st.mu: export (cluster.go) checks
		// the state under st.mu, so it can never bundle a job a worker has
		// already picked up.
		j.mu.Lock()
		j.state = JobRunning
		j.mu.Unlock()
		st.mu.Unlock()

		st.run(j)

		st.mu.Lock()
		st.running--
		st.mu.Unlock()
	}
}

// run executes one attempt of a job: build the problem, run (or resume)
// the optimized pipeline under the attempt's engine config, and persist
// the outcome. An interrupted attempt (budget, deadline or drain) parks
// the job as "interrupted" with its checkpoint; the next daemon start
// resumes it.
func (st *jobStore) run(j *job) {
	j.mu.Lock()
	j.state = JobRunning
	resume := j.cp
	req := j.req
	j.mu.Unlock()
	if err := st.persist(j); err != nil {
		st.fail(j, fmt.Errorf("persisting job: %w", err))
		return
	}
	if req.SessionID != "" {
		st.runIncremental(j, req, resume)
		return
	}

	seq := toSequence(req.Events)
	p, work, opt, err := req.Problem.Build(st.sys, seq)
	if err != nil {
		st.fail(j, err)
		return
	}
	opt.Workers = cli.ResolveWorkers(req.Workers, opt.Workers)
	if opt.Workers <= 0 {
		opt.Workers = st.defaultWorkers
	}
	ctx := st.ctx
	var cancel context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	opt.Engine = engine.Config{Ctx: ctx, Budget: req.Budget, Observer: st.counters, Mode: st.mode}

	var (
		ds    []mining.Discovery
		stats mining.Stats
		next  *mining.Checkpoint
	)
	if resume != nil {
		ds, stats, next, err = mining.Resume(st.sys, p, work, opt, resume)
		if err == nil || errors.Is(err, engine.ErrInterrupted) {
			st.counters.Count("server.jobs.resumed", 1)
		}
	} else {
		ds, stats, next, err = mining.OptimizedCheckpoint(st.sys, p, work, opt)
	}
	switch {
	case err == nil:
		res, berr := cli.BuildMineResult(st.sys, p, work, ds, stats, p.MinConfidence, req.Explain, st.mode)
		if berr != nil {
			st.fail(j, berr)
			return
		}
		j.mu.Lock()
		j.state = JobDone
		j.result = res
		j.cp = nil
		j.mu.Unlock()
		st.counters.Count("server.jobs.completed", 1)
	case next != nil:
		j.mu.Lock()
		j.state = JobInterrupted
		j.cp = next
		j.mu.Unlock()
		st.counters.Count("server.jobs.interrupted", 1)
	default:
		st.fail(j, err)
		return
	}
	if err := st.persist(j); err != nil {
		st.fail(j, fmt.Errorf("persisting job: %w", err))
		return
	}
	j.mu.Lock()
	terminal := j.state == JobDone || j.state == JobFailed
	j.mu.Unlock()
	if terminal {
		st.removeEventLog(j)
	}
}

// runIncremental executes one attempt of a session-attached job: read the
// session log's suffix past the last consolidation point, feed it to the
// (restored) incremental miner, snapshot, and keep the new consolidation
// checkpoint on the done job — a later refresh or a restarted daemon
// re-mines only what the session appended since, never the whole log. A
// checkpoint the current log cannot honor (a high-water mark past the log
// end after a session log reset, or a changed problem) falls back to a
// full re-mine rather than trusting stale state.
func (st *jobStore) runIncremental(j *job, req JobCreateRequest, resume *mining.Checkpoint) {
	if st.sessionTail == nil {
		st.fail(j, fmt.Errorf("server: session-attached jobs are not wired to a session store"))
		return
	}
	p, _, opt, err := req.Problem.Build(st.sys, nil)
	if err != nil {
		st.fail(j, err)
		return
	}
	opt.Engine = engine.Config{Observer: st.counters, Mode: st.mode}

	from, fromTime := int64(0), int64(0)
	if resume != nil && resume.Stage == mining.StageIncremental && resume.Incremental != nil {
		from, fromTime = resume.Incremental.ReplayFrom, resume.Incremental.ReplayTime
	} else {
		resume = nil
	}
	recs, logLen, err := st.sessionTail(req.SessionID, from, fromTime)
	if err != nil {
		st.fail(j, err)
		return
	}
	var inc *mining.Incremental
	if resume != nil {
		inc, err = mining.RestoreIncremental(st.sys, p, opt, resume, logLen)
		if err != nil {
			st.counters.Count("server.jobs.incremental_restarted", 1)
			resume = nil
			if recs, logLen, err = st.sessionTail(req.SessionID, 0, 0); err != nil {
				st.fail(j, err)
				return
			}
		} else {
			st.counters.Count("server.jobs.incremental_resumed", 1)
		}
	}
	if resume == nil {
		if inc, err = mining.NewIncremental(st.sys, p, opt); err != nil {
			st.fail(j, err)
			return
		}
	}
	// Batches amortize the per-event consolidation sweep; chunking keeps
	// the reference frontier from outgrowing its steady-state size.
	const batch = 1024
	for i := 0; i < len(recs); i += batch {
		end := min(i+batch, len(recs))
		seq := make(event.Sequence, 0, end-i)
		for _, r := range recs[i:end] {
			seq = append(seq, r.Event)
		}
		if err := inc.AppendBatch(seq); err != nil {
			st.fail(j, fmt.Errorf("replaying session log records [%d, %d): %w", recs[i].Index, recs[end-1].Index+1, err))
			return
		}
	}
	ds, stats, err := inc.Snapshot()
	if err != nil {
		st.fail(j, err)
		return
	}
	res, err := cli.BuildMineResult(st.sys, p, nil, ds, stats, p.MinConfidence, 0, st.mode)
	if err != nil {
		st.fail(j, err)
		return
	}
	cp, err := inc.Checkpoint()
	if err != nil {
		st.fail(j, err)
		return
	}
	j.mu.Lock()
	j.state = JobDone
	j.result = res
	j.cp = cp // retained: the next refresh resumes from this high-water mark
	j.mu.Unlock()
	st.counters.Count("server.jobs.completed", 1)
	if err := st.persist(j); err != nil {
		st.fail(j, fmt.Errorf("persisting job: %w", err))
	}
}

// refresh re-enqueues a done session-attached job so its next attempt
// re-mines only the suffix the session appended since the job's last
// consolidation checkpoint. A job already queued or running is returned
// as-is (refresh is idempotent while an attempt is pending).
func (st *jobStore) refresh(id string) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, errNoJob
	}
	if st.closed {
		return nil, errDraining
	}
	j.mu.Lock()
	if j.exported {
		j.mu.Unlock()
		return nil, fmt.Errorf("server: job %s is mid-migration: %w", id, errMigrating)
	}
	if j.req.SessionID == "" {
		j.mu.Unlock()
		return nil, fmt.Errorf("server: job %s is not attached to a session", id)
	}
	if j.state == JobQueued || j.state == JobRunning {
		j.mu.Unlock()
		return j, nil
	}
	if len(st.queue) >= st.depth {
		j.mu.Unlock()
		return nil, errBusy
	}
	j.state = JobQueued
	j.errMsg = ""
	j.mu.Unlock()
	st.queue = append(st.queue, j)
	st.cond.Signal()
	st.counters.Count("server.jobs.refreshed", 1)
	return j, nil
}

// fail marks a job failed and persists the terminal state (best effort);
// the event log goes away only once the terminal record is durable.
func (st *jobStore) fail(j *job, err error) {
	j.mu.Lock()
	j.state = JobFailed
	j.errMsg = err.Error()
	j.cp = nil
	j.mu.Unlock()
	st.counters.Count("server.jobs.failed", 1)
	if st.persist(j) == nil {
		st.removeEventLog(j)
	}
}

// path is the job's record file.
func (st *jobStore) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// persist writes the job's record atomically. When the input sequence is
// in the event log, the record omits its inline copy.
func (st *jobStore) persist(j *job) error {
	j.mu.Lock()
	rec := jobRecord{
		Version:      jobRecordVersion,
		ID:           j.id,
		Request:      j.req,
		EventsLogged: j.eventsLogged,
		State:        j.state,
		Error:        j.errMsg,
		Result:       j.result,
		Checkpoint:   j.cp,
	}
	j.mu.Unlock()
	if rec.EventsLogged > 0 {
		rec.Request.Events = nil
	}
	return cli.SaveCheckpoint(st.path(rec.ID), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&rec)
	})
}

// restore reloads job records from disk. Finished jobs stay pollable;
// queued, interrupted and (crashed mid-)running jobs are re-enqueued in ID
// order — interrupted ones resume from their checkpoint, and their input
// sequences come back from the per-job event logs. Records that fail to
// decode are quarantined to <name>.corrupt; other unrestorable records are
// skipped with a log line. Orphaned event-log directories (their record
// gone) are swept away. It reports the aggregate log recovery and how many
// jobs came back.
func (st *jobStore) restore(logger *log.Logger) (agg store.Recovery, restored int, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return agg, 0, err
	}
	var names, logDirs []string
	for _, e := range entries {
		switch {
		case !e.IsDir() && strings.HasSuffix(e.Name(), ".json"):
			names = append(names, e.Name())
		case e.IsDir() && strings.HasSuffix(e.Name(), ".events"):
			logDirs = append(logDirs, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		rec, rerr := st.restoreOne(name)
		agg.Add(rec)
		if rerr != nil {
			logger.Printf("job record %s not restored: %v", name, rerr)
			continue
		}
		restored++
	}
	for _, d := range logDirs {
		id := strings.TrimSuffix(d, ".events")
		if _, serr := os.Stat(st.path(id)); serr == nil {
			continue
		}
		// Keep the log when its record was quarantined — it is evidence.
		if _, serr := os.Stat(st.path(id) + ".corrupt"); serr == nil {
			continue
		}
		os.RemoveAll(filepath.Join(st.dir, d))
	}
	return agg, restored, nil
}

func (st *jobStore) restoreOne(name string) (store.Recovery, error) {
	path := filepath.Join(st.dir, name)
	var rec jobRecord
	loaded, err := cli.LoadCheckpoint(path, func(r io.Reader) error {
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		return dec.Decode(&rec)
	})
	if err != nil {
		return store.Recovery{}, err
	}
	if !loaded {
		return store.Recovery{}, fmt.Errorf("record vanished during restore")
	}
	if rec.Version != 1 && rec.Version != jobRecordVersion {
		return store.Recovery{}, fmt.Errorf("job record version %d, this build reads %d", rec.Version, jobRecordVersion)
	}
	switch rec.State {
	case JobQueued, JobRunning, JobDone, JobFailed, JobInterrupted:
	default:
		return store.Recovery{}, fmt.Errorf("job record has unknown state %q", rec.State)
	}
	j := &job{id: rec.ID, req: rec.Request, eventsLogged: rec.EventsLogged, state: rec.State, errMsg: rec.Error, result: rec.Result, cp: rec.Checkpoint}
	var srec store.Recovery
	switch rec.State {
	case JobQueued, JobRunning, JobInterrupted:
		if rec.EventsLogged > 0 {
			seq, lrec, lerr := st.readEventLog(rec.ID, rec.EventsLogged)
			srec = lrec
			if lerr != nil {
				return srec, fmt.Errorf("reading event log: %w", lerr)
			}
			j.req.Events = toItems(seq)
		}
	default:
		// Terminal jobs no longer need their input; drop any leftover log
		// (the daemon may have crashed between persisting the terminal
		// record and removing the log).
		os.RemoveAll(st.logDir(rec.ID))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.jobs[rec.ID]; dup {
		return srec, fmt.Errorf("duplicate job id %s", rec.ID)
	}
	st.jobs[rec.ID] = j
	if n := idNumber(rec.ID, "j"); n >= st.nextID {
		st.nextID = n + 1
	}
	switch rec.State {
	case JobQueued, JobRunning, JobInterrupted:
		// A record still marked running means the previous daemon died
		// mid-attempt; its checkpoint (if any) is the last persisted one.
		j.state = JobQueued
		st.queue = append(st.queue, j)
		st.cond.Signal()
		st.counters.Count("server.jobs.requeued", 1)
	}
	return srec, nil
}

// shutdown interrupts running attempts (their checkpoints persist as
// "interrupted"), stops the workers, and waits for them to exit. Queued
// jobs stay queued on disk and run on the next start.
func (st *jobStore) shutdown() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		st.wg.Wait()
		return
	}
	st.closed = true
	st.mu.Unlock()
	st.cancel()
	st.mu.Lock()
	st.cond.Broadcast()
	st.mu.Unlock()
	st.wg.Wait()
}
