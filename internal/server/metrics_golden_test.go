package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/event"
)

// TestMetricsGolden locks the /metrics exposition shape. After a fixed
// request sequence touching every subsystem (a synchronous check, a full
// TAG session lifecycle, a mining job run to completion) the scrape must
// contain exactly the sample names, label sets, HELP/TYPE comments and
// ordering recorded in testdata/metrics.golden. Sample values are
// stripped before comparison — wall-clock stage timers and poll counts
// vary run to run — so the golden file pins names and ordering only,
// which is the contract dashboards and alert rules depend on.
//
// Regenerate after intentionally adding or renaming a counter with:
//
//	METRICS_GOLDEN_UPDATE=1 go test ./internal/server -run TestMetricsGolden
func TestMetricsGolden(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// One synchronous check.
	readBody(t, post(t, ts.URL+"/v1/check", checkRequestJSON(t, "")))

	// One session driven to acceptance, polled, then closed.
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	readBody(t, post(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0, Type: "a"}, EventItem{Time: t0 + 3600, Type: "b"})))
	readBody(t, get(t, ts.URL+"/v1/tag/sessions/"+cr.ID))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tag/sessions/"+cr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)

	// One mining job, polled until terminal.
	resp = post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, created.ID, func(js *JobStatusResponse) bool {
		return js.State == "done"
	})

	body := readBody(t, get(t, ts.URL+"/metrics"))
	got := stripMetricValues(t, body)

	const golden = "testdata/metrics.golden"
	if os.Getenv("METRICS_GOLDEN_UPDATE") == "1" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want := mustReadFile(t, golden)
	if !bytes.Equal(got, want) {
		t.Errorf("metrics exposition shape changed (names/ordering).\n"+
			"If intentional, rerun with METRICS_GOLDEN_UPDATE=1.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// stripMetricValues removes the trailing sample value from every
// non-comment exposition line, leaving `name{labels}`. Values never
// contain spaces (integers or fixed-notation floats), so cutting at the
// last space is exact even when label values contain spaces.
func stripMetricValues(t *testing.T, body []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		out.WriteString(line[:i])
		out.WriteByte('\n')
	}
	return out.Bytes()
}
