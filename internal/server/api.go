// Package server is tempod's HTTP/JSON service layer: synchronous
// consistency checks (POST /v1/check), stateful streaming TAG sessions
// (POST /v1/tag/sessions, POST /v1/tag/sessions/{id}/events) and
// asynchronous mining jobs (POST /v1/mining/jobs) on top of the solver
// substrate — engine budgets and deadlines per request, admission control
// with a bounded wait queue, checkpoint-backed crash recovery for
// sessions and jobs, and /healthz + /metrics observability.
package server

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/mining"
)

// MaxRequestBytes caps every request body; larger bodies are rejected
// before decoding.
const MaxRequestBytes = 32 << 20

// CheckRequest is the POST /v1/check body. The response body is the
// cli.CheckResult JSON — byte-identical to `tcgcheck -json` for the same
// spec and options.
type CheckRequest struct {
	// Spec is the event structure (core.Spec JSON form).
	Spec core.Spec `json:"spec"`
	// Exact also runs the exact bounded-horizon solver.
	Exact bool `json:"exact,omitempty"`
	// FromYear/ToYear bound the exact horizon (defaults 1996/1999, as the
	// CLI's -from/-to).
	FromYear int `json:"from_year,omitempty"`
	ToYear   int `json:"to_year,omitempty"`
	// TimeoutMS/Budget map onto the request's engine.Config: wall-clock
	// deadline in milliseconds and work-unit cap (0 = server defaults).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Budget    int64 `json:"budget,omitempty"`
}

// SessionCreateRequest is the POST /v1/tag/sessions body.
type SessionCreateRequest struct {
	// Spec is the complex event type (structure + assign).
	Spec core.Spec `json:"spec"`
	// Strict applies the paper's strict gap semantics.
	Strict bool `json:"strict,omitempty"`
	// MaxFrontier caps the deduplicated run set (0 = unlimited).
	MaxFrontier int `json:"max_frontier,omitempty"`
	// Budget bounds the session's total simulation work (0 = unbounded).
	Budget int64 `json:"budget,omitempty"`
}

// SessionCreateResponse acknowledges a new session.
type SessionCreateResponse struct {
	ID        string            `json:"id"`
	Automaton cli.AutomatonInfo `json:"automaton"`
}

// EventItem is one event of a session feed or a mining job sequence.
type EventItem struct {
	Time int64  `json:"time"`
	Type string `json:"type"`
}

// EventsRequest is the POST /v1/tag/sessions/{id}/events body. Events must
// carry positive timestamps in non-decreasing order, continuing from the
// session's last event.
type EventsRequest struct {
	Events []EventItem `json:"events"`
	// After, when present, makes the feed exactly-once: it must equal the
	// number of events the session has already consumed, or the whole batch
	// is refused with a 409 "feed_conflict" error naming the actual count.
	// A client that lost an ack (worker died mid-response) retries with the
	// same After and either lands the batch or learns it already did.
	After *int64 `json:"after,omitempty"`
}

// RejectInfo reports the first refused event of a feed batch: its index in
// the batch and the tag.RejectReason ("out-of-order", "interrupted",
// "sealed"). Events after it were not consumed.
type RejectInfo struct {
	Index  int    `json:"index"`
	Reason string `json:"reason"`
}

// SessionStateResponse is the session view returned by event feeds and
// status polls: the same cli.StreamResult the tagrun CLI renders.
type SessionStateResponse struct {
	ID       string            `json:"id"`
	Stream   *cli.StreamResult `json:"stream"`
	Rejected *RejectInfo       `json:"rejected,omitempty"`
}

// SessionCloseResponse acknowledges a DELETE.
type SessionCloseResponse struct {
	ID     string `json:"id"`
	Closed bool   `json:"closed"`
}

// JobCreateRequest is the POST /v1/mining/jobs body.
type JobCreateRequest struct {
	// Problem is the full event-discovery problem (mining.ProblemSpec).
	Problem mining.ProblemSpec `json:"problem"`
	// Events is the sequence to mine, in non-decreasing timestamp order.
	Events []EventItem `json:"events"`
	// SessionID attaches the job to a live streaming session instead of an
	// inline sequence: the job mines the session's durable event log
	// incrementally, keeps its consolidation checkpoint in the job record,
	// and POST /v1/mining/jobs/{id}/refresh re-mines only the suffix
	// appended since. Mutually exclusive with Events, Explain and a
	// granule_anchor problem.
	SessionID string `json:"session_id,omitempty"`
	// TimeoutMS/Budget bound each run attempt of the job (0 = unbounded).
	// An attempt cut short by its budget checkpoints and parks as
	// "interrupted"; a daemon restart resumes it with a fresh budget.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Budget    int64 `json:"budget,omitempty"`
	// Explain attaches up to N witness occurrences per discovery.
	Explain int `json:"explain,omitempty"`
	// Workers overrides the per-job scan fan-out (0 = problem spec, else
	// server default).
	Workers int `json:"workers,omitempty"`
}

// Job states.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobDone        = "done"
	JobFailed      = "failed"
	JobInterrupted = "interrupted"
)

// JobStatusResponse is the GET /v1/mining/jobs/{id} body. Result is
// present when State is "done" and is byte-identical (as a standalone
// document) to `miner -json` for the same problem and sequence.
type JobStatusResponse struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result *cli.MineResult `json:"result,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Code, when present,
// is a stable machine-readable discriminator (the human-readable reason
// stays in Error): "feed_conflict" (events.after mismatch), "stale_epoch"
// (a fenced write from a pre-rebalance owner), "migrating" (the session is
// mid-migration), "refresh_conflict" (a refresh the job cannot honor),
// "busy"/"draining" (admission), "worker_unavailable" (a router could not
// reach the owning worker; safe to retry).
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Error codes used in ErrorResponse.Code.
const (
	CodeFeedConflict      = "feed_conflict"
	CodeStaleEpoch        = "stale_epoch"
	CodeMigrating         = "migrating"
	CodeRefreshConflict   = "refresh_conflict"
	CodeBusy              = "busy"
	CodeDraining          = "draining"
	CodeWorkerUnavailable = "worker_unavailable"
)

// EpochHeader carries the router's ownership epoch on proxied writes; a
// worker whose adopted epoch is higher fences the request (409
// "stale_epoch") so a stale owner can never mutate migrated state.
const EpochHeader = "X-Tempo-Epoch"

// AssignIDHeader lets a router choose the ID of a session or job it
// places, so the ID alone determines ownership on the hash ring.
const AssignIDHeader = "X-Tempo-Assign-Id"

// SessionBundle is the migration form of one streaming session: the
// durable record exactly as persisted (checkpoint, fingerprint and exec
// schema included, so the importer re-validates it like a restart would)
// plus the session's event log. POST /internal/sessions/{id}/export
// returns it; POST /internal/sessions/import installs it.
type SessionBundle struct {
	ID string `json:"id"`
	// Record is the session's JSON record, byte-identical to the exporter's
	// on-disk copy.
	Record json.RawMessage `json:"record"`
	// Events is the session's durable event log (the records from LogStart
	// onward, in order).
	Events []EventItem `json:"events"`
}

// JobBundle is the migration form of one mining job: its record with the
// input sequence inlined (the importer re-logs it under its own data dir).
type JobBundle struct {
	ID     string          `json:"id"`
	Record json.RawMessage `json:"record"`
}

// EpochRequest is the POST /internal/epoch body.
type EpochRequest struct {
	Epoch int64 `json:"epoch"`
}

// EpochResponse reports a worker's adopted epoch.
type EpochResponse struct {
	Epoch int64 `json:"epoch"`
}

// ImportResponse acknowledges a session or job import. Replayed counts the
// log-tail events fed past the checkpoint during restore — for a session
// checkpointed every N events it is < N, never the log length (migration
// reuses the strided checkpoint, it does not re-simulate history).
type ImportResponse struct {
	ID       string `json:"id"`
	Replayed int64  `json:"replayed"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string `json:"status"` // "ok" or "draining"
	Sessions      int    `json:"sessions"`
	JobsQueued    int    `json:"jobs_queued"`
	JobsRunning   int    `json:"jobs_running"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// decodeStrict decodes one JSON document into v, rejecting unknown fields
// and trailing garbage. It never panics on arbitrary input.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decoding request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("server: trailing data after request body")
	}
	return nil
}

// DecodeCheckRequest reads a CheckRequest, validating the embedded spec.
func DecodeCheckRequest(r io.Reader) (*CheckRequest, *core.EventStructure, error) {
	var req CheckRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, nil, err
	}
	s, err := req.Spec.Structure()
	if err != nil {
		return nil, nil, err
	}
	if req.FromYear == 0 {
		req.FromYear = 1996
	}
	if req.ToYear == 0 {
		req.ToYear = 1999
	}
	if req.FromYear > req.ToYear {
		return nil, nil, fmt.Errorf("server: from_year %d exceeds to_year %d", req.FromYear, req.ToYear)
	}
	if req.TimeoutMS < 0 || req.Budget < 0 {
		return nil, nil, fmt.Errorf("server: timeout_ms and budget must be non-negative")
	}
	return &req, s, nil
}

// DecodeSessionCreateRequest reads a SessionCreateRequest, validating the
// embedded complex type.
func DecodeSessionCreateRequest(r io.Reader) (*SessionCreateRequest, *core.ComplexType, error) {
	var req SessionCreateRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, nil, err
	}
	ct, err := req.Spec.ComplexType()
	if err != nil {
		return nil, nil, err
	}
	if req.MaxFrontier < 0 || req.Budget < 0 {
		return nil, nil, fmt.Errorf("server: max_frontier and budget must be non-negative")
	}
	return &req, ct, nil
}

// DecodeEventsRequest reads an EventsRequest.
func DecodeEventsRequest(r io.Reader) (*EventsRequest, error) {
	var req EventsRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if len(req.Events) == 0 {
		return nil, fmt.Errorf("server: events must be non-empty")
	}
	if req.After != nil && *req.After < 0 {
		return nil, fmt.Errorf("server: after must be non-negative")
	}
	for i, e := range req.Events {
		if e.Type == "" {
			return nil, fmt.Errorf("server: event %d has no type", i)
		}
		if e.Time < 1 {
			return nil, fmt.Errorf("server: event %d has non-positive time %d", i, e.Time)
		}
	}
	return &req, nil
}

// DecodeJobCreateRequest reads a JobCreateRequest. The problem itself is
// validated when the job first runs (ProblemSpec.Build needs the sequence).
func DecodeJobCreateRequest(r io.Reader) (*JobCreateRequest, error) {
	var req JobCreateRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if req.TimeoutMS < 0 || req.Budget < 0 || req.Explain < 0 || req.Workers < 0 {
		return nil, fmt.Errorf("server: timeout_ms, budget, explain and workers must be non-negative")
	}
	if req.SessionID != "" {
		if len(req.Events) > 0 {
			return nil, fmt.Errorf("server: session_id and events are mutually exclusive")
		}
		if req.Explain > 0 {
			return nil, fmt.Errorf("server: explain requires an inline sequence, not session_id")
		}
		if req.Problem.GranuleAnchor != "" {
			return nil, fmt.Errorf("server: granule_anchor problems cannot attach to a session")
		}
	}
	return &req, nil
}

// toSequence converts wire events to an event.Sequence.
func toSequence(items []EventItem) event.Sequence {
	seq := make(event.Sequence, 0, len(items))
	for _, it := range items {
		seq = append(seq, event.Event{Time: it.Time, Type: event.Type(it.Type)})
	}
	return seq
}

// toItems converts a sequence to wire events.
func toItems(seq event.Sequence) []EventItem {
	items := make([]EventItem, 0, len(seq))
	for _, e := range seq {
		items = append(items, EventItem{Time: e.Time, Type: string(e.Type)})
	}
	return items
}
