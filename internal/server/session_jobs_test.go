package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/mining"
)

// sessionJobProblem mines the same shape the sessionSpec tracks: X1 ("b")
// within [0,2] hours of X0 ("a").
const sessionJobProblem = `{"structure":{"edges":[{"from":"X0","to":"X1","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"X0":"a","X1":"b"}},"min_confidence":0.4,"reference":"a"}`

// feedSession posts one batch of events to a session and fails on any
// non-200 or rejected event.
func feedSession(t *testing.T, baseURL, id string, items ...EventItem) {
	t.Helper()
	resp := post(t, baseURL+"/v1/tag/sessions/"+id+"/events", eventsBody(items...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var st SessionStateResponse
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rejected != nil {
		t.Fatalf("feed rejected: %+v", st.Rejected)
	}
}

// submitSessionJob creates a job attached to a session and returns its ID.
func submitSessionJob(t *testing.T, baseURL, sessionID string) string {
	t.Helper()
	body := []byte(`{"problem":` + sessionJobProblem + `,"session_id":"` + sessionID + `"}`)
	resp := post(t, baseURL+"/v1/mining/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	return created.ID
}

// pollSessionJobDone waits until the job is done and its result covers
// exactly `events` sequence events (a refresh flips the job back through
// queued/running, so "done" alone could still be the previous result).
func pollSessionJobDone(t *testing.T, baseURL, id string, events int) *JobStatusResponse {
	t.Helper()
	done := pollJob(t, baseURL, id, func(js *JobStatusResponse) bool {
		if js.State == JobFailed {
			return true
		}
		return js.State == JobDone && js.Result != nil && js.Result.Stats != nil && js.Result.Stats.Events == events
	})
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	return done
}

// expectedSessionJobBody batch-mines seq with the session job's problem and
// encodes it exactly as the job does, with TagRuns zeroed: the incremental
// miner's TAG-run accounting legitimately differs from a batch re-mine and
// is the one stat the equivalence proof excludes.
func expectedSessionJobBody(t *testing.T, srv *Server, seq event.Sequence) []byte {
	t.Helper()
	ps, err := mining.ReadProblemSpec(strings.NewReader(sessionJobProblem))
	if err != nil {
		t.Fatal(err)
	}
	p, _, opt, err := ps.Build(srv.sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Engine = engine.Config{Mode: engine.ExecCompiled}
	ds, stats, err := mining.Optimized(srv.sys, p, seq, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.BuildMineResult(srv.sys, p, nil, ds, stats, p.MinConfidence, 0, engine.ExecCompiled)
	if err != nil {
		t.Fatal(err)
	}
	res.Stats.TagRuns = 0
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// encodeSessionJobResult canonicalizes a job result for comparison against
// expectedSessionJobBody (TagRuns zeroed on both sides).
func encodeSessionJobResult(t *testing.T, js *JobStatusResponse) []byte {
	t.Helper()
	js.Result.Stats.TagRuns = 0
	var buf bytes.Buffer
	if err := js.Result.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionJobIncremental: a mining job attached to a live session mines
// the session's event log, matches a batch mine of the same events, and a
// refresh after more feeds re-mines only the appended suffix (proven by the
// resume counter) while still matching batch.
func TestSessionJobIncremental(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	seq := event.Sequence{
		{Time: t0, Type: "a"},
		{Time: t0 + 1800, Type: "b"},
		{Time: t0 + 7200, Type: "a"},
	}
	feedSession(t, ts.URL, cr.ID,
		EventItem{Time: seq[0].Time, Type: "a"},
		EventItem{Time: seq[1].Time, Type: "b"},
		EventItem{Time: seq[2].Time, Type: "a"})

	id := submitSessionJob(t, ts.URL, cr.ID)
	done := pollSessionJobDone(t, ts.URL, id, len(seq))
	if got, want := encodeSessionJobResult(t, done), expectedSessionJobBody(t, srv, seq); !bytes.Equal(got, want) {
		t.Fatalf("initial result mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Grow the session past acceptance (feeds keep landing in the log) and
	// refresh: the second attempt must resume from the consolidation
	// checkpoint, not restart from scratch.
	seq = append(seq,
		event.Event{Time: t0 + 9000, Type: "b"},
		event.Event{Time: t0 + 90000, Type: "a"},
		event.Event{Time: t0 + 91800, Type: "b"})
	feedSession(t, ts.URL, cr.ID,
		EventItem{Time: seq[3].Time, Type: "b"},
		EventItem{Time: seq[4].Time, Type: "a"},
		EventItem{Time: seq[5].Time, Type: "b"})

	resp := post(t, ts.URL+"/v1/mining/jobs/"+id+"/refresh", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("refresh status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	done = pollSessionJobDone(t, ts.URL, id, len(seq))
	if got, want := encodeSessionJobResult(t, done), expectedSessionJobBody(t, srv, seq); !bytes.Equal(got, want) {
		t.Fatalf("refreshed result mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got := srv.counters.Get("server.jobs.incremental_resumed"); got != 1 {
		t.Fatalf("incremental_resumed = %d, want 1 (refresh must resume, not restart)", got)
	}
	if got := srv.counters.Get("server.jobs.incremental_restarted"); got != 0 {
		t.Fatalf("incremental_restarted = %d, want 0", got)
	}

	// A refresh with nothing appended is a cheap no-op attempt that still
	// reports the same result.
	resp = post(t, ts.URL+"/v1/mining/jobs/"+id+"/refresh", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("idle refresh status %d", resp.StatusCode)
	}
	readBody(t, resp)
	done = pollSessionJobDone(t, ts.URL, id, len(seq))
	if got, want := encodeSessionJobResult(t, done), expectedSessionJobBody(t, srv, seq); !bytes.Equal(got, want) {
		t.Fatalf("idle refresh result mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSessionJobRestartResume: the consolidation checkpoint rides in the
// persisted job record, so a restarted daemon refreshes incrementally —
// resuming from the high-water mark instead of re-mining the whole log.
func TestSessionJobRestartResume(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cr := createSession(t, ts1.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	seq := event.Sequence{
		{Time: t0, Type: "a"},
		{Time: t0 + 1800, Type: "b"},
	}
	feedSession(t, ts1.URL, cr.ID,
		EventItem{Time: seq[0].Time, Type: "a"},
		EventItem{Time: seq[1].Time, Type: "b"})
	id := submitSessionJob(t, ts1.URL, cr.ID)
	pollSessionJobDone(t, ts1.URL, id, len(seq))
	ts1.Close()
	srv1.jobs.shutdown()

	srv2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.jobs.shutdown()

	// The restored job still serves its result without re-running.
	done := pollSessionJobDone(t, ts2.URL, id, len(seq))
	if got, want := encodeSessionJobResult(t, done), expectedSessionJobBody(t, srv2, seq); !bytes.Equal(got, want) {
		t.Fatalf("restored result mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	seq = append(seq, event.Event{Time: t0 + 86400, Type: "a"}, event.Event{Time: t0 + 88200, Type: "b"})
	feedSession(t, ts2.URL, cr.ID,
		EventItem{Time: seq[2].Time, Type: "a"},
		EventItem{Time: seq[3].Time, Type: "b"})
	resp := post(t, ts2.URL+"/v1/mining/jobs/"+id+"/refresh", nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("refresh status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	done = pollSessionJobDone(t, ts2.URL, id, len(seq))
	if got, want := encodeSessionJobResult(t, done), expectedSessionJobBody(t, srv2, seq); !bytes.Equal(got, want) {
		t.Fatalf("post-restart refresh mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if got := srv2.counters.Get("server.jobs.incremental_resumed"); got != 1 {
		t.Fatalf("incremental_resumed = %d, want 1 (restart must resume from the persisted checkpoint)", got)
	}
	if got := srv2.counters.Get("server.jobs.incremental_restarted"); got != 0 {
		t.Fatalf("incremental_restarted = %d, want 0", got)
	}
}

// TestSessionJobValidation covers the submit- and refresh-time rejections
// of the session-attached job surface.
func TestSessionJobValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)

	expectStatus := func(path string, body []byte, want int) {
		t.Helper()
		resp := post(t, ts.URL+path, body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s status %d, want %d: %s", path, resp.StatusCode, want, readBody(t, resp))
		}
		readBody(t, resp)
	}

	// session_id is mutually exclusive with an inline sequence and explain.
	expectStatus("/v1/mining/jobs",
		[]byte(`{"problem":`+sessionJobProblem+`,"session_id":"`+cr.ID+`","events":[{"time":1,"type":"a"}]}`),
		http.StatusBadRequest)
	expectStatus("/v1/mining/jobs",
		[]byte(`{"problem":`+sessionJobProblem+`,"session_id":"`+cr.ID+`","explain":1}`),
		http.StatusBadRequest)
	// Granule-anchored problems synthesize pseudo-references from the full
	// sequence and cannot stream.
	anchored := `{"structure":{"edges":[{"from":"X0","to":"X1","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"X1":"b"}},"min_confidence":0.4,"granule_anchor":"day"}`
	expectStatus("/v1/mining/jobs",
		[]byte(`{"problem":`+anchored+`,"session_id":"`+cr.ID+`"}`),
		http.StatusBadRequest)
	// Unknown sessions are rejected at submit time.
	expectStatus("/v1/mining/jobs",
		[]byte(`{"problem":`+sessionJobProblem+`,"session_id":"no-such-session"}`),
		http.StatusNotFound)

	// Refresh: unknown job is 404; a batch job cannot be refreshed.
	resp := post(t, ts.URL+"/v1/mining/jobs/j999999/refresh", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("refresh unknown job status %d", resp.StatusCode)
	}
	readBody(t, resp)

	resp = post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit status %d", resp.StatusCode)
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, created.ID, func(js *JobStatusResponse) bool {
		return js.State == JobDone || js.State == JobFailed
	})
	expectStatus("/v1/mining/jobs/"+created.ID+"/refresh", nil, http.StatusConflict)

	// A session that goes away under a done job fails the next refresh
	// attempt instead of serving stale results.
	seqT0 := event.At(1996, 7, 2, 9, 0, 0)
	cr2 := createSession(t, ts.URL, sessionSpec)
	feedSession(t, ts.URL, cr2.ID, EventItem{Time: seqT0, Type: "a"}, EventItem{Time: seqT0 + 60, Type: "b"})
	id := submitSessionJob(t, ts.URL, cr2.ID)
	pollSessionJobDone(t, ts.URL, id, 2)
	delResp, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tag/sessions/"+cr2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := http.DefaultClient.Do(delResp)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, dr)
	expectStatus("/v1/mining/jobs/"+id+"/refresh", nil, http.StatusAccepted)
	failed := pollJob(t, ts.URL, id, func(js *JobStatusResponse) bool {
		return js.State == JobFailed
	})
	if !strings.Contains(failed.Error, "session") {
		t.Fatalf("refresh after session close failed with %q, want a session error", failed.Error)
	}
}
