package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeCheckRequest: the HTTP request decoder must never panic on
// untrusted bodies; accepted requests must carry a validated structure and
// sane year bounds. Seeds wrap the core spec fuzz corpus in the request
// envelope plus raw envelope-level garbage.
func FuzzDecodeCheckRequest(f *testing.F) {
	for _, spec := range []string{
		`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":0,"gran":"day"}]}]}`,
		`{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"A":"x","B":"y"}}`,
		`{"variables":["A"],"edges":[]}`,
		`{"edges":[{"from":"A","to":"A","constraints":[{"min":0,"max":0,"gran":"day"}]}]}`,
		`{"edges":[{"from":"A","to":"B","constraints":[{"min":5,"max":1,"gran":""}]}]}`,
		`not json`,
	} {
		f.Add(`{"spec":` + spec + `}`)
		f.Add(`{"spec":` + spec + `,"exact":true,"from_year":1996,"to_year":1996}`)
	}
	f.Add(`{"spec":{"edges":[]},"budget":-1}`)
	f.Add(`{"spec":{"edges":[]}}{"trailing":true}`)
	f.Add(`{"unknown":1}`)
	f.Add(``)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, in string) {
		req, structure, err := DecodeCheckRequest(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		if structure == nil {
			t.Fatal("accepted request without a structure")
		}
		if req.FromYear > req.ToYear {
			t.Fatalf("accepted inverted year range %d..%d", req.FromYear, req.ToYear)
		}
	})
}
