package server

import (
	"context"
	"errors"
)

// errBusy rejects a request because the wait queue is full (HTTP 429);
// errDraining rejects it because the daemon is shutting down (HTTP 503).
var (
	errBusy     = errors.New("server: at capacity, wait queue full")
	errDraining = errors.New("server: draining, not accepting new work")
)

// limiter is the admission controller for synchronous solver requests:
// at most `inflight` requests run concurrently, at most `depth` more wait
// in a bounded queue, and everything beyond that is turned away
// immediately so load cannot build up unboundedly inside the daemon.
type limiter struct {
	slots chan struct{} // one token per running request
	queue chan struct{} // one token per waiting request
	drain chan struct{} // closed when the daemon starts draining
}

func newLimiter(inflight, depth int) *limiter {
	return &limiter{
		slots: make(chan struct{}, inflight),
		queue: make(chan struct{}, depth),
		drain: make(chan struct{}),
	}
}

// acquire admits one request, waiting in the bounded queue if all slots are
// busy. It fails fast with errBusy when the queue is full, and with
// errDraining when the daemon is shutting down (also while waiting).
func (l *limiter) acquire(ctx context.Context) error {
	if l.draining() {
		return errDraining
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case l.queue <- struct{}{}:
	default:
		return errBusy
	}
	defer func() { <-l.queue }()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-l.drain:
		return errDraining
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an acquired slot.
func (l *limiter) release() { <-l.slots }

// startDrain flips the limiter into drain mode (idempotent): subsequent and
// waiting acquires fail with errDraining; running requests are unaffected.
func (l *limiter) startDrain() {
	select {
	case <-l.drain:
	default:
		close(l.drain)
	}
}

// draining reports whether startDrain has been called.
func (l *limiter) draining() bool {
	select {
	case <-l.drain:
		return true
	default:
		return false
	}
}

// inflight and waiting report current occupancy (for /healthz and /metrics).
func (l *limiter) inflight() int { return len(l.slots) }
func (l *limiter) waiting() int  { return len(l.queue) }
