package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/granularity"
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// DataDir holds the durable state: DataDir/sessions/*.json and
	// DataDir/jobs/*.json.
	DataDir string
	// Grans is the CLI's -grans value: comma-separated periodic
	// granularity spec files extending the default system.
	Grans string
	// Defines are the CLI's -define values: name=expr calendar-expression
	// definitions registered after the Grans files.
	Defines []string
	// MaxInflight bounds concurrently running synchronous requests
	// (default 8); QueueDepth bounds how many more may wait (default 16).
	// Beyond that, requests are rejected with 429.
	MaxInflight int
	QueueDepth  int
	// JobWorkers sizes the mining worker pool (default 2); JobQueueDepth
	// bounds accepted-but-unstarted jobs (default 64).
	JobWorkers    int
	JobQueueDepth int
	// MaxSessions bounds live streaming sessions (default 1024).
	MaxSessions int
	// CheckpointEvery strides session checkpoints: with the event log on,
	// a session's JSON record is rewritten every Nth fed event instead of
	// on every batch (default 8). Recovery replays the log tail past the
	// last checkpoint, so the two together lose nothing.
	CheckpointEvery int
	// NoEventLog disables the durable per-session and per-job event logs
	// under DataDir, reverting to checkpoint-per-feed persistence and
	// inline job sequences. Existing logs are absorbed on the next start.
	NoEventLog bool
	// ScanWorkers is the default per-job TAG scan fan-out when neither
	// the request nor the problem spec sets one (default
	// cli.ResolveWorkers: GOMAXPROCS).
	ScanWorkers int
	// RetryAfter is the Retry-After hint on 429/503 responses, in seconds
	// (default 1).
	RetryAfter int
	// Exec selects the TAG execution core for every session and mining
	// job: engine.ExecCompiled (the default) or engine.ExecInterp, the
	// pre-compilation interpreter kept for one release as the
	// differential baseline. Session checkpoints restore across either
	// setting.
	Exec engine.ExecMode
	// System, when non-nil, is the granularity system to use instead of
	// loading one from Grans — embedders (tests, the differential oracle)
	// inject synthetic systems this way.
	System *granularity.System
	// Internal registers the /internal/* cluster endpoints: ownership
	// epochs, session/job export-import migration, work stealing, quiesce.
	// A worker tempod behind a cluster router runs with Internal set; a
	// standalone daemon leaves them off its surface.
	Internal bool
	// RequestShutdown, when non-nil, is invoked by POST /internal/shutdown
	// (worker mode) to trigger the process's graceful drain-and-exit path.
	RequestShutdown func()
	// Logger receives restore/drain diagnostics (default: standard log).
	Logger *log.Logger
}

func (c *Config) fill() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 1
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
}

// Server is the tempod daemon: admission-controlled synchronous checks,
// checkpointed streaming TAG sessions, and an asynchronous mining job
// pool, all observed through one engine.Counters served at /metrics.
type Server struct {
	cfg      Config
	sys      *granularity.System
	counters *engine.Counters
	lim      *limiter
	sessions *sessionStore
	jobs     *jobStore
	mux      *http.ServeMux
	start    time.Time
	wg       sync.WaitGroup // admitted synchronous requests

	// epoch is the adopted ownership epoch (worker mode): monotonically
	// raised by rebalances, it fences writes from stale owners. See
	// cluster.go.
	epoch atomic.Int64

	// holdCheck, when non-nil, is called inside POST /v1/check between
	// admission and the solve; the drain tests use it to park an
	// in-flight request at a known point.
	holdCheck func()
}

// New builds a Server, restoring checkpointed sessions and unfinished jobs
// from cfg.DataDir and starting the mining workers.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	sys := cfg.System
	if sys == nil {
		var err error
		if sys, err = cli.LoadSystem(cfg.Grans, cfg.Defines); err != nil {
			return nil, err
		}
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	counters := engine.NewCounters()
	sessions, err := newSessionStore(filepath.Join(cfg.DataDir, "sessions"), sys, counters, cfg.MaxSessions, cfg.Exec, cfg.CheckpointEvery, cfg.NoEventLog)
	if err != nil {
		return nil, err
	}
	sessRec, nSessions, replayed, err := sessions.restore(cfg.Logger)
	if err != nil {
		return nil, err
	}
	jobs, err := newJobStore(filepath.Join(cfg.DataDir, "jobs"), sys, counters, cfg.JobWorkers, cfg.JobQueueDepth, cfg.ScanWorkers, cfg.Exec, cfg.NoEventLog, sessions.tail)
	if err != nil {
		return nil, err
	}
	jobRec, nJobs, err := jobs.restore(cfg.Logger)
	if err != nil {
		jobs.shutdown()
		return nil, err
	}
	agg := sessRec
	agg.Add(jobRec)
	cfg.Logger.Printf("tempod recovery: restored %d session(s) (%d event(s) replayed from logs) and %d job(s); event logs: %s",
		nSessions, replayed, nJobs, agg.Summary())
	s := &Server{
		cfg:      cfg,
		sys:      sys,
		counters: counters,
		lim:      newLimiter(cfg.MaxInflight, cfg.QueueDepth),
		sessions: sessions,
		jobs:     jobs,
		start:    time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/check", s.handleCheck)
	s.mux.HandleFunc("POST /v1/tag/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/tag/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/tag/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("DELETE /v1/tag/sessions/{id}", s.handleSessionClose)
	s.mux.HandleFunc("POST /v1/mining/jobs", s.handleJobCreate)
	s.mux.HandleFunc("GET /v1/mining/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("POST /v1/mining/jobs/{id}/refresh", s.handleJobRefresh)
	if cfg.Internal {
		s.registerInternal()
	}
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Counters exposes the merged engine counters (the /metrics source).
func (s *Server) Counters() *engine.Counters { return s.counters }

// Drain performs the graceful shutdown sequence: refuse new synchronous
// work and job submissions (503), let admitted requests finish (bounded by
// ctx), interrupt running mining attempts so they checkpoint, stop the
// workers, and checkpoint every live session. Queued jobs and parked
// sessions restart cleanly from DataDir on the next New.
func (s *Server) Drain(ctx context.Context) error {
	s.lim.startDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = ctx.Err()
	}
	s.jobs.shutdown()
	if err := s.sessions.checkpointAll(); err != nil && waitErr == nil {
		waitErr = err
	}
	return waitErr
}

// admit runs the admission controller for one synchronous request and
// tracks it for drain. The caller must defer the returned release when
// admission succeeds.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if err := s.lim.acquire(r.Context()); err != nil {
		switch err {
		case errBusy:
			s.counters.Count("server.rejected.busy", 1)
			s.writeBackoffError(w, http.StatusTooManyRequests, err)
		case errDraining:
			s.counters.Count("server.rejected.draining", 1)
			s.writeBackoffError(w, http.StatusServiceUnavailable, err)
		default: // client gave up while queued
			s.writeError(w, 499, err)
		}
		return nil, false
	}
	s.wg.Add(1)
	return func() {
		s.lim.release()
		s.wg.Done()
	}, true
}

// engineConfig maps a request's deadline and budget onto the engine.
func (s *Server) engineConfig(ctx context.Context, timeoutMS, budget int64) (engine.Config, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if timeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
	}
	return engine.Config{Ctx: ctx, Budget: budget, Observer: s.counters}, cancel
}

// handleCheck runs a consistency check; the response body is byte-identical
// to `tcgcheck -json` for the same spec and options.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	if s.holdCheck != nil {
		s.holdCheck()
	}
	req, structure, err := DecodeCheckRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.counters.Count("server.requests.check", 1)
	eng, cancel := s.engineConfig(r.Context(), req.TimeoutMS, req.Budget)
	defer cancel()
	res, err := cli.RunCheck(s.sys, structure, cli.CheckOptions{
		Exact:    req.Exact,
		FromYear: req.FromYear,
		ToYear:   req.ToYear,
		Engine:   eng,
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeBody(w, http.StatusOK, res.EncodeJSON)
}

// handleSessionCreate opens a streaming TAG session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	req, ct, err := DecodeSessionCreateRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.sessions.create(req, ct, r.Header.Get(AssignIDHeader))
	if err != nil {
		if errors.Is(err, errBusy) {
			s.counters.Count("server.rejected.busy", 1)
			s.writeBackoffError(w, http.StatusTooManyRequests, err)
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, SessionCreateResponse{ID: sess.id, Automaton: cli.AutomatonInfoOf(sess.auto)})
}

// handleSessionEvents feeds a batch of events to a session. Conflict
// responses carry machine-readable codes: "feed_conflict" (the after
// guard mismatched — the batch may already have landed) and "migrating"
// (the session is sealed mid-handover; retry against the new owner).
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no session %q", r.PathValue("id")))
		return
	}
	req, err := DecodeEventsRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.sessions.feed(sess, req.Events, req.After)
	switch {
	case err == nil:
	case errors.Is(err, errFeedConflict):
		s.writeCodedError(w, http.StatusConflict, CodeFeedConflict, err)
		return
	case errors.Is(err, errMigrating):
		s.writeCodedError(w, http.StatusConflict, CodeMigrating, err)
		return
	default:
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSessionGet polls a session without feeding.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no session %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, s.sessions.state(sess))
}

// handleSessionClose deletes a session and its checkpoint.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	id := r.PathValue("id")
	if !s.sessions.close(id) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no session %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, SessionCloseResponse{ID: id, Closed: true})
}

// handleJobCreate submits an asynchronous mining job.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	if s.lim.draining() {
		s.counters.Count("server.rejected.draining", 1)
		s.writeBackoffError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	req, err := DecodeJobCreateRequest(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject malformed sequences, unbuildable problems and dead sessions at
	// submit time, not on the worker.
	if req.SessionID != "" {
		if _, ok := s.sessions.get(req.SessionID); !ok {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no session %q", req.SessionID))
			return
		}
		if _, _, _, err := req.Problem.Build(s.sys, nil); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		seq := toSequence(req.Events)
		if err := seq.Validate(); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if _, _, _, err := req.Problem.Build(s.sys, seq); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	j, err := s.jobs.submit(req, r.Header.Get(AssignIDHeader))
	switch err {
	case nil:
	case errBusy:
		s.counters.Count("server.rejected.busy", 1)
		s.writeBackoffError(w, http.StatusTooManyRequests, err)
		return
	case errDraining:
		s.counters.Count("server.rejected.draining", 1)
		s.writeBackoffError(w, http.StatusServiceUnavailable, err)
		return
	default:
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobRefresh re-enqueues a done session-attached job: the next
// attempt re-mines only the suffix the session appended since the job's
// last consolidation checkpoint. A refresh the job cannot honor (detached
// job, failed job, exported job) answers 409 with a structured
// "refresh_conflict" error body.
func (s *Server) handleJobRefresh(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	if s.lim.draining() {
		s.counters.Count("server.rejected.draining", 1)
		s.writeBackoffError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	j, err := s.jobs.refresh(r.PathValue("id"))
	switch {
	case err == nil:
	case errors.Is(err, errNoJob):
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q", r.PathValue("id")))
		return
	case errors.Is(err, errBusy):
		s.counters.Count("server.rejected.busy", 1)
		s.writeBackoffError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errDraining):
		s.counters.Count("server.rejected.draining", 1)
		s.writeBackoffError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errMigrating):
		s.writeCodedError(w, http.StatusConflict, CodeMigrating, err)
		return
	default:
		s.writeCodedError(w, http.StatusConflict, CodeRefreshConflict, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobGet polls a job.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, j.status())
}

// handleHealth reports liveness; a draining daemon answers 503 so load
// balancers stop routing to it.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	queued, running, _ := s.jobs.stats()
	h := HealthResponse{
		Status:        "ok",
		Sessions:      s.sessions.count(),
		JobsQueued:    queued,
		JobsRunning:   running,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	code := http.StatusOK
	if s.lim.draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// handleMetrics serves the merged engine counters in Prometheus text
// exposition, followed by the server's own gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := engine.WriteMetricsText(w, s.counters); err != nil {
		return
	}
	queued, running, byState := s.jobs.stats()
	fmt.Fprintf(w, "# HELP tempod_sessions_active Live streaming TAG sessions.\n")
	fmt.Fprintf(w, "# TYPE tempod_sessions_active gauge\n")
	fmt.Fprintf(w, "tempod_sessions_active %d\n", s.sessions.count())
	fmt.Fprintf(w, "# HELP tempod_inflight Synchronous requests currently running (queued: waiting for a slot).\n")
	fmt.Fprintf(w, "# TYPE tempod_inflight gauge\n")
	fmt.Fprintf(w, "tempod_inflight %d\n", s.lim.inflight())
	fmt.Fprintf(w, "tempod_inflight_queued %d\n", s.lim.waiting())
	fmt.Fprintf(w, "# HELP tempod_jobs Mining jobs by state.\n")
	fmt.Fprintf(w, "# TYPE tempod_jobs gauge\n")
	states := make([]string, 0, len(byState))
	for st := range byState {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "tempod_jobs{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintf(w, "tempod_jobs_queue_depth %d\n", queued)
	fmt.Fprintf(w, "tempod_jobs_running %d\n", running)
	fmt.Fprintf(w, "# HELP tempod_draining Whether the daemon is draining.\n")
	fmt.Fprintf(w, "# TYPE tempod_draining gauge\n")
	fmt.Fprintf(w, "tempod_draining %d\n", boolGauge(s.lim.draining()))
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writeBody writes a response produced by one of the shared cli encoders,
// preserving its exact bytes.
func (s *Server) writeBody(w http.ResponseWriter, code int, encode func(io.Writer) error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	encode(w)
}

// writeJSON writes v in the canonical encoding (two-space indent, trailing
// newline — the same convention the CLI -json outputs use).
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes an ErrorResponse.
func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// writeCodedError writes an ErrorResponse carrying a machine-readable
// discriminator alongside the human-readable reason.
func (s *Server) writeCodedError(w http.ResponseWriter, code int, errCode string, err error) {
	s.writeJSON(w, code, ErrorResponse{Error: err.Error(), Code: errCode})
}

// writeBackoffError is writeError plus a Retry-After hint (429/503) and
// the matching "busy"/"draining" code.
func (s *Server) writeBackoffError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
	errCode := CodeBusy
	if code == http.StatusServiceUnavailable {
		errCode = CodeDraining
	}
	s.writeCodedError(w, code, errCode, err)
}
