// Cluster worker mode: the /internal/* surface a router tempod drives.
//
// A worker owns a shard of sessions and mining jobs placed on it by the
// router's consistent-hash ring. Three protocols live here:
//
//   - Ownership epochs. Every rebalance bumps a monotonically increasing
//     epoch; proxied writes carry it in X-Tempo-Epoch. A worker adopts any
//     higher epoch it sees and fences writes stamped with a lower one
//     (409 "stale_epoch"), so a router instance that missed a rebalance —
//     or a retry that raced one — can never mutate state whose ownership
//     has moved.
//
//   - Rebalance-by-checkpoint. Moving a session is export → import →
//     forget: export seals the session (feeds refused with a retryable
//     "migrating" error), persists a covering checkpoint when no event log
//     backs the tail, and bundles the on-disk record byte-for-byte with
//     the log's events; import lands both under the new owner's data dir
//     and runs the ordinary restart-restore path, so the checkpoint's
//     fingerprint and exec-schema validation guard the handover exactly
//     like a crash recovery would; forget deletes the sealed original only
//     after the import succeeded. A failed import unseals instead —
//     nothing is lost in any interleaving. Jobs move the same way with the
//     input sequence inlined in the bundle.
//
//   - Work stealing. An idle worker's router steals the most recently
//     queued non-session-pinned job from a loaded peer (steal = dequeue +
//     export) and injects it locally; reinstate undoes a steal whose
//     inject failed.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/cli"
	"repro/internal/store"
)

// Typed sentinels for the cluster protocol; handlers map them to
// machine-readable ErrorResponse codes.
var (
	// errStaleEpoch fences a write stamped with an epoch behind the
	// worker's adopted one (a pre-rebalance owner still routing writes).
	errStaleEpoch = errors.New("stale epoch")
	// errMigrating refuses mutation of a sealed session or exported job
	// until the migration completes (forget) or rolls back (unseal).
	errMigrating = errors.New("migrating")
	// errFeedConflict reports an events.after exactly-once guard mismatch.
	errFeedConflict = errors.New("feed conflict")
	// errNoSession reports an unknown session ID on the internal surface.
	errNoSession = errors.New("no such session")
)

// validAssignedID vets a router-assigned session/job ID (AssignIDHeader):
// short, filesystem- and URL-safe. Empty means "generate locally".
func validAssignedID(id string) error {
	if id == "" {
		return nil
	}
	if len(id) > 64 {
		return fmt.Errorf("server: assigned id %q longer than 64 bytes", id)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("server: assigned id %q has invalid character %q", id, c)
		}
	}
	return nil
}

// Epoch returns the worker's adopted ownership epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// adoptEpoch raises the adopted epoch to e when e is ahead.
func (s *Server) adoptEpoch(e int64) {
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// fenceEpoch enforces the ownership-epoch protocol on one mutating
// request: a missing header passes (standalone clients), a higher epoch is
// adopted (first write after a rebalance, or after a worker restart lost
// the in-memory epoch), and a lower one is refused with 409 "stale_epoch".
// It reports whether the request may proceed.
func (s *Server) fenceEpoch(w http.ResponseWriter, r *http.Request) bool {
	hdr := r.Header.Get(EpochHeader)
	if hdr == "" {
		return true
	}
	e, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil || e < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: malformed %s header %q", EpochHeader, hdr))
		return false
	}
	s.adoptEpoch(e)
	if cur := s.epoch.Load(); e < cur {
		s.counters.Count("server.rejected.stale_epoch", 1)
		s.writeCodedError(w, http.StatusConflict, CodeStaleEpoch,
			fmt.Errorf("server: request epoch %d is behind adopted epoch %d: %w", e, cur, errStaleEpoch))
		return false
	}
	return true
}

// registerInternal mounts the worker-mode endpoints on the mux.
func (s *Server) registerInternal() {
	s.mux.HandleFunc("GET /internal/epoch", s.handleEpochGet)
	s.mux.HandleFunc("POST /internal/epoch", s.handleEpochSet)
	s.mux.HandleFunc("POST /internal/sessions/{id}/export", s.handleSessionExport)
	s.mux.HandleFunc("POST /internal/sessions/import", s.handleSessionImport)
	s.mux.HandleFunc("POST /internal/sessions/{id}/forget", s.handleSessionForget)
	s.mux.HandleFunc("POST /internal/sessions/{id}/unseal", s.handleSessionUnseal)
	s.mux.HandleFunc("POST /internal/jobs/steal", s.handleJobSteal)
	s.mux.HandleFunc("POST /internal/jobs/{id}/export", s.handleJobExport)
	s.mux.HandleFunc("POST /internal/jobs/import", s.handleJobImport)
	s.mux.HandleFunc("POST /internal/jobs/{id}/forget", s.handleJobForget)
	s.mux.HandleFunc("POST /internal/jobs/{id}/reinstate", s.handleJobReinstate)
	s.mux.HandleFunc("POST /internal/quiesce", s.handleQuiesce)
	s.mux.HandleFunc("POST /internal/shutdown", s.handleShutdown)
}

func (s *Server) handleEpochGet(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, EpochResponse{Epoch: s.epoch.Load()})
}

// handleEpochSet adopts the router's epoch (monotone: a lower value is a
// no-op, not an error) and answers with the worker's current one.
func (s *Server) handleEpochSet(w http.ResponseWriter, r *http.Request) {
	var req EpochRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxRequestBytes), &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Epoch < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: epoch must be non-negative"))
		return
	}
	s.adoptEpoch(req.Epoch)
	s.writeJSON(w, http.StatusOK, EpochResponse{Epoch: s.epoch.Load()})
}

func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	b, err := s.sessions.export(r.PathValue("id"))
	switch {
	case err == nil:
	case errors.Is(err, errNoSession):
		s.writeError(w, http.StatusNotFound, err)
		return
	default:
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, b)
}

func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	var b SessionBundle
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxRequestBytes), &b); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	replayed, err := s.sessions.importSession(&b, s.cfg.Logger)
	switch {
	case err == nil:
	case errors.Is(err, errBusy):
		s.counters.Count("server.rejected.busy", 1)
		s.writeBackoffError(w, http.StatusTooManyRequests, err)
		return
	default:
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ImportResponse{ID: b.ID, Replayed: replayed})
}

func (s *Server) handleSessionForget(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	id := r.PathValue("id")
	if !s.sessions.close(id) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no session %q: %w", id, errNoSession))
		return
	}
	s.counters.Count("server.sessions.forgotten", 1)
	s.writeJSON(w, http.StatusOK, SessionCloseResponse{ID: id, Closed: true})
}

func (s *Server) handleSessionUnseal(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := s.sessions.unseal(id); err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, SessionCloseResponse{ID: id, Closed: false})
}

func (s *Server) handleJobSteal(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	b, err := s.jobs.steal()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	if b == nil {
		// Nothing stealable: an empty bundle, not an error.
		s.writeJSON(w, http.StatusOK, JobBundle{})
		return
	}
	s.writeJSON(w, http.StatusOK, b)
}

func (s *Server) handleJobExport(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	b, err := s.jobs.export(r.PathValue("id"))
	switch {
	case err == nil:
	case errors.Is(err, errNoJob):
		s.writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, errBusy):
		s.counters.Count("server.rejected.busy", 1)
		s.writeBackoffError(w, http.StatusTooManyRequests, err)
		return
	default:
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, b)
}

func (s *Server) handleJobImport(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	var b JobBundle
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxRequestBytes), &b); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.jobs.inject(&b, func(id string) bool {
		_, ok := s.sessions.get(id)
		return ok
	})
	switch {
	case err == nil:
	case errors.Is(err, errBusy):
		s.counters.Count("server.rejected.busy", 1)
		s.writeBackoffError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, errDraining):
		s.counters.Count("server.rejected.draining", 1)
		s.writeBackoffError(w, http.StatusServiceUnavailable, err)
		return
	default:
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ImportResponse{ID: j.id})
}

func (s *Server) handleJobForget(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := s.jobs.forget(id); err != nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q: %w", id, err))
		return
	}
	s.writeJSON(w, http.StatusOK, SessionCloseResponse{ID: id, Closed: true})
}

func (s *Server) handleJobReinstate(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := s.jobs.reinstate(id); err != nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q: %w", id, err))
		return
	}
	s.writeJSON(w, http.StatusOK, SessionCloseResponse{ID: id, Closed: false})
}

// handleQuiesce drains the worker in place: refuse new work, park running
// mining attempts with their checkpoints, checkpoint every session — but
// keep serving HTTP so the router can export the parked state afterwards.
// The cluster-wide drain walks workers with quiesce-then-shutdown.
func (s *Server) handleQuiesce(w http.ResponseWriter, r *http.Request) {
	if !s.fenceEpoch(w, r) {
		return
	}
	timeout := 30 * time.Second
	if q := r.URL.Query().Get("timeout_ms"); q != "" {
		ms, err := strconv.ParseInt(q, 10, 64)
		if err != nil || ms <= 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: malformed timeout_ms %q", q))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "draining",
		Sessions:      s.sessions.count(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

// handleShutdown asks the process to exit through its graceful drain path.
// The 200 goes out before the callback fires so the router sees the ack.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if s.cfg.RequestShutdown == nil {
		s.writeError(w, http.StatusNotImplemented, fmt.Errorf("server: shutdown is not wired on this daemon"))
		return
	}
	s.writeJSON(w, http.StatusOK, HealthResponse{Status: "draining"})
	go s.cfg.RequestShutdown()
}

// --- session migration (sessionStore) ---

// export seals a session and bundles its durable state for a handover: the
// on-disk record byte-for-byte (so the importer re-validates fingerprint
// and exec schema exactly like a restart) plus the event log's records.
// With a live log the record may trail the log by up to CheckpointEvery-1
// events — the importer replays that tail, which is the point: migration
// reuses the strided checkpoint instead of re-simulating history. Without
// one, a covering checkpoint is persisted first. Export is idempotent; a
// sealed session stays sealed until forget (close) or unseal.
func (st *sessionStore) export(id string) (*SessionBundle, error) {
	s, ok := st.get(id)
	if !ok {
		return nil, fmt.Errorf("server: no session %q: %w", id, errNoSession)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: session %s is closed", id)
	}
	wasSealed := s.sealed
	s.sealed = true
	var items []EventItem
	if s.log != nil {
		recs, err := s.log.ExportRange(0, s.log.Len())
		if err != nil {
			s.sealed = wasSealed
			return nil, err
		}
		items = make([]EventItem, 0, len(recs))
		for _, r := range recs {
			items = append(items, EventItem{Time: r.Event.Time, Type: string(r.Event.Type)})
		}
	} else if s.sinceCkpt > 0 {
		// No log backs the tail: the record itself must cover every
		// acknowledged event before it can stand for the session elsewhere.
		if err := st.persist(s); err != nil {
			s.sealed = wasSealed
			return nil, err
		}
	}
	raw, err := os.ReadFile(st.path(id))
	if err != nil {
		s.sealed = wasSealed
		return nil, err
	}
	st.counters.Count("server.sessions.exported", 1)
	return &SessionBundle{ID: id, Record: json.RawMessage(raw), Events: items}, nil
}

// unseal returns a sealed session to service after a failed handover.
func (st *sessionStore) unseal(id string) error {
	s, ok := st.get(id)
	if !ok {
		return fmt.Errorf("server: no session %q: %w", id, errNoSession)
	}
	s.mu.Lock()
	s.sealed = false
	s.mu.Unlock()
	return nil
}

// importSession installs an exported bundle under this store's data dir —
// record and event log land exactly where a restart would look for them,
// then the ordinary restore path rebuilds the runner (fingerprint +
// exec-schema validation included) and replays the log tail past the
// checkpoint. It reports how many tail events were replayed. Any failure
// removes the partial state; the exporter's sealed copy stays authoritative
// until the router calls forget.
func (st *sessionStore) importSession(b *SessionBundle, logger *log.Logger) (int64, error) {
	if b.ID == "" || len(b.Record) == 0 {
		return 0, fmt.Errorf("server: session bundle needs an id and a record")
	}
	if err := validAssignedID(b.ID); err != nil {
		return 0, err
	}
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b.Record, &probe); err != nil {
		return 0, fmt.Errorf("server: session bundle record: %w", err)
	}
	if probe.ID != b.ID {
		return 0, fmt.Errorf("server: session bundle %q holds the record of %q", b.ID, probe.ID)
	}
	st.mu.Lock()
	if _, dup := st.sessions[b.ID]; dup {
		st.mu.Unlock()
		return 0, fmt.Errorf("server: session %q already exists", b.ID)
	}
	if len(st.sessions) >= st.max {
		st.mu.Unlock()
		return 0, fmt.Errorf("server: session limit (%d) reached: %w", st.max, errBusy)
	}
	st.mu.Unlock()
	path := st.path(b.ID)
	if _, err := os.Stat(path); err == nil {
		return 0, fmt.Errorf("server: session record %s already on disk", b.ID)
	}
	logDir := st.logDir(b.ID)
	os.RemoveAll(logDir) // a crashed predecessor may have left a partial log
	if len(b.Events) > 0 {
		lg, _, err := store.Open(logDir, st.logOptions())
		if err != nil {
			return 0, err
		}
		seq := toSequence(b.Events)
		const chunk = 512
		for i := 0; i < len(seq); i += chunk {
			end := min(i+chunk, len(seq))
			if _, err := lg.Append(seq[i:end]...); err != nil {
				lg.Close()
				os.RemoveAll(logDir)
				return 0, err
			}
		}
		if err := lg.Close(); err != nil {
			os.RemoveAll(logDir)
			return 0, err
		}
	}
	if err := cli.SaveCheckpoint(path, func(w io.Writer) error {
		_, werr := w.Write(b.Record)
		return werr
	}); err != nil {
		os.RemoveAll(logDir)
		return 0, err
	}
	_, replayed, err := st.restoreOne(b.ID+".json", logger)
	if err != nil {
		os.Remove(path)
		os.RemoveAll(logDir)
		return 0, fmt.Errorf("server: restoring imported session %s: %w", b.ID, err)
	}
	st.counters.Count("server.sessions.imported", 1)
	return replayed, nil
}

// --- job migration (jobStore) ---

// bundleLocked builds a job's migration bundle and marks it exported;
// callers hold st.mu and have already removed the job from the queue. The
// record inlines the input sequence (EventsLogged 0) so the importer can
// re-log it under its own data dir.
func (st *jobStore) bundleLocked(j *job) (*JobBundle, error) {
	j.mu.Lock()
	rec := jobRecord{
		Version:    jobRecordVersion,
		ID:         j.id,
		Request:    j.req,
		State:      j.state,
		Error:      j.errMsg,
		Result:     j.result,
		Checkpoint: j.cp,
	}
	j.exported = true
	j.mu.Unlock()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rec); err != nil {
		return nil, err
	}
	st.counters.Count("server.jobs.exported", 1)
	return &JobBundle{ID: rec.ID, Record: buf.Bytes()}, nil
}

// dequeueLocked removes j from the pending queue if present.
func (st *jobStore) dequeueLocked(j *job) {
	for i, q := range st.queue {
		if q == j {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

// export bundles one job for migration, pulling it off the queue so no
// local worker starts it mid-handover. A running attempt is refused
// (retryable): it will park or finish, and its persisted checkpoint makes
// the later export resumable on the new owner.
func (st *jobStore) export(id string) (*JobBundle, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, errNoJob
	}
	j.mu.Lock()
	running := j.state == JobRunning
	j.mu.Unlock()
	if running {
		return nil, fmt.Errorf("server: job %s is running; retry once it finishes or parks: %w", id, errBusy)
	}
	st.dequeueLocked(j)
	return st.bundleLocked(j)
}

// steal pops the most recently queued non-session-pinned job (LIFO: the
// oldest queued work stays where its submitter polls first) and bundles it
// for the thief. A nil bundle with nil error means nothing was stealable.
func (st *jobStore) steal() (*JobBundle, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.queue) - 1; i >= 0; i-- {
		j := st.queue[i]
		j.mu.Lock()
		pinned := j.req.SessionID != ""
		j.mu.Unlock()
		if pinned {
			continue
		}
		st.queue = append(st.queue[:i], st.queue[i+1:]...)
		st.counters.Count("server.jobs.stolen", 1)
		return st.bundleLocked(j)
	}
	return nil, nil
}

// inject installs a migrated or stolen job bundle. Non-terminal jobs are
// re-enqueued exactly like a restart would; a session-attached job is
// refused unless its session lives here (the router co-locates them). Any
// failure leaves no local state, so the exporter can reinstate.
func (st *jobStore) inject(b *JobBundle, haveSession func(string) bool) (*job, error) {
	if b.ID == "" || len(b.Record) == 0 {
		return nil, fmt.Errorf("server: job bundle needs an id and a record")
	}
	if err := validAssignedID(b.ID); err != nil {
		return nil, err
	}
	var rec jobRecord
	if err := decodeStrict(bytes.NewReader(b.Record), &rec); err != nil {
		return nil, err
	}
	if rec.Version != 1 && rec.Version != jobRecordVersion {
		return nil, fmt.Errorf("server: job bundle version %d, this build reads %d", rec.Version, jobRecordVersion)
	}
	if rec.ID != b.ID {
		return nil, fmt.Errorf("server: job bundle %q holds the record of %q", b.ID, rec.ID)
	}
	if rec.EventsLogged > 0 {
		return nil, fmt.Errorf("server: job bundle must inline its events (events_logged=%d)", rec.EventsLogged)
	}
	switch rec.State {
	case JobQueued, JobRunning, JobDone, JobFailed, JobInterrupted:
	default:
		return nil, fmt.Errorf("server: job bundle has unknown state %q", rec.State)
	}
	pending := rec.State == JobQueued || rec.State == JobRunning || rec.State == JobInterrupted
	if pending && rec.Request.SessionID != "" && haveSession != nil && !haveSession(rec.Request.SessionID) {
		return nil, fmt.Errorf("server: job %s is attached to session %s, which does not live here", rec.ID, rec.Request.SessionID)
	}
	j := &job{id: rec.ID, req: rec.Request, state: rec.State, errMsg: rec.Error, result: rec.Result, cp: rec.Checkpoint}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, errDraining
	}
	if _, dup := st.jobs[rec.ID]; dup {
		st.mu.Unlock()
		return nil, fmt.Errorf("server: job %q already exists", rec.ID)
	}
	if pending && len(st.queue) >= st.depth {
		st.mu.Unlock()
		return nil, errBusy
	}
	st.jobs[rec.ID] = j
	if n := idNumber(rec.ID, "j"); n >= st.nextID {
		st.nextID = n + 1
	}
	st.mu.Unlock()

	if !st.noLog && len(j.req.Events) > 0 {
		if seq := toSequence(j.req.Events); seq.Validate() == nil {
			if n, err := st.writeEventLog(rec.ID, seq); err == nil {
				j.eventsLogged = n
			} else {
				st.counters.Count("server.jobs.log_degraded", 1)
			}
		}
	}
	if err := st.persist(j); err != nil {
		st.mu.Lock()
		delete(st.jobs, rec.ID)
		st.mu.Unlock()
		os.RemoveAll(st.logDir(rec.ID))
		return nil, err
	}
	st.counters.Count("server.jobs.injected", 1)
	if pending {
		st.mu.Lock()
		j.mu.Lock()
		j.state = JobQueued
		j.mu.Unlock()
		st.queue = append(st.queue, j)
		st.cond.Signal()
		st.mu.Unlock()
	}
	return j, nil
}

// forget drops an exported job after its import landed elsewhere.
func (st *jobStore) forget(id string) error {
	st.mu.Lock()
	j, ok := st.jobs[id]
	if ok {
		st.dequeueLocked(j)
		delete(st.jobs, id)
	}
	st.mu.Unlock()
	if !ok {
		return errNoJob
	}
	os.Remove(st.path(id))
	os.RemoveAll(st.logDir(id))
	return nil
}

// reinstate returns an exported job to service after a failed handover,
// re-enqueueing it when it was pending.
func (st *jobStore) reinstate(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return errNoJob
	}
	j.mu.Lock()
	wasExported := j.exported
	j.exported = false
	requeue := j.state == JobQueued || j.state == JobInterrupted
	if requeue {
		j.state = JobQueued
	}
	j.mu.Unlock()
	if wasExported && requeue {
		st.queue = append(st.queue, j)
		st.cond.Signal()
	}
	return nil
}
