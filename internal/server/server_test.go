package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/mining"
)

// newTestServer builds a Server over a temp data dir and serves it.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{DataDir: t.TempDir()}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.jobs.shutdown() })
	return srv, ts
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// checkRequestJSON wraps testdata/example1.json into a CheckRequest body.
func checkRequestJSON(t *testing.T, extra string) []byte {
	t.Helper()
	spec := strings.TrimSpace(string(mustReadFile(t, "../../testdata/example1.json")))
	return []byte(`{"spec":` + spec + extra + `}`)
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// expectedCheckBody runs the same check through the shared encoder — the
// bytes `tcgcheck -json` prints for testdata/example1.json.
func expectedCheckBody(t *testing.T, exact bool, from, to int) []byte {
	t.Helper()
	_, structure, err := DecodeCheckRequest(bytes.NewReader(checkRequestJSON(t, "")))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.RunCheck(granularity.Default(), structure, cli.CheckOptions{Exact: exact, FromYear: from, ToYear: to})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckMatchesEncoder: the /v1/check body is exactly the shared
// encoder's output, with and without the exact solver.
func TestCheckMatchesEncoder(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := post(t, ts.URL+"/v1/check", checkRequestJSON(t, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := readBody(t, resp)
	if want := expectedCheckBody(t, false, 1996, 1999); !bytes.Equal(got, want) {
		t.Fatalf("check body mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	resp = post(t, ts.URL+"/v1/check", checkRequestJSON(t, `,"exact":true,"from_year":1996,"to_year":1996`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact status %d", resp.StatusCode)
	}
	got = readBody(t, resp)
	if want := expectedCheckBody(t, true, 1996, 1996); !bytes.Equal(got, want) {
		t.Fatalf("exact check body mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCheckInterrupted: a one-unit budget yields the interrupted result,
// not an HTTP error.
func TestCheckInterrupted(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := post(t, ts.URL+"/v1/check", checkRequestJSON(t, `,"budget":1`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var res cli.CheckResult
	if err := json.Unmarshal(readBody(t, resp), &res); err != nil {
		t.Fatal(err)
	}
	if res.Interrupted == nil || res.Interrupted.Reason != "budget" {
		t.Fatalf("interrupted = %+v", res.Interrupted)
	}
}

// sessionSpec is a two-variable complex type: b within [0,2] hours of a.
const sessionSpec = `{"spec":{"edges":[{"from":"X0","to":"X1","constraints":[{"min":0,"max":2,"gran":"hour"}]}],"assign":{"X0":"a","X1":"b"}}}`

func createSession(t *testing.T, baseURL, body string) SessionCreateResponse {
	t.Helper()
	resp := post(t, baseURL+"/v1/tag/sessions", []byte(body))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var cr SessionCreateResponse
	if err := json.Unmarshal(readBody(t, resp), &cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

func eventsBody(items ...EventItem) []byte {
	b, _ := json.Marshal(EventsRequest{Events: items})
	return b
}

// TestSessionLifecycle drives one session to acceptance and closes it.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	if cr.Automaton.States == 0 {
		t.Fatalf("automaton = %+v", cr.Automaton)
	}

	t0 := event.At(1996, 7, 1, 9, 0, 0)
	resp := post(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0, Type: "x"}, EventItem{Time: t0 + 60, Type: "a"}))
	var st SessionStateResponse
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Stream.Accepted || st.Stream.Events != 2 || st.Rejected != nil {
		t.Fatalf("after first batch: %+v", st.Stream)
	}

	resp = post(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0 + 3600, Type: "b"}))
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Stream.Accepted || st.Stream.AcceptIndex == nil {
		t.Fatalf("no acceptance: %+v", st.Stream)
	}
	if st.Stream.AcceptTime != event.Civil(t0+3600) {
		t.Fatalf("accept time %q", st.Stream.AcceptTime)
	}

	// A poll returns the same view.
	var polled SessionStateResponse
	if err := json.Unmarshal(readBody(t, get(t, ts.URL+"/v1/tag/sessions/"+cr.ID)), &polled); err != nil {
		t.Fatal(err)
	}
	if !polled.Stream.Accepted || polled.Stream.Events != 3 {
		t.Fatalf("poll: %+v", polled.Stream)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tag/sessions/"+cr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	readBody(t, resp)
	resp = get(t, ts.URL+"/v1/tag/sessions/"+cr.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after delete: status %d", resp.StatusCode)
	}
	readBody(t, resp)
}

// TestSessionOutOfOrderReject: a regressing timestamp is refused without
// being consumed; later events of the batch are not applied.
func TestSessionOutOfOrderReject(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	readBody(t, post(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events", eventsBody(EventItem{Time: t0, Type: "a"})))
	resp := post(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0 - 60, Type: "b"}, EventItem{Time: t0 + 60, Type: "b"}))
	var st SessionStateResponse
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.Rejected == nil || st.Rejected.Index != 0 || st.Rejected.Reason != "out-of-order" {
		t.Fatalf("rejected = %+v", st.Rejected)
	}
	if st.Stream.Events != 1 {
		t.Fatalf("events = %d, want 1", st.Stream.Events)
	}
}

// jobRequestJSON builds a mining job request from the cascade fixture.
func jobRequestJSON(t *testing.T, extra string) []byte {
	t.Helper()
	problem := strings.TrimSpace(string(mustReadFile(t, "../../testdata/cascade_problem.json")))
	seq, err := cli.ReadSequence("../../testdata/plant45.txt")
	if err != nil {
		t.Fatal(err)
	}
	items, err := json.Marshal(toItems(seq))
	if err != nil {
		t.Fatal(err)
	}
	return []byte(`{"problem":` + problem + `,"events":` + string(items) + extra + `}`)
}

// expectedMineBody runs the cascade mine uninterrupted through the library
// and the shared encoder — the bytes `miner -json` prints.
func expectedMineBody(t *testing.T) []byte {
	t.Helper()
	sys := granularity.Default()
	f, err := os.Open("../../testdata/cascade_problem.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ps, err := mining.ReadProblemSpec(f)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cli.ReadSequence("../../testdata/plant45.txt")
	if err != nil {
		t.Fatal(err)
	}
	p, work, opt, err := ps.Build(sys, seq)
	if err != nil {
		t.Fatal(err)
	}
	ds, stats, cp, err := mining.OptimizedCheckpoint(sys, p, work, opt)
	if err != nil || cp != nil {
		t.Fatalf("reference mine: cp=%v err=%v", cp != nil, err)
	}
	res, err := cli.BuildMineResult(sys, p, work, ds, stats, p.MinConfidence, 0, opt.Engine.Mode)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func pollJob(t *testing.T, baseURL, id string, until func(*JobStatusResponse) bool) *JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var js JobStatusResponse
		if err := json.Unmarshal(readBody(t, get(t, baseURL+"/v1/mining/jobs/"+id)), &js); err != nil {
			t.Fatal(err)
		}
		if until(&js) {
			return &js
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not reach the expected state")
	return nil
}

// TestJobLifecycle: an async mining job completes and its result is the
// shared encoder's bytes.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, ts.URL, created.ID, func(js *JobStatusResponse) bool {
		return js.State == JobDone || js.State == JobFailed
	})
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	var buf bytes.Buffer
	if err := done.Result.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if want := expectedMineBody(t); !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("job result mismatch:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestJobQueueFull: with no workers draining the queue, the bounded job
// queue rejects with 429 and a Retry-After hint.
func TestJobQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	srv.jobs.shutdown()
	idle, err := newJobStore(t.TempDir(), srv.sys, srv.counters, 0, 1, 0, engine.ExecCompiled, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.jobs = idle
	t.Cleanup(idle.shutdown)

	resp := post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", resp.StatusCode)
	}
	readBody(t, resp)
	resp = post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	readBody(t, resp)
}

// TestAdmissionQueueFull deterministically fills the one slot and the
// one-deep queue, then expects 429 with Retry-After on the next request.
func TestAdmissionQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.MaxInflight = 1
		c.QueueDepth = 1
	})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.holdCheck = func() {
		started <- struct{}{}
		<-release
	}
	body := checkRequestJSON(t, "")

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			readBody(t, post(t, ts.URL+"/v1/check", body))
		}()
		if i == 0 {
			<-started // slot taken and held; the next request must queue
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.lim.waiting() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := post(t, ts.URL+"/v1/check", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	readBody(t, resp)

	close(release)
	wg.Wait()
}

// TestDrain: an in-flight check completes during a drain while new
// requests (checks, session creates, job submissions, health probes) get
// 503.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) { c.MaxInflight = 2 })
	started := make(chan struct{})
	release := make(chan struct{})
	srv.holdCheck = func() {
		close(started)
		<-release
	}
	body := checkRequestJSON(t, "")

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{0, nil}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- result{resp.StatusCode, buf.Bytes()}
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.lim.draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}

	for _, probe := range []struct {
		name string
		do   func() *http.Response
	}{
		{"check", func() *http.Response { return post(t, ts.URL+"/v1/check", body) }},
		{"session create", func() *http.Response { return post(t, ts.URL+"/v1/tag/sessions", []byte(sessionSpec)) }},
		{"job submit", func() *http.Response { return post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, "")) }},
		{"healthz", func() *http.Response { return get(t, ts.URL+"/healthz") }},
	} {
		resp := probe.do()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: status %d", probe.name, resp.StatusCode)
		}
		readBody(t, resp)
	}

	select {
	case <-drained:
		t.Fatal("drain finished while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	got := <-inflight
	if got.status != http.StatusOK {
		t.Fatalf("in-flight check: status %d", got.status)
	}
	if want := expectedCheckBody(t, false, 1996, 1999); !bytes.Equal(got.body, want) {
		t.Fatal("in-flight check body mismatch during drain")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitForJobFileState polls the on-disk job record until it reports the
// wanted state (the in-memory state flips before the persist completes).
func waitForJobFileState(t *testing.T, path, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && strings.Contains(string(data), `"state": "`+want+`"`) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job record never reached state %q", want)
}

// TestRestartRecovery: abandon a daemon without draining (the crash case),
// then restore from its data dir — the session comes back byte-identical
// and the interrupted mining job resumes to the uninterrupted discovery
// set.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{DataDir: dir, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	cr := createSession(t, ts1.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	readBody(t, post(t, ts1.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0, Type: "a"}, EventItem{Time: t0 + 1800, Type: "x"})))
	sessionBefore := readBody(t, get(t, ts1.URL+"/v1/tag/sessions/"+cr.ID))

	// Budget 250 interrupts the cascade mine mid-scan (steps 1-4 cost
	// ~225 units); the resumed attempt finishes within the same budget.
	resp := post(t, ts1.URL+"/v1/mining/jobs", jobRequestJSON(t, `,"budget":250`))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	parked := pollJob(t, ts1.URL, created.ID, func(js *JobStatusResponse) bool {
		return js.State != JobQueued && js.State != JobRunning
	})
	if parked.State != JobInterrupted {
		t.Fatalf("job state %q after budget run (error %q)", parked.State, parked.Error)
	}
	jobFile := filepath.Join(dir, "jobs", created.ID+".json")
	waitForJobFileState(t, jobFile, JobInterrupted)

	// Crash: no drain, no checkpointAll — what's on disk is what survives.
	ts1.Close()

	var final *JobStatusResponse
	var sessionAfter []byte
	for restart := 0; restart < 10 && final == nil; restart++ {
		srv, err := New(Config{DataDir: dir, JobWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		if restart == 0 {
			sessionAfter = readBody(t, get(t, ts.URL+"/v1/tag/sessions/"+cr.ID))
		}
		js := pollJob(t, ts.URL, created.ID, func(js *JobStatusResponse) bool {
			return js.State != JobQueued && js.State != JobRunning
		})
		if js.State == JobDone || js.State == JobFailed {
			final = js
		} else {
			waitForJobFileState(t, jobFile, JobInterrupted)
		}
		ts.Close()
		srv.jobs.shutdown()
	}
	if final == nil {
		t.Fatal("job never finished across restarts")
	}
	if final.State != JobDone {
		t.Fatalf("job failed after restart: %s", final.Error)
	}

	if !bytes.Equal(sessionBefore, sessionAfter) {
		t.Fatalf("restored session differs:\nbefore:\n%s\nafter:\n%s", sessionBefore, sessionAfter)
	}
	// The discovery set must match the uninterrupted run exactly. Stats may
	// differ (the TAG run in flight at the interrupt is re-run on resume),
	// so compare discoveries and tau, not the whole result.
	var want cli.MineResult
	if err := json.Unmarshal(expectedMineBody(t), &want); err != nil {
		t.Fatal(err)
	}
	gotDs, _ := json.Marshal(final.Result.Discoveries)
	wantDs, _ := json.Marshal(want.Discoveries)
	if final.Result.Tau != want.Tau || !bytes.Equal(gotDs, wantDs) {
		t.Fatalf("resumed discovery set differs:\ngot tau=%v %s\nwant tau=%v %s",
			final.Result.Tau, gotDs, want.Tau, wantDs)
	}
}

// TestStressMixed is the acceptance stress: >=64 concurrent mixed requests
// (checks, session feeds, job polls, health, metrics) against a small
// admission window. Every response must be a well-formed success or a
// bounded-queue rejection carrying Retry-After; successful check bodies
// must be byte-identical to the shared encoder output.
func TestStressMixed(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxInflight = 4
		c.QueueDepth = 4
		c.JobWorkers = 2
	})

	var sessions []string
	for i := 0; i < 4; i++ {
		sessions = append(sessions, createSession(t, ts.URL, sessionSpec).ID)
	}
	resp := post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d", resp.StatusCode)
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}

	checkBody := checkRequestJSON(t, "")
	wantCheck := expectedCheckBody(t, false, 1996, 1999)
	t0 := event.At(1996, 7, 1, 9, 0, 0)

	do := func(kind, method, url string, body []byte) (string, int, string, []byte) {
		var resp *http.Response
		var err error
		if method == http.MethodGet {
			resp, err = http.Get(url)
		} else {
			resp, err = http.Post(url, "application/json", bytes.NewReader(body))
		}
		if err != nil {
			t.Error(err)
			return kind, 0, "", nil
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return kind, resp.StatusCode, resp.Header.Get("Retry-After"), buf.Bytes()
	}

	type task func(i int) (string, int, string, []byte)
	tasks := make([]task, 0, 80)
	for i := 0; i < 28; i++ {
		tasks = append(tasks, func(i int) (string, int, string, []byte) {
			return do("check", http.MethodPost, ts.URL+"/v1/check", checkBody)
		})
	}
	for i := 0; i < 24; i++ {
		tasks = append(tasks, func(i int) (string, int, string, []byte) {
			id := sessions[i%len(sessions)]
			// Identical timestamps keep concurrent batches in order.
			return do("feed", http.MethodPost, ts.URL+"/v1/tag/sessions/"+id+"/events",
				eventsBody(EventItem{Time: t0, Type: "x"}))
		})
	}
	for i := 0; i < 12; i++ {
		tasks = append(tasks, func(i int) (string, int, string, []byte) {
			return do("poll", http.MethodGet, ts.URL+"/v1/mining/jobs/"+created.ID, nil)
		})
	}
	for i := 0; i < 8; i++ {
		tasks = append(tasks, func(i int) (string, int, string, []byte) {
			path := "/healthz"
			if i%2 == 0 {
				path = "/metrics"
			}
			return do("observe", http.MethodGet, ts.URL+path, nil)
		})
	}
	if len(tasks) < 64 {
		t.Fatalf("only %d tasks", len(tasks))
	}

	type outcome struct {
		kind       string
		status     int
		retryAfter string
		body       []byte
	}
	outcomes := make([]outcome, len(tasks))
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i, tk := range tasks {
		wg.Add(1)
		go func(i int, tk task) {
			defer wg.Done()
			<-start
			k, st, ra, body := tk(i)
			outcomes[i] = outcome{k, st, ra, body}
		}(i, tk)
	}
	close(start)
	wg.Wait()

	rejected := 0
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			if o.kind == "check" && !bytes.Equal(o.body, wantCheck) {
				t.Fatalf("stress check body mismatch:\n%s", o.body)
			}
		case http.StatusTooManyRequests:
			rejected++
			if o.kind == "poll" || o.kind == "observe" {
				t.Fatalf("%s must never be throttled", o.kind)
			}
			if o.retryAfter == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("%s: unexpected status %d: %s", o.kind, o.status, o.body)
		}
	}
	t.Logf("stress: %d requests, %d rejected with 429", len(outcomes), rejected)

	// The system stays serviceable after the burst.
	resp = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after stress: %d", resp.StatusCode)
	}
	readBody(t, resp)
}

// TestMetricsExposition: /metrics serves the engine counters in Prometheus
// text format plus the server gauges.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	readBody(t, post(t, ts.URL+"/v1/check", checkRequestJSON(t, "")))
	body := string(readBody(t, get(t, ts.URL+"/metrics")))
	for _, want := range []string{
		`tempo_counter_total{name="server.requests.check"} 1`,
		"tempod_sessions_active 0",
		"tempod_draining 0",
		"# TYPE tempo_counter_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestHealthz reports live session tallies.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	createSession(t, ts.URL, sessionSpec)
	var h HealthResponse
	if err := json.Unmarshal(readBody(t, get(t, ts.URL+"/healthz")), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sessions != 1 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestBadRequests: malformed inputs get 4xx, never 5xx or a hang.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		name, url, body string
		want            int
	}{
		{"not json", "/v1/check", `{{{`, http.StatusBadRequest},
		{"unknown field", "/v1/check", `{"spec":{"edges":[]},"nope":1}`, http.StatusBadRequest},
		{"empty constraints", "/v1/check", `{"spec":{"edges":[{"from":"A","to":"B","constraints":[]}]}}`, http.StatusBadRequest},
		{"trailing garbage", "/v1/check", `{"spec":{"edges":[]}}{"again":true}`, http.StatusBadRequest},
		{"session without assign", "/v1/tag/sessions", `{"spec":{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":1,"gran":"day"}]}]}}`, http.StatusBadRequest},
		{"session empty events", "/v1/tag/sessions", `{"spec":{}}`, http.StatusBadRequest},
		{"job without reference", "/v1/mining/jobs", `{"problem":{"structure":{"edges":[{"from":"A","to":"B","constraints":[{"min":0,"max":1,"gran":"day"}]}]},"min_confidence":0.5},"events":[]}`, http.StatusBadRequest},
	} {
		resp := post(t, ts.URL+tc.url, []byte(tc.body))
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		readBody(t, resp)
	}

	resp := get(t, ts.URL+"/v1/tag/sessions/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing session: %d", resp.StatusCode)
	}
	readBody(t, resp)
	resp = get(t, ts.URL+"/v1/mining/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %d", resp.StatusCode)
	}
	readBody(t, resp)
}

// TestSessionLogReplayRecovery: with a wide checkpoint stride, feeds land
// only in the event log; a crash (no drain) and restart must replay the
// log tail past the stale checkpoint and reproduce the exact session view.
func TestSessionLogReplayRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{DataDir: dir, CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cr := createSession(t, ts1.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	for i, typ := range []string{"a", "x", "b"} {
		readBody(t, post(t, ts1.URL+"/v1/tag/sessions/"+cr.ID+"/events",
			eventsBody(EventItem{Time: t0 + int64(i)*60, Type: typ})))
	}
	before := readBody(t, get(t, ts1.URL+"/v1/tag/sessions/"+cr.ID))
	ts1.Close()
	srv1.jobs.shutdown()

	// The on-disk checkpoint must be stale — the events live in the log.
	var rec sessionRecord
	if err := json.Unmarshal(mustReadFile(t, filepath.Join(dir, "sessions", cr.ID+".json")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Events != 0 {
		t.Fatalf("checkpoint covers %d events; the stride should have deferred it", rec.Events)
	}

	srv2, err := New(Config{DataDir: dir, CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.jobs.shutdown()
	after := readBody(t, get(t, ts2.URL+"/v1/tag/sessions/"+cr.ID))
	if !bytes.Equal(before, after) {
		t.Fatalf("replayed session differs:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// The replay must also be checkpointed, so a second restart without the
	// log would still know the event count.
	if err := json.Unmarshal(mustReadFile(t, filepath.Join(dir, "sessions", cr.ID+".json")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Events != 3 {
		t.Fatalf("post-replay checkpoint covers %d events, want 3", rec.Events)
	}
}

// TestSessionLogDamagedReset: a session whose event log cannot cover its
// checkpoint restores from the checkpoint alone; the unusable log moves to
// <id>.events.damaged and a fresh log takes over.
func TestSessionLogDamagedReset(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{DataDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cr := createSession(t, ts1.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	readBody(t, post(t, ts1.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0, Type: "a"}, EventItem{Time: t0 + 60, Type: "x"})))
	before := readBody(t, get(t, ts1.URL+"/v1/tag/sessions/"+cr.ID))
	ts1.Close()
	srv1.jobs.shutdown()

	// Destroy the log: now it holds fewer records than the checkpoint covers.
	logDir := filepath.Join(dir, "sessions", cr.ID+".events")
	if err := os.RemoveAll(logDir); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{DataDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.jobs.shutdown()
	after := readBody(t, get(t, ts2.URL+"/v1/tag/sessions/"+cr.ID))
	if !bytes.Equal(before, after) {
		t.Fatalf("checkpoint-only restore differs:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if _, err := os.Stat(logDir + ".damaged"); err != nil {
		t.Fatalf("unusable log not set aside: %v", err)
	}
	// The session keeps working on a fresh log.
	resp := post(t, ts2.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0 + 3600, Type: "b"}))
	var st SessionStateResponse
	if err := json.Unmarshal(readBody(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Stream.Accepted || st.Stream.Events != 3 {
		t.Fatalf("feed after reset: %+v", st.Stream)
	}
}

// TestJobEventLogLifecycle: a job's input sequence lives in its event log
// (the record omits the inline copy) and the log is removed once the job
// reaches a terminal state with its record already durable.
func TestJobEventLogLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{DataDir: dir, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.jobs.shutdown()
	resp := post(t, ts.URL+"/v1/mining/jobs", jobRequestJSON(t, ""))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, ts.URL, created.ID, func(js *JobStatusResponse) bool {
		return js.State == JobDone || js.State == JobFailed
	})
	if done.State != JobDone {
		t.Fatalf("job failed: %s", done.Error)
	}
	var rec jobRecord
	if err := json.Unmarshal(mustReadFile(t, filepath.Join(dir, "jobs", created.ID+".json")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Version != jobRecordVersion || rec.EventsLogged == 0 || len(rec.Request.Events) != 0 {
		t.Fatalf("record: version=%d events_logged=%d inline=%d", rec.Version, rec.EventsLogged, len(rec.Request.Events))
	}
	logDir := filepath.Join(dir, "jobs", created.ID+".events")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(logDir); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job's event log not removed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoEventLogMigration: a daemon restarted with the event log disabled
// absorbs existing session logs into covering checkpoints and removes them.
func TestNoEventLogMigration(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{DataDir: dir, CheckpointEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	cr := createSession(t, ts1.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	readBody(t, post(t, ts1.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		eventsBody(EventItem{Time: t0, Type: "a"}, EventItem{Time: t0 + 60, Type: "b"})))
	before := readBody(t, get(t, ts1.URL+"/v1/tag/sessions/"+cr.ID))
	ts1.Close()
	srv1.jobs.shutdown()

	srv2, err := New(Config{DataDir: dir, NoEventLog: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.jobs.shutdown()
	after := readBody(t, get(t, ts2.URL+"/v1/tag/sessions/"+cr.ID))
	if !bytes.Equal(before, after) {
		t.Fatalf("migrated session differs:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if _, err := os.Stat(filepath.Join(dir, "sessions", cr.ID+".events")); !os.IsNotExist(err) {
		t.Fatalf("event log survived NoEventLog migration: %v", err)
	}
	var rec sessionRecord
	if err := json.Unmarshal(mustReadFile(t, filepath.Join(dir, "sessions", cr.ID+".json")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Events != 2 {
		t.Fatalf("migrated checkpoint covers %d events, want 2", rec.Events)
	}
}

// TestRestoreQuarantineAndOrphanSweep: a corrupt session record is
// quarantined to .corrupt (daemon still starts), its event log is kept as
// evidence, and an ownerless event-log directory is swept away.
func TestRestoreQuarantineAndOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	sessDir := filepath.Join(dir, "sessions")
	if err := os.MkdirAll(sessDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sessDir, "s000007.json"), []byte("torn gib"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(sessDir, "s000007.events"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(sessDir, "s000042.events"), 0o755); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.jobs.shutdown()
	if _, err := os.Stat(filepath.Join(sessDir, "s000007.json.corrupt")); err != nil {
		t.Fatalf("corrupt record not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sessDir, "s000007.events")); err != nil {
		t.Fatalf("quarantined session's log swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sessDir, "s000042.events")); !os.IsNotExist(err) {
		t.Fatalf("orphan log dir not swept: %v", err)
	}
	if got := srv.sessions.count(); got != 0 {
		t.Fatalf("restored %d sessions from garbage", got)
	}
}
