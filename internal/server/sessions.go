package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/store"
	"repro/internal/tag"
)

// sessionRecordVersion is the wire version of the on-disk session record.
const sessionRecordVersion = 1

// sessionRecord is the durable form of a streaming session: everything
// needed to rebuild the automaton (the original spec and run options) plus
// the latest tag.Checkpoint. The checkpoint's fingerprint re-binds it to
// the recompiled automaton on restore, so a record from a different build
// or granularity configuration is refused rather than silently resumed.
type sessionRecord struct {
	Version        int       `json:"version"`
	ID             string    `json:"id"`
	Spec           core.Spec `json:"spec"`
	Strict         bool      `json:"strict,omitempty"`
	MaxFrontier    int       `json:"max_frontier,omitempty"`
	Budget         int64     `json:"budget,omitempty"`
	Events         int       `json:"events"`
	AcceptTime     int64     `json:"accept_time,omitempty"`
	HaveAcceptTime bool      `json:"have_accept_time,omitempty"`
	// LogStart is the session event count at which the durable event log
	// begins: log record i holds session event LogStart+i. Recovery feeds
	// the log tail past Events-LogStart back into the restored runner.
	LogStart   int64          `json:"log_start,omitempty"`
	Checkpoint tag.Checkpoint `json:"checkpoint"`
}

// session is one live streaming TAG run. Its mutex serializes feeds, polls
// and closure; the runner itself is not safe for concurrent use.
type session struct {
	mu sync.Mutex

	id     string
	spec   core.Spec
	strict bool
	maxFr  int
	budget int64

	auto   *tag.TAG
	runner *tag.Runner

	// log is the session's durable event log (nil when disabled or after
	// an append failure degraded the session to checkpoint-per-feed).
	// logStart is the session event count at which the log begins;
	// sinceCkpt counts events fed since the last persisted checkpoint.
	log       *store.Store
	logStart  int64
	sinceCkpt int

	// events counts events presented (sticky post-acceptance feeds
	// included), which is what the CLI's "events=" field reports.
	events         int
	acceptTime     int64
	haveAcceptTime bool
	closed         bool
	// sealed marks a session mid-migration: feeds are refused with a typed
	// "migrating" error until the router either forgets the session (import
	// on the new owner succeeded) or unseals it (migration rolled back).
	sealed bool
}

// sessionStore owns the live sessions and their on-disk records
// (<dir>/<id>.json).
type sessionStore struct {
	mu        sync.Mutex
	dir       string
	sys       *granularity.System
	counters  *engine.Counters
	max       int
	mode      engine.ExecMode
	ckptEvery int
	noLog     bool
	sessions  map[string]*session
	nextID    int
}

func newSessionStore(dir string, sys *granularity.System, counters *engine.Counters, max int, mode engine.ExecMode, ckptEvery int, noLog bool) (*sessionStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if ckptEvery < 1 {
		ckptEvery = 1
	}
	return &sessionStore{
		dir:       dir,
		sys:       sys,
		counters:  counters,
		max:       max,
		mode:      mode,
		ckptEvery: ckptEvery,
		noLog:     noLog,
		sessions:  make(map[string]*session),
		nextID:    1,
	}, nil
}

// logDir is the session's durable event-log directory.
func (st *sessionStore) logDir(id string) string {
	return filepath.Join(st.dir, id+".events")
}

// logOptions configures a session event log. SyncEvery stays at the
// default (every append) so an acknowledged feed is on disk before any
// checkpoint can claim to cover it.
func (st *sessionStore) logOptions() store.Options {
	// The "day" tick index accelerates ScanFromTick; a custom system (an
	// embedder injecting Config.System) may not define it, and the log must
	// still open — the index is an optimization, never a requirement.
	var grans []string
	if _, ok := st.sys.Ticker("day"); ok {
		grans = []string{"day"}
	}
	return store.Options{
		System:          st.sys,
		Grans:           grans,
		SegmentMaxBytes: 256 << 10,
	}
}

// runOptions builds the engine-backed run options for a session's runner.
// Restored runners get a fresh budget (RestoreRunner semantics), so Budget
// bounds the work per daemon lifetime.
func (st *sessionStore) runOptions(strict bool, maxFrontier int, budget int64) tag.RunOptions {
	return tag.RunOptions{
		Strict:      strict,
		MaxFrontier: maxFrontier,
		Engine:      engine.Config{Budget: budget, Observer: st.counters, Mode: st.mode},
	}
}

// create compiles the complex type and opens a new session, persisting its
// initial record before returning the ID. A non-empty assignID (a router
// placing the session on its hash ring) overrides the local s%06d scheme;
// it must be unused.
func (st *sessionStore) create(req *SessionCreateRequest, ct *core.ComplexType, assignID string) (*session, error) {
	if err := validAssignedID(assignID); err != nil {
		return nil, err
	}
	auto, err := tag.Compile(ct)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if len(st.sessions) >= st.max {
		st.mu.Unlock()
		return nil, fmt.Errorf("server: session limit (%d) reached: %w", st.max, errBusy)
	}
	id := assignID
	if id == "" {
		id = fmt.Sprintf("s%06d", st.nextID)
		st.nextID++
	} else if _, dup := st.sessions[id]; dup {
		st.mu.Unlock()
		return nil, fmt.Errorf("server: session %q already exists", id)
	}
	s := &session{
		id:     id,
		spec:   req.Spec,
		strict: req.Strict,
		maxFr:  req.MaxFrontier,
		budget: req.Budget,
		auto:   auto,
		runner: auto.NewRunner(st.sys, st.runOptions(req.Strict, req.MaxFrontier, req.Budget)),
	}
	st.sessions[id] = s
	st.mu.Unlock()

	if !st.noLog {
		lg, _, err := store.Open(st.logDir(id), st.logOptions())
		if err != nil {
			// No log is a robustness downgrade, not a failure: the session
			// falls back to checkpoint-per-feed persistence.
			st.counters.Count("server.sessions.log_degraded", 1)
		} else {
			s.log = lg
		}
	}
	if err := st.persist(s); err != nil {
		st.mu.Lock()
		delete(st.sessions, id)
		st.mu.Unlock()
		if s.log != nil {
			s.log.Close()
		}
		os.RemoveAll(st.logDir(id))
		return nil, err
	}
	st.counters.Count("server.sessions.created", 1)
	return s, nil
}

// get returns a live session.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	return s, ok
}

// close removes a session, its record and its event log.
func (st *sessionStore) close(id string) bool {
	st.mu.Lock()
	s, ok := st.sessions[id]
	delete(st.sessions, id)
	st.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	s.closed = true
	if s.log != nil {
		s.log.Close()
		s.log = nil
	}
	s.mu.Unlock()
	os.Remove(st.path(id))
	os.RemoveAll(st.logDir(id))
	return true
}

// count returns the number of live sessions.
func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// feed presents a batch of events to a session. Every consumed event is
// appended (and fsynced) to the session's event log before the feed is
// acknowledged; the JSON checkpoint is only rewritten every ckptEvery
// events — recovery replays the log tail past the last checkpoint. It
// returns the resulting stream view and, when an event was refused, which
// one and why (later events are not consumed).
func (st *sessionStore) feed(s *session, items []EventItem, after *int64) (*SessionStateResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: session %s is closed", s.id)
	}
	if s.sealed {
		return nil, fmt.Errorf("server: session %s is migrating: %w", s.id, errMigrating)
	}
	if after != nil && *after != int64(s.events) {
		return nil, fmt.Errorf("server: feed expects after=%d but session %s has consumed %d event(s): %w",
			*after, s.id, s.events, errFeedConflict)
	}
	var rej *RejectInfo
	for i, it := range items {
		wasAccepted := s.runner.Accepted()
		ev := event.Event{Time: it.Time, Type: event.Type(it.Type)}
		accepted, ok := s.runner.Feed(ev)
		if !ok {
			rej = &RejectInfo{Index: i, Reason: s.runner.LastReject().String()}
			break
		}
		s.events++
		s.sinceCkpt++
		// The guard skips events already on disk: after an interrupted
		// replay the runner lags the log, and re-appending the same event
		// would duplicate it.
		if s.log != nil && int64(s.events)-s.logStart > s.log.Len() {
			if _, err := s.log.Append(ev); err != nil {
				// Log storage failed (disk error, degraded store): degrade
				// to checkpoint-per-feed rather than refusing feeds.
				s.log.Close()
				s.log = nil
				st.counters.Count("server.sessions.log_degraded", 1)
			}
		}
		if accepted && !wasAccepted {
			s.acceptTime = it.Time
			s.haveAcceptTime = true
		}
	}
	if s.log == nil || rej != nil || s.sinceCkpt >= st.ckptEvery {
		if err := st.persist(s); err != nil {
			return nil, err
		}
	}
	st.counters.Count("server.sessions.events", int64(len(items)))
	resp := &SessionStateResponse{ID: s.id, Stream: s.streamLocked(), Rejected: rej}
	return resp, nil
}

// tail reads a session's durable event log for an attached incremental
// mining job: the records from index `from` onward plus the log's current
// length. When fromTime is known (the timestamp at `from`, recorded in the
// job's consolidation checkpoint), the read resumes from that day's tick
// via ScanFromTick — the sparse per-granularity index narrows the load to
// the consolidated suffix instead of walking the whole log — and the exact
// index filter drops the already-covered records of the same day. A
// session without a live log (closed, disabled, or degraded) cannot back
// an incremental job.
func (st *sessionStore) tail(id string, from, fromTime int64) ([]store.Rec, int64, error) {
	s, ok := st.get(id)
	if !ok {
		return nil, 0, fmt.Errorf("server: no session %q", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.log == nil {
		return nil, 0, fmt.Errorf("server: session %s has no live event log", id)
	}
	n := s.log.Len()
	if from > 0 && fromTime > 0 {
		if tick, ok := st.sys.TickOf("day", fromTime); ok {
			recs, err := s.log.ScanFromTick("day", tick)
			// The scan must reach back to `from` (the record at `from` has
			// time fromTime, so its tick is >= the probe); if it somehow
			// does not, fall through to the exact read.
			if err == nil && len(recs) > 0 && recs[0].Index <= from {
				out := recs[:0:0]
				for _, r := range recs {
					if r.Index >= from {
						out = append(out, r)
					}
				}
				return out, n, nil
			}
		}
	}
	recs, err := s.log.ReadFrom(from)
	return recs, n, err
}

// state returns the current stream view without feeding.
func (st *sessionStore) state(s *session) *SessionStateResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SessionStateResponse{ID: s.id, Stream: s.streamLocked()}
}

// streamLocked builds the shared cli.StreamResult; callers hold s.mu.
func (s *session) streamLocked() *cli.StreamResult {
	sr := cli.StreamResultFromRunner(s.runner, s.events, s.acceptTime, s.haveAcceptTime)
	if err := s.runner.Err(); err != nil {
		sr.Interrupted = cli.InterruptedFrom(err)
	}
	return sr
}

// path is the session's record file.
func (st *sessionStore) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// persist checkpoints a session's record atomically; callers hold s.mu (or
// the session is not yet published).
func (st *sessionStore) persist(s *session) error {
	cp, err := s.runner.Snapshot()
	if err != nil {
		return err
	}
	rec := sessionRecord{
		Version:        sessionRecordVersion,
		ID:             s.id,
		Spec:           s.spec,
		Strict:         s.strict,
		MaxFrontier:    s.maxFr,
		Budget:         s.budget,
		Events:         s.events,
		AcceptTime:     s.acceptTime,
		HaveAcceptTime: s.haveAcceptTime,
		LogStart:       s.logStart,
		Checkpoint:     cp,
	}
	if err := cli.SaveCheckpoint(st.path(s.id), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&rec)
	}); err != nil {
		return err
	}
	s.sinceCkpt = 0
	return nil
}

// checkpointAll persists every live session (the drain path; per-feed
// persistence makes this a formality unless a feed raced the drain).
func (st *sessionStore) checkpointAll() error {
	st.mu.Lock()
	all := make([]*session, 0, len(st.sessions))
	for _, s := range st.sessions {
		all = append(all, s)
	}
	st.mu.Unlock()
	var firstErr error
	for _, s := range all {
		s.mu.Lock()
		err := st.persist(s)
		s.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// restore reloads every session record from disk into a live runner and
// replays each session's event-log tail past its last checkpoint. A record
// that fails to decode is quarantined to <name>.corrupt; one that no
// longer validates (foreign fingerprint, changed build) is skipped with a
// log line rather than taking the daemon down, its file left in place for
// inspection. Event-log directories whose record is gone (a close or
// failed create that crashed between the two deletes) are swept away.
// It reports the aggregate log recovery, how many sessions came back, and
// how many events were replayed from logs.
func (st *sessionStore) restore(logger *log.Logger) (agg store.Recovery, restored int, replayed int64, err error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return agg, 0, 0, err
	}
	var names, logDirs []string
	for _, e := range entries {
		switch {
		case !e.IsDir() && strings.HasSuffix(e.Name(), ".json"):
			names = append(names, e.Name())
		case e.IsDir() && strings.HasSuffix(e.Name(), ".events"):
			logDirs = append(logDirs, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		rec, n, rerr := st.restoreOne(name, logger)
		agg.Add(rec)
		replayed += n
		if rerr != nil {
			logger.Printf("session record %s not restored: %v", name, rerr)
			continue
		}
		restored++
	}
	for _, d := range logDirs {
		id := strings.TrimSuffix(d, ".events")
		if _, serr := os.Stat(st.path(id)); serr == nil {
			continue
		}
		// Keep the log when its record was quarantined — it is evidence.
		if _, serr := os.Stat(st.path(id) + ".corrupt"); serr == nil {
			continue
		}
		os.RemoveAll(filepath.Join(st.dir, d))
	}
	return agg, restored, replayed, nil
}

func (st *sessionStore) restoreOne(name string, logger *log.Logger) (store.Recovery, int64, error) {
	path := filepath.Join(st.dir, name)
	var rec sessionRecord
	loaded, err := cli.LoadCheckpoint(path, func(r io.Reader) error {
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		return dec.Decode(&rec)
	})
	if err != nil {
		return store.Recovery{}, 0, err
	}
	if !loaded {
		return store.Recovery{}, 0, fmt.Errorf("record vanished during restore")
	}
	if rec.Version != sessionRecordVersion {
		return store.Recovery{}, 0, fmt.Errorf("session record version %d, this build reads %d", rec.Version, sessionRecordVersion)
	}
	ct, err := rec.Spec.ComplexType()
	if err != nil {
		return store.Recovery{}, 0, err
	}
	auto, err := tag.Compile(ct)
	if err != nil {
		return store.Recovery{}, 0, err
	}
	runner, err := tag.RestoreRunner(auto, st.sys, st.runOptions(rec.Strict, rec.MaxFrontier, rec.Budget), &rec.Checkpoint)
	if err != nil {
		return store.Recovery{}, 0, err
	}
	s := &session{
		id:             rec.ID,
		spec:           rec.Spec,
		strict:         rec.Strict,
		maxFr:          rec.MaxFrontier,
		budget:         rec.Budget,
		auto:           auto,
		runner:         runner,
		events:         rec.Events,
		acceptTime:     rec.AcceptTime,
		haveAcceptTime: rec.HaveAcceptTime,
		logStart:       rec.LogStart,
	}
	st.mu.Lock()
	_, dup := st.sessions[rec.ID]
	st.mu.Unlock()
	if dup {
		return store.Recovery{}, 0, fmt.Errorf("duplicate session id %s", rec.ID)
	}
	srec, replayed, err := st.attachAndReplay(s, logger)
	if err != nil {
		return srec, replayed, err
	}
	st.mu.Lock()
	st.sessions[rec.ID] = s
	if n := idNumber(rec.ID, "s"); n >= st.nextID {
		st.nextID = n + 1
	}
	st.mu.Unlock()
	st.counters.Count("server.sessions.restored", 1)
	return srec, replayed, nil
}

// attachAndReplay opens the session's event log and feeds the tail past
// the checkpoint's coverage back into the runner. A log that is degraded
// or shorter than what the checkpoint covers cannot be trusted to extend
// the session: it is set aside as <id>.events.damaged and a fresh log
// starts at the current event count — the checkpoint itself is intact, so
// nothing acknowledged is lost, only unreplayable tail evidence moves
// aside. With logging disabled, a leftover log is replayed once into a
// covering checkpoint and then removed.
func (st *sessionStore) attachAndReplay(s *session, logger *log.Logger) (store.Recovery, int64, error) {
	dir := st.logDir(s.id)
	if st.noLog {
		if _, err := os.Stat(dir); err != nil {
			return store.Recovery{}, 0, nil
		}
		lg, rec, err := store.Open(dir, st.logOptions())
		if err != nil {
			return store.Recovery{}, 0, err
		}
		replayed, rerr := st.replay(s, lg)
		lg.Close()
		if rerr != nil {
			return rec, replayed, rerr
		}
		// The checkpoint must cover the replayed events before the log —
		// their only other durable copy — is dropped.
		if err := st.persist(s); err != nil {
			return rec, replayed, err
		}
		s.logStart = 0
		os.RemoveAll(dir)
		return rec, replayed, nil
	}

	lg, rec, err := store.Open(dir, st.logOptions())
	if err != nil {
		return store.Recovery{}, 0, err
	}
	expected := int64(s.events) - s.logStart
	degraded, _ := lg.Degraded()
	have := lg.Len()
	if degraded || expected < 0 || have < expected {
		lg.Close()
		damaged := dir + ".damaged"
		os.RemoveAll(damaged)
		if rerr := os.Rename(dir, damaged); rerr != nil {
			return rec, 0, fmt.Errorf("setting aside unusable event log: %w", rerr)
		}
		cli.SyncDir(st.dir)
		logger.Printf("session %s: event log unusable (degraded=%v, %d record(s) where the checkpoint covers %d); moved to %s",
			s.id, degraded, have, expected, filepath.Base(damaged))
		st.counters.Count("server.sessions.log_reset", 1)
		fresh, frec, err := store.Open(dir, st.logOptions())
		rec.Add(frec)
		if err != nil {
			st.counters.Count("server.sessions.log_degraded", 1)
		} else {
			s.log = fresh
		}
		s.logStart = int64(s.events)
		if err := st.persist(s); err != nil {
			logger.Printf("session %s: checkpoint after log reset failed: %v", s.id, err)
		}
		return rec, 0, nil
	}
	s.log = lg
	replayed, rerr := st.replay(s, lg)
	if rerr != nil {
		lg.Close()
		s.log = nil
		return rec, replayed, rerr
	}
	if replayed > 0 {
		if err := st.persist(s); err != nil {
			logger.Printf("session %s: checkpoint after replay failed: %v", s.id, err)
		}
	}
	return rec, replayed, nil
}

// replay feeds the log records past the checkpoint's coverage into the
// runner. Replay stops at the first refused event (an interrupted runner
// keeps the rest of the tail on disk for the next restart — the feed path
// never re-appends events the log already holds).
func (st *sessionStore) replay(s *session, lg *store.Store) (int64, error) {
	recs, err := lg.ReadFrom(int64(s.events) - s.logStart)
	if err != nil {
		return 0, err
	}
	var replayed int64
	for _, r := range recs {
		wasAccepted := s.runner.Accepted()
		accepted, ok := s.runner.Feed(r.Event)
		if !ok {
			break
		}
		s.events++
		replayed++
		if accepted && !wasAccepted {
			s.acceptTime = r.Event.Time
			s.haveAcceptTime = true
		}
	}
	return replayed, nil
}

// idNumber extracts the numeric suffix of a "<prefix>NNNNNN" id (0 when
// the id has another shape).
func idNumber(id, prefix string) int {
	if !strings.HasPrefix(id, prefix) {
		return 0
	}
	n := 0
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
