package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/tag"
)

// sessionRecordVersion is the wire version of the on-disk session record.
const sessionRecordVersion = 1

// sessionRecord is the durable form of a streaming session: everything
// needed to rebuild the automaton (the original spec and run options) plus
// the latest tag.Checkpoint. The checkpoint's fingerprint re-binds it to
// the recompiled automaton on restore, so a record from a different build
// or granularity configuration is refused rather than silently resumed.
type sessionRecord struct {
	Version        int            `json:"version"`
	ID             string         `json:"id"`
	Spec           core.Spec      `json:"spec"`
	Strict         bool           `json:"strict,omitempty"`
	MaxFrontier    int            `json:"max_frontier,omitempty"`
	Budget         int64          `json:"budget,omitempty"`
	Events         int            `json:"events"`
	AcceptTime     int64          `json:"accept_time,omitempty"`
	HaveAcceptTime bool           `json:"have_accept_time,omitempty"`
	Checkpoint     tag.Checkpoint `json:"checkpoint"`
}

// session is one live streaming TAG run. Its mutex serializes feeds, polls
// and closure; the runner itself is not safe for concurrent use.
type session struct {
	mu sync.Mutex

	id     string
	spec   core.Spec
	strict bool
	maxFr  int
	budget int64

	auto   *tag.TAG
	runner *tag.Runner

	// events counts events presented (sticky post-acceptance feeds
	// included), which is what the CLI's "events=" field reports.
	events         int
	acceptTime     int64
	haveAcceptTime bool
	closed         bool
}

// sessionStore owns the live sessions and their on-disk records
// (<dir>/<id>.json).
type sessionStore struct {
	mu       sync.Mutex
	dir      string
	sys      *granularity.System
	counters *engine.Counters
	max      int
	mode     engine.ExecMode
	sessions map[string]*session
	nextID   int
}

func newSessionStore(dir string, sys *granularity.System, counters *engine.Counters, max int, mode engine.ExecMode) (*sessionStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &sessionStore{
		dir:      dir,
		sys:      sys,
		counters: counters,
		max:      max,
		mode:     mode,
		sessions: make(map[string]*session),
		nextID:   1,
	}, nil
}

// runOptions builds the engine-backed run options for a session's runner.
// Restored runners get a fresh budget (RestoreRunner semantics), so Budget
// bounds the work per daemon lifetime.
func (st *sessionStore) runOptions(strict bool, maxFrontier int, budget int64) tag.RunOptions {
	return tag.RunOptions{
		Strict:      strict,
		MaxFrontier: maxFrontier,
		Engine:      engine.Config{Budget: budget, Observer: st.counters, Mode: st.mode},
	}
}

// create compiles the complex type and opens a new session, persisting its
// initial record before returning the ID.
func (st *sessionStore) create(req *SessionCreateRequest, ct *core.ComplexType) (*session, error) {
	auto, err := tag.Compile(ct)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if len(st.sessions) >= st.max {
		st.mu.Unlock()
		return nil, fmt.Errorf("server: session limit (%d) reached: %w", st.max, errBusy)
	}
	id := fmt.Sprintf("s%06d", st.nextID)
	st.nextID++
	s := &session{
		id:     id,
		spec:   req.Spec,
		strict: req.Strict,
		maxFr:  req.MaxFrontier,
		budget: req.Budget,
		auto:   auto,
		runner: auto.NewRunner(st.sys, st.runOptions(req.Strict, req.MaxFrontier, req.Budget)),
	}
	st.sessions[id] = s
	st.mu.Unlock()

	if err := st.persist(s); err != nil {
		st.mu.Lock()
		delete(st.sessions, id)
		st.mu.Unlock()
		return nil, err
	}
	st.counters.Count("server.sessions.created", 1)
	return s, nil
}

// get returns a live session.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.sessions[id]
	return s, ok
}

// close removes a session and its record.
func (st *sessionStore) close(id string) bool {
	st.mu.Lock()
	s, ok := st.sessions[id]
	delete(st.sessions, id)
	st.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	os.Remove(st.path(id))
	return true
}

// count returns the number of live sessions.
func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// feed presents a batch of events to a session, checkpointing the session
// record afterwards. It returns the resulting stream view and, when an
// event was refused, which one and why (later events are not consumed).
func (st *sessionStore) feed(s *session, items []EventItem) (*SessionStateResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: session %s is closed", s.id)
	}
	var rej *RejectInfo
	for i, it := range items {
		wasAccepted := s.runner.Accepted()
		accepted, ok := s.runner.Feed(event.Event{Time: it.Time, Type: event.Type(it.Type)})
		if !ok {
			rej = &RejectInfo{Index: i, Reason: s.runner.LastReject().String()}
			break
		}
		s.events++
		if accepted && !wasAccepted {
			s.acceptTime = it.Time
			s.haveAcceptTime = true
		}
	}
	if err := st.persist(s); err != nil {
		return nil, err
	}
	st.counters.Count("server.sessions.events", int64(len(items)))
	resp := &SessionStateResponse{ID: s.id, Stream: s.streamLocked(), Rejected: rej}
	return resp, nil
}

// state returns the current stream view without feeding.
func (st *sessionStore) state(s *session) *SessionStateResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SessionStateResponse{ID: s.id, Stream: s.streamLocked()}
}

// streamLocked builds the shared cli.StreamResult; callers hold s.mu.
func (s *session) streamLocked() *cli.StreamResult {
	sr := cli.StreamResultFromRunner(s.runner, s.events, s.acceptTime, s.haveAcceptTime)
	if err := s.runner.Err(); err != nil {
		sr.Interrupted = cli.InterruptedFrom(err)
	}
	return sr
}

// path is the session's record file.
func (st *sessionStore) path(id string) string {
	return filepath.Join(st.dir, id+".json")
}

// persist checkpoints a session's record atomically; callers hold s.mu (or
// the session is not yet published).
func (st *sessionStore) persist(s *session) error {
	cp, err := s.runner.Snapshot()
	if err != nil {
		return err
	}
	rec := sessionRecord{
		Version:        sessionRecordVersion,
		ID:             s.id,
		Spec:           s.spec,
		Strict:         s.strict,
		MaxFrontier:    s.maxFr,
		Budget:         s.budget,
		Events:         s.events,
		AcceptTime:     s.acceptTime,
		HaveAcceptTime: s.haveAcceptTime,
		Checkpoint:     cp,
	}
	return cli.SaveCheckpoint(st.path(s.id), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&rec)
	})
}

// checkpointAll persists every live session (the drain path; per-feed
// persistence makes this a formality unless a feed raced the drain).
func (st *sessionStore) checkpointAll() error {
	st.mu.Lock()
	all := make([]*session, 0, len(st.sessions))
	for _, s := range st.sessions {
		all = append(all, s)
	}
	st.mu.Unlock()
	var firstErr error
	for _, s := range all {
		s.mu.Lock()
		err := st.persist(s)
		s.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// restore reloads every session record from disk into a live runner. A
// record that no longer validates (foreign fingerprint, changed build) is
// skipped with a log line rather than taking the daemon down; its file is
// left in place for inspection.
func (st *sessionStore) restore(logger *log.Logger) error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := st.restoreOne(name); err != nil {
			logger.Printf("session record %s not restored: %v", name, err)
			continue
		}
	}
	return nil
}

func (st *sessionStore) restoreOne(name string) error {
	f, err := os.Open(filepath.Join(st.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	var rec sessionRecord
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return err
	}
	if rec.Version != sessionRecordVersion {
		return fmt.Errorf("session record version %d, this build reads %d", rec.Version, sessionRecordVersion)
	}
	ct, err := rec.Spec.ComplexType()
	if err != nil {
		return err
	}
	auto, err := tag.Compile(ct)
	if err != nil {
		return err
	}
	runner, err := tag.RestoreRunner(auto, st.sys, st.runOptions(rec.Strict, rec.MaxFrontier, rec.Budget), &rec.Checkpoint)
	if err != nil {
		return err
	}
	s := &session{
		id:             rec.ID,
		spec:           rec.Spec,
		strict:         rec.Strict,
		maxFr:          rec.MaxFrontier,
		budget:         rec.Budget,
		auto:           auto,
		runner:         runner,
		events:         rec.Events,
		acceptTime:     rec.AcceptTime,
		haveAcceptTime: rec.HaveAcceptTime,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.sessions[rec.ID]; dup {
		return fmt.Errorf("duplicate session id %s", rec.ID)
	}
	st.sessions[rec.ID] = s
	if n := idNumber(rec.ID, "s"); n >= st.nextID {
		st.nextID = n + 1
	}
	st.counters.Count("server.sessions.restored", 1)
	return nil
}

// idNumber extracts the numeric suffix of a "<prefix>NNNNNN" id (0 when
// the id has another shape).
func idNumber(id, prefix string) int {
	if !strings.HasPrefix(id, prefix) {
		return 0
	}
	n := 0
	for _, c := range id[len(prefix):] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}
