package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/event"
)

// newWorkerServer is newTestServer with the /internal surface mounted.
func newWorkerServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.Internal = true
		if mutate != nil {
			mutate(c)
		}
	})
}

func postJSON(t *testing.T, url string, v any, hdr map[string]string) *http.Response {
	t.Helper()
	var body []byte
	if v != nil {
		var err error
		if body, err = json.Marshal(v); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, val := range hdr {
		req.Header.Set(k, val)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(readBody(t, resp), &e); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEpochFencing: the dedicated stale-owner proof. After a worker adopts
// epoch 5, a write stamped 4 is refused with the typed 409 "stale_epoch"
// and mutates nothing; the same write stamped 5 proceeds; a write stamped 7
// is adopted (monotone) so 5 is then fenced too. Unstamped standalone
// requests always pass.
func TestEpochFencing(t *testing.T) {
	srv, ts := newWorkerServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	feed := func(at int64, epoch string) *http.Response {
		hdr := map[string]string{}
		if epoch != "" {
			hdr[EpochHeader] = epoch
		}
		return postJSON(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
			EventsRequest{Events: []EventItem{{Time: at, Type: "a"}}}, hdr)
	}

	resp := postJSON(t, ts.URL+"/internal/epoch", EpochRequest{Epoch: 5}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch set status %d", resp.StatusCode)
	}
	readBody(t, resp)
	if got := srv.Epoch(); got != 5 {
		t.Fatalf("adopted epoch %d, want 5", got)
	}

	resp = feed(t0, "4")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale write status %d, want 409", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeStaleEpoch {
		t.Fatalf("stale write code %q, want %q", e.Code, CodeStaleEpoch)
	}
	if got := srv.counters.Get("server.rejected.stale_epoch"); got != 1 {
		t.Fatalf("stale_epoch counter = %d, want 1", got)
	}

	// The fenced write left no trace: the session still has zero events.
	var st SessionStateResponse
	if err := json.Unmarshal(readBody(t, get(t, ts.URL+"/v1/tag/sessions/"+cr.ID)), &st); err != nil {
		t.Fatal(err)
	}
	if st.Stream.Events != 0 {
		t.Fatalf("fenced write landed: %d events", st.Stream.Events)
	}

	if resp := feed(t0, "5"); resp.StatusCode != http.StatusOK {
		t.Fatalf("current-epoch write status %d: %s", resp.StatusCode, readBody(t, resp))
	} else {
		readBody(t, resp)
	}
	if resp := feed(t0+60, "7"); resp.StatusCode != http.StatusOK {
		t.Fatalf("future-epoch write status %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	if got := srv.Epoch(); got != 7 {
		t.Fatalf("epoch after header adoption = %d, want 7", got)
	}
	if resp := feed(t0+120, "5"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-adoption stale write status %d, want 409", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	if resp := feed(t0+120, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("unstamped write status %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
}

// TestSessionExportImportRoundTrip: export seals the source (feeds get the
// retryable 409 "migrating"), the bundle restores on a second worker
// through the restart path with only the checkpoint tail replayed, both
// workers serve byte-identical session state, and forget/unseal finish or
// roll back the handover.
func TestSessionExportImportRoundTrip(t *testing.T) {
	srvA, tsA := newWorkerServer(t, func(c *Config) { c.CheckpointEvery = 8 })
	_, tsB := newWorkerServer(t, func(c *Config) { c.CheckpointEvery = 8 })

	cr := createSession(t, tsA.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	items := make([]EventItem, 0, 21)
	types := []string{"a", "x", "b"}
	for i := 0; i < 21; i++ {
		items = append(items, EventItem{Time: t0 + int64(i)*60, Type: types[i%len(types)]})
	}
	feedSession(t, tsA.URL, cr.ID, items...)
	before := readBody(t, get(t, tsA.URL+"/v1/tag/sessions/"+cr.ID))

	resp := postJSON(t, tsA.URL+"/internal/sessions/"+cr.ID+"/export", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var bundle SessionBundle
	if err := json.Unmarshal(readBody(t, resp), &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.ID != cr.ID || len(bundle.Events) != len(items) {
		t.Fatalf("bundle id=%q events=%d, want id=%q events=%d", bundle.ID, len(bundle.Events), cr.ID, len(items))
	}
	// The bundled record carries the exporter's disk copy (the transport
	// re-indents the raw JSON; the content must be identical).
	disk := mustReadFile(t, filepath.Join(srvA.cfg.DataDir, "sessions", cr.ID+".json"))
	var diskC, recC bytes.Buffer
	if err := json.Compact(&diskC, disk); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&recC, bundle.Record); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(diskC.Bytes(), recC.Bytes()) {
		t.Fatal("bundle record differs from the on-disk record")
	}

	// Sealed: feeds are refused with the typed migrating error...
	resp = postJSON(t, tsA.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		EventsRequest{Events: []EventItem{{Time: t0 + 9999, Type: "a"}}}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("sealed feed status %d, want 409", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeMigrating {
		t.Fatalf("sealed feed code %q, want %q", e.Code, CodeMigrating)
	}
	// ...but reads keep working.
	if resp := get(t, tsA.URL+"/v1/tag/sessions/"+cr.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("sealed read status %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}

	resp = postJSON(t, tsB.URL+"/internal/sessions/import", &bundle, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var imported ImportResponse
	if err := json.Unmarshal(readBody(t, resp), &imported); err != nil {
		t.Fatal(err)
	}
	// The migration gate: restore replays only the tail past the strided
	// checkpoint, never the whole log.
	if imported.Replayed >= int64(len(items)) || imported.Replayed >= 8 {
		t.Fatalf("import replayed %d of %d events; must be < CheckpointEvery (8)", imported.Replayed, len(items))
	}
	after := readBody(t, get(t, tsB.URL+"/v1/tag/sessions/"+cr.ID))
	if !bytes.Equal(before, after) {
		t.Fatalf("migrated state diverged:\nbefore:\n%s\nafter:\n%s", before, after)
	}

	// A duplicate import is refused (the new owner already has it).
	resp = postJSON(t, tsB.URL+"/internal/sessions/import", &bundle, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate import status %d, want 409", resp.StatusCode)
	}
	readBody(t, resp)

	// Forget removes the sealed original; unseal would have restored it.
	resp = postJSON(t, tsA.URL+"/internal/sessions/"+cr.ID+"/forget", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forget status %d", resp.StatusCode)
	}
	readBody(t, resp)
	if resp := get(t, tsA.URL+"/v1/tag/sessions/"+cr.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forgotten session still served: %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}

	// The new owner accepts further feeds: the handover did not strand the
	// stream.
	feedSession(t, tsB.URL, cr.ID, EventItem{Time: t0 + 100000, Type: "a"})
}

// TestSessionUnsealRestoresService: a failed handover rolls back with
// unseal and the original session accepts feeds again.
func TestSessionUnsealRestoresService(t *testing.T) {
	_, ts := newWorkerServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	feedSession(t, ts.URL, cr.ID, EventItem{Time: t0, Type: "a"})

	resp := postJSON(t, ts.URL+"/internal/sessions/"+cr.ID+"/export", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	readBody(t, resp)
	resp = postJSON(t, ts.URL+"/internal/sessions/"+cr.ID+"/unseal", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unseal status %d", resp.StatusCode)
	}
	readBody(t, resp)
	feedSession(t, ts.URL, cr.ID, EventItem{Time: t0 + 60, Type: "b"})
}

// TestJobStealAndInject: steal pops the newest queued detached job (pinned
// jobs are skipped), inject re-homes it on another worker, and a terminal
// job's bundle installs without re-running. Also proves inject refuses a
// session-attached job whose session is elsewhere.
func TestJobStealAndInject(t *testing.T) {
	srvA, tsA := newWorkerServer(t, nil)
	_, tsB := newWorkerServer(t, nil)

	// Stop A's worker pool first so staged queue entries stay queued: this
	// test drives the steal/export protocol, not job execution.
	srvA.jobs.shutdown()

	// Stage queued jobs directly.
	mkJob := func(id, sessionID string) *job {
		return &job{id: id, req: JobCreateRequest{SessionID: sessionID}, state: JobQueued}
	}
	pinned := mkJob("j000001", "s000001")
	detachedOld := mkJob("j000002", "")
	detachedNew := mkJob("j000003", "")
	srvA.jobs.mu.Lock()
	for _, j := range []*job{pinned, detachedOld, detachedNew} {
		srvA.jobs.jobs[j.id] = j
		srvA.jobs.queue = append(srvA.jobs.queue, j)
	}
	srvA.jobs.mu.Unlock()

	resp := postJSON(t, tsA.URL+"/internal/jobs/steal", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steal status %d", resp.StatusCode)
	}
	var bundle JobBundle
	if err := json.Unmarshal(readBody(t, resp), &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.ID != "j000003" {
		t.Fatalf("stole %q, want the newest detached job j000003", bundle.ID)
	}

	// Reinstate undoes the steal: the job is queued again and a second
	// steal can take it.
	resp = postJSON(t, tsA.URL+"/internal/jobs/"+bundle.ID+"/reinstate", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reinstate status %d", resp.StatusCode)
	}
	readBody(t, resp)
	resp = postJSON(t, tsA.URL+"/internal/jobs/steal", nil, nil)
	if err := json.Unmarshal(readBody(t, resp), &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.ID != "j000003" {
		t.Fatalf("re-steal got %q, want j000003", bundle.ID)
	}

	// A pinned job whose session lives elsewhere is refused by inject.
	resp = postJSON(t, tsA.URL+"/internal/jobs/"+pinned.id+"/export", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned export status %d", resp.StatusCode)
	}
	var pinnedBundle JobBundle
	if err := json.Unmarshal(readBody(t, resp), &pinnedBundle); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, tsB.URL+"/internal/jobs/import", &pinnedBundle, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("co-location import status %d, want 409", resp.StatusCode)
	}
	readBody(t, resp)

	// Forget on the donor completes the steal; the thief runs the stolen
	// job from its bundle. (An empty JobCreateRequest fails validation —
	// what matters here is that it runs on B, not that it succeeds.)
	resp = postJSON(t, tsB.URL+"/internal/jobs/import", &bundle, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("steal import status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	resp = postJSON(t, tsA.URL+"/internal/jobs/"+bundle.ID+"/forget", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forget status %d", resp.StatusCode)
	}
	readBody(t, resp)
	if resp := get(t, tsB.URL+"/v1/mining/jobs/"+bundle.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("stolen job not served by thief: %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}

	// LIFO continues with the older detached job; once only the pinned job
	// remains queued there is nothing stealable and the reply is an empty
	// bundle, not an error.
	resp = postJSON(t, tsA.URL+"/internal/jobs/steal", nil, nil)
	var second JobBundle
	if err := json.Unmarshal(readBody(t, resp), &second); err != nil {
		t.Fatal(err)
	}
	if second.ID != detachedOld.id {
		t.Fatalf("second steal got %q, want %q", second.ID, detachedOld.id)
	}
	resp = postJSON(t, tsA.URL+"/internal/jobs/steal", nil, nil)
	var empty JobBundle
	if err := json.Unmarshal(readBody(t, resp), &empty); err != nil {
		t.Fatal(err)
	}
	if empty.ID != "" {
		t.Fatalf("stole %q with only a pinned job queued", empty.ID)
	}
}

// TestFeedAfterGuard: the events.after exactly-once guard accepts a feed
// whose precondition matches the stream and refuses a stale retry with the
// typed 409 "feed_conflict" without applying it twice.
func TestFeedAfterGuard(t *testing.T) {
	_, ts := newWorkerServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	after := int64(0)
	resp := postJSON(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		EventsRequest{Events: []EventItem{{Time: t0, Type: "a"}}, After: &after}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("guarded feed status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)

	// A duplicate delivery of the same batch (same precondition) conflicts.
	resp = postJSON(t, ts.URL+"/v1/tag/sessions/"+cr.ID+"/events",
		EventsRequest{Events: []EventItem{{Time: t0, Type: "a"}}, After: &after}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replayed feed status %d, want 409", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeFeedConflict {
		t.Fatalf("replayed feed code %q, want %q", e.Code, CodeFeedConflict)
	}
	var st SessionStateResponse
	if err := json.Unmarshal(readBody(t, get(t, ts.URL+"/v1/tag/sessions/"+cr.ID)), &st); err != nil {
		t.Fatal(err)
	}
	if st.Stream.Events != 1 {
		t.Fatalf("stream has %d events after replayed feed, want 1", st.Stream.Events)
	}
}

// TestRefreshConflictStructured: satellite check — the refresh 409 carries
// a machine-readable error code alongside the message, with the status
// unchanged.
func TestRefreshConflictStructured(t *testing.T) {
	_, ts := newWorkerServer(t, nil)
	// Refreshing a detached (non-session) job conflicts.
	body := jobRequestJSON(t, "")
	resp := post(t, ts.URL+"/v1/mining/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var created JobStatusResponse
	if err := json.Unmarshal(readBody(t, resp), &created); err != nil {
		t.Fatal(err)
	}
	pollJob(t, ts.URL, created.ID, func(js *JobStatusResponse) bool {
		return js.State == JobDone || js.State == JobFailed
	})
	resp = post(t, ts.URL+"/v1/mining/jobs/"+created.ID+"/refresh", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("refresh status %d, want 409", resp.StatusCode)
	}
	e := decodeError(t, resp)
	if e.Code != CodeRefreshConflict || e.Error == "" {
		t.Fatalf("refresh error = %+v, want code %q with a message", e, CodeRefreshConflict)
	}
}

// TestQuiesceKeepsServing: /internal/quiesce drains in place — new
// sessions are refused, but existing state stays exportable over HTTP,
// which is what lets a cluster drain migrate state off a quiesced worker.
func TestQuiesceKeepsServing(t *testing.T) {
	_, ts := newWorkerServer(t, nil)
	cr := createSession(t, ts.URL, sessionSpec)
	t0 := event.At(1996, 7, 1, 9, 0, 0)
	feedSession(t, ts.URL, cr.ID, EventItem{Time: t0, Type: "a"})

	resp := postJSON(t, ts.URL+"/internal/quiesce?timeout_ms=10000", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quiesce status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var h HealthResponse
	if err := json.Unmarshal(readBody(t, resp), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("quiesce status %q, want draining", h.Status)
	}
	if resp := post(t, ts.URL+"/v1/tag/sessions", []byte(sessionSpec)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on quiesced worker: %d, want 503", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	resp = postJSON(t, ts.URL+"/internal/sessions/"+cr.ID+"/export", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export on quiesced worker: %d", resp.StatusCode)
	}
	var bundle SessionBundle
	if err := json.Unmarshal(readBody(t, resp), &bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.ID != cr.ID {
		t.Fatalf("export bundle id %q", bundle.ID)
	}
}

// TestAssignedIDs: the router's assignment header fixes the session/job ID
// (so the ID alone determines ring ownership), and a duplicate assignment
// is refused rather than silently renamed.
func TestAssignedIDs(t *testing.T) {
	_, ts := newWorkerServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/tag/sessions", json.RawMessage(sessionSpec),
		map[string]string{AssignIDHeader: "cs000042"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("assigned create status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var cr SessionCreateResponse
	if err := json.Unmarshal(readBody(t, resp), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID != "cs000042" {
		t.Fatalf("assigned id %q, want cs000042", cr.ID)
	}
	resp = postJSON(t, ts.URL+"/v1/tag/sessions", json.RawMessage(sessionSpec),
		map[string]string{AssignIDHeader: "cs000042"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate assigned create status %d, want 422", resp.StatusCode)
	}
	if body := readBody(t, resp); !bytes.Contains(body, []byte("already exists")) {
		t.Fatalf("duplicate assigned create body %s", body)
	}
	resp = postJSON(t, ts.URL+"/v1/tag/sessions", json.RawMessage(sessionSpec),
		map[string]string{AssignIDHeader: "../evil"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("malformed assigned id status %d, want 422", resp.StatusCode)
	}
	readBody(t, resp)
}
