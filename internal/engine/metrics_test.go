package engine

import (
	"strings"
	"testing"
	"time"
)

func TestWriteMetricsText(t *testing.T) {
	c := NewCounters()
	c.Count("tag.events", 7)
	c.Count("mining.tag_runs", 3)
	c.Stage("mining.step5_scan", 1500*time.Millisecond)
	c.Stage("mining.step5_scan", 500*time.Millisecond)

	var sb strings.Builder
	if err := WriteMetricsText(&sb, c); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE tempo_counter_total counter",
		`tempo_counter_total{name="tag.events"} 7`,
		`tempo_counter_total{name="mining.tag_runs"} 3`,
		`tempo_stage_seconds_total{stage="mining.step5_scan"} 2`,
		`tempo_stage_calls_total{stage="mining.step5_scan"} 2`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, got)
		}
	}
	// Deterministic: a second render of the same set is byte-identical.
	var sb2 strings.Builder
	if err := WriteMetricsText(&sb2, c); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Fatal("metrics text is not deterministic")
	}
}

func TestWriteMetricsTextEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteMetricsText(&sb, NewCounters()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE tempo_counter_total counter") {
		t.Fatalf("empty set should still emit metric headers:\n%s", sb.String())
	}
}

func TestPromLabelEscaping(t *testing.T) {
	got := promLabel("a\"b\\c\nd")
	want := `"a\"b\\c\nd"`
	if got != want {
		t.Fatalf("promLabel = %s, want %s", got, want)
	}
}
