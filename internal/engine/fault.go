package engine

// FaultPlan deterministically injects interruptions at chosen points of a
// solve, measured in the same abstract work units the budget counts. It is
// the chaos-testing harness behind the resilience guarantees: a plan makes
// "the process died after exactly N units of work" reproducible, so tests
// can sweep an interrupt over every interior step of a solve and assert the
// invariants (typed error, no panic, no silently truncated result, and —
// with checkpoints — resume equals uninterrupted).
//
// A tripped plan surfaces exactly like an exhausted budget: the sticky
// typed *Interrupted (Reason "fault") matching ErrInterrupted under
// errors.Is, carrying partial stats.
type FaultPlan struct {
	// TripAt interrupts the solve once its cumulative work reaches TripAt
	// units (> 0; the Nth unit of work trips the fault).
	TripAt int64
	// Every interrupts whenever cumulative work crosses a trip point placed
	// in each successive window of Every units (> 0). With Seed zero the
	// trip point is the window boundary itself; a non-zero Seed offsets the
	// point pseudo-randomly (but reproducibly) within each window. An Exec
	// is sticky after the first interruption, so Every matters when several
	// Execs share one plan — each trips at its own deterministic point.
	Every int64
	// Seed varies Every-mode trip points between otherwise identical plans.
	Seed int64
}

// enabled reports whether the plan can ever trip.
func (f *FaultPlan) enabled() bool {
	return f != nil && (f.TripAt > 0 || f.Every > 0)
}

// trips reports whether a trip point lies in the half-open work interval
// (before, after]. Step calls it with the window its atomic add claimed, so
// concurrent goroutines sharing one Exec observe disjoint intervals and
// exactly one of them trips each point.
func (f *FaultPlan) trips(before, after int64) bool {
	if f.TripAt > 0 && before < f.TripAt && f.TripAt <= after {
		return true
	}
	if f.Every > 0 {
		// Trip point of window w (w = 0, 1, ...) is w*Every + offset(w),
		// with offset in [1, Every].
		for w := before / f.Every; w*f.Every < after; w++ {
			p := w*f.Every + f.offset(w)
			if before < p && p <= after {
				return true
			}
		}
	}
	return false
}

// offset derives window w's trip offset in [1, Every] from the seed.
func (f *FaultPlan) offset(w int64) int64 {
	if f.Seed == 0 {
		return f.Every
	}
	return SplitMix64(uint64(f.Seed)^uint64(w))%f.Every + 1
}

// SplitMix64 is the SplitMix64 finalizer: a cheap deterministic scrambler
// returning a non-negative int64. FaultPlan derives its per-window trip
// offsets from it, and the store's fault-injecting filesystem derives its
// crash-time data-retention decisions from the same function so every
// chaos harness in the repository is seeded the same way.
func SplitMix64(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	v := x ^ (x >> 31)
	return int64(v &^ (1 << 63))
}
