package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrentCount hammers one Counters from many goroutines and
// checks nothing is lost: the atomic-cell hot path must be exactly additive.
func TestCountersConcurrentCount(t *testing.T) {
	c := NewCounters()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Count("shared", 1)
				c.Count(fmt.Sprintf("own.%d", w%4), 2)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Get("shared"); got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	snap := c.Snapshot()
	total := int64(0)
	for i := 0; i < 4; i++ {
		total += snap[fmt.Sprintf("own.%d", i)]
	}
	if total != workers*perWorker*2 {
		t.Fatalf("own.* total = %d, want %d", total, workers*perWorker*2)
	}
}

// TestCountersSnapshotNotTorn runs Snapshot concurrently with paired
// increments (a and b always bumped together by the same delta) and checks
// every snapshot sees a consistent ordering: b can never be ahead of a,
// because a is always incremented first and reads are atomic per cell.
func TestCountersSnapshotNotTorn(t *testing.T) {
	c := NewCounters()
	c.Count("a", 0)
	c.Count("b", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			c.Count("a", 1)
			c.Count("b", 1)
		}
	}()
	for {
		snap := c.Snapshot()
		if snap["b"] > snap["a"] {
			t.Fatalf("torn snapshot: b=%d ahead of a=%d", snap["b"], snap["a"])
		}
		select {
		case <-done:
			snap := c.Snapshot()
			if snap["a"] != 5000 || snap["b"] != 5000 {
				t.Fatalf("final snapshot %v, want a=b=5000", snap)
			}
			return
		default:
		}
	}
}

// TestCountersMerge checks per-worker merge totals equal shared counting.
func TestCountersMerge(t *testing.T) {
	shared := NewCounters()
	var workers []*Counters
	for w := 0; w < 3; w++ {
		wc := NewCounters()
		for i := 0; i <= w; i++ {
			wc.Count("tag.runs", int64(10*(w+1)))
			shared.Count("tag.runs", int64(10*(w+1)))
		}
		workers = append(workers, wc)
	}
	merged := NewCounters()
	for _, wc := range workers {
		merged.Merge(wc.Snapshot())
	}
	if got, want := merged.Get("tag.runs"), shared.Get("tag.runs"); got != want {
		t.Fatalf("merged = %d, shared = %d", got, want)
	}
	// Merging zero-valued entries must not materialize noise rows.
	merged.Merge(map[string]int64{"never": 0})
	if _, ok := merged.Snapshot()["never"]; ok {
		t.Fatal("zero-delta merge created a counter")
	}
}

// TestCountersTableStillRenders pins the -stats table format after the
// atomic-cell rework.
func TestCountersTableStillRenders(t *testing.T) {
	c := NewCounters()
	c.Count("mining.refs.scanned", 7)
	c.Stage("mining.step5_scan", 1500*time.Microsecond)
	var sb strings.Builder
	if err := c.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"--- engine stats ---", "mining.refs.scanned", "7", "mining.step5_scan.time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
