package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestZeroConfigStartsNil(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if ex := c.Start(); ex != nil {
		t.Fatal("zero config must start a nil Exec")
	}
}

func TestNilExecMethodsAreSafe(t *testing.T) {
	var ex *Exec
	if err := ex.Step(100); err != nil {
		t.Fatal(err)
	}
	if err := ex.Err(); err != nil {
		t.Fatal(err)
	}
	if ex.Used() != 0 {
		t.Fatal("nil Exec must report zero use")
	}
	ex.Count("x", 1)
	ex.Stage("s")()
	if got := ex.Seal(nil); got != nil {
		t.Fatal("nil seal must pass through")
	}
	sentinel := errors.New("boom")
	if got := ex.Seal(sentinel); got != sentinel {
		t.Fatal("foreign errors must pass through")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	ex := Config{Budget: 10}.Start()
	if ex == nil {
		t.Fatal("budgeted config must start an Exec")
	}
	if err := ex.Step(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := ex.Step(1)
	if err == nil {
		t.Fatal("budget must be enforced")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err %v must match ErrInterrupted", err)
	}
	var ip *Interrupted
	if !errors.As(err, &ip) {
		t.Fatalf("err %T must be *Interrupted", err)
	}
	if ip.Reason != "budget" {
		t.Fatalf("reason %q, want budget", ip.Reason)
	}
	if ip.Steps != 11 {
		t.Fatalf("steps %d, want 11", ip.Steps)
	}
	// Sticky: further steps return the same interruption.
	if err2 := ex.Step(1); !errors.Is(err2, ErrInterrupted) {
		t.Fatalf("interruption must be sticky, got %v", err2)
	}
	if err2 := ex.Err(); !errors.Is(err2, ErrInterrupted) {
		t.Fatalf("Err must report the sticky interruption, got %v", err2)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ex := Config{Ctx: ctx, CheckEvery: 1}.Start()
	if err := ex.Step(1); err != nil {
		t.Fatalf("live context: %v", err)
	}
	cancel()
	err := ex.Step(1)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("cancelled context must interrupt, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interruption must unwrap to context.Canceled, got %v", err)
	}
	var ip *Interrupted
	errors.As(err, &ip)
	if ip.Reason != "context" {
		t.Fatalf("reason %q, want context", ip.Reason)
	}
}

func TestContextPollStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := Config{Ctx: ctx, CheckEvery: 100}.Start()
	// Below the stride the (already cancelled) context is not yet polled.
	if err := ex.Step(1); err != nil {
		t.Fatalf("below stride: %v", err)
	}
	if err := ex.Step(99); err == nil {
		t.Fatal("reaching the stride must poll and interrupt")
	}
}

func TestErrPollsContextImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := Config{Ctx: ctx}.Start()
	if err := ex.Err(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Err must poll the context regardless of stride, got %v", err)
	}
}

func TestSealAttachesStats(t *testing.T) {
	c := NewCounters()
	ex := Config{Budget: 1, Observer: c}.Start()
	ex.Count("layer.widgets", 7)
	err := ex.Step(2)
	if err == nil {
		t.Fatal("budget must interrupt")
	}
	ex.Count("layer.widgets", 3) // work recorded after the interruption
	sealed := ex.Seal(err)
	var ip *Interrupted
	if !errors.As(sealed, &ip) {
		t.Fatalf("sealed %T", sealed)
	}
	if ip.Stats["layer.widgets"] != 10 {
		t.Fatalf("sealed stats %v, want layer.widgets=10", ip.Stats)
	}
	if ip.Steps != 2 {
		t.Fatalf("sealed steps %d, want 2", ip.Steps)
	}
	// Wrapped interruptions are refreshed too.
	wrapped := ex.Seal(fmt.Errorf("outer: %w", err))
	if !errors.Is(wrapped, ErrInterrupted) {
		t.Fatal("wrapping must preserve the sentinel")
	}
}

func TestCountersObserver(t *testing.T) {
	c := NewCounters()
	c.Count("a", 2)
	c.Count("a", 3)
	c.Stage("phase", 2*time.Millisecond)
	c.Stage("phase", 3*time.Millisecond)
	if c.Get("a") != 5 {
		t.Fatalf("a = %d", c.Get("a"))
	}
	if c.Stages()["phase"] != 5*time.Millisecond {
		t.Fatalf("phase = %v", c.Stages()["phase"])
	}
	snap := c.Snapshot()
	c.Count("a", 1)
	if snap["a"] != 5 {
		t.Fatal("snapshot must be a copy")
	}
	var b strings.Builder
	if err := c.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"a", "5", "phase.time", "(2 calls)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentStepAndCount(t *testing.T) {
	c := NewCounters()
	ex := Config{Budget: 1 << 40, Observer: c}.Start()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := ex.Step(1); err != nil {
					t.Error(err)
					return
				}
				ex.Count("n", 1)
			}
		}()
	}
	wg.Wait()
	if ex.Used() != 8000 {
		t.Fatalf("used %d, want 8000", ex.Used())
	}
	if c.Get("n") != 8000 {
		t.Fatalf("n %d, want 8000", c.Get("n"))
	}
}

func TestStageTimer(t *testing.T) {
	c := NewCounters()
	ex := Config{Observer: c}.Start()
	stop := ex.Stage("work")
	time.Sleep(2 * time.Millisecond)
	stop()
	if c.Stages()["work"] <= 0 {
		t.Fatal("stage timer must record elapsed time")
	}
}
