package engine

import (
	"errors"
	"sync"
	"testing"
)

// TestFaultTripAt: a TripAt plan interrupts exactly when cumulative work
// reaches the planned unit, regardless of the step batching.
func TestFaultTripAt(t *testing.T) {
	for _, batch := range []int64{1, 3, 7} {
		ex := Config{Fault: &FaultPlan{TripAt: 10}}.Start()
		if ex == nil {
			t.Fatal("fault-only config must enable the carrier")
		}
		var err error
		steps := 0
		for err == nil && steps < 100 {
			err = ex.Step(batch)
			steps++
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("batch %d: err = %v, want ErrInterrupted", batch, err)
		}
		var ip *Interrupted
		if !errors.As(err, &ip) || ip.Reason != "fault" {
			t.Fatalf("batch %d: got %v, want fault reason", batch, err)
		}
		// The trip happens on the Step whose window covers unit 10.
		if got := ex.Used(); got < 10 || got >= 10+batch {
			t.Fatalf("batch %d: tripped at %d units, want within [10,%d)", batch, got, 10+batch)
		}
		// Sticky: further stepping keeps failing.
		if err2 := ex.Step(1); !errors.Is(err2, ErrInterrupted) {
			t.Fatalf("batch %d: fault not sticky: %v", batch, err2)
		}
	}
}

// TestFaultNeverTrips: work below the planned unit is unaffected.
func TestFaultNeverTrips(t *testing.T) {
	ex := Config{Fault: &FaultPlan{TripAt: 1000}}.Start()
	for i := 0; i < 100; i++ {
		if err := ex.Step(1); err != nil {
			t.Fatalf("tripped early at %d: %v", ex.Used(), err)
		}
	}
}

// TestFaultEverySeeded: Every-mode places one deterministic trip point per
// window; the same seed reproduces it, a different seed (usually) moves it.
func TestFaultEverySeeded(t *testing.T) {
	tripPoint := func(seed int64) int64 {
		ex := Config{Fault: &FaultPlan{Every: 64, Seed: seed}}.Start()
		for {
			if err := ex.Step(1); err != nil {
				return ex.Used()
			}
		}
	}
	a, b := tripPoint(42), tripPoint(42)
	if a != b {
		t.Fatalf("same seed tripped at %d and %d", a, b)
	}
	if a < 1 || a > 64 {
		t.Fatalf("trip point %d outside the first window", a)
	}
	if tripPoint(0) != 64 {
		t.Fatalf("unseeded Every must trip at the window boundary, got %d", tripPoint(0))
	}
	diverged := false
	for seed := int64(1); seed <= 8; seed++ {
		if tripPoint(seed) != a {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("eight different seeds all tripped at the same point")
	}
}

// TestFaultConcurrent: goroutines sharing one Exec observe disjoint work
// windows, so the plan trips exactly once and every worker sees the same
// sticky interruption — no panics, no lost trip.
func TestFaultConcurrent(t *testing.T) {
	ex := Config{Fault: &FaultPlan{TripAt: 500}}.Start()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := ex.Step(1); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	tripped := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		tripped++
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("worker saw %v, want ErrInterrupted", err)
		}
	}
	if tripped == 0 {
		t.Fatal("1600 units of shared work never hit the unit-500 fault")
	}
}
