package engine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Counters is the standard Observer: mutex-guarded named counters plus
// accumulated stage timings. Safe for concurrent use; the zero value is NOT
// ready — use NewCounters.
type Counters struct {
	mu     sync.Mutex
	counts map[string]int64
	stages map[string]time.Duration
	calls  map[string]int64 // stage invocation counts
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{
		counts: make(map[string]int64),
		stages: make(map[string]time.Duration),
		calls:  make(map[string]int64),
	}
}

// Count implements Observer.
func (c *Counters) Count(name string, delta int64) {
	c.mu.Lock()
	c.counts[name] += delta
	c.mu.Unlock()
}

// Stage implements Observer: timings accumulate per stage name.
func (c *Counters) Stage(name string, elapsed time.Duration) {
	c.mu.Lock()
	c.stages[name] += elapsed
	c.calls[name]++
	c.mu.Unlock()
}

// Get returns one counter's current value.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Snapshot implements Snapshotter: a copy of the counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Stages returns a copy of the accumulated stage timings.
func (c *Counters) Stages() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]time.Duration, len(c.stages))
	for k, v := range c.stages {
		out[k] = v
	}
	return out
}

// WriteTable renders the counters and stage timings as an aligned
// two-column table, sorted by name — the `-stats` output of the CLIs.
func (c *Counters) WriteTable(w io.Writer) error {
	c.mu.Lock()
	type row struct {
		name, value string
	}
	var rows []row
	for k, v := range c.counts {
		rows = append(rows, row{k, fmt.Sprint(v)})
	}
	for k, d := range c.stages {
		v := d.Round(time.Microsecond).String()
		if n := c.calls[k]; n > 1 {
			v = fmt.Sprintf("%s (%d calls)", v, n)
		}
		rows = append(rows, row{k + ".time", v})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "--- engine stats ---")
	if len(rows) == 0 {
		fmt.Fprintln(bw, "(no counters recorded)")
	}
	for _, r := range rows {
		fmt.Fprintf(bw, "%-*s  %s\n", width, r.name, r.value)
	}
	return bw.Flush()
}
