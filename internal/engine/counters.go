package engine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counters is the standard Observer: named counters backed by per-counter
// atomic cells, plus accumulated stage timings. Count is the hot path — the
// mining worker pool hammers it from every goroutine — so it holds only the
// read side of the lock: concurrent Counts proceed in parallel (shared read
// lock, independent atomic adds), and the write lock is paid once per
// counter name, ever. Snapshot takes the write side, which quiesces every
// in-flight add and yields an atomic bulk cut of the whole counter set —
// a merge of per-worker stats can never observe a torn view where one
// counter reflects an update whose sibling update is still in flight. Safe
// for concurrent use; the zero value is NOT ready — use NewCounters.
type Counters struct {
	mu     sync.RWMutex // read side: counting; write side: snapshots, stages
	counts map[string]*atomic.Int64
	stages map[string]time.Duration
	calls  map[string]int64 // stage invocation counts
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{
		counts: make(map[string]*atomic.Int64),
		stages: make(map[string]time.Duration),
		calls:  make(map[string]int64),
	}
}

// Count implements Observer. The add happens under the read lock, so it is
// concurrent with other Counts but serialized against Snapshot's bulk cut.
func (c *Counters) Count(name string, delta int64) {
	c.mu.RLock()
	if cell := c.counts[name]; cell != nil {
		cell.Add(delta)
		c.mu.RUnlock()
		return
	}
	c.mu.RUnlock()
	c.mu.Lock()
	cell := c.counts[name]
	if cell == nil {
		cell = new(atomic.Int64)
		c.counts[name] = cell
	}
	cell.Add(delta)
	c.mu.Unlock()
}

// Stage implements Observer: timings accumulate per stage name. Stages stop
// at most once per solver phase, so the plain mutex path is fine here.
func (c *Counters) Stage(name string, elapsed time.Duration) {
	c.mu.Lock()
	c.stages[name] += elapsed
	c.calls[name]++
	c.mu.Unlock()
}

// Get returns one counter's current value.
func (c *Counters) Get(name string) int64 {
	c.mu.RLock()
	cell := c.counts[name]
	c.mu.RUnlock()
	if cell == nil {
		return 0
	}
	return cell.Load()
}

// Snapshot implements Snapshotter: a copy of the counters taken as one
// atomic bulk cut — the write lock excludes every in-flight Count, so the
// returned map is a consistent point-in-time view across ALL counters, not
// a sequence of independent per-counter reads.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, cell := range c.counts {
		out[k] = cell.Load()
	}
	return out
}

// Merge bulk-adds a snapshot (e.g. another worker's Counters.Snapshot) into
// this set. Deltas are additive and commutative, so merging per-worker stats
// in any order yields the same totals as counting into one shared set.
func (c *Counters) Merge(snap map[string]int64) {
	for k, v := range snap {
		if v != 0 {
			c.Count(k, v)
		}
	}
}

// Stages returns a copy of the accumulated stage timings.
func (c *Counters) Stages() map[string]time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]time.Duration, len(c.stages))
	for k, v := range c.stages {
		out[k] = v
	}
	return out
}

// WriteTable renders the counters and stage timings as an aligned
// two-column table, sorted by name — the `-stats` output of the CLIs.
func (c *Counters) WriteTable(w io.Writer) error {
	c.mu.Lock()
	type row struct {
		name, value string
	}
	var rows []row
	for k, cell := range c.counts {
		rows = append(rows, row{k, fmt.Sprint(cell.Load())})
	}
	for k, d := range c.stages {
		v := d.Round(time.Microsecond).String()
		if n := c.calls[k]; n > 1 {
			v = fmt.Sprintf("%s (%d calls)", v, n)
		}
		rows = append(rows, row{k + ".time", v})
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	width := 0
	for _, r := range rows {
		if len(r.name) > width {
			width = len(r.name)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "--- engine stats ---")
	if len(rows) == 0 {
		fmt.Fprintln(bw, "(no counters recorded)")
	}
	for _, r := range rows {
		fmt.Fprintf(bw, "%-*s  %s\n", width, r.name, r.value)
	}
	return bw.Flush()
}
