package engine

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMetricsText renders a counter set in the Prometheus text exposition
// format (version 0.0.4): one `tempo_counter_total` sample per counter and
// one `tempo_stage_seconds_total` / `tempo_stage_calls_total` pair per
// stage timer, all labelled with the engine name so dotted counter names
// like "tag.events.rejected" survive unmangled. Samples are sorted by
// label, so equal counter sets render to identical bytes. The same text
// backs the CLIs' `-stats -stats-format prom` output and tempod's /metrics
// endpoint.
func WriteMetricsText(w io.Writer, c *Counters) error {
	bw := bufio.NewWriter(w)

	counts := c.Snapshot()
	names := make([]string, 0, len(counts))
	for k := range counts {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintln(bw, "# HELP tempo_counter_total Cumulative engine counter values.")
	fmt.Fprintln(bw, "# TYPE tempo_counter_total counter")
	for _, k := range names {
		fmt.Fprintf(bw, "tempo_counter_total{name=%s} %d\n", promLabel(k), counts[k])
	}

	c.mu.RLock()
	stages := make(map[string]float64, len(c.stages))
	calls := make(map[string]int64, len(c.stages))
	snames := make([]string, 0, len(c.stages))
	for k, d := range c.stages {
		stages[k] = d.Seconds()
		calls[k] = c.calls[k]
		snames = append(snames, k)
	}
	c.mu.RUnlock()
	sort.Strings(snames)
	fmt.Fprintln(bw, "# HELP tempo_stage_seconds_total Cumulative wall time spent per solver stage.")
	fmt.Fprintln(bw, "# TYPE tempo_stage_seconds_total counter")
	for _, k := range snames {
		fmt.Fprintf(bw, "tempo_stage_seconds_total{stage=%s} %s\n",
			promLabel(k), strconv.FormatFloat(stages[k], 'f', -1, 64))
	}
	fmt.Fprintln(bw, "# HELP tempo_stage_calls_total Stage timer invocations.")
	fmt.Fprintln(bw, "# TYPE tempo_stage_calls_total counter")
	for _, k := range snames {
		fmt.Fprintf(bw, "tempo_stage_calls_total{stage=%s} %d\n", promLabel(k), calls[k])
	}
	return bw.Flush()
}

// promLabel quotes a label value per the exposition format: backslash,
// double quote and newline are escaped.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return `"` + r.Replace(v) + `"`
}
