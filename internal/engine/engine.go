// Package engine is the unified execution carrier every long-running solver
// layer threads through: context-aware cancellation, work budgets, and
// observability (counters and stage timers).
//
// The paper's complexity results make the need concrete: consistency is
// NP-hard (Theorem 1), and even the polynomial algorithms carry high-degree
// bounds like O(n⁵|M|²w) (Theorem 2), so every solver in this repository —
// exact backtracking, propagation fixpoints, TAG subset-construction
// simulation, the mining pipeline — can legitimately run for a very long
// time on adversarial input. An Exec makes such runs cancellable (via a
// context deadline), bounded (via a step budget) and measurable (via a
// pluggable Observer), while the zero-value Config preserves the historical
// behaviour: unbounded and silent, with near-zero overhead.
//
// Layering convention: each layer's Options struct embeds a Config; the
// layer's public entry point calls Config.Start once and threads the
// resulting *Exec (which may be nil — every method is nil-safe) through its
// own loops and into the layers beneath it, so one budget and one deadline
// govern the whole solve. Exceeding either returns a typed *Interrupted
// error (matching ErrInterrupted under errors.Is) carrying the partial
// stats gathered so far, so callers degrade gracefully instead of hanging.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInterrupted is the sentinel every *Interrupted matches under
// errors.Is: the solve was cut short by a budget or a cancelled context.
var ErrInterrupted = errors.New("engine: interrupted")

// Interrupted is the typed error returned when a budget is exhausted or the
// context is cancelled. It carries the partial stats gathered up to the
// interruption so callers can report how far the solve got.
type Interrupted struct {
	// Reason is "budget", "context" or "fault" (injected by a FaultPlan).
	Reason string
	// Cause is the context's error for Reason "context", nil for "budget".
	Cause error
	// Steps is the work performed (budget units) before the interruption.
	Steps int64
	// Stats is a snapshot of the observer's counters at the interruption
	// (nil when no snapshotting observer was configured).
	Stats map[string]int64
}

// Error implements error.
func (e *Interrupted) Error() string {
	switch e.Reason {
	case "context":
		return fmt.Sprintf("engine: interrupted after %d steps: %v", e.Steps, e.Cause)
	case "fault":
		return fmt.Sprintf("engine: interrupted after %d steps: injected fault", e.Steps)
	default:
		return fmt.Sprintf("engine: interrupted after %d steps: budget exhausted", e.Steps)
	}
}

// Is matches ErrInterrupted, so errors.Is(err, engine.ErrInterrupted) holds
// for every interruption regardless of reason.
func (e *Interrupted) Is(target error) bool { return target == ErrInterrupted }

// Unwrap exposes the context's error (context.Canceled or
// context.DeadlineExceeded) when the interruption came from the context.
func (e *Interrupted) Unwrap() error { return e.Cause }

// Observer receives execution telemetry. Implementations must be safe for
// concurrent use: the mining pipeline fans work out to goroutines sharing
// one Exec.
type Observer interface {
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Stage records one timed stage (stage timers accumulate per name).
	Stage(name string, elapsed time.Duration)
}

// Snapshotter is the optional Observer extension the engine uses to attach
// partial stats to Interrupted errors. *Counters implements it.
type Snapshotter interface {
	Snapshot() map[string]int64
}

// DefaultCheckEvery is the default stride (in budget units) between context
// polls; Step only consults the context clock every stride to keep hot
// loops cheap.
const DefaultCheckEvery = 1024

// Config configures execution control for one solver call. The zero value
// means unbounded, uncancellable and silent — exactly the historical
// behaviour of every Options struct that embeds it.
type Config struct {
	// Ctx cancels the solve when done (deadline or explicit cancellation).
	// nil means no cancellation.
	Ctx context.Context
	// Budget bounds the total work (in the layer's step units: search
	// nodes, propagation cells, simulation runs...). 0 means unlimited.
	Budget int64
	// Observer receives counters and stage timings. nil means silent.
	Observer Observer
	// CheckEvery overrides the context poll stride (budget units between
	// polls); 0 means DefaultCheckEvery.
	CheckEvery int64
	// Fault deterministically injects an interruption at planned work
	// units (Reason "fault") — the chaos-testing harness. nil means none.
	Fault *FaultPlan
	// Mode selects the execution core for layers that have both a compiled
	// and an interpreted implementation (the TAG simulation). The zero value
	// is ExecCompiled. Mode does not affect Enabled/Start: it is semantic
	// routing, not control or telemetry.
	Mode ExecMode
}

// Enabled reports whether the config asks for any control or telemetry.
func (c Config) Enabled() bool {
	return c.Ctx != nil || c.Budget > 0 || c.Observer != nil || c.Fault.enabled()
}

// Start builds the Exec carrier for one solve. It returns nil for a zero
// config; every Exec method is nil-safe, so layers thread the result
// unconditionally.
func (c Config) Start() *Exec {
	if !c.Enabled() {
		return nil
	}
	ex := &Exec{
		ctx:        c.Ctx,
		budget:     c.Budget,
		obs:        c.Observer,
		checkEvery: c.CheckEvery,
	}
	if c.Fault.enabled() {
		ex.fault = c.Fault
	}
	if ex.checkEvery <= 0 {
		ex.checkEvery = DefaultCheckEvery
	}
	return ex
}

// Exec is the execution carrier threaded through a solve: it meters work
// against the budget, polls the context with a bounded stride, and forwards
// telemetry to the observer. A nil *Exec is valid and means "no control, no
// telemetry". Exec is safe for concurrent use by multiple goroutines
// sharing one solve (the mining worker pool).
type Exec struct {
	ctx        context.Context
	budget     int64
	checkEvery int64
	obs        Observer
	fault      *FaultPlan

	used      atomic.Int64
	sincePoll atomic.Int64
	state     atomic.Pointer[Interrupted] // sticky once interrupted
	sealMu    sync.Mutex                  // serializes Seal's refresh of the sticky state
}

// Step consumes n budget units and reports whether the solve must stop:
// a non-nil error is the sticky *Interrupted. Layers call it inside their
// hot loops with batched n, so the per-iteration cost is an atomic add.
func (ex *Exec) Step(n int64) error {
	if ex == nil {
		return nil
	}
	if ip := ex.state.Load(); ip != nil {
		return ip
	}
	used := ex.used.Add(n)
	if ex.budget > 0 && used > ex.budget {
		return ex.interrupt("budget", nil)
	}
	if ex.fault != nil && ex.fault.trips(used-n, used) {
		return ex.interrupt("fault", nil)
	}
	if ex.ctx != nil && ex.sincePoll.Add(n) >= ex.checkEvery {
		ex.sincePoll.Store(0)
		if err := ex.ctx.Err(); err != nil {
			return ex.interrupt("context", err)
		}
	}
	return nil
}

// Err reports the sticky interruption without consuming budget, polling the
// context first. Layers use it at loop boundaries where no work unit is
// being spent.
func (ex *Exec) Err() error {
	if ex == nil {
		return nil
	}
	if ip := ex.state.Load(); ip != nil {
		return ip
	}
	if ex.ctx != nil {
		if err := ex.ctx.Err(); err != nil {
			return ex.interrupt("context", err)
		}
	}
	return nil
}

// interrupt records the first interruption (later ones keep the original).
func (ex *Exec) interrupt(reason string, cause error) *Interrupted {
	ip := &Interrupted{Reason: reason, Cause: cause, Steps: ex.used.Load()}
	if !ex.state.CompareAndSwap(nil, ip) {
		return ex.state.Load()
	}
	return ip
}

// Used returns the budget units consumed so far.
func (ex *Exec) Used() int64 {
	if ex == nil {
		return 0
	}
	return ex.used.Load()
}

// Count forwards a counter increment to the observer.
func (ex *Exec) Count(name string, delta int64) {
	if ex == nil || ex.obs == nil || delta == 0 {
		return
	}
	ex.obs.Count(name, delta)
}

// Stage starts a stage timer and returns the function that stops it and
// reports the elapsed time to the observer. Use as
//
//	defer ex.Stage("mining.step5_scan")()
func (ex *Exec) Stage(name string) func() {
	if ex == nil || ex.obs == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { ex.obs.Stage(name, time.Since(t0)) }
}

// Seal finalizes an error on the way out of a layer: when err is (or wraps)
// this Exec's *Interrupted, its Steps and Stats are refreshed so the error
// carries the final partial stats. Any other error — and nil — is returned
// unchanged. Seal is idempotent; every layer may seal on return.
func (ex *Exec) Seal(err error) error {
	if ex == nil || err == nil {
		return err
	}
	var ip *Interrupted
	if errors.As(err, &ip) {
		ex.sealMu.Lock()
		ip.Steps = ex.used.Load()
		if snap, ok := ex.obs.(Snapshotter); ok {
			ip.Stats = snap.Snapshot()
		}
		ex.sealMu.Unlock()
	}
	return err
}
