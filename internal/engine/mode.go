package engine

import "fmt"

// ExecMode selects which execution core the TAG simulation layer runs: the
// compiled flat-array program (the default) or the original interpreted
// node-graph walker. The interpreter is kept for one release as the
// differential-testing baseline — the oracle runs every contract under both
// modes and demands byte-identical results — and will be removed once the
// compiled core has soaked.
//
// The zero value is ExecCompiled, so existing engine.Config literals pick up
// the compiled core without changes.
type ExecMode int

const (
	// ExecCompiled runs the flat-array compiled program (default).
	ExecCompiled ExecMode = iota
	// ExecInterp runs the original interpreted simulation.
	ExecInterp
)

// Interpreted reports whether the mode selects the interpreted core.
func (m ExecMode) Interpreted() bool { return m == ExecInterp }

// String renders the mode as the -exec flag spells it.
func (m ExecMode) String() string {
	switch m {
	case ExecInterp:
		return "interp"
	default:
		return "compiled"
	}
}

// ParseExecMode parses the -exec flag values "compiled" and "interp".
// The empty string means the default (compiled).
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "compiled":
		return ExecCompiled, nil
	case "interp", "interpreted":
		return ExecInterp, nil
	default:
		return ExecCompiled, fmt.Errorf("engine: unknown exec mode %q (want compiled or interp)", s)
	}
}
