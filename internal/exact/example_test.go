package exact_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/exact"
	"repro/internal/granularity"
)

// Example decides the paper's Figure-1(b) disjunction exactly: pinning the
// month distance to a value propagation cannot refute, the search still
// discovers unsatisfiability.
func Example() {
	sys := granularity.Default()
	s := core.Fig1b()
	s.MustConstrain("X0", "X2", core.MustTCG(1, 11, "month"))
	v, err := exact.Solve(sys, s, exact.Options{
		Start: event.At(1996, 1, 1, 0, 0, 0),
		End:   event.At(1998, 12, 31, 0, 0, 0),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("satisfiable:", v.Satisfiable)
	fmt.Println("refuted by propagation alone:", v.RefutedByPropagation)
	// Output:
	// satisfiable: false
	// refuted by propagation alone: false
}
