// Package exact decides consistency of event structures with multiple
// granularities by exhaustive, propagation-pruned backtracking over a
// bounded time horizon. The problem is NP-hard (the paper's Theorem 1), so
// this solver is meant for ground truth on small instances — the
// disjunction gadget of Figure 1(b), the SUBSET-SUM reduction instances —
// and as the exact comparator the experiments measure the approximate
// propagation against.
//
// Completeness within the horizon rests on a discretization argument: if a
// matching complex event exists with timestamps inside the horizon, one
// exists with every timestamp on a granule-interval boundary. Snapping each
// timestamp down to the latest interval start (over all granularities in
// the structure) at or before it keeps the timestamp inside the same
// interval of the same granule of every granularity, so every cover — and
// hence every TCG — is preserved. The search therefore enumerates only
// boundary points.
package exact

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/granularity"
	"repro/internal/propagate"
	"repro/internal/stp"
)

// Options configures Solve.
type Options struct {
	// Start and End bound the candidate timestamps (second indices,
	// inclusive). Required: End > Start >= 1.
	Start, End int64
	// MaxNodes bounds the number of search-tree nodes expanded; Solve
	// errors when exceeded. 0 means DefaultMaxNodes.
	MaxNodes int64
	// Propagate configures the pruning propagation pass Solve and
	// Enumerate run first. Its Engine field is ignored — the exact solver's
	// own Engine governs the whole solve, propagation included.
	Propagate propagate.Options
	// Engine carries cancellation, the work budget (one unit per search
	// node plus the propagation work beneath) and the observer
	// ("exact.nodes", "exact.prunes"). The zero value is unbounded and
	// silent; MaxNodes still applies either way.
	Engine engine.Config
}

// DefaultMaxNodes is the default search budget.
const DefaultMaxNodes = 20_000_000

// Verdict is the outcome of an exact consistency check.
type Verdict struct {
	// Satisfiable reports whether a matching complex event exists with all
	// timestamps inside the horizon.
	Satisfiable bool
	// Witness maps each variable to a timestamp when Satisfiable.
	Witness map[core.Variable]int64
	// Nodes is the number of search nodes expanded.
	Nodes int64
	// RefutedByPropagation is set when the approximate propagation already
	// proved inconsistency and no search ran.
	RefutedByPropagation bool
}

// Solve decides bounded-horizon consistency of s under sys.
func Solve(sys *granularity.System, s *core.EventStructure, opt Options) (*Verdict, error) {
	ex := opt.Engine.Start()
	v, err := solveExec(ex, sys, s, opt)
	return v, ex.Seal(err)
}

func solveExec(ex *engine.Exec, sys *granularity.System, s *core.EventStructure, opt Options) (*Verdict, error) {
	if opt.Start < 1 || opt.End <= opt.Start {
		return nil, fmt.Errorf("exact: invalid horizon [%d,%d]", opt.Start, opt.End)
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	prop, err := propagate.RunExec(ex, sys, s, opt.Propagate)
	if err != nil {
		return nil, err
	}
	if !prop.Consistent {
		return &Verdict{Satisfiable: false, RefutedByPropagation: true}, nil
	}

	points := boundaryPoints(sys, s.Granularities(), opt.Start, opt.End)
	if len(points) == 0 {
		return &Verdict{Satisfiable: false}, nil
	}
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}

	sv := &solver{
		sys:      sys,
		s:        s,
		prop:     prop,
		points:   points,
		order:    order,
		assigned: make(map[core.Variable]int64, len(order)),
		maxNodes: maxNodes,
		ex:       ex,
	}
	sv.precomputeBounds()
	defer ex.Stage("exact.search")()
	found, err := sv.search(0)
	sv.flushCounters()
	if err != nil {
		return nil, err
	}
	v := &Verdict{Satisfiable: found, Nodes: sv.nodes}
	if found {
		v.Witness = make(map[core.Variable]int64, len(sv.assigned))
		for k, t := range sv.assigned {
			v.Witness[k] = t
		}
	}
	return v, nil
}

// boundaryPoints collects the sorted, deduplicated starts of every granule
// interval of the named granularities intersecting [start, end].
func boundaryPoints(sys *granularity.System, grans []string, start, end int64) []int64 {
	// The horizon start is always a candidate: a structure whose TCGs
	// reference no granularity (or whose granules all lie outside the
	// horizon) still needs a point to assign, and the snap-down argument
	// already clamps below-horizon interval starts to start.
	set := map[int64]bool{start: true}
	for _, name := range grans {
		g := sys.MustGet(name)
		for z := granularity.FirstTouching(g, start); ; z++ {
			ivs, ok := g.Intervals(z)
			if !ok {
				break
			}
			if len(ivs) == 0 || ivs[0].First > end {
				break
			}
			for _, iv := range ivs {
				if iv.First <= end && iv.Last >= start {
					p := iv.First
					if p < start {
						p = start
					}
					set[p] = true
				}
			}
		}
	}
	out := make([]int64, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type solver struct {
	sys      *granularity.System
	s        *core.EventStructure
	prop     *propagate.Result
	points   []int64
	order    []core.Variable
	assigned map[core.Variable]int64
	nodes    int64
	maxNodes int64
	// ex meters the search against the engine budget/deadline; nil means
	// unbounded.
	ex *engine.Exec
	// prunes counts dead branches (empty windows, constraint rejections);
	// flushed counters track the already-reported node/prune totals.
	prunes                     int64
	flushedNodes, flushedPrune int64
	// bounds[i][j] are the second-distance bounds from order[i] to order[j]
	// derived by propagation (j < i used during search).
	lo, hi [][]int64
}

// flushCounters reports the not-yet-reported node and prune totals to the
// observer; called periodically and on the way out so interrupted solves
// still carry partial stats.
func (sv *solver) flushCounters() {
	sv.ex.Count("exact.nodes", sv.nodes-sv.flushedNodes)
	sv.ex.Count("exact.prunes", sv.prunes-sv.flushedPrune)
	sv.flushedNodes, sv.flushedPrune = sv.nodes, sv.prunes
}

func (sv *solver) precomputeBounds() {
	n := len(sv.order)
	sv.lo = make([][]int64, n)
	sv.hi = make([][]int64, n)
	for i := range sv.order {
		sv.lo[i] = make([]int64, n)
		sv.hi[i] = make([]int64, n)
		for j := range sv.order {
			if i == j {
				continue
			}
			l, h := sv.prop.SecondBounds(sv.sys, sv.order[i], sv.order[j])
			sv.lo[i][j], sv.hi[i][j] = l, h
		}
	}
}

// search assigns order[k..]; returns whether a full assignment was found.
func (sv *solver) search(k int) (bool, error) {
	if k == len(sv.order) {
		return true, nil
	}
	v := sv.order[k]
	// Intersect the windows implied by every assigned variable.
	winLo, winHi := sv.points[0], sv.points[len(sv.points)-1]
	for j := 0; j < k; j++ {
		tj := sv.assigned[sv.order[j]]
		if l := sv.lo[j][k]; l > -stp.Inf {
			if nl := tj + l; nl > winLo {
				winLo = nl
			}
		}
		if h := sv.hi[j][k]; h < stp.Inf {
			if nh := tj + h; nh < winHi {
				winHi = nh
			}
		}
	}
	if winLo > winHi {
		sv.prunes++
		return false, nil
	}
	first := sort.Search(len(sv.points), func(i int) bool { return sv.points[i] >= winLo })
	for i := first; i < len(sv.points) && sv.points[i] <= winHi; i++ {
		sv.nodes++
		if sv.nodes > sv.maxNodes {
			return false, fmt.Errorf("exact: search budget of %d nodes exceeded", sv.maxNodes)
		}
		if err := sv.ex.Step(1); err != nil {
			return false, err
		}
		t := sv.points[i]
		if !sv.consistentWithAssigned(v, t) {
			sv.prunes++
			continue
		}
		sv.assigned[v] = t
		ok, err := sv.search(k + 1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		delete(sv.assigned, v)
	}
	return false, nil
}

// consistentWithAssigned checks every explicit TCG between v and the
// already-assigned variables.
func (sv *solver) consistentWithAssigned(v core.Variable, t int64) bool {
	for u, tu := range sv.assigned {
		for _, c := range sv.s.Constraints(u, v) {
			if !c.Satisfied(sv.sys, tu, t) {
				return false
			}
		}
		for _, c := range sv.s.Constraints(v, u) {
			if !c.Satisfied(sv.sys, t, tu) {
				return false
			}
		}
	}
	return true
}

// Enumerate returns up to limit distinct satisfying assignments (boundary
// witnesses) of the structure within the horizon, in the search's
// deterministic order. It reuses Solve's machinery but continues past the
// first witness. Distinctness is per boundary-point assignment; the full
// (uncountable in general) solution space collapses onto boundary points by
// the same snapping argument Solve's completeness rests on.
func Enumerate(sys *granularity.System, s *core.EventStructure, opt Options, limit int) ([]map[core.Variable]int64, error) {
	ex := opt.Engine.Start()
	out, err := enumerateExec(ex, sys, s, opt, limit)
	return out, ex.Seal(err)
}

func enumerateExec(ex *engine.Exec, sys *granularity.System, s *core.EventStructure, opt Options, limit int) ([]map[core.Variable]int64, error) {
	if limit < 1 {
		return nil, fmt.Errorf("exact: limit must be positive")
	}
	if opt.Start < 1 || opt.End <= opt.Start {
		return nil, fmt.Errorf("exact: invalid horizon [%d,%d]", opt.Start, opt.End)
	}
	maxNodes := opt.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	prop, err := propagate.RunExec(ex, sys, s, opt.Propagate)
	if err != nil {
		return nil, err
	}
	if !prop.Consistent {
		return nil, nil
	}
	points := boundaryPoints(sys, s.Granularities(), opt.Start, opt.End)
	if len(points) == 0 {
		return nil, nil
	}
	order, err := s.TopoOrder()
	if err != nil {
		return nil, err
	}
	sv := &solver{
		sys:      sys,
		s:        s,
		prop:     prop,
		points:   points,
		order:    order,
		assigned: make(map[core.Variable]int64, len(order)),
		maxNodes: maxNodes,
		ex:       ex,
	}
	sv.precomputeBounds()
	defer ex.Stage("exact.enumerate")()
	var out []map[core.Variable]int64
	err = sv.enumerate(0, func() bool {
		w := make(map[core.Variable]int64, len(sv.assigned))
		for k, t := range sv.assigned {
			w[k] = t
		}
		out = append(out, w)
		return len(out) < limit
	})
	sv.flushCounters()
	if err != nil && err != errStopEnumeration {
		return nil, err
	}
	return out, nil
}

// enumerate is search generalized to visit every full assignment; emit
// returns false to stop early. The boolean result is "keep going".
func (sv *solver) enumerate(k int, emit func() bool) error {
	if k == len(sv.order) {
		if !emit() {
			return errStopEnumeration
		}
		return nil
	}
	v := sv.order[k]
	winLo, winHi := sv.points[0], sv.points[len(sv.points)-1]
	for j := 0; j < k; j++ {
		tj := sv.assigned[sv.order[j]]
		if l := sv.lo[j][k]; l > -stp.Inf {
			if nl := tj + l; nl > winLo {
				winLo = nl
			}
		}
		if h := sv.hi[j][k]; h < stp.Inf {
			if nh := tj + h; nh < winHi {
				winHi = nh
			}
		}
	}
	if winLo > winHi {
		return nil
	}
	first := sort.Search(len(sv.points), func(i int) bool { return sv.points[i] >= winLo })
	for i := first; i < len(sv.points) && sv.points[i] <= winHi; i++ {
		sv.nodes++
		if sv.nodes > sv.maxNodes {
			return fmt.Errorf("exact: search budget of %d nodes exceeded", sv.maxNodes)
		}
		if err := sv.ex.Step(1); err != nil {
			return err
		}
		t := sv.points[i]
		if !sv.consistentWithAssigned(v, t) {
			continue
		}
		sv.assigned[v] = t
		err := sv.enumerate(k+1, emit)
		delete(sv.assigned, v)
		if err != nil {
			if err == errStopEnumeration {
				return err
			}
			return err
		}
	}
	return nil
}

// errStopEnumeration signals the emit callback asked to stop; Enumerate
// swallows it.
var errStopEnumeration = errors.New("exact: stop enumeration")
