package exact

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/granularity"
	"repro/internal/hardness"
	"repro/internal/propagate"
)

// TestSolveInterrupted drives the exact solver into each interruption mode
// on a Theorem-1 gadget. The budget is chosen above the propagation cost
// (~5k units on this instance) so the interruption lands mid-backtrack and
// the partial stats carry visited nodes.
func TestSolveInterrupted(t *testing.T) {
	in := hardness.Generate(3, false, 43)
	sys := granularity.Default()
	s, err := hardness.Reduce(in, sys)
	if err != nil {
		t.Fatal(err)
	}
	start, end := hardness.Horizon(in)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name     string
		eng      func() engine.Config
		reason   string
		wantNode bool
	}{
		{"budget mid-backtrack", func() engine.Config {
			return engine.Config{Budget: 6000, Observer: engine.NewCounters()}
		}, "budget", true},
		{"budget before search", func() engine.Config {
			return engine.Config{Budget: 10, Observer: engine.NewCounters()}
		}, "budget", false},
		{"cancelled context", func() engine.Config {
			return engine.Config{Ctx: cancelled, CheckEvery: 1, Observer: engine.NewCounters()}
		}, "context", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Solve(sys, s, Options{Start: start, End: end, Engine: tc.eng()})
			if !errors.Is(err, engine.ErrInterrupted) {
				t.Fatalf("err = %v, want ErrInterrupted", err)
			}
			var ip *engine.Interrupted
			if !errors.As(err, &ip) {
				t.Fatalf("err %T, want *engine.Interrupted", err)
			}
			if ip.Reason != tc.reason {
				t.Fatalf("reason %q, want %q", ip.Reason, tc.reason)
			}
			if ip.Stats == nil {
				t.Fatal("partial stats missing")
			}
			if tc.wantNode && ip.Stats["exact.nodes"] <= 0 {
				t.Fatalf("stats %v, want exact.nodes > 0", ip.Stats)
			}
		})
	}
	// The same instance, unbounded, still gets the exact verdict.
	v, err := Solve(sys, s, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfiable {
		t.Fatal("unsolvable gadget reported satisfiable")
	}
}

// TestEnumerateInterrupted checks the enumeration path seals interruptions
// the same way.
func TestEnumerateInterrupted(t *testing.T) {
	in := hardness.Generate(3, false, 43)
	sys := granularity.Default()
	s, err := hardness.Reduce(in, sys)
	if err != nil {
		t.Fatal(err)
	}
	start, end := hardness.Horizon(in)
	_, err = Enumerate(sys, s, Options{Start: start, End: end,
		Engine: engine.Config{Budget: 6000, Observer: engine.NewCounters()}}, 10)
	if !errors.Is(err, engine.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

// TestSolvePropagateOptionsPassThrough pins the Options.Propagate fix: the
// caller's propagation options must reach the inner propagate.Run. Dropping
// the order group removes a whole STP group, so the relaxation counter
// shrinks — it cannot if Solve still hardcodes propagate.Options{}.
func TestSolvePropagateOptionsPassThrough(t *testing.T) {
	sys := granularity.Default()
	end, _ := granularity.Year().Span(2)
	relaxations := func(popt propagate.Options) int64 {
		c := engine.NewCounters()
		v, err := Solve(sys, core.Fig1a(), Options{
			Start:     1,
			End:       end.Last,
			Propagate: popt,
			Engine:    engine.Config{Observer: c},
		})
		if err != nil {
			t.Fatal(err)
		}
		if v == nil {
			t.Fatal("no verdict")
		}
		return c.Get("stp.relaxations")
	}
	full := relaxations(propagate.Options{})
	ablated := relaxations(propagate.Options{DisableOrderGroup: true})
	if ablated >= full {
		t.Fatalf("stp.relaxations = %d with order group disabled, want < %d (Propagate options must pass through)",
			ablated, full)
	}
}
