package exact

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/granularity"
	"repro/internal/propagate"
)

var sys = granularity.Default()

func yearHorizon(y0, y1 int) (int64, int64) {
	return event.At(y0, 1, 1, 0, 0, 0), event.At(y1, 12, 31, 23, 59, 59)
}

func TestSolveFig1aSatisfiable(t *testing.T) {
	start, end := yearHorizon(1996, 1996)
	v, err := Solve(sys, core.Fig1a(), Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfiable {
		t.Fatal("Fig1a should be satisfiable")
	}
	// The witness must actually match the structure.
	b := core.Binding{}
	for x, tm := range v.Witness {
		b[x] = event.Event{Type: event.Type("t-" + string(x)), Time: tm}
	}
	if !core.Matches(sys, core.Fig1a(), b) {
		t.Fatalf("witness does not match the structure: %v", v.Witness)
	}
}

func TestSolveDetectsInconsistency(t *testing.T) {
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "day"), core.MustTCG(30, 40, "hour"))
	start, end := yearHorizon(1996, 1996)
	v, err := Solve(sys, s, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if v.Satisfiable {
		t.Fatal("inconsistent structure declared satisfiable")
	}
	if !v.RefutedByPropagation {
		t.Fatal("propagation should refute this without search")
	}
}

func TestSolveFindsDisjunctionBranches(t *testing.T) {
	// Figure 1(b) plus a pin: with the extra constraint "X2 between 1 and
	// 11 months after X0", both branches of the implied disjunction {0,12}
	// are refuted, so the structure is unsatisfiable — something
	// propagation alone cannot see.
	start, end := yearHorizon(1996, 1999)

	base, err := Solve(sys, core.Fig1b(), Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Satisfiable {
		t.Fatal("Fig1b should be satisfiable")
	}

	// Force distance in [1,11]: unsatisfiable.
	s2 := core.Fig1b()
	s2.MustConstrain("X0", "X2", core.MustTCG(1, 11, "month"))
	v2, err := Solve(sys, s2, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Satisfiable {
		t.Fatal("pinned Fig1b should be unsatisfiable (distance must be 0 or 12)")
	}
	if v2.RefutedByPropagation {
		t.Fatal("this refutation needs search; propagation keeps [1,11]")
	}

	// Force distance 12 exactly: satisfiable.
	s3 := core.Fig1b()
	s3.MustConstrain("X0", "X2", core.MustTCG(12, 12, "month"))
	v3, err := Solve(sys, s3, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if !v3.Satisfiable {
		t.Fatal("distance 12 branch should be satisfiable")
	}
	m := granularity.Month()
	z0, _ := m.TickOf(v3.Witness["X0"])
	z2, _ := m.TickOf(v3.Witness["X2"])
	if z2-z0 != 12 {
		t.Fatalf("witness distance = %d months, want 12", z2-z0)
	}
}

func TestSolveHorizonValidation(t *testing.T) {
	if _, err := Solve(sys, core.Fig1a(), Options{Start: 0, End: 10}); err == nil {
		t.Fatal("invalid horizon accepted")
	}
	if _, err := Solve(sys, core.Fig1a(), Options{Start: 10, End: 10}); err == nil {
		t.Fatal("empty horizon accepted")
	}
}

func TestSolveBudget(t *testing.T) {
	start, end := yearHorizon(1996, 1996)
	_, err := Solve(sys, core.Fig1a(), Options{Start: start, End: end, MaxNodes: 1})
	if err == nil {
		t.Fatal("budget of 1 node should be exceeded")
	}
}

func TestSolveSameDayChain(t *testing.T) {
	// A -> B -> C all within the same day, B at least 4 hours after A,
	// C at least 4 hours after B: satisfiable (e.g. 00:00, 04:00, 08:00).
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "day"), core.MustTCG(4, 23, "hour"))
	s.MustConstrain("B", "C", core.MustTCG(0, 0, "day"), core.MustTCG(4, 23, "hour"))
	start, end := event.At(1996, 6, 3, 0, 0, 0), event.At(1996, 6, 10, 0, 0, 0)
	v, err := Solve(sys, s, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfiable {
		t.Fatal("same-day chain should fit")
	}
	d := granularity.Day()
	za, _ := d.TickOf(v.Witness["A"])
	zc, _ := d.TickOf(v.Witness["C"])
	if za != zc {
		t.Fatal("witness not in a single day")
	}
	// Tighten to three 9-hour gaps in one day: impossible.
	s2 := core.NewStructure()
	s2.MustConstrain("A", "B", core.MustTCG(0, 0, "day"), core.MustTCG(9, 23, "hour"))
	s2.MustConstrain("B", "C", core.MustTCG(0, 0, "day"), core.MustTCG(9, 23, "hour"))
	s2.MustConstrain("C", "D", core.MustTCG(0, 0, "day"), core.MustTCG(9, 23, "hour"))
	v2, err := Solve(sys, s2, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Satisfiable {
		t.Fatal("27 hours cannot fit in a day")
	}
}

func TestSolveBusinessDayWeekendGap(t *testing.T) {
	// A on a b-day, B exactly 1 b-day later but at most 30 hours later in
	// hours: satisfiable only via adjacent weekdays (not across a
	// weekend), so a witness must exist and not straddle Sat/Sun.
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(1, 1, "b-day"), core.MustTCG(0, 30, "hour"))
	start, end := event.At(1996, 6, 1, 0, 0, 0), event.At(1996, 6, 14, 0, 0, 0)
	v, err := Solve(sys, s, Options{Start: start, End: end})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfiable {
		t.Fatal("adjacent weekdays satisfy this")
	}
	day := granularity.Day()
	da, _ := day.TickOf(v.Witness["A"])
	db, _ := day.TickOf(v.Witness["B"])
	if db-da > 1 {
		t.Fatalf("witness days %d..%d should be adjacent", da, db)
	}
}

func TestEnumerateFig1bBranches(t *testing.T) {
	// Enumerating the disjunction gadget must produce witnesses on BOTH
	// branches: some with X2-X0 = 0 months and some with 12.
	start, end := yearHorizon(1996, 1998)
	ws, err := Enumerate(sys, core.Fig1b(), Options{Start: start, End: end}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no witnesses enumerated")
	}
	m := granularity.Month()
	branches := map[int64]bool{}
	for _, w := range ws {
		z0, ok0 := m.TickOf(w["X0"])
		z2, ok2 := m.TickOf(w["X2"])
		if !ok0 || !ok2 {
			t.Fatal("witness timestamp uncovered")
		}
		d := z2 - z0
		if d != 0 && d != 12 {
			t.Fatalf("witness with month distance %d — the gadget must force {0,12}", d)
		}
		branches[d] = true
	}
	if !branches[0] || !branches[12] {
		t.Fatalf("both branches should appear among %d witnesses; got %v", len(ws), branches)
	}
}

func TestEnumerateLimitAndValidity(t *testing.T) {
	start, end := yearHorizon(1996, 1996)
	ws, err := Enumerate(sys, core.Fig1a(), Options{Start: start, End: end}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 7 {
		t.Fatalf("limit not honored: %d witnesses", len(ws))
	}
	// Each witness matches the structure, and they are pairwise distinct.
	seen := map[string]bool{}
	for _, w := range ws {
		b := core.Binding{}
		for x, tm := range w {
			b[x] = event.Event{Type: event.Type("t-" + string(x)), Time: tm}
		}
		if !core.Matches(sys, core.Fig1a(), b) {
			t.Fatalf("enumerated witness invalid: %v", w)
		}
		key := fmt.Sprint(w)
		if seen[key] {
			t.Fatalf("duplicate witness: %v", w)
		}
		seen[key] = true
	}
}

func TestEnumerateErrors(t *testing.T) {
	start, end := yearHorizon(1996, 1996)
	if _, err := Enumerate(sys, core.Fig1a(), Options{Start: start, End: end}, 0); err == nil {
		t.Fatal("limit 0 accepted")
	}
	if _, err := Enumerate(sys, core.Fig1a(), Options{Start: 0, End: 10}, 5); err == nil {
		t.Fatal("bad horizon accepted")
	}
	// Inconsistent structure: empty result, no error.
	s := core.NewStructure()
	s.MustConstrain("A", "B", core.MustTCG(0, 0, "day"), core.MustTCG(30, 40, "hour"))
	ws, err := Enumerate(sys, s, Options{Start: start, End: end}, 5)
	if err != nil || len(ws) != 0 {
		t.Fatalf("inconsistent structure: %v, %v", ws, err)
	}
}

// TestRefutationSoundnessFuzz: whenever propagation refutes a random
// structure, the exact solver must agree no witness exists in a generous
// horizon (the contrapositive of Theorem 2's soundness, on random inputs
// rather than the paper's examples).
func TestRefutationSoundnessFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grans := []string{"hour", "day", "b-day", "week", "month"}
	start, end := yearHorizon(1996, 1997)
	refuted := 0
	for trial := 0; trial < 80; trial++ {
		n := 3 + rng.Intn(3)
		s := core.NewStructure()
		for i := 1; i < n; i++ {
			g := grans[rng.Intn(len(grans))]
			lo := int64(rng.Intn(3))
			s.MustConstrain(
				core.Variable(string(rune('A'+i-1))),
				core.Variable(string(rune('A'+i))),
				core.MustTCG(lo, lo+int64(rng.Intn(3)), g),
			)
			if rng.Intn(3) == 0 {
				g2 := grans[rng.Intn(len(grans))]
				s.MustConstrain(
					core.Variable(string(rune('A'+i-1))),
					core.Variable(string(rune('A'+i))),
					core.MustTCG(0, int64(rng.Intn(6))+1, g2),
				)
			}
		}
		r, err := propagate.Run(sys, s, propagate.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Consistent {
			continue
		}
		refuted++
		// Search WITHOUT the propagation shortcut: rebuild windows from a
		// fresh Solve would just return RefutedByPropagation, so verify by
		// brute sampling instead — plant candidate bindings densely and
		// check none matches.
		if witnessBySampling(t, s, start, end, rng) {
			t.Fatalf("trial %d: propagation refuted a satisfiable structure:\n%s", trial, s)
		}
	}
	if refuted < 5 {
		t.Skipf("only %d refuted structures sampled; fuzz uninformative", refuted)
	}
}

// witnessBySampling searches for a matching binding by planting random
// offset chains (a weaker but propagation-independent check).
func witnessBySampling(t *testing.T, s *core.EventStructure, start, end int64, rng *rand.Rand) bool {
	t.Helper()
	order, err := s.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3000; attempt++ {
		b := core.Binding{}
		cur := start + rng.Int63n(end-start-90*86400)
		ok := true
		for i, v := range order {
			b[v] = event.Event{Type: event.Type(string(rune('a' + i))), Time: cur}
			switch rng.Intn(4) {
			case 0:
				cur += rng.Int63n(6*3600) + 1
			case 1:
				cur += 86400 + rng.Int63n(12*3600)
			case 2:
				cur += rng.Int63n(5)*86400 + 3600
			default:
				cur += rng.Int63n(35) * 86400
			}
		}
		if ok && core.Matches(sys, s, b) {
			return true
		}
	}
	return false
}

// TestSolveUnconstrainedStructure: a structure whose constraints reference
// no granularity has no granule boundary points, yet it is trivially
// satisfiable — the candidate set must still contain the horizon start.
// Found by the differential oracle (exact vs brute force disagreed on
// {"variables":["A"],"edges":[]}).
func TestSolveUnconstrainedStructure(t *testing.T) {
	s := core.NewStructure()
	s.AddVariable("A")
	s.AddVariable("B")
	v, err := Solve(sys, s, Options{Start: 100, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Satisfiable {
		t.Fatal("unconstrained structure reported unsatisfiable")
	}
	for x, tm := range v.Witness {
		if tm < 100 || tm > 200 {
			t.Fatalf("witness %s=%d outside the horizon", x, tm)
		}
	}
}
